/**
 * @file
 * Design-space sweep runner: expands the built-in scenario families
 * (every design point, fanout sweep, SSD geometry, multi-tenant batch
 * mix, batch-size sensitivity, page-buffer and worker sweeps — plus
 * the registry-driven "backend-space" family covering every registered
 * storage backend) through core::ExperimentRunner, prints the
 * paper-style tables, and emits the machine-readable
 * BENCH_designspace.json trajectory artifact.
 *
 * Cells are independent deterministic simulations parallelized over
 * --workers host threads; tables and JSON are bit-identical at any
 * worker count.
 *
 * Run: ./design_space [dataset] [options]
 *   --workers <n>      host threads for independent cells (default 1)
 *   --family <name>    run one family (repeatable; default: builtins)
 *   --design <id>      restrict every family to this storage backend
 *                      (repeatable; unknown ids list the registry)
 *   --out <path>       write BENCH_designspace.json here (non-serving
 *                      families)
 *   --serving-out <path> write BENCH_serving.json here (serving-kind
 *                      families, e.g. --family serving-load)
 *   --cache-out <path> write BENCH_cachepolicy.json here (the
 *                      cache-policy families, both kinds)
 *   --faults-out <path> write BENCH_faults.json here (the fault-space
 *                      family: fault rate x retry policy recovery
 *                      metrics)
 *   --slo-out <path>   write BENCH_slo.json here (the slo-space
 *                      family: multi-tenant SLO attainment x
 *                      scheduling policy x arrival shape)
 *   --recovery-out <path> write BENCH_recovery.json here (the
 *                      recovery-space family: checkpoint interval x
 *                      backend crash-restart metrics)
 *   --scaling-out <path> write BENCH_scaling.json here (the scaling
 *                      family: partitioned nodes x link bandwidth x
 *                      cut strategy, with annotated scaling_speedup /
 *                      scaling_efficiency columns)
 *   --knobs-doc <path> regenerate docs/KNOBS.md from the knob catalog
 *                      (core/knobs.hh) and exit
 *   --arch-doc <path>  regenerate docs/ARCHITECTURE.md from the live
 *                      registries (core/docgen.hh) and exit
 *   --benches-doc <path> regenerate docs/BENCHES.md (artifact index +
 *                      gated metrics from ci/compare_bench.py; run
 *                      from the repository root) and exit
 *   --stats-json <path> write BENCH-schema per-backend stats here
 *   --smoke            CI sizes: in-memory datasets, few batches and
 *                      requests
 *   --stats            dump every cell's component counters
 *   --list             list scenario families and exit
 *   --backends         print the registered-backend table and exit
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/backend.hh"
#include "core/docgen.hh"
#include "core/experiment.hh"
#include "core/knobs.hh"
#include "core/scenario.hh"
#include "sim/logging.hh"

using namespace smartsage;

namespace
{

int
usage()
{
    std::cerr << "usage: design_space [dataset] [--workers <n>] "
                 "[--family <name>]... [--design <id>]... "
                 "[--out <path>] [--serving-out <path>] "
                 "[--cache-out <path>] [--faults-out <path>] "
                 "[--slo-out <path>] [--recovery-out <path>] "
                 "[--scaling-out <path>] [--knobs-doc <path>] "
                 "[--arch-doc <path>] [--benches-doc <path>] "
                 "[--stats-json <path>] "
                 "[--smoke] [--stats] [--list] [--backends]\n";
    return 2;
}

/** The registered-backend table, markdown-shaped (README source). */
void
printBackendTable(std::ostream &os)
{
    os << "| id | design | SSD | ISP | edge store | knobs | summary "
          "|\n"
       << "|---|---|---|---|---|---|---|\n";
    for (const core::StorageBackend *b :
         core::BackendRegistry::instance().all()) {
        const core::BackendCaps &caps = b->caps();
        std::string namespaces;
        for (const auto &ns : caps.knob_namespaces) {
            if (!namespaces.empty())
                namespaces += " ";
            namespaces += "`" + ns + "`";
        }
        os << "| `" << b->id() << "` | " << b->displayName() << " | "
           << (caps.has_ssd ? "yes" : "no") << " | "
           << (caps.has_isp ? "yes" : "no") << " | "
           << core::edgeStoreKindName(caps.edge_store) << " | "
           << namespaces << " | " << b->summary() << " |\n";
    }
}

/**
 * One smoke-size system per registered backend on @p dataset's
 * in-memory variant, stats emitted as a schema-versioned JSON doc —
 * the diffable backend comparison.
 */
void
writeBackendStatsJson(std::ostream &os, graph::DatasetId dataset)
{
    const unsigned sim_workers = 2;
    const std::size_t batches = 4;
    core::Workload workload = core::Workload::make(dataset, false);

    os.precision(10);
    os << "{\n"
       << "  \"bench\": \"backend_stats\",\n"
       << "  \"schema_version\": 1,\n"
       << "  \"config\": {\n"
       << "    \"dataset\": \"" << graph::datasetName(dataset)
       << "\",\n"
       << "    \"large_scale\": false,\n"
       << "    \"sim_workers\": " << sim_workers << ",\n"
       << "    \"num_batches\": " << batches << "\n"
       << "  },\n"
       << "  \"results\": {\n";

    std::vector<const core::StorageBackend *> backends;
    for (const core::StorageBackend *b :
         core::BackendRegistry::instance().all()) {
        // Dedicated-family backends opt out (BackendCaps), keeping the
        // default stats document byte-stable across registrations.
        if (b->caps().in_default_grids)
            backends.push_back(b);
    }
    for (std::size_t i = 0; i < backends.size(); ++i) {
        core::SystemConfig sc;
        sc.backend = backends[i]->id();
        sc.fanouts = {6, 3};
        sc.pipeline.batch_size = 64;
        core::GnnSystem system(sc, workload);
        system.runSamplingOnly(sim_workers, batches);
        os << "    \"" << backends[i]->id() << "\": ";
        system.dumpStatsJsonMap(os, "    ");
        os << (i + 1 < backends.size() ? ",\n" : "\n");
    }
    os << "  }\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned workers = 1;
    bool smoke = false, stats = false;
    std::string out_path, serving_out_path, cache_out_path;
    std::string faults_out_path, slo_out_path, recovery_out_path;
    std::string scaling_out_path;
    std::string stats_json_path;
    std::vector<std::string> families;
    std::vector<std::string> designs;
    const graph::DatasetId *dataset = nullptr;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--workers" && i + 1 < argc) {
            int n = std::atoi(argv[++i]);
            if (n < 1)
                return usage();
            workers = static_cast<unsigned>(n);
        } else if (arg == "--family" && i + 1 < argc) {
            families.push_back(argv[++i]);
        } else if (arg == "--design" && i + 1 < argc) {
            // Unknown ids die here with the sorted registry listing.
            designs.push_back(
                core::BackendRegistry::instance().get(argv[++i]).id());
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--serving-out" && i + 1 < argc) {
            serving_out_path = argv[++i];
        } else if (arg == "--cache-out" && i + 1 < argc) {
            cache_out_path = argv[++i];
        } else if (arg == "--faults-out" && i + 1 < argc) {
            faults_out_path = argv[++i];
        } else if (arg == "--slo-out" && i + 1 < argc) {
            slo_out_path = argv[++i];
        } else if (arg == "--recovery-out" && i + 1 < argc) {
            recovery_out_path = argv[++i];
        } else if (arg == "--scaling-out" && i + 1 < argc) {
            scaling_out_path = argv[++i];
        } else if (arg == "--knobs-doc" && i + 1 < argc) {
            std::ofstream doc(argv[++i]);
            if (!doc)
                SS_FATAL("cannot open ", argv[i]);
            core::writeKnobsDoc(doc);
            std::cout << "design_space: wrote " << argv[i] << "\n";
            return 0;
        } else if (arg == "--arch-doc" && i + 1 < argc) {
            std::ofstream doc(argv[++i]);
            if (!doc)
                SS_FATAL("cannot open ", argv[i]);
            core::writeArchDoc(doc);
            std::cout << "design_space: wrote " << argv[i] << "\n";
            return 0;
        } else if (arg == "--benches-doc" && i + 1 < argc) {
            std::ofstream doc(argv[++i]);
            if (!doc)
                SS_FATAL("cannot open ", argv[i]);
            core::writeBenchesDoc(doc, "ci/compare_bench.py");
            std::cout << "design_space: wrote " << argv[i] << "\n";
            return 0;
        } else if (arg == "--stats-json" && i + 1 < argc) {
            stats_json_path = argv[++i];
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--list") {
            for (const auto &s : core::builtinScenarios())
                std::cout << s.family << ": " << s.title << " ("
                          << s.gridSize() << " cells)\n";
            for (const auto &s : core::extraScenarios())
                std::cout << s.family << ": " << s.title << " ("
                          << s.gridSize() << " cells, --family only)\n";
            return 0;
        } else if (arg == "--backends") {
            printBackendTable(std::cout);
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            return usage();
        } else {
            const graph::DatasetId *match = nullptr;
            for (const auto &d : graph::allDatasets())
                if (graph::datasetName(d) == arg)
                    match = &d;
            if (!match)
                SS_FATAL("unknown dataset '", arg, "'");
            dataset = match;
        }
    }

    std::vector<core::Scenario> scenarios;
    if (families.empty()) {
        scenarios = core::builtinScenarios();
    } else {
        for (const auto &name : families) {
            const core::Scenario *s = core::findScenario(name);
            if (!s)
                SS_FATAL("unknown scenario family '", name,
                         "' (try --list)");
            scenarios.push_back(*s);
        }
    }
    for (auto &s : scenarios) {
        if (dataset)
            s.datasets = {*dataset};
        if (!designs.empty())
            s.backends = designs;
        if (smoke)
            s = core::smokeVariant(s);
    }

    core::RunnerOptions options;
    options.workers = workers;
    options.progress = true;
    options.collect_stats = stats;
    core::ExperimentRunner runner(options);

    auto runs = runner.runAll(scenarios);
    for (const auto &run : runs) {
        core::ExperimentRunner::table(run).print(std::cout);
        if (stats)
            for (const auto &cell : run.cells)
                std::cout << cell.stats;
    }

    // Families tagged for the cache-policy or faults artifact go to
    // their own documents; other serving-kind families get the
    // serving schema (latency metrics); everything else shares the
    // classic design-space document.
    std::vector<core::ScenarioRun> cache_runs, fault_runs, slo_runs,
        recovery_runs, scaling_runs, serving_runs, sweep_runs;
    for (auto &run : runs) {
        if (run.scenario.artifact == "cache-policy")
            cache_runs.push_back(std::move(run));
        else if (run.scenario.artifact == "faults")
            fault_runs.push_back(std::move(run));
        else if (run.scenario.artifact == "slo")
            slo_runs.push_back(std::move(run));
        else if (run.scenario.artifact == "recovery")
            recovery_runs.push_back(std::move(run));
        else if (run.scenario.artifact == "scaling")
            scaling_runs.push_back(std::move(run));
        else if (run.scenario.kind == core::ExperimentKind::Serving)
            serving_runs.push_back(std::move(run));
        else
            sweep_runs.push_back(std::move(run));
    }

    if (!out_path.empty()) {
        std::ofstream json(out_path);
        if (!json)
            SS_FATAL("cannot open ", out_path);
        core::writeDesignSpaceJson(json, sweep_runs);
        std::cout << "design_space: wrote " << out_path << "\n";
    }
    if (!serving_runs.empty() && serving_out_path.empty())
        SS_WARN("serving-kind families ran but --serving-out was not "
                "given; their cells are not in the --out artifact");
    if (!serving_out_path.empty()) {
        if (serving_runs.empty())
            SS_FATAL("--serving-out needs a serving-kind family "
                     "(e.g. --family serving-load)");
        std::ofstream json(serving_out_path);
        if (!json)
            SS_FATAL("cannot open ", serving_out_path);
        core::writeServingJson(json, serving_runs);
        std::cout << "design_space: wrote " << serving_out_path << "\n";
    }
    if (!cache_runs.empty() && cache_out_path.empty())
        SS_WARN("cache-policy families ran but --cache-out was not "
                "given; their cells are not in any artifact");
    if (!cache_out_path.empty()) {
        if (cache_runs.empty())
            SS_FATAL("--cache-out needs the cache-policy families "
                     "(e.g. --family cache-policy "
                     "--family cache-policy-throughput)");
        std::ofstream json(cache_out_path);
        if (!json)
            SS_FATAL("cannot open ", cache_out_path);
        core::writeDesignSpaceJson(json, cache_runs, "cache_policy");
        std::cout << "design_space: wrote " << cache_out_path << "\n";
    }
    if (!fault_runs.empty() && faults_out_path.empty())
        SS_WARN("fault-space family ran but --faults-out was not "
                "given; its cells are not in any artifact");
    if (!faults_out_path.empty()) {
        if (fault_runs.empty())
            SS_FATAL("--faults-out needs the fault-space family "
                     "(e.g. --family fault-space)");
        std::ofstream json(faults_out_path);
        if (!json)
            SS_FATAL("cannot open ", faults_out_path);
        core::writeDesignSpaceJson(json, fault_runs, "fault_space");
        std::cout << "design_space: wrote " << faults_out_path << "\n";
    }
    if (!slo_runs.empty() && slo_out_path.empty())
        SS_WARN("slo-space family ran but --slo-out was not given; "
                "its cells are not in any artifact");
    if (!slo_out_path.empty()) {
        if (slo_runs.empty())
            SS_FATAL("--slo-out needs the slo-space family "
                     "(e.g. --family slo-space)");
        std::ofstream json(slo_out_path);
        if (!json)
            SS_FATAL("cannot open ", slo_out_path);
        core::writeDesignSpaceJson(json, slo_runs, "slo_space");
        std::cout << "design_space: wrote " << slo_out_path << "\n";
    }
    if (!recovery_runs.empty() && recovery_out_path.empty())
        SS_WARN("recovery-space family ran but --recovery-out was not "
                "given; its cells are not in any artifact");
    if (!recovery_out_path.empty()) {
        if (recovery_runs.empty())
            SS_FATAL("--recovery-out needs the recovery-space family "
                     "(e.g. --family recovery-space)");
        std::ofstream json(recovery_out_path);
        if (!json)
            SS_FATAL("cannot open ", recovery_out_path);
        core::writeDesignSpaceJson(json, recovery_runs,
                                   "recovery_space");
        std::cout << "design_space: wrote " << recovery_out_path
                  << "\n";
    }
    if (!scaling_runs.empty() && scaling_out_path.empty())
        SS_WARN("scaling family ran but --scaling-out was not given; "
                "its cells are not in any artifact");
    if (!scaling_out_path.empty()) {
        if (scaling_runs.empty())
            SS_FATAL("--scaling-out needs the scaling family "
                     "(e.g. --family scaling)");
        core::annotateScalingMetrics(scaling_runs);
        std::ofstream json(scaling_out_path);
        if (!json)
            SS_FATAL("cannot open ", scaling_out_path);
        core::writeDesignSpaceJson(json, scaling_runs,
                                   "scaling_space");
        std::cout << "design_space: wrote " << scaling_out_path
                  << "\n";
    }
    if (!stats_json_path.empty()) {
        std::ofstream json(stats_json_path);
        if (!json)
            SS_FATAL("cannot open ", stats_json_path);
        writeBackendStatsJson(
            json, dataset ? *dataset : graph::DatasetId::Amazon);
        std::cout << "design_space: wrote " << stats_json_path << "\n";
    }
    return 0;
}
