/**
 * @file
 * Design-space sweep runner: expands the built-in scenario families
 * (every design point, fanout sweep, SSD geometry, multi-tenant batch
 * mix, batch-size sensitivity, page-buffer and worker sweeps) through
 * core::ExperimentRunner, prints the paper-style tables, and emits the
 * machine-readable BENCH_designspace.json trajectory artifact.
 *
 * Cells are independent deterministic simulations parallelized over
 * --workers host threads; tables and JSON are bit-identical at any
 * worker count.
 *
 * Run: ./design_space [dataset] [options]
 *   --workers <n>    host threads for independent cells (default 1)
 *   --family <name>  run one family (repeatable; default: all)
 *   --out <path>     write BENCH_designspace.json here
 *   --smoke          CI sizes: in-memory datasets, few batches
 *   --stats          dump every cell's component counters
 *   --list           list the built-in families and exit
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/scenario.hh"
#include "sim/logging.hh"

using namespace smartsage;

namespace
{

int
usage()
{
    std::cerr << "usage: design_space [dataset] [--workers <n>] "
                 "[--family <name>]... [--out <path>] [--smoke] "
                 "[--stats] [--list]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned workers = 1;
    bool smoke = false, stats = false;
    std::string out_path;
    std::vector<std::string> families;
    const graph::DatasetId *dataset = nullptr;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--workers" && i + 1 < argc) {
            int n = std::atoi(argv[++i]);
            if (n < 1)
                return usage();
            workers = static_cast<unsigned>(n);
        } else if (arg == "--family" && i + 1 < argc) {
            families.push_back(argv[++i]);
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--list") {
            for (const auto &s : core::builtinScenarios())
                std::cout << s.family << ": " << s.title << " ("
                          << s.gridSize() << " cells)\n";
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            return usage();
        } else {
            const graph::DatasetId *match = nullptr;
            for (const auto &d : graph::allDatasets())
                if (graph::datasetName(d) == arg)
                    match = &d;
            if (!match)
                SS_FATAL("unknown dataset '", arg, "'");
            dataset = match;
        }
    }

    std::vector<core::Scenario> scenarios;
    if (families.empty()) {
        scenarios = core::builtinScenarios();
    } else {
        for (const auto &name : families) {
            const core::Scenario *s = core::findScenario(name);
            if (!s)
                SS_FATAL("unknown scenario family '", name,
                         "' (try --list)");
            scenarios.push_back(*s);
        }
    }
    for (auto &s : scenarios) {
        if (dataset)
            s.datasets = {*dataset};
        if (smoke)
            s = core::smokeVariant(s);
    }

    core::RunnerOptions options;
    options.workers = workers;
    options.progress = true;
    options.collect_stats = stats;
    core::ExperimentRunner runner(options);

    auto runs = runner.runAll(scenarios);
    for (const auto &run : runs) {
        core::ExperimentRunner::table(run).print(std::cout);
        if (stats)
            for (const auto &cell : run.cells)
                std::cout << cell.stats;
    }

    if (!out_path.empty()) {
        std::ofstream json(out_path);
        if (!json)
            SS_FATAL("cannot open ", out_path);
        core::writeDesignSpaceJson(json, runs);
        std::cout << "design_space: wrote " << out_path << "\n";
    }
    return 0;
}
