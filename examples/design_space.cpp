/**
 * @file
 * Design-space exploration: for one dataset, walk every design point
 * and print end-to-end throughput plus the component-level stats that
 * explain it (page-cache hit rates, SSD page-buffer behaviour, flash
 * utilization, sampling latency).
 *
 * Run: ./design_space [dataset] [workers] [--stats]
 *   --stats additionally dumps every system's component counters in
 *   gem5-stats style.
 */

#include <iostream>
#include <string>

#include "core/report.hh"
#include "core/system.hh"
#include "graph/datasets.hh"
#include "host/io_path.hh"
#include "sim/logging.hh"

using namespace smartsage;

int
main(int argc, char **argv)
{
    graph::DatasetId id = graph::DatasetId::Reddit;
    if (argc >= 2) {
        bool found = false;
        for (auto d : graph::allDatasets()) {
            if (graph::datasetName(d) == argv[1]) {
                id = d;
                found = true;
            }
        }
        if (!found)
            SS_FATAL("unknown dataset '", argv[1], "'");
    }
    unsigned workers = argc >= 3 ? std::stoul(argv[2]) : 12;
    bool dump_stats =
        argc >= 4 && std::string(argv[3]) == "--stats";

    core::Workload wl = core::Workload::make(id);
    SS_INFORM(graph::datasetName(id), ": ", wl.graph.numNodes(),
              " nodes, ", wl.graph.numEdges(), " edges, avg deg ",
              core::fmt(wl.graph.avgDegree(), 1), ", max deg ",
              wl.graph.maxDegree(), ", feature dim ",
              wl.features.dim());

    core::TableReporter table(
        "Design space, " + graph::datasetName(id) + ", " +
            std::to_string(workers) + " workers",
        {"design", "batches/s", "avg sample ms", "GPU idle",
         "cache hit", "ssd pages", "notes"});

    for (auto dp : core::allDesignPoints()) {
        core::SystemConfig sc;
        sc.design = dp;
        sc.pipeline.workers = workers;
        core::GnnSystem system(sc, wl);
        auto result = system.runPipeline();

        std::string cache = "-", pages = "-", notes;
        if (auto *ssd = system.ssd()) {
            cache = core::fmtPct(ssd->pageBuffer().hitRate());
            pages = std::to_string(ssd->flashArray().pagesRead());
        }
        if (auto *mm = dynamic_cast<host::MmapEdgeStore *>(
                system.edgeStore())) {
            notes = "page cache " + core::fmtPct(mm->pageCacheHitRate()) +
                    ", faults " + std::to_string(mm->pageFaults());
        } else if (auto *dio = dynamic_cast<host::DirectIoEdgeStore *>(
                       system.edgeStore())) {
            notes = "scratchpad " +
                    core::fmtPct(dio->scratchpadHitRate()) + ", submits " +
                    std::to_string(dio->submits());
        }
        table.addRow({core::designName(dp), core::fmt(result.throughput(), 2),
                      core::fmt(result.avg_sampling_us / 1000.0, 2),
                      core::fmtPct(result.gpu_idle_frac), cache, pages,
                      notes});
        if (dump_stats)
            system.dumpStats(std::cout);
    }
    table.print(std::cout);
    return 0;
}
