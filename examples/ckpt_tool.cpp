/**
 * @file
 * Checkpoint inspector: offline tooling over the versioned checkpoint
 * store (core/checkpoint.hh).
 *
 * Run: ./ckpt_tool <mode>
 *   --manifest <path>  decode one manifest: format version, step, and
 *                      the section table with per-chunk hash/size/CRC
 *   --verify <dir>     walk every manifest in a checkpoint directory
 *                      and CRC-check every referenced chunk; exit 1 on
 *                      the first corruption
 *   --selftest         write, corrupt-check, and reload a scratch
 *                      checkpoint in a temp directory (CI smoke)
 */

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "core/checkpoint.hh"
#include "sim/serialize.hh"

namespace fs = std::filesystem;
using namespace smartsage;

namespace
{

int
usage()
{
    std::cerr << "usage: ckpt_tool --manifest <path> | --verify <dir> "
                 "| --selftest\n";
    return 2;
}

void
printManifest(const std::string &path, const core::ManifestInfo &info)
{
    std::cout << path << ":\n"
              << "  format_version " << info.format_version << "\n"
              << "  step " << info.step << "\n"
              << "  sections " << info.sections.size() << "\n";
    for (const core::ManifestSectionInfo &section : info.sections) {
        std::cout << "  section '" << section.name << "': "
                  << section.total_bytes << " bytes over "
                  << section.chunks.size() << " chunk(s)\n";
        for (const core::ManifestChunkInfo &chunk : section.chunks)
            std::cout << "    chunk " << sim::hashHex(chunk.hash)
                      << " size " << chunk.size << " crc32 "
                      << chunk.crc << "\n";
    }
}

int
dumpManifest(const std::string &path)
{
    try {
        printManifest(path, core::readManifest(path));
    } catch (const sim::SerializeError &err) {
        std::cerr << "ckpt_tool: " << err.what() << "\n";
        return 1;
    }
    return 0;
}

/** CRC-walk one directory. @return corrupt/unreadable item count */
int
verifyDir(const std::string &dir)
{
    int bad = 0;
    std::vector<std::string> manifests;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("manifest-", 0) == 0)
            manifests.push_back(entry.path().string());
    }
    if (ec) {
        std::cerr << "ckpt_tool: cannot read " << dir << ": "
                  << ec.message() << "\n";
        return 1;
    }
    std::sort(manifests.begin(), manifests.end());
    if (manifests.empty())
        std::cerr << "ckpt_tool: no manifests under " << dir << "\n";

    for (const std::string &path : manifests) {
        core::ManifestInfo info;
        try {
            info = core::readManifest(path);
        } catch (const sim::SerializeError &err) {
            std::cerr << "CORRUPT " << path << ": " << err.what()
                      << "\n";
            ++bad;
            continue;
        }
        std::uint64_t bytes = 0, chunks = 0;
        bool ok = true;
        for (const core::ManifestSectionInfo &section : info.sections) {
            for (const core::ManifestChunkInfo &chunk : section.chunks) {
                const std::string chunk_path =
                    (fs::path(dir) / "chunks" /
                     (sim::hashHex(chunk.hash) + ".bin"))
                        .string();
                try {
                    const std::vector<std::uint8_t> body =
                        sim::readFile(chunk_path);
                    if (body.size() != chunk.size ||
                        sim::crc32(body) != chunk.crc)
                        throw sim::SerializeError("size/CRC mismatch");
                } catch (const sim::SerializeError &err) {
                    std::cerr << "CORRUPT " << chunk_path << " ('"
                              << section.name << "' of " << path
                              << "): " << err.what() << "\n";
                    ok = false;
                    ++bad;
                    continue;
                }
                bytes += chunk.size;
                ++chunks;
            }
        }
        if (ok)
            std::cout << "OK " << path << ": step " << info.step << ", "
                      << info.sections.size() << " section(s), "
                      << chunks << " chunk(s), " << bytes << " bytes\n";
    }
    return bad;
}

int
selftest()
{
    const fs::path dir =
        fs::temp_directory_path() /
        ("ckpt-tool-selftest-" + std::to_string(::getpid()));
    fs::remove_all(dir);

    core::CheckpointConfig config;
    config.interval_batches = 1;
    config.dir = dir.string();
    config.chunk_kib = 1;
    core::CheckpointManager manager(config);

    core::Snapshot snapshot;
    snapshot.step = 7;
    snapshot.sections["model"] =
        std::vector<std::uint8_t>(3000, 0xab); // 3 chunks at 1 KiB
    snapshot.sections["trainer"] = {1, 2, 3, 4};
    manager.save(snapshot);

    // Second step shares the model bytes: every chunk dedups.
    snapshot.step = 8;
    manager.save(snapshot);

    int rc = 0;
    if (manager.stats().chunks_deduped == 0) {
        std::cerr << "selftest: expected chunk dedup across steps\n";
        rc = 1;
    }
    if (verifyDir(dir.string()) != 0)
        rc = 1;
    const core::Snapshot loaded = manager.load(8);
    if (loaded.sections != snapshot.sections) {
        std::cerr << "selftest: reloaded sections differ\n";
        rc = 1;
    }
    printManifest((dir / "manifest-8.ckpt").string(),
                  core::readManifest((dir / "manifest-8.ckpt").string()));
    fs::remove_all(dir);
    std::cout << (rc == 0 ? "selftest ok\n" : "selftest FAILED\n");
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string mode = argv[1];
    if (mode == "--manifest" && argc == 3)
        return dumpManifest(argv[2]);
    if (mode == "--verify" && argc == 3)
        return verifyDir(argv[2]) == 0 ? 0 : 1;
    if (mode == "--selftest" && argc == 2)
        return selftest();
    return usage();
}
