/**
 * @file
 * Quickstart: build one dataset, train a real GraphSAGE model on it
 * functionally, then compare the simulated end-to-end training
 * throughput of the paper's main design points.
 *
 * Run: ./quickstart [dataset]   (default: Reddit)
 */

#include <iostream>
#include <string>

#include "core/report.hh"
#include "core/system.hh"
#include "gnn/model.hh"
#include "gnn/sampler.hh"
#include "graph/datasets.hh"
#include "sim/logging.hh"

using namespace smartsage;

namespace
{

graph::DatasetId
parseDataset(int argc, char **argv)
{
    if (argc < 2)
        return graph::DatasetId::Reddit;
    std::string want = argv[1];
    for (auto id : graph::allDatasets()) {
        if (graph::datasetName(id) == want)
            return id;
    }
    SS_FATAL("unknown dataset '", want,
             "' (try Reddit, Movielens, Amazon, OGBN-100M, Protein-PI)");
}

} // namespace

int
main(int argc, char **argv)
{
    auto id = parseDataset(argc, argv);
    SS_INFORM("building workload: ", graph::datasetName(id));
    core::Workload wl = core::Workload::make(id);
    SS_INFORM("graph: ", wl.graph.numNodes(), " nodes, ",
              wl.graph.numEdges(), " edges, avg degree ",
              core::fmt(wl.graph.avgDegree(), 1));

    // --- 1. Functional training: a real GraphSAGE model learns. ---
    gnn::ModelConfig mc;
    mc.in_dim = 32; // small feature width for the functional demo
    mc.hidden_dim = 32;
    mc.num_classes = 8;
    mc.depth = 2;
    gnn::FeatureTable demo_features(wl.graph.numNodes(), mc.in_dim,
                                    mc.num_classes);
    gnn::SageModel model(mc);
    gnn::SageSampler sampler({10, 5});
    sim::Rng rng(7);

    double first_loss = 0, last_loss = 0;
    for (int step = 0; step < 30; ++step) {
        auto targets = gnn::selectTargets(wl.graph, 256, rng);
        auto sg = sampler.sample(wl.graph, targets, rng);
        double loss = model.trainStep(sg, demo_features);
        if (step == 0)
            first_loss = loss;
        last_loss = loss;
        if (step % 10 == 0)
            SS_INFORM("step ", step, " loss ", core::fmt(loss, 4));
    }
    auto eval_targets = gnn::selectTargets(wl.graph, 512, rng);
    auto eval_sg = sampler.sample(wl.graph, eval_targets, rng);
    SS_INFORM("functional GraphSAGE: loss ", core::fmt(first_loss, 3),
              " -> ", core::fmt(last_loss, 3), ", accuracy ",
              core::fmtPct(model.evaluate(eval_sg, demo_features)));

    // --- 2. Simulated end-to-end training across design points. ---
    core::TableReporter table(
        "End-to-end training, " + graph::datasetName(id),
        {"design", "batches/s", "slowdown vs DRAM", "GPU idle",
         "sampling share"});

    double dram_tput = 0;
    for (auto dp :
         {core::DesignPoint::DramOracle, core::DesignPoint::SsdMmap,
          core::DesignPoint::SmartSageSw,
          core::DesignPoint::SmartSageHwSw}) {
        core::SystemConfig sc;
        sc.design = dp;
        core::GnnSystem system(sc, wl);
        auto result = system.runPipeline();
        double tput = result.throughput();
        if (dp == core::DesignPoint::DramOracle)
            dram_tput = tput;
        auto norm = result.stages.normalized();
        table.addRow({core::designName(dp), core::fmt(tput, 2),
                      core::fmtX(dram_tput / tput),
                      core::fmtPct(result.gpu_idle_frac),
                      core::fmtPct(norm.sampling)});
    }
    table.print(std::cout);
    return 0;
}
