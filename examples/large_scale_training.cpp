/**
 * @file
 * Large-scale training walkthrough: train a real GraphSAGE model on a
 * Kronecker-expanded dataset through the SmartSAGE(HW/SW) producer,
 * tracking both learning progress (loss/accuracy) and the simulated
 * wall time the in-storage pipeline would take — the "train beyond
 * DRAM without giving up throughput" story of the paper.
 *
 * Run: ./large_scale_training [dataset] [epoch_batches]
 */

#include <iostream>
#include <string>

#include "core/report.hh"
#include "core/system.hh"
#include "gnn/model.hh"
#include "gnn/sampler.hh"
#include "sim/logging.hh"

using namespace smartsage;

int
main(int argc, char **argv)
{
    graph::DatasetId id = graph::DatasetId::ProteinPI;
    if (argc >= 2) {
        bool found = false;
        for (auto d : graph::allDatasets()) {
            if (graph::datasetName(d) == argv[1]) {
                id = d;
                found = true;
            }
        }
        if (!found)
            SS_FATAL("unknown dataset '", argv[1], "'");
    }
    std::size_t epoch_batches = argc >= 3 ? std::stoul(argv[2]) : 12;

    core::Workload wl = core::Workload::make(id);
    graph::EdgeLayout layout;
    SS_INFORM("dataset ", graph::datasetName(id), ": ",
              wl.graph.numNodes(), " nodes / ", wl.graph.numEdges(),
              " edges (", core::fmt(wl.edgeListBytes(layout) / 1e6, 1),
              " MB edge file on the simulated SSD)");

    // The system under test: full SmartSAGE HW/SW stack.
    core::SystemConfig sc;
    sc.design = core::DesignPoint::SmartSageHwSw;
    sc.fanouts = {15, 10};
    core::GnnSystem system(sc, wl);

    // A real model trained on the subgraphs the ISP engine generates.
    gnn::ModelConfig mc;
    mc.in_dim = 32;
    mc.hidden_dim = 48;
    mc.num_classes = 16;
    mc.depth = 2;
    mc.learning_rate = 0.08f;
    gnn::SageModel model(mc);
    gnn::FeatureTable train_features(wl.graph.numNodes(), mc.in_dim,
                                     mc.num_classes);

    core::TableReporter table(
        "SmartSAGE(HW/SW) training, " + graph::datasetName(id),
        {"epoch", "mean loss", "eval accuracy", "sim time (s)",
         "SSD->host MB"});

    sim::Rng rng(2022);
    sim::Tick clock = 0;
    for (int epoch = 0; epoch < 3; ++epoch) {
        double loss_sum = 0;
        for (std::size_t b = 0; b < epoch_batches; ++b) {
            auto targets = gnn::selectTargets(wl.graph, 512, rng);
            auto job = system.producer().startBatch(targets, rng);
            while (!job->done())
                clock = job->step(clock);
            loss_sum += model.trainStep(job->takeSubgraph(),
                                        train_features);
        }
        auto eval_targets = gnn::selectTargets(wl.graph, 1024, rng);
        auto eval_job = system.producer().startBatch(eval_targets, rng);
        while (!eval_job->done())
            clock = eval_job->step(clock);
        double acc =
            model.evaluate(eval_job->takeSubgraph(), train_features);

        auto *isp = dynamic_cast<pipeline::IspProducer *>(
            &system.producer());
        table.addRow(
            {std::to_string(epoch),
             core::fmt(loss_sum / double(epoch_batches), 4),
             core::fmtPct(acc), core::fmt(sim::toSeconds(clock), 3),
             core::fmt(isp->accumulated().bytes_to_host / 1e6, 2)});
    }
    table.print(std::cout);
    SS_INFORM("every sampled byte crossed PCIe as a dense subgraph — "
              "the edge list itself never left the SSD");
    return 0;
}
