/**
 * @file
 * Capacity planner: the practitioner-facing question the paper opens
 * with — "my graph no longer fits in DRAM; what happens to training
 * time if I move it to storage, and which design should I buy?"
 *
 * For each Table I dataset this example reports the paper-scale
 * capacity requirement, whether it fits a given DRAM budget, and the
 * simulated training throughput of every viable design point.
 *
 * Run: ./capacity_planner [dram_budget_gb]
 */

#include <iostream>
#include <string>

#include "core/report.hh"
#include "core/system.hh"
#include "sim/logging.hh"

using namespace smartsage;

int
main(int argc, char **argv)
{
    double dram_gb = argc >= 2 ? std::stod(argv[1]) : 192.0;
    SS_INFORM("planning for a host with ", core::fmt(dram_gb, 0),
              " GB of DRAM (paper testbed: 192 GB)");

    core::TableReporter table(
        "Capacity plan @ " + core::fmt(dram_gb, 0) + " GB DRAM",
        {"Dataset", "paper size GB", "fits DRAM?", "best viable design",
         "batches/s", "penalty vs DRAM"});

    for (auto id : graph::allDatasets()) {
        const auto &spec = graph::datasetSpec(id);
        bool fits = spec.paper_large.size_gb <= dram_gb;
        core::Workload wl = core::Workload::make(id);

        auto throughput = [&](core::DesignPoint dp) {
            core::SystemConfig sc;
            sc.design = dp;
            sc.pipeline.num_batches = 12;
            core::GnnSystem system(sc, wl);
            return system.runPipeline().throughput();
        };

        double dram_tput = throughput(core::DesignPoint::DramOracle);
        if (fits) {
            table.addRow({spec.name,
                          core::fmt(spec.paper_large.size_gb, 0), "yes",
                          "DRAM (in-memory)", core::fmt(dram_tput, 1),
                          "1.00x"});
            continue;
        }

        // Does not fit: the SSD-resident designs are the options.
        double hwsw = throughput(core::DesignPoint::SmartSageHwSw);
        table.addRow({spec.name, core::fmt(spec.paper_large.size_gb, 0),
                      "no", "SmartSAGE (HW/SW)", core::fmt(hwsw, 1),
                      core::fmtX(dram_tput / hwsw)});
    }
    table.print(std::cout);
    std::cout << "note: 'penalty vs DRAM' compares against an oracular "
                 "host with unbounded memory — the configuration that "
                 "does not exist, which is the paper's point.\n";
    return 0;
}
