/**
 * @file
 * Capacity planner: the practitioner-facing question the paper opens
 * with — "my graph no longer fits in DRAM; what happens to training
 * time if I move it to storage, and which design should I buy?"
 *
 * Implemented as a custom core::Scenario (all Table I datasets x
 * {DRAM oracle, SmartSAGE HW/SW}) executed through ExperimentRunner;
 * the planning table is post-processed from the grid results.
 *
 * Run: ./capacity_planner [dram_budget_gb] [--workers <n>]
 */

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiment.hh"
#include "core/scenario.hh"
#include "sim/logging.hh"

using namespace smartsage;

int
main(int argc, char **argv)
{
    double dram_gb = 192.0;
    unsigned workers = 1;
    auto fail_usage = [] {
        std::cerr << "usage: capacity_planner [dram_budget_gb] "
                     "[--workers <n>]\n";
        return 2;
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--workers" && i + 1 < argc) {
            int n = std::atoi(argv[++i]);
            if (n < 1)
                return fail_usage();
            workers = static_cast<unsigned>(n);
            continue;
        }
        char *end = nullptr;
        double gb = std::strtod(arg.c_str(), &end);
        if (arg.empty() || *end != '\0' || !std::isfinite(gb) || gb <= 0)
            return fail_usage();
        dram_gb = gb;
    }
    SS_INFORM("planning for a host with ", core::fmt(dram_gb, 0),
              " GB of DRAM (paper testbed: 192 GB)");

    core::Scenario scenario;
    scenario.family = "capacity";
    scenario.title = "Capacity grid: DRAM oracle vs SmartSAGE (HW/SW)";
    scenario.kind = core::ExperimentKind::Pipeline;
    scenario.datasets = graph::allDatasets();
    scenario.designs = {core::DesignPoint::DramOracle,
                        core::DesignPoint::SmartSageHwSw};
    scenario.worker_grid = {12};
    scenario.num_batches = 12;

    core::RunnerOptions options;
    options.workers = workers;
    core::ExperimentRunner runner(options);
    core::ScenarioRun run = runner.run(scenario);

    auto throughput = [&run](graph::DatasetId id,
                             core::DesignPoint dp) {
        for (const auto &cell : run.cells)
            if (cell.cell.dataset == id &&
                cell.cell.backend == core::backendIdOf(dp))
                return cell.metric("batches_per_s");
        return 0.0;
    };

    core::TableReporter table(
        "Capacity plan @ " + core::fmt(dram_gb, 0) + " GB DRAM",
        {"Dataset", "paper size GB", "fits DRAM?", "best viable design",
         "batches/s", "penalty vs DRAM"});

    for (auto id : graph::allDatasets()) {
        const auto &spec = graph::datasetSpec(id);
        bool fits = spec.paper_large.size_gb <= dram_gb;
        double dram_tput =
            throughput(id, core::DesignPoint::DramOracle);
        if (fits) {
            table.addRow({spec.name,
                          core::fmt(spec.paper_large.size_gb, 0), "yes",
                          "DRAM (in-memory)", core::fmt(dram_tput, 1),
                          "1.00x"});
            continue;
        }

        // Does not fit: the SSD-resident designs are the options.
        double hwsw =
            throughput(id, core::DesignPoint::SmartSageHwSw);
        table.addRow({spec.name, core::fmt(spec.paper_large.size_gb, 0),
                      "no", "SmartSAGE (HW/SW)", core::fmt(hwsw, 1),
                      core::fmtX(dram_tput / hwsw)});
    }
    table.print(std::cout);
    std::cout << "note: 'penalty vs DRAM' compares against an oracular "
                 "host with unbounded memory — the configuration that "
                 "does not exist, which is the paper's point.\n";
    return 0;
}
