#include "subgraph.hh"

#include "sim/logging.hh"

namespace smartsage::gnn
{

std::uint64_t
Subgraph::totalSampledEdges() const
{
    std::uint64_t total = 0;
    for (const auto &b : blocks)
        total += b.numEdges();
    return total;
}

void
Subgraph::checkInvariants() const
{
    SS_ASSERT(frontiers.size() == blocks.size() + 1,
              "frontier/block count mismatch: ", frontiers.size(),
              " vs ", blocks.size());
    for (std::size_t h = 0; h < blocks.size(); ++h) {
        const auto &b = blocks[h];
        SS_ASSERT(b.numDsts() == frontiers[h].size(),
                  "block ", h, " dst count mismatch");
        SS_ASSERT(b.offsets.front() == 0 &&
                  b.offsets.back() == b.src_index.size(),
                  "block ", h, " offsets malformed");
        for (std::uint32_t s : b.src_index) {
            SS_ASSERT(s < frontiers[h + 1].size(),
                      "block ", h, " src index ", s, " out of range");
        }
        // Self-embedding prefix property.
        for (std::size_t i = 0; i < frontiers[h].size(); ++i) {
            SS_ASSERT(frontiers[h + 1][i] == frontiers[h][i],
                      "frontier ", h + 1,
                      " must begin with frontier ", h);
        }
    }
}

} // namespace smartsage::gnn
