/**
 * @file
 * Neighbor samplers: GraphSAGE fanout sampling (Algorithm 1 of the
 * paper) and GraphSAINT random walks (Section VI-F).
 *
 * Samplers are *functional* — they produce real subgraphs the GNN can
 * train on — and simultaneously *observable*: every memory touch is
 * reported to a SampleVisitor, which is how the storage timing models
 * replay the exact access stream of each design point.
 *
 * Two execution paths produce bit-identical subgraphs:
 *
 *  - the **fast path** (`sampleInto` with a null visitor): frontier
 *    dedup through a reusable epoch-stamped flat table, a caller-owned
 *    SampleScratch arena, and statically dispatched (no-op) visitor
 *    calls — zero allocation and zero virtual dispatch per edge in
 *    steady state;
 *  - the **instrumented path** (non-null visitor): the same algorithm
 *    with every access forwarded through the virtual SampleVisitor
 *    interface, used by the storage timing drivers.
 *
 * `sampleBaseline` preserves the original per-batch
 * `std::unordered_map`/`unordered_set` implementation as the reference
 * the golden tests and `bench/perf_hotpath` compare against.
 */

#ifndef SMARTSAGE_GNN_SAMPLER_HH
#define SMARTSAGE_GNN_SAMPLER_HH

#include <cstdint>
#include <vector>

#include "graph/csr.hh"
#include "sim/flat_table.hh"
#include "sim/random.hh"
#include "subgraph.hh"

namespace smartsage::gnn
{

/** Observer of the sampler's memory access stream. */
class SampleVisitor
{
  public:
    virtual ~SampleVisitor() = default;

    /** A new mini-batch of @p num_targets begins. */
    virtual void onBatchStart(std::size_t num_targets) { (void)num_targets; }

    /** The degree/offset entry of node @p u was read. */
    virtual void onOffsetRead(graph::LocalNodeId u) { (void)u; }

    /**
     * Edge-array entry @p entry_index (absolute index into the neighbor
     * array) was read while sampling node @p u.
     */
    virtual void
    onEdgeEntryRead(graph::LocalNodeId u, std::uint64_t entry_index)
    {
        (void)u;
        (void)entry_index;
    }

    /** Node @p v was chosen as a sampled neighbor of @p u. */
    virtual void
    onSampled(graph::LocalNodeId u, graph::LocalNodeId v)
    {
        (void)u;
        (void)v;
    }

    /** The mini-batch completed. */
    virtual void onBatchEnd() {}
};

/** No-op visitor for functional-only use. */
class NullVisitor final : public SampleVisitor
{
};

/**
 * Reusable per-worker sampling arena. After the first batch against a
 * given graph, sampling through the same scratch performs no heap
 * allocation. One instance per thread — instances are not
 * synchronized.
 */
struct SampleScratch
{
    /** Frontier dedup: node id -> position within the next frontier. */
    sim::FlatEpochTable<std::uint32_t> frontier_index;
    /** Floyd-sampled edge slots of the node being expanded. */
    std::vector<std::uint64_t> picks;
    /** Partial Fisher-Yates pool for selectTargetsInto. */
    std::vector<graph::LocalNodeId> fy_pool;
};

/** Common interface of all mini-batch subgraph samplers. */
class AnySampler
{
  public:
    virtual ~AnySampler() = default;

    /**
     * Sample a subgraph for @p targets into @p out, reusing @p scratch
     * and @p out's buffers (zero steady-state allocation with a null
     * @p visitor; instrumented path when @p visitor is non-null).
     */
    virtual void sampleInto(const graph::CsrGraph &graph,
                            const std::vector<graph::LocalNodeId> &targets,
                            sim::Rng &rng, SampleScratch &scratch,
                            Subgraph &out,
                            SampleVisitor *visitor = nullptr) const = 0;

    /**
     * Convenience wrapper: sample into a fresh Subgraph through a
     * thread-local scratch. Same output as sampleInto.
     */
    Subgraph sample(const graph::CsrGraph &graph,
                    const std::vector<graph::LocalNodeId> &targets,
                    sim::Rng &rng,
                    SampleVisitor *visitor = nullptr) const;
};

/**
 * GraphSAGE sampler: per hop h, sample `fanouts[h]` neighbors of every
 * frontier node (without replacement when the degree allows, Floyd's
 * algorithm; all neighbors when degree <= fanout).
 */
class SageSampler : public AnySampler
{
  public:
    /** @param fanouts per-hop sample sizes, e.g. {25, 10} (paper default) */
    explicit SageSampler(std::vector<unsigned> fanouts);

    void sampleInto(const graph::CsrGraph &graph,
                    const std::vector<graph::LocalNodeId> &targets,
                    sim::Rng &rng, SampleScratch &scratch, Subgraph &out,
                    SampleVisitor *visitor = nullptr) const override;

    /**
     * Reference implementation (pre-optimization hash-based dedup,
     * virtual visitor dispatch). Bit-identical output to sampleInto;
     * kept for golden tests and the perf_hotpath naive/fast comparison.
     */
    Subgraph sampleBaseline(const graph::CsrGraph &graph,
                            const std::vector<graph::LocalNodeId> &targets,
                            sim::Rng &rng,
                            SampleVisitor *visitor = nullptr) const;

    const std::vector<unsigned> &fanouts() const { return fanouts_; }

    /** Expected sampled edges per batch (upper bound, full-degree). */
    std::uint64_t expectedEdges(std::size_t batch_size) const;

  private:
    std::vector<unsigned> fanouts_;
};

/**
 * GraphSAINT-style random-walk sampler: from each of the batch's root
 * nodes, walk `walk_length` steps; the visited set induces the
 * subgraph. Produces the same Subgraph/block structure (one block per
 * step) so the training loop and timing drivers are sampler-agnostic.
 */
class SaintSampler : public AnySampler
{
  public:
    explicit SaintSampler(unsigned walk_length);

    void sampleInto(const graph::CsrGraph &graph,
                    const std::vector<graph::LocalNodeId> &roots,
                    sim::Rng &rng, SampleScratch &scratch, Subgraph &out,
                    SampleVisitor *visitor = nullptr) const override;

    /** Reference implementation; see SageSampler::sampleBaseline. */
    Subgraph sampleBaseline(const graph::CsrGraph &graph,
                            const std::vector<graph::LocalNodeId> &roots,
                            sim::Rng &rng,
                            SampleVisitor *visitor = nullptr) const;

    unsigned walkLength() const { return walk_length_; }

  private:
    unsigned walk_length_;
};

/**
 * The calling thread's shared sampling arena, used by every
 * convenience wrapper (AnySampler::sample, selectTargets, the parallel
 * pipeline's workers) so a thread holds exactly one O(numNodes) dedup
 * table no matter how many entry points it mixes.
 */
SampleScratch &threadSampleScratch();

/**
 * Uniformly draw @p count distinct target nodes for a mini-batch into
 * @p out, reusing @p scratch. Sparse batches use epoch-stamped
 * rejection sampling; once @p count approaches numNodes() (where
 * rejection degrades to coupon-collector behavior) it switches to a
 * partial Fisher-Yates shuffle over the scratch's index pool.
 */
void selectTargetsInto(const graph::CsrGraph &graph, std::size_t count,
                       sim::Rng &rng, SampleScratch &scratch,
                       std::vector<graph::LocalNodeId> &out);

/** Convenience wrapper over selectTargetsInto (thread-local scratch). */
std::vector<graph::LocalNodeId> selectTargets(const graph::CsrGraph &graph,
                                              std::size_t count,
                                              sim::Rng &rng);

} // namespace smartsage::gnn

#endif // SMARTSAGE_GNN_SAMPLER_HH
