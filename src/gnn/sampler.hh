/**
 * @file
 * Neighbor samplers: GraphSAGE fanout sampling (Algorithm 1 of the
 * paper) and GraphSAINT random walks (Section VI-F).
 *
 * Samplers are *functional* — they produce real subgraphs the GNN can
 * train on — and simultaneously *observable*: every memory touch is
 * reported to a SampleVisitor, which is how the storage timing models
 * replay the exact access stream of each design point.
 */

#ifndef SMARTSAGE_GNN_SAMPLER_HH
#define SMARTSAGE_GNN_SAMPLER_HH

#include <cstdint>
#include <vector>

#include "graph/csr.hh"
#include "sim/random.hh"
#include "subgraph.hh"

namespace smartsage::gnn
{

/** Observer of the sampler's memory access stream. */
class SampleVisitor
{
  public:
    virtual ~SampleVisitor() = default;

    /** A new mini-batch of @p num_targets begins. */
    virtual void onBatchStart(std::size_t num_targets) { (void)num_targets; }

    /** The degree/offset entry of node @p u was read. */
    virtual void onOffsetRead(graph::LocalNodeId u) { (void)u; }

    /**
     * Edge-array entry @p entry_index (absolute index into the neighbor
     * array) was read while sampling node @p u.
     */
    virtual void
    onEdgeEntryRead(graph::LocalNodeId u, std::uint64_t entry_index)
    {
        (void)u;
        (void)entry_index;
    }

    /** Node @p v was chosen as a sampled neighbor of @p u. */
    virtual void
    onSampled(graph::LocalNodeId u, graph::LocalNodeId v)
    {
        (void)u;
        (void)v;
    }

    /** The mini-batch completed. */
    virtual void onBatchEnd() {}
};

/** No-op visitor for functional-only use. */
class NullVisitor : public SampleVisitor
{
};

/** Common interface of all mini-batch subgraph samplers. */
class AnySampler
{
  public:
    virtual ~AnySampler() = default;

    /**
     * Sample a subgraph for @p targets, reporting every memory touch
     * to @p visitor (may be null).
     */
    virtual Subgraph sample(const graph::CsrGraph &graph,
                            const std::vector<graph::LocalNodeId> &targets,
                            sim::Rng &rng,
                            SampleVisitor *visitor = nullptr) const = 0;
};

/**
 * GraphSAGE sampler: per hop h, sample `fanouts[h]` neighbors of every
 * frontier node (without replacement when the degree allows, Floyd's
 * algorithm; all neighbors when degree <= fanout).
 */
class SageSampler : public AnySampler
{
  public:
    /** @param fanouts per-hop sample sizes, e.g. {25, 10} (paper default) */
    explicit SageSampler(std::vector<unsigned> fanouts);

    /**
     * Sample a subgraph for @p targets.
     * @param visitor receives the access stream (may be null)
     */
    Subgraph sample(const graph::CsrGraph &graph,
                    const std::vector<graph::LocalNodeId> &targets,
                    sim::Rng &rng,
                    SampleVisitor *visitor = nullptr) const override;

    const std::vector<unsigned> &fanouts() const { return fanouts_; }

    /** Expected sampled edges per batch (upper bound, full-degree). */
    std::uint64_t expectedEdges(std::size_t batch_size) const;

  private:
    std::vector<unsigned> fanouts_;
};

/**
 * GraphSAINT-style random-walk sampler: from each of the batch's root
 * nodes, walk `walk_length` steps; the visited set induces the
 * subgraph. Produces the same Subgraph/block structure (one block per
 * step) so the training loop and timing drivers are sampler-agnostic.
 */
class SaintSampler : public AnySampler
{
  public:
    explicit SaintSampler(unsigned walk_length);

    Subgraph sample(const graph::CsrGraph &graph,
                    const std::vector<graph::LocalNodeId> &roots,
                    sim::Rng &rng,
                    SampleVisitor *visitor = nullptr) const override;

    unsigned walkLength() const { return walk_length_; }

  private:
    unsigned walk_length_;
};

/** Uniformly draw @p count distinct target nodes for a mini-batch. */
std::vector<graph::LocalNodeId> selectTargets(const graph::CsrGraph &graph,
                                              std::size_t count,
                                              sim::Rng &rng);

} // namespace smartsage::gnn

#endif // SMARTSAGE_GNN_SAMPLER_HH
