/**
 * @file
 * Analytic GPU training-time model for the backend GNN stages.
 *
 * The paper's backend (steps 4-5 of Fig 1) runs dense MLP math on a
 * Tesla T4; its duration depends only on subgraph shape and layer
 * widths, not on where the edge list lives. We therefore model it
 * analytically from MAC counts at an effective throughput, plus a
 * fixed kernel-launch overhead.
 */

#ifndef SMARTSAGE_GNN_GPU_MODEL_HH
#define SMARTSAGE_GNN_GPU_MODEL_HH

#include <cstdint>

#include "model.hh"
#include "sim/types.hh"
#include "subgraph.hh"

namespace smartsage::gnn
{

/** GPU execution-time parameters. */
struct GpuConfig
{
    double effective_tflops = 0.5; //!< sustained fp32 MACs/s x 1e12
    sim::Tick launch_overhead = sim::us(3500); //!< kernel launches + optimizer step
    double fwd_bwd_factor = 3.0;   //!< backward ~ 2x forward compute
};

/** Analytic timing of the GPU training stage. */
class GpuTimingModel
{
  public:
    GpuTimingModel(const GpuConfig &config, const ModelConfig &model);

    /** Wall time of forward+backward+update for @p sg. */
    sim::Tick batchTime(const Subgraph &sg) const;

    /** Total MACs of one forward pass over @p sg. */
    std::uint64_t forwardMacs(const Subgraph &sg) const;

    const GpuConfig &config() const { return config_; }

  private:
    GpuConfig config_;
    ModelConfig model_;
};

} // namespace smartsage::gnn

#endif // SMARTSAGE_GNN_GPU_MODEL_HH
