#include "feature_table.hh"

#include "sim/logging.hh"

namespace smartsage::gnn
{

namespace
{

std::uint64_t
hashMix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/** Map a 64-bit hash to [-1, 1). */
float
toUnit(std::uint64_t h)
{
    return static_cast<float>(
        static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0);
}

} // namespace

FeatureTable::FeatureTable(std::uint64_t num_nodes, unsigned dim,
                           unsigned num_classes, std::uint64_t seed)
    : num_nodes_(num_nodes), dim_(dim), num_classes_(num_classes),
      seed_(seed)
{
    SS_ASSERT(num_nodes > 0 && dim > 0 && num_classes > 1,
              "degenerate feature table shape");
}

std::uint32_t
FeatureTable::label(graph::LocalNodeId u) const
{
    SS_ASSERT(u < num_nodes_, "node ", u, " out of range");
    return static_cast<std::uint32_t>(hashMix(seed_ ^ (u * 31 + 7)) %
                                      num_classes_);
}

float
FeatureTable::element(std::uint64_t node, unsigned col) const
{
    // Base noise per (node, col), plus a class centroid per (label,
    // col) so classes are linearly separable in expectation.
    float noise = toUnit(hashMix(seed_ ^ (node << 20) ^ col));
    std::uint32_t y = static_cast<std::uint32_t>(
        hashMix(seed_ ^ (node * 31 + 7)) % num_classes_);
    float centroid = toUnit(hashMix(seed_ ^ 0xc1a55ULL ^
                                    (std::uint64_t(y) << 32) ^ col));
    return 0.5f * noise + 0.8f * centroid;
}

void
FeatureTable::gather(std::span<const graph::LocalNodeId> nodes,
                     Tensor2D &out) const
{
    out = Tensor2D(nodes.size(), dim_);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        SS_ASSERT(nodes[i] < num_nodes_, "node out of range in gather");
        auto row = out.row(i);
        for (unsigned j = 0; j < dim_; ++j)
            row[j] = element(nodes[i], j);
    }
}

std::vector<std::uint32_t>
FeatureTable::labels(std::span<const graph::LocalNodeId> nodes) const
{
    std::vector<std::uint32_t> out;
    out.reserve(nodes.size());
    for (auto u : nodes)
        out.push_back(label(u));
    return out;
}

} // namespace smartsage::gnn
