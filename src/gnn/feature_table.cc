#include "feature_table.hh"

#include "sim/logging.hh"

namespace smartsage::gnn
{

namespace
{

std::uint64_t
hashMix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/** Map a 64-bit hash to [-1, 1). */
float
toUnit(std::uint64_t h)
{
    return static_cast<float>(
        static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0);
}

} // namespace

FeatureTable::FeatureTable(std::uint64_t num_nodes, unsigned dim,
                           unsigned num_classes, std::uint64_t seed)
    : num_nodes_(num_nodes), dim_(dim), num_classes_(num_classes),
      seed_(seed)
{
    SS_ASSERT(num_nodes > 0 && dim > 0 && num_classes > 1,
              "degenerate feature table shape");
    // The class centroid depends only on (label, col): precompute the
    // centroid rows once so gather() hashes once per element instead
    // of three times. Raw (unscaled) values are cached so the per-
    // element arithmetic — and therefore every generated feature —
    // stays exactly what it was before the cache existed.
    centroid_.resize(std::size_t(num_classes_) * dim_);
    for (unsigned y = 0; y < num_classes_; ++y) {
        for (unsigned j = 0; j < dim_; ++j)
            centroid_[std::size_t(y) * dim_ + j] =
                toUnit(hashMix(seed_ ^ 0xc1a55ULL ^
                               (std::uint64_t(y) << 32) ^ j));
    }
}

std::uint32_t
FeatureTable::label(graph::LocalNodeId u) const
{
    SS_ASSERT(u < num_nodes_, "node ", u, " out of range");
    return static_cast<std::uint32_t>(hashMix(seed_ ^ (u * 31 + 7)) %
                                      num_classes_);
}

float
FeatureTable::element(std::uint64_t node, unsigned col) const
{
    // Base noise per (node, col), plus a class centroid per (label,
    // col) so classes are linearly separable in expectation. Must stay
    // in lockstep with the loop in gather().
    float noise = toUnit(hashMix(seed_ ^ (node << 20) ^ col));
    std::uint32_t y = static_cast<std::uint32_t>(
        hashMix(seed_ ^ (node * 31 + 7)) % num_classes_);
    return 0.5f * noise + 0.8f * centroid_[std::size_t(y) * dim_ + col];
}

void
FeatureTable::gather(std::span<const graph::LocalNodeId> nodes,
                     Tensor2D &out) const
{
    out.resizeTo(nodes.size(), dim_); // every element written below
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const std::uint64_t node = nodes[i];
        SS_ASSERT(node < num_nodes_, "node out of range in gather");
        auto row = out.row(i);
        const std::uint32_t y = static_cast<std::uint32_t>(
            hashMix(seed_ ^ (node * 31 + 7)) % num_classes_);
        const float *crow = centroid_.data() + std::size_t(y) * dim_;
        const std::uint64_t base = seed_ ^ (node << 20);
        for (unsigned j = 0; j < dim_; ++j)
            row[j] = 0.5f * toUnit(hashMix(base ^ j)) + 0.8f * crow[j];
    }
}

std::vector<std::uint32_t>
FeatureTable::labels(std::span<const graph::LocalNodeId> nodes) const
{
    std::vector<std::uint32_t> out;
    labelsInto(nodes, out);
    return out;
}

void
FeatureTable::labelsInto(std::span<const graph::LocalNodeId> nodes,
                         std::vector<std::uint32_t> &out) const
{
    out.clear();
    out.reserve(nodes.size());
    for (auto u : nodes)
        out.push_back(label(u));
}

} // namespace smartsage::gnn
