/**
 * @file
 * GraphSAGE mean-aggregator convolution layer (CONVOLVE() of Fig 2),
 * with full forward/backward through the sampled blocks.
 *
 *   h_dst_out = act( h_dst * W_self + mean(h_srcs) * W_neigh + b )
 */

#ifndef SMARTSAGE_GNN_LAYERS_HH
#define SMARTSAGE_GNN_LAYERS_HH

#include <vector>

#include "subgraph.hh"
#include "tensor.hh"

namespace smartsage::gnn
{

/** Accumulated parameter gradients for one layer. */
struct SageLayerGrads
{
    Tensor2D w_self;
    Tensor2D w_neigh;
    Tensor2D bias;
};

/** Per-forward state the backward pass needs. */
struct SageContext
{
    Tensor2D h_self;           //!< dst rows of the input activations
    Tensor2D h_agg;            //!< mean-aggregated neighbor activations
    std::vector<char> relu_mask; //!< empty when the layer is linear
    const SampledBlock *block = nullptr;
    std::size_t src_rows = 0;  //!< |frontier[h+1]| for dH_src sizing

    /** Backward GEMM workspaces (reused across batches); scratch
     *  only, so mutating them through a const context is fine. */
    mutable Tensor2D d_self_ws;
    mutable Tensor2D d_agg_ws;
};

/** One GraphSAGE layer with mean aggregation. */
class SageMeanLayer
{
  public:
    /**
     * @param in_dim  input activation width
     * @param out_dim output activation width
     * @param relu    apply ReLU (hidden layers) or stay linear (output)
     * @param rng     weight init stream
     */
    SageMeanLayer(unsigned in_dim, unsigned out_dim, bool relu,
                  sim::Rng &rng);

    /**
     * Forward over one block.
     * @param h_src activations of frontier[h+1] (src_rows x in_dim)
     * @param block sampled connectivity frontier[h] <- frontier[h+1]
     * @param ctx   out-param saved for backward
     * @return activations of frontier[h] (num_dsts x out_dim)
     */
    Tensor2D forward(const Tensor2D &h_src, const SampledBlock &block,
                     SageContext &ctx) const;

    /**
     * Backward over one block.
     * @param d_out gradient w.r.t. this layer's output
     * @param ctx   context captured by forward
     * @param grads out-param: accumulated parameter gradients
     * @return gradient w.r.t. h_src (src_rows x in_dim)
     */
    Tensor2D backward(const Tensor2D &d_out, const SageContext &ctx,
                      SageLayerGrads &grads) const;

    /**
     * Workspace-reusing forward: same math as forward(), but every
     * intermediate (including ctx tensors and @p out) is reshaped in
     * place, so a warm caller performs no allocation. The training hot
     * loop (SageModel::trainStep) runs on this path.
     */
    void forwardInto(const Tensor2D &h_src, const SampledBlock &block,
                     SageContext &ctx, Tensor2D &out) const;

    /**
     * Workspace-reusing backward. @p d_out is consumed in place (the
     * ReLU mask is applied to it); @p d_src receives the input
     * gradient. @p ctx provides the forward tensors and two scratch
     * workspaces.
     */
    void backwardInto(Tensor2D &d_out, const SageContext &ctx,
                      SageLayerGrads &grads, Tensor2D &d_src) const;

    /** SGD step: p -= lr * g. */
    void applyGrads(const SageLayerGrads &grads, float lr);

    unsigned inDim() const { return in_dim_; }
    unsigned outDim() const { return out_dim_; }
    bool hasRelu() const { return relu_; }

    const Tensor2D &wSelf() const { return w_self_; }
    const Tensor2D &wNeigh() const { return w_neigh_; }
    const Tensor2D &biasRow() const { return bias_; }

    /** Direct parameter access for gradient-check tests. */
    Tensor2D &mutableWSelf() { return w_self_; }
    Tensor2D &mutableWNeigh() { return w_neigh_; }
    Tensor2D &mutableBias() { return bias_; }

    /** Serialize every parameter tensor (checkpointing). */
    void saveState(sim::ByteWriter &writer) const;

    /** Restore parameters saved by saveState(); shapes must match. */
    void loadState(sim::ByteReader &reader);

    /** Multiply-accumulate count of one forward pass (GPU model). */
    static std::uint64_t forwardMacs(std::uint64_t num_dsts,
                                     unsigned in_dim, unsigned out_dim);

  private:
    unsigned in_dim_;
    unsigned out_dim_;
    bool relu_;
    Tensor2D w_self_;  //!< in_dim x out_dim
    Tensor2D w_neigh_; //!< in_dim x out_dim
    Tensor2D bias_;    //!< 1 x out_dim

    /** Mean-aggregate src activations into per-dst rows (reshapes
     *  @p agg in place). */
    void aggregateInto(const Tensor2D &h_src, const SampledBlock &block,
                       Tensor2D &agg) const;
};

} // namespace smartsage::gnn

#endif // SMARTSAGE_GNN_LAYERS_HH
