/**
 * @file
 * Minimal dense 2-D float tensor with the operations GraphSAGE needs.
 *
 * Row-major, CPU-only. The backend GNN stages of the paper run on a
 * GPU; functionally the math is identical, and the *timing* of the GPU
 * is modeled separately (gpu_model.hh), so a simple correct CPU tensor
 * is the right substrate here.
 */

#ifndef SMARTSAGE_GNN_TENSOR_HH
#define SMARTSAGE_GNN_TENSOR_HH

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "sim/random.hh"
#include "sim/serialize.hh"

namespace smartsage::gnn
{

/** Row-major dense matrix of floats. */
class Tensor2D
{
  public:
    Tensor2D() = default;

    /** Zero-initialized rows x cols. */
    Tensor2D(std::size_t rows, std::size_t cols);

    /** Xavier/Glorot-style uniform init in [-scale, scale]. */
    static Tensor2D uniform(std::size_t rows, std::size_t cols,
                            float scale, sim::Rng &rng);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    float &at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

    std::span<float> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
    std::span<const float> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

    const std::vector<float> &data() const { return data_; }
    std::vector<float> &data() { return data_; }

    /** this += other (same shape). */
    Tensor2D &operator+=(const Tensor2D &other);

    /** this *= scalar. */
    Tensor2D &operator*=(float s);

    /** Zero every element, keeping the shape. */
    void zero();

    /**
     * Reshape to rows x cols reusing the existing buffer (contents
     * unspecified afterwards). The workspace-reuse primitive of the
     * training hot loop: steady-state reshapes never allocate once the
     * buffer has grown to the episode's high-water mark.
     */
    void
    resizeTo(std::size_t rows, std::size_t cols)
    {
        rows_ = rows;
        cols_ = cols;
        data_.resize(rows * cols);
    }

    /** resizeTo, then zero-fill. */
    void
    resizeToZero(std::size_t rows, std::size_t cols)
    {
        resizeTo(rows, cols);
        zero();
    }

    /** Frobenius-norm squared (for tests and gradient clipping). */
    double normSq() const;

    /** Serialize shape + element bit patterns (checkpointing). */
    void saveState(sim::ByteWriter &writer) const;

    /** Restore a tensor saved by saveState(), bit-exactly. */
    void loadState(sim::ByteReader &reader);

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/**
 * GEMM/aggregate kernel selection. Tiled is the default: cache-blocked,
 * register-tiled loops. Naive preserves the original reference loops
 * and exists for golden equivalence tests and the perf_hotpath
 * naive-vs-fast comparison. The flag is process-global and atomic;
 * flip it only between batches, not mid-kernel.
 */
enum class KernelMode { Tiled, Naive };

void setKernelMode(KernelMode mode);
KernelMode kernelMode();

/** RAII guard restoring the previous KernelMode (for tests/bench). */
class ScopedKernelMode
{
  public:
    explicit ScopedKernelMode(KernelMode mode) : prev_(kernelMode())
    {
        setKernelMode(mode);
    }
    ~ScopedKernelMode() { setKernelMode(prev_); }
    ScopedKernelMode(const ScopedKernelMode &) = delete;
    ScopedKernelMode &operator=(const ScopedKernelMode &) = delete;

  private:
    KernelMode prev_;
};

/**
 * Microkernel flavor behind KernelMode::Tiled. Scalar keeps the
 * portable cache-blocked loops; Avx2 swaps the inner loops for
 * 8-lane FMA intrinsics (runtime-gated on cpuid, so an Avx2 request
 * on a machine without the ISA silently runs Scalar); Auto probes
 * cpuid once and picks the fastest available flavor. Like KernelMode
 * the selection is process-global and atomic — flip it between
 * batches, not mid-kernel. KernelMode::Naive bypasses dispatch
 * entirely: the reference loops stay the golden baseline for every
 * flavor.
 *
 * Numerics: the AVX2 GEMMs fuse multiply-add and reorder the k
 * reduction, so outputs match Scalar to tolerance, not bitwise. The
 * row microkernels (rowAccumulate/rowAccumulateScale) are elementwise
 * and bit-identical across flavors.
 */
enum class KernelDispatch { Auto, Scalar, Avx2 };

/** This CPU (and build) can run the AVX2 microkernels. */
bool cpuSupportsAvx2();

void setKernelDispatch(KernelDispatch dispatch);
/** The configured flavor (possibly Auto). */
KernelDispatch kernelDispatch();
/** The flavor matmuls actually run: Auto and unsupported Avx2
 *  resolve against cpuid; never returns Auto. */
KernelDispatch resolvedKernelDispatch();

/** Display name ("auto", "scalar", "avx2"). */
const char *kernelDispatchName(KernelDispatch dispatch);

/** Map the `kernel.dispatch` knob value: 0 = auto, 1 = scalar,
 *  2 = avx2. Fatal on anything else. */
KernelDispatch kernelDispatchFromKnob(double value);

/**
 * GEMM worker-thread count for the row-block parallel path; <= 1 runs
 * inline on the caller. The decomposition uses a fixed row-block size
 * and each block writes a disjoint slice of C, so results are
 * bit-identical at any thread count — including 1 — for a given
 * dispatch flavor. The backing sim::ThreadPool is created lazily on
 * the first threaded GEMM and rebuilt when the count changes.
 */
void setGemmThreads(unsigned threads);
unsigned gemmThreads();

/**
 * The `kernel.*` knob block (scenario-sweepable). Settings are
 * process-global once applied — a scenario sweeping them should run
 * its cells sequentially (--workers 1).
 */
struct KernelConfig
{
    KernelDispatch dispatch = KernelDispatch::Auto;
    unsigned gemm_threads = 1;
};

/**
 * Apply one `kernel.`-namespace knob (namespace already stripped):
 * `dispatch` (0 = auto, 1 = scalar, 2 = avx2) or `gemm_threads`
 * ([1, 64]). Fatal on out-of-range values. @return false if the key
 * is unknown
 */
bool applyKnob(KernelConfig &config, std::string_view key, double value);

/** Install @p config into the process-global dispatch state. */
void applyKernelConfig(const KernelConfig &config);

/** RAII guard restoring the previous KernelDispatch. */
class ScopedKernelDispatch
{
  public:
    explicit ScopedKernelDispatch(KernelDispatch dispatch)
        : prev_(kernelDispatch())
    {
        setKernelDispatch(dispatch);
    }
    ~ScopedKernelDispatch() { setKernelDispatch(prev_); }
    ScopedKernelDispatch(const ScopedKernelDispatch &) = delete;
    ScopedKernelDispatch &operator=(const ScopedKernelDispatch &) = delete;

  private:
    KernelDispatch prev_;
};

/** RAII guard restoring the previous GEMM thread count. */
class ScopedGemmThreads
{
  public:
    explicit ScopedGemmThreads(unsigned threads) : prev_(gemmThreads())
    {
        setGemmThreads(threads);
    }
    ~ScopedGemmThreads() { setGemmThreads(prev_); }
    ScopedGemmThreads(const ScopedGemmThreads &) = delete;
    ScopedGemmThreads &operator=(const ScopedGemmThreads &) = delete;

  private:
    unsigned prev_;
};

// Row microkernels for the aggregate path (layers.cc): elementwise,
// dispatch-accelerated, and bit-identical across flavors (no
// reassociation, no FMA).

/** dst[j] += src[j] for j in [0, n). */
void rowAccumulate(float *dst, const float *src, std::size_t n);

/** dst[j] = (dst[j] + src[j]) * scale for j in [0, n). */
void rowAccumulateScale(float *dst, const float *src, float scale,
                        std::size_t n);

/** C = A * B. @pre A.cols == B.rows */
Tensor2D matmul(const Tensor2D &a, const Tensor2D &b);

/** C = A^T * B. @pre A.rows == B.rows */
Tensor2D matmulTN(const Tensor2D &a, const Tensor2D &b);

/** C = A * B^T. @pre A.cols == B.cols */
Tensor2D matmulNT(const Tensor2D &a, const Tensor2D &b);

// Workspace-reuse variants of the GEMMs: identical math, but the
// output tensor is reshaped in place (no allocation once warm).

/** c = A * B (c reshaped). */
void matmulInto(const Tensor2D &a, const Tensor2D &b, Tensor2D &c);

/** c += A * B. @pre c is a.rows x b.cols */
void matmulAccumulate(const Tensor2D &a, const Tensor2D &b, Tensor2D &c);

/** c = A^T * B (c reshaped). */
void matmulTNInto(const Tensor2D &a, const Tensor2D &b, Tensor2D &c);

/** c = A * B^T (c reshaped). */
void matmulNTInto(const Tensor2D &a, const Tensor2D &b, Tensor2D &c);

/** In-place ReLU; returns the pre-activation mask needed for backward. */
std::vector<char> reluForward(Tensor2D &x);

/** reluForward writing the mask into @p mask (capacity reused). */
void reluForwardInto(Tensor2D &x, std::vector<char> &mask);

/** dX = dY masked by the forward mask. */
void reluBackward(Tensor2D &grad, const std::vector<char> &mask);

/** Add row-vector @p bias (1 x C) to every row of @p x. */
void addBias(Tensor2D &x, const Tensor2D &bias);

/**
 * Softmax + cross-entropy over rows.
 * @param logits  N x C scores
 * @param labels  N class ids
 * @param grad    out: dLoss/dLogits (N x C), averaged over rows
 * @return mean loss
 */
double softmaxCrossEntropy(const Tensor2D &logits,
                           const std::vector<std::uint32_t> &labels,
                           Tensor2D &grad);

/** Row-wise argmax (predictions). */
std::vector<std::uint32_t> argmaxRows(const Tensor2D &logits);

} // namespace smartsage::gnn

#endif // SMARTSAGE_GNN_TENSOR_HH
