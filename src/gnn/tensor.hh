/**
 * @file
 * Minimal dense 2-D float tensor with the operations GraphSAGE needs.
 *
 * Row-major, CPU-only. The backend GNN stages of the paper run on a
 * GPU; functionally the math is identical, and the *timing* of the GPU
 * is modeled separately (gpu_model.hh), so a simple correct CPU tensor
 * is the right substrate here.
 */

#ifndef SMARTSAGE_GNN_TENSOR_HH
#define SMARTSAGE_GNN_TENSOR_HH

#include <cstddef>
#include <span>
#include <vector>

#include "sim/random.hh"
#include "sim/serialize.hh"

namespace smartsage::gnn
{

/** Row-major dense matrix of floats. */
class Tensor2D
{
  public:
    Tensor2D() = default;

    /** Zero-initialized rows x cols. */
    Tensor2D(std::size_t rows, std::size_t cols);

    /** Xavier/Glorot-style uniform init in [-scale, scale]. */
    static Tensor2D uniform(std::size_t rows, std::size_t cols,
                            float scale, sim::Rng &rng);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    float &at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

    std::span<float> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
    std::span<const float> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

    const std::vector<float> &data() const { return data_; }
    std::vector<float> &data() { return data_; }

    /** this += other (same shape). */
    Tensor2D &operator+=(const Tensor2D &other);

    /** this *= scalar. */
    Tensor2D &operator*=(float s);

    /** Zero every element, keeping the shape. */
    void zero();

    /**
     * Reshape to rows x cols reusing the existing buffer (contents
     * unspecified afterwards). The workspace-reuse primitive of the
     * training hot loop: steady-state reshapes never allocate once the
     * buffer has grown to the episode's high-water mark.
     */
    void
    resizeTo(std::size_t rows, std::size_t cols)
    {
        rows_ = rows;
        cols_ = cols;
        data_.resize(rows * cols);
    }

    /** resizeTo, then zero-fill. */
    void
    resizeToZero(std::size_t rows, std::size_t cols)
    {
        resizeTo(rows, cols);
        zero();
    }

    /** Frobenius-norm squared (for tests and gradient clipping). */
    double normSq() const;

    /** Serialize shape + element bit patterns (checkpointing). */
    void saveState(sim::ByteWriter &writer) const;

    /** Restore a tensor saved by saveState(), bit-exactly. */
    void loadState(sim::ByteReader &reader);

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/**
 * GEMM/aggregate kernel selection. Tiled is the default: cache-blocked,
 * register-tiled loops. Naive preserves the original reference loops
 * and exists for golden equivalence tests and the perf_hotpath
 * naive-vs-fast comparison. The flag is process-global and atomic;
 * flip it only between batches, not mid-kernel.
 */
enum class KernelMode { Tiled, Naive };

void setKernelMode(KernelMode mode);
KernelMode kernelMode();

/** RAII guard restoring the previous KernelMode (for tests/bench). */
class ScopedKernelMode
{
  public:
    explicit ScopedKernelMode(KernelMode mode) : prev_(kernelMode())
    {
        setKernelMode(mode);
    }
    ~ScopedKernelMode() { setKernelMode(prev_); }
    ScopedKernelMode(const ScopedKernelMode &) = delete;
    ScopedKernelMode &operator=(const ScopedKernelMode &) = delete;

  private:
    KernelMode prev_;
};

/** C = A * B. @pre A.cols == B.rows */
Tensor2D matmul(const Tensor2D &a, const Tensor2D &b);

/** C = A^T * B. @pre A.rows == B.rows */
Tensor2D matmulTN(const Tensor2D &a, const Tensor2D &b);

/** C = A * B^T. @pre A.cols == B.cols */
Tensor2D matmulNT(const Tensor2D &a, const Tensor2D &b);

// Workspace-reuse variants of the GEMMs: identical math, but the
// output tensor is reshaped in place (no allocation once warm).

/** c = A * B (c reshaped). */
void matmulInto(const Tensor2D &a, const Tensor2D &b, Tensor2D &c);

/** c += A * B. @pre c is a.rows x b.cols */
void matmulAccumulate(const Tensor2D &a, const Tensor2D &b, Tensor2D &c);

/** c = A^T * B (c reshaped). */
void matmulTNInto(const Tensor2D &a, const Tensor2D &b, Tensor2D &c);

/** c = A * B^T (c reshaped). */
void matmulNTInto(const Tensor2D &a, const Tensor2D &b, Tensor2D &c);

/** In-place ReLU; returns the pre-activation mask needed for backward. */
std::vector<char> reluForward(Tensor2D &x);

/** reluForward writing the mask into @p mask (capacity reused). */
void reluForwardInto(Tensor2D &x, std::vector<char> &mask);

/** dX = dY masked by the forward mask. */
void reluBackward(Tensor2D &grad, const std::vector<char> &mask);

/** Add row-vector @p bias (1 x C) to every row of @p x. */
void addBias(Tensor2D &x, const Tensor2D &bias);

/**
 * Softmax + cross-entropy over rows.
 * @param logits  N x C scores
 * @param labels  N class ids
 * @param grad    out: dLoss/dLogits (N x C), averaged over rows
 * @return mean loss
 */
double softmaxCrossEntropy(const Tensor2D &logits,
                           const std::vector<std::uint32_t> &labels,
                           Tensor2D &grad);

/** Row-wise argmax (predictions). */
std::vector<std::uint32_t> argmaxRows(const Tensor2D &logits);

} // namespace smartsage::gnn

#endif // SMARTSAGE_GNN_TENSOR_HH
