#include "layers.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace smartsage::gnn
{

SageMeanLayer::SageMeanLayer(unsigned in_dim, unsigned out_dim, bool relu,
                             sim::Rng &rng)
    : in_dim_(in_dim), out_dim_(out_dim), relu_(relu)
{
    float scale =
        std::sqrt(6.0f / static_cast<float>(in_dim + out_dim));
    w_self_ = Tensor2D::uniform(in_dim, out_dim, scale, rng);
    w_neigh_ = Tensor2D::uniform(in_dim, out_dim, scale, rng);
    bias_ = Tensor2D(1, out_dim);
}

void
SageMeanLayer::aggregateInto(const Tensor2D &h_src,
                             const SampledBlock &block,
                             Tensor2D &agg) const
{
    if (kernelMode() == KernelMode::Naive) {
        agg.resizeToZero(block.numDsts(), in_dim_);
        // Reference: accumulate, then a second pass for the mean scale.
        for (std::size_t u = 0; u < block.numDsts(); ++u) {
            std::uint32_t lo = block.offsets[u];
            std::uint32_t hi = block.offsets[u + 1];
            if (lo == hi)
                continue; // isolated node: aggregate stays zero
            auto arow = agg.row(u);
            for (std::uint32_t e = lo; e < hi; ++e) {
                auto srow = h_src.row(block.src_index[e]);
                for (unsigned j = 0; j < in_dim_; ++j)
                    arow[j] += srow[j];
            }
            float inv = 1.0f / static_cast<float>(hi - lo);
            for (unsigned j = 0; j < in_dim_; ++j)
                arow[j] *= inv;
        }
        return;
    }

    // Fast path: every row is written exactly once per contributing
    // edge — the first edge assigns (no zero-fill pass over the
    // tensor), middles accumulate, and the mean scale is fused into the
    // final edge while the row is still register/L1 hot. Only isolated
    // rows need explicit zeroing.
    agg.resizeTo(block.numDsts(), in_dim_);
    const std::size_t dim = in_dim_;
    const float *src = h_src.data().data();
    float *out = agg.data().data();
    for (std::size_t u = 0; u < block.numDsts(); ++u) {
        const std::uint32_t lo = block.offsets[u];
        const std::uint32_t hi = block.offsets[u + 1];
        float *arow = out + u * dim;
        if (lo == hi) {
            for (std::size_t j = 0; j < dim; ++j)
                arow[j] = 0.0f;
            continue;
        }
        const float *first = src + block.src_index[lo] * dim;
        if (hi - lo == 1) {
            for (std::size_t j = 0; j < dim; ++j)
                arow[j] = first[j];
            continue;
        }
        for (std::size_t j = 0; j < dim; ++j)
            arow[j] = first[j];
        for (std::uint32_t e = lo + 1; e < hi - 1; ++e)
            rowAccumulate(arow, src + block.src_index[e] * dim, dim);
        const float inv = 1.0f / static_cast<float>(hi - lo);
        rowAccumulateScale(arow, src + block.src_index[hi - 1] * dim,
                           inv, dim);
    }
}

Tensor2D
SageMeanLayer::forward(const Tensor2D &h_src, const SampledBlock &block,
                       SageContext &ctx) const
{
    Tensor2D out;
    forwardInto(h_src, block, ctx, out);
    return out;
}

void
SageMeanLayer::forwardInto(const Tensor2D &h_src,
                           const SampledBlock &block, SageContext &ctx,
                           Tensor2D &out) const
{
    SS_ASSERT(h_src.cols() == in_dim_, "layer input width mismatch");
    std::size_t n_dst = block.numDsts();
    SS_ASSERT(h_src.rows() >= n_dst,
              "src activations must cover the dst prefix");

    // Self term: dsts are the prefix of the src frontier, so the whole
    // block is one contiguous copy.
    ctx.h_self.resizeTo(n_dst, in_dim_);
    std::copy_n(h_src.data().data(), n_dst * in_dim_,
                ctx.h_self.data().data());

    aggregateInto(h_src, block, ctx.h_agg);

    matmulInto(ctx.h_self, w_self_, out);
    matmulAccumulate(ctx.h_agg, w_neigh_, out);
    addBias(out, bias_);

    ctx.block = &block;
    ctx.src_rows = h_src.rows();
    if (relu_)
        reluForwardInto(out, ctx.relu_mask);
    else
        ctx.relu_mask.clear();
}

Tensor2D
SageMeanLayer::backward(const Tensor2D &d_out, const SageContext &ctx,
                        SageLayerGrads &grads) const
{
    Tensor2D dz = d_out; // copy; masked in place by backwardInto
    Tensor2D d_src;
    backwardInto(dz, ctx, grads, d_src);
    return d_src;
}

void
SageMeanLayer::backwardInto(Tensor2D &d_out, const SageContext &ctx,
                            SageLayerGrads &grads, Tensor2D &d_src) const
{
    SS_ASSERT(ctx.block, "backward without forward context");
    const SampledBlock &block = *ctx.block;
    std::size_t n_dst = block.numDsts();
    SS_ASSERT(d_out.rows() == n_dst && d_out.cols() == out_dim_,
              "output grad shape mismatch");

    if (relu_)
        reluBackward(d_out, ctx.relu_mask);
    const Tensor2D &dz = d_out;

    // Parameter gradients.
    matmulTNInto(ctx.h_self, dz, grads.w_self);
    matmulTNInto(ctx.h_agg, dz, grads.w_neigh);
    grads.bias.resizeToZero(1, out_dim_);
    for (std::size_t u = 0; u < n_dst; ++u) {
        auto zrow = dz.row(u);
        auto brow = grads.bias.row(0);
        for (unsigned j = 0; j < out_dim_; ++j)
            brow[j] += zrow[j];
    }

    // Input gradients: self path lands on the dst prefix rows; the
    // aggregation path scatters 1/deg shares to every sampled src.
    const std::size_t dim = in_dim_;
    matmulNTInto(dz, w_self_, ctx.d_self_ws);
    d_src.resizeTo(ctx.src_rows, dim);
    float *dst = d_src.data().data();
    std::copy_n(ctx.d_self_ws.data().data(), n_dst * dim, dst);
    std::fill(dst + n_dst * dim, dst + ctx.src_rows * dim, 0.0f);

    matmulNTInto(dz, w_neigh_, ctx.d_agg_ws);
    float *aggdata = ctx.d_agg_ws.data().data();
    for (std::size_t u = 0; u < n_dst; ++u) {
        std::uint32_t lo = block.offsets[u];
        std::uint32_t hi = block.offsets[u + 1];
        if (lo == hi)
            continue;
        float inv = 1.0f / static_cast<float>(hi - lo);
        float *arow = aggdata + u * dim;
        // Pre-scale the dst row once, then scatter plain adds: one
        // multiply per element instead of one per (edge, element).
        for (std::size_t j = 0; j < dim; ++j)
            arow[j] *= inv;
        for (std::uint32_t e = lo; e < hi; ++e)
            rowAccumulate(dst + block.src_index[e] * dim, arow, dim);
    }
}

void
SageMeanLayer::applyGrads(const SageLayerGrads &grads, float lr)
{
    auto step = [lr](Tensor2D &param, const Tensor2D &grad) {
        auto &p = param.data();
        const auto &g = grad.data();
        SS_ASSERT(p.size() == g.size(), "grad shape mismatch in step");
        for (std::size_t i = 0; i < p.size(); ++i)
            p[i] -= lr * g[i];
    };
    step(w_self_, grads.w_self);
    step(w_neigh_, grads.w_neigh);
    step(bias_, grads.bias);
}

void
SageMeanLayer::saveState(sim::ByteWriter &writer) const
{
    w_self_.saveState(writer);
    w_neigh_.saveState(writer);
    bias_.saveState(writer);
}

void
SageMeanLayer::loadState(sim::ByteReader &reader)
{
    Tensor2D loaded;
    const auto check = [&](Tensor2D &param, const char *what) {
        loaded.loadState(reader);
        if (loaded.rows() != param.rows() ||
            loaded.cols() != param.cols())
            throw sim::SerializeError(
                std::string("layer checkpoint shape mismatch in ") +
                what);
        param = loaded;
    };
    check(w_self_, "w_self");
    check(w_neigh_, "w_neigh");
    check(bias_, "bias");
}

std::uint64_t
SageMeanLayer::forwardMacs(std::uint64_t num_dsts, unsigned in_dim,
                           unsigned out_dim)
{
    // Two GEMMs (self + neighbor) of num_dsts x in_dim x out_dim.
    return 2ULL * num_dsts * in_dim * out_dim;
}

} // namespace smartsage::gnn
