#include "layers.hh"

#include <cmath>

#include "sim/logging.hh"

namespace smartsage::gnn
{

SageMeanLayer::SageMeanLayer(unsigned in_dim, unsigned out_dim, bool relu,
                             sim::Rng &rng)
    : in_dim_(in_dim), out_dim_(out_dim), relu_(relu)
{
    float scale =
        std::sqrt(6.0f / static_cast<float>(in_dim + out_dim));
    w_self_ = Tensor2D::uniform(in_dim, out_dim, scale, rng);
    w_neigh_ = Tensor2D::uniform(in_dim, out_dim, scale, rng);
    bias_ = Tensor2D(1, out_dim);
}

Tensor2D
SageMeanLayer::aggregate(const Tensor2D &h_src,
                         const SampledBlock &block) const
{
    Tensor2D agg(block.numDsts(), in_dim_);
    for (std::size_t u = 0; u < block.numDsts(); ++u) {
        std::uint32_t lo = block.offsets[u];
        std::uint32_t hi = block.offsets[u + 1];
        if (lo == hi)
            continue; // isolated node: aggregate stays zero
        auto arow = agg.row(u);
        for (std::uint32_t e = lo; e < hi; ++e) {
            auto srow = h_src.row(block.src_index[e]);
            for (unsigned j = 0; j < in_dim_; ++j)
                arow[j] += srow[j];
        }
        float inv = 1.0f / static_cast<float>(hi - lo);
        for (unsigned j = 0; j < in_dim_; ++j)
            arow[j] *= inv;
    }
    return agg;
}

Tensor2D
SageMeanLayer::forward(const Tensor2D &h_src, const SampledBlock &block,
                       SageContext &ctx) const
{
    SS_ASSERT(h_src.cols() == in_dim_, "layer input width mismatch");
    std::size_t n_dst = block.numDsts();
    SS_ASSERT(h_src.rows() >= n_dst,
              "src activations must cover the dst prefix");

    // Self term: dsts are the prefix of the src frontier.
    Tensor2D h_self(n_dst, in_dim_);
    for (std::size_t u = 0; u < n_dst; ++u) {
        auto dst = h_self.row(u);
        auto src = h_src.row(u);
        for (unsigned j = 0; j < in_dim_; ++j)
            dst[j] = src[j];
    }

    Tensor2D h_agg = aggregate(h_src, block);

    Tensor2D out = matmul(h_self, w_self_);
    out += matmul(h_agg, w_neigh_);
    addBias(out, bias_);

    ctx.h_self = std::move(h_self);
    ctx.h_agg = std::move(h_agg);
    ctx.block = &block;
    ctx.src_rows = h_src.rows();
    if (relu_)
        ctx.relu_mask = reluForward(out);
    else
        ctx.relu_mask.clear();
    return out;
}

Tensor2D
SageMeanLayer::backward(const Tensor2D &d_out, const SageContext &ctx,
                        SageLayerGrads &grads) const
{
    SS_ASSERT(ctx.block, "backward without forward context");
    const SampledBlock &block = *ctx.block;
    std::size_t n_dst = block.numDsts();
    SS_ASSERT(d_out.rows() == n_dst && d_out.cols() == out_dim_,
              "output grad shape mismatch");

    Tensor2D dz = d_out; // copy; mask in place
    if (relu_)
        reluBackward(dz, ctx.relu_mask);

    // Parameter gradients.
    grads.w_self = matmulTN(ctx.h_self, dz);
    grads.w_neigh = matmulTN(ctx.h_agg, dz);
    grads.bias = Tensor2D(1, out_dim_);
    for (std::size_t u = 0; u < n_dst; ++u) {
        auto zrow = dz.row(u);
        auto brow = grads.bias.row(0);
        for (unsigned j = 0; j < out_dim_; ++j)
            brow[j] += zrow[j];
    }

    // Input gradients: self path lands on the dst prefix rows; the
    // aggregation path scatters 1/deg shares to every sampled src.
    Tensor2D d_src(ctx.src_rows, in_dim_);
    Tensor2D d_self = matmulNT(dz, w_self_);
    for (std::size_t u = 0; u < n_dst; ++u) {
        auto drow = d_src.row(u);
        auto srow = d_self.row(u);
        for (unsigned j = 0; j < in_dim_; ++j)
            drow[j] += srow[j];
    }

    Tensor2D d_agg = matmulNT(dz, w_neigh_);
    for (std::size_t u = 0; u < n_dst; ++u) {
        std::uint32_t lo = block.offsets[u];
        std::uint32_t hi = block.offsets[u + 1];
        if (lo == hi)
            continue;
        float inv = 1.0f / static_cast<float>(hi - lo);
        auto arow = d_agg.row(u);
        for (std::uint32_t e = lo; e < hi; ++e) {
            auto drow = d_src.row(block.src_index[e]);
            for (unsigned j = 0; j < in_dim_; ++j)
                drow[j] += arow[j] * inv;
        }
    }
    return d_src;
}

void
SageMeanLayer::applyGrads(const SageLayerGrads &grads, float lr)
{
    auto step = [lr](Tensor2D &param, const Tensor2D &grad) {
        auto &p = param.data();
        const auto &g = grad.data();
        SS_ASSERT(p.size() == g.size(), "grad shape mismatch in step");
        for (std::size_t i = 0; i < p.size(); ++i)
            p[i] -= lr * g[i];
    };
    step(w_self_, grads.w_self);
    step(w_neigh_, grads.w_neigh);
    step(bias_, grads.bias);
}

std::uint64_t
SageMeanLayer::forwardMacs(std::uint64_t num_dsts, unsigned in_dim,
                           unsigned out_dim)
{
    // Two GEMMs (self + neighbor) of num_dsts x in_dim x out_dim.
    return 2ULL * num_dsts * in_dim * out_dim;
}

} // namespace smartsage::gnn
