#include "model.hh"

#include "sim/logging.hh"
#include "sim/random.hh"

namespace smartsage::gnn
{

SageModel::SageModel(const ModelConfig &config) : config_(config)
{
    SS_ASSERT(config.depth >= 1, "model needs at least one layer");
    sim::Rng rng(config.seed);
    for (unsigned l = 0; l < config.depth; ++l) {
        unsigned in = (l == 0) ? config.in_dim : config.hidden_dim;
        unsigned out = (l + 1 == config.depth) ? config.num_classes
                                               : config.hidden_dim;
        bool relu = (l + 1 != config.depth);
        layers_.emplace_back(in, out, relu, rng);
    }
}

const Tensor2D &
SageModel::runForward(const Subgraph &sg, const FeatureTable &ft,
                      std::vector<SageContext> &ctxs, Tensor2D &act_a,
                      Tensor2D &act_b) const
{
    SS_ASSERT(sg.depth() == config_.depth,
              "subgraph depth ", sg.depth(), " != model depth ",
              config_.depth);
    SS_ASSERT(ft.dim() == config_.in_dim, "feature width mismatch");

    ctxs.resize(layers_.size());

    // Layer l consumes block[depth-1-l]: the deepest hop feeds the
    // first layer. Activations ping-pong between the two buffers.
    ft.gather(sg.inputNodes(), act_a);
    Tensor2D *cur = &act_a, *nxt = &act_b;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const SampledBlock &block = sg.blocks[sg.depth() - 1 - l];
        layers_[l].forwardInto(*cur, block, ctxs[l], *nxt);
        std::swap(cur, nxt);
    }
    return *cur;
}

Tensor2D
SageModel::forward(const Subgraph &sg, const FeatureTable &ft,
                   std::vector<SageContext> *ctxs) const
{
    std::vector<SageContext> local;
    Tensor2D act_a, act_b;
    const Tensor2D &out =
        runForward(sg, ft, ctxs ? *ctxs : local, act_a, act_b);
    return &out == &act_a ? std::move(act_a) : std::move(act_b);
}

double
SageModel::trainStep(const Subgraph &sg, const FeatureTable &ft)
{
    // Hot path: every buffer below is a member workspace, so a warm
    // trainStep allocates nothing.
    const Tensor2D &logits = runForward(sg, ft, ctxs_, act_a_, act_b_);

    ft.labelsInto(sg.targets(), labels_ws_);
    double loss = softmaxCrossEntropy(logits, labels_ws_, grad_a_);

    // Backward through the stack; gradients apply immediately (plain
    // SGD, single worker semantics).
    Tensor2D *d = &grad_a_, *dn = &grad_b_;
    for (std::size_t l = layers_.size(); l-- > 0;) {
        layers_[l].backwardInto(*d, ctxs_[l], grads_ws_, *dn);
        layers_[l].applyGrads(grads_ws_, config_.learning_rate);
        std::swap(d, dn);
    }
    return loss;
}

double
SageModel::evaluate(const Subgraph &sg, const FeatureTable &ft) const
{
    Tensor2D logits = forward(sg, ft, nullptr);
    auto labels = ft.labels(sg.targets());
    auto preds = argmaxRows(logits);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < preds.size(); ++i) {
        if (preds[i] == labels[i])
            ++correct;
    }
    return preds.empty()
               ? 0.0
               : static_cast<double>(correct) / preds.size();
}

std::uint64_t
SageModel::parameterCount() const
{
    std::uint64_t total = 0;
    for (const auto &l : layers_) {
        total += 2ULL * l.inDim() * l.outDim(); // W_self + W_neigh
        total += l.outDim();                    // bias
    }
    return total;
}

void
SageModel::saveState(sim::ByteWriter &writer) const
{
    // Fingerprint: a checkpoint only resumes into an identically
    // shaped model (same dims, depth, lr, init seed).
    writer.u32(config_.in_dim);
    writer.u32(config_.hidden_dim);
    writer.u32(config_.num_classes);
    writer.u32(config_.depth);
    writer.f32(config_.learning_rate);
    writer.u64(config_.seed);
    for (const auto &layer : layers_)
        layer.saveState(writer);
}

void
SageModel::loadState(sim::ByteReader &reader)
{
    const std::uint32_t in_dim = reader.u32();
    const std::uint32_t hidden = reader.u32();
    const std::uint32_t classes = reader.u32();
    const std::uint32_t depth = reader.u32();
    const float lr = reader.f32();
    const std::uint64_t seed = reader.u64();
    if (in_dim != config_.in_dim || hidden != config_.hidden_dim ||
        classes != config_.num_classes || depth != config_.depth ||
        lr != config_.learning_rate || seed != config_.seed)
        throw sim::SerializeError(
            "model checkpoint fingerprint mismatch: saved for a "
            "differently configured model");
    for (auto &layer : layers_)
        layer.loadState(reader);
}

std::uint64_t
SageModel::stateHash() const
{
    sim::ByteWriter writer;
    saveState(writer);
    return sim::fnv1a64(writer.buffer().data(), writer.buffer().size());
}

} // namespace smartsage::gnn
