#include "model.hh"

#include "sim/logging.hh"
#include "sim/random.hh"

namespace smartsage::gnn
{

SageModel::SageModel(const ModelConfig &config) : config_(config)
{
    SS_ASSERT(config.depth >= 1, "model needs at least one layer");
    sim::Rng rng(config.seed);
    for (unsigned l = 0; l < config.depth; ++l) {
        unsigned in = (l == 0) ? config.in_dim : config.hidden_dim;
        unsigned out = (l + 1 == config.depth) ? config.num_classes
                                               : config.hidden_dim;
        bool relu = (l + 1 != config.depth);
        layers_.emplace_back(in, out, relu, rng);
    }
}

Tensor2D
SageModel::forward(const Subgraph &sg, const FeatureTable &ft,
                   std::vector<SageContext> *ctxs) const
{
    SS_ASSERT(sg.depth() == config_.depth,
              "subgraph depth ", sg.depth(), " != model depth ",
              config_.depth);
    SS_ASSERT(ft.dim() == config_.in_dim, "feature width mismatch");

    if (ctxs) {
        ctxs->clear();
        ctxs->resize(layers_.size());
    }

    // Layer l consumes block[depth-1-l]: the deepest hop feeds the
    // first layer.
    Tensor2D h;
    ft.gather(sg.inputNodes(), h);
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const SampledBlock &block = sg.blocks[sg.depth() - 1 - l];
        SageContext local;
        SageContext &ctx = ctxs ? (*ctxs)[l] : local;
        h = layers_[l].forward(h, block, ctx);
    }
    return h;
}

double
SageModel::trainStep(const Subgraph &sg, const FeatureTable &ft)
{
    std::vector<SageContext> ctxs;
    Tensor2D logits = forward(sg, ft, &ctxs);

    auto labels = ft.labels(sg.targets());
    Tensor2D d_logits;
    double loss = softmaxCrossEntropy(logits, labels, d_logits);

    // Backward through the stack; gradients apply immediately (plain
    // SGD, single worker semantics).
    Tensor2D d = std::move(d_logits);
    for (std::size_t l = layers_.size(); l-- > 0;) {
        SageLayerGrads grads;
        d = layers_[l].backward(d, ctxs[l], grads);
        layers_[l].applyGrads(grads, config_.learning_rate);
    }
    return loss;
}

double
SageModel::evaluate(const Subgraph &sg, const FeatureTable &ft) const
{
    Tensor2D logits = forward(sg, ft, nullptr);
    auto labels = ft.labels(sg.targets());
    auto preds = argmaxRows(logits);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < preds.size(); ++i) {
        if (preds[i] == labels[i])
            ++correct;
    }
    return preds.empty()
               ? 0.0
               : static_cast<double>(correct) / preds.size();
}

std::uint64_t
SageModel::parameterCount() const
{
    std::uint64_t total = 0;
    for (const auto &l : layers_) {
        total += 2ULL * l.inDim() * l.outDim(); // W_self + W_neigh
        total += l.outDim();                    // bias
    }
    return total;
}

} // namespace smartsage::gnn
