/**
 * @file
 * GraphSAGE max-pooling aggregator (Hamilton et al.'s pool variant;
 * the paper's Fig 2 shows CONVOLVE with a pooling function p).
 *
 *   h_pool  = max_j relu( h_src_j * W_pool + b_pool )
 *   h_out   = act( h_dst * W_self + h_pool * W_neigh + b )
 *
 * Included as the aggregator-variant extension: the storage-side
 * results are aggregator-agnostic (the access trace is identical), and
 * this layer lets the functional model demonstrate that.
 */

#ifndef SMARTSAGE_GNN_POOL_LAYER_HH
#define SMARTSAGE_GNN_POOL_LAYER_HH

#include <cstdint>
#include <vector>

#include "subgraph.hh"
#include "tensor.hh"

namespace smartsage::gnn
{

/** Gradients of one max-pool layer. */
struct SagePoolGrads
{
    Tensor2D w_pool;
    Tensor2D b_pool;
    Tensor2D w_self;
    Tensor2D w_neigh;
    Tensor2D bias;
};

/** Forward state the backward pass needs. */
struct SagePoolContext
{
    Tensor2D h_self;        //!< dst prefix rows of the input
    Tensor2D h_src;         //!< full src activations (pre-pool input)
    Tensor2D pooled;        //!< per-dst pooled vectors
    std::vector<char> pool_relu_mask;    //!< relu mask of src * W_pool
    std::vector<std::uint32_t> argmax;   //!< winning edge per (dst, col)
    std::vector<char> relu_mask;         //!< output relu mask
    const SampledBlock *block = nullptr;
    std::size_t src_rows = 0;
};

/** GraphSAGE layer with max-pooling aggregation. */
class SagePoolLayer
{
  public:
    /**
     * @param in_dim   input activation width
     * @param pool_dim width of the pooling MLP output
     * @param out_dim  output activation width
     * @param relu     apply ReLU on the output
     * @param rng      weight init stream
     */
    SagePoolLayer(unsigned in_dim, unsigned pool_dim, unsigned out_dim,
                  bool relu, sim::Rng &rng);

    /** Forward over one block; see SageMeanLayer::forward. */
    Tensor2D forward(const Tensor2D &h_src, const SampledBlock &block,
                     SagePoolContext &ctx) const;

    /** Backward over one block; returns dH_src. */
    Tensor2D backward(const Tensor2D &d_out, const SagePoolContext &ctx,
                      SagePoolGrads &grads) const;

    /** SGD step. */
    void applyGrads(const SagePoolGrads &grads, float lr);

    unsigned inDim() const { return in_dim_; }
    unsigned poolDim() const { return pool_dim_; }
    unsigned outDim() const { return out_dim_; }

    Tensor2D &mutableWPool() { return w_pool_; }
    Tensor2D &mutableBPool() { return b_pool_; }
    Tensor2D &mutableWSelf() { return w_self_; }
    Tensor2D &mutableWNeigh() { return w_neigh_; }
    Tensor2D &mutableBias() { return bias_; }

  private:
    unsigned in_dim_;
    unsigned pool_dim_;
    unsigned out_dim_;
    bool relu_;
    Tensor2D w_pool_;  //!< in_dim x pool_dim
    Tensor2D b_pool_;  //!< 1 x pool_dim
    Tensor2D w_self_;  //!< in_dim x out_dim
    Tensor2D w_neigh_; //!< pool_dim x out_dim
    Tensor2D bias_;    //!< 1 x out_dim
};

} // namespace smartsage::gnn

#endif // SMARTSAGE_GNN_POOL_LAYER_HH
