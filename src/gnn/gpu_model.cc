#include "gpu_model.hh"

#include "layers.hh"
#include "sim/logging.hh"

namespace smartsage::gnn
{

GpuTimingModel::GpuTimingModel(const GpuConfig &config,
                               const ModelConfig &model)
    : config_(config), model_(model)
{
    SS_ASSERT(config.effective_tflops > 0.0, "GPU throughput must be > 0");
}

std::uint64_t
GpuTimingModel::forwardMacs(const Subgraph &sg) const
{
    std::uint64_t total = 0;
    for (std::size_t l = 0; l < model_.depth; ++l) {
        unsigned in = (l == 0) ? model_.in_dim : model_.hidden_dim;
        unsigned out = (l + 1 == model_.depth) ? model_.num_classes
                                               : model_.hidden_dim;
        const SampledBlock &block = sg.blocks[sg.depth() - 1 - l];
        total += SageMeanLayer::forwardMacs(block.numDsts(), in, out);
        // Aggregation: in_dim adds per sampled edge.
        total += block.numEdges() * in;
    }
    return total;
}

sim::Tick
GpuTimingModel::batchTime(const Subgraph &sg) const
{
    double macs = static_cast<double>(forwardMacs(sg)) *
                  config_.fwd_bwd_factor;
    double seconds = macs / (config_.effective_tflops * 1e12);
    return config_.launch_overhead + sim::sec(seconds);
}

} // namespace smartsage::gnn
