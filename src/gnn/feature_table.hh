/**
 * @file
 * Node feature table and labels.
 *
 * Features are generated deterministically from (seed, node, column) so
 * that a billion-node table costs no storage — gather materializes rows
 * on demand. A class-dependent centroid is mixed in so the features are
 * actually informative of the labels and training measurably learns.
 */

#ifndef SMARTSAGE_GNN_FEATURE_TABLE_HH
#define SMARTSAGE_GNN_FEATURE_TABLE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hh"
#include "tensor.hh"

namespace smartsage::gnn
{

/** Virtual feature/label store for a graph's nodes. */
class FeatureTable
{
  public:
    /**
     * @param num_nodes   table height
     * @param dim         feature vector width
     * @param num_classes label cardinality
     * @param seed        generation seed
     */
    FeatureTable(std::uint64_t num_nodes, unsigned dim,
                 unsigned num_classes, std::uint64_t seed = 99);

    /** Materialize feature rows for @p nodes into @p out. */
    void gather(std::span<const graph::LocalNodeId> nodes,
                Tensor2D &out) const;

    /** Ground-truth class of @p u. */
    std::uint32_t label(graph::LocalNodeId u) const;

    /** Labels for a node list. */
    std::vector<std::uint32_t>
    labels(std::span<const graph::LocalNodeId> nodes) const;

    /** labels() into a caller-owned buffer (capacity reused). */
    void labelsInto(std::span<const graph::LocalNodeId> nodes,
                    std::vector<std::uint32_t> &out) const;

    unsigned dim() const { return dim_; }
    unsigned numClasses() const { return num_classes_; }
    std::uint64_t numNodes() const { return num_nodes_; }

    /** Bytes of one row as stored (fp32). */
    std::uint64_t bytesPerNode() const { return std::uint64_t(dim_) * 4; }

  private:
    std::uint64_t num_nodes_;
    unsigned dim_;
    unsigned num_classes_;
    std::uint64_t seed_;
    /** Cached raw class centroid rows (num_classes x dim). */
    std::vector<float> centroid_;

    float element(std::uint64_t node, unsigned col) const;
};

} // namespace smartsage::gnn

#endif // SMARTSAGE_GNN_FEATURE_TABLE_HH
