#include "pool_layer.hh"

#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace smartsage::gnn
{

namespace
{

constexpr std::uint32_t no_winner =
    std::numeric_limits<std::uint32_t>::max();

} // namespace

SagePoolLayer::SagePoolLayer(unsigned in_dim, unsigned pool_dim,
                             unsigned out_dim, bool relu, sim::Rng &rng)
    : in_dim_(in_dim), pool_dim_(pool_dim), out_dim_(out_dim),
      relu_(relu)
{
    float s_pool =
        std::sqrt(6.0f / static_cast<float>(in_dim + pool_dim));
    float s_out =
        std::sqrt(6.0f / static_cast<float>(in_dim + out_dim));
    w_pool_ = Tensor2D::uniform(in_dim, pool_dim, s_pool, rng);
    b_pool_ = Tensor2D(1, pool_dim);
    w_self_ = Tensor2D::uniform(in_dim, out_dim, s_out, rng);
    w_neigh_ = Tensor2D::uniform(pool_dim, out_dim, s_out, rng);
    bias_ = Tensor2D(1, out_dim);
}

Tensor2D
SagePoolLayer::forward(const Tensor2D &h_src, const SampledBlock &block,
                       SagePoolContext &ctx) const
{
    SS_ASSERT(h_src.cols() == in_dim_, "pool layer input width mismatch");
    std::size_t n_dst = block.numDsts();
    SS_ASSERT(h_src.rows() >= n_dst,
              "src activations must cover the dst prefix");

    // Pooling MLP over every src activation.
    Tensor2D z_pool = matmul(h_src, w_pool_);
    addBias(z_pool, b_pool_);
    ctx.pool_relu_mask = reluForward(z_pool);

    // Element-wise max over each dst's sampled neighbors.
    Tensor2D pooled(n_dst, pool_dim_);
    ctx.argmax.assign(n_dst * pool_dim_, no_winner);
    for (std::size_t u = 0; u < n_dst; ++u) {
        std::uint32_t lo = block.offsets[u];
        std::uint32_t hi = block.offsets[u + 1];
        if (lo == hi)
            continue; // isolated: pooled stays zero
        auto prow = pooled.row(u);
        for (unsigned c = 0; c < pool_dim_; ++c) {
            float best = -std::numeric_limits<float>::infinity();
            std::uint32_t win = no_winner;
            for (std::uint32_t e = lo; e < hi; ++e) {
                float v = z_pool.at(block.src_index[e], c);
                if (v > best) {
                    best = v;
                    win = e;
                }
            }
            prow[c] = best;
            ctx.argmax[u * pool_dim_ + c] = win;
        }
    }

    // Self term: dsts are the prefix of the src frontier.
    Tensor2D h_self(n_dst, in_dim_);
    for (std::size_t u = 0; u < n_dst; ++u) {
        auto dst = h_self.row(u);
        auto src = h_src.row(u);
        for (unsigned j = 0; j < in_dim_; ++j)
            dst[j] = src[j];
    }

    Tensor2D out = matmul(h_self, w_self_);
    out += matmul(pooled, w_neigh_);
    addBias(out, bias_);

    ctx.h_self = std::move(h_self);
    ctx.h_src = h_src; // copy: backward re-derives the pool gradients
    ctx.pooled = std::move(pooled);
    ctx.block = &block;
    ctx.src_rows = h_src.rows();
    if (relu_)
        ctx.relu_mask = reluForward(out);
    else
        ctx.relu_mask.clear();
    return out;
}

Tensor2D
SagePoolLayer::backward(const Tensor2D &d_out,
                        const SagePoolContext &ctx,
                        SagePoolGrads &grads) const
{
    SS_ASSERT(ctx.block, "backward without forward context");
    const SampledBlock &block = *ctx.block;
    std::size_t n_dst = block.numDsts();
    SS_ASSERT(d_out.rows() == n_dst && d_out.cols() == out_dim_,
              "output grad shape mismatch");

    Tensor2D dz = d_out;
    if (relu_)
        reluBackward(dz, ctx.relu_mask);

    grads.w_self = matmulTN(ctx.h_self, dz);
    grads.w_neigh = matmulTN(ctx.pooled, dz);
    grads.bias = Tensor2D(1, out_dim_);
    for (std::size_t u = 0; u < n_dst; ++u) {
        auto zrow = dz.row(u);
        auto brow = grads.bias.row(0);
        for (unsigned j = 0; j < out_dim_; ++j)
            brow[j] += zrow[j];
    }

    Tensor2D d_src(ctx.src_rows, in_dim_);

    // Self path onto the dst prefix.
    Tensor2D d_self = matmulNT(dz, w_self_);
    for (std::size_t u = 0; u < n_dst; ++u) {
        auto drow = d_src.row(u);
        auto srow = d_self.row(u);
        for (unsigned j = 0; j < in_dim_; ++j)
            drow[j] += srow[j];
    }

    // Max routes each pooled gradient to its winning neighbor only.
    Tensor2D d_pooled = matmulNT(dz, w_neigh_);
    Tensor2D d_zpool(ctx.src_rows, pool_dim_);
    for (std::size_t u = 0; u < n_dst; ++u) {
        for (unsigned c = 0; c < pool_dim_; ++c) {
            std::uint32_t e = ctx.argmax[u * pool_dim_ + c];
            if (e == no_winner)
                continue;
            d_zpool.at(block.src_index[e], c) += d_pooled.at(u, c);
        }
    }
    reluBackward(d_zpool, ctx.pool_relu_mask);

    grads.w_pool = matmulTN(ctx.h_src, d_zpool);
    grads.b_pool = Tensor2D(1, pool_dim_);
    for (std::size_t r = 0; r < d_zpool.rows(); ++r) {
        auto row = d_zpool.row(r);
        auto brow = grads.b_pool.row(0);
        for (unsigned c = 0; c < pool_dim_; ++c)
            brow[c] += row[c];
    }

    Tensor2D d_from_pool = matmulNT(d_zpool, w_pool_);
    d_src += d_from_pool;
    return d_src;
}

void
SagePoolLayer::applyGrads(const SagePoolGrads &grads, float lr)
{
    auto step = [lr](Tensor2D &param, const Tensor2D &grad) {
        auto &p = param.data();
        const auto &g = grad.data();
        SS_ASSERT(p.size() == g.size(), "grad shape mismatch in step");
        for (std::size_t i = 0; i < p.size(); ++i)
            p[i] -= lr * g[i];
    };
    step(w_pool_, grads.w_pool);
    step(b_pool_, grads.b_pool);
    step(w_self_, grads.w_self);
    step(w_neigh_, grads.w_neigh);
    step(bias_, grads.bias);
}

} // namespace smartsage::gnn
