#include "tensor.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace smartsage::gnn
{

Tensor2D::Tensor2D(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

Tensor2D
Tensor2D::uniform(std::size_t rows, std::size_t cols, float scale,
                  sim::Rng &rng)
{
    Tensor2D t(rows, cols);
    for (auto &v : t.data_)
        v = static_cast<float>((rng.nextDouble() * 2.0 - 1.0) * scale);
    return t;
}

Tensor2D &
Tensor2D::operator+=(const Tensor2D &other)
{
    SS_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
              "shape mismatch in +=");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Tensor2D &
Tensor2D::operator*=(float s)
{
    for (auto &v : data_)
        v *= s;
    return *this;
}

void
Tensor2D::zero()
{
    std::fill(data_.begin(), data_.end(), 0.0f);
}

double
Tensor2D::normSq() const
{
    double acc = 0.0;
    for (float v : data_)
        acc += static_cast<double>(v) * v;
    return acc;
}

Tensor2D
matmul(const Tensor2D &a, const Tensor2D &b)
{
    SS_ASSERT(a.cols() == b.rows(), "matmul shape mismatch: ", a.cols(),
              " vs ", b.rows());
    Tensor2D c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            float aik = a.at(i, k);
            if (aik == 0.0f)
                continue;
            auto brow = b.row(k);
            auto crow = c.row(i);
            for (std::size_t j = 0; j < b.cols(); ++j)
                crow[j] += aik * brow[j];
        }
    }
    return c;
}

Tensor2D
matmulTN(const Tensor2D &a, const Tensor2D &b)
{
    SS_ASSERT(a.rows() == b.rows(), "matmulTN shape mismatch");
    Tensor2D c(a.cols(), b.cols());
    for (std::size_t k = 0; k < a.rows(); ++k) {
        auto arow = a.row(k);
        auto brow = b.row(k);
        for (std::size_t i = 0; i < a.cols(); ++i) {
            float aki = arow[i];
            if (aki == 0.0f)
                continue;
            auto crow = c.row(i);
            for (std::size_t j = 0; j < b.cols(); ++j)
                crow[j] += aki * brow[j];
        }
    }
    return c;
}

Tensor2D
matmulNT(const Tensor2D &a, const Tensor2D &b)
{
    SS_ASSERT(a.cols() == b.cols(), "matmulNT shape mismatch");
    Tensor2D c(a.rows(), b.rows());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        auto arow = a.row(i);
        for (std::size_t j = 0; j < b.rows(); ++j) {
            auto brow = b.row(j);
            float acc = 0.0f;
            for (std::size_t k = 0; k < a.cols(); ++k)
                acc += arow[k] * brow[k];
            c.at(i, j) = acc;
        }
    }
    return c;
}

std::vector<char>
reluForward(Tensor2D &x)
{
    std::vector<char> mask(x.rows() * x.cols());
    auto &d = x.data();
    for (std::size_t i = 0; i < d.size(); ++i) {
        mask[i] = d[i] > 0.0f;
        if (!mask[i])
            d[i] = 0.0f;
    }
    return mask;
}

void
reluBackward(Tensor2D &grad, const std::vector<char> &mask)
{
    auto &d = grad.data();
    SS_ASSERT(d.size() == mask.size(), "relu mask size mismatch");
    for (std::size_t i = 0; i < d.size(); ++i) {
        if (!mask[i])
            d[i] = 0.0f;
    }
}

void
addBias(Tensor2D &x, const Tensor2D &bias)
{
    SS_ASSERT(bias.rows() == 1 && bias.cols() == x.cols(),
              "bias shape mismatch");
    for (std::size_t i = 0; i < x.rows(); ++i) {
        auto row = x.row(i);
        auto b = bias.row(0);
        for (std::size_t j = 0; j < x.cols(); ++j)
            row[j] += b[j];
    }
}

double
softmaxCrossEntropy(const Tensor2D &logits,
                    const std::vector<std::uint32_t> &labels,
                    Tensor2D &grad)
{
    SS_ASSERT(labels.size() == logits.rows(), "label count mismatch");
    grad = Tensor2D(logits.rows(), logits.cols());
    double loss = 0.0;
    const double inv_n = 1.0 / static_cast<double>(logits.rows());

    for (std::size_t i = 0; i < logits.rows(); ++i) {
        auto row = logits.row(i);
        float max_v = *std::max_element(row.begin(), row.end());
        double denom = 0.0;
        for (float v : row)
            denom += std::exp(static_cast<double>(v - max_v));
        std::uint32_t y = labels[i];
        SS_ASSERT(y < logits.cols(), "label ", y, " out of range");
        double log_p =
            static_cast<double>(row[y] - max_v) - std::log(denom);
        loss -= log_p * inv_n;
        auto grow = grad.row(i);
        for (std::size_t j = 0; j < logits.cols(); ++j) {
            double p = std::exp(static_cast<double>(row[j] - max_v)) /
                       denom;
            grow[j] = static_cast<float>(
                (p - (j == y ? 1.0 : 0.0)) * inv_n);
        }
    }
    return loss;
}

std::vector<std::uint32_t>
argmaxRows(const Tensor2D &logits)
{
    std::vector<std::uint32_t> out(logits.rows());
    for (std::size_t i = 0; i < logits.rows(); ++i) {
        auto row = logits.row(i);
        out[i] = static_cast<std::uint32_t>(
            std::max_element(row.begin(), row.end()) - row.begin());
    }
    return out;
}

} // namespace smartsage::gnn
