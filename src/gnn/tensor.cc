#include "tensor.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>

#include "sim/logging.hh"
#include "sim/thread_pool.hh"

// The AVX2 microkernels are compiled with a per-function target
// attribute, so they exist in every x86 build regardless of -march and
// are gated purely by the cpuid probe at dispatch time.
#if defined(__x86_64__) || defined(__i386__)
#define SMARTSAGE_X86_KERNELS 1
#include <immintrin.h>
#else
#define SMARTSAGE_X86_KERNELS 0
#endif

namespace smartsage::gnn
{

namespace
{

std::atomic<KernelMode> g_kernel_mode{KernelMode::Tiled};
std::atomic<KernelDispatch> g_kernel_dispatch{KernelDispatch::Auto};
std::atomic<unsigned> g_gemm_threads{1};

/**
 * Lazily built pool backing the threaded GEMM path; rebuilt when the
 * configured thread count changes. Guarded so concurrent experiment
 * cells applying identical defaults never race a rebuild.
 */
sim::ThreadPool *
gemmPool(unsigned threads)
{
    static std::mutex mutex;
    static std::unique_ptr<sim::ThreadPool> pool;
    static unsigned pool_threads = 0;
    std::lock_guard<std::mutex> lock(mutex);
    if (pool_threads != threads) {
        pool = std::make_unique<sim::ThreadPool>(threads);
        pool_threads = threads;
    }
    return pool.get();
}

} // namespace

void
setKernelMode(KernelMode mode)
{
    g_kernel_mode.store(mode, std::memory_order_relaxed);
}

KernelMode
kernelMode()
{
    return g_kernel_mode.load(std::memory_order_relaxed);
}

bool
cpuSupportsAvx2()
{
#if SMARTSAGE_X86_KERNELS && (defined(__GNUC__) || defined(__clang__))
    // FMA ships with every AVX2 core we care about, but probe both:
    // the microkernels use fused multiply-add.
    static const bool supported = __builtin_cpu_supports("avx2") &&
                                  __builtin_cpu_supports("fma");
    return supported;
#else
    return false;
#endif
}

void
setKernelDispatch(KernelDispatch dispatch)
{
    g_kernel_dispatch.store(dispatch, std::memory_order_relaxed);
}

KernelDispatch
kernelDispatch()
{
    return g_kernel_dispatch.load(std::memory_order_relaxed);
}

KernelDispatch
resolvedKernelDispatch()
{
    KernelDispatch d = kernelDispatch();
    if (d == KernelDispatch::Scalar)
        return d;
    return cpuSupportsAvx2() ? KernelDispatch::Avx2
                             : KernelDispatch::Scalar;
}

const char *
kernelDispatchName(KernelDispatch dispatch)
{
    switch (dispatch) {
    case KernelDispatch::Auto:
        return "auto";
    case KernelDispatch::Scalar:
        return "scalar";
    case KernelDispatch::Avx2:
        return "avx2";
    }
    return "?";
}

KernelDispatch
kernelDispatchFromKnob(double value)
{
    if (value == 0)
        return KernelDispatch::Auto;
    if (value == 1)
        return KernelDispatch::Scalar;
    if (value == 2)
        return KernelDispatch::Avx2;
    SS_FATAL("kernel.dispatch must be 0 (auto), 1 (scalar), or "
             "2 (avx2), got ",
             value);
}

void
setGemmThreads(unsigned threads)
{
    g_gemm_threads.store(threads < 1 ? 1 : threads,
                         std::memory_order_relaxed);
}

unsigned
gemmThreads()
{
    return g_gemm_threads.load(std::memory_order_relaxed);
}

bool
applyKnob(KernelConfig &config, std::string_view key, double value)
{
    if (key == "dispatch") {
        config.dispatch = kernelDispatchFromKnob(value);
    } else if (key == "gemm_threads") {
        if (value != std::floor(value) || value < 1 || value > 64)
            SS_FATAL("kernel.gemm_threads must be an integer in "
                     "[1, 64], got ",
                     value);
        config.gemm_threads = static_cast<unsigned>(value);
    } else {
        return false;
    }
    return true;
}

void
applyKernelConfig(const KernelConfig &config)
{
    setKernelDispatch(config.dispatch);
    setGemmThreads(config.gemm_threads);
}

Tensor2D::Tensor2D(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

Tensor2D
Tensor2D::uniform(std::size_t rows, std::size_t cols, float scale,
                  sim::Rng &rng)
{
    Tensor2D t(rows, cols);
    for (auto &v : t.data_)
        v = static_cast<float>((rng.nextDouble() * 2.0 - 1.0) * scale);
    return t;
}

Tensor2D &
Tensor2D::operator+=(const Tensor2D &other)
{
    SS_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
              "shape mismatch in +=");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Tensor2D &
Tensor2D::operator*=(float s)
{
    for (auto &v : data_)
        v *= s;
    return *this;
}

void
Tensor2D::zero()
{
    std::fill(data_.begin(), data_.end(), 0.0f);
}

double
Tensor2D::normSq() const
{
    double acc = 0.0;
    for (float v : data_)
        acc += static_cast<double>(v) * v;
    return acc;
}

void
Tensor2D::saveState(sim::ByteWriter &writer) const
{
    writer.u64(rows_);
    writer.u64(cols_);
    for (float v : data_)
        writer.f32(v);
}

void
Tensor2D::loadState(sim::ByteReader &reader)
{
    const std::uint64_t rows = reader.u64();
    const std::uint64_t cols = reader.u64();
    rows_ = static_cast<std::size_t>(rows);
    cols_ = static_cast<std::size_t>(cols);
    data_.resize(rows_ * cols_);
    for (float &v : data_)
        v = reader.f32();
}

namespace
{

// Cache-blocked kernels. Blocks are sized so one B panel (KB x JB
// floats = 32 KiB) stays L1-resident across the whole i sweep, and the
// 4-way k unroll keeps four accumulator streams per C row in registers,
// which is what lets GCC vectorize the j loop into FMAs.
constexpr std::size_t kKB = 64;  //!< reduction-dim block
constexpr std::size_t kJB = 128; //!< output-column block

void
matmulNaive(const Tensor2D &a, const Tensor2D &b, Tensor2D &c)
{
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            float aik = a.at(i, k);
            if (aik == 0.0f)
                continue;
            auto brow = b.row(k);
            auto crow = c.row(i);
            for (std::size_t j = 0; j < b.cols(); ++j)
                crow[j] += aik * brow[j];
        }
    }
}

/**
 * Scalar NN microkernel over rows [i0, i1) of C. Per-row accumulation
 * order (kk outer, then jj, then the 4-way k unroll) is independent of
 * the row range, so any row-block decomposition of [0, m) produces
 * output bit-identical to a single full-range call.
 */
void
matmulScalarRows(const float *adata, const float *bdata, float *cdata,
                 std::size_t i0, std::size_t i1, std::size_t kdim,
                 std::size_t n)
{
    for (std::size_t kk = 0; kk < kdim; kk += kKB) {
        const std::size_t kb = std::min(kKB, kdim - kk);
        for (std::size_t jj = 0; jj < n; jj += kJB) {
            const std::size_t jb = std::min(kJB, n - jj);
            for (std::size_t i = i0; i < i1; ++i) {
                const float *arow = adata + i * kdim + kk;
                float *crow = cdata + i * n + jj;
                std::size_t k = 0;
                for (; k + 4 <= kb; k += 4) {
                    const float a0 = arow[k], a1 = arow[k + 1];
                    const float a2 = arow[k + 2], a3 = arow[k + 3];
                    const float *b0 = bdata + (kk + k) * n + jj;
                    const float *b1 = b0 + n, *b2 = b1 + n, *b3 = b2 + n;
                    for (std::size_t j = 0; j < jb; ++j)
                        crow[j] += a0 * b0[j] + a1 * b1[j] +
                                   a2 * b2[j] + a3 * b3[j];
                }
                for (; k < kb; ++k) {
                    const float a0 = arow[k];
                    const float *b0 = bdata + (kk + k) * n + jj;
                    for (std::size_t j = 0; j < jb; ++j)
                        crow[j] += a0 * b0[j];
                }
            }
        }
    }
}

#if SMARTSAGE_X86_KERNELS

/**
 * AVX2+FMA NN microkernel, same blocking and row-range contract as
 * matmulScalarRows. The j loop runs 8 lanes wide with broadcast A
 * scalars; the fused multiply-adds mean outputs match the scalar
 * kernel to tolerance, not bitwise (still bit-identical across
 * row-block decompositions of itself).
 */
__attribute__((target("avx2,fma"))) void
matmulAvx2Rows(const float *adata, const float *bdata, float *cdata,
               std::size_t i0, std::size_t i1, std::size_t kdim,
               std::size_t n)
{
    for (std::size_t kk = 0; kk < kdim; kk += kKB) {
        const std::size_t kb = std::min(kKB, kdim - kk);
        for (std::size_t jj = 0; jj < n; jj += kJB) {
            const std::size_t jb = std::min(kJB, n - jj);
            for (std::size_t i = i0; i < i1; ++i) {
                const float *arow = adata + i * kdim + kk;
                float *crow = cdata + i * n + jj;
                std::size_t k = 0;
                for (; k + 4 <= kb; k += 4) {
                    const __m256 a0 = _mm256_set1_ps(arow[k]);
                    const __m256 a1 = _mm256_set1_ps(arow[k + 1]);
                    const __m256 a2 = _mm256_set1_ps(arow[k + 2]);
                    const __m256 a3 = _mm256_set1_ps(arow[k + 3]);
                    const float *b0 = bdata + (kk + k) * n + jj;
                    const float *b1 = b0 + n, *b2 = b1 + n, *b3 = b2 + n;
                    std::size_t j = 0;
                    for (; j + 8 <= jb; j += 8) {
                        __m256 acc = _mm256_loadu_ps(crow + j);
                        acc = _mm256_fmadd_ps(
                            a0, _mm256_loadu_ps(b0 + j), acc);
                        acc = _mm256_fmadd_ps(
                            a1, _mm256_loadu_ps(b1 + j), acc);
                        acc = _mm256_fmadd_ps(
                            a2, _mm256_loadu_ps(b2 + j), acc);
                        acc = _mm256_fmadd_ps(
                            a3, _mm256_loadu_ps(b3 + j), acc);
                        _mm256_storeu_ps(crow + j, acc);
                    }
                    for (; j < jb; ++j)
                        crow[j] += arow[k] * b0[j] + arow[k + 1] * b1[j] +
                                   arow[k + 2] * b2[j] +
                                   arow[k + 3] * b3[j];
                }
                for (; k < kb; ++k) {
                    const __m256 a0 = _mm256_set1_ps(arow[k]);
                    const float *b0 = bdata + (kk + k) * n + jj;
                    std::size_t j = 0;
                    for (; j + 8 <= jb; j += 8) {
                        __m256 acc = _mm256_loadu_ps(crow + j);
                        acc = _mm256_fmadd_ps(
                            a0, _mm256_loadu_ps(b0 + j), acc);
                        _mm256_storeu_ps(crow + j, acc);
                    }
                    for (; j < jb; ++j)
                        crow[j] += arow[k] * b0[j];
                }
            }
        }
    }
}

#endif // SMARTSAGE_X86_KERNELS

using GemmRowsFn = void (*)(const float *, const float *, float *,
                            std::size_t, std::size_t, std::size_t,
                            std::size_t);

/**
 * Fixed row-block size for the threaded GEMM decomposition. Fixed —
 * not derived from the thread count — so the set of (i0, i1) slices,
 * and therefore every output bit, is invariant to kernel.gemm_threads.
 */
constexpr std::size_t kRowBlock = 64;

/** Run @p fn over C's rows, in parallel when gemmThreads() > 1. Each
 *  block writes a disjoint row slice, so no reduction across threads
 *  exists and the result equals the serial call bit-for-bit. */
void
runGemmRows(GemmRowsFn fn, const Tensor2D &a, const Tensor2D &b,
            Tensor2D &c)
{
    const std::size_t m = a.rows(), kdim = a.cols(), n = b.cols();
    const float *adata = a.data().data();
    const float *bdata = b.data().data();
    float *cdata = c.data().data();

    const unsigned threads = gemmThreads();
    if (threads <= 1 || m <= kRowBlock) {
        fn(adata, bdata, cdata, 0, m, kdim, n);
        return;
    }
    const std::size_t blocks = (m + kRowBlock - 1) / kRowBlock;
    sim::parallelFor(gemmPool(threads), blocks, [&](std::size_t blk) {
        const std::size_t i0 = blk * kRowBlock;
        const std::size_t i1 = std::min(i0 + kRowBlock, m);
        fn(adata, bdata, cdata, i0, i1, kdim, n);
    });
}

void
matmulTNNaive(const Tensor2D &a, const Tensor2D &b, Tensor2D &c)
{
    for (std::size_t k = 0; k < a.rows(); ++k) {
        auto arow = a.row(k);
        auto brow = b.row(k);
        for (std::size_t i = 0; i < a.cols(); ++i) {
            float aki = arow[i];
            if (aki == 0.0f)
                continue;
            auto crow = c.row(i);
            for (std::size_t j = 0; j < b.cols(); ++j)
                crow[j] += aki * brow[j];
        }
    }
}

void
matmulTNTiled(const Tensor2D &a, const Tensor2D &b, Tensor2D &c)
{
    // C[i][j] = sum_r A[r][i] * B[r][j]; r is the reduction dim. Rows
    // of B are processed four at a time so the panel stays cached
    // across the full sweep of A's columns.
    const std::size_t rdim = a.rows(), m = a.cols(), n = b.cols();
    const float *adata = a.data().data();
    const float *bdata = b.data().data();
    float *cdata = c.data().data();

    std::size_t r = 0;
    for (; r + 4 <= rdim; r += 4) {
        const float *a0 = adata + r * m;
        const float *a1 = a0 + m, *a2 = a1 + m, *a3 = a2 + m;
        const float *b0 = bdata + r * n;
        const float *b1 = b0 + n, *b2 = b1 + n, *b3 = b2 + n;
        for (std::size_t i = 0; i < m; ++i) {
            const float w0 = a0[i], w1 = a1[i], w2 = a2[i], w3 = a3[i];
            float *crow = cdata + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += w0 * b0[j] + w1 * b1[j] + w2 * b2[j] +
                           w3 * b3[j];
        }
    }
    for (; r < rdim; ++r) {
        const float *arow = adata + r * m;
        const float *brow = bdata + r * n;
        for (std::size_t i = 0; i < m; ++i) {
            const float w = arow[i];
            float *crow = cdata + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += w * brow[j];
        }
    }
}

#if SMARTSAGE_X86_KERNELS

/** AVX2+FMA variant of matmulTNTiled: same 4-row B panels, j loop
 *  8 lanes wide with broadcast A weights. */
__attribute__((target("avx2,fma"))) void
matmulTNAvx2(const Tensor2D &a, const Tensor2D &b, Tensor2D &c)
{
    const std::size_t rdim = a.rows(), m = a.cols(), n = b.cols();
    const float *adata = a.data().data();
    const float *bdata = b.data().data();
    float *cdata = c.data().data();

    std::size_t r = 0;
    for (; r + 4 <= rdim; r += 4) {
        const float *a0 = adata + r * m;
        const float *a1 = a0 + m, *a2 = a1 + m, *a3 = a2 + m;
        const float *b0 = bdata + r * n;
        const float *b1 = b0 + n, *b2 = b1 + n, *b3 = b2 + n;
        for (std::size_t i = 0; i < m; ++i) {
            const __m256 w0 = _mm256_set1_ps(a0[i]);
            const __m256 w1 = _mm256_set1_ps(a1[i]);
            const __m256 w2 = _mm256_set1_ps(a2[i]);
            const __m256 w3 = _mm256_set1_ps(a3[i]);
            float *crow = cdata + i * n;
            std::size_t j = 0;
            for (; j + 8 <= n; j += 8) {
                __m256 acc = _mm256_loadu_ps(crow + j);
                acc = _mm256_fmadd_ps(w0, _mm256_loadu_ps(b0 + j), acc);
                acc = _mm256_fmadd_ps(w1, _mm256_loadu_ps(b1 + j), acc);
                acc = _mm256_fmadd_ps(w2, _mm256_loadu_ps(b2 + j), acc);
                acc = _mm256_fmadd_ps(w3, _mm256_loadu_ps(b3 + j), acc);
                _mm256_storeu_ps(crow + j, acc);
            }
            for (; j < n; ++j)
                crow[j] += a0[i] * b0[j] + a1[i] * b1[j] +
                           a2[i] * b2[j] + a3[i] * b3[j];
        }
    }
    for (; r < rdim; ++r) {
        const float *arow = adata + r * m;
        const float *brow = bdata + r * n;
        for (std::size_t i = 0; i < m; ++i) {
            const __m256 w = _mm256_set1_ps(arow[i]);
            float *crow = cdata + i * n;
            std::size_t j = 0;
            for (; j + 8 <= n; j += 8) {
                __m256 acc = _mm256_loadu_ps(crow + j);
                acc = _mm256_fmadd_ps(w, _mm256_loadu_ps(brow + j), acc);
                _mm256_storeu_ps(crow + j, acc);
            }
            for (; j < n; ++j)
                crow[j] += arow[i] * brow[j];
        }
    }
}

#endif // SMARTSAGE_X86_KERNELS

void
matmulNTNaive(const Tensor2D &a, const Tensor2D &b, Tensor2D &c)
{
    for (std::size_t i = 0; i < a.rows(); ++i) {
        auto arow = a.row(i);
        for (std::size_t j = 0; j < b.rows(); ++j) {
            auto brow = b.row(j);
            float acc = 0.0f;
            for (std::size_t k = 0; k < a.cols(); ++k)
                acc += arow[k] * brow[k];
            c.at(i, j) = acc;
        }
    }
}

void
matmulNTTiled(const Tensor2D &a, const Tensor2D &b, Tensor2D &c)
{
    // C[i][j] = dot(A row i, B row j). The reduction is split into
    // eight explicit partial-sum lanes so the compiler can map them to
    // vector registers without needing permission to reassociate a
    // single serial chain (no fast-math: NaN/Inf still propagate).
    constexpr std::size_t kLanes = 8;
    const std::size_t m = a.rows(), n = b.rows(), kdim = a.cols();
    const float *adata = a.data().data();
    const float *bdata = b.data().data();
    float *cdata = c.data().data();

    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = adata + i * kdim;
        float *crow = cdata + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const float *brow = bdata + j * kdim;
            float lane[kLanes] = {};
            std::size_t k = 0;
            for (; k + kLanes <= kdim; k += kLanes)
                for (std::size_t l = 0; l < kLanes; ++l)
                    lane[l] += arow[k + l] * brow[k + l];
            float acc = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
                        ((lane[4] + lane[5]) + (lane[6] + lane[7]));
            for (; k < kdim; ++k)
                acc += arow[k] * brow[k];
            crow[j] = acc;
        }
    }
}

#if SMARTSAGE_X86_KERNELS

/** AVX2+FMA variant of matmulNTTiled: two 8-lane FMA accumulators per
 *  dot product, combined in a fixed order before the scalar tail. */
__attribute__((target("avx2,fma"))) void
matmulNTAvx2(const Tensor2D &a, const Tensor2D &b, Tensor2D &c)
{
    const std::size_t m = a.rows(), n = b.rows(), kdim = a.cols();
    const float *adata = a.data().data();
    const float *bdata = b.data().data();
    float *cdata = c.data().data();

    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = adata + i * kdim;
        float *crow = cdata + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const float *brow = bdata + j * kdim;
            __m256 v0 = _mm256_setzero_ps();
            __m256 v1 = _mm256_setzero_ps();
            std::size_t k = 0;
            for (; k + 16 <= kdim; k += 16) {
                v0 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + k),
                                     _mm256_loadu_ps(brow + k), v0);
                v1 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + k + 8),
                                     _mm256_loadu_ps(brow + k + 8), v1);
            }
            for (; k + 8 <= kdim; k += 8)
                v0 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + k),
                                     _mm256_loadu_ps(brow + k), v0);
            const __m256 v = _mm256_add_ps(v0, v1);
            __m128 s = _mm_add_ps(_mm256_castps256_ps128(v),
                                  _mm256_extractf128_ps(v, 1));
            s = _mm_add_ps(s, _mm_movehl_ps(s, s));
            s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
            float acc = _mm_cvtss_f32(s);
            for (; k < kdim; ++k)
                acc += arow[k] * brow[k];
            crow[j] = acc;
        }
    }
}

#endif // SMARTSAGE_X86_KERNELS

} // namespace

Tensor2D
matmul(const Tensor2D &a, const Tensor2D &b)
{
    Tensor2D c;
    matmulInto(a, b, c);
    return c;
}

Tensor2D
matmulTN(const Tensor2D &a, const Tensor2D &b)
{
    Tensor2D c;
    matmulTNInto(a, b, c);
    return c;
}

Tensor2D
matmulNT(const Tensor2D &a, const Tensor2D &b)
{
    Tensor2D c;
    matmulNTInto(a, b, c);
    return c;
}

void
matmulInto(const Tensor2D &a, const Tensor2D &b, Tensor2D &c)
{
    SS_ASSERT(a.cols() == b.rows(), "matmul shape mismatch: ", a.cols(),
              " vs ", b.rows());
    c.resizeToZero(a.rows(), b.cols());
    matmulAccumulate(a, b, c);
}

void
matmulAccumulate(const Tensor2D &a, const Tensor2D &b, Tensor2D &c)
{
    SS_ASSERT(a.cols() == b.rows() && c.rows() == a.rows() &&
                  c.cols() == b.cols(),
              "matmulAccumulate shape mismatch");
    if (kernelMode() == KernelMode::Naive) {
        matmulNaive(a, b, c);
        return;
    }
#if SMARTSAGE_X86_KERNELS
    if (resolvedKernelDispatch() == KernelDispatch::Avx2) {
        runGemmRows(matmulAvx2Rows, a, b, c);
        return;
    }
#endif
    runGemmRows(matmulScalarRows, a, b, c);
}

void
matmulTNInto(const Tensor2D &a, const Tensor2D &b, Tensor2D &c)
{
    SS_ASSERT(a.rows() == b.rows(), "matmulTN shape mismatch");
    c.resizeToZero(a.cols(), b.cols());
    if (kernelMode() == KernelMode::Naive) {
        matmulTNNaive(a, b, c);
        return;
    }
#if SMARTSAGE_X86_KERNELS
    if (resolvedKernelDispatch() == KernelDispatch::Avx2) {
        matmulTNAvx2(a, b, c);
        return;
    }
#endif
    matmulTNTiled(a, b, c);
}

void
matmulNTInto(const Tensor2D &a, const Tensor2D &b, Tensor2D &c)
{
    SS_ASSERT(a.cols() == b.cols(), "matmulNT shape mismatch");
    // Both NT kernels overwrite every output element: reshape only.
    c.resizeTo(a.rows(), b.rows());
    if (kernelMode() == KernelMode::Naive) {
        matmulNTNaive(a, b, c);
        return;
    }
#if SMARTSAGE_X86_KERNELS
    if (resolvedKernelDispatch() == KernelDispatch::Avx2) {
        matmulNTAvx2(a, b, c);
        return;
    }
#endif
    matmulNTTiled(a, b, c);
}

namespace
{

#if SMARTSAGE_X86_KERNELS

// AVX2 row microkernels use plain add/mul (no FMA, no reassociation),
// so they are bit-identical to the scalar loops element-for-element.

__attribute__((target("avx2"))) void
rowAccumulateAvx2(float *dst, const float *src, std::size_t n)
{
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8)
        _mm256_storeu_ps(dst + j,
                         _mm256_add_ps(_mm256_loadu_ps(dst + j),
                                       _mm256_loadu_ps(src + j)));
    for (; j < n; ++j)
        dst[j] += src[j];
}

__attribute__((target("avx2"))) void
rowAccumulateScaleAvx2(float *dst, const float *src, float scale,
                       std::size_t n)
{
    const __m256 s = _mm256_set1_ps(scale);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8)
        _mm256_storeu_ps(
            dst + j,
            _mm256_mul_ps(_mm256_add_ps(_mm256_loadu_ps(dst + j),
                                        _mm256_loadu_ps(src + j)),
                          s));
    for (; j < n; ++j)
        dst[j] = (dst[j] + src[j]) * scale;
}

#endif // SMARTSAGE_X86_KERNELS

} // namespace

void
rowAccumulate(float *dst, const float *src, std::size_t n)
{
#if SMARTSAGE_X86_KERNELS
    if (resolvedKernelDispatch() == KernelDispatch::Avx2) {
        rowAccumulateAvx2(dst, src, n);
        return;
    }
#endif
    for (std::size_t j = 0; j < n; ++j)
        dst[j] += src[j];
}

void
rowAccumulateScale(float *dst, const float *src, float scale,
                   std::size_t n)
{
#if SMARTSAGE_X86_KERNELS
    if (resolvedKernelDispatch() == KernelDispatch::Avx2) {
        rowAccumulateScaleAvx2(dst, src, scale, n);
        return;
    }
#endif
    for (std::size_t j = 0; j < n; ++j)
        dst[j] = (dst[j] + src[j]) * scale;
}

std::vector<char>
reluForward(Tensor2D &x)
{
    std::vector<char> mask;
    reluForwardInto(x, mask);
    return mask;
}

void
reluForwardInto(Tensor2D &x, std::vector<char> &mask)
{
    mask.resize(x.rows() * x.cols());
    auto &d = x.data();
    for (std::size_t i = 0; i < d.size(); ++i) {
        mask[i] = d[i] > 0.0f;
        if (!mask[i])
            d[i] = 0.0f;
    }
}

void
reluBackward(Tensor2D &grad, const std::vector<char> &mask)
{
    auto &d = grad.data();
    SS_ASSERT(d.size() == mask.size(), "relu mask size mismatch");
    for (std::size_t i = 0; i < d.size(); ++i) {
        if (!mask[i])
            d[i] = 0.0f;
    }
}

void
addBias(Tensor2D &x, const Tensor2D &bias)
{
    SS_ASSERT(bias.rows() == 1 && bias.cols() == x.cols(),
              "bias shape mismatch");
    for (std::size_t i = 0; i < x.rows(); ++i) {
        auto row = x.row(i);
        auto b = bias.row(0);
        for (std::size_t j = 0; j < x.cols(); ++j)
            row[j] += b[j];
    }
}

double
softmaxCrossEntropy(const Tensor2D &logits,
                    const std::vector<std::uint32_t> &labels,
                    Tensor2D &grad)
{
    SS_ASSERT(labels.size() == logits.rows(), "label count mismatch");
    grad.resizeTo(logits.rows(), logits.cols()); // fully written below
    double loss = 0.0;
    const double inv_n = 1.0 / static_cast<double>(logits.rows());

    // One exp per element: stash exp(v - max) per row, then normalize.
    // thread_local so the warm training loop stays allocation-free.
    thread_local std::vector<double> exps;
    exps.resize(logits.cols());
    for (std::size_t i = 0; i < logits.rows(); ++i) {
        auto row = logits.row(i);
        float max_v = *std::max_element(row.begin(), row.end());
        double denom = 0.0;
        for (std::size_t j = 0; j < logits.cols(); ++j) {
            exps[j] = std::exp(static_cast<double>(row[j] - max_v));
            denom += exps[j];
        }
        std::uint32_t y = labels[i];
        SS_ASSERT(y < logits.cols(), "label ", y, " out of range");
        double log_p =
            static_cast<double>(row[y] - max_v) - std::log(denom);
        loss -= log_p * inv_n;
        auto grow = grad.row(i);
        for (std::size_t j = 0; j < logits.cols(); ++j) {
            double p = exps[j] / denom;
            grow[j] = static_cast<float>(
                (p - (j == y ? 1.0 : 0.0)) * inv_n);
        }
    }
    return loss;
}

std::vector<std::uint32_t>
argmaxRows(const Tensor2D &logits)
{
    std::vector<std::uint32_t> out(logits.rows());
    for (std::size_t i = 0; i < logits.rows(); ++i) {
        auto row = logits.row(i);
        out[i] = static_cast<std::uint32_t>(
            std::max_element(row.begin(), row.end()) - row.begin());
    }
    return out;
}

} // namespace smartsage::gnn
