/**
 * @file
 * End-to-end GraphSAGE model: a stack of SageMeanLayers plus a softmax
 * classifier head, trained with SGD on sampled subgraphs.
 */

#ifndef SMARTSAGE_GNN_MODEL_HH
#define SMARTSAGE_GNN_MODEL_HH

#include <cstdint>
#include <vector>

#include "feature_table.hh"
#include "layers.hh"
#include "subgraph.hh"

namespace smartsage::gnn
{

/** Hyperparameters of the GraphSAGE model. */
struct ModelConfig
{
    unsigned in_dim = 32;
    unsigned hidden_dim = 64;
    unsigned num_classes = 8;
    unsigned depth = 2;    //!< number of SAGE layers = sampling hops
    float learning_rate = 0.05f;
    std::uint64_t seed = 1234;
};

/** Multi-layer GraphSAGE with a cross-entropy objective. */
class SageModel
{
  public:
    explicit SageModel(const ModelConfig &config);

    /**
     * Forward through all layers.
     * @param sg  sampled subgraph; sg.depth() must equal config depth
     * @param ft  feature source for the deepest frontier
     * @param ctxs out-param per-layer contexts (nullptr to discard)
     * @return logits for the target nodes (M x num_classes)
     */
    Tensor2D forward(const Subgraph &sg, const FeatureTable &ft,
                     std::vector<SageContext> *ctxs) const;

    /**
     * One SGD training step on @p sg.
     * @return mean cross-entropy loss before the update
     */
    double trainStep(const Subgraph &sg, const FeatureTable &ft);

    /** Fraction of targets classified correctly (no update). */
    double evaluate(const Subgraph &sg, const FeatureTable &ft) const;

    const ModelConfig &config() const { return config_; }
    const std::vector<SageMeanLayer> &layers() const { return layers_; }
    std::vector<SageMeanLayer> &mutableLayers() { return layers_; }

    /** Total trainable parameters. */
    std::uint64_t parameterCount() const;

    /**
     * Serialize a config fingerprint plus every layer's parameters.
     * Under plain SGD the parameters ARE the full optimizer state, so
     * this is the complete model half of a training checkpoint.
     */
    void saveState(sim::ByteWriter &writer) const;

    /**
     * Restore state saved by saveState(). Throws sim::SerializeError
     * if the fingerprint does not match this model's config (a
     * checkpoint from a differently-shaped model cannot be resumed).
     */
    void loadState(sim::ByteReader &reader);

    /** FNV-1a hash over the serialized state (bit-identity checks). */
    std::uint64_t stateHash() const;

  private:
    ModelConfig config_;
    std::vector<SageMeanLayer> layers_;

    /**
     * Shared layer walk: gathers input features into @p act_a and
     * ping-pongs activations through the stack. Returns a reference to
     * whichever buffer holds the logits. forward() passes fresh local
     * buffers; trainStep() passes the member workspaces.
     */
    const Tensor2D &runForward(const Subgraph &sg, const FeatureTable &ft,
                               std::vector<SageContext> &ctxs,
                               Tensor2D &act_a, Tensor2D &act_b) const;

    // trainStep workspaces, reused across batches so the steady-state
    // training loop performs no tensor allocation. evaluate()/forward()
    // keep the allocating path (they are const and rarely hot).
    std::vector<SageContext> ctxs_;
    Tensor2D act_a_, act_b_;   //!< forward activation ping-pong
    Tensor2D grad_a_, grad_b_; //!< backward gradient ping-pong
    SageLayerGrads grads_ws_;
    std::vector<std::uint32_t> labels_ws_;
};

} // namespace smartsage::gnn

#endif // SMARTSAGE_GNN_MODEL_HH
