/**
 * @file
 * The sampled subgraph a mini-batch trains on (the paper's Fig 2).
 *
 * Organized as DGL-style blocks: frontier[0] is the M target nodes;
 * block[h] records, for every node of frontier[h], the neighbors that
 * were sampled for it, as indices into frontier[h+1]. frontier[h+1]
 * begins with a verbatim copy of frontier[h] (a node's own embedding is
 * needed for the CONVOLVE self term), followed by newly discovered
 * sources.
 */

#ifndef SMARTSAGE_GNN_SUBGRAPH_HH
#define SMARTSAGE_GNN_SUBGRAPH_HH

#include <cstdint>
#include <vector>

#include "graph/csr.hh"

namespace smartsage::gnn
{

/** Sampled connectivity between two adjacent frontiers. */
struct SampledBlock
{
    /** Per-destination CSR offsets; size = |frontier[h]| + 1. */
    std::vector<std::uint32_t> offsets;
    /** Sampled sources as positions within frontier[h+1]. */
    std::vector<std::uint32_t> src_index;

    std::uint64_t numEdges() const { return src_index.size(); }
    std::uint64_t numDsts() const { return offsets.empty() ? 0 : offsets.size() - 1; }
};

/** A complete multi-hop sampled subgraph for one mini-batch. */
struct Subgraph
{
    /** frontiers[0] = targets, frontiers.back() = deepest input nodes. */
    std::vector<std::vector<graph::LocalNodeId>> frontiers;
    /** blocks[h] connects frontier[h] <- frontier[h+1]; size = depth. */
    std::vector<SampledBlock> blocks;

    std::size_t depth() const { return blocks.size(); }
    const std::vector<graph::LocalNodeId> &targets() const { return frontiers.front(); }
    const std::vector<graph::LocalNodeId> &inputNodes() const { return frontiers.back(); }

    /** Total sampled edges across every hop. */
    std::uint64_t totalSampledEdges() const;

    /** Distinct nodes across all frontiers (deepest frontier is a
     *  superset of the shallower ones by construction). */
    std::uint64_t numUniqueNodes() const { return frontiers.back().size(); }

    /**
     * Size of the subgraph as a dense sampled-ID list, the payload
     * SmartSAGE DMAs back to the host (Fig 10(b)).
     */
    std::uint64_t
    idListBytes(unsigned entry_bytes) const
    {
        return (totalSampledEdges() + targets().size()) * entry_bytes;
    }

    /** Structural sanity (index ranges, frontier prefix property). */
    void checkInvariants() const;
};

} // namespace smartsage::gnn

#endif // SMARTSAGE_GNN_SUBGRAPH_HH
