#include "sampler.hh"

#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "sim/logging.hh"

namespace smartsage::gnn
{

namespace
{

// ------------------------------------------------------------------
// Fast path: epoch-stamped flat dedup, reusable scratch, statically
// dispatched visitor. The visitor parameter is a concrete type, so
// with NoopVisitor every per-edge callback compiles away entirely.
// ------------------------------------------------------------------

/** Statically dispatched no-op visitor (fast path). */
struct NoopVisitor
{
    void onBatchStart(std::size_t) {}
    void onOffsetRead(graph::LocalNodeId) {}
    void onEdgeEntryRead(graph::LocalNodeId, std::uint64_t) {}
    void onSampled(graph::LocalNodeId, graph::LocalNodeId) {}
    void onBatchEnd() {}
};

/** Forwards to the virtual SampleVisitor (instrumented path). */
struct ForwardingVisitor
{
    SampleVisitor &v;

    void onBatchStart(std::size_t n) { v.onBatchStart(n); }
    void onOffsetRead(graph::LocalNodeId u) { v.onOffsetRead(u); }
    void
    onEdgeEntryRead(graph::LocalNodeId u, std::uint64_t e)
    {
        v.onEdgeEntryRead(u, e);
    }
    void
    onSampled(graph::LocalNodeId u, graph::LocalNodeId w)
    {
        v.onSampled(u, w);
    }
    void onBatchEnd() { v.onBatchEnd(); }
};

/** Reset @p out to @p depth empty hops, keeping every buffer's capacity. */
void
prepareSubgraph(Subgraph &out, std::size_t depth)
{
    out.frontiers.resize(depth + 1);
    out.blocks.resize(depth);
    for (auto &f : out.frontiers)
        f.clear();
    for (auto &b : out.blocks) {
        b.offsets.clear();
        b.src_index.clear();
    }
}

/**
 * Draw @p want distinct indices out of [0, degree) with Floyd's
 * algorithm (O(want) expected work regardless of degree). Same draw
 * sequence and output order as the baseline unordered_set
 * implementation. Typical fanouts dedup by scanning the picks
 * gathered so far — allocation-free and O(want) memory; very large
 * fanouts fall back to a hash set rather than scale scratch memory
 * with the node degree.
 */
void
sampleDistinctFast(std::uint64_t degree, unsigned want, sim::Rng &rng,
                   SampleScratch &scratch)
{
    auto &out = scratch.picks;
    out.clear();
    if (want <= 64) {
        auto seen = [&out](std::uint64_t x) {
            for (std::uint64_t p : out)
                if (p == x)
                    return true;
            return false;
        };
        for (std::uint64_t j = degree - want; j < degree; ++j) {
            std::uint64_t t = rng.nextBounded(j + 1);
            out.push_back(seen(t) ? j : t);
        }
        return;
    }
    std::unordered_set<std::uint64_t> chosen;
    chosen.reserve(want);
    for (std::uint64_t j = degree - want; j < degree; ++j) {
        std::uint64_t t = rng.nextBounded(j + 1);
        if (chosen.insert(t).second) {
            out.push_back(t);
        } else {
            chosen.insert(j);
            out.push_back(j);
        }
    }
}

/** GraphSAGE core, templated on the (statically known) visitor type. */
template <typename Visitor>
void
sageSampleCore(const std::vector<unsigned> &fanouts,
               const graph::CsrGraph &graph,
               const std::vector<graph::LocalNodeId> &targets,
               sim::Rng &rng, Visitor &&vis, SampleScratch &scratch,
               Subgraph &out)
{
    SS_ASSERT(!targets.empty(), "empty target batch");
    vis.onBatchStart(targets.size());

    const std::size_t depth = fanouts.size();
    prepareSubgraph(out, depth);
    out.frontiers[0].assign(targets.begin(), targets.end());

    auto &dedup = scratch.frontier_index;
    dedup.reserve(graph.numNodes());

    for (std::size_t h = 0; h < depth; ++h) {
        const unsigned fanout = fanouts[h];
        const auto &frontier = out.frontiers[h];
        auto &next = out.frontiers[h + 1];
        SampledBlock &block = out.blocks[h];

        // Self-prefix property: the next frontier starts as a verbatim
        // copy of the current one. put() (last occurrence wins) keeps
        // duplicate-target batches index-compatible with the baseline's
        // FrontierBuilder.
        next.assign(frontier.begin(), frontier.end());
        dedup.clear();
        for (std::uint32_t i = 0; i < next.size(); ++i)
            dedup.put(next[i], i);

        block.offsets.reserve(frontier.size() + 1);
        block.offsets.push_back(0);

        for (graph::LocalNodeId u : frontier) {
            vis.onOffsetRead(u);
            std::uint64_t degree = graph.degree(u);
            std::uint64_t base = graph.edgeOffset(u);
            auto nbrs = graph.neighbors(u);

            if (degree == 0) {
                block.offsets.push_back(
                    static_cast<std::uint32_t>(block.src_index.size()));
                continue;
            }

            auto emit = [&](std::uint64_t j) {
                vis.onEdgeEntryRead(u, base + j);
                graph::LocalNodeId v = nbrs[j];
                vis.onSampled(u, v);
                auto [slot, inserted] = dedup.tryEmplace(
                    v, static_cast<std::uint32_t>(next.size()));
                if (inserted)
                    next.push_back(v);
                block.src_index.push_back(slot);
            };

            if (degree <= fanout) {
                for (std::uint64_t j = 0; j < degree; ++j)
                    emit(j);
            } else {
                sampleDistinctFast(degree, fanout, rng, scratch);
                for (std::uint64_t j : scratch.picks)
                    emit(j);
            }
            block.offsets.push_back(
                static_cast<std::uint32_t>(block.src_index.size()));
        }
    }

    vis.onBatchEnd();
}

/** GraphSAINT core, templated on the (statically known) visitor type. */
template <typename Visitor>
void
saintSampleCore(unsigned walk_length, const graph::CsrGraph &graph,
                const std::vector<graph::LocalNodeId> &roots,
                sim::Rng &rng, Visitor &&vis, SampleScratch &scratch,
                Subgraph &out)
{
    SS_ASSERT(!roots.empty(), "empty root batch");
    vis.onBatchStart(roots.size());

    prepareSubgraph(out, walk_length);
    out.frontiers[0].assign(roots.begin(), roots.end());

    auto &dedup = scratch.frontier_index;
    dedup.reserve(graph.numNodes());

    // Each walk step is one block: every frontier node samples exactly
    // one neighbor (or stalls in place on a dead end).
    for (unsigned step = 0; step < walk_length; ++step) {
        const auto &frontier = out.frontiers[step];
        auto &next = out.frontiers[step + 1];
        SampledBlock &block = out.blocks[step];

        // Last occurrence wins, matching the baseline FrontierBuilder
        // when the caller passes duplicate roots.
        next.assign(frontier.begin(), frontier.end());
        dedup.clear();
        for (std::uint32_t i = 0; i < next.size(); ++i)
            dedup.put(next[i], i);

        block.offsets.reserve(frontier.size() + 1);
        block.offsets.push_back(0);

        for (graph::LocalNodeId u : frontier) {
            vis.onOffsetRead(u);
            std::uint64_t degree = graph.degree(u);
            if (degree == 0) {
                block.offsets.push_back(
                    static_cast<std::uint32_t>(block.src_index.size()));
                continue;
            }
            std::uint64_t j = rng.nextBounded(degree);
            vis.onEdgeEntryRead(u, graph.edgeOffset(u) + j);
            graph::LocalNodeId v = graph.neighbors(u)[j];
            vis.onSampled(u, v);
            auto [slot, inserted] = dedup.tryEmplace(
                v, static_cast<std::uint32_t>(next.size()));
            if (inserted)
                next.push_back(v);
            block.src_index.push_back(slot);
            block.offsets.push_back(
                static_cast<std::uint32_t>(block.src_index.size()));
        }
    }

    vis.onBatchEnd();
}

// ------------------------------------------------------------------
// Baseline (pre-optimization) path: per-batch hash containers and
// virtual visitor dispatch, kept verbatim as the golden reference.
// ------------------------------------------------------------------

/**
 * Draw @p want distinct indices out of [0, degree) with Floyd's
 * algorithm through a per-call unordered_set (baseline).
 */
void
sampleDistinctBaseline(std::uint64_t degree, unsigned want, sim::Rng &rng,
                       std::vector<std::uint64_t> &out)
{
    out.clear();
    std::unordered_set<std::uint64_t> chosen;
    for (std::uint64_t j = degree - want; j < degree; ++j) {
        std::uint64_t t = rng.nextBounded(j + 1);
        if (chosen.insert(t).second) {
            out.push_back(t);
        } else {
            chosen.insert(j);
            out.push_back(j);
        }
    }
}

/** Grow the next frontier, preserving the self-prefix property. */
class FrontierBuilder
{
  public:
    explicit FrontierBuilder(const std::vector<graph::LocalNodeId> &prev)
    {
        nodes_ = prev; // prefix copy: self embeddings
        for (std::size_t i = 0; i < prev.size(); ++i)
            index_[prev[i]] = static_cast<std::uint32_t>(i);
    }

    std::uint32_t
    indexOf(graph::LocalNodeId v)
    {
        auto [it, inserted] = index_.try_emplace(
            v, static_cast<std::uint32_t>(nodes_.size()));
        if (inserted)
            nodes_.push_back(v);
        return it->second;
    }

    std::vector<graph::LocalNodeId> take() { return std::move(nodes_); }

  private:
    std::vector<graph::LocalNodeId> nodes_;
    std::unordered_map<graph::LocalNodeId, std::uint32_t> index_;
};

} // namespace

SampleScratch &
threadSampleScratch()
{
    thread_local SampleScratch scratch;
    return scratch;
}

Subgraph
AnySampler::sample(const graph::CsrGraph &graph,
                   const std::vector<graph::LocalNodeId> &targets,
                   sim::Rng &rng, SampleVisitor *visitor) const
{
    Subgraph out;
    sampleInto(graph, targets, rng, threadSampleScratch(), out, visitor);
    return out;
}

SageSampler::SageSampler(std::vector<unsigned> fanouts)
    : fanouts_(std::move(fanouts))
{
    SS_ASSERT(!fanouts_.empty(), "need at least one hop fanout");
    for (unsigned f : fanouts_)
        SS_ASSERT(f > 0, "fanout must be positive");
}

void
SageSampler::sampleInto(const graph::CsrGraph &graph,
                        const std::vector<graph::LocalNodeId> &targets,
                        sim::Rng &rng, SampleScratch &scratch,
                        Subgraph &out, SampleVisitor *visitor) const
{
    if (visitor)
        sageSampleCore(fanouts_, graph, targets, rng,
                       ForwardingVisitor{*visitor}, scratch, out);
    else
        sageSampleCore(fanouts_, graph, targets, rng, NoopVisitor{},
                       scratch, out);
}

Subgraph
SageSampler::sampleBaseline(const graph::CsrGraph &graph,
                            const std::vector<graph::LocalNodeId> &targets,
                            sim::Rng &rng, SampleVisitor *visitor) const
{
    SS_ASSERT(!targets.empty(), "empty target batch");
    NullVisitor null_visitor;
    if (!visitor)
        visitor = &null_visitor;

    visitor->onBatchStart(targets.size());

    Subgraph sg;
    sg.frontiers.push_back(targets);

    std::vector<std::uint64_t> picks;
    for (unsigned fanout : fanouts_) {
        const auto &frontier = sg.frontiers.back();
        FrontierBuilder next(frontier);
        SampledBlock block;
        block.offsets.reserve(frontier.size() + 1);
        block.offsets.push_back(0);

        for (graph::LocalNodeId u : frontier) {
            visitor->onOffsetRead(u);
            std::uint64_t degree = graph.degree(u);
            std::uint64_t base = graph.edgeOffset(u);
            auto nbrs = graph.neighbors(u);

            if (degree == 0) {
                block.offsets.push_back(
                    static_cast<std::uint32_t>(block.src_index.size()));
                continue;
            }

            if (degree <= fanout) {
                // Take the whole neighborhood.
                for (std::uint64_t j = 0; j < degree; ++j) {
                    visitor->onEdgeEntryRead(u, base + j);
                    graph::LocalNodeId v = nbrs[j];
                    visitor->onSampled(u, v);
                    block.src_index.push_back(next.indexOf(v));
                }
            } else {
                sampleDistinctBaseline(degree, fanout, rng, picks);
                for (std::uint64_t j : picks) {
                    visitor->onEdgeEntryRead(u, base + j);
                    graph::LocalNodeId v = nbrs[j];
                    visitor->onSampled(u, v);
                    block.src_index.push_back(next.indexOf(v));
                }
            }
            block.offsets.push_back(
                static_cast<std::uint32_t>(block.src_index.size()));
        }

        sg.blocks.push_back(std::move(block));
        sg.frontiers.push_back(next.take());
    }

    visitor->onBatchEnd();
    return sg;
}

std::uint64_t
SageSampler::expectedEdges(std::size_t batch_size) const
{
    std::uint64_t frontier = batch_size;
    std::uint64_t total = 0;
    for (unsigned f : fanouts_) {
        total += frontier * f;
        frontier += frontier * f;
    }
    return total;
}

SaintSampler::SaintSampler(unsigned walk_length)
    : walk_length_(walk_length)
{
    SS_ASSERT(walk_length_ > 0, "walk length must be positive");
}

void
SaintSampler::sampleInto(const graph::CsrGraph &graph,
                         const std::vector<graph::LocalNodeId> &roots,
                         sim::Rng &rng, SampleScratch &scratch,
                         Subgraph &out, SampleVisitor *visitor) const
{
    if (visitor)
        saintSampleCore(walk_length_, graph, roots, rng,
                        ForwardingVisitor{*visitor}, scratch, out);
    else
        saintSampleCore(walk_length_, graph, roots, rng, NoopVisitor{},
                        scratch, out);
}

Subgraph
SaintSampler::sampleBaseline(const graph::CsrGraph &graph,
                             const std::vector<graph::LocalNodeId> &roots,
                             sim::Rng &rng, SampleVisitor *visitor) const
{
    SS_ASSERT(!roots.empty(), "empty root batch");
    NullVisitor null_visitor;
    if (!visitor)
        visitor = &null_visitor;

    visitor->onBatchStart(roots.size());

    Subgraph sg;
    sg.frontiers.push_back(roots);

    for (unsigned step = 0; step < walk_length_; ++step) {
        const auto &frontier = sg.frontiers.back();
        FrontierBuilder next(frontier);
        SampledBlock block;
        block.offsets.reserve(frontier.size() + 1);
        block.offsets.push_back(0);

        for (graph::LocalNodeId u : frontier) {
            visitor->onOffsetRead(u);
            std::uint64_t degree = graph.degree(u);
            if (degree == 0) {
                block.offsets.push_back(
                    static_cast<std::uint32_t>(block.src_index.size()));
                continue;
            }
            std::uint64_t j = rng.nextBounded(degree);
            visitor->onEdgeEntryRead(u, graph.edgeOffset(u) + j);
            graph::LocalNodeId v = graph.neighbors(u)[j];
            visitor->onSampled(u, v);
            block.src_index.push_back(next.indexOf(v));
            block.offsets.push_back(
                static_cast<std::uint32_t>(block.src_index.size()));
        }

        sg.blocks.push_back(std::move(block));
        sg.frontiers.push_back(next.take());
    }

    visitor->onBatchEnd();
    return sg;
}

void
selectTargetsInto(const graph::CsrGraph &graph, std::size_t count,
                  sim::Rng &rng, SampleScratch &scratch,
                  std::vector<graph::LocalNodeId> &out)
{
    SS_ASSERT(count > 0, "batch size must be positive");
    SS_ASSERT(count <= graph.numNodes(), "batch larger than graph");
    const std::uint64_t n = graph.numNodes();
    out.clear();
    out.reserve(count);

    if (count * 4 < n) {
        // Sparse batch: rejection sampling, epoch-stamped dedup.
        auto &seen = scratch.frontier_index;
        seen.reserve(n);
        seen.clear();
        while (out.size() < count) {
            auto u = static_cast<graph::LocalNodeId>(rng.nextBounded(n));
            if (seen.tryEmplace(u, 0).second)
                out.push_back(u);
        }
        return;
    }

    // Dense batch: rejection degrades to coupon-collector waits, so run
    // a partial Fisher-Yates shuffle over the reusable index pool.
    auto &pool = scratch.fy_pool;
    pool.resize(n);
    std::iota(pool.begin(), pool.end(), graph::LocalNodeId{0});
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t j = i + rng.nextBounded(n - i);
        std::swap(pool[i], pool[j]);
        out.push_back(pool[i]);
    }
}

std::vector<graph::LocalNodeId>
selectTargets(const graph::CsrGraph &graph, std::size_t count,
              sim::Rng &rng)
{
    std::vector<graph::LocalNodeId> out;
    selectTargetsInto(graph, count, rng, threadSampleScratch(), out);
    return out;
}

} // namespace smartsage::gnn
