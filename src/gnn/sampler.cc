#include "sampler.hh"

#include <unordered_map>
#include <unordered_set>

#include "sim/logging.hh"

namespace smartsage::gnn
{

namespace
{

/**
 * Draw @p want distinct indices out of [0, degree) with Floyd's
 * algorithm (O(want) expected work regardless of degree).
 */
void
sampleDistinct(std::uint64_t degree, unsigned want, sim::Rng &rng,
               std::vector<std::uint64_t> &out)
{
    out.clear();
    std::unordered_set<std::uint64_t> chosen;
    for (std::uint64_t j = degree - want; j < degree; ++j) {
        std::uint64_t t = rng.nextBounded(j + 1);
        if (chosen.insert(t).second) {
            out.push_back(t);
        } else {
            chosen.insert(j);
            out.push_back(j);
        }
    }
}

/** Grow the next frontier, preserving the self-prefix property. */
class FrontierBuilder
{
  public:
    explicit FrontierBuilder(const std::vector<graph::LocalNodeId> &prev)
    {
        nodes_ = prev; // prefix copy: self embeddings
        for (std::size_t i = 0; i < prev.size(); ++i)
            index_[prev[i]] = static_cast<std::uint32_t>(i);
    }

    std::uint32_t
    indexOf(graph::LocalNodeId v)
    {
        auto [it, inserted] = index_.try_emplace(
            v, static_cast<std::uint32_t>(nodes_.size()));
        if (inserted)
            nodes_.push_back(v);
        return it->second;
    }

    std::vector<graph::LocalNodeId> take() { return std::move(nodes_); }

  private:
    std::vector<graph::LocalNodeId> nodes_;
    std::unordered_map<graph::LocalNodeId, std::uint32_t> index_;
};

} // namespace

SageSampler::SageSampler(std::vector<unsigned> fanouts)
    : fanouts_(std::move(fanouts))
{
    SS_ASSERT(!fanouts_.empty(), "need at least one hop fanout");
    for (unsigned f : fanouts_)
        SS_ASSERT(f > 0, "fanout must be positive");
}

Subgraph
SageSampler::sample(const graph::CsrGraph &graph,
                    const std::vector<graph::LocalNodeId> &targets,
                    sim::Rng &rng, SampleVisitor *visitor) const
{
    SS_ASSERT(!targets.empty(), "empty target batch");
    NullVisitor null_visitor;
    if (!visitor)
        visitor = &null_visitor;

    visitor->onBatchStart(targets.size());

    Subgraph sg;
    sg.frontiers.push_back(targets);

    std::vector<std::uint64_t> picks;
    for (unsigned fanout : fanouts_) {
        const auto &frontier = sg.frontiers.back();
        FrontierBuilder next(frontier);
        SampledBlock block;
        block.offsets.reserve(frontier.size() + 1);
        block.offsets.push_back(0);

        for (graph::LocalNodeId u : frontier) {
            visitor->onOffsetRead(u);
            std::uint64_t degree = graph.degree(u);
            std::uint64_t base = graph.edgeOffset(u);
            auto nbrs = graph.neighbors(u);

            if (degree == 0) {
                block.offsets.push_back(
                    static_cast<std::uint32_t>(block.src_index.size()));
                continue;
            }

            if (degree <= fanout) {
                // Take the whole neighborhood.
                for (std::uint64_t j = 0; j < degree; ++j) {
                    visitor->onEdgeEntryRead(u, base + j);
                    graph::LocalNodeId v = nbrs[j];
                    visitor->onSampled(u, v);
                    block.src_index.push_back(next.indexOf(v));
                }
            } else {
                sampleDistinct(degree, fanout, rng, picks);
                for (std::uint64_t j : picks) {
                    visitor->onEdgeEntryRead(u, base + j);
                    graph::LocalNodeId v = nbrs[j];
                    visitor->onSampled(u, v);
                    block.src_index.push_back(next.indexOf(v));
                }
            }
            block.offsets.push_back(
                static_cast<std::uint32_t>(block.src_index.size()));
        }

        sg.blocks.push_back(std::move(block));
        sg.frontiers.push_back(next.take());
    }

    visitor->onBatchEnd();
    return sg;
}

std::uint64_t
SageSampler::expectedEdges(std::size_t batch_size) const
{
    std::uint64_t frontier = batch_size;
    std::uint64_t total = 0;
    for (unsigned f : fanouts_) {
        total += frontier * f;
        frontier += frontier * f;
    }
    return total;
}

SaintSampler::SaintSampler(unsigned walk_length)
    : walk_length_(walk_length)
{
    SS_ASSERT(walk_length_ > 0, "walk length must be positive");
}

Subgraph
SaintSampler::sample(const graph::CsrGraph &graph,
                     const std::vector<graph::LocalNodeId> &roots,
                     sim::Rng &rng, SampleVisitor *visitor) const
{
    SS_ASSERT(!roots.empty(), "empty root batch");
    NullVisitor null_visitor;
    if (!visitor)
        visitor = &null_visitor;

    visitor->onBatchStart(roots.size());

    Subgraph sg;
    sg.frontiers.push_back(roots);

    // Each walk step is one block: every frontier node samples exactly
    // one neighbor (or stalls in place on a dead end).
    for (unsigned step = 0; step < walk_length_; ++step) {
        const auto &frontier = sg.frontiers.back();
        FrontierBuilder next(frontier);
        SampledBlock block;
        block.offsets.reserve(frontier.size() + 1);
        block.offsets.push_back(0);

        for (graph::LocalNodeId u : frontier) {
            visitor->onOffsetRead(u);
            std::uint64_t degree = graph.degree(u);
            if (degree == 0) {
                block.offsets.push_back(
                    static_cast<std::uint32_t>(block.src_index.size()));
                continue;
            }
            std::uint64_t j = rng.nextBounded(degree);
            visitor->onEdgeEntryRead(u, graph.edgeOffset(u) + j);
            graph::LocalNodeId v = graph.neighbors(u)[j];
            visitor->onSampled(u, v);
            block.src_index.push_back(next.indexOf(v));
            block.offsets.push_back(
                static_cast<std::uint32_t>(block.src_index.size()));
        }

        sg.blocks.push_back(std::move(block));
        sg.frontiers.push_back(next.take());
    }

    visitor->onBatchEnd();
    return sg;
}

std::vector<graph::LocalNodeId>
selectTargets(const graph::CsrGraph &graph, std::size_t count,
              sim::Rng &rng)
{
    SS_ASSERT(count > 0, "batch size must be positive");
    SS_ASSERT(count <= graph.numNodes(), "batch larger than graph");
    std::unordered_set<graph::LocalNodeId> seen;
    std::vector<graph::LocalNodeId> out;
    out.reserve(count);
    while (out.size() < count) {
        auto u = static_cast<graph::LocalNodeId>(
            rng.nextBounded(graph.numNodes()));
        if (seen.insert(u).second)
            out.push_back(u);
    }
    return out;
}

} // namespace smartsage::gnn
