/**
 * @file
 * The SSD-internal DRAM page buffer (Fig 8).
 *
 * A set-associative LRU cache of flash pages, indexed by logical page
 * number. Both the block-read path and the ISP sampling loop run
 * through it: the ISP engine samples *directly out of this buffer*,
 * which is the core of the paper's bandwidth-amplification argument.
 */

#ifndef SMARTSAGE_SSD_PAGE_BUFFER_HH
#define SMARTSAGE_SSD_PAGE_BUFFER_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"

namespace smartsage::ssd
{

/** Set-associative LRU cache keyed by logical page number. */
class PageBuffer
{
  public:
    /**
     * @param capacity_bytes total buffer capacity
     * @param page_bytes     flash page size (line size)
     * @param ways           associativity; capacity/page/ways sets rounded
     *                       down to a power of two
     */
    PageBuffer(std::uint64_t capacity_bytes, std::uint64_t page_bytes,
               unsigned ways);

    /**
     * Look up logical page @p lpn; updates recency.
     * @return true on hit
     */
    bool lookup(std::uint64_t lpn);

    /** Install @p lpn, evicting the set's LRU entry if needed. */
    void insert(std::uint64_t lpn);

    /** lookup() + insert-on-miss in one call. @return true on hit */
    bool access(std::uint64_t lpn);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    double hitRate() const;

    std::uint64_t numSets() const { return sets_; }
    unsigned ways() const { return ways_; }

    /** Drop contents and counters. */
    void reset();

  private:
    struct Way
    {
        std::uint64_t lpn = ~std::uint64_t(0);
        std::uint64_t lru = 0; //!< last-touch stamp
        bool valid = false;
    };

    std::uint64_t sets_;
    unsigned ways_;
    std::vector<Way> table_; //!< sets_ * ways_ entries
    std::uint64_t stamp_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;

    Way *setBase(std::uint64_t lpn);
};

} // namespace smartsage::ssd

#endif // SMARTSAGE_SSD_PAGE_BUFFER_HH
