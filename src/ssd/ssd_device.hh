/**
 * @file
 * Top-level simulated NVMe SSD (Fig 8).
 *
 * Composes the FTL, the DRAM page buffer, the embedded firmware cores,
 * the NAND array, and the PCIe front end. The host-side I/O paths
 * (src/host) call readBlocks(); the ISP engine (src/isp) reaches the
 * internal components directly — that asymmetry *is* the paper's
 * architecture.
 */

#ifndef SMARTSAGE_SSD_SSD_DEVICE_HH
#define SMARTSAGE_SSD_SSD_DEVICE_HH

#include <cstdint>

#include "embedded_cores.hh"
#include "flash/flash_array.hh"
#include "ftl.hh"
#include "page_buffer.hh"
#include "sim/io.hh"
#include "sim/resource.hh"

namespace smartsage::ssd
{

/** The simulated SSD device. */
class SsdDevice
{
  public:
    /**
     * @param config        device configuration
     * @param dedicated_isp model Newport-style dedicated ISP cores
     */
    explicit SsdDevice(const SsdConfig &config,
                       bool dedicated_isp = false);

    /**
     * Async host block read: submit a read of the byte range
     * [@p addr, @p addr+@p bytes) at eq.now(). The command takes an
     * NVMe submission-queue slot (bounded by SsdConfig::queue_depth;
     * excess commands wait at the front end), then proceeds through
     * staged events — firmware command handling, flash page fetches
     * overlapping across dies, PCIe DMA — and @p done fires at the
     * tick the last byte lands in host memory. The range is rounded
     * out to logical-block (4 KiB) granularity, as a real block device
     * must.
     */
    void submitRead(sim::EventQueue &eq, std::uint64_t addr,
                    std::uint64_t bytes, sim::IoCompletion done);

    /**
     * Host block read, blocking form: submit-and-drain over the async
     * port (bit-identical to the pre-async path).
     *
     * @param arrival tick the NVMe command reaches the device
     * @return tick the last byte lands in host memory
     */
    sim::Tick readBlocks(sim::Tick arrival, std::uint64_t addr,
                         std::uint64_t bytes);

    /**
     * Internal fetch of logical page @p lpn into the DRAM page buffer
     * (no PCIe crossing). Used by the ISP sampling loop.
     * @return tick the page is readable in the buffer
     */
    sim::Tick fetchPage(sim::Tick arrival, std::uint64_t lpn);

    /** DMA @p bytes from the device to host DRAM over PCIe. */
    sim::Tick dmaToHost(sim::Tick arrival, std::uint64_t bytes);

    /** DMA @p bytes from host DRAM into the device over PCIe. */
    sim::Tick dmaFromHost(sim::Tick arrival, std::uint64_t bytes);

    const SsdConfig &config() const { return config_; }
    const Ftl &ftl() const { return ftl_; }
    PageBuffer &pageBuffer() { return buffer_; }
    EmbeddedCores &cores() { return cores_; }
    flash::FlashArray &flashArray() { return flash_; }

    /** Host-visible block reads served. */
    std::uint64_t hostReads() const { return host_reads_; }
    /** Injected ECC re-reads in the flash array. */
    std::uint64_t eccRetries() const { return flash_.eccRetries(); }
    /** Bytes shipped to the host over PCIe. */
    std::uint64_t bytesToHost() const { return bytes_to_host_; }

    /** The NVMe submission queue (depth, occupancy, wait stats). */
    sim::StorageChannel &nvmeQueue() { return nvme_sq_; }
    const sim::StorageChannel &nvmeQueue() const { return nvme_sq_; }

    void reset();

  private:
    SsdConfig config_;
    Ftl ftl_;
    PageBuffer buffer_;
    EmbeddedCores cores_;
    flash::FlashArray flash_;
    sim::BandwidthLink pcie_;
    sim::StorageChannel nvme_sq_;
    sim::EventQueue drain_eq_; //!< blocking-adapter drain queue
    std::uint64_t host_reads_ = 0;
    std::uint64_t bytes_to_host_ = 0;
};

} // namespace smartsage::ssd

#endif // SMARTSAGE_SSD_SSD_DEVICE_HH
