/**
 * @file
 * Page-mapping flash translation layer.
 *
 * Maps logical byte addresses to physical flash pages. Pages are striped
 * channel-first so that sequential logical pages land on different
 * channels — the layout that gives the ISP engine its internal
 * parallelism. The mapping is deterministic (no GC churn is modeled:
 * the GNN workload is read-only after ingest, so steady-state maps are
 * stable).
 */

#ifndef SMARTSAGE_SSD_FTL_HH
#define SMARTSAGE_SSD_FTL_HH

#include <cstdint>
#include <vector>

#include "config.hh"
#include "flash/config.hh"

namespace smartsage::ssd
{

/** Logical-to-physical translation for the simulated SSD. */
class Ftl
{
  public:
    explicit Ftl(const SsdConfig &config);

    /** Logical page number containing logical byte address @p addr. */
    std::uint64_t
    pageOf(std::uint64_t addr) const
    {
        return addr / config_.flash.page_bytes;
    }

    /** Physical location of logical page @p lpn (channel-striped). */
    flash::PageAddress translate(std::uint64_t lpn) const;

    /**
     * All distinct logical pages overlapped by the byte range
     * [@p addr, @p addr + @p bytes).
     */
    std::vector<std::uint64_t> pagesSpanned(std::uint64_t addr,
                                            std::uint64_t bytes) const;

  private:
    SsdConfig config_;
};

} // namespace smartsage::ssd

#endif // SMARTSAGE_SSD_FTL_HH
