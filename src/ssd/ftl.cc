#include "ftl.hh"

#include "sim/logging.hh"

namespace smartsage::ssd
{

Ftl::Ftl(const SsdConfig &config) : config_(config)
{
    SS_ASSERT(config.flash.page_bytes > 0, "flash page size must be > 0");
}

flash::PageAddress
Ftl::translate(std::uint64_t lpn) const
{
    const auto &f = config_.flash;
    flash::PageAddress addr;
    addr.channel = static_cast<unsigned>(lpn % f.channels);
    std::uint64_t per_channel = lpn / f.channels;
    addr.die = static_cast<unsigned>(per_channel % f.dies_per_channel);
    addr.page = per_channel / f.dies_per_channel;
    return addr;
}

std::vector<std::uint64_t>
Ftl::pagesSpanned(std::uint64_t addr, std::uint64_t bytes) const
{
    std::vector<std::uint64_t> pages;
    if (bytes == 0)
        return pages;
    std::uint64_t first = pageOf(addr);
    std::uint64_t last = pageOf(addr + bytes - 1);
    pages.reserve(last - first + 1);
    for (std::uint64_t p = first; p <= last; ++p)
        pages.push_back(p);
    return pages;
}

} // namespace smartsage::ssd
