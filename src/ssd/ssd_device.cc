#include "ssd_device.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace smartsage::ssd
{

SsdDevice::SsdDevice(const SsdConfig &config, bool dedicated_isp)
    : config_(config), ftl_(config),
      buffer_(config.page_buffer_bytes, config.flash.page_bytes,
              config.page_buffer_ways),
      cores_(config, dedicated_isp), flash_(config.flash),
      pcie_("pcie", config.pcie_gbps, config.pcie_latency),
      nvme_sq_("nvme-sq", config.queue_depth)
{
}

sim::Tick
SsdDevice::fetchPage(sim::Tick arrival, std::uint64_t lpn)
{
    if (buffer_.access(lpn))
        return arrival + config_.page_buffer_hit;

    // Miss: firmware translates and issues the flash read, the page is
    // sensed + transferred, then lands in the page buffer.
    auto issue = cores_.execute(arrival, config_.ftl_translate);
    sim::Tick in_reg = flash_.readPage(ftl_.translate(lpn), issue.finish);
    return in_reg + config_.page_buffer_hit;
}

void
SsdDevice::submitRead(sim::EventQueue &eq, std::uint64_t addr,
                      std::uint64_t bytes, sim::IoCompletion done)
{
    SS_ASSERT(bytes > 0, "zero-length block read");

    // Round the range out to logical-block granularity: a block device
    // cannot transfer less than a block.
    std::uint64_t bs = config_.block_bytes;
    std::uint64_t lo = addr / bs * bs;
    std::uint64_t hi = (addr + bytes + bs - 1) / bs * bs;
    std::uint64_t xfer = hi - lo;

    nvme_sq_.submitStaged(
        eq,
        [this, lo, xfer](sim::EventQueue &q, sim::Tick start,
                         sim::IoCompletion complete) {
            // Stage 1: NVMe command handling on the firmware cores.
            auto cmd = cores_.execute(start, config_.nvme_command);
            q.schedule(cmd.finish, [this, &q, lo, xfer,
                                    issued = cmd.finish,
                                    complete =
                                        std::move(complete)]() mutable {
                // Stage 2: fetch every flash page the range spans;
                // they proceed in parallel across dies and the
                // transfer starts once all are buffered.
                sim::Tick ready = issued;
                for (std::uint64_t lpn : ftl_.pagesSpanned(lo, xfer))
                    ready = std::max(ready, fetchPage(issued, lpn));
                ++host_reads_;
                bytes_to_host_ += xfer;
                q.schedule(
                    ready, [this, &q, xfer, ready,
                            complete = std::move(complete)]() mutable {
                        // Stage 3: DMA the blocks over PCIe.
                        sim::Tick finish = dmaToHost(ready, xfer);
                        q.schedule(finish,
                                   [complete = std::move(complete),
                                    finish] {
                                       complete(finish,
                                                sim::IoStatus::Ok);
                                   });
                    });
            });
        },
        std::move(done));
}

sim::Tick
SsdDevice::readBlocks(sim::Tick arrival, std::uint64_t addr,
                      std::uint64_t bytes)
{
    return sim::drainOne(
        drain_eq_, arrival,
        [&](sim::EventQueue &eq, sim::IoCompletion done) {
            submitRead(eq, addr, bytes, std::move(done));
        },
        nvme_sq_.name(), nvme_sq_.submitted());
}

sim::Tick
SsdDevice::dmaToHost(sim::Tick arrival, std::uint64_t bytes)
{
    return pcie_.transfer(arrival, bytes).finish;
}

sim::Tick
SsdDevice::dmaFromHost(sim::Tick arrival, std::uint64_t bytes)
{
    return pcie_.transfer(arrival, bytes).finish;
}

void
SsdDevice::reset()
{
    buffer_.reset();
    cores_.reset();
    flash_.reset();
    pcie_.reset();
    nvme_sq_.reset();
    drain_eq_.reset();
    host_reads_ = 0;
    bytes_to_host_ = 0;
}

} // namespace smartsage::ssd
