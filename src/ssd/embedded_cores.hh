/**
 * @file
 * The SSD's embedded firmware cores.
 *
 * A pool of wimpy cores that runs routine flash-management firmware and
 * — for SmartSAGE(HW/SW) — the in-storage sampling loop. The baseline
 * firmware reserves a duty-cycle share of every core, so ISP work is
 * served at an inflated effective cost. Under multi-worker load the
 * pool saturates, which is exactly the contention effect behind
 * Fig 17's declining speedup.
 */

#ifndef SMARTSAGE_SSD_EMBEDDED_CORES_HH
#define SMARTSAGE_SSD_EMBEDDED_CORES_HH

#include <cstdint>

#include "config.hh"
#include "sim/resource.hh"

namespace smartsage::ssd
{

/** Firmware compute complex with an FTL duty-cycle reservation. */
class EmbeddedCores
{
  public:
    /**
     * @param config        SSD configuration (core count + duty cycle)
     * @param dedicated_isp when true, model a Newport-style CSD whose
     *                      ISP cores do not share with the FTL
     *                      (SmartSAGE(oracle), Section VI-C)
     */
    EmbeddedCores(const SsdConfig &config, bool dedicated_isp = false);

    /**
     * Execute @p work of firmware compute arriving at @p arrival.
     * @return completion interval after queueing and duty-cycle
     *         inflation.
     */
    sim::ServiceInterval execute(sim::Tick arrival, sim::Tick work);

    /** Effective inflation factor applied to ISP work. */
    double inflation() const { return inflation_; }

    unsigned coreCount() const { return pool_.size(); }
    sim::Tick busyTime() const { return pool_.totalBusyTime(); }
    double utilization(sim::Tick horizon) const;

    void reset() { pool_.reset(); }

  private:
    sim::ServerPool pool_;
    double inflation_;
};

} // namespace smartsage::ssd

#endif // SMARTSAGE_SSD_EMBEDDED_CORES_HH
