#include "page_buffer.hh"

#include "sim/logging.hh"

namespace smartsage::ssd
{

namespace
{

std::uint64_t
floorPow2(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p * 2 <= v)
        p *= 2;
    return p;
}

// Fibonacci hashing spreads striped LPNs across sets.
std::uint64_t
mixHash(std::uint64_t x)
{
    return (x * 0x9e3779b97f4a7c15ULL) >> 17;
}

} // namespace

PageBuffer::PageBuffer(std::uint64_t capacity_bytes,
                       std::uint64_t page_bytes, unsigned ways)
    : ways_(ways)
{
    SS_ASSERT(page_bytes > 0 && ways > 0, "bad page buffer shape");
    std::uint64_t lines = capacity_bytes / page_bytes;
    SS_ASSERT(lines >= ways, "page buffer smaller than one set");
    sets_ = floorPow2(lines / ways);
    table_.assign(sets_ * ways_, Way{});
}

PageBuffer::Way *
PageBuffer::setBase(std::uint64_t lpn)
{
    std::uint64_t set = mixHash(lpn) & (sets_ - 1);
    return table_.data() + set * ways_;
}

bool
PageBuffer::lookup(std::uint64_t lpn)
{
    Way *base = setBase(lpn);
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].lpn == lpn) {
            base[w].lru = ++stamp_;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

void
PageBuffer::insert(std::uint64_t lpn)
{
    Way *base = setBase(lpn);
    Way *victim = base;
    for (unsigned w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    victim->valid = true;
    victim->lpn = lpn;
    victim->lru = ++stamp_;
}

bool
PageBuffer::access(std::uint64_t lpn)
{
    if (lookup(lpn))
        return true;
    insert(lpn);
    return false;
}

double
PageBuffer::hitRate() const
{
    std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / total : 0.0;
}

void
PageBuffer::reset()
{
    table_.assign(sets_ * ways_, Way{});
    stamp_ = 0;
    hits_ = 0;
    misses_ = 0;
}

} // namespace smartsage::ssd
