/**
 * @file
 * SSD-level configuration: flash geometry plus controller-side
 * resources (DRAM page buffer, embedded firmware cores, NVMe front end,
 * PCIe link to the host).
 */

#ifndef SMARTSAGE_SSD_CONFIG_HH
#define SMARTSAGE_SSD_CONFIG_HH

#include <cstdint>
#include <string_view>

#include "flash/config.hh"
#include "sim/types.hh"

namespace smartsage::ssd
{

/** Static configuration of the simulated NVMe SSD. */
struct SsdConfig
{
    flash::FlashConfig flash;

    /** SSD-internal DRAM page buffer (Fig 8 "DRAM (Page buffer)"). */
    std::uint64_t page_buffer_bytes = sim::MiB(256);
    unsigned page_buffer_ways = 16;      //!< set associativity
    sim::Tick page_buffer_hit = sim::us(2); //!< controller DRAM access

    /**
     * Embedded firmware cores (OpenSSD: dual Cortex-A9). These run the
     * FTL and, for SmartSAGE(HW/SW), the ISP sampling loop.
     */
    unsigned embedded_cores = 2;
    /** Fraction of core time reserved by baseline FTL/flash management. */
    double firmware_duty = 0.30;
    /** Firmware cost to translate + issue one flash page request. */
    sim::Tick ftl_translate = sim::ns(400);
    /** Firmware cost to gather one sampled edge out of the page buffer. */
    sim::Tick isp_per_edge = sim::ns(150);
    /** Firmware cost to parse one target entry of an NSconfig. */
    sim::Tick isp_per_target = sim::ns(250);

    /** NVMe command handling (submission + completion doorbells). */
    sim::Tick nvme_command = sim::us(5);

    /**
     * NVMe submission-queue depth: block-read commands in service at
     * once on the device's async port (submitRead); excess commands
     * queue at the front end. One-at-a-time blocking callers never
     * exceed depth 1, and the edge-store service paths are blocking by
     * design — so this is a programmatic parameter of the async port,
     * deliberately *not* an applyKnob key until a workload drives the
     * device port concurrently (a knob that sweeps flat would read as
     * a misleading sensitivity result).
     */
    unsigned queue_depth = 32;

    /** PCIe link to host (OpenSSD: gen2 x8 ~ 3.2 GB/s effective). */
    double pcie_gbps = 3.2;
    sim::Tick pcie_latency = sim::ns(900);

    /** Logical block size exposed to the host. */
    std::uint64_t block_bytes = sim::KiB(4);
};

/**
 * Set the named SSD knob (scenario override support). Keys prefixed
 * "flash." delegate to flash::applyKnob. The page-buffer *capacity*
 * is deliberately not a knob here: GnnSystem scales it from the
 * system-level "ssd_buffer_fraction" to preserve the paper's
 * buffer-to-dataset ratio. @return false for an unknown key
 */
inline bool
applyKnob(SsdConfig &config, std::string_view key, double value)
{
    constexpr std::string_view flash_prefix = "flash.";
    if (key.substr(0, flash_prefix.size()) == flash_prefix)
        return flash::applyKnob(config.flash,
                                key.substr(flash_prefix.size()), value);
    if (key == "page_buffer_ways")
        config.page_buffer_ways = static_cast<unsigned>(value);
    else if (key == "embedded_cores")
        config.embedded_cores = static_cast<unsigned>(value);
    else if (key == "firmware_duty")
        config.firmware_duty = value;
    else if (key == "isp_per_edge_ns")
        config.isp_per_edge = sim::ns(value);
    else if (key == "nvme_command_us")
        config.nvme_command = sim::us(value);
    else if (key == "pcie_gbps")
        config.pcie_gbps = value;
    else
        return false;
    return true;
}

} // namespace smartsage::ssd

#endif // SMARTSAGE_SSD_CONFIG_HH
