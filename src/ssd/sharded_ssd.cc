#include "sharded_ssd.hh"

#include <algorithm>
#include <utility>

#include "core/backend.hh"
#include "core/report.hh"
#include "host/feature_cache.hh"
#include "sim/logging.hh"

namespace smartsage::ssd
{

namespace
{

/** Per-shard device config: the page-buffer budget splits evenly. */
SsdConfig
shardConfig(const SsdConfig &base, unsigned shards)
{
    SsdConfig cfg = base;
    std::uint64_t floor_bytes =
        cfg.flash.page_bytes * cfg.page_buffer_ways * 8;
    cfg.page_buffer_bytes =
        std::max(cfg.page_buffer_bytes / shards, floor_bytes);
    return cfg;
}

} // namespace

ShardedEdgeStore::ShardedEdgeStore(const host::HostConfig &config,
                                   const SsdConfig &ssd_config,
                                   const ShardedSsdParams &params)
    : host::EdgeStore(config.io_queue_depth, config.fault, config.retry),
      config_(config), params_(params),
      stripe_blocks_(params.stripe_bytes / config.os_page_bytes),
      cache_(config.scratchpad_bytes, config.os_page_bytes,
             config.scratchpad_ways)
{
    SS_ASSERT(params_.shards >= 1, "sharded store needs >= 1 shard");
    SS_ASSERT(stripe_blocks_ >= 1,
              "stripe must cover at least one scratchpad block");
    SsdConfig per_shard = shardConfig(ssd_config, params_.shards);
    shards_.reserve(params_.shards);
    for (unsigned i = 0; i < params_.shards; ++i)
        shards_.push_back(std::make_unique<SsdDevice>(per_shard));
    if (config.fault.injectsOutages())
        outage_ = std::make_unique<sim::OutageSchedule>(config.fault,
                                                        params_.shards);
}

unsigned
ShardedEdgeStore::shardOf(std::uint64_t block) const
{
    return static_cast<unsigned>((block / stripe_blocks_) %
                                 shards_.size());
}

std::uint64_t
ShardedEdgeStore::localBlockOf(std::uint64_t block) const
{
    // Stripes land round-robin; a shard sees its stripes densely
    // packed, preserving sequential locality inside the device.
    std::uint64_t stripe = block / stripe_blocks_;
    std::uint64_t local_stripe = stripe / shards_.size();
    return local_stripe * stripe_blocks_ + block % stripe_blocks_;
}

sim::Tick
ShardedEdgeStore::issueMissing(sim::Tick submitted)
{
    // Contiguous *shard-local* runs become one command each; shards
    // service their runs on independent timelines. Order by
    // (shard, local block) — global block order would break a shard's
    // locally contiguous run whenever other shards' blocks interleave.
    std::sort(missing_.begin(), missing_.end());
    missing_.erase(std::unique(missing_.begin(), missing_.end()),
                   missing_.end());
    std::sort(missing_.begin(), missing_.end(),
              [this](std::uint64_t a, std::uint64_t b) {
                  return std::make_pair(shardOf(a), localBlockOf(a)) <
                         std::make_pair(shardOf(b), localBlockOf(b));
              });

    std::uint64_t bs = config_.os_page_bytes;
    sim::Tick done = submitted;
    std::size_t i = 0;
    while (i < missing_.size()) {
        unsigned shard = shardOf(missing_[i]);
        std::uint64_t local = localBlockOf(missing_[i]);
        std::size_t j = i + 1;
        while (j < missing_.size() && shardOf(missing_[j]) == shard &&
               localBlockOf(missing_[j]) ==
                   local + (j - i)) {
            ++j;
        }
        // Degraded mode: a run aimed at a shard inside an outage
        // window reroutes to the next healthy shard (reconstruction
        // from redundancy) at a latency penalty, instead of failing
        // the gather. With every shard down there is nothing to
        // reconstruct from; the run services normally rather than
        // deadlocking.
        unsigned serve = shard;
        bool degraded = false;
        if (outage_ && outage_->down(shard, submitted)) {
            for (unsigned k = 1; k < shards_.size(); ++k) {
                unsigned cand = static_cast<unsigned>(
                    (shard + k) % shards_.size());
                if (!outage_->down(cand, submitted)) {
                    serve = cand;
                    degraded = true;
                    break;
                }
            }
        }
        sim::Tick landed = shards_[serve]->readBlocks(
            submitted, local * bs, (j - i) * bs);
        if (degraded) {
            ++degraded_reads_;
            landed = submitted +
                     static_cast<sim::Tick>(
                         static_cast<double>(landed - submitted) *
                         config_.fault.degraded_penalty);
        }
        done = std::max(done, landed);
        i = j;
    }
    return done;
}

sim::Tick
ShardedEdgeStore::serviceRead(sim::Tick start, std::uint64_t addr,
                              std::uint64_t bytes)
{
    SS_ASSERT(bytes > 0, "zero-length sharded read");
    std::uint64_t first = cache_.lineOf(addr);
    std::uint64_t last = cache_.lineOf(addr + bytes - 1);
    bool any_hit = false;
    missing_.clear();
    for (std::uint64_t block = first; block <= last; ++block) {
        if (cache_.access(block))
            any_hit = true;
        else
            missing_.push_back(block);
    }
    sim::Tick done = start;
    if (any_hit)
        done = std::max(done, start + config_.scratchpad_hit);
    if (!missing_.empty()) {
        ++submits_;
        done = std::max(done,
                        issueMissing(start + config_.direct_io_submit));
    }
    return done;
}

sim::Tick
ShardedEdgeStore::serviceGather(sim::Tick start,
                                const std::vector<std::uint64_t> &addrs,
                                unsigned entry_bytes)
{
    if (addrs.empty())
        return start;

    // Classify the touched blocks through the scratchpad, exactly like
    // the single-device direct-I/O store.
    missing_.clear();
    bool any_hit = false;
    for (std::uint64_t a : addrs) {
        std::uint64_t first = cache_.lineOf(a);
        std::uint64_t last = cache_.lineOf(a + entry_bytes - 1);
        for (std::uint64_t b = first; b <= last; ++b) {
            if (cache_.access(b))
                any_hit = true;
            else
                missing_.push_back(b);
        }
    }

    sim::Tick done = start;
    if (any_hit)
        done = std::max(done, start + config_.scratchpad_hit);
    if (!missing_.empty()) {
        // One submission covers the whole gather; the runs fan out
        // across the stripe set and complete in parallel.
        ++submits_;
        done = std::max(done,
                        issueMissing(start + config_.direct_io_submit));
    }
    return done;
}

void
ShardedEdgeStore::resetStore()
{
    cache_.reset();
    submits_ = 0;
    degraded_reads_ = 0;
    for (auto &shard : shards_)
        shard->reset();
}

double
ShardedEdgeStore::bufferHitRate() const
{
    std::uint64_t hits = 0, total = 0;
    for (const auto &shard : shards_) {
        const auto &buffer = shard->pageBuffer();
        hits += buffer.hits();
        total += buffer.hits() + buffer.misses();
    }
    return total ? static_cast<double>(hits) /
                       static_cast<double>(total)
                 : 0.0;
}

std::uint64_t
ShardedEdgeStore::flashPagesRead() const
{
    std::uint64_t pages = 0;
    for (const auto &shard : shards_)
        pages += shard->flashArray().pagesRead();
    return pages;
}

std::uint64_t
ShardedEdgeStore::hostReads() const
{
    std::uint64_t reads = 0;
    for (const auto &shard : shards_)
        reads += shard->hostReads();
    return reads;
}

std::uint64_t
ShardedEdgeStore::bytesToHost() const
{
    std::uint64_t bytes = 0;
    for (const auto &shard : shards_)
        bytes += shard->bytesToHost();
    return bytes;
}

std::uint64_t
ShardedEdgeStore::eccRetries() const
{
    std::uint64_t retries = 0;
    for (const auto &shard : shards_)
        retries += shard->eccRetries();
    return retries;
}

// ------------------------------------------------ backend registration

namespace
{

ShardedSsdParams
paramsFrom(const core::SystemConfig &config)
{
    core::validateBackendKnobs(
        config, "multi-ssd.",
        {"multi-ssd.shards", "multi-ssd.stripe_kib"});

    ShardedSsdParams params;
    double shards = config.knobOr("multi-ssd.shards", 4);
    if (!(shards >= 1 && shards <= 64))
        SS_FATAL("multi-ssd.shards must be within [1, 64], got ",
                 shards);
    double stripe_kib = config.knobOr("multi-ssd.stripe_kib", 64);
    std::uint64_t stripe_bytes = sim::KiB(
        core::requireIntegerKnob("multi-ssd.stripe_kib", stripe_kib));
    if (stripe_bytes < config.host.os_page_bytes ||
        stripe_bytes % config.host.os_page_bytes != 0)
        SS_FATAL("multi-ssd.stripe_kib must be a multiple of the ",
                 config.host.os_page_bytes / 1024,
                 " KiB block size, got ", stripe_kib);
    params.shards = static_cast<unsigned>(
        core::requireIntegerKnob("multi-ssd.shards", shards));
    params.stripe_bytes = stripe_bytes;
    return params;
}

/** Host-CPU sampling over the striped array. */
class MultiSsdInstance : public core::BackendInstance
{
  public:
    explicit MultiSsdInstance(const core::BackendBuildContext &ctx)
        : MultiSsdInstance(ctx,
                           std::make_unique<ShardedEdgeStore>(
                               ctx.config.host, ctx.config.ssd,
                               paramsFrom(ctx.config)))
    {
    }

    pipeline::SubgraphProducer &producer() override { return producer_; }
    host::EdgeStore *edgeStore() override { return wrapped_.get(); }

    void
    addMetrics(const core::MetricSink &add) const override
    {
        add("ssd_buffer_hit_frac", sharded_->bufferHitRate());
        add("flash_pages_read",
            static_cast<double>(sharded_->flashPagesRead()));
    }

    std::string
    notes() const override
    {
        return "shards " + std::to_string(sharded_->numShards()) +
               ", scratchpad " +
               core::fmtPct(sharded_->scratchpadHitRate()) + ", submits " +
               std::to_string(sharded_->submits());
    }

    void
    addStats(const core::StatSink &add) const override
    {
        add("ssd.shards", static_cast<double>(sharded_->numShards()),
            "devices in the striped array");
        add("ssd.host_reads", static_cast<double>(sharded_->hostReads()),
            "block read commands served, all shards");
        add("ssd.bytes_to_host",
            static_cast<double>(sharded_->bytesToHost()),
            "bytes shipped over all PCIe links");
        add("ssd.page_buffer.hit_rate", sharded_->bufferHitRate(),
            "controller DRAM buffer hit rate, all shards");
        add("ssd.flash.pages_read",
            static_cast<double>(sharded_->flashPagesRead()),
            "NAND pages sensed, all shards");
        add("host.scratchpad.hit_rate", sharded_->scratchpadHitRate(),
            "user scratchpad hit rate");
        add("host.direct_io.submits",
            static_cast<double>(sharded_->submits()),
            "O_DIRECT submissions");
        // Fault-model rows appear only when the matching fault source
        // is configured, keeping default stat reports identical.
        if (sharded_->outagesEnabled()) {
            add("ssd.degraded_reads",
                static_cast<double>(sharded_->degradedReads()),
                "runs rerouted around a down shard");
        }
        if (sharded_->shard(0).config().flash.fault.injectsEcc()) {
            add("ssd.flash.ecc_retries",
                static_cast<double>(sharded_->eccRetries()),
                "injected ECC re-reads, all shards");
        }
    }

  private:
    MultiSsdInstance(const core::BackendBuildContext &ctx,
                     std::unique_ptr<ShardedEdgeStore> store)
        : sharded_(store.get()),
          wrapped_(host::wrapWithFeatureCache(std::move(store), ctx)),
          producer_(ctx.workload.graph, ctx.sampler, *wrapped_,
                    ctx.config.host, ctx.config.layout)
    {
    }

    ShardedEdgeStore *sharded_; //!< undecorated store (typed counters)
    std::unique_ptr<host::EdgeStore> wrapped_;
    pipeline::CpuProducer producer_;
};

std::unique_ptr<core::BackendInstance>
buildMultiSsd(const core::BackendBuildContext &ctx)
{
    return std::make_unique<MultiSsdInstance>(ctx);
}

const core::BackendRegistrar reg_multi_ssd{
    std::make_unique<core::SimpleBackend>(
        "multi-ssd", "Multi-SSD",
        "RAID-0 page striping across N independent SSD timelines, "
        "direct-I/O host path",
        core::BackendCaps{
            true, false, core::EdgeStoreKind::Sharded,
            {"host.", "ssd.", "multi-ssd.", "cache."}},
        buildMultiSsd)};

} // namespace

} // namespace smartsage::ssd
