#include "embedded_cores.hh"

#include "sim/logging.hh"

namespace smartsage::ssd
{

EmbeddedCores::EmbeddedCores(const SsdConfig &config, bool dedicated_isp)
    : pool_("embedded_cores", config.embedded_cores),
      inflation_(dedicated_isp ? 1.0 : 1.0 / (1.0 - config.firmware_duty))
{
    SS_ASSERT(config.firmware_duty >= 0.0 && config.firmware_duty < 1.0,
              "firmware duty cycle must be in [0, 1)");
}

sim::ServiceInterval
EmbeddedCores::execute(sim::Tick arrival, sim::Tick work)
{
    auto inflated =
        static_cast<sim::Tick>(static_cast<double>(work) * inflation_);
    return pool_.request(arrival, inflated);
}

double
EmbeddedCores::utilization(sim::Tick horizon) const
{
    return pool_.utilization(horizon);
}

} // namespace smartsage::ssd
