/**
 * @file
 * RAID-0-style sharded SSD edge store: page striping across N
 * independent SsdDevice timelines.
 *
 * The host path is the direct-I/O runtime (user scratchpad, coalesced
 * O_DIRECT gathers), but missing blocks fan out across the stripe set:
 * block b belongs to stripe b/stripe_blocks, stripes are assigned
 * round-robin to shards, and each shard is a complete SsdDevice with
 * its own firmware cores, page buffer, flash channels, and PCIe link —
 * so per-channel (per-device) contention and the striping speedup both
 * emerge from the independent busy-until timelines.
 *
 * This file also registers the "multi-ssd" storage backend
 * (core::BackendRegistry) — the whole design point lives here, with
 * zero edits to src/core.
 */

#ifndef SMARTSAGE_SSD_SHARDED_SSD_HH
#define SMARTSAGE_SSD_SHARDED_SSD_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "host/config.hh"
#include "host/io_path.hh"
#include "sim/fault.hh"
#include "sim/set_assoc.hh"
#include "ssd/ssd_device.hh"

namespace smartsage::ssd
{

/** Stripe geometry of the sharded array. */
struct ShardedSsdParams
{
    unsigned shards = 4;                       //!< devices in the array
    std::uint64_t stripe_bytes = sim::KiB(64); //!< RAID-0 chunk size
};

/** Direct-I/O edge store striped over N independent SSDs. */
class ShardedEdgeStore : public host::EdgeStore
{
  public:
    /**
     * @param config     host-side parameters (scratchpad sizing)
     * @param ssd_config per-device template; the controller page
     *                   buffer budget is split evenly across shards
     * @param params     stripe geometry
     */
    ShardedEdgeStore(const host::HostConfig &config,
                     const SsdConfig &ssd_config,
                     const ShardedSsdParams &params);

    const std::string &name() const override { return name_; }

    unsigned numShards() const
    {
        return static_cast<unsigned>(shards_.size());
    }
    SsdDevice &shard(unsigned i) { return *shards_[i]; }
    const SsdDevice &shard(unsigned i) const { return *shards_[i]; }

    double scratchpadHitRate() const { return cache_.hitRate(); }
    std::uint64_t submits() const { return submits_; }

    /** Page-buffer hit rate aggregated over every shard. */
    double bufferHitRate() const;
    /** NAND pages sensed, summed over every shard. */
    std::uint64_t flashPagesRead() const;
    /** Host block reads served, summed over every shard. */
    std::uint64_t hostReads() const;
    /** Bytes shipped over all PCIe links. */
    std::uint64_t bytesToHost() const;
    /** Injected ECC re-reads, summed over every shard. */
    std::uint64_t eccRetries() const;

    /** Shard outage windows active in this configuration. */
    bool outagesEnabled() const { return outage_ != nullptr; }
    /** Runs rerouted around a down shard (degraded-mode reads). */
    std::uint64_t degradedReads() const { return degraded_reads_; }

  protected:
    sim::Tick serviceRead(sim::Tick start, std::uint64_t addr,
                          std::uint64_t bytes) override;

    /** One coalesced submission; missing runs fan out per shard. */
    sim::Tick serviceGather(sim::Tick start,
                            const std::vector<std::uint64_t> &addrs,
                            unsigned entry_bytes) override;

    void resetStore() override;

  private:
    std::string name_ = "Multi-SSD";
    host::HostConfig config_;
    ShardedSsdParams params_;
    std::uint64_t stripe_blocks_; //!< scratchpad blocks per stripe
    std::vector<std::unique_ptr<SsdDevice>> shards_;
    sim::SetAssocLru cache_; //!< user scratchpad, block-granular
    std::uint64_t submits_ = 0;
    std::vector<std::uint64_t> missing_; //!< gather scratch
    std::unique_ptr<sim::OutageSchedule> outage_; //!< null when inert
    std::uint64_t degraded_reads_ = 0;

    /** Shard owning global block @p block. */
    unsigned shardOf(std::uint64_t block) const;
    /** Shard-local block index of global block @p block. */
    std::uint64_t localBlockOf(std::uint64_t block) const;

    /** Issue the sorted, deduped missing-block list at @p submitted. */
    sim::Tick issueMissing(sim::Tick submitted);
};

} // namespace smartsage::ssd

#endif // SMARTSAGE_SSD_SHARDED_SSD_HH
