/**
 * @file
 * Edge-list accumulator that finalizes into a CsrGraph.
 */

#ifndef SMARTSAGE_GRAPH_BUILDER_HH
#define SMARTSAGE_GRAPH_BUILDER_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "csr.hh"

namespace smartsage::graph
{

/**
 * Collects directed edges and produces a CSR graph. Optionally
 * symmetrizes (adds the reverse of every edge) and deduplicates.
 */
class GraphBuilder
{
  public:
    explicit GraphBuilder(std::uint64_t num_nodes);

    /** Add directed edge u -> v. @pre both ids < numNodes */
    void addEdge(LocalNodeId u, LocalNodeId v);

    /** Add u -> v and v -> u. */
    void addUndirectedEdge(LocalNodeId u, LocalNodeId v);

    std::uint64_t numNodes() const { return num_nodes_; }
    std::uint64_t numEdges() const { return edges_.size(); }

    /**
     * Build the CSR graph. Neighbor lists come out sorted.
     * @param dedup drop duplicate (u, v) pairs when true
     */
    CsrGraph build(bool dedup = false) &&;

  private:
    std::uint64_t num_nodes_;
    std::vector<std::pair<LocalNodeId, LocalNodeId>> edges_;
};

} // namespace smartsage::graph

#endif // SMARTSAGE_GRAPH_BUILDER_HH
