#include "csr.hh"

#include "sim/logging.hh"

namespace smartsage::graph
{

CsrGraph::CsrGraph(std::vector<EdgeIndex> offsets,
                   std::vector<LocalNodeId> neighbors)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors))
{
    checkInvariants();
}

double
CsrGraph::avgDegree() const
{
    if (numNodes() == 0)
        return 0.0;
    return static_cast<double>(numEdges()) /
           static_cast<double>(numNodes());
}

std::uint64_t
CsrGraph::maxDegree() const
{
    std::uint64_t best = 0;
    for (std::uint64_t u = 0; u + 1 < offsets_.size(); ++u) {
        std::uint64_t d = offsets_[u + 1] - offsets_[u];
        if (d > best)
            best = d;
    }
    return best;
}

void
CsrGraph::checkInvariants() const
{
    SS_ASSERT(!offsets_.empty(), "CSR offsets array may not be empty");
    SS_ASSERT(offsets_.front() == 0, "CSR offsets must start at 0");
    SS_ASSERT(offsets_.back() == neighbors_.size(),
              "CSR offsets end (", offsets_.back(),
              ") must equal neighbor count (", neighbors_.size(), ")");
    for (std::size_t i = 1; i < offsets_.size(); ++i) {
        SS_ASSERT(offsets_[i] >= offsets_[i - 1],
                  "CSR offsets must be nondecreasing at ", i);
    }
    std::uint64_t n = numNodes();
    for (LocalNodeId v : neighbors_) {
        SS_ASSERT(v < n, "neighbor id ", v, " out of range ", n);
    }
}

} // namespace smartsage::graph
