/**
 * @file
 * R-MAT recursive-matrix graph generator (Chakrabarti et al.), used for
 * power-law base graphs that Kronecker expansion scales up.
 */

#ifndef SMARTSAGE_GRAPH_RMAT_HH
#define SMARTSAGE_GRAPH_RMAT_HH

#include <cstdint>

#include "csr.hh"
#include "sim/random.hh"

namespace smartsage::graph
{

/** Parameters for the R-MAT generator. */
struct RmatParams
{
    unsigned scale = 14;       //!< num nodes = 2^scale
    double edge_factor = 16.0; //!< edges per node
    double a = 0.57;           //!< quadrant probabilities (Graph500-ish)
    double b = 0.19;
    double c = 0.19;
    // d = 1 - a - b - c
    bool undirected = false;   //!< mirror every edge
    std::uint64_t seed = 1;
};

/**
 * Generate an R-MAT graph. Self loops are dropped; duplicate edges are
 * kept (real web graphs have multi-edges and the samplers tolerate
 * them).
 */
CsrGraph generateRmat(const RmatParams &params);

} // namespace smartsage::graph

#endif // SMARTSAGE_GRAPH_RMAT_HH
