/**
 * @file
 * Degree-distribution analysis used by Fig 13 and by the dataset sanity
 * tests (power-law shape must survive Kronecker expansion).
 */

#ifndef SMARTSAGE_GRAPH_DEGREE_HH
#define SMARTSAGE_GRAPH_DEGREE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "csr.hh"

namespace smartsage::graph
{

/** One log-spaced histogram bucket of the degree distribution. */
struct DegreeBucket
{
    std::uint64_t lo;    //!< inclusive lower degree bound
    std::uint64_t hi;    //!< exclusive upper degree bound
    std::uint64_t count; //!< number of nodes whose degree falls in range
};

/** Degree-distribution summary of a graph. */
class DegreeDistribution
{
  public:
    explicit DegreeDistribution(const CsrGraph &graph);

    /** Exact degree -> node-count map. */
    const std::map<std::uint64_t, std::uint64_t> &counts() const { return counts_; }

    /** Power-of-two log-binned histogram (Fig 13 style). */
    std::vector<DegreeBucket> logBuckets() const;

    /**
     * Least-squares slope of log(count) vs log(degree) over nonzero
     * degrees — approximately -alpha for a power-law graph.
     */
    double powerLawSlope() const;

    double avgDegree() const { return avg_; }
    std::uint64_t maxDegree() const { return max_; }
    std::uint64_t numNodes() const { return nodes_; }

  private:
    std::map<std::uint64_t, std::uint64_t> counts_;
    double avg_ = 0.0;
    std::uint64_t max_ = 0;
    std::uint64_t nodes_ = 0;
};

} // namespace smartsage::graph

#endif // SMARTSAGE_GRAPH_DEGREE_HH
