/**
 * @file
 * Configuration-model power-law graph generator.
 *
 * Unlike R-MAT, this generator gives direct control over the average
 * degree, which the dataset configs (Table I) need: the paper's graphs
 * range from avg degree ~28 (OGBN) to ~2600 (Movielens), and the number
 * of flash pages a node's edge list spans is a first-order term in the
 * SSD timing model.
 */

#ifndef SMARTSAGE_GRAPH_POWERLAW_HH
#define SMARTSAGE_GRAPH_POWERLAW_HH

#include <cstdint>

#include "csr.hh"

namespace smartsage::graph
{

/** Parameters for the power-law generator. */
struct PowerLawParams
{
    std::uint64_t num_nodes = 1 << 14;
    double avg_degree = 32.0;  //!< target mean out-degree
    double alpha = 2.1;        //!< power-law exponent (P(d) ~ d^-alpha)
    std::uint64_t max_degree = 0; //!< 0 = num_nodes / 2 cap
    std::uint64_t seed = 7;
};

/**
 * Draw a degree sequence from a discrete bounded Pareto with exponent
 * alpha, rescale it to hit the requested average degree, then connect
 * each out-slot to a uniformly random endpoint (self loops excluded,
 * duplicates retained).
 */
CsrGraph generatePowerLaw(const PowerLawParams &params);

} // namespace smartsage::graph

#endif // SMARTSAGE_GRAPH_POWERLAW_HH
