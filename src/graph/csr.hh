/**
 * @file
 * Compressed sparse row (CSR) graph, the on-device data layout.
 *
 * This is exactly the "neighbor edge list array" of the paper (Fig 10):
 * `offsets[u]..offsets[u+1]` delimits node u's neighbor ID list, stored
 * contiguously. The same byte layout is what the simulated SSD stores,
 * so logical block addresses for a node's edge list fall out of the
 * offsets directly.
 */

#ifndef SMARTSAGE_GRAPH_CSR_HH
#define SMARTSAGE_GRAPH_CSR_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace smartsage::graph
{

/** Node id within a materialized graph (4 B on device, as in CSR files). */
using LocalNodeId = std::uint32_t;

/** Byte offset / edge index type. */
using EdgeIndex = std::uint64_t;

/** Immutable CSR graph. Build with GraphBuilder or a generator. */
class CsrGraph
{
  public:
    CsrGraph() = default;

    /**
     * Adopt prebuilt arrays.
     * @pre offsets.size() == num_nodes + 1, offsets.front() == 0,
     *      offsets.back() == neighbors.size(), offsets nondecreasing.
     */
    CsrGraph(std::vector<EdgeIndex> offsets,
             std::vector<LocalNodeId> neighbors);

    std::uint64_t numNodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
    std::uint64_t numEdges() const { return neighbors_.size(); }

    /** Out-degree of @p u. */
    std::uint64_t
    degree(LocalNodeId u) const
    {
        return offsets_[u + 1] - offsets_[u];
    }

    /** Neighbor list of @p u. */
    std::span<const LocalNodeId>
    neighbors(LocalNodeId u) const
    {
        return {neighbors_.data() + offsets_[u],
                neighbors_.data() + offsets_[u + 1]};
    }

    /** Edge-array index where @p u's list begins (for LBA computation). */
    EdgeIndex edgeOffset(LocalNodeId u) const { return offsets_[u]; }

    /** Mean out-degree. */
    double avgDegree() const;

    /** Maximum out-degree. */
    std::uint64_t maxDegree() const;

    /** Bytes of the neighbor array as stored on device (4 B per edge). */
    std::uint64_t edgeListBytes() const { return numEdges() * sizeof(LocalNodeId); }

    /** Bytes of the offsets array. */
    std::uint64_t offsetBytes() const { return offsets_.size() * sizeof(EdgeIndex); }

    /** Validate structural invariants; panics on violation. */
    void checkInvariants() const;

    const std::vector<EdgeIndex> &offsets() const { return offsets_; }
    const std::vector<LocalNodeId> &rawNeighbors() const { return neighbors_; }

  private:
    std::vector<EdgeIndex> offsets_;
    std::vector<LocalNodeId> neighbors_;
};

} // namespace smartsage::graph

#endif // SMARTSAGE_GRAPH_CSR_HH
