/**
 * @file
 * Kronecker fractal expansion (Belletti et al. [7] in the paper).
 *
 * Expanding graph G (n nodes) by a k x k binary seed S produces a graph
 * on n*k nodes where node (u, i) maps to id u*k + i and edge
 * ((u,i) -> (v,j)) exists iff (u -> v) in G and (i -> j) in S. With
 * nnz(S) > k the expansion densifies — average degree grows by
 * nnz(S)/k — matching the densification power law the paper's
 * large-scale datasets exhibit (Fig 13).
 */

#ifndef SMARTSAGE_GRAPH_KRONECKER_HH
#define SMARTSAGE_GRAPH_KRONECKER_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "csr.hh"

namespace smartsage::graph
{

/** A small dense binary seed matrix for Kronecker expansion. */
class KroneckerSeed
{
  public:
    /** @param k seed dimension; @param edges list of (row, col) ones */
    KroneckerSeed(unsigned k,
                  std::vector<std::pair<unsigned, unsigned>> edges);

    /** Canonical densifying 2x2 seed: {(0,0),(0,1),(1,0)}. */
    static KroneckerSeed defaultSeed();

    unsigned k() const { return k_; }
    std::uint64_t nnz() const { return edges_.size(); }

    /** Out-neighbors of seed row @p i. */
    const std::vector<unsigned> &row(unsigned i) const { return rows_[i]; }

    /** Densification factor per expansion: nnz / k. */
    double densification() const;

  private:
    unsigned k_;
    std::vector<std::pair<unsigned, unsigned>> edges_;
    std::vector<std::vector<unsigned>> rows_;
};

/** One round of Kronecker expansion of @p base by @p seed. */
CsrGraph kroneckerExpand(const CsrGraph &base, const KroneckerSeed &seed);

/** @p rounds repeated expansions. */
CsrGraph kroneckerExpand(const CsrGraph &base, const KroneckerSeed &seed,
                         unsigned rounds);

} // namespace smartsage::graph

#endif // SMARTSAGE_GRAPH_KRONECKER_HH
