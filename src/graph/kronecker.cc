#include "kronecker.hh"

#include "sim/logging.hh"

namespace smartsage::graph
{

KroneckerSeed::KroneckerSeed(
    unsigned k, std::vector<std::pair<unsigned, unsigned>> edges)
    : k_(k), edges_(std::move(edges)), rows_(k)
{
    SS_ASSERT(k_ >= 2, "seed must be at least 2x2");
    for (const auto &[i, j] : edges_) {
        SS_ASSERT(i < k_ && j < k_, "seed edge (", i, ",", j,
                  ") out of range ", k_);
        rows_[i].push_back(j);
    }
    for (unsigned i = 0; i < k_; ++i) {
        SS_ASSERT(!rows_[i].empty(),
                  "seed row ", i, " empty: expansion would orphan nodes");
    }
}

KroneckerSeed
KroneckerSeed::defaultSeed()
{
    return KroneckerSeed(2, {{0, 0}, {0, 1}, {1, 0}});
}

double
KroneckerSeed::densification() const
{
    return static_cast<double>(nnz()) / static_cast<double>(k_);
}

CsrGraph
kroneckerExpand(const CsrGraph &base, const KroneckerSeed &seed)
{
    const std::uint64_t n = base.numNodes();
    const unsigned k = seed.k();
    const std::uint64_t out_n = n * k;

    // degree(u*k + i) = deg(u) * |row_i(S)|, so offsets can be laid out
    // in one pass without buffering an edge list.
    std::vector<EdgeIndex> offsets(out_n + 1, 0);
    for (std::uint64_t u = 0; u < n; ++u) {
        std::uint64_t d = base.degree(static_cast<LocalNodeId>(u));
        for (unsigned i = 0; i < k; ++i) {
            std::uint64_t id = u * k + i;
            offsets[id + 1] = offsets[id] + d * seed.row(i).size();
        }
    }

    std::vector<LocalNodeId> neighbors(offsets.back());
    for (std::uint64_t u = 0; u < n; ++u) {
        auto nbrs = base.neighbors(static_cast<LocalNodeId>(u));
        for (unsigned i = 0; i < k; ++i) {
            EdgeIndex out = offsets[u * k + i];
            for (unsigned j : seed.row(i)) {
                for (LocalNodeId v : nbrs) {
                    neighbors[out++] = static_cast<LocalNodeId>(
                        static_cast<std::uint64_t>(v) * k + j);
                }
            }
        }
    }
    return CsrGraph(std::move(offsets), std::move(neighbors));
}

CsrGraph
kroneckerExpand(const CsrGraph &base, const KroneckerSeed &seed,
                unsigned rounds)
{
    SS_ASSERT(rounds > 0, "need at least one expansion round");
    CsrGraph g = kroneckerExpand(base, seed);
    for (unsigned r = 1; r < rounds; ++r)
        g = kroneckerExpand(g, seed);
    return g;
}

} // namespace smartsage::graph
