#include "builder.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace smartsage::graph
{

GraphBuilder::GraphBuilder(std::uint64_t num_nodes) : num_nodes_(num_nodes)
{
    SS_ASSERT(num_nodes > 0, "graph needs at least one node");
}

void
GraphBuilder::addEdge(LocalNodeId u, LocalNodeId v)
{
    SS_ASSERT(u < num_nodes_ && v < num_nodes_, "edge (", u, ",", v,
              ") out of range ", num_nodes_);
    edges_.emplace_back(u, v);
}

void
GraphBuilder::addUndirectedEdge(LocalNodeId u, LocalNodeId v)
{
    addEdge(u, v);
    if (u != v)
        addEdge(v, u);
}

CsrGraph
GraphBuilder::build(bool dedup) &&
{
    std::sort(edges_.begin(), edges_.end());
    if (dedup)
        edges_.erase(std::unique(edges_.begin(), edges_.end()),
                     edges_.end());

    std::vector<EdgeIndex> offsets(num_nodes_ + 1, 0);
    for (const auto &[u, v] : edges_)
        ++offsets[u + 1];
    for (std::size_t i = 1; i < offsets.size(); ++i)
        offsets[i] += offsets[i - 1];

    std::vector<LocalNodeId> neighbors;
    neighbors.reserve(edges_.size());
    for (const auto &[u, v] : edges_)
        neighbors.push_back(v);

    edges_.clear();
    edges_.shrink_to_fit();
    return CsrGraph(std::move(offsets), std::move(neighbors));
}

} // namespace smartsage::graph
