#include "rmat.hh"

#include "builder.hh"
#include "sim/logging.hh"

namespace smartsage::graph
{

CsrGraph
generateRmat(const RmatParams &params)
{
    SS_ASSERT(params.scale > 0 && params.scale < 32, "bad R-MAT scale");
    double d = 1.0 - params.a - params.b - params.c;
    SS_ASSERT(d > 0.0, "R-MAT quadrant probabilities must sum below 1");

    std::uint64_t n = 1ULL << params.scale;
    std::uint64_t target_edges =
        static_cast<std::uint64_t>(params.edge_factor * n);
    sim::Rng rng(params.seed);
    GraphBuilder builder(n);

    std::uint64_t made = 0;
    while (made < target_edges) {
        std::uint64_t u = 0, v = 0;
        for (unsigned level = 0; level < params.scale; ++level) {
            double r = rng.nextDouble();
            double a = params.a, b = params.b, c = params.c;
            u <<= 1;
            v <<= 1;
            if (r < a) {
                // top-left: no bits set
            } else if (r < a + b) {
                v |= 1;
            } else if (r < a + b + c) {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if (u == v)
            continue; // drop self loop, retry
        if (params.undirected) {
            builder.addUndirectedEdge(static_cast<LocalNodeId>(u),
                                      static_cast<LocalNodeId>(v));
        } else {
            builder.addEdge(static_cast<LocalNodeId>(u),
                            static_cast<LocalNodeId>(v));
        }
        ++made;
    }
    return std::move(builder).build();
}

} // namespace smartsage::graph
