#include "io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "sim/logging.hh"

namespace smartsage::graph
{

namespace
{

constexpr char magic[4] = {'S', 'S', 'G', '1'};

template <typename T>
void
writeRaw(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readRaw(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!is)
        SS_FATAL("truncated graph stream");
    return v;
}

} // namespace

std::uint64_t
saveCsr(const CsrGraph &graph, std::ostream &os)
{
    os.write(magic, sizeof(magic));
    writeRaw<std::uint64_t>(os, graph.numNodes());
    writeRaw<std::uint64_t>(os, graph.numEdges());
    const auto &offsets = graph.offsets();
    const auto &nbrs = graph.rawNeighbors();
    os.write(reinterpret_cast<const char *>(offsets.data()),
             static_cast<std::streamsize>(offsets.size() *
                                          sizeof(EdgeIndex)));
    os.write(reinterpret_cast<const char *>(nbrs.data()),
             static_cast<std::streamsize>(nbrs.size() *
                                          sizeof(LocalNodeId)));
    if (!os)
        SS_FATAL("failed to write graph stream");
    return sizeof(magic) + 2 * sizeof(std::uint64_t) +
           offsets.size() * sizeof(EdgeIndex) +
           nbrs.size() * sizeof(LocalNodeId);
}

CsrGraph
loadCsr(std::istream &is)
{
    char got[4];
    is.read(got, sizeof(got));
    if (!is || std::memcmp(got, magic, sizeof(magic)) != 0)
        SS_FATAL("bad graph magic; not a SmartSAGE CSR file");

    auto num_nodes = readRaw<std::uint64_t>(is);
    auto num_edges = readRaw<std::uint64_t>(is);

    std::vector<EdgeIndex> offsets(num_nodes + 1);
    is.read(reinterpret_cast<char *>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() *
                                         sizeof(EdgeIndex)));
    std::vector<LocalNodeId> nbrs(num_edges);
    is.read(reinterpret_cast<char *>(nbrs.data()),
            static_cast<std::streamsize>(nbrs.size() *
                                         sizeof(LocalNodeId)));
    if (!is)
        SS_FATAL("truncated graph stream");
    return CsrGraph(std::move(offsets), std::move(nbrs));
}

void
saveCsrFile(const CsrGraph &graph, const std::string &path)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        SS_FATAL("cannot open '", path, "' for writing");
    saveCsr(graph, f);
}

CsrGraph
loadCsrFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        SS_FATAL("cannot open '", path, "' for reading");
    return loadCsr(f);
}

} // namespace smartsage::graph
