#include "powerlaw.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace smartsage::graph
{

CsrGraph
generatePowerLaw(const PowerLawParams &params)
{
    SS_ASSERT(params.num_nodes > 1, "need at least two nodes");
    SS_ASSERT(params.avg_degree > 0.0, "average degree must be positive");
    SS_ASSERT(params.alpha > 1.0, "power-law exponent must exceed 1");

    const std::uint64_t n = params.num_nodes;
    const std::uint64_t dmax =
        params.max_degree ? params.max_degree : std::max<std::uint64_t>(n / 2, 2);
    sim::Rng rng(params.seed);

    // Bounded-Pareto inverse-CDF draw for the raw degree shape.
    const double dmin = 1.0;
    const double exponent = params.alpha - 1.0;
    const double lo_pow = std::pow(dmin, -exponent);
    const double hi_pow = std::pow(static_cast<double>(dmax), -exponent);

    std::vector<double> raw(n);
    double raw_sum = 0.0;
    for (auto &d : raw) {
        double u = rng.nextDouble();
        d = std::pow(lo_pow - u * (lo_pow - hi_pow), -1.0 / exponent);
        raw_sum += d;
    }

    // Rescale so the mean matches the requested average degree. The
    // degree cap truncates scaled hub draws, so a single linear rescale
    // undershoots for heavy configurations; a few fixed-point rounds on
    // the capped sum converge to the right scale.
    const double target = params.avg_degree * static_cast<double>(n);
    double scale = target / raw_sum;
    for (int round = 0; round < 6; ++round) {
        double capped_sum = 0.0;
        for (double d : raw)
            capped_sum += std::min(d * scale,
                                   static_cast<double>(dmax));
        if (capped_sum <= 0.0)
            break;
        scale *= target / capped_sum;
    }
    std::vector<EdgeIndex> offsets(n + 1, 0);
    for (std::uint64_t u = 0; u < n; ++u) {
        double want = raw[u] * scale;
        auto deg = static_cast<std::uint64_t>(want);
        if (rng.nextBool(want - static_cast<double>(deg)))
            ++deg;
        deg = std::min<std::uint64_t>(deg, dmax);
        offsets[u + 1] = offsets[u] + deg;
    }

    std::vector<LocalNodeId> neighbors(offsets.back());
    for (std::uint64_t u = 0; u < n; ++u) {
        for (EdgeIndex e = offsets[u]; e < offsets[u + 1]; ++e) {
            std::uint64_t v;
            do {
                v = rng.nextBounded(n);
            } while (v == u);
            neighbors[e] = static_cast<LocalNodeId>(v);
        }
    }
    return CsrGraph(std::move(offsets), std::move(neighbors));
}

} // namespace smartsage::graph
