#include "datasets.hh"

#include <array>

#include "kronecker.hh"
#include "sim/logging.hh"

namespace smartsage::graph
{

CsrGraph
DatasetSpec::buildInMemory() const
{
    return generatePowerLaw(base);
}

CsrGraph
DatasetSpec::buildLargeScale() const
{
    CsrGraph g = generatePowerLaw(base);
    return kroneckerExpand(g, KroneckerSeed::defaultSeed(),
                           expansion_rounds);
}

namespace
{

PowerLawParams
baseParams(std::uint64_t nodes, double avg_degree, std::uint64_t seed)
{
    PowerLawParams p;
    p.num_nodes = nodes;
    p.avg_degree = avg_degree;
    p.alpha = 2.1;
    p.seed = seed;
    return p;
}

// Table I of the paper, verbatim, plus our sim-scale generator configs.
// Default Kronecker seed is 2x2 nnz=3, so each round multiplies nodes
// by 2 and edges by 3 (densification 1.5x, per the densification power
// law the paper cites).
const std::array<DatasetSpec, 5> specs = {{
    {
        "Reddit",
        {233.0e3, 114.6e6, 0.8},
        {37.3e6, 53.9e9, 402.0},
        602,
        baseParams(4096, 56.0, 11),
        2,
    },
    {
        "Movielens",
        {5.5e6, 6.0e9, 45.0},
        {22.2e6, 59.2e9, 442.0},
        1024,
        baseParams(4096, 110.0, 22),
        2,
    },
    {
        "Amazon",
        {42.5e6, 1.3e9, 9.7},
        {265.9e6, 9.5e9, 75.0},
        32,
        baseParams(16384, 18.0, 33),
        2,
    },
    {
        "OGBN-100M",
        {89.6e6, 3.2e9, 26.0},
        {179.1e6, 5.0e9, 41.0},
        32,
        baseParams(16384, 14.0, 44),
        2,
    },
    {
        "Protein-PI",
        {907.0e3, 317.5e6, 2.4},
        {9.1e6, 8.8e9, 66.0},
        512,
        baseParams(4096, 75.0, 55),
        2,
    },
}};

const std::vector<DatasetId> dataset_order = {
    DatasetId::Reddit,    DatasetId::Movielens, DatasetId::Amazon,
    DatasetId::Ogbn100M,  DatasetId::ProteinPI,
};

} // namespace

const std::vector<DatasetId> &
allDatasets()
{
    return dataset_order;
}

const DatasetSpec &
datasetSpec(DatasetId id)
{
    auto idx = static_cast<std::size_t>(id);
    SS_ASSERT(idx < specs.size(), "bad dataset id ", idx);
    return specs[idx];
}

const std::string &
datasetName(DatasetId id)
{
    return datasetSpec(id).name;
}

} // namespace smartsage::graph
