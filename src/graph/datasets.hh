/**
 * @file
 * The five evaluation datasets (paper Table I), reproduced at simulation
 * scale.
 *
 * The paper's large-scale variants (53.9B-edge Reddit, etc.) were
 * themselves synthesized with Kronecker fractal expansion from public
 * bases; we follow the same recipe ~1000x smaller: a power-law base
 * graph ("in-memory" variant) expanded by a densifying Kronecker seed
 * ("large-scale" variant). Relative degree shape across datasets — the
 * term that drives edge-list pages per node and therefore every SSD
 * ratio — follows Table I.
 */

#ifndef SMARTSAGE_GRAPH_DATASETS_HH
#define SMARTSAGE_GRAPH_DATASETS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "csr.hh"
#include "powerlaw.hh"

namespace smartsage::graph
{

/** Paper-reported statistics for one Table I row. */
struct PaperStats
{
    double nodes;    //!< node count as reported
    double edges;    //!< edge count as reported
    double size_gb;  //!< dataset size in GB as reported
};

/** Full description of one evaluation dataset. */
struct DatasetSpec
{
    std::string name;

    PaperStats paper_in_memory;  //!< Table I "In-memory" columns
    PaperStats paper_large;      //!< Table I "Large-scale" columns
    unsigned feature_dim;        //!< Table I "Features" column

    PowerLawParams base;         //!< simulation-scale base generator
    unsigned expansion_rounds;   //!< Kronecker rounds for large-scale

    /** Build the simulation-scale in-memory variant. */
    CsrGraph buildInMemory() const;

    /** Build the simulation-scale large-scale variant. */
    CsrGraph buildLargeScale() const;
};

/** Dataset identifiers in paper order. */
enum class DatasetId
{
    Reddit,
    Movielens,
    Amazon,
    Ogbn100M,
    ProteinPI,
};

/** All dataset ids in paper order. */
const std::vector<DatasetId> &allDatasets();

/** Lookup the spec for @p id. */
const DatasetSpec &datasetSpec(DatasetId id);

/** Short display name ("Reddit", ...). */
const std::string &datasetName(DatasetId id);

} // namespace smartsage::graph

#endif // SMARTSAGE_GRAPH_DATASETS_HH
