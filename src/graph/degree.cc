#include "degree.hh"

#include <cmath>

namespace smartsage::graph
{

DegreeDistribution::DegreeDistribution(const CsrGraph &graph)
    : avg_(graph.avgDegree()), nodes_(graph.numNodes())
{
    for (std::uint64_t u = 0; u < nodes_; ++u) {
        std::uint64_t d = graph.degree(static_cast<LocalNodeId>(u));
        ++counts_[d];
        if (d > max_)
            max_ = d;
    }
}

std::vector<DegreeBucket>
DegreeDistribution::logBuckets() const
{
    std::vector<DegreeBucket> buckets;
    if (counts_.empty())
        return buckets;

    // Buckets [0,1), [1,2), [2,4), [4,8), ...
    std::uint64_t lo = 0, hi = 1;
    auto it = counts_.begin();
    while (it != counts_.end()) {
        std::uint64_t count = 0;
        while (it != counts_.end() && it->first < hi) {
            count += it->second;
            ++it;
        }
        if (count > 0)
            buckets.push_back({lo, hi, count});
        lo = hi;
        hi = hi * 2;
    }
    return buckets;
}

double
DegreeDistribution::powerLawSlope() const
{
    // Simple least squares over (log d, log count), d >= 1.
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    std::uint64_t n = 0;
    for (const auto &[d, c] : counts_) {
        if (d == 0)
            continue;
        double x = std::log(static_cast<double>(d));
        double y = std::log(static_cast<double>(c));
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
        ++n;
    }
    if (n < 2)
        return 0.0;
    double dn = static_cast<double>(n);
    double denom = dn * sxx - sx * sx;
    if (denom == 0.0)
        return 0.0;
    return (dn * sxy - sx * sy) / denom;
}

} // namespace smartsage::graph
