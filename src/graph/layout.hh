/**
 * @file
 * On-device layout of the neighbor edge list array.
 *
 * Table I's large-scale datasets average ~7.5 bytes per edge, i.e. 8 B
 * node IDs; every timing model addresses the edge-list file through
 * this descriptor. (The in-simulator CsrGraph stores 4 B IDs purely to
 * halve simulation memory — the *modeled* device layout stays 8 B.)
 */

#ifndef SMARTSAGE_GRAPH_LAYOUT_HH
#define SMARTSAGE_GRAPH_LAYOUT_HH

#include <cstdint>

namespace smartsage::graph
{

/** Byte layout of the edge-list file on the storage device. */
struct EdgeLayout
{
    std::uint64_t base = 0;    //!< file offset of the neighbor array
    unsigned entry_bytes = 8;  //!< stored bytes per neighbor ID

    /** Byte address of edge-array entry @p entry_index. */
    std::uint64_t
    addrOf(std::uint64_t entry_index) const
    {
        return base + entry_index * entry_bytes;
    }
};

} // namespace smartsage::graph

#endif // SMARTSAGE_GRAPH_LAYOUT_HH
