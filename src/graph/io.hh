/**
 * @file
 * Binary (de)serialization of CSR graphs — the on-SSD file format.
 *
 * Layout (little-endian):
 *   magic "SSG1" | u64 num_nodes | u64 num_edges |
 *   u64 offsets[num_nodes + 1] | u32 neighbors[num_edges]
 *
 * The neighbor array region is what the simulated SSD stores; the
 * feature table and offsets live in host DRAM, matching the paper's
 * placement (the edge list dominates capacity, Section II-C).
 */

#ifndef SMARTSAGE_GRAPH_IO_HH
#define SMARTSAGE_GRAPH_IO_HH

#include <iosfwd>
#include <string>

#include "csr.hh"

namespace smartsage::graph
{

/** Serialize @p graph to @p os. @return bytes written. */
std::uint64_t saveCsr(const CsrGraph &graph, std::ostream &os);

/** Deserialize a graph from @p is; fatal() on format errors. */
CsrGraph loadCsr(std::istream &is);

/** Convenience file wrappers. */
void saveCsrFile(const CsrGraph &graph, const std::string &path);
CsrGraph loadCsrFile(const std::string &path);

} // namespace smartsage::graph

#endif // SMARTSAGE_GRAPH_IO_HH
