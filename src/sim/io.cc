#include "io.hh"

#include <algorithm>
#include <utility>

#include "logging.hh"

namespace smartsage::sim
{

const char *
ioStatusName(IoStatus status)
{
    switch (status) {
      case IoStatus::Ok:
        return "ok";
      case IoStatus::TransientError:
        return "transient-error";
      case IoStatus::Timeout:
        return "timeout";
    }
    return "unknown";
}

StorageChannel::StorageChannel(std::string name, unsigned depth)
    : name_(std::move(name)), depth_(depth)
{
    SS_ASSERT(depth >= 1, "channel '", name_,
              "' needs a queue depth of at least 1");
}

void
StorageChannel::setRetryPolicy(const RetryPolicy &policy)
{
    validate(policy);
    retry_ = policy;
}

void
StorageChannel::submit(EventQueue &eq, Service service, IoCompletion done)
{
    // Wrap the synchronous service as a one-event staged service: the
    // finish tick is known at dispatch; the slot is released (and the
    // completion delivered) by an event at that tick.
    submitStaged(
        eq,
        [service = std::move(service)](EventQueue &q, Tick start,
                                       IoCompletion complete) {
            Tick finish = service(start);
            SS_ASSERT(finish >= start, "service finished at ", finish,
                      " before it started at ", start);
            q.schedule(finish, [complete = std::move(complete), finish] {
                complete(finish, IoStatus::Ok);
            });
        },
        std::move(done));
}

void
StorageChannel::submitFallible(EventQueue &eq, FallibleService service,
                               IoCompletion done)
{
    // Fork the jitter stream by submission index *before* submitStaged
    // bumps the counter; forking never advances the master, so the
    // stream a request sees depends only on its arrival order.
    auto state = std::make_shared<RetryState>(RetryState{
        std::move(service),
        retry_.wantsDeadline() ? eq.now() + retry_.timeout : 0,
        jitter_master_.fork(submitted_)});
    submitStaged(
        eq,
        [this, state](EventQueue &q, Tick start, IoCompletion complete) {
            runAttempt(q, start, 1, state, std::move(complete));
        },
        std::move(done));
}

Tick
StorageChannel::backoffBefore(unsigned next_attempt, Rng &rng) const
{
    // Attempt 2 waits backoff_base, each further attempt doubles it up
    // to the cap (shift saturates well past any sane attempt budget).
    unsigned shift = next_attempt - 2;
    Tick backoff = retry_.backoff_cap;
    if (shift < 63) {
        Tick grown = retry_.backoff_base << shift;
        if (grown >> shift == retry_.backoff_base)
            backoff = std::min(retry_.backoff_cap, grown);
    }
    // Zero jitter makes no draw, so jitter-free goldens consume no
    // stream and stay exact.
    if (retry_.jitter > 0.0) {
        backoff += static_cast<Tick>(static_cast<double>(backoff) *
                                     retry_.jitter * rng.nextDouble());
    }
    return backoff;
}

void
StorageChannel::runAttempt(EventQueue &eq, Tick start, unsigned attempt,
                           const std::shared_ptr<RetryState> &state,
                           IoCompletion complete)
{
    auto deliver = [&eq](Tick at, IoStatus status, IoCompletion c) {
        eq.schedule(at, [c = std::move(c), at, status] { c(at, status); });
    };

    // The deadline can pass while the request waits for a slot or sits
    // in backoff; time it out without burning another service attempt.
    if (state->deadline != 0 && start > state->deadline) {
        ++timeouts_;
        deliver(start, IoStatus::Timeout, std::move(complete));
        return;
    }

    IoOutcome out = state->service(start, attempt);
    SS_ASSERT(out.finish >= start, "attempt ", attempt, " on channel '",
              name_, "' finished at ", out.finish,
              " before it started at ", start);

    if (out.status == IoStatus::Ok) {
        if (state->deadline != 0 && out.finish > state->deadline) {
            ++timeouts_;
            deliver(out.finish, IoStatus::Timeout, std::move(complete));
        } else {
            deliver(out.finish, IoStatus::Ok, std::move(complete));
        }
        return;
    }

    if (attempt >= retry_.max_attempts) {
        ++abandoned_;
        deliver(out.finish, out.status, std::move(complete));
        return;
    }

    // Budget remains: back off, then re-run the service. The check
    // above keeps exhausted requests from drawing jitter they will
    // never use.
    Tick next = out.finish + backoffBefore(attempt + 1, state->rng);
    if (state->deadline != 0 && next > state->deadline) {
        ++timeouts_;
        deliver(out.finish, IoStatus::Timeout, std::move(complete));
        return;
    }
    ++retries_;
    eq.schedule(next, [this, &eq, next, attempt, state,
                       complete = std::move(complete)]() mutable {
        runAttempt(eq, next, attempt + 1, state, std::move(complete));
    });
}

void
StorageChannel::submitStaged(EventQueue &eq, StagedService service,
                             IoCompletion done)
{
    ++submitted_;
    peak_outstanding_ = std::max<std::uint64_t>(
        peak_outstanding_, in_flight_ + pending_.size() + 1);
    Pending p{std::move(service), std::move(done), eq.now()};
    if (in_flight_ < depth_) {
        dispatch(eq, std::move(p), /*queued=*/false);
    } else {
        pending_.push_back(std::move(p));
    }
}

void
StorageChannel::dispatch(EventQueue &eq, Pending p, bool queued)
{
    ++in_flight_;
    Tick start = eq.now();
    // Wait stats cover only requests that actually sat in the pending
    // queue; sync completions dispatched straight into a free slot
    // would otherwise skew the mean queue wait toward zero.
    if (queued) {
        Tick wait = start - p.submit;
        ++queued_;
        total_queue_wait_ += wait;
        max_queue_wait_ = std::max(max_queue_wait_, wait);
    }

    // The staged service owns its own event scheduling; the channel
    // only hears back through this wrapper, which frees the slot and
    // pulls the next pending request forward at the completion tick.
    auto service = std::move(p.service);
    service(eq, start,
            [this, &eq, done = std::move(p.done)](Tick finish,
                                                  IoStatus status) {
                onComplete(eq, finish);
                if (done)
                    done(finish, status);
            });
}

void
StorageChannel::onComplete(EventQueue &eq, Tick finish)
{
    SS_ASSERT(in_flight_ > 0, "channel '", name_,
              "' completed with nothing in flight");
    (void)finish;
    --in_flight_;
    ++completed_;
    if (!pending_.empty() && in_flight_ < depth_) {
        Pending next = std::move(pending_.front());
        pending_.pop_front();
        dispatch(eq, std::move(next), /*queued=*/true);
    }
}

void
StorageChannel::reset()
{
    SS_ASSERT(idle(), "channel '", name_,
              "' reset with requests outstanding");
    submitted_ = 0;
    completed_ = 0;
    peak_outstanding_ = 0;
    queued_ = 0;
    total_queue_wait_ = 0;
    max_queue_wait_ = 0;
    retries_ = 0;
    timeouts_ = 0;
    abandoned_ = 0;
}

Tick
drainOne(EventQueue &eq, Tick arrival,
         const std::function<void(EventQueue &, IoCompletion)> &submit,
         std::string_view component, std::uint64_t request_id)
{
    SS_ASSERT(eq.pending() == 0,
              "blocking adapter needs an empty event queue");
    eq.reset();
    Tick result = 0;
    IoStatus status = IoStatus::Ok;
    bool completed = false;
    eq.schedule(arrival, [&] {
        submit(eq, [&](Tick finish, IoStatus s) {
            result = finish;
            status = s;
            completed = true;
        });
    });
    eq.run();
    SS_ASSERT(completed, "blocking adapter drained without a completion");
    if (status != IoStatus::Ok) {
        // A blocking caller would read whatever is in its buffer; die
        // loudly instead of returning stale bytes.
        SS_FATAL("blocking read on '", component, "' failed with status ",
                 ioStatusName(status), " (request ", request_id,
                 "): recovery requires the async submit path");
    }
    return result;
}

} // namespace smartsage::sim
