#include "io.hh"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "logging.hh"

namespace smartsage::sim
{

const char *
ioStatusName(IoStatus status)
{
    switch (status) {
      case IoStatus::Ok:
        return "ok";
      case IoStatus::TransientError:
        return "transient-error";
      case IoStatus::Timeout:
        return "timeout";
      case IoStatus::Shed:
        return "shed";
    }
    return "unknown";
}

const char *
dispatchPolicyName(DispatchPolicy policy)
{
    switch (policy) {
      case DispatchPolicy::Fifo:
        return "fifo";
      case DispatchPolicy::Priority:
        return "priority";
      case DispatchPolicy::Deadline:
        return "edf";
    }
    return "unknown";
}

bool
applyKnob(SchedConfig &config, std::string_view key, double value)
{
    if (key == "policy") {
        if (value != 0.0 && value != 1.0 && value != 2.0)
            SS_FATAL("sched.policy must be 0 (fifo), 1 (priority), or "
                     "2 (edf), got ", value);
        config.policy = static_cast<DispatchPolicy>(
            static_cast<std::uint8_t>(value));
        return true;
    }
    return false;
}

bool
applyKnob(AdmissionControl &admit, std::string_view key, double value)
{
    if (key == "max_queue") {
        if (value < 0)
            SS_FATAL("admit.max_queue must be >= 0, got ", value);
        admit.max_queue = static_cast<std::size_t>(value);
    } else if (key == "slo_aware") {
        admit.slo_aware = value != 0;
    } else {
        return false;
    }
    return true;
}

StorageChannel::StorageChannel(std::string name, unsigned depth)
    : name_(std::move(name)), depth_(depth)
{
    SS_ASSERT(depth >= 1, "channel '", name_,
              "' needs a queue depth of at least 1");
}

void
StorageChannel::setRetryPolicy(const RetryPolicy &policy)
{
    validate(policy);
    retry_ = policy;
}

void
StorageChannel::submit(EventQueue &eq, Service service, IoCompletion done,
                       const DispatchTag &tag)
{
    // Wrap the synchronous service as a one-event staged service: the
    // finish tick is known at dispatch; the slot is released (and the
    // completion delivered) by an event at that tick.
    submitStaged(
        eq,
        [service = std::move(service)](EventQueue &q, Tick start,
                                       IoCompletion complete) {
            Tick finish = service(start);
            SS_ASSERT(finish >= start, "service finished at ", finish,
                      " before it started at ", start);
            q.schedule(finish, [complete = std::move(complete), finish] {
                complete(finish, IoStatus::Ok);
            });
        },
        std::move(done), tag);
}

void
StorageChannel::submitFallible(EventQueue &eq, FallibleService service,
                               IoCompletion done, const DispatchTag &tag)
{
    // Fork the jitter stream by submission index *before* submitStaged
    // bumps the counter; forking never advances the master, so the
    // stream a request sees depends only on its arrival order.
    auto state = std::make_shared<RetryState>(RetryState{
        std::move(service),
        retry_.wantsDeadline() ? eq.now() + retry_.timeout : 0,
        jitter_master_.fork(submitted_)});
    submitStaged(
        eq,
        [this, state](EventQueue &q, Tick start, IoCompletion complete) {
            runAttempt(q, start, 1, state, std::move(complete));
        },
        std::move(done), tag);
}

Tick
StorageChannel::backoffBefore(unsigned next_attempt, Rng &rng) const
{
    // Attempt 2 waits backoff_base, each further attempt doubles it up
    // to the cap (shift saturates well past any sane attempt budget).
    unsigned shift = next_attempt - 2;
    Tick backoff = retry_.backoff_cap;
    if (shift < 63) {
        Tick grown = retry_.backoff_base << shift;
        if (grown >> shift == retry_.backoff_base)
            backoff = std::min(retry_.backoff_cap, grown);
    }
    // Zero jitter makes no draw, so jitter-free goldens consume no
    // stream and stay exact.
    if (retry_.jitter > 0.0) {
        backoff += static_cast<Tick>(static_cast<double>(backoff) *
                                     retry_.jitter * rng.nextDouble());
    }
    return backoff;
}

void
StorageChannel::runAttempt(EventQueue &eq, Tick start, unsigned attempt,
                           const std::shared_ptr<RetryState> &state,
                           IoCompletion complete)
{
    auto deliver = [&eq](Tick at, IoStatus status, IoCompletion c) {
        eq.schedule(at, [c = std::move(c), at, status] { c(at, status); });
    };

    // The deadline can pass while the request waits for a slot or sits
    // in backoff; time it out without burning another service attempt.
    if (state->deadline != 0 && start > state->deadline) {
        ++timeouts_;
        deliver(start, IoStatus::Timeout, std::move(complete));
        return;
    }

    IoOutcome out = state->service(start, attempt);
    SS_ASSERT(out.finish >= start, "attempt ", attempt, " on channel '",
              name_, "' finished at ", out.finish,
              " before it started at ", start);

    if (out.status == IoStatus::Ok) {
        if (state->deadline != 0 && out.finish > state->deadline) {
            ++timeouts_;
            deliver(out.finish, IoStatus::Timeout, std::move(complete));
        } else {
            deliver(out.finish, IoStatus::Ok, std::move(complete));
        }
        return;
    }

    if (attempt >= retry_.max_attempts) {
        ++abandoned_;
        deliver(out.finish, out.status, std::move(complete));
        return;
    }

    // Budget remains: back off, then re-run the service. The check
    // above keeps exhausted requests from drawing jitter they will
    // never use.
    Tick next = out.finish + backoffBefore(attempt + 1, state->rng);
    if (state->deadline != 0 && next > state->deadline) {
        ++timeouts_;
        deliver(out.finish, IoStatus::Timeout, std::move(complete));
        return;
    }
    ++retries_;
    eq.schedule(next, [this, &eq, next, attempt, state,
                       complete = std::move(complete)]() mutable {
        runAttempt(eq, next, attempt + 1, state, std::move(complete));
    });
}

bool
StorageChannel::shouldShed(const EventQueue &eq,
                           const DispatchTag &tag) const
{
    if (admit_.max_queue != 0 && pending_.size() >= admit_.max_queue)
        return true;
    if (admit_.slo_aware && tag.deadline != 0) {
        if (eq.now() > tag.deadline)
            return true;
        if (completed_ == 0)
            return false; // no service history to estimate from yet
        // Deterministic completion estimate: the work ahead of this
        // request drains in waves of `depth_` requests, each wave one
        // mean service time long. Under Fifo the whole queue is ahead;
        // under Priority/Deadline only the pending requests the
        // dispatch comparator would pick first count, so a tagged
        // request is not shed for a backlog it will jump past.
        std::size_t ahead = pending_.size();
        if (policy_ == DispatchPolicy::Priority) {
            ahead = 0;
            for (const Pending &p : pending_)
                if (p.tag.priority >= tag.priority)
                    ++ahead;
        } else if (policy_ == DispatchPolicy::Deadline) {
            ahead = 0;
            for (const Pending &p : pending_)
                if (p.tag.deadline != 0 && p.tag.deadline <= tag.deadline)
                    ++ahead;
        }
        Tick mean_service = total_service_ / completed_;
        Tick waves = static_cast<Tick>(ahead / depth_ + 1);
        Tick estimated_finish =
            eq.now() + mean_service * waves + mean_service;
        return estimated_finish > tag.deadline;
    }
    return false;
}

void
StorageChannel::submitStaged(EventQueue &eq, StagedService service,
                             IoCompletion done, const DispatchTag &tag)
{
    ++submitted_;
    // Admission control runs only with every slot busy and a rule
    // enabled, so the default (admission-off) submit path is untouched.
    if (in_flight_ >= depth_ && admit_.enabled() && shouldShed(eq, tag)) {
        ++shed_admission_;
        Tick now = eq.now();
        if (done) {
            eq.schedule(now, [done = std::move(done), now] {
                done(now, IoStatus::Shed);
            });
        }
        return;
    }
    peak_outstanding_ = std::max<std::uint64_t>(
        peak_outstanding_, in_flight_ + pending_.size() + 1);
    Pending p{std::move(service), std::move(done), eq.now(), tag,
              submitted_};
    if (in_flight_ < depth_) {
        dispatch(eq, std::move(p), /*queued=*/false);
    } else {
        pending_.push_back(std::move(p));
    }
}

void
StorageChannel::dispatch(EventQueue &eq, Pending p, bool queued)
{
    ++in_flight_;
    Tick start = eq.now();
    // Wait stats cover only requests that actually sat in the pending
    // queue; sync completions dispatched straight into a free slot
    // would otherwise skew the mean queue wait toward zero.
    if (queued) {
        Tick wait = start - p.submit;
        ++queued_;
        total_queue_wait_ += wait;
        max_queue_wait_ = std::max(max_queue_wait_, wait);
    }

    // The staged service owns its own event scheduling; the channel
    // only hears back through this wrapper, which frees the slot and
    // pulls the next pending request forward at the completion tick.
    auto service = std::move(p.service);
    service(eq, start,
            [this, &eq, start, done = std::move(p.done)](Tick finish,
                                                         IoStatus status) {
                onComplete(eq, finish, start);
                if (done)
                    done(finish, status);
            });
}

std::size_t
StorageChannel::pickNext() const
{
    // Effective deadline: 0 means "none", which must sort last under
    // Deadline and break priority ties last under Priority.
    auto effective = [](Tick deadline) {
        return deadline == 0 ? ~Tick{0} : deadline;
    };
    // Strict "is a better pick": iterating front-to-back and replacing
    // only on a strict win makes the earliest arrival (lowest seq) the
    // final tie-break for free.
    auto better = [&](const Pending &a, const Pending &b) {
        if (policy_ == DispatchPolicy::Priority) {
            if (a.tag.priority != b.tag.priority)
                return a.tag.priority > b.tag.priority;
            return effective(a.tag.deadline) < effective(b.tag.deadline);
        }
        if (effective(a.tag.deadline) != effective(b.tag.deadline))
            return effective(a.tag.deadline) < effective(b.tag.deadline);
        return a.tag.priority > b.tag.priority;
    };
    std::size_t best = 0;
    for (std::size_t i = 1; i < pending_.size(); ++i)
        if (better(pending_[i], pending_[best]))
            best = i;
    return best;
}

void
StorageChannel::onComplete(EventQueue &eq, Tick finish, Tick start)
{
    SS_ASSERT(in_flight_ > 0, "channel '", name_,
              "' completed with nothing in flight");
    --in_flight_;
    ++completed_;
    total_service_ += finish - start;
    if (!pending_.empty() && in_flight_ < depth_) {
        // Fifo keeps the exact historical pop_front; the other
        // policies select by tag (and degenerate to the same choice
        // when every tag is default).
        std::size_t idx =
            policy_ == DispatchPolicy::Fifo ? 0 : pickNext();
        Pending next = std::move(pending_[idx]);
        pending_.erase(pending_.begin() +
                       static_cast<std::ptrdiff_t>(idx));
        dispatch(eq, std::move(next), /*queued=*/true);
    }
}

void
StorageChannel::reset()
{
    SS_ASSERT(idle(), "channel '", name_,
              "' reset with requests outstanding");
    submitted_ = 0;
    completed_ = 0;
    peak_outstanding_ = 0;
    queued_ = 0;
    total_queue_wait_ = 0;
    max_queue_wait_ = 0;
    retries_ = 0;
    timeouts_ = 0;
    abandoned_ = 0;
    shed_admission_ = 0;
    total_service_ = 0;
}

Tick
drainOne(EventQueue &eq, Tick arrival,
         const std::function<void(EventQueue &, IoCompletion)> &submit,
         std::string_view component, std::uint64_t request_id)
{
    SS_ASSERT(eq.pending() == 0,
              "blocking adapter needs an empty event queue");
    eq.reset();
    Tick result = 0;
    IoStatus status = IoStatus::Ok;
    bool completed = false;
    eq.schedule(arrival, [&] {
        submit(eq, [&](Tick finish, IoStatus s) {
            result = finish;
            status = s;
            completed = true;
        });
    });
    eq.run();
    SS_ASSERT(completed, "blocking adapter drained without a completion");
    if (status != IoStatus::Ok) {
        // A blocking caller would read whatever is in its buffer; die
        // loudly instead of returning stale bytes.
        SS_FATAL("blocking read on '", component, "' failed with status ",
                 ioStatusName(status), " (request ", request_id,
                 "): recovery requires the async submit path");
    }
    return result;
}

} // namespace smartsage::sim
