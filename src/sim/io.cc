#include "io.hh"

#include <algorithm>
#include <utility>

#include "logging.hh"

namespace smartsage::sim
{

StorageChannel::StorageChannel(std::string name, unsigned depth)
    : name_(std::move(name)), depth_(depth)
{
    SS_ASSERT(depth >= 1, "channel '", name_,
              "' needs a queue depth of at least 1");
}

void
StorageChannel::submit(EventQueue &eq, Service service, IoCompletion done)
{
    // Wrap the synchronous service as a one-event staged service: the
    // finish tick is known at dispatch; the slot is released (and the
    // completion delivered) by an event at that tick.
    submitStaged(
        eq,
        [service = std::move(service)](EventQueue &q, Tick start,
                                       IoCompletion complete) {
            Tick finish = service(start);
            SS_ASSERT(finish >= start, "service finished at ", finish,
                      " before it started at ", start);
            q.schedule(finish, [complete = std::move(complete), finish] {
                complete(finish);
            });
        },
        std::move(done));
}

void
StorageChannel::submitStaged(EventQueue &eq, StagedService service,
                             IoCompletion done)
{
    ++submitted_;
    peak_outstanding_ = std::max<std::uint64_t>(
        peak_outstanding_, in_flight_ + pending_.size() + 1);
    Pending p{std::move(service), std::move(done), eq.now()};
    if (in_flight_ < depth_) {
        dispatch(eq, std::move(p), /*queued=*/false);
    } else {
        pending_.push_back(std::move(p));
    }
}

void
StorageChannel::dispatch(EventQueue &eq, Pending p, bool queued)
{
    ++in_flight_;
    Tick start = eq.now();
    // Wait stats cover only requests that actually sat in the pending
    // queue; sync completions dispatched straight into a free slot
    // would otherwise skew the mean queue wait toward zero.
    if (queued) {
        Tick wait = start - p.submit;
        ++queued_;
        total_queue_wait_ += wait;
        max_queue_wait_ = std::max(max_queue_wait_, wait);
    }

    // The staged service owns its own event scheduling; the channel
    // only hears back through this wrapper, which frees the slot and
    // pulls the next pending request forward at the completion tick.
    auto service = std::move(p.service);
    service(eq, start,
            [this, &eq, done = std::move(p.done)](Tick finish) {
                onComplete(eq, finish);
                if (done)
                    done(finish);
            });
}

void
StorageChannel::onComplete(EventQueue &eq, Tick finish)
{
    SS_ASSERT(in_flight_ > 0, "channel '", name_,
              "' completed with nothing in flight");
    (void)finish;
    --in_flight_;
    ++completed_;
    if (!pending_.empty() && in_flight_ < depth_) {
        Pending next = std::move(pending_.front());
        pending_.pop_front();
        dispatch(eq, std::move(next), /*queued=*/true);
    }
}

void
StorageChannel::reset()
{
    SS_ASSERT(idle(), "channel '", name_,
              "' reset with requests outstanding");
    submitted_ = 0;
    completed_ = 0;
    peak_outstanding_ = 0;
    queued_ = 0;
    total_queue_wait_ = 0;
    max_queue_wait_ = 0;
}

Tick
drainOne(EventQueue &eq, Tick arrival,
         const std::function<void(EventQueue &, IoCompletion)> &submit)
{
    SS_ASSERT(eq.pending() == 0,
              "blocking adapter needs an empty event queue");
    eq.reset();
    Tick result = 0;
    bool completed = false;
    eq.schedule(arrival, [&] {
        submit(eq, [&](Tick finish) {
            result = finish;
            completed = true;
        });
    });
    eq.run();
    SS_ASSERT(completed, "blocking adapter drained without a completion");
    return result;
}

} // namespace smartsage::sim
