/**
 * @file
 * Deterministic fault injection and recovery policy.
 *
 * A FaultPlan is a *schedule*, not a dice roll at construction: every
 * component that consults it forks a private RNG stream keyed by the
 * plan seed and the component's name, so the same plan produces the
 * same faults at the same service ticks regardless of how many worker
 * threads run the surrounding experiment sweep. A plan with every rate
 * at zero builds no injector at all — the fault-free request path is
 * byte-identical to a build that never heard of faults.
 *
 * The RetryPolicy is the request-side half: how many service attempts a
 * StorageChannel makes before abandoning a request, how long it backs
 * off between attempts (exponential, with jitter drawn from the
 * request's own RNG fork), and an optional end-to-end deadline after
 * which the request is timed out rather than retried.
 */

#ifndef SMARTSAGE_SIM_FAULT_HH
#define SMARTSAGE_SIM_FAULT_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "random.hh"
#include "types.hh"

namespace smartsage::sim
{

/**
 * Injectable-fault schedule shared by every storage component.
 *
 * Rates are per-service-attempt probabilities in [0, 1]; outage
 * windows are periodic per-shard down intervals. All defaults are
 * zero/off so a default-constructed plan is inert.
 */
struct FaultPlan
{
    /** Master seed; each component forks its own stream from it. */
    std::uint64_t seed = 0xfa0175eedULL;

    /** Probability a host-I/O service attempt fails transiently. */
    double read_error_rate = 0.0;
    /** Probability a host-I/O service attempt runs slow. */
    double slow_rate = 0.0;
    /** Service-time multiplier applied to a slow attempt (>= 1). */
    double slow_multiplier = 8.0;

    /** Probability a flash page sense needs an ECC retry. */
    double ecc_rate = 0.0;
    /** Extra die occupancy per ECC retry. */
    Tick ecc_retry = us(60);

    /** Fraction of each outage period a shard spends down, in [0, 1). */
    double shard_outage_rate = 0.0;
    /** Outage window period. */
    Tick outage_period = ms(50);
    /** Latency multiplier for reads rerouted around a down shard. */
    double degraded_penalty = 4.0;

    /**
     * Recovery-experiment crash point: the training run is killed
     * while batch index kill_batch (0-based) is in flight, so batches
     * [0, kill_batch) have completed and any checkpoint due at or
     * before that cursor has been written. 0 disables. Deliberately
     * not part of enabled(): a kill schedule alone injects no storage
     * faults, so it must not perturb fault-gated serving metrics.
     */
    std::uint64_t kill_batch = 0;

    /** Host-path injector needed (transient errors or slow service). */
    bool
    injectsHostFaults() const
    {
        return read_error_rate > 0.0 || slow_rate > 0.0;
    }

    /** Flash-path injector needed. */
    bool injectsEcc() const { return ecc_rate > 0.0; }

    /** Shard outage schedule needed. */
    bool injectsOutages() const { return shard_outage_rate > 0.0; }

    /** Any fault source active. */
    bool
    enabled() const
    {
        return injectsHostFaults() || injectsEcc() || injectsOutages();
    }

    /** Crash schedule active (recovery experiments). */
    bool wantsKill() const { return kill_batch != 0; }
};

/**
 * Retry/timeout policy for a StorageChannel's fallible submissions.
 *
 * max_attempts == 1 means no retries; timeout == 0 means no deadline.
 * Backoff before attempt n (n >= 2) is
 * min(backoff_cap, backoff_base << (n - 2)) plus a uniform jitter in
 * [0, jitter * backoff) drawn from the request's RNG fork. With
 * jitter == 0 no random draw is made, so zero-jitter goldens are
 * stream-exact.
 */
struct RetryPolicy
{
    unsigned max_attempts = 3; //!< total service attempts (>= 1)
    Tick backoff_base = us(100);
    Tick backoff_cap = ms(10);
    double jitter = 0.5;
    Tick timeout = 0; //!< end-to-end deadline; 0 disables

    /** Deadline enforcement requested. */
    bool wantsDeadline() const { return timeout != 0; }
};

/** Shortest service granularity a deadline may meaningfully cover. */
constexpr Tick minServiceTick = us(1);

/**
 * Apply one `fault.`-namespace knob (namespace already stripped).
 * @return false if the key is unknown
 */
bool applyKnob(FaultPlan &plan, std::string_view key, double value);

/**
 * Apply one `retry.`-namespace knob (namespace already stripped).
 * @return false if the key is unknown
 */
bool applyKnob(RetryPolicy &policy, std::string_view key, double value);

/** Fatal on impossible fault-plan values (rates outside [0,1], ...). */
void validate(const FaultPlan &plan);

/** Fatal on impossible retry-policy values (zero attempts, ...). */
void validate(const RetryPolicy &policy);

/**
 * Per-component fault source: a FaultPlan view with a private RNG
 * stream forked from the plan seed and the component name, so the
 * draw sequence is independent of every other component's.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultPlan &plan, std::string_view component);

    /** Does this service attempt fail transiently? */
    bool drawReadError();

    /**
     * Stretch a service interval if this attempt draws a slowdown.
     * @return the (possibly later) finish tick
     */
    Tick slowed(Tick start, Tick finish);

    /** Does this page sense need an ECC retry? */
    bool drawEccRetry();

    const FaultPlan &plan() const { return plan_; }

    /** Restore the initial draw stream (experiment re-run). */
    void reset();

  private:
    FaultPlan plan_;
    Rng initial_;
    Rng rng_;
};

/**
 * Deterministic periodic outage windows for a sharded store.
 *
 * Each shard is down for shard_outage_rate * outage_period ticks out
 * of every outage_period, with a per-shard phase offset derived from
 * the plan seed — so shards fail at staggered times and membership is
 * a pure function of (shard, tick). No mutable state, nothing to
 * reset.
 */
class OutageSchedule
{
  public:
    OutageSchedule(const FaultPlan &plan, unsigned shards);

    /** Is @p shard inside an outage window at @p tick? */
    bool down(unsigned shard, Tick tick) const;

  private:
    Tick period_;
    Tick down_ticks_;
    std::vector<Tick> phase_;
};

} // namespace smartsage::sim

#endif // SMARTSAGE_SIM_FAULT_HH
