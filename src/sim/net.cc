#include "net.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace smartsage::sim
{

bool
applyKnob(NetConfig &config, std::string_view key, double value)
{
    if (key == "bandwidth_gbps") {
        if (!(value > 0))
            SS_FATAL("net.bandwidth_gbps must be > 0, got ", value);
        config.bandwidth_gbps = value;
    } else if (key == "latency_us") {
        if (value < 0)
            SS_FATAL("net.latency_us must be >= 0, got ", value);
        config.latency = us(value);
    } else if (key == "queue_depth") {
        if (value != std::floor(value) || value < 1)
            SS_FATAL("net.queue_depth must be an integer >= 1, got ",
                     value);
        config.queue_depth = static_cast<unsigned>(value);
    } else {
        return false;
    }
    return true;
}

NetworkChannel::NetworkChannel(const NetConfig &config)
    : config_(config), lane_free_(config.queue_depth, 0)
{
    SS_ASSERT(config.queue_depth >= 1, "network channel needs a lane");
    SS_ASSERT(config.bandwidth_gbps > 0, "network needs bandwidth");
}

Tick
NetworkChannel::serviceTransfer(Tick start, std::uint64_t bytes)
{
    auto lane = std::min_element(lane_free_.begin(), lane_free_.end());
    Tick begin = std::max(start, *lane);
    // transferTime speaks decimal gigaBYTES per second.
    Tick finish = begin + config_.latency +
                  transferTime(bytes, config_.bandwidth_gbps / 8.0);
    *lane = finish;
    ++transfers_;
    bytes_ += bytes;
    return finish;
}

void
NetworkChannel::reset()
{
    std::fill(lane_free_.begin(), lane_free_.end(), 0);
    transfers_ = 0;
    bytes_ = 0;
}

} // namespace smartsage::sim
