/**
 * @file
 * Byte-exact serialization primitives for checkpointing.
 *
 * Everything here is deliberately platform-pinned: integers are
 * little-endian regardless of host order, floats travel as their IEEE
 * bit patterns, and string/blob lengths are explicit u64 prefixes. A
 * payload produced on one run decodes bit-identically on any other,
 * which is what the suspend/resume bit-identity invariant rests on.
 *
 * Malformed input (truncation, bad magic, CRC mismatch) is neither a
 * simulator bug nor a config error, so it raises SerializeError rather
 * than going through SS_PANIC/SS_FATAL — callers such as the checkpoint
 * loader and ckpt_tool catch it and report a recoverable failure.
 */

#ifndef SMARTSAGE_SIM_SERIALIZE_HH
#define SMARTSAGE_SIM_SERIALIZE_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace smartsage::sim
{

/** Recoverable decode failure: truncated, corrupt, or wrong-version. */
class SerializeError : public std::runtime_error
{
  public:
    explicit SerializeError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Append-only little-endian encoder over a growable byte buffer. */
class ByteWriter
{
  public:
    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    /** IEEE-754 bit pattern, so the value round-trips bit-exactly. */
    void f32(float v);
    void f64(double v);
    /** u64 length prefix + raw bytes. */
    void str(std::string_view v);
    void bytes(const void *data, std::size_t size);

    const std::vector<std::uint8_t> &buffer() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked decoder; throws SerializeError past the end. */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }
    explicit ByteReader(const std::vector<std::uint8_t> &buf)
        : ByteReader(buf.data(), buf.size())
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    float f32();
    double f64();
    std::string str();
    void bytes(void *out, std::size_t size);

    std::size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

  private:
    const std::uint8_t *need(std::size_t n);

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** CRC-32 (IEEE 802.3 polynomial, reflected). crc32("123456789") ==
 *  0xCBF43926. */
std::uint32_t crc32(const void *data, std::size_t size);
std::uint32_t crc32(const std::vector<std::uint8_t> &buf);

/** FNV-1a 64-bit content hash; used for content-addressed chunk ids. */
std::uint64_t fnv1a64(const void *data, std::size_t size);

/** Fixed-width lowercase hex rendering of a 64-bit hash. */
std::string hashHex(std::uint64_t hash);

/**
 * Durably replace @p path with @p payload: write to a sibling temp
 * file, then rename over the target so readers never observe a torn
 * file. Throws SerializeError on I/O failure.
 */
void atomicWriteFile(const std::string &path,
                     const std::vector<std::uint8_t> &payload);

/** Read a whole file; throws SerializeError if it cannot be opened. */
std::vector<std::uint8_t> readFile(const std::string &path);

} // namespace smartsage::sim

#endif // SMARTSAGE_SIM_SERIALIZE_HH
