/**
 * @file
 * Generic set-associative LRU cache over 64-bit keys.
 *
 * Shared by the host LLC model, the OS page-cache model, and the
 * direct-I/O scratchpad: all three are "capacity / line / ways + LRU"
 * structures that only differ in line size and hit/miss costs, which
 * the wrappers supply.
 */

#ifndef SMARTSAGE_SIM_SET_ASSOC_HH
#define SMARTSAGE_SIM_SET_ASSOC_HH

#include <cstdint>
#include <vector>

#include "logging.hh"

namespace smartsage::sim
{

/** Set-associative LRU directory keyed by line number. */
class SetAssocLru
{
  public:
    /**
     * @param capacity_bytes total capacity
     * @param line_bytes     line (block/page) size
     * @param ways           associativity; set count is rounded down to
     *                       a power of two
     */
    SetAssocLru(std::uint64_t capacity_bytes, std::uint64_t line_bytes,
                unsigned ways)
        : line_bytes_(line_bytes), ways_(ways)
    {
        SS_ASSERT(line_bytes > 0 && ways > 0, "bad cache shape");
        std::uint64_t lines = capacity_bytes / line_bytes;
        SS_ASSERT(lines >= ways, "cache smaller than one set");
        std::uint64_t want = lines / ways;
        sets_ = 1;
        while (sets_ * 2 <= want)
            sets_ *= 2;
        table_.assign(sets_ * ways_, Way{});
    }

    /** Line number covering byte address @p addr. */
    std::uint64_t lineOf(std::uint64_t addr) const { return addr / line_bytes_; }

    /** Touch line @p line; install on miss. @return true on hit. */
    bool
    access(std::uint64_t line)
    {
        if (lookup(line))
            return true;
        insert(line);
        return false;
    }

    /** Probe + recency update without filling. @return true on hit. */
    bool
    lookup(std::uint64_t line)
    {
        Way *base = setBase(line);
        for (unsigned w = 0; w < ways_; ++w) {
            if (base[w].valid && base[w].line == line) {
                base[w].lru = ++stamp_;
                ++hits_;
                return true;
            }
        }
        ++misses_;
        return false;
    }

    /** Fill line @p line, evicting the set's LRU way if full. */
    void
    insert(std::uint64_t line)
    {
        Way *base = setBase(line);
        Way *victim = base;
        for (unsigned w = 0; w < ways_; ++w) {
            if (!base[w].valid) {
                victim = &base[w];
                break;
            }
            if (base[w].lru < victim->lru)
                victim = &base[w];
        }
        victim->valid = true;
        victim->line = line;
        victim->lru = ++stamp_;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    double
    hitRate() const
    {
        std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_) / total : 0.0;
    }

    double missRate() const { return 1.0 - hitRate(); }

    std::uint64_t lineBytes() const { return line_bytes_; }
    std::uint64_t numSets() const { return sets_; }
    unsigned ways() const { return ways_; }

    /** Drop contents and counters. */
    void
    reset()
    {
        table_.assign(sets_ * ways_, Way{});
        stamp_ = 0;
        hits_ = 0;
        misses_ = 0;
    }

  private:
    struct Way
    {
        std::uint64_t line = ~std::uint64_t(0);
        std::uint64_t lru = 0;
        bool valid = false;
    };

    std::uint64_t line_bytes_;
    unsigned ways_;
    std::uint64_t sets_ = 1;
    std::vector<Way> table_;
    std::uint64_t stamp_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;

    Way *
    setBase(std::uint64_t line)
    {
        std::uint64_t set =
            ((line * 0x9e3779b97f4a7c15ULL) >> 17) & (sets_ - 1);
        return table_.data() + set * ways_;
    }
};

} // namespace smartsage::sim

#endif // SMARTSAGE_SIM_SET_ASSOC_HH
