#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "logging.hh"

namespace smartsage::sim
{

void
Distribution::sample(double v)
{
    samples_.push_back(v);
    sorted_ = false;
    sum_ += v;
    sum_sq_ += v * v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

double
Distribution::mean() const
{
    if (samples_.empty())
        return 0.0;
    return sum_ / static_cast<double>(samples_.size());
}

double
Distribution::stddev() const
{
    std::size_t n = samples_.size();
    if (n < 2)
        return 0.0;
    double m = mean();
    double var = (sum_sq_ - static_cast<double>(n) * m * m) /
                 static_cast<double>(n - 1);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

namespace
{

/** Sorted-sample percentile interpolation, shared with
 *  LatencyHistogram's exact small-N path. */
double
sortedPercentile(const std::vector<double> &sorted, double p)
{
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

} // namespace

double
Distribution::percentile(double p) const
{
    SS_ASSERT(p >= 0.0 && p <= 100.0, "percentile ", p, " out of range");
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    return sortedPercentile(samples_, p);
}

void
Distribution::reset()
{
    samples_.clear();
    sorted_ = true;
    sum_ = 0.0;
    sum_sq_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

LatencyHistogram::LatencyHistogram()
{
    // Bucket 0 holds [0, 1); each power of two above splits into
    // kSubBuckets linear slices. 64 decades cover every double a Tick
    // conversion can produce.
    buckets_.assign(1 + 64 * kSubBuckets, 0);
}

std::size_t
LatencyHistogram::bucketOf(double v)
{
    if (v < 1.0)
        return 0;
    int exp = 0;
    double frac = std::frexp(v, &exp); // v = frac * 2^exp, frac in [0.5,1)
    // Normalize to v = m * 2^(exp-1) with m in [1, 2).
    double m = frac * 2.0;
    int decade = exp - 1;
    auto sub = static_cast<std::size_t>((m - 1.0) * kSubBuckets);
    sub = std::min<std::size_t>(sub, kSubBuckets - 1);
    std::size_t index =
        1 + static_cast<std::size_t>(decade) * kSubBuckets + sub;
    return std::min(index, static_cast<std::size_t>(64 * kSubBuckets));
}

double
LatencyHistogram::bucketLo(std::size_t index)
{
    if (index == 0)
        return 0.0;
    std::size_t decade = (index - 1) / kSubBuckets;
    std::size_t sub = (index - 1) % kSubBuckets;
    return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets,
                      static_cast<int>(decade));
}

void
LatencyHistogram::record(double v)
{
    SS_ASSERT(std::isfinite(v) && v >= 0.0,
              "latency sample must be finite and non-negative, got ", v);
    ++buckets_[bucketOf(v)];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    if (exact_ok_) {
        if (exact_.size() < kExactCap) {
            exact_.push_back(v);
            exact_sorted_ = false;
        } else {
            // Past the cap the exact set no longer covers the
            // population; drop it and rely on the buckets.
            exact_ok_ = false;
            exact_.clear();
            exact_.shrink_to_fit();
        }
    }
}

double
LatencyHistogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
LatencyHistogram::min() const
{
    return count_ ? min_ : 0.0;
}

double
LatencyHistogram::percentile(double p) const
{
    SS_ASSERT(p >= 0.0 && p <= 100.0, "percentile ", p, " out of range");
    if (count_ == 0)
        return 0.0;
    if (exact_ok_) {
        if (!exact_sorted_) {
            std::sort(exact_.begin(), exact_.end());
            exact_sorted_ = true;
        }
        return sortedPercentile(exact_, p);
    }

    // Log-bucket path: find the bucket holding the target rank and
    // interpolate linearly across its width.
    double rank = p / 100.0 * static_cast<double>(count_ - 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        double first = static_cast<double>(seen);
        seen += buckets_[i];
        if (rank < static_cast<double>(seen)) {
            double lo = bucketLo(i);
            double hi = bucketLo(i + 1);
            double frac = (rank - first) / static_cast<double>(buckets_[i]);
            double v = lo + (hi - lo) * frac;
            return std::clamp(v, min_, max_);
        }
    }
    return max_;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);

    if (exact_ok_ && other.exact_ok_ &&
        exact_.size() + other.exact_.size() <= kExactCap) {
        exact_.insert(exact_.end(), other.exact_.begin(),
                      other.exact_.end());
        exact_sorted_ = false;
    } else {
        exact_ok_ = false;
        exact_.clear();
        exact_.shrink_to_fit();
    }
}

void
LatencyHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    exact_.clear();
    exact_sorted_ = true;
    exact_ok_ = true;
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = 0.0;
}

void
StatGroup::addScalar(const std::string &stat_name, const Scalar *s,
                     std::string desc)
{
    scalars_.push_back({stat_name, s, std::move(desc)});
}

void
StatGroup::addDistribution(const std::string &stat_name,
                           const Distribution *d, std::string desc)
{
    dists_.push_back({stat_name, d, std::move(desc)});
}

void
StatGroup::dump(std::ostream &os) const
{
    os << "---------- Begin Stats: " << name_ << " ----------\n";
    for (const auto &e : scalars_) {
        os << std::left << std::setw(44) << (name_ + "." + e.name)
           << std::setw(16) << e.stat->value();
        if (!e.desc.empty())
            os << " # " << e.desc;
        os << "\n";
    }
    for (const auto &e : dists_) {
        const auto &d = *e.stat;
        std::string base = name_ + "." + e.name;
        os << std::left << std::setw(44) << (base + "::count")
           << std::setw(16) << d.count() << "\n";
        os << std::left << std::setw(44) << (base + "::mean")
           << std::setw(16) << d.mean() << "\n";
        os << std::left << std::setw(44) << (base + "::stdev")
           << std::setw(16) << d.stddev() << "\n";
        if (d.count() > 0) {
            os << std::left << std::setw(44) << (base + "::min")
               << std::setw(16) << d.min() << "\n";
            os << std::left << std::setw(44) << (base + "::max")
               << std::setw(16) << d.max() << "\n";
            os << std::left << std::setw(44) << (base + "::p99")
               << std::setw(16) << d.percentile(99.0);
            if (!e.desc.empty())
                os << " # " << e.desc;
            os << "\n";
        }
    }
    os << "---------- End Stats: " << name_ << " ----------\n";
}

} // namespace smartsage::sim
