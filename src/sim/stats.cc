#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "logging.hh"

namespace smartsage::sim
{

void
Distribution::sample(double v)
{
    samples_.push_back(v);
    sorted_ = false;
    sum_ += v;
    sum_sq_ += v * v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

double
Distribution::mean() const
{
    if (samples_.empty())
        return 0.0;
    return sum_ / static_cast<double>(samples_.size());
}

double
Distribution::stddev() const
{
    std::size_t n = samples_.size();
    if (n < 2)
        return 0.0;
    double m = mean();
    double var = (sum_sq_ - static_cast<double>(n) * m * m) /
                 static_cast<double>(n - 1);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

double
Distribution::percentile(double p) const
{
    SS_ASSERT(p >= 0.0 && p <= 100.0, "percentile ", p, " out of range");
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void
Distribution::reset()
{
    samples_.clear();
    sorted_ = true;
    sum_ = 0.0;
    sum_sq_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

void
StatGroup::addScalar(const std::string &stat_name, const Scalar *s,
                     std::string desc)
{
    scalars_.push_back({stat_name, s, std::move(desc)});
}

void
StatGroup::addDistribution(const std::string &stat_name,
                           const Distribution *d, std::string desc)
{
    dists_.push_back({stat_name, d, std::move(desc)});
}

void
StatGroup::dump(std::ostream &os) const
{
    os << "---------- Begin Stats: " << name_ << " ----------\n";
    for (const auto &e : scalars_) {
        os << std::left << std::setw(44) << (name_ + "." + e.name)
           << std::setw(16) << e.stat->value();
        if (!e.desc.empty())
            os << " # " << e.desc;
        os << "\n";
    }
    for (const auto &e : dists_) {
        const auto &d = *e.stat;
        std::string base = name_ + "." + e.name;
        os << std::left << std::setw(44) << (base + "::count")
           << std::setw(16) << d.count() << "\n";
        os << std::left << std::setw(44) << (base + "::mean")
           << std::setw(16) << d.mean() << "\n";
        os << std::left << std::setw(44) << (base + "::stdev")
           << std::setw(16) << d.stddev() << "\n";
        if (d.count() > 0) {
            os << std::left << std::setw(44) << (base + "::min")
               << std::setw(16) << d.min() << "\n";
            os << std::left << std::setw(44) << (base + "::max")
               << std::setw(16) << d.max() << "\n";
            os << std::left << std::setw(44) << (base + "::p99")
               << std::setw(16) << d.percentile(99.0);
            if (!e.desc.empty())
                os << " # " << e.desc;
            os << "\n";
        }
    }
    os << "---------- End Stats: " << name_ << " ----------\n";
}

} // namespace smartsage::sim
