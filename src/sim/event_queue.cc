#include "event_queue.hh"

#include "logging.hh"

namespace smartsage::sim
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    SS_ASSERT(when >= now_, "scheduling at ", when, " before now ", now_);
    heap_.push(Event{when, next_seq_++, std::move(cb)});
}

void
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    schedule(now_ + delay, std::move(cb));
}

Tick
EventQueue::run()
{
    return runUntil(maxTick);
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        // Copy out before pop: the callback may schedule more events.
        Event ev = heap_.top();
        heap_.pop();
        now_ = ev.when;
        ev.cb();
    }
    return now_;
}

} // namespace smartsage::sim
