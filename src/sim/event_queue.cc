#include "event_queue.hh"

#include "logging.hh"

namespace smartsage::sim
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        SS_PANIC("EventQueue::schedule: scheduling at tick ", when,
                 ", which is in the past (now = ", now_,
                 ") — events must never rewind simulated time");
    heap_.push(Event{when, next_seq_++, std::move(cb)});
}

void
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    schedule(now_ + delay, std::move(cb));
}

Tick
EventQueue::run()
{
    return runUntil(maxTick);
}

void
EventQueue::reset()
{
    while (!heap_.empty())
        heap_.pop();
    now_ = 0;
    next_seq_ = 0;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        // Copy out before pop: the callback may schedule more events.
        Event ev = heap_.top();
        heap_.pop();
        now_ = ev.when;
        ev.cb();
    }
    return now_;
}

} // namespace smartsage::sim
