/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user supplied an impossible configuration; exits(1).
 * warn()   — something works but is suspicious.
 * inform() — plain status output.
 */

#ifndef SMARTSAGE_SIM_LOGGING_HH
#define SMARTSAGE_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace smartsage::sim
{

/** Internal: emit a tagged message and optionally terminate. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Build a message from stream-style arguments. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace smartsage::sim

/** Abort: simulator-internal invariant violation. */
#define SS_PANIC(...)                                                       \
    ::smartsage::sim::panicImpl(                                            \
        __FILE__, __LINE__, ::smartsage::sim::formatMessage(__VA_ARGS__))

/** Exit(1): user configuration error. */
#define SS_FATAL(...)                                                       \
    ::smartsage::sim::fatalImpl(                                            \
        __FILE__, __LINE__, ::smartsage::sim::formatMessage(__VA_ARGS__))

/** Non-fatal warning. */
#define SS_WARN(...)                                                        \
    ::smartsage::sim::warnImpl(::smartsage::sim::formatMessage(__VA_ARGS__))

/** Status message. */
#define SS_INFORM(...)                                                      \
    ::smartsage::sim::informImpl(                                           \
        ::smartsage::sim::formatMessage(__VA_ARGS__))

/** panic() if a condition does not hold. */
#define SS_ASSERT(cond, ...)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            SS_PANIC("assertion '", #cond, "' failed: ",                    \
                     ::smartsage::sim::formatMessage(__VA_ARGS__));         \
        }                                                                   \
    } while (0)

#endif // SMARTSAGE_SIM_LOGGING_HH
