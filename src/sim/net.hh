/**
 * @file
 * NetworkChannel: a bounded inter-node link service station.
 *
 * A small generalization of the StorageChannel idea (io.hh) to
 * point-to-point host interconnect: a transfer occupies one of
 * `queue_depth` link lanes for its serialization time plus a fixed
 * one-way latency, and lanes are busy-until timelines, so queueing
 * delay emerges when more transfers are in flight than the link can
 * carry. The partitioned scale-out backend (host/partitioned_store.hh)
 * models one channel per remote node; the `net.*` knob namespace
 * (bandwidth_gbps, latency_us, queue_depth) sweeps the link.
 *
 * Timing is synchronous busy-until math — serviceTransfer(start,
 * bytes) returns the delivery tick — matching how the edge stores
 * compose device timelines inside serviceGather.
 */

#ifndef SMARTSAGE_SIM_NET_HH
#define SMARTSAGE_SIM_NET_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "types.hh"

namespace smartsage::sim
{

/** One point-to-point link's parameters (`net.*` knobs). */
struct NetConfig
{
    /** Link bandwidth in gigabits per second (network convention;
     *  25 Gbps = 3.125 decimal GB/s). */
    double bandwidth_gbps = 25.0;
    /** One-way message latency, paid by the request and the reply. */
    Tick latency = us(2);
    /** Transfers in flight per link before queueing. */
    unsigned queue_depth = 16;
};

/**
 * Apply one `net.`-namespace knob (namespace already stripped):
 * `bandwidth_gbps` (> 0), `latency_us` (>= 0), or `queue_depth`
 * (integer >= 1). Fatal on out-of-range values.
 * @return false if the key is unknown
 */
bool applyKnob(NetConfig &config, std::string_view key, double value);

/** Busy-until model of one point-to-point link. */
class NetworkChannel
{
  public:
    explicit NetworkChannel(const NetConfig &config);

    const NetConfig &config() const { return config_; }

    /**
     * Deliver @p bytes over the link, earliest-free lane first: the
     * transfer begins at max(@p start, lane free), and lands after the
     * one-way latency plus serialization time. @return delivery tick
     */
    Tick serviceTransfer(Tick start, std::uint64_t bytes);

    /** One-way latency alone (tiny control messages that do not
     *  occupy a lane). */
    Tick messageLatency() const { return config_.latency; }

    std::uint64_t transfers() const { return transfers_; }
    std::uint64_t bytesMoved() const { return bytes_; }

    /** Fresh lane timelines and counters. */
    void reset();

  private:
    NetConfig config_;
    std::vector<Tick> lane_free_; //!< busy-until per lane
    std::uint64_t transfers_ = 0;
    std::uint64_t bytes_ = 0;
};

} // namespace smartsage::sim

#endif // SMARTSAGE_SIM_NET_HH
