/**
 * @file
 * Lightweight statistics package (gem5 Stats in spirit).
 *
 * Components own Scalar / Distribution members and register them with a
 * StatGroup; dump() renders a flat name=value report. Everything is
 * plain double arithmetic — no lazy formula graph — which is enough for
 * the experiment harnesses.
 */

#ifndef SMARTSAGE_SIM_STATS_HH
#define SMARTSAGE_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace smartsage::sim
{

/** A single accumulating counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Running distribution: count/sum/min/max/mean/stddev + percentiles. */
class Distribution
{
  public:
    /** Record one sample. */
    void sample(double v);

    std::uint64_t count() const { return static_cast<std::uint64_t>(samples_.size()); }
    double sum() const { return sum_; }
    double mean() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

    /**
     * Exact percentile via sorting the retained samples.
     * @param p in [0, 100]
     */
    double percentile(double p) const;

    void reset();

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Latency recorder built for request-level serving experiments:
 * log-bucketed (power-of-two buckets split into linear sub-buckets, so
 * the relative quantization error is bounded by 1/kSubBuckets),
 * mergeable across histograms, with *exact* percentiles while the
 * sample count is small (the first kExactCap samples are retained
 * verbatim and used whenever they cover the full population).
 *
 * Values must be non-negative; units are the caller's choice
 * (microseconds throughout the serving harness).
 */
class LatencyHistogram
{
  public:
    /** Samples retained verbatim for exact small-N percentiles. */
    static constexpr std::size_t kExactCap = 512;
    /** Linear sub-buckets per power-of-two decade. */
    static constexpr unsigned kSubBuckets = 8;

    LatencyHistogram();

    /** Record one sample. @pre v >= 0 and finite */
    void record(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    double min() const;
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * Percentile in [0, 100]: exact (sorted-sample interpolation) while
     * every recorded sample is retained; log-bucket interpolation —
     * clamped to [min, max] — beyond that.
     */
    double percentile(double p) const;

    /** Fold @p other into this histogram. */
    void merge(const LatencyHistogram &other);

    /** True while percentile() is exact (all samples retained). */
    bool exact() const { return exact_ok_; }

    void reset();

  private:
    static std::size_t bucketOf(double v);
    static double bucketLo(std::size_t index);

    std::vector<std::uint64_t> buckets_;
    mutable std::vector<double> exact_; //!< sorted lazily
    mutable bool exact_sorted_ = true;
    bool exact_ok_ = true;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = 0.0;
};

/** Named stat registry for one component (or a whole system). */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a scalar under @p stat_name with a description. */
    void addScalar(const std::string &stat_name, const Scalar *s,
                   std::string desc = "");

    /** Register a distribution under @p stat_name. */
    void addDistribution(const std::string &stat_name,
                         const Distribution *d, std::string desc = "");

    /** Render all registered stats, gem5-stats-file style. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

  private:
    struct ScalarEntry
    {
        std::string name;
        const Scalar *stat;
        std::string desc;
    };
    struct DistEntry
    {
        std::string name;
        const Distribution *stat;
        std::string desc;
    };

    std::string name_;
    std::vector<ScalarEntry> scalars_;
    std::vector<DistEntry> dists_;
};

} // namespace smartsage::sim

#endif // SMARTSAGE_SIM_STATS_HH
