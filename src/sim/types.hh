/**
 * @file
 * Fundamental simulation types and unit helpers.
 *
 * All simulated time is kept in integer nanoseconds (Tick). Helper
 * constructors make call sites read like the timing tables in DESIGN.md
 * (e.g. `us(65)` for a 65 microsecond flash read).
 */

#ifndef SMARTSAGE_SIM_TYPES_HH
#define SMARTSAGE_SIM_TYPES_HH

#include <cstdint>

namespace smartsage::sim
{

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Largest representable tick, used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Construct a Tick from nanoseconds. */
constexpr Tick
ns(double v)
{
    return static_cast<Tick>(v);
}

/** Construct a Tick from microseconds. */
constexpr Tick
us(double v)
{
    return static_cast<Tick>(v * 1e3);
}

/** Construct a Tick from milliseconds. */
constexpr Tick
ms(double v)
{
    return static_cast<Tick>(v * 1e6);
}

/** Construct a Tick from seconds. */
constexpr Tick
sec(double v)
{
    return static_cast<Tick>(v * 1e9);
}

/** Convert a Tick to fractional seconds (for reporting). */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / 1e9;
}

/** Convert a Tick to fractional microseconds (for reporting). */
constexpr double
toMicros(Tick t)
{
    return static_cast<double>(t) / 1e3;
}

/** Byte-size helpers. */
constexpr std::uint64_t
KiB(std::uint64_t v)
{
    return v << 10;
}

constexpr std::uint64_t
MiB(std::uint64_t v)
{
    return v << 20;
}

constexpr std::uint64_t
GiB(std::uint64_t v)
{
    return v << 30;
}

/**
 * Time to move @p bytes through a link of @p gbps gigabytes-per-second
 * (decimal GB), rounded up to at least one nanosecond for non-empty
 * transfers.
 */
constexpr Tick
transferTime(std::uint64_t bytes, double gbps)
{
    if (bytes == 0)
        return 0;
    double t = static_cast<double>(bytes) / (gbps * 1e9) * 1e9;
    Tick whole = static_cast<Tick>(t);
    return whole == 0 ? 1 : whole;
}

/** Graph node identifier. 64-bit so billion-node configs stay addressable. */
using NodeId = std::uint64_t;

/** Index into an edge array. */
using EdgeIndex = std::uint64_t;

} // namespace smartsage::sim

#endif // SMARTSAGE_SIM_TYPES_HH
