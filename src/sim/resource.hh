/**
 * @file
 * Busy-until contention models.
 *
 * A Server hands out service intervals: a request arriving at tick `t`
 * with service time `s` starts at max(t, next_free) and completes at
 * start + s. This captures queueing delay under contention without
 * per-request event machinery, which keeps billion-access sweeps cheap.
 * All storage-stack components (flash dies, channels, embedded cores,
 * PCIe links) are built from these.
 */

#ifndef SMARTSAGE_SIM_RESOURCE_HH
#define SMARTSAGE_SIM_RESOURCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "types.hh"

namespace smartsage::sim
{

/** Completion record for a resource request. */
struct ServiceInterval
{
    Tick start;  //!< When service actually began (>= arrival).
    Tick finish; //!< When service completed.

    /** Queueing delay experienced before service began. */
    Tick
    waited(Tick arrival) const
    {
        return start - arrival;
    }
};

/**
 * A single FIFO server.
 *
 * Requests must be offered in a consistent order; the model serializes
 * them in call order, which matches the submission order of the queues
 * it stands in for (flash die, NVMe SQ, firmware core).
 */
class Server
{
  public:
    explicit Server(std::string name = "server");

    /** Serve a request arriving at @p arrival taking @p service time. */
    ServiceInterval request(Tick arrival, Tick service);

    /** Earliest tick at which a new request could start service. */
    Tick nextFree() const { return next_free_; }

    /** Total time spent actively serving. */
    Tick busyTime() const { return busy_; }

    /** Requests served so far. */
    std::uint64_t served() const { return served_; }

    /** Fraction of [0, horizon] spent busy. */
    double utilization(Tick horizon) const;

    /** Forget all history (fresh timeline). */
    void reset();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    Tick next_free_ = 0;
    Tick busy_ = 0;
    std::uint64_t served_ = 0;
};

/**
 * A pool of identical servers; each request is placed on the server that
 * can start it earliest (models channel/die-level parallelism and a
 * multi-core firmware complex).
 */
class ServerPool
{
  public:
    ServerPool(std::string name, unsigned count);

    /** Serve on the earliest-available member server. */
    ServiceInterval request(Tick arrival, Tick service);

    /**
     * Serve on a specific member (e.g. the die a page physically lives
     * on). @pre index < size()
     */
    ServiceInterval requestOn(unsigned index, Tick arrival, Tick service);

    unsigned size() const { return static_cast<unsigned>(servers_.size()); }
    const Server &server(unsigned i) const { return servers_[i]; }

    /** Aggregate busy time across members. */
    Tick totalBusyTime() const;

    /** Mean member utilization over [0, horizon]. */
    double utilization(Tick horizon) const;

    void reset();

  private:
    std::string name_;
    std::vector<Server> servers_;
};

/**
 * A serialized link with fixed propagation latency plus per-byte
 * occupancy (store-and-forward). Transfers contend for the wire; the
 * propagation latency is added after wire occupancy and does not occupy
 * the wire.
 */
class BandwidthLink
{
  public:
    /**
     * @param gbps    decimal gigabytes per second of wire bandwidth
     * @param latency fixed propagation latency per transfer
     */
    BandwidthLink(std::string name, double gbps, Tick latency);

    /** Move @p bytes starting no earlier than @p arrival. */
    ServiceInterval transfer(Tick arrival, std::uint64_t bytes);

    /** Total bytes moved. */
    std::uint64_t bytesMoved() const { return bytes_; }

    /** Achieved bandwidth over [0, horizon] as a fraction of peak. */
    double utilization(Tick horizon) const;

    double peakGBps() const { return gbps_; }

    void reset();

  private:
    Server wire_;
    double gbps_;
    Tick latency_;
    std::uint64_t bytes_ = 0;
};

} // namespace smartsage::sim

#endif // SMARTSAGE_SIM_RESOURCE_HH
