/**
 * @file
 * Minimal discrete-event simulation kernel.
 *
 * Components schedule callbacks at absolute ticks; run() drains events in
 * time order (FIFO among same-tick events). The pipeline simulator
 * (src/pipeline) is the main client; storage-stack components use the
 * lighter busy-until Resource model (resource.hh) instead of per-request
 * events, which keeps large sweeps fast.
 */

#ifndef SMARTSAGE_SIM_EVENT_QUEUE_HH
#define SMARTSAGE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "types.hh"

namespace smartsage::sim
{

/** Time-ordered event queue with a monotonic simulated clock. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /**
     * Schedule @p cb at absolute time @p when.
     * @pre when >= now() — scheduling in the past is a simulator bug
     * and panics with the offending ticks (enforced, not advisory).
     */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb @p delay ticks from now. */
    void scheduleAfter(Tick delay, Callback cb);

    /** Run until the queue is empty. @return final simulated time. */
    Tick run();

    /** Run until the queue is empty or time would exceed @p limit. */
    Tick runUntil(Tick limit);

    /**
     * Rewind the clock to 0 and drop any pending events. The blocking
     * submit-and-drain adapters (sim/io.hh) reuse one queue across
     * independent drains whose arrival ticks are not monotonic.
     */
    void reset();

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
};

} // namespace smartsage::sim

#endif // SMARTSAGE_SIM_EVENT_QUEUE_HH
