/**
 * @file
 * Epoch-stamped flat dedup table.
 *
 * A dense-key replacement for the per-batch `std::unordered_map` /
 * `unordered_set` the samplers used to allocate on every mini-batch:
 * one slot per possible key, where a slot is "present" only when its
 * stamp equals the table's current epoch. clear() is a single counter
 * bump, so the table is reusable across batches with zero steady-state
 * allocation and no O(n) reset — exactly the access pattern of frontier
 * dedup, where keys are node ids in [0, numNodes).
 */

#ifndef SMARTSAGE_SIM_FLAT_TABLE_HH
#define SMARTSAGE_SIM_FLAT_TABLE_HH

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "logging.hh"

namespace smartsage::sim
{

/**
 * Flat epoch-stamped map from dense keys in [0, capacity) to @p Value.
 *
 * Not a general hash map: lookup is a single array index, so it only
 * pays off when the key universe is bounded and addressable (node ids,
 * edge slots). All operations are O(1); clear() never touches the
 * slots.
 */
template <typename Value = std::uint32_t>
class FlatEpochTable
{
  public:
    FlatEpochTable() = default;

    /** Table accepting keys in [0, capacity). Keeps current contents
     *  logically cleared. Never shrinks. */
    void
    reserve(std::size_t capacity)
    {
        if (capacity > stamp_.size()) {
            stamp_.resize(capacity, 0);
            value_.resize(capacity);
        }
    }

    std::size_t capacity() const { return stamp_.size(); }

    /** Forget every entry in O(1). */
    void
    clear()
    {
        if (++epoch_ == 0) {
            // Stamp wrap-around: invalidate stale stamps the slow way
            // once every 2^32 clears.
            std::fill(stamp_.begin(), stamp_.end(), 0);
            epoch_ = 1;
        }
    }

    bool
    contains(std::uint64_t key) const
    {
        SS_ASSERT(key < stamp_.size(), "FlatEpochTable: key ", key,
                  " out of range");
        return stamp_[key] == epoch_;
    }

    /** @pre contains(key) */
    const Value &
    at(std::uint64_t key) const
    {
        SS_ASSERT(contains(key), "FlatEpochTable: missing key ", key);
        return value_[key];
    }

    /**
     * Insert @p value under @p key unless present.
     * @return {current value, true if inserted}
     * @pre key < capacity()
     */
    std::pair<Value &, bool>
    tryEmplace(std::uint64_t key, const Value &value)
    {
        SS_ASSERT(key < stamp_.size(), "FlatEpochTable: key ", key,
                  " out of range");
        if (stamp_[key] == epoch_)
            return {value_[key], false};
        stamp_[key] = epoch_;
        value_[key] = value;
        return {value_[key], true};
    }

    /** Insert-or-skip membership test (set semantics). @return true if
     *  @p key was newly inserted. */
    bool
    insert(std::uint64_t key)
    {
        SS_ASSERT(key < stamp_.size(), "FlatEpochTable: key ", key,
                  " out of range");
        if (stamp_[key] == epoch_)
            return false;
        stamp_[key] = epoch_;
        return true;
    }

    /** Insert or overwrite @p key with @p value. @pre key < capacity() */
    void
    put(std::uint64_t key, const Value &value)
    {
        SS_ASSERT(key < stamp_.size(), "FlatEpochTable: key ", key,
                  " out of range");
        stamp_[key] = epoch_;
        value_[key] = value;
    }

  private:
    std::vector<std::uint32_t> stamp_;
    std::vector<Value> value_;
    // Starts at 1 so zero-initialized stamps read as absent: a fresh
    // table is usable without a first clear().
    std::uint32_t epoch_ = 1;
};

} // namespace smartsage::sim

#endif // SMARTSAGE_SIM_FLAT_TABLE_HH
