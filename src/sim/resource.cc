#include "resource.hh"

#include <algorithm>

#include "logging.hh"

namespace smartsage::sim
{

Server::Server(std::string name) : name_(std::move(name))
{
}

ServiceInterval
Server::request(Tick arrival, Tick service)
{
    Tick start = std::max(arrival, next_free_);
    Tick finish = start + service;
    next_free_ = finish;
    busy_ += service;
    ++served_;
    return {start, finish};
}

double
Server::utilization(Tick horizon) const
{
    if (horizon == 0)
        return 0.0;
    return static_cast<double>(busy_) / static_cast<double>(horizon);
}

void
Server::reset()
{
    next_free_ = 0;
    busy_ = 0;
    served_ = 0;
}

ServerPool::ServerPool(std::string name, unsigned count) : name_(name)
{
    SS_ASSERT(count > 0, "pool '", name_, "' needs at least one server");
    servers_.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        servers_.emplace_back(name + "[" + std::to_string(i) + "]");
}

ServiceInterval
ServerPool::request(Tick arrival, Tick service)
{
    // Earliest-start-time placement: the request begins on whichever
    // member frees up first.
    Server *best = &servers_[0];
    for (auto &s : servers_) {
        if (s.nextFree() < best->nextFree())
            best = &s;
    }
    return best->request(arrival, service);
}

ServiceInterval
ServerPool::requestOn(unsigned index, Tick arrival, Tick service)
{
    SS_ASSERT(index < servers_.size(), "server index ", index,
              " out of range ", servers_.size());
    return servers_[index].request(arrival, service);
}

Tick
ServerPool::totalBusyTime() const
{
    Tick total = 0;
    for (const auto &s : servers_)
        total += s.busyTime();
    return total;
}

double
ServerPool::utilization(Tick horizon) const
{
    if (horizon == 0 || servers_.empty())
        return 0.0;
    return static_cast<double>(totalBusyTime()) /
           (static_cast<double>(horizon) * servers_.size());
}

void
ServerPool::reset()
{
    for (auto &s : servers_)
        s.reset();
}

BandwidthLink::BandwidthLink(std::string name, double gbps, Tick latency)
    : wire_(std::move(name)), gbps_(gbps), latency_(latency)
{
    SS_ASSERT(gbps > 0.0, "link bandwidth must be positive");
}

ServiceInterval
BandwidthLink::transfer(Tick arrival, std::uint64_t bytes)
{
    Tick occupancy = transferTime(bytes, gbps_);
    ServiceInterval iv = wire_.request(arrival, occupancy);
    bytes_ += bytes;
    return {iv.start, iv.finish + latency_};
}

double
BandwidthLink::utilization(Tick horizon) const
{
    if (horizon == 0)
        return 0.0;
    double achieved =
        static_cast<double>(bytes_) / toSeconds(horizon); // bytes/sec
    return achieved / (gbps_ * 1e9);
}

void
BandwidthLink::reset()
{
    wire_.reset();
    bytes_ = 0;
}

} // namespace smartsage::sim
