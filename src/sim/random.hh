/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Uses xoshiro256** — fast, high quality, and fully reproducible across
 * platforms (unlike std::mt19937 + distribution, whose output is not
 * pinned by the standard for all distributions we need).
 */

#ifndef SMARTSAGE_SIM_RANDOM_HH
#define SMARTSAGE_SIM_RANDOM_HH

#include <cstdint>

namespace smartsage::sim
{

/**
 * Exported generator state: the full xoshiro256** word vector plus the
 * seed the stream was forked from. Plain-old-data so checkpoints can
 * persist it verbatim; restoring it reproduces the stream bit-exactly,
 * including every subsequent fork() (forks derive from the seed).
 */
struct RngState {
    std::uint64_t s[4] = {0, 0, 0, 0};
    std::uint64_t seed = 0;

    bool operator==(const RngState &) const = default;
};

/**
 * xoshiro256** generator with SplitMix64 seeding.
 *
 * One instance per logical actor (e.g. per sampling worker) keeps
 * experiments reproducible under any interleaving.
 */
class Rng
{
  public:
    /** Seed via SplitMix64 so nearby seeds give unrelated streams. */
    explicit Rng(std::uint64_t seed = 0x5eed5a6eULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bias-corrected. @pre bound > 0 */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p);

    /**
     * Long-jump equivalent: derive an independent stream for worker
     * @p stream_id from this generator's seed.
     */
    Rng fork(std::uint64_t stream_id) const;

    /** Export the full stream position (state words + fork seed). */
    RngState save() const;

    /** Resume exactly where @p state was captured by save(). */
    void restore(const RngState &state);

  private:
    std::uint64_t s_[4];
    std::uint64_t seed_;
};

} // namespace smartsage::sim

#endif // SMARTSAGE_SIM_RANDOM_HH
