#include "random.hh"

namespace smartsage::sim
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    // Lemire-style rejection to remove modulo bias.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

RngState
Rng::save() const
{
    RngState state;
    for (int i = 0; i < 4; ++i)
        state.s[i] = s_[i];
    state.seed = seed_;
    return state;
}

void
Rng::restore(const RngState &state)
{
    for (int i = 0; i < 4; ++i)
        s_[i] = state.s[i];
    seed_ = state.seed;
}

Rng
Rng::fork(std::uint64_t stream_id) const
{
    // Mix the stream id into the seed through SplitMix64 so streams for
    // ids 0, 1, 2, ... are decorrelated.
    std::uint64_t mix = seed_ ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
    return Rng(mix);
}

} // namespace smartsage::sim
