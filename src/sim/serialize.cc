#include "serialize.hh"

#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace smartsage::sim
{

void
ByteWriter::u8(std::uint8_t v)
{
    buf_.push_back(v);
}

void
ByteWriter::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ByteWriter::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ByteWriter::f32(float v)
{
    std::uint32_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u32(bits);
}

void
ByteWriter::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
ByteWriter::str(std::string_view v)
{
    u64(v.size());
    bytes(v.data(), v.size());
}

void
ByteWriter::bytes(const void *data, std::size_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + size);
}

const std::uint8_t *
ByteReader::need(std::size_t n)
{
    if (size_ - pos_ < n)
        throw SerializeError("truncated payload: need " +
                             std::to_string(n) + " bytes, have " +
                             std::to_string(size_ - pos_));
    const std::uint8_t *p = data_ + pos_;
    pos_ += n;
    return p;
}

std::uint8_t
ByteReader::u8()
{
    return *need(1);
}

std::uint32_t
ByteReader::u32()
{
    const std::uint8_t *p = need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
ByteReader::u64()
{
    const std::uint8_t *p = need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

float
ByteReader::f32()
{
    std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

double
ByteReader::f64()
{
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
ByteReader::str()
{
    std::uint64_t len = u64();
    const std::uint8_t *p = need(len);
    return std::string(reinterpret_cast<const char *>(p), len);
}

void
ByteReader::bytes(void *out, std::size_t size)
{
    std::memcpy(out, need(size), size);
}

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::uint32_t
crc32(const std::vector<std::uint8_t> &buf)
{
    return crc32(buf.data(), buf.size());
}

std::uint64_t
fnv1a64(const void *data, std::size_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
hashHex(std::uint64_t hash)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[hash & 0xf];
        hash >>= 4;
    }
    return out;
}

void
atomicWriteFile(const std::string &path,
                const std::vector<std::uint8_t> &payload)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            throw SerializeError("cannot open for write: " + tmp);
        os.write(reinterpret_cast<const char *>(payload.data()),
                 static_cast<std::streamsize>(payload.size()));
        if (!os)
            throw SerializeError("short write: " + tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        throw SerializeError("rename failed: " + tmp + " -> " + path +
                             " (" + ec.message() + ")");
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is)
        throw SerializeError("cannot open: " + path);
    const std::streamsize size = is.tellg();
    is.seekg(0);
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
    is.read(reinterpret_cast<char *>(buf.data()), size);
    if (!is)
        throw SerializeError("short read: " + path);
    return buf;
}

} // namespace smartsage::sim
