/**
 * @file
 * Asynchronous storage request primitives.
 *
 * The storage stack's components service `IoRequest`s through
 * `StorageChannel`s: bounded FIFO service stations driven by the
 * discrete-event kernel (event_queue.hh). A request submitted while the
 * channel has a free slot dispatches immediately; otherwise it waits in
 * the channel's pending queue until an in-flight request completes, so
 * queue-depth contention emerges from queueing rather than serialized
 * timeline math. The busy-until Resource models (resource.hh) remain
 * the *service-time* math inside a dispatch; the channel layer decides
 * *when* a request may begin service.
 *
 * The legacy blocking API (`EdgeStore::read`, `SsdDevice::readBlocks`,
 * ...) survives as a thin submit-and-drain adapter over this layer: one
 * request is submitted on a private event queue and the queue is run to
 * completion, which reproduces the pre-async completion ticks exactly
 * (a single in-flight request never queues).
 */

#ifndef SMARTSAGE_SIM_IO_HH
#define SMARTSAGE_SIM_IO_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "event_queue.hh"
#include "fault.hh"
#include "random.hh"
#include "types.hh"

namespace smartsage::sim
{

/**
 * How a request ended. Ok requests carry valid data; TransientError
 * means every service attempt failed (retries exhausted); Timeout
 * means the request missed its end-to-end deadline; Shed means
 * admission control rejected the request before it ever queued.
 */
enum class IoStatus : std::uint8_t
{
    Ok = 0,
    TransientError,
    Timeout,
    Shed,
};

/** Human-readable status name (stats rows, fatal messages). */
const char *ioStatusName(IoStatus status);

/**
 * Which pending request a StorageChannel pulls forward when a service
 * slot frees. Fifo is the historical arrival-order behavior and the
 * default; with every request carrying a default DispatchTag the other
 * policies degenerate to Fifo's selection, so the policy knob alone
 * never perturbs an untagged workload.
 */
enum class DispatchPolicy : std::uint8_t
{
    Fifo = 0,     //!< strict arrival order
    Priority,     //!< highest priority; ties by deadline, then arrival
    Deadline,     //!< earliest deadline first; ties by priority, then arrival
};

/** Human-readable policy name (docs, tables). */
const char *dispatchPolicyName(DispatchPolicy policy);

/**
 * Per-request scheduling metadata carried through a channel's pending
 * queue. The default tag (priority 0, no deadline) is what every
 * legacy submission carries, so untagged traffic is indistinguishable
 * from the pre-policy channel.
 */
struct DispatchTag
{
    /** Larger dispatches first under DispatchPolicy::Priority. */
    int priority = 0;
    /** Absolute completion deadline in ticks; 0 means none. Used by
     *  DispatchPolicy::Deadline and by SLO-aware admission. */
    Tick deadline = 0;
};

/** Scheduling policy knob block (`sched.*` namespace). */
struct SchedConfig
{
    DispatchPolicy policy = DispatchPolicy::Fifo;
};

/**
 * Admission control at a channel's submit edge (`admit.*` namespace).
 * Both knobs default off, in which case the admission check is never
 * evaluated and the submit path is byte-identical to the unguarded
 * channel.
 */
struct AdmissionControl
{
    /** Pending-queue bound; a submission arriving with this many
     *  requests already waiting is shed. 0 disables the bound. */
    std::size_t max_queue = 0;
    /**
     * Shed deadline-carrying requests that cannot plausibly meet their
     * deadline: the channel estimates this request's completion tick
     * from the mean service time of completed requests and the current
     * queue length, and shed when the estimate lands past the
     * deadline. Purely deterministic (no RNG draw).
     */
    bool slo_aware = false;

    /** Any admission rule active. */
    bool
    enabled() const
    {
        return max_queue != 0 || slo_aware;
    }
};

/**
 * Apply one `sched.`-namespace knob (namespace already stripped).
 * Fatal on an out-of-range policy id. @return false if the key is
 * unknown
 */
bool applyKnob(SchedConfig &config, std::string_view key, double value);

/**
 * Apply one `admit.`-namespace knob (namespace already stripped).
 * @return false if the key is unknown
 */
bool applyKnob(AdmissionControl &admit, std::string_view key,
               double value);

/** Completion callback: invoked at the request's finish tick. */
using IoCompletion = std::function<void(Tick finish, IoStatus status)>;

/** Result of one fallible service attempt. */
struct IoOutcome
{
    Tick finish = 0;
    IoStatus status = IoStatus::Ok;
};

/** One in-flight storage request (serving-mode bookkeeping). */
struct IoRequest
{
    std::uint64_t id = 0;   //!< caller-assigned identifier
    Tick submit = 0;        //!< tick handed to the port
    Tick dispatch = 0;      //!< tick service admission began
    Tick complete = 0;      //!< tick the data became usable

    /** End-to-end latency including queueing. */
    Tick latency() const { return complete - submit; }

    /** Time spent waiting for a channel slot. */
    Tick queueWait() const { return dispatch - submit; }
};

/**
 * A bounded service station (FIFO by default).
 *
 * At most `depth` requests are in service at once; excess submissions
 * wait in arrival order and are pulled forward by the channel's
 * DispatchPolicy when a slot frees (Fifo reproduces strict arrival
 * order; Priority and Deadline reorder by DispatchTag). An optional
 * AdmissionControl sheds submissions at the submit edge before they
 * queue. Service itself is expressed as a callback so
 * any existing timing math (busy-until servers, links, nested blocking
 * calls) can stand in as the station's service process:
 *
 *  - submit():       synchronous service — service(start) returns the
 *                    finish tick; the slot is held until that tick.
 *  - submitStaged(): multi-stage service — the service schedules its
 *                    own events and reports the finish tick through the
 *                    provided completion; the slot is held until then.
 */
class StorageChannel
{
  public:
    /** Service process returning the finish tick for a dispatch. */
    using Service = std::function<Tick(Tick start)>;
    /** Staged service: complete(finish, status) must be called exactly
     *  once, at a tick >= start, from an event on the same queue. */
    using StagedService =
        std::function<void(EventQueue &eq, Tick start, IoCompletion complete)>;
    /**
     * Fallible service attempt: runs the service-time math for attempt
     * number @p attempt (1-based) starting at @p start and reports the
     * finish tick plus whether the attempt succeeded. The channel's
     * RetryPolicy decides what a non-Ok outcome turns into.
     */
    using FallibleService =
        std::function<IoOutcome(Tick start, unsigned attempt)>;

    /** @param depth maximum requests in service at once (>= 1) */
    StorageChannel(std::string name, unsigned depth);

    /** Install the retry/timeout policy for fallible submissions. */
    void setRetryPolicy(const RetryPolicy &policy);
    const RetryPolicy &retryPolicy() const { return retry_; }

    /** Select which pending request dispatches when a slot frees.
     *  Fifo (the default) reproduces the historical arrival order. */
    void setDispatchPolicy(DispatchPolicy policy) { policy_ = policy; }
    DispatchPolicy dispatchPolicy() const { return policy_; }

    /** Install admission control at the submit edge; the default
     *  (all-off) control never evaluates the admission check. */
    void setAdmission(const AdmissionControl &admit) { admit_ = admit; }
    const AdmissionControl &admission() const { return admit_; }

    /** Submit a synchronous-service request at eq.now(). @p tag
     *  carries the scheduling metadata (default: untagged/FIFO). */
    void submit(EventQueue &eq, Service service, IoCompletion done,
                const DispatchTag &tag = {});

    /** Submit a staged (self-scheduling) request at eq.now(). */
    void submitStaged(EventQueue &eq, StagedService service,
                      IoCompletion done, const DispatchTag &tag = {});

    /**
     * Submit a request whose service attempts may fail. The channel
     * re-runs the service with exponential backoff (jitter from a
     * per-request RNG fork) until an attempt succeeds, the policy's
     * attempt budget is exhausted (TransientError), or the end-to-end
     * deadline passes (Timeout). The slot is held across retries — a
     * retrying command still occupies its queue entry. A deadline in
     * @p tag steers Deadline dispatch and SLO-aware admission; it does
     * not time the request out (that stays the RetryPolicy's business),
     * so a late request is still answered and its latency recorded.
     */
    void submitFallible(EventQueue &eq, FallibleService service,
                        IoCompletion done, const DispatchTag &tag = {});

    /** No request in service and none pending. */
    bool
    idle() const
    {
        return in_flight_ == 0 && pending_.empty();
    }

    unsigned depth() const { return depth_; }

    /** Requests currently in service. */
    unsigned inFlight() const { return in_flight_; }
    /** Requests waiting for a slot. */
    std::size_t queued() const { return pending_.size(); }

    // ---- lifetime counters ----
    std::uint64_t submitted() const { return submitted_; }
    std::uint64_t completed() const { return completed_; }
    /** High-water mark of in-service plus waiting requests. */
    std::uint64_t peakOutstanding() const { return peak_outstanding_; }
    /**
     * Requests dispatched out of the pending queue. Queue-wait stats
     * cover only these: a request dispatched straight into a free slot
     * never queued, and counting its zero wait would drag the mean
     * wait of the requests that did queue toward zero.
     */
    std::uint64_t queuedCount() const { return queued_; }
    /** Total ticks queued requests spent waiting for a slot. */
    Tick totalQueueWait() const { return total_queue_wait_; }
    /** Largest single queue wait. */
    Tick maxQueueWait() const { return max_queue_wait_; }

    // ---- recovery counters (fallible submissions only) ----
    /** Service attempts re-run after a transient failure. */
    std::uint64_t retries() const { return retries_; }
    /** Requests that missed their end-to-end deadline. */
    std::uint64_t timeouts() const { return timeouts_; }
    /** Requests abandoned with the attempt budget exhausted. */
    std::uint64_t abandoned() const { return abandoned_; }
    /** Requests shed by admission control before queueing. */
    std::uint64_t shedAdmission() const { return shed_admission_; }

    const std::string &name() const { return name_; }

    /** Forget all history. @pre idle() — resetting with work in flight
     *  would orphan completions. */
    void reset();

  private:
    struct Pending
    {
        StagedService service;
        IoCompletion done;
        Tick submit;
        DispatchTag tag;
        std::uint64_t seq = 0; //!< arrival order (FIFO tie-break)
    };

    /** Mutable per-request retry bookkeeping. */
    struct RetryState
    {
        FallibleService service;
        Tick deadline; //!< absolute tick; 0 means none
        Rng rng;       //!< per-request jitter stream
    };

    /** @param queued whether @p p waited in the pending queue */
    void dispatch(EventQueue &eq, Pending p, bool queued);
    /** @param start tick the completed request began service */
    void onComplete(EventQueue &eq, Tick finish, Tick start);

    /** Admission verdict for @p tag with every slot busy. Only called
     *  when admission is enabled, so the default path never pays it. */
    bool shouldShed(const EventQueue &eq, const DispatchTag &tag) const;

    /** Index into pending_ of the request the policy dispatches next.
     *  @pre !pending_.empty() */
    std::size_t pickNext() const;

    /** Run attempt @p attempt of a fallible request at @p start. */
    void runAttempt(EventQueue &eq, Tick start, unsigned attempt,
                    const std::shared_ptr<RetryState> &state,
                    IoCompletion complete);

    /** Backoff before attempt @p next_attempt (exponential, capped). */
    Tick backoffBefore(unsigned next_attempt, Rng &rng) const;

    std::string name_;
    unsigned depth_;
    unsigned in_flight_ = 0;
    std::deque<Pending> pending_;
    RetryPolicy retry_;
    DispatchPolicy policy_ = DispatchPolicy::Fifo;
    AdmissionControl admit_;
    Rng jitter_master_{0x7e77151eedULL}; //!< forked per request

    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t peak_outstanding_ = 0;
    std::uint64_t queued_ = 0;
    Tick total_queue_wait_ = 0;
    Tick max_queue_wait_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t abandoned_ = 0;
    std::uint64_t shed_admission_ = 0;
    Tick total_service_ = 0; //!< sum of per-dispatch service intervals
};

/**
 * Submit-and-drain helper implementing a blocking call on top of an
 * async submission: schedules @p submit at @p arrival on @p eq (reset
 * first), runs the queue dry, and returns the completion tick the
 * submission reported. A blocking caller has nowhere to report a
 * failed request, so a non-Ok completion is fatal — @p component and
 * @p request_id identify the offender in the message.
 * @pre eq has no pending events
 */
Tick drainOne(EventQueue &eq, Tick arrival,
              const std::function<void(EventQueue &, IoCompletion)> &submit,
              std::string_view component = "blocking adapter",
              std::uint64_t request_id = 0);

} // namespace smartsage::sim

#endif // SMARTSAGE_SIM_IO_HH
