#include "thread_pool.hh"

#include <atomic>
#include <exception>
#include <utility>

#include "logging.hh"

namespace smartsage::sim
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stop_ = true;
    }
    task_ready_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    SS_ASSERT(task, "null task submitted");
    {
        std::unique_lock<std::mutex> lock(mutex_);
        SS_ASSERT(!stop_, "submit on a stopping pool");
        tasks_.push_back(std::move(task));
        ++in_flight_;
    }
    task_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_idle_.wait(lock, [this] { return in_flight_ == 0; });
    if (first_error_) {
        std::exception_ptr err = std::exchange(first_error_, nullptr);
        lock.unlock();
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            task_ready_.wait(lock,
                             [this] { return stop_ || !tasks_.empty(); });
            if (tasks_.empty()) {
                if (stop_)
                    return;
                continue;
            }
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        std::exception_ptr err;
        try {
            task();
        } catch (...) {
            err = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (err && !first_error_)
                first_error_ = err;
            if (--in_flight_ == 0)
                all_idle_.notify_all();
        }
    }
}

void
parallelFor(ThreadPool *pool, std::size_t count,
            const std::function<void(std::size_t)> &fn)
{
    SS_ASSERT(fn, "null body passed to parallelFor");
    if (!pool || pool->size() <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    for (std::size_t i = 0; i < count; ++i)
        pool->submit([&fn, i] { fn(i); });
    pool->wait();
}

} // namespace smartsage::sim
