#include "fault.hh"

#include <cmath>

#include "logging.hh"

namespace smartsage::sim
{

namespace
{

/** FNV-1a over the component name: a stable stream id per component. */
std::uint64_t
componentStream(std::string_view component)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : component) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

bool
isRate(double v)
{
    // Written to also reject NaN.
    return v >= 0.0 && v <= 1.0;
}

} // namespace

bool
applyKnob(FaultPlan &plan, std::string_view key, double value)
{
    if (key == "seed")
        plan.seed = static_cast<std::uint64_t>(value);
    else if (key == "read_error_rate")
        plan.read_error_rate = value;
    else if (key == "slow_rate")
        plan.slow_rate = value;
    else if (key == "slow_multiplier")
        plan.slow_multiplier = value;
    else if (key == "ecc_rate")
        plan.ecc_rate = value;
    else if (key == "ecc_retry_us")
        plan.ecc_retry = us(value);
    else if (key == "shard_outage_rate")
        plan.shard_outage_rate = value;
    else if (key == "outage_period_ms")
        plan.outage_period = ms(value);
    else if (key == "degraded_penalty")
        plan.degraded_penalty = value;
    else if (key == "kill_batch")
        plan.kill_batch = static_cast<std::uint64_t>(value);
    else
        return false;
    return true;
}

bool
applyKnob(RetryPolicy &policy, std::string_view key, double value)
{
    if (key == "max_attempts")
        policy.max_attempts = static_cast<unsigned>(value);
    else if (key == "backoff_base_us")
        policy.backoff_base = us(value);
    else if (key == "backoff_cap_us")
        policy.backoff_cap = us(value);
    else if (key == "jitter")
        policy.jitter = value;
    else if (key == "timeout_us")
        policy.timeout = us(value);
    else
        return false;
    return true;
}

void
validate(const FaultPlan &plan)
{
    if (!isRate(plan.read_error_rate))
        SS_FATAL("FaultPlan: fault.read_error_rate must be within "
                 "[0, 1], got ",
                 plan.read_error_rate);
    if (!isRate(plan.slow_rate))
        SS_FATAL("FaultPlan: fault.slow_rate must be within [0, 1], "
                 "got ",
                 plan.slow_rate);
    if (!(plan.slow_multiplier >= 1.0))
        SS_FATAL("FaultPlan: fault.slow_multiplier must be >= 1 (a "
                 "slow attempt cannot finish early), got ",
                 plan.slow_multiplier);
    if (!isRate(plan.ecc_rate))
        SS_FATAL("FaultPlan: fault.ecc_rate must be within [0, 1], "
                 "got ",
                 plan.ecc_rate);
    if (!(plan.shard_outage_rate >= 0.0 && plan.shard_outage_rate < 1.0))
        SS_FATAL("FaultPlan: fault.shard_outage_rate must be within "
                 "[0, 1) — a permanently down shard is not a fault, "
                 "it is a smaller array; got ",
                 plan.shard_outage_rate);
    if (plan.injectsOutages() && plan.outage_period == 0)
        SS_FATAL("FaultPlan: fault.outage_period_ms must be positive "
                 "when shard outages are enabled");
    if (!(plan.degraded_penalty >= 1.0))
        SS_FATAL("FaultPlan: fault.degraded_penalty must be >= 1 (a "
                 "degraded read cannot beat a healthy one), got ",
                 plan.degraded_penalty);
}

void
validate(const RetryPolicy &policy)
{
    if (policy.max_attempts < 1)
        SS_FATAL("RetryPolicy: retry.max_attempts must be >= 1 "
                 "(1 means no retries), got ",
                 policy.max_attempts);
    if (policy.backoff_cap < policy.backoff_base)
        SS_FATAL("RetryPolicy: retry.backoff_cap_us (",
                 toMicros(policy.backoff_cap),
                 " us) must not be below retry.backoff_base_us (",
                 toMicros(policy.backoff_base), " us)");
    if (!(policy.jitter >= 0.0))
        SS_FATAL("RetryPolicy: retry.jitter must be >= 0, got ",
                 policy.jitter);
    if (policy.timeout != 0 && policy.timeout < minServiceTick)
        SS_FATAL("RetryPolicy: retry.timeout_us must be at least the "
                 "minimum service tick (",
                 toMicros(minServiceTick), " us) or 0 to disable, got ",
                 toMicros(policy.timeout), " us");
}

FaultInjector::FaultInjector(const FaultPlan &plan,
                             std::string_view component)
    : plan_(plan),
      initial_(Rng(plan.seed).fork(componentStream(component))),
      rng_(initial_)
{
}

bool
FaultInjector::drawReadError()
{
    // Draw only when the fault can fire: a zero-rate plan consumes no
    // stream, keeping fault-free runs draw-for-draw identical.
    if (plan_.read_error_rate <= 0.0)
        return false;
    return rng_.nextBool(plan_.read_error_rate);
}

Tick
FaultInjector::slowed(Tick start, Tick finish)
{
    if (plan_.slow_rate <= 0.0 || !rng_.nextBool(plan_.slow_rate))
        return finish;
    double span = static_cast<double>(finish - start);
    return start + static_cast<Tick>(span * plan_.slow_multiplier);
}

bool
FaultInjector::drawEccRetry()
{
    if (plan_.ecc_rate <= 0.0)
        return false;
    return rng_.nextBool(plan_.ecc_rate);
}

void
FaultInjector::reset()
{
    rng_ = initial_;
}

OutageSchedule::OutageSchedule(const FaultPlan &plan, unsigned shards)
    : period_(plan.outage_period),
      down_ticks_(static_cast<Tick>(plan.shard_outage_rate *
                                    static_cast<double>(plan.outage_period)))
{
    SS_ASSERT(period_ > 0, "outage schedule needs a positive period");
    Rng master = Rng(plan.seed).fork(componentStream("shard-outage"));
    phase_.reserve(shards);
    for (unsigned i = 0; i < shards; ++i)
        phase_.push_back(master.fork(i).nextBounded(period_));
}

bool
OutageSchedule::down(unsigned shard, Tick tick) const
{
    SS_ASSERT(shard < phase_.size(), "outage query for shard ", shard,
              " of ", phase_.size());
    return (tick % period_ + period_ - phase_[shard]) % period_ <
           down_ticks_;
}

} // namespace smartsage::sim
