/**
 * @file
 * Fixed-size worker thread pool for the functional hot paths.
 *
 * The *simulated* multi-worker contention models (pipeline/scheduler)
 * stay single-threaded and deterministic; this pool parallelizes the
 * *functional* work — sampling real subgraphs, training real batches —
 * across host cores. Determinism is preserved by construction at the
 * call sites: work items are keyed by index and draw from per-index RNG
 * streams, so results never depend on which thread ran what.
 */

#ifndef SMARTSAGE_SIM_THREAD_POOL_HH
#define SMARTSAGE_SIM_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace smartsage::sim
{

/** Simple task-queue thread pool. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 means hardware_concurrency. */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains pending tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /** Enqueue @p task for asynchronous execution. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished. If any task threw,
     * the first captured exception is rethrown here (matching the
     * behavior of running the same work inline on the caller).
     */
    void wait();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable task_ready_;
    std::condition_variable all_idle_;
    std::size_t in_flight_ = 0; //!< queued + currently running tasks
    std::exception_ptr first_error_; //!< first uncaught task exception
    bool stop_ = false;
};

/**
 * Run @p fn(i) for every i in [0, count) on @p pool and block until all
 * calls finish; a null @p pool runs inline on the caller. Work is keyed
 * by index, so as long as @p fn(i) depends only on i (the determinism
 * convention of this codebase), results are identical for any pool
 * size. The first exception thrown by any call is rethrown here.
 */
void parallelFor(ThreadPool *pool, std::size_t count,
                 const std::function<void(std::size_t)> &fn);

} // namespace smartsage::sim

#endif // SMARTSAGE_SIM_THREAD_POOL_HH
