/**
 * @file
 * Timing model of the NAND array: per-die read occupancy (tR) followed
 * by per-channel transfer occupancy. Requests to distinct dies overlap;
 * this internal parallelism is exactly the bandwidth headroom the
 * SmartSAGE ISP engine exploits (Section IV-B).
 */

#ifndef SMARTSAGE_FLASH_FLASH_ARRAY_HH
#define SMARTSAGE_FLASH_FLASH_ARRAY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "config.hh"
#include "sim/fault.hh"
#include "sim/io.hh"
#include "sim/resource.hh"
#include "sim/stats.hh"

namespace smartsage::flash
{

/** The bank of NAND dies and channels, as busy-until resources. */
class FlashArray
{
  public:
    explicit FlashArray(const FlashConfig &config);

    /**
     * Read the flash page at @p addr, with the request issued at
     * @p arrival. @return tick at which the page data sits in the
     * channel-side buffer (i.e. is available to the SSD controller).
     */
    sim::Tick readPage(const PageAddress &addr, sim::Tick arrival);

    /**
     * Async page read: submit at eq.now() into the owning channel's
     * bounded command queue (FlashConfig::channel_queue_depth); when a
     * slot frees the read proceeds through the die + channel timelines
     * and @p done fires at the buffered tick.
     */
    void submitRead(sim::EventQueue &eq, const PageAddress &addr,
                    sim::IoCompletion done);

    /** Per-channel command queue (occupancy and wait stats). */
    const sim::StorageChannel &channelQueue(unsigned channel) const;

    const FlashConfig &config() const { return config_; }

    /** Pages read so far. */
    std::uint64_t pagesRead() const { return pages_read_; }

    /** Page senses that needed an ECC re-read (injected faults). */
    std::uint64_t eccRetries() const { return ecc_retries_; }

    /** Aggregate die utilization over [0, horizon]. */
    double dieUtilization(sim::Tick horizon) const;

    /** Aggregate channel utilization over [0, horizon]. */
    double channelUtilization(sim::Tick horizon) const;

    /** Fresh timeline for a new experiment. */
    void reset();

  private:
    FlashConfig config_;
    std::vector<sim::Server> dies_;     //!< channels * dies_per_channel
    std::vector<sim::Server> channels_; //!< one per channel
    std::vector<sim::StorageChannel> channel_queues_; //!< async port
    std::unique_ptr<sim::FaultInjector> ecc_; //!< null when inert
    std::uint64_t pages_read_ = 0;
    std::uint64_t ecc_retries_ = 0;

    unsigned
    dieIndex(const PageAddress &addr) const
    {
        return addr.channel * config_.dies_per_channel + addr.die;
    }
};

} // namespace smartsage::flash

#endif // SMARTSAGE_FLASH_FLASH_ARRAY_HH
