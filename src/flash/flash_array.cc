#include "flash_array.hh"

#include "sim/logging.hh"

namespace smartsage::flash
{

FlashArray::FlashArray(const FlashConfig &config) : config_(config)
{
    SS_ASSERT(config.channels > 0 && config.dies_per_channel > 0,
              "flash geometry must be non-empty");
    dies_.reserve(config.totalDies());
    for (unsigned i = 0; i < config.totalDies(); ++i)
        dies_.emplace_back("die" + std::to_string(i));
    channels_.reserve(config.channels);
    channel_queues_.reserve(config.channels);
    for (unsigned i = 0; i < config.channels; ++i) {
        channels_.emplace_back("ch" + std::to_string(i));
        channel_queues_.emplace_back("chq" + std::to_string(i),
                                     config.channel_queue_depth);
    }
    if (config.fault.injectsEcc())
        ecc_ = std::make_unique<sim::FaultInjector>(config.fault, "flash");
}

sim::Tick
FlashArray::readPage(const PageAddress &addr, sim::Tick arrival)
{
    SS_ASSERT(addr.channel < config_.channels, "channel ", addr.channel,
              " out of range");
    SS_ASSERT(addr.die < config_.dies_per_channel, "die ", addr.die,
              " out of range");

    // tR occupies the die; the ONFI transfer then occupies the channel.
    auto sensed = dies_[dieIndex(addr)].request(arrival,
                                                config_.read_latency);
    // An ECC failure re-senses with a longer, more careful read: extra
    // die occupancy once, then the transfer proceeds normally — the
    // retried sense always succeeds (a real drive escalates read-retry
    // voltage levels until it does).
    if (ecc_ && ecc_->drawEccRetry()) {
        ++ecc_retries_;
        sensed = dies_[dieIndex(addr)].request(sensed.finish,
                                               config_.fault.ecc_retry);
    }
    auto moved = channels_[addr.channel].request(
        sensed.finish, config_.pageTransferTime());
    ++pages_read_;
    return moved.finish;
}

void
FlashArray::submitRead(sim::EventQueue &eq, const PageAddress &addr,
                       sim::IoCompletion done)
{
    SS_ASSERT(addr.channel < config_.channels, "channel ", addr.channel,
              " out of range");
    channel_queues_[addr.channel].submit(
        eq,
        [this, addr](sim::Tick start) { return readPage(addr, start); },
        std::move(done));
}

const sim::StorageChannel &
FlashArray::channelQueue(unsigned channel) const
{
    SS_ASSERT(channel < channel_queues_.size(), "channel ", channel,
              " out of range");
    return channel_queues_[channel];
}

double
FlashArray::dieUtilization(sim::Tick horizon) const
{
    if (horizon == 0 || dies_.empty())
        return 0.0;
    sim::Tick busy = 0;
    for (const auto &d : dies_)
        busy += d.busyTime();
    return static_cast<double>(busy) /
           (static_cast<double>(horizon) * dies_.size());
}

double
FlashArray::channelUtilization(sim::Tick horizon) const
{
    if (horizon == 0 || channels_.empty())
        return 0.0;
    sim::Tick busy = 0;
    for (const auto &c : channels_)
        busy += c.busyTime();
    return static_cast<double>(busy) /
           (static_cast<double>(horizon) * channels_.size());
}

void
FlashArray::reset()
{
    for (auto &d : dies_)
        d.reset();
    for (auto &c : channels_)
        c.reset();
    for (auto &q : channel_queues_)
        q.reset();
    if (ecc_)
        ecc_->reset();
    pages_read_ = 0;
    ecc_retries_ = 0;
}

} // namespace smartsage::flash
