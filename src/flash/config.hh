/**
 * @file
 * NAND flash geometry and timing parameters.
 *
 * Defaults approximate the Cosmos+ OpenSSD platform the paper prototyped
 * on: 8 channels x 4 dies of MLC NAND with 16 KiB pages and a ~65 us
 * array read (tR).
 */

#ifndef SMARTSAGE_FLASH_CONFIG_HH
#define SMARTSAGE_FLASH_CONFIG_HH

#include <cstdint>
#include <string_view>

#include "sim/fault.hh"
#include "sim/types.hh"

namespace smartsage::flash
{

/** Static configuration of a flash subsystem. */
struct FlashConfig
{
    unsigned channels = 8;          //!< independent ONFI channels
    unsigned dies_per_channel = 4;  //!< dies (LUNs) per channel
    std::uint64_t page_bytes = sim::KiB(16); //!< NAND page size
    sim::Tick read_latency = sim::us(55);    //!< tR: cell array -> die reg
    double channel_gbps = 1.0;      //!< ONFI transfer rate per channel
    /**
     * Page-read commands in service at once per channel on the async
     * port (FlashArray::submitRead, controller-side per-channel
     * command queue); excess commands wait. One-at-a-time blocking
     * callers never exceed 1, so this is a programmatic parameter of
     * the async port, deliberately not an applyKnob key until a
     * workload drives the port concurrently.
     */
    unsigned channel_queue_depth = 8;

    /**
     * Fault schedule consulted for ECC-retry injection (ecc_rate /
     * ecc_retry); inert by default. Propagated from the system-level
     * plan by GnnSystem, not an applyKnob key of this struct.
     */
    sim::FaultPlan fault;

    unsigned totalDies() const { return channels * dies_per_channel; }

    /** Time to shift one page from the die register over its channel. */
    sim::Tick
    pageTransferTime() const
    {
        return sim::transferTime(page_bytes, channel_gbps);
    }
};

/**
 * Set the named flash knob (scenario override support). Durations use
 * the unit in the key suffix. @return false for an unknown key
 */
inline bool
applyKnob(FlashConfig &config, std::string_view key, double value)
{
    if (key == "channels")
        config.channels = static_cast<unsigned>(value);
    else if (key == "dies_per_channel")
        config.dies_per_channel = static_cast<unsigned>(value);
    else if (key == "page_kib")
        config.page_bytes = sim::KiB(static_cast<std::uint64_t>(value));
    else if (key == "read_latency_us")
        config.read_latency = sim::us(value);
    else if (key == "channel_gbps")
        config.channel_gbps = value;
    else
        return false;
    return true;
}

/** Physical location of a flash page. */
struct PageAddress
{
    unsigned channel;
    unsigned die;
    std::uint64_t page; //!< page index within the die
};

} // namespace smartsage::flash

#endif // SMARTSAGE_FLASH_CONFIG_HH
