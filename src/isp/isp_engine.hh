/**
 * @file
 * The SmartSAGE in-storage subgraph generator (Section IV-B, Fig 11).
 *
 * Replays a mini-batch's sampling trace inside the SSD: the host sends
 * one coalesced NVMe command per target group, the firmware translates
 * and issues flash page reads, samples edge entries directly out of the
 * SSD DRAM page buffer on the embedded cores, and DMAs back only the
 * densely packed sampled-ID list.
 */

#ifndef SMARTSAGE_ISP_ISP_ENGINE_HH
#define SMARTSAGE_ISP_ISP_ENGINE_HH

#include <cstdint>
#include <string_view>

#include "graph/layout.hh"
#include "nsconfig.hh"
#include "sim/io.hh"
#include "sim/types.hh"
#include "ssd/ssd_device.hh"

namespace smartsage::isp
{

/** Host-driver + firmware parameters of the ISP path. */
struct IspConfig
{
    /** ioctl() + driver submit cost per NVMe command (Section IV-C). */
    sim::Tick host_submit = sim::us(3);
    /**
     * Coalescing granularity: target nodes folded into one NSconfig.
     * The paper's default folds the whole mini-batch (1024).
     */
    std::size_t coalesce_targets = 1024;
    /**
     * Coalesced command groups in service at once on the async port
     * (submitGroup); excess groups wait at the device front end.
     * Blocking callers never exceed 1, so this is a programmatic
     * parameter of the async port, deliberately not an applyKnob key
     * until a workload drives the port concurrently.
     */
    unsigned queue_depth = 16;
    NsConfigFormat format;
};

/**
 * Set the named ISP knob (scenario override support).
 * @return false for an unknown key
 */
inline bool
applyKnob(IspConfig &config, std::string_view key, double value)
{
    if (key == "coalesce_targets")
        config.coalesce_targets = static_cast<std::size_t>(value);
    else if (key == "host_submit_us")
        config.host_submit = sim::us(value);
    else
        return false;
    return true;
}

/** Outcome of one in-storage batch generation. */
struct IspBatchResult
{
    sim::Tick finish = 0;            //!< subgraph resident in host DRAM
    std::uint64_t commands = 0;      //!< NVMe commands issued
    std::uint64_t bytes_to_host = 0; //!< sampled-ID payload over PCIe
    std::uint64_t bytes_from_host = 0; //!< NSconfig payload over PCIe
    std::uint64_t flash_pages = 0;   //!< flash pages touched
};

/** Timing engine for SmartSAGE(HW/SW) subgraph generation. */
class IspEngine
{
  public:
    IspEngine(const IspConfig &config, ssd::SsdDevice &ssd,
              const graph::EdgeLayout &layout);

    /**
     * Simulate in-storage generation of one mini-batch whose access
     * trace is @p trace, starting at @p arrival.
     */
    IspBatchResult runBatch(const IspTraceVisitor &trace,
                            sim::Tick arrival) const;

    /**
     * Async submission of one coalesced group of node work at
     * eq.now(): the group takes a slot in the engine's bounded command
     * queue (IspConfig::queue_depth), then proceeds through NSconfig
     * DMA, firmware parse, flash fetches, in-buffer gather, and the
     * subgraph DMA back. @p work and @p result must stay alive until
     * @p done fires with the tick the subgraph chunk lands in host
     * DRAM.
     */
    void submitGroup(sim::EventQueue &eq, const NodeWork *work,
                     std::size_t count, IspBatchResult &result,
                     sim::IoCompletion done) const;

    /**
     * Blocking form of submitGroup (submit-and-drain; bit-identical to
     * the pre-async path). Exposed so the pipeline can interleave
     * groups from concurrent workers in time order.
     * @return tick the group's subgraph chunk lands in host DRAM
     */
    sim::Tick runGroup(const NodeWork *work, std::size_t count,
                       sim::Tick arrival, IspBatchResult &result) const;

    const IspConfig &config() const { return config_; }

    /** The bounded command queue (occupancy and wait stats). */
    const sim::StorageChannel &commandQueue() const { return cmd_queue_; }

    /** Fresh queue counters for a new experiment. */
    void reset();

  private:
    /** Service timing of one group dispatched at @p start. */
    sim::Tick serviceGroup(const NodeWork *work, std::size_t count,
                           sim::Tick start, IspBatchResult &result) const;

    IspConfig config_;
    ssd::SsdDevice &ssd_;
    graph::EdgeLayout layout_;
    mutable sim::StorageChannel cmd_queue_;
    mutable sim::EventQueue drain_eq_; //!< blocking-adapter drain queue
};

} // namespace smartsage::isp

#endif // SMARTSAGE_ISP_ISP_ENGINE_HH
