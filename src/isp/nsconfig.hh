/**
 * @file
 * NSconfig: the neighbor-sampling configuration blob (Fig 11/12).
 *
 * The SmartSAGE driver coalesces an entire group of target nodes'
 * sampling work into one NVMe command whose payload — NSconfig — the
 * SSD pulls over a single CPU->SSD DMA. This file sizes that payload
 * and records the per-node work items the firmware will execute.
 */

#ifndef SMARTSAGE_ISP_NSCONFIG_HH
#define SMARTSAGE_ISP_NSCONFIG_HH

#include <cstdint>
#include <vector>

#include "gnn/sampler.hh"
#include "graph/csr.hh"

namespace smartsage::isp
{

/** The sampling work recorded for one frontier node. */
struct NodeWork
{
    graph::LocalNodeId node = 0;
    /** Absolute edge-array entry indices that were sampled. */
    std::vector<std::uint64_t> entries;
};

/** Sizing parameters of the serialized NSconfig blob. */
struct NsConfigFormat
{
    std::uint64_t header_bytes = 64;
    /** Per-target descriptor: node id + LBA + degree + sample count. */
    std::uint64_t per_target_bytes = 24;

    std::uint64_t
    bytesFor(std::size_t num_targets) const
    {
        return header_bytes + per_target_bytes * num_targets;
    }
};

/**
 * SampleVisitor that captures the full per-node access trace of one
 * mini-batch so the ISP timing engine can replay it in-storage.
 */
class IspTraceVisitor : public gnn::SampleVisitor
{
  public:
    void onBatchStart(std::size_t num_targets) override;
    void onOffsetRead(graph::LocalNodeId u) override;
    void onEdgeEntryRead(graph::LocalNodeId u,
                         std::uint64_t entry_index) override;

    /** Work items in sampling order (all hops, flattened). */
    const std::vector<NodeWork> &work() const { return work_; }
    std::size_t numTargets() const { return num_targets_; }

    /** Total sampled entries across the batch. */
    std::uint64_t totalEntries() const;

  private:
    std::vector<NodeWork> work_;
    std::size_t num_targets_ = 0;
};

} // namespace smartsage::isp

#endif // SMARTSAGE_ISP_NSCONFIG_HH
