#include "nsconfig.hh"

namespace smartsage::isp
{

void
IspTraceVisitor::onBatchStart(std::size_t num_targets)
{
    work_.clear();
    num_targets_ = num_targets;
}

void
IspTraceVisitor::onOffsetRead(graph::LocalNodeId u)
{
    work_.push_back(NodeWork{u, {}});
}

void
IspTraceVisitor::onEdgeEntryRead(graph::LocalNodeId u,
                                 std::uint64_t entry_index)
{
    (void)u;
    work_.back().entries.push_back(entry_index);
}

std::uint64_t
IspTraceVisitor::totalEntries() const
{
    std::uint64_t total = 0;
    for (const auto &w : work_)
        total += w.entries.size();
    return total;
}

} // namespace smartsage::isp
