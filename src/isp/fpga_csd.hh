/**
 * @file
 * FPGA-based CSD alternative (SmartSSD-style), Section VI-D / Fig 19.
 *
 * Offloading sampling to an FPGA beside the SSD costs a *two-step* P2P
 * transfer: the raw edge-list blocks move SSD->FPGA over the on-card
 * PCIe switch, the FPGA's hardwired gather unit samples them quickly,
 * and the subgraph then moves FPGA->CPU. The paper's finding — the
 * SSD->FPGA hop dominates and erases the ISP benefit — emerges from
 * exactly this structure.
 */

#ifndef SMARTSAGE_ISP_FPGA_CSD_HH
#define SMARTSAGE_ISP_FPGA_CSD_HH

#include <cstdint>
#include <string_view>

#include "graph/layout.hh"
#include "nsconfig.hh"
#include "sim/resource.hh"
#include "sim/types.hh"
#include "ssd/ssd_device.hh"

namespace smartsage::isp
{

/** FPGA-side parameters of the SmartSSD-style CSD. */
struct FpgaCsdConfig
{
    double p2p_gbps = 3.0;           //!< SSD->FPGA over on-card switch
    sim::Tick p2p_latency = sim::us(2);
    /** Per-P2P-read command round trip through the on-card switch. */
    sim::Tick p2p_command = sim::us(10);
    /** Target nodes whose P2P reads the kernel keeps in flight. */
    unsigned queue_depth = 64;
    sim::Tick fpga_per_edge = sim::ns(8); //!< hardwired gather unit
    sim::Tick kernel_setup = sim::us(40); //!< per-batch kernel control
    sim::Tick host_submit = sim::us(3);
};

/**
 * Set the named FPGA-CSD knob (scenario override support).
 * @return false for an unknown key
 */
inline bool
applyKnob(FpgaCsdConfig &config, std::string_view key, double value)
{
    if (key == "p2p_gbps")
        config.p2p_gbps = value;
    else if (key == "queue_depth")
        config.queue_depth = static_cast<unsigned>(value);
    else if (key == "fpga_per_edge_ns")
        config.fpga_per_edge = sim::ns(value);
    else if (key == "kernel_setup_us")
        config.kernel_setup = sim::us(value);
    else
        return false;
    return true;
}

/** Per-stage latency breakdown of one batch (Fig 19's bar segments). */
struct FpgaBatchResult
{
    sim::Tick finish = 0;
    sim::Tick ssd_to_fpga = 0; //!< cumulative P2P transfer time
    sim::Tick sampling = 0;    //!< FPGA gather time
    sim::Tick fpga_to_cpu = 0; //!< subgraph return transfer
    std::uint64_t p2p_bytes = 0;
    std::uint64_t out_bytes = 0;
};

/** Timing engine for the FPGA-based CSD design point. */
class FpgaCsdEngine
{
  public:
    FpgaCsdEngine(const FpgaCsdConfig &config, ssd::SsdDevice &ssd,
                  const graph::EdgeLayout &layout);

    /** Simulate one batch's sampling on the FPGA-based CSD. */
    FpgaBatchResult runBatch(const IspTraceVisitor &trace,
                             sim::Tick arrival);

  private:
    FpgaCsdConfig config_;
    ssd::SsdDevice &ssd_;
    graph::EdgeLayout layout_;
    sim::Server p2p_;  //!< on-card switch wire (command + data occupancy)
    sim::Server fpga_; //!< gather unit
};

} // namespace smartsage::isp

#endif // SMARTSAGE_ISP_FPGA_CSD_HH
