#include "fpga_csd.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"

namespace smartsage::isp
{

FpgaCsdEngine::FpgaCsdEngine(const FpgaCsdConfig &config,
                             ssd::SsdDevice &ssd,
                             const graph::EdgeLayout &layout)
    : config_(config), ssd_(ssd), layout_(layout),
      p2p_("p2p_wire"), fpga_("fpga_sampler")
{
}

FpgaBatchResult
FpgaCsdEngine::runBatch(const IspTraceVisitor &trace, sim::Tick arrival)
{
    const auto &ssd_cfg = ssd_.config();
    FpgaBatchResult result;

    sim::Tick t = arrival + config_.host_submit + config_.kernel_setup;

    // The FPGA kernel's request loop walks the target nodes with a
    // bounded number of P2P reads in flight (queue_depth nodes per
    // window). Each P2P read is a full command round trip over the
    // on-card switch — this latency-bound two-step loop is why the
    // FPGA-based CSD loses (Fig 19).
    std::vector<std::uint64_t> pages;
    sim::Tick window_clock = t;
    std::size_t in_window = 0;
    sim::Tick window_done = t;
    for (const NodeWork &w : trace.work()) {
        if (w.entries.empty())
            continue;

        pages.clear();
        for (std::uint64_t e : w.entries)
            pages.push_back(ssd_.ftl().pageOf(layout_.addrOf(e)));
        std::sort(pages.begin(), pages.end());
        pages.erase(std::unique(pages.begin(), pages.end()),
                    pages.end());

        // Step 1: flash -> page buffer -> FPGA DRAM over P2P.
        sim::Tick in_fpga = window_clock;
        for (std::uint64_t lpn : pages) {
            sim::Tick buffered = ssd_.fetchPage(window_clock, lpn);
            sim::Tick wire_cost =
                config_.p2p_command +
                sim::transferTime(ssd_cfg.flash.page_bytes,
                                  config_.p2p_gbps);
            auto moved = p2p_.request(buffered, wire_cost);
            result.ssd_to_fpga += moved.finish - buffered;
            result.p2p_bytes += ssd_cfg.flash.page_bytes;
            in_fpga = std::max(in_fpga,
                               moved.finish + config_.p2p_latency);
        }

        // Step 2: the hardwired gather unit samples the entries.
        sim::Tick gather = config_.fpga_per_edge * w.entries.size();
        auto sampled = fpga_.request(in_fpga, gather);
        result.sampling += gather;
        window_done = std::max(window_done, sampled.finish);

        if (++in_window >= config_.queue_depth) {
            window_clock = window_done;
            in_window = 0;
        }
    }
    sim::Tick node_clock = window_done;

    // Step 3: the sampled subgraph crosses FPGA -> CPU.
    std::uint64_t out_bytes =
        (trace.totalEntries() + trace.work().size()) *
        layout_.entry_bytes;
    result.out_bytes = out_bytes;
    sim::Tick shipped = ssd_.dmaToHost(node_clock, out_bytes);
    result.fpga_to_cpu = shipped - node_clock;
    result.finish = shipped;
    return result;
}

} // namespace smartsage::isp
