#include "isp_engine.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"

namespace smartsage::isp
{

IspEngine::IspEngine(const IspConfig &config, ssd::SsdDevice &ssd,
                     const graph::EdgeLayout &layout)
    : config_(config), ssd_(ssd), layout_(layout),
      cmd_queue_("isp-cmd", config.queue_depth)
{
    SS_ASSERT(config.coalesce_targets > 0,
              "coalescing granularity must be positive");
}

void
IspEngine::submitGroup(sim::EventQueue &eq, const NodeWork *work,
                       std::size_t count, IspBatchResult &result,
                       sim::IoCompletion done) const
{
    cmd_queue_.submit(
        eq,
        [this, work, count, &result](sim::Tick start) {
            return serviceGroup(work, count, start, result);
        },
        std::move(done));
}

sim::Tick
IspEngine::runGroup(const NodeWork *work, std::size_t count,
                    sim::Tick arrival, IspBatchResult &result) const
{
    return sim::drainOne(
        drain_eq_, arrival,
        [&](sim::EventQueue &eq, sim::IoCompletion done) {
            submitGroup(eq, work, count, result, std::move(done));
        },
        cmd_queue_.name(), cmd_queue_.submitted());
}

void
IspEngine::reset()
{
    cmd_queue_.reset();
    drain_eq_.reset();
}

sim::Tick
IspEngine::serviceGroup(const NodeWork *work, std::size_t count,
                        sim::Tick arrival, IspBatchResult &result) const
{
    const auto &ssd_cfg = ssd_.config();

    // One NVMe write command carries a pointer to NSconfig; the SSD
    // DMAs the blob over and the firmware parses every work item.
    std::uint64_t ns_bytes = config_.format.bytesFor(count);
    sim::Tick blob_in = ssd_.dmaFromHost(arrival, ns_bytes);
    result.bytes_from_host += ns_bytes;
    ++result.commands;

    sim::Tick parse_work = ssd_cfg.nvme_command +
                           ssd_cfg.isp_per_target * count;
    sim::Tick parsed = ssd_.cores().execute(blob_in, parse_work).finish;

    // Phase 1 (issue loop): translate and launch every node's flash
    // page requests up front; dies and channels overlap freely. The
    // firmware's issue loop runs ahead of completions exactly like
    // this on real CSDs — serializing issue behind gather would idle
    // the flash array.
    struct PendingGather
    {
        sim::Tick buffered;   //!< all of the node's pages in the buffer
        sim::Tick gather;     //!< firmware gather cost
    };
    std::vector<PendingGather> pending;
    pending.reserve(count);
    std::vector<std::uint64_t> pages;
    std::uint64_t subgraph_entries = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const NodeWork &w = work[i];
        if (w.entries.empty())
            continue;
        subgraph_entries += w.entries.size();

        pages.clear();
        for (std::uint64_t e : w.entries)
            pages.push_back(ssd_.ftl().pageOf(layout_.addrOf(e)));
        std::sort(pages.begin(), pages.end());
        pages.erase(std::unique(pages.begin(), pages.end()),
                    pages.end());
        result.flash_pages += pages.size();

        sim::Tick buffered = parsed;
        for (std::uint64_t lpn : pages)
            buffered = std::max(buffered, ssd_.fetchPage(parsed, lpn));
        pending.push_back(
            {buffered, ssd_cfg.isp_per_edge * w.entries.size()});
    }

    // Phase 2 (completion loop): gather each node's samples out of the
    // page buffer on the embedded cores, in page-arrival order.
    std::sort(pending.begin(), pending.end(),
              [](const PendingGather &a, const PendingGather &b) {
                  return a.buffered < b.buffered;
              });
    sim::Tick group_done = parsed;
    for (const auto &p : pending) {
        group_done = std::max(
            group_done,
            ssd_.cores().execute(p.buffered, p.gather).finish);
    }

    // Ship back the densely packed sampled-ID list (Fig 10(b)).
    std::uint64_t out_bytes =
        (subgraph_entries + count) * layout_.entry_bytes;
    result.bytes_to_host += out_bytes;
    return ssd_.dmaToHost(group_done, out_bytes);
}

IspBatchResult
IspEngine::runBatch(const IspTraceVisitor &trace,
                    sim::Tick arrival) const
{
    const auto &work = trace.work();
    IspBatchResult result;
    if (work.empty()) {
        result.finish = arrival;
        return result;
    }

    // The coalescing granularity is expressed in top-level targets; the
    // flattened multi-hop work list is split into proportionally many
    // contiguous groups (hop-2 frontier nodes travel with their group).
    std::size_t groups =
        (trace.numTargets() + config_.coalesce_targets - 1) /
        config_.coalesce_targets;
    groups = std::max<std::size_t>(1, std::min(groups, work.size()));
    std::size_t per_group = (work.size() + groups - 1) / groups;

    sim::Tick finish = arrival;
    sim::Tick submit = arrival;
    for (std::size_t g = 0; g < groups; ++g) {
        std::size_t lo = g * per_group;
        if (lo >= work.size())
            break;
        std::size_t n = std::min(per_group, work.size() - lo);
        // Host driver submits commands back-to-back.
        submit += config_.host_submit;
        finish = std::max(finish,
                          runGroup(work.data() + lo, n, submit, result));
    }
    result.finish = finish;
    return result;
}

} // namespace smartsage::isp
