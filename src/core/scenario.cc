#include "scenario.hh"

#include <algorithm>
#include <cstdio>

#include "backend.hh"
#include "host/feature_cache.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace smartsage::core
{

namespace
{

/** Compact number rendering for labels ("16", "0.4"). */
std::string
fmtValue(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

/** Join integers with @p sep ("25-10", "256+1024"). */
template <typename T>
std::string
joinInts(const std::vector<T> &values, char sep)
{
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i)
            out += sep;
        out += std::to_string(values[i]);
    }
    return out;
}

} // namespace

std::string
KnobSetting::label() const
{
    return key + "=" + fmtValue(value);
}

std::string
fanoutLabel(const std::vector<unsigned> &fanouts)
{
    return joinInts(fanouts, '-');
}

std::string
mixLabel(const std::vector<std::size_t> &mix)
{
    return mix.empty() ? "uniform" : joinInts(mix, '+');
}

std::string
overrideLabel(const std::vector<KnobSetting> &knobs)
{
    if (knobs.empty())
        return "baseline";
    std::string out;
    for (std::size_t i = 0; i < knobs.size(); ++i) {
        if (i)
            out += ' ';
        out += knobs[i].label();
    }
    return out;
}

namespace
{
bool applyBackendKnob(SystemConfig &config, const KnobSetting &knob);
} // namespace

bool
applyKnob(SystemConfig &config, const KnobSetting &knob)
{
    std::string_view key = knob.key;
    double value = knob.value;

    auto strip = [&key](std::string_view prefix) {
        if (key.substr(0, prefix.size()) != prefix)
            return false;
        key.remove_prefix(prefix.size());
        return true;
    };
    if (strip("ssd."))
        return ssd::applyKnob(config.ssd, key, value);
    if (strip("isp."))
        return isp::applyKnob(config.isp, key, value);
    if (strip("fpga."))
        return isp::applyKnob(config.fpga, key, value);
    if (strip("host."))
        return host::applyKnob(config.host, key, value);
    if (strip("fault."))
        return sim::applyKnob(config.fault, key, value);
    if (strip("retry."))
        return sim::applyKnob(config.retry, key, value);
    if (strip("sched."))
        return sim::applyKnob(config.sched, key, value);
    if (strip("admit."))
        return sim::applyKnob(config.admit, key, value);
    if (strip("tenant."))
        return core::applyKnob(config.tenants, key, value);
    if (strip("ckpt."))
        return core::applyKnob(config.ckpt, key, value);
    if (strip("kernel."))
        return gnn::applyKnob(config.kernel, key, value);

    // Top-level SystemConfig knobs.
    if (key == "page_cache_fraction")
        config.page_cache_fraction = value;
    else if (key == "scratchpad_fraction")
        config.scratchpad_fraction = value;
    else if (key == "ssd_buffer_fraction")
        config.ssd_buffer_fraction = value;
    else if (key == "hidden_dim")
        config.hidden_dim = static_cast<unsigned>(value);
    else if (key == "use_saint")
        config.use_saint = value != 0;
    else if (key == "saint_walk_length")
        config.saint_walk_length = static_cast<unsigned>(value);
    else if (key == "else_per_batch_us")
        config.pipeline.else_per_batch = sim::us(value);
    else
        return applyBackendKnob(config, knob);
    return true;
}

namespace
{

bool
applyBackendKnob(SystemConfig &config, const KnobSetting &knob)
{
    // Extension namespaces claimed by registered backends (e.g.
    // "multi-ssd.shards"): stored verbatim for the owning backend to
    // interpret at build time. The builtin namespaces were already
    // dispatched above, so anything matching here is backend-private.
    for (const StorageBackend *backend :
         BackendRegistry::instance().all()) {
        for (const std::string &ns : backend->caps().knob_namespaces) {
            if (ns == "ssd." || ns == "isp." || ns == "fpga." ||
                ns == "host.")
                continue;
            if (knob.key.rfind(ns, 0) == 0) {
                config.backend_knobs[knob.key] = knob.value;
                return true;
            }
        }
    }
    return false;
}

} // namespace

std::vector<std::string>
Scenario::resolvedBackends() const
{
    if (!backends.empty())
        return backends;
    std::vector<std::string> out;
    out.reserve(designs.size());
    for (DesignPoint dp : designs)
        out.push_back(backendIdOf(dp));
    return out;
}

std::size_t
Scenario::gridSize() const
{
    std::size_t cells = datasets.size() * resolvedBackends().size() *
                        fanout_grid.size() * batch_sizes.size() *
                        batch_mixes.size() * overrides.size() *
                        worker_grid.size();
    if (kind == ExperimentKind::Serving)
        cells *= arrival_rates.size() * queue_depths.size();
    return cells;
}

std::string
ExperimentCell::label() const
{
    std::string out = graph::datasetName(dataset) + "/" +
                      backendDisplayName(backend) +
                      "/f=" + fanoutLabel(fanouts) + "/b=";
    out += batch_mix.empty() ? std::to_string(batch_size)
                             : mixLabel(batch_mix);
    for (const auto &knob : knobs)
        out += "/" + knob.label();
    if (kind == ExperimentKind::Serving) {
        out += "/rate=" + fmtValue(arrival_qps);
        out += "/qd=" + (queue_depth ? std::to_string(queue_depth)
                                     : std::string("default"));
    } else {
        out += "/w=" + std::to_string(sim_workers);
    }
    return out;
}

std::vector<ExperimentCell>
expandScenario(const Scenario &scenario)
{
    std::vector<std::string> backend_axis = scenario.resolvedBackends();
    SS_ASSERT(!scenario.datasets.empty() && !backend_axis.empty() &&
                  !scenario.fanout_grid.empty() &&
                  !scenario.batch_sizes.empty() &&
                  !scenario.batch_mixes.empty() &&
                  !scenario.overrides.empty() &&
                  !scenario.worker_grid.empty(),
              "scenario '", scenario.family, "' has an empty grid axis");

    // Unknown backend ids die here, listing the registered set.
    for (const auto &id : backend_axis)
        BackendRegistry::instance().get(id);

    // The serving axes only multiply the grid for serving scenarios;
    // other kinds iterate a single dummy point so their expansion (and
    // therefore the default BENCH_designspace.json) is untouched.
    const bool serving = scenario.kind == ExperimentKind::Serving;
    const std::vector<double> rate_axis =
        serving ? scenario.arrival_rates : std::vector<double>{0};
    const std::vector<unsigned> depth_axis =
        serving ? scenario.queue_depths : std::vector<unsigned>{0};
    if (serving)
        SS_ASSERT(!rate_axis.empty() && !depth_axis.empty(),
                  "scenario '", scenario.family,
                  "' has an empty serving axis");

    std::vector<ExperimentCell> cells;
    cells.reserve(scenario.gridSize());
    sim::Rng master(scenario.seed);

    for (auto dataset : scenario.datasets)
     for (const auto &backend : backend_axis)
      for (const auto &fanouts : scenario.fanout_grid)
       for (auto batch_size : scenario.batch_sizes)
        for (const auto &mix : scenario.batch_mixes)
         for (const auto &knobs : scenario.overrides)
          for (auto workers : scenario.worker_grid)
           for (auto rate : rate_axis)
            for (auto depth : depth_axis) {
              ExperimentCell cell;
              cell.index = cells.size();
              cell.family = scenario.family;
              cell.kind = scenario.kind;
              cell.dataset = dataset;
              cell.large_scale = scenario.large_scale;
              cell.backend = backend;
              cell.fanouts = fanouts;
              cell.batch_size = batch_size;
              cell.batch_mix = mix;
              cell.knobs = knobs;
              cell.sim_workers = workers;
              cell.num_batches = scenario.num_batches;
              if (serving) {
                  cell.arrival_qps = rate;
                  cell.queue_depth = depth;
                  cell.serve_requests = scenario.serve_requests;
                  cell.serve_fanout = scenario.serve_fanout;
                  cell.serve_poisson = scenario.serve_poisson;
                  cell.serve_seed = scenario.seed;
              }

              SystemConfig sc;
              sc.backend = backend;
              if (const DesignPoint *dp = designPointOf(backend))
                  sc.design = *dp; // keep the legacy alias coherent
              sc.fanouts = fanouts;
              sc.pipeline.workers = workers;
              sc.pipeline.num_batches = scenario.num_batches;
              sc.pipeline.batch_size = batch_size;
              sc.pipeline.batch_mix = mix;
              // Independent stream per cell, reproducible at any
              // runner worker count because it depends only on index.
              sc.pipeline.seed = master.fork(cell.index).next();
              for (const auto &knob : knobs) {
                  if (!applyKnob(sc, knob))
                      SS_FATAL("scenario '", scenario.family,
                               "': unknown config knob '", knob.key, "'");
              }
              if (serving && depth > 0)
                  sc.host.io_queue_depth = depth;
              cell.config = std::move(sc);
              cells.push_back(std::move(cell));
          }
    return cells;
}

namespace
{

Scenario
designSpaceScenario()
{
    Scenario s;
    s.family = "design-space";
    s.title = "Design space: every design point, paper defaults";
    s.kind = ExperimentKind::Pipeline;
    s.designs = allDesignPoints();
    s.worker_grid = {12};
    s.num_batches = 24;
    return s;
}

Scenario
fanoutSweepScenario()
{
    Scenario s;
    s.family = "fanout-sweep";
    s.title = "Fanout sweep: sampling rate vs ISP benefit";
    s.kind = ExperimentKind::SamplingOnly;
    s.designs = {DesignPoint::SsdMmap, DesignPoint::SmartSageHwSw};
    s.fanout_grid = {{5}, {10, 5}, {15, 10}, {25, 10}, {25, 10, 5}};
    s.num_batches = 8;
    return s;
}

Scenario
ssdGeometryScenario()
{
    Scenario s;
    s.family = "ssd-geometry";
    s.title = "SSD geometry: flash channels/dies vs in-storage sampling";
    s.kind = ExperimentKind::SamplingOnly;
    s.designs = {DesignPoint::SmartSageHwSw};
    s.overrides = {
        {},
        {{"ssd.flash.channels", 2}},
        {{"ssd.flash.channels", 4}},
        {{"ssd.flash.channels", 16}},
        {{"ssd.flash.channels", 32}},
        {{"ssd.flash.dies_per_channel", 2}},
        {{"ssd.flash.dies_per_channel", 8}},
        {{"ssd.flash.channels", 16}, {"ssd.flash.dies_per_channel", 8}},
    };
    s.num_batches = 8;
    return s;
}

Scenario
tenantMixScenario()
{
    Scenario s;
    s.family = "tenant-mix";
    s.title = "Multi-tenant batch mix: heterogeneous tenants sharing "
              "the storage stack";
    s.kind = ExperimentKind::Pipeline;
    s.designs = {DesignPoint::SsdMmap, DesignPoint::SmartSageHwSw};
    s.batch_mixes = {{}, {256, 1024}, {128, 256, 512, 1024}, {64, 2048}};
    s.worker_grid = {8};
    s.num_batches = 16;
    return s;
}

Scenario
batchSizeScenario()
{
    Scenario s;
    s.family = "batch-size";
    s.title = "Batch-size sensitivity (Section VI-F)";
    s.kind = ExperimentKind::SamplingOnly;
    s.designs = {DesignPoint::SsdMmap, DesignPoint::SmartSageHwSw};
    s.fanout_grid = {{10, 5}};
    s.batch_sizes = {64, 128, 256};
    s.num_batches = 8;
    return s;
}

Scenario
pageBufferScenario()
{
    Scenario s;
    s.family = "page-buffer";
    s.title = "SSD page-buffer capacity sweep (DESIGN.md ablation)";
    s.kind = ExperimentKind::SamplingOnly;
    s.designs = {DesignPoint::SmartSageHwSw};
    s.overrides = {
        {{"ssd_buffer_fraction", 0.02}}, {{"ssd_buffer_fraction", 0.15}},
        {{"ssd_buffer_fraction", 0.4}},  {{"ssd_buffer_fraction", 0.8}},
        {{"ssd_buffer_fraction", 1.5}},
    };
    s.num_batches = 8;
    return s;
}

Scenario
workerScalingScenario()
{
    Scenario s;
    s.family = "worker-scaling";
    s.title = "Producer worker scaling (Fig 17 regime)";
    s.kind = ExperimentKind::Pipeline;
    s.designs = {DesignPoint::SsdMmap, DesignPoint::SmartSageHwSw};
    s.worker_grid = {1, 2, 4, 8, 12, 16};
    s.num_batches = 16;
    return s;
}

Scenario
servingLoadScenario()
{
    // Registry-driven like backend-space, but restricted to backends
    // the serving harness can drive (a host-side edge store). The
    // arrival-rate axis spans comfortably-below-capacity through
    // saturation for the SSD-backed stores, so the latency tail's
    // rise with load is visible in one table; the queue-depth axis
    // shows the admission bound trading tail latency for fairness.
    Scenario s;
    s.family = "serving-load";
    s.title = "Online serving: open-loop arrivals vs storage backend";
    s.kind = ExperimentKind::Serving;
    s.backends = servableBackendIds();
    s.arrival_rates = {2000, 10000, 50000};
    s.queue_depths = {4, 32};
    s.serve_requests = 768;
    s.serve_fanout = 10;
    return s;
}

/**
 * The cache-policy override grid: a no-cache baseline plus every
 * replacement policy at a small and a large capacity fraction. Shared
 * by the serving- and throughput-kind cache families so both compare
 * the same policy x capacity points.
 */
std::vector<std::vector<KnobSetting>>
cachePolicyOverrides()
{
    const host::FeatureCachePolicy policies[] = {
        host::FeatureCachePolicy::Lru,
        host::FeatureCachePolicy::Clock,
        host::FeatureCachePolicy::LfuLite,
        host::FeatureCachePolicy::DegreePin,
    };
    std::vector<std::vector<KnobSetting>> overrides{{}};
    for (double fraction : {0.1, 0.4})
        for (host::FeatureCachePolicy policy : policies)
            overrides.push_back(
                {{"cache.policy", static_cast<double>(policy)},
                 {"cache.capacity_fraction", fraction}});
    // Miss-path variants at the headline capacity: the MSHR ablation
    // (coalescing off, the pre-MSHR miss path) quantifies what
    // piggybacking buys, and the hoard-prefetch points are the cells
    // whose prefetch_hit_frac the bench gate watches.
    overrides.push_back({{"cache.policy", 0.0},
                         {"cache.capacity_fraction", 0.4},
                         {"cache.mshr.enabled", 0.0}});
    overrides.push_back({{"cache.policy", 0.0},
                         {"cache.capacity_fraction", 0.4},
                         {"cache.prefetch.enabled", 1.0}});
    overrides.push_back({{"cache.policy", 2.0},
                         {"cache.capacity_fraction", 0.4},
                         {"cache.prefetch.enabled", 1.0}});
    return overrides;
}

Scenario
cachePolicyServingScenario()
{
    // Registry-driven like serving-load: every backend with a host
    // edge store, each behind the same policy x capacity cache grid on
    // one fixed open-loop operating point, so hit-rate and tail
    // latency separate by policy rather than by load.
    Scenario s;
    s.family = "cache-policy";
    s.title = "Feature cache: policy x capacity x backend, open-loop "
              "serving tails";
    s.kind = ExperimentKind::Serving;
    s.artifact = "cache-policy";
    s.backends = servableBackendIds();
    s.overrides = cachePolicyOverrides();
    s.arrival_rates = {20000};
    s.queue_depths = {16};
    s.serve_requests = 768;
    s.serve_fanout = 10;
    return s;
}

Scenario
cachePolicyThroughputScenario()
{
    // The same policy x capacity grid under the closed sampling
    // pipeline: what the cache buys batch throughput.
    Scenario s;
    s.family = "cache-policy-throughput";
    s.title = "Feature cache: policy x capacity x backend, sampling "
              "throughput";
    s.kind = ExperimentKind::SamplingOnly;
    s.artifact = "cache-policy";
    s.backends = servableBackendIds();
    s.overrides = cachePolicyOverrides();
    s.fanout_grid = {{10, 5}};
    s.num_batches = 8;
    return s;
}

/**
 * The fault-space override grid: a fault-free baseline plus three
 * fault intensities, each with retries off (max_attempts 1) and on
 * (max_attempts 4). One knob scales every fault source together —
 * transient host read errors and ECC re-reads at the full rate,
 * shard outages at half, slowdowns at a fifth — so a single axis
 * sweeps "how broken is the storage". Every point carries the same
 * deadline, keeping the emitted metric set uniform across the family
 * (the recovery columns appear whenever a deadline is configured).
 */
std::vector<std::vector<KnobSetting>>
faultSpaceOverrides()
{
    std::vector<std::vector<KnobSetting>> overrides;
    for (double rate : {0.0, 0.02, 0.1, 0.25}) {
        for (double attempts : {1.0, 4.0}) {
            std::vector<KnobSetting> point = {
                {"fault.read_error_rate", rate},
                {"fault.ecc_rate", rate},
                {"fault.shard_outage_rate", rate * 0.5},
                {"fault.slow_rate", rate * 0.2},
                {"retry.max_attempts", attempts},
                {"retry.backoff_base_us", 50},
                {"retry.timeout_us", 100000},
            };
            overrides.push_back(std::move(point));
        }
    }
    return overrides;
}

Scenario
faultSpaceScenario()
{
    // Registry-driven like serving-load: every backend with a host
    // edge store on one fixed open-loop operating point, swept over
    // fault intensity x retry policy. The product is the recovery
    // surface: goodput vs offered load, shed fraction, retry counts,
    // and the latency tail under faults.
    Scenario s;
    s.family = "fault-space";
    s.title = "Fault space: fault rate x retry policy x backend, "
              "open-loop serving";
    s.kind = ExperimentKind::Serving;
    s.artifact = "faults";
    s.backends = servableBackendIds();
    s.overrides = faultSpaceOverrides();
    s.arrival_rates = {10000};
    s.queue_depths = {16};
    s.serve_requests = 512;
    s.serve_fanout = 10;
    return s;
}

/**
 * The slo-space override grid. Every point shares the same two-tenant
 * workload — an interactive class (low fanout, tight SLO, high
 * priority) and a batch class (heavy fanout, no SLO) whose combined
 * offered load oversubscribes the host I/O channel — and varies the
 * scheduling discipline and the interactive stream's arrival shape:
 *
 *  - "fifo":      the untagged baseline; the batch flood queues ahead
 *                 of interactive requests and the SLO collapses;
 *  - "edf+admit": deadline-aware dispatch plus SLO-aware admission —
 *                 the closed-loop answer the family exists to measure;
 *  - "prio+bound": strict priority dispatch with a bounded queue, the
 *                 simpler middle ground;
 *  - shape variants (diurnal / bursty / flash-crowd) stress the
 *                 admission estimator with a non-stationary batch
 *                 flood, all under edf+admit;
 *  - "closed":    the interactive class as a closed-loop client
 *                 population pacing itself off completions.
 */
std::vector<std::vector<KnobSetting>>
sloSpaceOverrides()
{
    // The shared two-tenant workload. The interactive class answers
    // users (small gathers, 2 ms SLO); the batch class is a training
    // frontend flooding the same channel with large gathers. Request
    // budgets are explicit and proportional to the rates, so both
    // streams span the same simulated window and the flood is
    // sustained for the whole run rather than draining early.
    const std::vector<KnobSetting> tenants = {
        {"tenant.0.qps", 10000},   {"tenant.0.fanout", 4},
        {"tenant.0.slo_us", 2000}, {"tenant.0.priority", 10},
        {"tenant.0.requests", 64},
        {"tenant.1.qps", 200000},  {"tenant.1.fanout", 16},
        {"tenant.1.requests", 1280},
    };
    auto with = [&tenants](std::initializer_list<KnobSetting> extra) {
        std::vector<KnobSetting> point = tenants;
        point.insert(point.end(), extra.begin(), extra.end());
        return point;
    };
    const KnobSetting edf{"sched.policy", 2};
    const KnobSetting slo_admit{"admit.slo_aware", 1};
    return {
        with({}), // plain FIFO, no admission: the degraded baseline
        with({edf, slo_admit}),
        with({{"sched.policy", 1}, {"admit.max_queue", 64}}),
        // Non-stationary batch floods, each under edf+admit.
        with({{"tenant.1.shape", 2}, {"tenant.1.shape_mag", 3},
              edf, slo_admit}),
        with({{"tenant.1.shape", 3}, {"tenant.1.shape_mag", 4},
              edf, slo_admit}),
        with({{"tenant.1.shape", 4}, {"tenant.1.shape_mag", 6},
              edf, slo_admit}),
        // Interactive tenant as a closed-loop client population.
        with({{"tenant.0.clients", 8}, {"tenant.0.think_us", 300},
              edf, slo_admit}),
    };
}

Scenario
sloSpaceScenario()
{
    // Registry-driven like fault-space: every backend with a host edge
    // store on one oversubscribed operating point, swept over the
    // scheduling-discipline x arrival-shape grid above. The product is
    // the SLO surface: per-tenant attainment, goodput, and shed
    // fraction under contention (BENCH_slo.json).
    Scenario s;
    s.family = "slo-space";
    s.title = "SLO space: multi-tenant serving x scheduling policy x "
              "arrival shape";
    s.kind = ExperimentKind::Serving;
    s.artifact = "slo";
    s.backends = servableBackendIds();
    s.overrides = sloSpaceOverrides();
    s.arrival_rates = {210000}; // nominal aggregate (tenants carry rates)
    s.queue_depths = {8};
    s.serve_requests = 512;
    s.serve_fanout = 10;
    return s;
}

/**
 * The recovery-space override grid: one shared crash point (the run
 * dies while batch 3 of 4 is in flight) under checkpoint intervals
 * 1, 2, and 4 — losing 0, 1, and 3 batches of work respectively —
 * plus a warm-cache restart point at interval 2. Small absolute batch
 * counts keep the family smoke-sized while still separating the
 * intervals.
 */
std::vector<std::vector<KnobSetting>>
recoverySpaceOverrides()
{
    std::vector<std::vector<KnobSetting>> overrides;
    for (double interval : {1.0, 2.0, 4.0})
        overrides.push_back({{"ckpt.interval_batches", interval},
                             {"fault.kill_batch", 3}});
    overrides.push_back(
        {{"ckpt.interval_batches", 2},
         {"fault.kill_batch", 3},
         {"ckpt.warm_cache", 1},
         {"cache.policy",
          static_cast<double>(host::FeatureCachePolicy::Lru)},
         {"cache.capacity_fraction", 0.4}});
    return overrides;
}

Scenario
recoverySpaceScenario()
{
    // Registry-driven like fault-space: every backend with a host edge
    // store, each crash-restarted under the checkpoint-interval grid
    // above. The product is the recovery surface — restart time, lost
    // work, and checkpoint write overhead — plus the headline
    // suspend/resume bit-identity check (BENCH_recovery.json).
    Scenario s;
    s.family = "recovery-space";
    s.title = "Recovery space: checkpoint interval x backend, "
              "crash-restarted training";
    s.kind = ExperimentKind::Recovery;
    s.artifact = "recovery";
    s.backends = servableBackendIds();
    s.overrides = recoverySpaceOverrides();
    s.fanout_grid = {{10, 5}};
    s.batch_sizes = {128};
    s.worker_grid = {4};
    s.num_batches = 4; // smoke-sized by construction
    s.large_scale = false;
    return s;
}

Scenario
backendSpaceScenario()
{
    // Registry-driven: every backend alive in this build, including
    // plugins registered outside core — except backends that opt out
    // of the default grids (BackendCaps::in_default_grids; they have
    // their own dedicated family). Sorted ids keep the grid
    // deterministic regardless of static registration order.
    Scenario s;
    s.family = "backend-space";
    s.title = "Backend space: every registered storage backend";
    s.kind = ExperimentKind::Pipeline;
    for (const StorageBackend *backend :
         BackendRegistry::instance().all()) {
        if (backend->caps().in_default_grids)
            s.backends.push_back(backend->id());
    }
    s.worker_grid = {8};
    s.num_batches = 16;
    return s;
}

Scenario
scalingScenario()
{
    // Scale-out axes of the partitioned backend: node count x link
    // bandwidth x cut strategy, sampling-only so the storage+network
    // path dominates. The per-group nodes=1 cell is the scaling
    // baseline: scaling_speedup/scaling_efficiency columns are
    // annotated post-run (annotateScalingMetrics) from avg_sample_ms.
    Scenario s;
    s.family = "scaling";
    s.title = "Scale-out: partitioned nodes x link bandwidth x "
              "cut strategy";
    s.kind = ExperimentKind::SamplingOnly;
    s.artifact = "scaling";
    s.backends = {"partitioned"};
    s.overrides.clear();
    for (double strategy : {0.0, 1.0})
        for (double gbps : {10.0, 100.0})
            for (double nodes : {1.0, 2.0, 4.0})
                s.overrides.push_back(
                    {// Keep the cells flash-bound even at smoke sizes:
                     // a single-way controller buffer shrinks the
                     // set-associative floor below the working set, and
                     // a one-channel, one-die flash array per node
                     // makes the cluster's aggregate die count — the
                     // resource scale-out actually buys — the unit the
                     // concurrent producer timelines queue on.
                     {"scratchpad_fraction", 0.02},
                     {"ssd.page_buffer_ways", 1},
                     {"ssd.flash.channels", 1},
                     {"ssd.flash.dies_per_channel", 1},
                     {"part.strategy", strategy},
                     {"net.bandwidth_gbps", gbps},
                     {"part.nodes", nodes}});
    return s;
}

} // namespace

const std::vector<Scenario> &
builtinScenarios()
{
    static const std::vector<Scenario> scenarios = {
        designSpaceScenario(), fanoutSweepScenario(),
        ssdGeometryScenario(), tenantMixScenario(),
        batchSizeScenario(),   pageBufferScenario(),
        workerScalingScenario(),
    };
    return scenarios;
}

std::vector<std::string>
servableBackendIds()
{
    std::vector<std::string> out;
    for (const StorageBackend *backend :
         BackendRegistry::instance().all()) {
        if (backend->caps().edge_store != EdgeStoreKind::None &&
            backend->caps().in_default_grids)
            out.push_back(backend->id());
    }
    return out;
}

const std::vector<Scenario> &
extraScenarios()
{
    static const std::vector<Scenario> scenarios = {
        backendSpaceScenario(),
        servingLoadScenario(),
        cachePolicyServingScenario(),
        cachePolicyThroughputScenario(),
        faultSpaceScenario(),
        sloSpaceScenario(),
        recoverySpaceScenario(),
        scalingScenario(),
    };
    return scenarios;
}

const Scenario *
findScenario(const std::string &family)
{
    for (const auto &s : builtinScenarios())
        if (s.family == family)
            return &s;
    for (const auto &s : extraScenarios())
        if (s.family == family)
            return &s;
    return nullptr;
}

Scenario
smokeVariant(Scenario scenario)
{
    scenario.large_scale = false;
    scenario.num_batches = std::min<std::size_t>(scenario.num_batches, 4);
    scenario.serve_requests =
        std::min<std::size_t>(scenario.serve_requests, 192);
    return scenario;
}

} // namespace smartsage::core
