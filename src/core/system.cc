#include "system.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "backend.hh"
#include "host/feature_cache.hh"
#include "pipeline/scheduler.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/thread_pool.hh"

namespace smartsage::core
{

Workload
Workload::make(graph::DatasetId id, bool large_scale,
               unsigned num_classes)
{
    const auto &spec = graph::datasetSpec(id);
    graph::CsrGraph g =
        large_scale ? spec.buildLargeScale() : spec.buildInMemory();
    std::uint64_t n = g.numNodes();
    return Workload{
        id, std::move(g),
        gnn::FeatureTable(n, spec.feature_dim, num_classes)};
}

std::uint64_t
Workload::edgeListBytes(const graph::EdgeLayout &layout) const
{
    return graph.numEdges() * layout.entry_bytes;
}

unsigned
SystemConfig::depth() const
{
    return use_saint ? saint_walk_length
                     : static_cast<unsigned>(fanouts.size());
}

const std::string &
SystemConfig::resolvedBackend() const
{
    return backend.empty() ? backendIdOf(design) : backend;
}

double
SystemConfig::knobOr(const std::string &key, double fallback) const
{
    auto it = backend_knobs.find(key);
    return it == backend_knobs.end() ? fallback : it->second;
}

void
SystemConfig::validate() const
{
    auto checkFraction = [](const char *name, double value, double hi) {
        // !(in range) also catches NaN.
        if (!(value >= 0.0 && value <= hi))
            SS_FATAL("SystemConfig: ", name, " must be within [0, ", hi,
                     "], got ", value);
    };
    checkFraction("page_cache_fraction", page_cache_fraction, 1.0);
    checkFraction("scratchpad_fraction", scratchpad_fraction, 1.0);
    // The SSD page buffer may be deliberately oversized past the edge
    // file for ablations (the "page-buffer" family sweeps up to 1.5x).
    checkFraction("ssd_buffer_fraction", ssd_buffer_fraction, 2.0);

    sim::validate(fault);
    sim::validate(retry);
    core::validate(tenants);
    core::validate(ckpt);

    if (use_saint) {
        if (saint_walk_length == 0)
            SS_FATAL("SystemConfig: saint_walk_length must be >= 1 "
                     "when use_saint is set");
        return;
    }
    if (fanouts.empty())
        SS_FATAL("SystemConfig: fanouts must not be empty for "
                 "GraphSAGE sampling (set use_saint for random walks)");
    for (unsigned f : fanouts)
        if (f == 0)
            SS_FATAL("SystemConfig: fanouts must all be >= 1, got a 0 "
                     "entry in the fanout vector");
}

namespace
{

/** Scale a cache budget off the edge-list size, with a sane floor. */
std::uint64_t
scaledCache(double fraction, std::uint64_t edge_bytes,
            std::uint64_t line_bytes, unsigned ways)
{
    std::uint64_t floor_bytes = line_bytes * ways * 8;
    auto want = static_cast<std::uint64_t>(fraction *
                                           static_cast<double>(edge_bytes));
    return std::max(want, floor_bytes);
}

} // namespace

GnnSystem::GnnSystem(const SystemConfig &config, const Workload &workload)
    : config_(config), workload_(workload)
{
    config_.validate();

    // Microkernel selection is process-global (the tensor layer has no
    // per-system state); install the configured flavor before any
    // training math runs.
    gnn::applyKernelConfig(config_.kernel);

    // Sampler.
    if (config_.use_saint)
        sampler_ = std::make_unique<gnn::SaintSampler>(
            config_.saint_walk_length);
    else
        sampler_ = std::make_unique<gnn::SageSampler>(config_.fanouts);

    // Cache budgets follow the dataset's on-device footprint.
    std::uint64_t edge_bytes = workload.edgeListBytes(config_.layout);
    config_.host.page_cache_bytes =
        scaledCache(config_.page_cache_fraction, edge_bytes,
                    config_.host.os_page_bytes,
                    config_.host.page_cache_ways);
    config_.host.scratchpad_bytes =
        scaledCache(config_.scratchpad_fraction, edge_bytes,
                    config_.host.os_page_bytes,
                    config_.host.scratchpad_ways);
    config_.ssd.page_buffer_bytes =
        scaledCache(config_.ssd_buffer_fraction, edge_bytes,
                    config_.ssd.flash.page_bytes,
                    config_.ssd.page_buffer_ways);

    // Propagate the system-wide fault schedule into the subsystem
    // configs the backends build from: the host I/O path (transient
    // errors, slowdowns, retry policy) and the flash array (ECC).
    // Sharded backends copy config_.host/config_.ssd per shard, so
    // they inherit the plan with no wiring of their own.
    config_.host.fault = config_.fault;
    config_.host.retry = config_.retry;
    config_.ssd.flash.fault = config_.fault;
    // Scheduling and admission ride the same propagation: the host
    // I/O channel is built from config_.host, so every backend's edge
    // store picks up the dispatch policy without wiring of its own.
    config_.host.sched = config_.sched;
    config_.host.admit = config_.admit;

    // Substrate composition is entirely the backend's business.
    const StorageBackend &backend =
        BackendRegistry::instance().get(config_.resolvedBackend());
    backend_ = backend.build({config_, workload_, *sampler_});

    gnn::ModelConfig mc;
    mc.in_dim = workload_.features.dim();
    mc.hidden_dim = config_.hidden_dim;
    mc.num_classes = workload_.features.numClasses();
    mc.depth = config_.depth();
    gpu_ = std::make_unique<gnn::GpuTimingModel>(config_.gpu, mc);
}

GnnSystem::~GnnSystem() = default;

pipeline::SubgraphProducer &
GnnSystem::producer()
{
    return backend_->producer();
}

BackendInstance &
GnnSystem::backend() const
{
    return *backend_;
}

ssd::SsdDevice *
GnnSystem::ssd()
{
    return backend_->ssd();
}

host::EdgeStore *
GnnSystem::edgeStore()
{
    return backend_->edgeStore();
}

const host::FeatureCacheStore *
GnnSystem::featureCache() const
{
    return dynamic_cast<const host::FeatureCacheStore *>(
        backend_->edgeStore());
}

host::FeatureCacheStore *
GnnSystem::featureCache()
{
    return dynamic_cast<host::FeatureCacheStore *>(
        backend_->edgeStore());
}

pipeline::PipelineResult
GnnSystem::runPipeline()
{
    pipeline::TrainingPipeline pipe(config_.pipeline, config_.host,
                                    *gpu_, workload_.features);
    return pipe.run(backend_->producer(), workload_.graph);
}

std::vector<GnnSystem::StatRow>
GnnSystem::statRows() const
{
    std::vector<StatRow> rows;
    auto add = [&rows](const std::string &name, double value,
                       const std::string &desc) {
        rows.push_back({name, value, desc});
    };
    add("graph.nodes", static_cast<double>(workload_.graph.numNodes()),
        "graph nodes");
    add("graph.edges", static_cast<double>(workload_.graph.numEdges()),
        "graph edges");
    backend_->addStats(add);
    // The feature-cache decorator reports centrally so every backend's
    // stats gain the cache rows without per-backend wiring. Absent
    // when the cache is disabled, keeping the default stats documents
    // identical to the pre-cache schema.
    if (const host::FeatureCacheStore *cache = featureCache()) {
        const host::FeatureCacheStats &cs = cache->stats();
        add("host.feature_cache.policy",
            static_cast<double>(cache->params().policy),
            "replacement policy id (0=lru 1=clock 2=lfu-lite "
            "3=degree-pin)");
        add("host.feature_cache.capacity_lines",
            static_cast<double>(cache->params().capacityLines()),
            "cache capacity in lines");
        add("host.feature_cache.hits", static_cast<double>(cs.hits),
            "line touches found resident");
        add("host.feature_cache.misses", static_cast<double>(cs.misses),
            "line touches that went to storage");
        add("host.feature_cache.evictions",
            static_cast<double>(cs.evictions),
            "victims replaced by fills");
        add("host.feature_cache.hit_rate", cs.hitRate(),
            "feature-cache line hit rate");
        // Miss-path concurrency rows only when the machinery is on, so
        // an mshr-disabled cache keeps the pre-MSHR stats schema.
        if (cache->params().mshr_enabled) {
            add("host.feature_cache.mshr_piggybacks",
                static_cast<double>(cs.mshr_piggybacks),
                "secondary misses attached to an in-flight fill");
            add("host.feature_cache.gather_dedup",
                static_cast<double>(cs.gather_dedup),
                "duplicate missing lines folded within one gather");
            add("host.feature_cache.mshr_stalls",
                static_cast<double>(cs.mshr_stalls),
                "requests parked on a full MSHR table/waiter list");
        }
        if (cache->params().prefetch_enabled) {
            add("host.feature_cache.prefetch_issued",
                static_cast<double>(cs.prefetch_issued),
                "lines fetched by the hoard prefetcher");
            add("host.feature_cache.prefetch_useful",
                static_cast<double>(cs.prefetch_useful),
                "prefetched lines a demand touch wanted");
            add("host.feature_cache.prefetch_dropped",
                static_cast<double>(cs.prefetch_dropped),
                "announced lines shed (budget or MSHR full)");
            add("host.feature_cache.prefetch_hit_rate",
                cs.prefetchHitRate(),
                "useful fraction of issued prefetch lines");
        }
        if (config_.fault.enabled()) {
            add("host.feature_cache.failed_fills",
                static_cast<double>(cs.failed_fills),
                "demand fill lines never installed (read failed; "
                "counted once per line however many waiters "
                "coalesced)");
            if (cache->params().prefetch_enabled)
                add("host.feature_cache.prefetch_failed",
                    static_cast<double>(cs.prefetch_failed),
                    "prefetch fill lines shed on a failed read");
        }
    }
    // Recovery counters appear only when a fault source or deadline is
    // configured, keeping default stats documents schema-identical.
    if (config_.fault.enabled() || config_.retry.wantsDeadline()) {
        if (const host::EdgeStore *store = backend_->edgeStore()) {
            const sim::StorageChannel &ch = store->ioChannel();
            add("host.io.retries", static_cast<double>(ch.retries()),
                "service attempts re-run after a transient failure");
            add("host.io.timeouts", static_cast<double>(ch.timeouts()),
                "requests that missed their deadline");
            add("host.io.abandoned", static_cast<double>(ch.abandoned()),
                "requests dropped with the attempt budget exhausted");
        }
    }
    return rows;
}

void
GnnSystem::dumpStatsJsonMap(std::ostream &os,
                            const std::string &indent) const
{
    auto prec = os.precision(10);
    os << "{\n";
    std::vector<StatRow> rows = statRows();
    for (std::size_t i = 0; i < rows.size(); ++i)
        os << indent << "  \"" << rows[i].name
           << "\": " << rows[i].value
           << (i + 1 < rows.size() ? ",\n" : "\n");
    os << indent << "}";
    os.precision(prec);
}

void
GnnSystem::dumpStats(std::ostream &os, StatsFormat format) const
{
    const std::string &display =
        backendDisplayName(config_.resolvedBackend());

    if (format == StatsFormat::Json) {
        auto prec = os.precision(10);
        os << "{\n"
           << "  \"bench\": \"system_stats\",\n"
           << "  \"schema_version\": 1,\n"
           << "  \"config\": {\n"
           << "    \"backend\": \"" << config_.resolvedBackend()
           << "\",\n"
           << "    \"display\": \"" << display << "\",\n"
           << "    \"dataset\": \""
           << graph::datasetName(workload_.id) << "\"\n"
           << "  },\n"
           << "  \"results\": ";
        dumpStatsJsonMap(os, "  ");
        os << "\n}\n";
        os.precision(prec);
        return;
    }

    sim::StatGroup group("system." + display);

    // Scalars must outlive dump(); collect them here.
    std::vector<StatRow> rows = statRows();
    std::vector<std::unique_ptr<sim::Scalar>> owned;
    owned.reserve(rows.size());
    for (const auto &row : rows) {
        owned.push_back(std::make_unique<sim::Scalar>());
        owned.back()->set(row.value);
        group.addScalar(row.name, owned.back().get(), row.desc);
    }
    group.dump(os);
}

GnnSystem::SamplingResult
GnnSystem::runSamplingOnly(unsigned workers, std::size_t batches)
{
    SS_ASSERT(workers > 0 && batches > 0, "degenerate sampling run");

    pipeline::ScheduleConfig sched;
    sched.workers = workers;
    sched.num_batches = batches;
    sched.batch_size = config_.pipeline.batch_size;
    sched.batch_mix = config_.pipeline.batch_mix;
    sched.seed = config_.pipeline.seed;
    auto produced = pipeline::runWorkers(backend_->producer(),
                                         workload_.graph, sched);

    SamplingResult result;
    for (const auto &batch : produced) {
        result.makespan = std::max(result.makespan, batch.ready);
        result.avg_batch_us += sim::toMicros(batch.sampling_time);
    }
    result.batches = batches;
    result.avg_batch_us /= static_cast<double>(batches);
    return result;
}

GnnSystem::SamplingResult
GnnSystem::runSamplingResumed(
    unsigned workers, std::size_t batches,
    const std::vector<std::uint64_t> *warm_lines)
{
    SS_ASSERT(workers > 0 && batches > 0, "degenerate sampling run");

    // A restarted process comes up cold; the checkpointed feature-
    // cache residency is the one piece of state a warm restart
    // carries over, re-installed before the timelines run.
    backend_->producer().reset();
    if (warm_lines) {
        if (host::FeatureCacheStore *cache = featureCache())
            cache->warmFill(*warm_lines);
    }

    pipeline::ScheduleConfig sched;
    sched.workers = workers;
    sched.num_batches = batches;
    sched.batch_size = config_.pipeline.batch_size;
    sched.batch_mix = config_.pipeline.batch_mix;
    sched.seed = config_.pipeline.seed;
    auto produced = pipeline::runWorkers(backend_->producer(),
                                         workload_.graph, sched,
                                         /*reset_producer=*/false);

    SamplingResult result;
    for (const auto &batch : produced) {
        result.makespan = std::max(result.makespan, batch.ready);
        result.avg_batch_us += sim::toMicros(batch.sampling_time);
    }
    result.batches = batches;
    result.avg_batch_us /= static_cast<double>(batches);
    return result;
}

namespace
{

/** Pipeline config for a functional run off this system's settings. */
pipeline::ParallelSampleConfig
functionalConfig(const SystemConfig &config, unsigned workers,
                 std::size_t batches)
{
    pipeline::ParallelSampleConfig psc;
    psc.workers = workers;
    psc.num_batches = batches;
    psc.batch_size = config.pipeline.batch_size;
    psc.seed = config.pipeline.seed;
    return psc;
}

double
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - since)
        .count();
}

} // namespace

GnnSystem::FunctionalResult
GnnSystem::runFunctionalSampling(unsigned workers, std::size_t batches)
{
    SS_ASSERT(workers > 0 && batches > 0, "degenerate functional run");
    auto psc = functionalConfig(config_, workers, batches);
    sim::ThreadPool pool(workers);

    FunctionalResult result;
    auto start = std::chrono::steady_clock::now();
    pipeline::runSamplingPipeline(
        workload_.graph, *sampler_, psc, &pool,
        [&](std::size_t, pipeline::FunctionalBatch &&batch) {
            result.sampled_edges += batch.subgraph.totalSampledEdges();
        });
    result.wall_seconds = elapsedSeconds(start);
    result.batches = batches;
    return result;
}

GnnSystem::FunctionalResult
GnnSystem::runFunctionalTraining(gnn::SageModel &model, unsigned workers,
                                 std::size_t batches)
{
    SS_ASSERT(workers > 0 && batches > 0, "degenerate functional run");
    SS_ASSERT(model.config().depth == config_.depth(),
              "model depth must match the sampling depth");
    auto psc = functionalConfig(config_, workers, batches);
    sim::ThreadPool pool(workers);

    FunctionalResult result;
    double loss_sum = 0;
    auto start = std::chrono::steady_clock::now();
    pipeline::runSamplingPipeline(
        workload_.graph, *sampler_, psc, &pool,
        [&](std::size_t, pipeline::FunctionalBatch &&batch) {
            result.sampled_edges += batch.subgraph.totalSampledEdges();
            loss_sum +=
                model.trainStep(batch.subgraph, workload_.features);
        });
    result.wall_seconds = elapsedSeconds(start);
    result.batches = batches;
    result.mean_loss = loss_sum / static_cast<double>(batches);
    return result;
}

} // namespace smartsage::core
