#include "system.hh"

#include <algorithm>
#include <chrono>

#include "pipeline/scheduler.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/thread_pool.hh"

namespace smartsage::core
{

Workload
Workload::make(graph::DatasetId id, bool large_scale,
               unsigned num_classes)
{
    const auto &spec = graph::datasetSpec(id);
    graph::CsrGraph g =
        large_scale ? spec.buildLargeScale() : spec.buildInMemory();
    std::uint64_t n = g.numNodes();
    return Workload{
        id, std::move(g),
        gnn::FeatureTable(n, spec.feature_dim, num_classes)};
}

std::uint64_t
Workload::edgeListBytes(const graph::EdgeLayout &layout) const
{
    return graph.numEdges() * layout.entry_bytes;
}

unsigned
SystemConfig::depth() const
{
    return use_saint ? saint_walk_length
                     : static_cast<unsigned>(fanouts.size());
}

namespace
{

/** Scale a cache budget off the edge-list size, with a sane floor. */
std::uint64_t
scaledCache(double fraction, std::uint64_t edge_bytes,
            std::uint64_t line_bytes, unsigned ways)
{
    std::uint64_t floor_bytes = line_bytes * ways * 8;
    auto want = static_cast<std::uint64_t>(fraction *
                                           static_cast<double>(edge_bytes));
    return std::max(want, floor_bytes);
}

} // namespace

GnnSystem::GnnSystem(const SystemConfig &config, const Workload &workload)
    : config_(config), workload_(workload)
{
    // Sampler.
    if (config_.use_saint)
        sampler_ = std::make_unique<gnn::SaintSampler>(
            config_.saint_walk_length);
    else
        sampler_ = std::make_unique<gnn::SageSampler>(config_.fanouts);

    // Cache budgets follow the dataset's on-device footprint.
    std::uint64_t edge_bytes = workload.edgeListBytes(config_.layout);
    config_.host.page_cache_bytes =
        scaledCache(config_.page_cache_fraction, edge_bytes,
                    config_.host.os_page_bytes,
                    config_.host.page_cache_ways);
    config_.host.scratchpad_bytes =
        scaledCache(config_.scratchpad_fraction, edge_bytes,
                    config_.host.os_page_bytes,
                    config_.host.scratchpad_ways);
    config_.ssd.page_buffer_bytes =
        scaledCache(config_.ssd_buffer_fraction, edge_bytes,
                    config_.ssd.flash.page_bytes,
                    config_.ssd.page_buffer_ways);

    bool dedicated_isp = config_.design == DesignPoint::SmartSageOracle;
    switch (config_.design) {
      case DesignPoint::DramOracle:
        store_ = std::make_unique<host::DramEdgeStore>(config_.host);
        break;
      case DesignPoint::Pmem:
        store_ = std::make_unique<host::PmemEdgeStore>(config_.host);
        break;
      case DesignPoint::SsdMmap:
        ssd_ = std::make_unique<ssd::SsdDevice>(config_.ssd);
        store_ = std::make_unique<host::MmapEdgeStore>(config_.host,
                                                       *ssd_);
        break;
      case DesignPoint::SmartSageSw:
        ssd_ = std::make_unique<ssd::SsdDevice>(config_.ssd);
        store_ = std::make_unique<host::DirectIoEdgeStore>(config_.host,
                                                           *ssd_);
        break;
      case DesignPoint::SmartSageHwSw:
      case DesignPoint::SmartSageOracle:
        if (dedicated_isp) {
            // Newport-style CSD: a quad-core complex dedicated to ISP
            // on top of the firmware cores (Section VI-C).
            config_.ssd.embedded_cores += 4;
        }
        ssd_ = std::make_unique<ssd::SsdDevice>(config_.ssd,
                                                dedicated_isp);
        isp_engine_ = std::make_unique<isp::IspEngine>(
            config_.isp, *ssd_, config_.layout);
        break;
      case DesignPoint::FpgaCsd:
        ssd_ = std::make_unique<ssd::SsdDevice>(config_.ssd);
        fpga_engine_ = std::make_unique<isp::FpgaCsdEngine>(
            config_.fpga, *ssd_, config_.layout);
        break;
    }

    if (store_) {
        producer_ = std::make_unique<pipeline::CpuProducer>(
            workload_.graph, *sampler_, *store_, config_.host,
            config_.layout);
    } else if (isp_engine_) {
        producer_ = std::make_unique<pipeline::IspProducer>(
            workload_.graph, *sampler_, *isp_engine_, *ssd_);
    } else {
        SS_ASSERT(fpga_engine_, "no producer path configured");
        producer_ = std::make_unique<pipeline::FpgaProducer>(
            workload_.graph, *sampler_, *fpga_engine_, *ssd_);
    }

    gnn::ModelConfig mc;
    mc.in_dim = workload_.features.dim();
    mc.hidden_dim = config_.hidden_dim;
    mc.num_classes = workload_.features.numClasses();
    mc.depth = config_.depth();
    gpu_ = std::make_unique<gnn::GpuTimingModel>(config_.gpu, mc);
}

pipeline::PipelineResult
GnnSystem::runPipeline()
{
    pipeline::TrainingPipeline pipe(config_.pipeline, config_.host,
                                    *gpu_, workload_.features);
    return pipe.run(*producer_, workload_.graph);
}

void
GnnSystem::dumpStats(std::ostream &os) const
{
    sim::StatGroup group("system." + designName(config_.design));

    // Scalars must outlive dump(); collect them here.
    std::vector<std::unique_ptr<sim::Scalar>> owned;
    auto add = [&](const std::string &name, double value,
                   const std::string &desc) {
        owned.push_back(std::make_unique<sim::Scalar>());
        owned.back()->set(value);
        group.addScalar(name, owned.back().get(), desc);
    };

    add("graph.nodes", static_cast<double>(workload_.graph.numNodes()),
        "graph nodes");
    add("graph.edges", static_cast<double>(workload_.graph.numEdges()),
        "graph edges");

    if (ssd_) {
        add("ssd.host_reads", static_cast<double>(ssd_->hostReads()),
            "block read commands served");
        add("ssd.bytes_to_host",
            static_cast<double>(ssd_->bytesToHost()),
            "bytes shipped over PCIe");
        add("ssd.page_buffer.hit_rate", ssd_->pageBuffer().hitRate(),
            "controller DRAM buffer hit rate");
        add("ssd.flash.pages_read",
            static_cast<double>(ssd_->flashArray().pagesRead()),
            "NAND pages sensed");
        add("ssd.cores.busy_us",
            sim::toMicros(ssd_->cores().busyTime()),
            "embedded core busy time");
    }
    if (auto *mm = dynamic_cast<host::MmapEdgeStore *>(store_.get())) {
        add("host.page_cache.hit_rate", mm->pageCacheHitRate(),
            "OS page cache hit rate");
        add("host.page_faults", static_cast<double>(mm->pageFaults()),
            "major faults taken");
    }
    if (auto *dio =
            dynamic_cast<host::DirectIoEdgeStore *>(store_.get())) {
        add("host.scratchpad.hit_rate", dio->scratchpadHitRate(),
            "user scratchpad hit rate");
        add("host.direct_io.submits",
            static_cast<double>(dio->submits()),
            "O_DIRECT submissions");
    }
    if (auto *dram = dynamic_cast<host::DramEdgeStore *>(store_.get())) {
        add("host.llc.miss_rate",
            const_cast<host::DramEdgeStore *>(dram)->llc().missRate(),
            "LLC miss rate over edge reads");
    }
    group.dump(os);
}

GnnSystem::SamplingResult
GnnSystem::runSamplingOnly(unsigned workers, std::size_t batches)
{
    SS_ASSERT(workers > 0 && batches > 0, "degenerate sampling run");

    pipeline::ScheduleConfig sched;
    sched.workers = workers;
    sched.num_batches = batches;
    sched.batch_size = config_.pipeline.batch_size;
    sched.batch_mix = config_.pipeline.batch_mix;
    sched.seed = config_.pipeline.seed;
    auto produced =
        pipeline::runWorkers(*producer_, workload_.graph, sched);

    SamplingResult result;
    for (const auto &batch : produced) {
        result.makespan = std::max(result.makespan, batch.ready);
        result.avg_batch_us += sim::toMicros(batch.sampling_time);
    }
    result.batches = batches;
    result.avg_batch_us /= static_cast<double>(batches);
    return result;
}

namespace
{

/** Pipeline config for a functional run off this system's settings. */
pipeline::ParallelSampleConfig
functionalConfig(const SystemConfig &config, unsigned workers,
                 std::size_t batches)
{
    pipeline::ParallelSampleConfig psc;
    psc.workers = workers;
    psc.num_batches = batches;
    psc.batch_size = config.pipeline.batch_size;
    psc.seed = config.pipeline.seed;
    return psc;
}

double
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - since)
        .count();
}

} // namespace

GnnSystem::FunctionalResult
GnnSystem::runFunctionalSampling(unsigned workers, std::size_t batches)
{
    SS_ASSERT(workers > 0 && batches > 0, "degenerate functional run");
    auto psc = functionalConfig(config_, workers, batches);
    sim::ThreadPool pool(workers);

    FunctionalResult result;
    auto start = std::chrono::steady_clock::now();
    pipeline::runSamplingPipeline(
        workload_.graph, *sampler_, psc, &pool,
        [&](std::size_t, pipeline::FunctionalBatch &&batch) {
            result.sampled_edges += batch.subgraph.totalSampledEdges();
        });
    result.wall_seconds = elapsedSeconds(start);
    result.batches = batches;
    return result;
}

GnnSystem::FunctionalResult
GnnSystem::runFunctionalTraining(gnn::SageModel &model, unsigned workers,
                                 std::size_t batches)
{
    SS_ASSERT(workers > 0 && batches > 0, "degenerate functional run");
    SS_ASSERT(model.config().depth == config_.depth(),
              "model depth must match the sampling depth");
    auto psc = functionalConfig(config_, workers, batches);
    sim::ThreadPool pool(workers);

    FunctionalResult result;
    double loss_sum = 0;
    auto start = std::chrono::steady_clock::now();
    pipeline::runSamplingPipeline(
        workload_.graph, *sampler_, psc, &pool,
        [&](std::size_t, pipeline::FunctionalBatch &&batch) {
            result.sampled_edges += batch.subgraph.totalSampledEdges();
            loss_sum +=
                model.trainStep(batch.subgraph, workload_.features);
        });
    result.wall_seconds = elapsedSeconds(start);
    result.batches = batches;
    result.mean_loss = loss_sum / static_cast<double>(batches);
    return result;
}

} // namespace smartsage::core
