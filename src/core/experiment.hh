/**
 * @file
 * ExperimentRunner: executes scenario grids through the event-driven
 * system models.
 *
 * The runner expands a Scenario (scenario.hh), builds each dataset's
 * workload once, then runs every cell — an independent, fully
 * deterministic single-threaded simulation — across a sim::ThreadPool.
 * Results are stored by cell index, so tables and JSON are
 * bit-identical at any --workers count. Output goes to TableReporter
 * paper-style tables and the machine-readable BENCH_designspace.json
 * (same schema family as BENCH_hotpath.json).
 */

#ifndef SMARTSAGE_CORE_EXPERIMENT_HH
#define SMARTSAGE_CORE_EXPERIMENT_HH

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "report.hh"
#include "scenario.hh"
#include "system.hh"

namespace smartsage::core
{

/** One named measurement of a cell ("batches_per_s", ...). */
struct CellMetric
{
    std::string name;
    double value = 0;
};

/** Outcome of one executed cell. */
struct CellResult
{
    ExperimentCell cell;
    /** Ordered metrics; SSD counters appear only for SSD-backed
     *  design points, so look up by name, not position. */
    std::vector<CellMetric> metrics;
    /** Design-point specific counter summary (page cache, scratchpad). */
    std::string notes;
    /** gem5-style stats dump (RunnerOptions::collect_stats only). */
    std::string stats;

    /** Lookup by name. @return 0 when absent */
    double metric(const std::string &name) const;
};

/** One executed scenario: the description plus per-cell results. */
struct ScenarioRun
{
    Scenario scenario;
    std::vector<CellResult> cells; //!< in cell-index order
};

/** Runner execution options. */
struct RunnerOptions
{
    /** Host threads executing independent cells; 1 runs inline. */
    unsigned workers = 1;
    /** Announce each scenario on SS_INFORM. */
    bool progress = false;
    /** Capture each cell's component stats dump (CellResult::stats). */
    bool collect_stats = false;
    /**
     * Scratch root for recovery-cell checkpoint directories (each cell
     * gets "<root>/<family>-<index>"). Empty generates a per-runner
     * directory under the system temp dir, removed with the runner.
     */
    std::string ckpt_root;
    /** Leave recovery-cell checkpoint directories behind for
     *  inspection instead of removing them after each cell. */
    bool keep_checkpoints = false;
};

/** Expands, executes, and reports declarative scenarios. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(RunnerOptions options = {});
    ~ExperimentRunner();

    /** Run every cell of @p scenario (cells parallelized over the
     *  pool; results in deterministic cell order). */
    ScenarioRun run(const Scenario &scenario);

    /** Run a list of scenarios in order. */
    std::vector<ScenarioRun> runAll(const std::vector<Scenario> &scenarios);

    /**
     * The cached workload for @p id (built on first use on the calling
     * thread). References stay valid for the runner's lifetime.
     */
    const Workload &workload(graph::DatasetId id, bool large_scale);

    /** Render @p run as the paper-style table (axis columns that vary,
     *  then metrics, then notes). */
    static TableReporter table(const ScenarioRun &run);

  private:
    RunnerOptions options_;
    bool owns_ckpt_root_ = false; //!< generated root, removed in dtor
    std::unique_ptr<sim::ThreadPool> pool_; //!< null when workers == 1
    std::map<std::pair<int, bool>, std::unique_ptr<Workload>> workloads_;
};

/**
 * Emit every run as BENCH_designspace.json: schema-versioned, with the
 * required top-level keys (bench, schema_version, config, results)
 * shared with BENCH_hotpath.json. Content is a pure function of the
 * runs, so the artifact is bit-identical at any runner worker count.
 * Serving-kind runs gain their serving axes (requests/fanout/poisson
 * per family, arrival_qps/queue_depth per cell), which lets documents
 * mix kinds — BENCH_cachepolicy.json reuses this writer with
 * @p bench_name "cache_policy" for the policy x capacity x backend
 * family pair.
 */
void writeDesignSpaceJson(std::ostream &os,
                          const std::vector<ScenarioRun> &runs,
                          const std::string &bench_name = "design_space");

/**
 * Annotate scaling-family runs in place: cells are grouped by every
 * axis and knob except `part.nodes`, and each cell in a group with a
 * single-node baseline gains two appended metrics —
 * scaling_speedup = avg_sample_ms(nodes=1) / avg_sample_ms, and
 * scaling_efficiency = scaling_speedup / nodes. A pure deterministic
 * function of already-computed cell metrics, so the annotation (and
 * the artifact built from it) stays bit-identical at any runner
 * worker count. Cells without a part.nodes knob or without a matching
 * baseline are left untouched.
 */
void annotateScalingMetrics(std::vector<ScenarioRun> &runs);

/**
 * Emit serving-kind runs as BENCH_serving.json (same schema envelope:
 * bench/schema_version/config/results). Per cell: backend, offered
 * rate, queue depth, and the latency metrics (p50/p95/p99/max/mean,
 * achieved qps, queue wait). Bit-identical at any runner worker count.
 * @pre every run's scenario kind is ExperimentKind::Serving
 */
void writeServingJson(std::ostream &os,
                      const std::vector<ScenarioRun> &runs);

} // namespace smartsage::core

#endif // SMARTSAGE_CORE_EXPERIMENT_HH
