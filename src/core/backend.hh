/**
 * @file
 * The pluggable storage-backend API.
 *
 * A `StorageBackend` is a self-describing factory for one storage
 * substrate (the paper's seven design points, plus anything new): it
 * carries an id, a display name, and capability flags, and builds the
 * substrate pieces — SSD device(s), edge store, ISP/FPGA engines, and
 * the producer flavor — as one `BackendInstance` that `GnnSystem`
 * merely composes. Backends live in a string-keyed `BackendRegistry`;
 * scenarios, the experiment runner, and the CLI enumerate it
 * dynamically, so adding a design point is one self-registering
 * translation unit and zero core edits (see DESIGN.md "Backend plugin
 * API").
 */

#ifndef SMARTSAGE_CORE_BACKEND_HH
#define SMARTSAGE_CORE_BACKEND_HH

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pipeline/producer.hh"
#include "system.hh"

namespace smartsage::core
{

/** How a backend exposes the edge list to the host-side sampler. */
enum class EdgeStoreKind
{
    None,     //!< no host-side store: sampling happens in-device
    Dram,     //!< whole edge list in host DRAM behind the LLC
    Mmap,     //!< mmap'd file through the OS page cache
    DirectIo, //!< O_DIRECT into a user scratchpad
    Pmem,     //!< byte-addressable PMEM on the memory bus
    Sharded,  //!< striped across multiple devices
    Tiered,   //!< DRAM hot-cache in front of a device path
    Partitioned, //!< edge-cut across simulated host+SSD nodes
};

/** Display name of an EdgeStoreKind ("direct-io", ...). */
const std::string &edgeStoreKindName(EdgeStoreKind kind);

/** Self-description of one backend's substrate shape. */
struct BackendCaps
{
    bool has_ssd = false; //!< flash-backed (any number of devices)
    bool has_isp = false; //!< sampling offloaded into the device
    EdgeStoreKind edge_store = EdgeStoreKind::None;
    /**
     * Config-knob namespaces this backend responds to. The builtin
     * namespaces ("ssd.", "isp.", "fpga.", "host.") are interpreted by
     * their subsystems; any other listed namespace is an *extension*:
     * core::applyKnob routes such keys into
     * SystemConfig::backend_knobs for the backend to read at build
     * time — which is how an out-of-core backend gets sweepable knobs
     * without touching core.
     */
    std::vector<std::string> knob_namespaces;
    /**
     * Whether registry-driven default grids include this backend:
     * servableBackendIds(), the backend-space family, and the
     * --stats-json document. Backends that exist for a dedicated sweep
     * family (the partitioned scale-out backend and its "scaling"
     * family) opt out so registering them leaves every pre-existing
     * default artifact byte-identical.
     */
    bool in_default_grids = true;
};

/** Sink for one named metric ("ssd_buffer_hit_frac", 0.93). */
using MetricSink = std::function<void(const std::string &, double)>;

/** Sink for one stats row: name, value, description. */
using StatSink =
    std::function<void(const std::string &, double, const std::string &)>;

/**
 * The live substrate of one GnnSystem: everything a backend built,
 * behind a uniform surface. GnnSystem and the experiment runner only
 * ever call these methods — no substrate-specific casts.
 */
class BackendInstance
{
  public:
    virtual ~BackendInstance() = default;

    /** The subgraph-generation path (design-point producer flavor). */
    virtual pipeline::SubgraphProducer &producer() = 0;

    /** Primary SSD device; null when the backend has none or several. */
    virtual ssd::SsdDevice *ssd() { return nullptr; }

    /** Host-side edge store; null for in-storage backends. */
    virtual host::EdgeStore *edgeStore() { return nullptr; }

    /** Append experiment metrics (runner table/JSON columns). */
    virtual void addMetrics(const MetricSink &add) const { (void)add; }

    /** One-line counter summary for the runner's notes column. */
    virtual std::string notes() const { return {}; }

    /** Append component counters to a stats dump. */
    virtual void addStats(const StatSink &add) const { (void)add; }
};

/** Everything a backend may consume while building its substrate. */
struct BackendBuildContext
{
    /**
     * The resolved, cache-scaled system config. Mutable on purpose:
     * backends may adjust substrate parameters the way the legacy enum
     * switch did (e.g. the dedicated-ISP oracle adds embedded cores).
     */
    SystemConfig &config;
    const Workload &workload;
    const gnn::AnySampler &sampler;
};

/** A self-describing factory for one storage substrate. */
class StorageBackend
{
  public:
    virtual ~StorageBackend() = default;

    /** Registry key ("dram", "multi-ssd", ...). */
    virtual const std::string &id() const = 0;

    /** Display name (paper figure label for the seven paper points). */
    virtual const std::string &displayName() const = 0;

    /** One-line description for tables and docs. */
    virtual const std::string &summary() const = 0;

    /** Substrate shape and knob namespaces. */
    virtual const BackendCaps &caps() const = 0;

    /** Build the substrate for one system instantiation. */
    virtual std::unique_ptr<BackendInstance>
    build(const BackendBuildContext &ctx) const = 0;
};

/**
 * Backend described by static fields plus a build function — enough
 * for every backend so far; subclass StorageBackend directly only when
 * the description itself must be dynamic.
 */
class SimpleBackend : public StorageBackend
{
  public:
    using BuildFn =
        std::unique_ptr<BackendInstance> (*)(const BackendBuildContext &);

    SimpleBackend(std::string id, std::string display_name,
                  std::string summary, BackendCaps caps, BuildFn build)
        : id_(std::move(id)), display_name_(std::move(display_name)),
          summary_(std::move(summary)), caps_(std::move(caps)),
          build_(build)
    {
    }

    const std::string &id() const override { return id_; }
    const std::string &displayName() const override
    {
        return display_name_;
    }
    const std::string &summary() const override { return summary_; }
    const BackendCaps &caps() const override { return caps_; }
    std::unique_ptr<BackendInstance>
    build(const BackendBuildContext &ctx) const override
    {
        return build_(ctx);
    }

  private:
    std::string id_;
    std::string display_name_;
    std::string summary_;
    BackendCaps caps_;
    BuildFn build_;
};

/** The process-wide string-keyed backend registry. */
class BackendRegistry
{
  public:
    /** The singleton (function-local static; safe at static init). */
    static BackendRegistry &instance();

    /** Register a backend. Duplicate ids are fatal at startup. */
    void add(std::unique_ptr<StorageBackend> backend);

    /** Lookup by id. @return nullptr when absent */
    const StorageBackend *find(const std::string &id) const;

    /** Lookup by id; unknown ids are fatal, listing registered ids. */
    const StorageBackend &get(const std::string &id) const;

    /** Every registered backend, sorted by id. */
    std::vector<const StorageBackend *> all() const;

    /** Every registered id, sorted. */
    std::vector<std::string> ids() const;

    /** "a, b, c" rendering of ids() for error messages. */
    std::string idList() const;

  private:
    BackendRegistry() = default;
    std::map<std::string, std::unique_ptr<StorageBackend>> backends_;
};

/**
 * Registers a backend from a translation unit's static initializer:
 *
 *   namespace { core::BackendRegistrar reg{std::make_unique<...>()}; }
 *
 * The build links the whole object set (CMake OBJECT library), so
 * registrars are never dead-stripped out of the archive.
 */
struct BackendRegistrar
{
    explicit BackendRegistrar(std::unique_ptr<StorageBackend> backend)
    {
        BackendRegistry::instance().add(std::move(backend));
    }
};

/** Display name of backend @p id; unknown ids are fatal. */
const std::string &backendDisplayName(const std::string &id);

// ---- shared helpers for backend implementations ----

/** Standard experiment metrics of one SSD device. */
void addSsdMetrics(const ssd::SsdDevice *ssd, const MetricSink &add);

/** Standard stats block of one SSD device (dumpStats "ssd.*" rows). */
void addSsdStats(ssd::SsdDevice *ssd, const StatSink &add);

/**
 * Fatal on any backend_knobs key under namespace @p ns (e.g.
 * "multi-ssd.") not listed in @p known (full key names). Backends call
 * this while reading their knobs so a misspelled knob fails loudly
 * instead of silently sweeping at the default value.
 */
void validateBackendKnobs(const SystemConfig &config,
                          std::string_view ns,
                          std::initializer_list<std::string_view> known);

/** SS_FATAL unless @p value is a whole number; returns it truncated. */
std::uint64_t requireIntegerKnob(const std::string &key, double value);

} // namespace smartsage::core

#endif // SMARTSAGE_CORE_BACKEND_HH
