#include "checkpoint.hh"

#include <algorithm>
#include <filesystem>
#include <set>

#include "sim/logging.hh"

namespace fs = std::filesystem;

namespace smartsage::core
{

namespace
{

/** 'SSCKPT1\0' little-endian: stamps every manifest file. */
constexpr std::uint64_t kManifestMagic = 0x0031544b43535353ULL;

constexpr const char *kManifestPrefix = "manifest-";
constexpr const char *kManifestSuffix = ".ckpt";

std::optional<std::uint64_t>
parseManifestStep(const std::string &filename)
{
    const std::string prefix = kManifestPrefix;
    const std::string suffix = kManifestSuffix;
    if (filename.size() <= prefix.size() + suffix.size() ||
        filename.compare(0, prefix.size(), prefix) != 0 ||
        filename.compare(filename.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
        return std::nullopt;
    const std::string digits = filename.substr(
        prefix.size(), filename.size() - prefix.size() - suffix.size());
    std::uint64_t step = 0;
    for (char c : digits) {
        if (c < '0' || c > '9')
            return std::nullopt;
        step = step * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return step;
}

} // namespace

bool
applyKnob(CheckpointConfig &config, std::string_view key, double value)
{
    if (key == "interval_batches")
        config.interval_batches = static_cast<std::uint64_t>(value);
    else if (key == "warm_cache")
        config.warm_cache = value != 0.0;
    else if (key == "keep_last")
        config.keep_last = static_cast<std::uint64_t>(value);
    else if (key == "chunk_kib")
        config.chunk_kib = static_cast<std::uint64_t>(value);
    else if (key == "write_gbps")
        config.write_gbps = value;
    else if (key == "read_gbps")
        config.read_gbps = value;
    else
        return false;
    return true;
}

void
validate(const CheckpointConfig &config)
{
    if (config.chunk_kib == 0)
        SS_FATAL("CheckpointConfig: ckpt.chunk_kib must be positive, "
                 "got 0");
    if (config.keep_last == 0)
        SS_FATAL("CheckpointConfig: ckpt.keep_last must be >= 1 (a "
                 "store that keeps nothing cannot be resumed from)");
    if (!(config.write_gbps > 0.0) || !(config.read_gbps > 0.0))
        SS_FATAL("CheckpointConfig: ckpt.write_gbps and ckpt.read_gbps "
                 "must be positive, got ",
                 config.write_gbps, " / ", config.read_gbps);
}

CheckpointManager::CheckpointManager(const CheckpointConfig &config)
    : config_(config)
{
    SS_ASSERT(!config_.dir.empty(),
              "CheckpointManager needs a directory");
    std::error_code ec;
    fs::create_directories(fs::path(config_.dir) / "chunks", ec);
    if (ec)
        throw sim::SerializeError("cannot create checkpoint dir " +
                                  config_.dir + ": " + ec.message());
}

std::string
CheckpointManager::manifestPath(std::uint64_t step) const
{
    return (fs::path(config_.dir) /
            (kManifestPrefix + std::to_string(step) + kManifestSuffix))
        .string();
}

std::string
CheckpointManager::chunkPath(std::uint64_t hash) const
{
    return (fs::path(config_.dir) / "chunks" /
            (sim::hashHex(hash) + ".bin"))
        .string();
}

void
CheckpointManager::save(const Snapshot &snapshot)
{
    const std::uint64_t chunk_bytes = config_.chunk_kib * 1024;
    sim::ByteWriter manifest;
    manifest.u64(kManifestMagic);
    manifest.u32(kCheckpointFormatVersion);
    manifest.u64(snapshot.step);
    manifest.u64(snapshot.sections.size());

    for (const auto &[name, payload] : snapshot.sections) {
        const std::uint64_t chunks =
            payload.empty() ? 0
                            : (payload.size() + chunk_bytes - 1) /
                                  chunk_bytes;
        manifest.str(name);
        manifest.u64(payload.size());
        manifest.u64(chunks);
        for (std::uint64_t c = 0; c < chunks; ++c) {
            const std::size_t off =
                static_cast<std::size_t>(c * chunk_bytes);
            const std::size_t len = std::min<std::size_t>(
                chunk_bytes, payload.size() - off);
            const std::uint64_t hash =
                sim::fnv1a64(payload.data() + off, len);
            manifest.u64(hash);
            manifest.u64(len);
            manifest.u32(sim::crc32(payload.data() + off, len));

            // Content-addressed dedup: a chunk already on disk (same
            // hash, same bytes) is shared with prior manifests.
            const std::string path = chunkPath(hash);
            std::error_code ec;
            if (fs::exists(path, ec)) {
                ++stats_.chunks_deduped;
                continue;
            }
            std::vector<std::uint8_t> body(payload.begin() + off,
                                           payload.begin() + off + len);
            sim::atomicWriteFile(path, body);
            ++stats_.chunks_written;
            stats_.bytes_written += len;
        }
    }

    // Trailing CRC over everything above seals the manifest.
    std::vector<std::uint8_t> body = manifest.take();
    const std::uint32_t crc = sim::crc32(body);
    sim::ByteWriter sealed;
    sealed.bytes(body.data(), body.size());
    sealed.u32(crc);
    const std::vector<std::uint8_t> doc = sealed.take();
    sim::atomicWriteFile(manifestPath(snapshot.step), doc);
    stats_.manifest_bytes += doc.size();
    ++stats_.saves;
    prune();
}

std::vector<std::uint64_t>
CheckpointManager::steps() const
{
    std::vector<std::uint64_t> out;
    std::error_code ec;
    for (const auto &entry :
         fs::directory_iterator(config_.dir, ec)) {
        auto step = parseManifestStep(entry.path().filename().string());
        if (step)
            out.push_back(*step);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::optional<std::uint64_t>
CheckpointManager::latestStep() const
{
    std::vector<std::uint64_t> all = steps();
    if (all.empty())
        return std::nullopt;
    return all.back();
}

Snapshot
CheckpointManager::load(std::uint64_t step)
{
    const ManifestInfo info = readManifest(manifestPath(step));
    Snapshot snapshot;
    snapshot.step = info.step;
    for (const auto &section : info.sections) {
        std::vector<std::uint8_t> payload;
        payload.reserve(section.total_bytes);
        for (const auto &chunk : section.chunks) {
            std::vector<std::uint8_t> body =
                sim::readFile(chunkPath(chunk.hash));
            if (body.size() != chunk.size ||
                sim::crc32(body) != chunk.crc)
                throw sim::SerializeError(
                    "chunk " + sim::hashHex(chunk.hash) +
                    " corrupt (size/CRC mismatch) in section '" +
                    section.name + "'");
            stats_.bytes_read += body.size();
            payload.insert(payload.end(), body.begin(), body.end());
        }
        if (payload.size() != section.total_bytes)
            throw sim::SerializeError(
                "section '" + section.name + "' reassembled to " +
                std::to_string(payload.size()) + " bytes, manifest " +
                "says " + std::to_string(section.total_bytes));
        snapshot.sections.emplace(section.name, std::move(payload));
    }
    ++stats_.loads;
    return snapshot;
}

void
CheckpointManager::prune()
{
    std::vector<std::uint64_t> all = steps();
    if (all.size() > config_.keep_last) {
        const std::size_t drop = all.size() - config_.keep_last;
        for (std::size_t i = 0; i < drop; ++i) {
            std::error_code ec;
            fs::remove(manifestPath(all[i]), ec);
        }
        all.erase(all.begin(),
                  all.begin() + static_cast<std::ptrdiff_t>(drop));
    }

    // GC: drop chunks no surviving manifest references.
    std::set<std::uint64_t> live;
    for (std::uint64_t step : all) {
        const ManifestInfo info = readManifest(manifestPath(step));
        for (const auto &section : info.sections)
            for (const auto &chunk : section.chunks)
                live.insert(chunk.hash);
    }
    std::error_code ec;
    const fs::path chunk_dir = fs::path(config_.dir) / "chunks";
    std::vector<fs::path> dead;
    for (const auto &entry : fs::directory_iterator(chunk_dir, ec)) {
        const std::string stem = entry.path().stem().string();
        if (stem.size() != 16)
            continue;
        std::uint64_t hash = 0;
        bool ok = true;
        for (char c : stem) {
            hash <<= 4;
            if (c >= '0' && c <= '9')
                hash |= static_cast<std::uint64_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                hash |= static_cast<std::uint64_t>(c - 'a' + 10);
            else
                ok = false;
        }
        if (ok && !live.count(hash))
            dead.push_back(entry.path());
    }
    for (const auto &path : dead)
        fs::remove(path, ec);
}

ManifestInfo
readManifest(const std::string &path)
{
    const std::vector<std::uint8_t> doc = sim::readFile(path);
    if (doc.size() < 4)
        throw sim::SerializeError("manifest too short: " + path);
    const std::size_t body_size = doc.size() - 4;
    sim::ByteReader trailer(doc.data() + body_size, 4);
    if (trailer.u32() != sim::crc32(doc.data(), body_size))
        throw sim::SerializeError("manifest CRC mismatch: " + path);

    sim::ByteReader reader(doc.data(), body_size);
    if (reader.u64() != kManifestMagic)
        throw sim::SerializeError("not a checkpoint manifest: " + path);
    ManifestInfo info;
    info.format_version = reader.u32();
    if (info.format_version > kCheckpointFormatVersion)
        throw sim::SerializeError(
            "manifest " + path + " has format version " +
            std::to_string(info.format_version) +
            "; this build reads up to " +
            std::to_string(kCheckpointFormatVersion));
    info.step = reader.u64();
    const std::uint64_t sections = reader.u64();
    for (std::uint64_t i = 0; i < sections; ++i) {
        ManifestSectionInfo section;
        section.name = reader.str();
        section.total_bytes = reader.u64();
        const std::uint64_t chunks = reader.u64();
        for (std::uint64_t c = 0; c < chunks; ++c) {
            ManifestChunkInfo chunk;
            chunk.hash = reader.u64();
            chunk.size = reader.u64();
            chunk.crc = reader.u32();
            section.chunks.push_back(chunk);
        }
        info.sections.push_back(std::move(section));
    }
    return info;
}

} // namespace smartsage::core
