/**
 * @file
 * Declarative experiment scenarios.
 *
 * A Scenario names one experiment family and the axes of its design
 * grid: datasets x design points x fanouts x batch sizes x tenant
 * mixes x config-knob overrides x simulated worker counts. Expansion
 * turns the grid into flat ExperimentCells — each a fully resolved
 * SystemConfig plus a deterministic per-cell seed — which the
 * ExperimentRunner (experiment.hh) executes and reports. Every
 * "reproduce figure N" harness is one Scenario away.
 */

#ifndef SMARTSAGE_CORE_SCENARIO_HH
#define SMARTSAGE_CORE_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "system.hh"

namespace smartsage::core
{

/**
 * One named configuration override, e.g. {"ssd.flash.channels", 16}.
 * Keys are namespaced by the owning subsystem ("ssd.", "isp.",
 * "host.", "fault.", "retry.", "sched.", "admit.", "tenant.") or name
 * a top-level SystemConfig knob; each subsystem interprets its own
 * keys (flash::applyKnob etc.). Keys in a namespace a registered
 * backend claims (BackendCaps::knob_namespaces, e.g. "multi-ssd.")
 * are routed into SystemConfig::backend_knobs for that backend to
 * interpret at build time.
 */
struct KnobSetting
{
    std::string key;
    double value = 0;

    /** "key=value" with a compact number rendering. */
    std::string label() const;
};

/**
 * Apply @p knob to @p config, dispatching on the key's namespace
 * prefix. @return false if no subsystem recognizes the key
 */
bool applyKnob(SystemConfig &config, const KnobSetting &knob);

/** "25-10" rendering of a fanout vector. */
std::string fanoutLabel(const std::vector<unsigned> &fanouts);

/** "256+1024" rendering of a tenant mix; "uniform" when empty. */
std::string mixLabel(const std::vector<std::size_t> &mix);

/** Space-joined knob labels; "baseline" when empty. */
std::string overrideLabel(const std::vector<KnobSetting> &knobs);

/** What each cell measures. */
enum class ExperimentKind
{
    Pipeline,     //!< full producer-consumer training pipeline
    SamplingOnly, //!< worker timelines producing batches, no GPU stage
    Serving,      //!< open-loop request latency (core/serving.hh)
    Recovery,     //!< checkpointed crash/restart training (core/recovery.hh)
};

/** Declarative description of one experiment family's design grid. */
struct Scenario
{
    std::string family; //!< machine-readable id ("fanout-sweep")
    std::string title;  //!< table banner
    ExperimentKind kind = ExperimentKind::Pipeline;
    /**
     * Artifact document this family's results belong to. Empty routes
     * by kind (serving families to BENCH_serving.json, everything
     * else to BENCH_designspace.json); the cache-policy families set
     * "cache-policy" so both kinds land in BENCH_cachepolicy.json,
     * the fault-space family sets "faults" (BENCH_faults.json), the
     * slo-space family sets "slo" (BENCH_slo.json), and the scaling
     * family sets "scaling" (BENCH_scaling.json).
     */
    std::string artifact;

    // ------- grid axes (each defaults to a single point) -------
    std::vector<graph::DatasetId> datasets{graph::DatasetId::Reddit};
    /** Legacy design-point axis; ignored when `backends` is set. */
    std::vector<DesignPoint> designs{DesignPoint::SmartSageHwSw};
    /**
     * Storage-backend axis as registry ids ("dram", "multi-ssd", ...).
     * When non-empty this axis replaces `designs`, and may name any
     * registered backend — including ones the enum never heard of.
     */
    std::vector<std::string> backends;
    std::vector<std::vector<unsigned>> fanout_grid{{25, 10}};
    std::vector<std::size_t> batch_sizes{1024};
    /**
     * Multi-tenant batch-size mixes (round-robin over batches); the
     * default single empty mix means homogeneous batch_sizes cells.
     */
    std::vector<std::vector<std::size_t>> batch_mixes{{}};
    /** Config overrides; each entry is one grid point (a knob set). */
    std::vector<std::vector<KnobSetting>> overrides{{}};
    /** Simulated producer-worker timelines per cell. */
    std::vector<unsigned> worker_grid{4};

    // ------- serving axes (ExperimentKind::Serving only) -------
    /** Offered open-loop arrival rates, requests per second. */
    std::vector<double> arrival_rates{20000};
    /** Host-I/O queue-depth axis; 0 keeps the config default. */
    std::vector<unsigned> queue_depths{0};
    /** Requests per serving cell. */
    std::size_t serve_requests = 512;
    /** Neighbor entries gathered per request. */
    unsigned serve_fanout = 10;
    /** Poisson vs fixed-rate arrivals. */
    bool serve_poisson = true;

    // ------- shared cell parameters -------
    bool large_scale = true;   //!< dataset variant
    std::size_t num_batches = 8;
    std::uint64_t seed = 0xba7c;

    /** The backend-id axis: `backends`, or `designs` mapped through
     *  the alias layer when `backends` is empty. */
    std::vector<std::string> resolvedBackends() const;

    /** Number of cells the grid expands to. */
    std::size_t gridSize() const;
};

/** One fully resolved point of a scenario grid. */
struct ExperimentCell
{
    std::size_t index = 0; //!< position in expansion order
    std::string family;
    ExperimentKind kind = ExperimentKind::Pipeline;
    graph::DatasetId dataset = graph::DatasetId::Reddit;
    bool large_scale = true;
    /** Storage-backend registry id. */
    std::string backend = "isp-hwsw";
    std::vector<unsigned> fanouts;
    std::size_t batch_size = 1024;
    std::vector<std::size_t> batch_mix;
    std::vector<KnobSetting> knobs;
    unsigned sim_workers = 4;
    std::size_t num_batches = 8;

    // ------- serving cells only -------
    double arrival_qps = 0;    //!< offered rate; 0 for non-serving
    unsigned queue_depth = 0;  //!< host-I/O depth; 0 = config default
    std::size_t serve_requests = 0;
    unsigned serve_fanout = 0;
    bool serve_poisson = true;
    /**
     * Serving request-stream seed: the *scenario* seed, shared by
     * every cell so rates, depths, and backends are compared on the
     * identical request stream (paired comparison).
     */
    std::uint64_t serve_seed = 0;

    /** Resolved config: design, fanouts, knobs, and per-cell seed. */
    SystemConfig config;

    /** Compact human-readable cell id for tables and logs. */
    std::string label() const;
};

/**
 * Expand @p scenario into its flat cell list (axis order: datasets,
 * backends, fanouts, batch sizes, mixes, overrides, workers). Cell i
 * seeds its pipeline from fork(i) of the scenario seed, so cells are
 * statistically independent yet bit-reproducible no matter how the
 * runner schedules them. Unknown override keys and unknown backend
 * ids are fatal (the latter lists the registered ids).
 */
std::vector<ExperimentCell> expandScenario(const Scenario &scenario);

/**
 * The built-in scenario families: the full design-point comparison
 * plus fanout, SSD-geometry, tenant-mix, batch-size, and page-buffer
 * sweeps. These are the families a bare `design_space` run executes;
 * their grids are pinned to the paper's seven design points so the
 * default BENCH_designspace.json stays comparable across revisions.
 */
const std::vector<Scenario> &builtinScenarios();

/**
 * Additional registry-driven families, excluded from the default
 * all-family sweep so the default artifact's family set stays stable
 * (run via `design_space --family`):
 *  - "backend-space": every registered storage backend, including
 *    out-of-core plugins;
 *  - "serving-load": open-loop request serving over every backend
 *    with a host-side edge store, arrival rate x queue depth grid,
 *    emitting BENCH_serving.json (writeServingJson);
 *  - "cache-policy" / "cache-policy-throughput": the feature-cache
 *    policy x capacity grid (host/feature_cache.hh) over every
 *    servable backend, under open-loop serving and under the closed
 *    sampling pipeline respectively, emitting BENCH_cachepolicy.json
 *    (design_space --cache-out);
 *  - "fault-space": fault rate x retry policy over every servable
 *    backend under open-loop serving, emitting recovery metrics
 *    (goodput, shed fraction, retry counters) into BENCH_faults.json
 *    (design_space --faults-out);
 *  - "slo-space": multi-tenant serving (core/tenant.hh) over every
 *    servable backend — scheduling discipline x arrival shape under an
 *    oversubscribed two-tenant workload — emitting per-tenant SLO
 *    attainment and goodput into BENCH_slo.json
 *    (design_space --slo-out);
 *  - "recovery-space": checkpointed training killed mid-run and
 *    restarted from the newest manifest (core/recovery.hh), swept over
 *    checkpoint interval (plus a warm-cache restart point) per
 *    servable backend, emitting recovery time, lost work, and
 *    checkpoint overhead into BENCH_recovery.json
 *    (design_space --recovery-out);
 *  - "scaling": the partitioned scale-out backend swept over node
 *    count x link bandwidth x cut strategy (sampling-only), emitting
 *    annotated scaling_speedup/scaling_efficiency columns into
 *    BENCH_scaling.json (design_space --scaling-out).
 */
const std::vector<Scenario> &extraScenarios();

/** Registered backend ids whose caps include a host-side edge store —
 *  the backends the serving harness can evaluate. Sorted by id. */
std::vector<std::string> servableBackendIds();

/** Find a family by id in builtin + extra. @return nullptr when absent */
const Scenario *findScenario(const std::string &family);

/**
 * Shrink @p scenario to CI smoke size: in-memory dataset variants and
 * a small fixed batch count. Grid shape (and therefore coverage) is
 * preserved.
 */
Scenario smokeVariant(Scenario scenario);

} // namespace smartsage::core

#endif // SMARTSAGE_CORE_SCENARIO_HH
