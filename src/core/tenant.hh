/**
 * @file
 * Multi-tenant serving classes and arrival shapes.
 *
 * A TenantClass describes one arrival population sharing the serving
 * front end: either an open-loop stream at a shaped offered rate, or a
 * closed-loop population of clients that each wait for their previous
 * answer plus a think time before asking again. Classes differ in
 * fanout (request weight), latency SLO, and scheduler priority, which
 * is what makes head-of-line blocking and SLO-aware dispatch
 * observable: a batch tenant's heavy gathers compete with an
 * interactive tenant's small ones on the same host I/O channel.
 *
 * Everything here is deterministic scenario input: tenants are
 * configured through the `tenant.*` knob namespace (tenant.count plus
 * indexed tenant.<i>.<field> keys), and every random draw the serving
 * harness makes on a tenant's behalf comes from RNG forks keyed by
 * (tenant index, request index) — so results are bit-identical at any
 * experiment-runner worker count.
 */

#ifndef SMARTSAGE_CORE_TENANT_HH
#define SMARTSAGE_CORE_TENANT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hh"

namespace smartsage::core
{

/**
 * Arrival process of an open-loop tenant. Poisson and Fixed are the
 * classic memoryless / metronome streams; the other three modulate
 * the offered rate deterministically over simulated time:
 *
 *  - Diurnal: sinusoidal rate swing, qps * mag^sin(2*pi*t / period),
 *    i.e. the rate sweeps between qps/mag and qps*mag once per period.
 *  - Bursty: two-state Markov-modulated Poisson process; the burst
 *    state offers qps * mag, state dwell times are exponential with
 *    mean `period`, and state flips draw from the tenant's own
 *    arrival stream (deterministic per seed).
 *  - FlashCrowd: deterministic replay of a crowd spike — baseline qps
 *    until t = period, then qps * mag for period/2, then baseline.
 */
enum class ArrivalShape : std::uint8_t
{
    Poisson = 0,
    Fixed,
    Diurnal,
    Bursty,
    FlashCrowd,
};

/** Human-readable shape name (tables, docs). */
const char *arrivalShapeName(ArrivalShape shape);

/** One arrival class sharing the serving front end. */
struct TenantClass
{
    /** Display name; the knob layer assigns "t<index>". */
    std::string name = "tenant";

    /**
     * Closed-loop client population. 0 means open loop (arrivals are
     * generated at the offered rate regardless of completions); N > 0
     * means N clients that each submit, wait for the answer, think,
     * and submit again — so offered load self-throttles under
     * saturation, like real user sessions.
     */
    unsigned clients = 0;
    /** Mean think time between a client's answer and its next request
     *  (closed loop only; exponential, per-request RNG fork). */
    sim::Tick think = sim::us(500);

    /** Offered arrival rate, requests/s (open loop only). */
    double arrival_qps = 10000;
    /** Arrival process (open loop only; closed loops pace themselves). */
    ArrivalShape shape = ArrivalShape::Poisson;

    /** Neighbor entries gathered per request (request weight). */
    unsigned fanout = 10;
    /** Per-request latency SLO; 0 means the class has no SLO. Carried
     *  into the channel DispatchTag as an absolute deadline. */
    sim::Tick slo = 0;
    /** Channel dispatch priority (DispatchPolicy::Priority). */
    int priority = 0;
    /** Requests this class contributes to the run; 0 splits the cell's
     *  request budget evenly across classes. */
    std::size_t requests = 0;

    /** Shape timescale: diurnal period, bursty mean state dwell, or
     *  flash-crowd onset time. */
    sim::Tick shape_period = sim::ms(5);
    /** Shape magnitude (peak-to-baseline rate multiplier, >= 1). */
    double shape_mag = 4.0;

    /** This class paces itself off completions. */
    bool closedLoop() const { return clients > 0; }
};

/**
 * Apply one `tenant.`-namespace knob (namespace already stripped):
 * `count` resizes the class list, `<i>.<field>` sets one field of
 * class i (growing the list as needed, so knob order is forgiving).
 * Fields: clients, think_us, qps, shape, fanout, slo_us, priority,
 * requests, shape_period_us, shape_mag. Fatal on a malformed index or
 * an out-of-range shape id. @return false if the key is unknown
 */
bool applyKnob(std::vector<TenantClass> &tenants, std::string_view key,
               double value);

/**
 * Fatal (with a clear message) on impossible tenant settings: an
 * open-loop class with a non-positive rate, a zero fanout, a shape
 * magnitude below 1, or a zero shape period on a rate-modulated
 * stream (Diurnal/Bursty/FlashCrowd).
 */
void validate(const std::vector<TenantClass> &tenants);

} // namespace smartsage::core

#endif // SMARTSAGE_CORE_TENANT_HH
