#include "experiment.hh"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "backend.hh"
#include "host/feature_cache.hh"
#include "recovery.hh"
#include "serving.hh"
#include "sim/logging.hh"
#include "sim/thread_pool.hh"

namespace smartsage::core
{

namespace
{

double
finite(double v)
{
    return std::isfinite(v) ? v : 0.0;
}

/**
 * Execute one cell against its (shared, read-only) workload. Pure
 * simulated time: the outcome depends only on the cell, never on which
 * runner thread executes it.
 */
CellResult
executeCell(const ExperimentCell &cell, const Workload &workload,
            const RunnerOptions &options)
{
    CellResult result;
    result.cell = cell;
    GnnSystem system(cell.config, workload);

    auto add = [&result](const std::string &name, double value) {
        result.metrics.push_back({name, finite(value)});
    };

    if (cell.kind == ExperimentKind::Pipeline) {
        auto r = system.runPipeline();
        add("batches_per_s", r.throughput());
        add("avg_sample_ms", r.avg_sampling_us / 1000.0);
        add("gpu_idle_frac", r.gpu_idle_frac);
    } else if (cell.kind == ExperimentKind::SamplingOnly) {
        auto r = system.runSamplingOnly(cell.sim_workers,
                                        cell.num_batches);
        add("batches_per_s", r.batchesPerSecond());
        add("avg_sample_ms", r.avg_batch_us / 1000.0);
    } else if (cell.kind == ExperimentKind::Recovery) {
        RecoveryRunSpec spec;
        spec.sim_workers = cell.sim_workers;
        spec.train_workers = cell.sim_workers;
        spec.num_batches = cell.num_batches;
        spec.ckpt_dir =
            (std::filesystem::path(options.ckpt_root) /
             (cell.family + "-" + std::to_string(cell.index)))
                .string();
        RecoveryCellResult r = runRecoveryCell(system, spec);
        add("batches_per_s", r.sim.batchesPerSecond());
        add("avg_sample_ms", r.sim.avg_batch_us / 1000.0);
        add("recovery_time_us", r.recovery_time_us);
        add("lost_work_batches",
            static_cast<double>(r.lost_work_batches));
        add("ckpt_overhead_frac", r.ckpt_overhead_frac);
        add("ckpt_bytes_kib", r.ckpt_bytes_kib);
        add("ckpt_dedup_frac", r.ckpt_dedup_frac);
        add("checkpoints", static_cast<double>(r.checkpoints));
        add("resume_bit_identical", r.resume_bit_identical ? 1.0 : 0.0);
        if (!options.keep_checkpoints) {
            std::error_code ec;
            std::filesystem::remove_all(spec.ckpt_dir, ec);
        }
    } else {
        ServingConfig sc;
        sc.arrival_qps = cell.arrival_qps;
        sc.poisson = cell.serve_poisson;
        sc.num_requests = cell.serve_requests;
        sc.fanout = cell.serve_fanout;
        sc.seed = cell.serve_seed;
        sc.tenants = cell.config.tenants;
        ServingResult r = runServingLoad(system, sc);
        add("p50_us", r.p50_us());
        add("p95_us", r.p95_us());
        add("p99_us", r.p99_us());
        add("max_us", r.max_us());
        add("mean_us", r.latency_us.mean());
        add("achieved_qps", r.achieved_qps);
        add("queue_wait_us", r.mean_queue_wait_us);
        add("peak_outstanding",
            static_cast<double>(r.peak_outstanding));
        // Recovery columns appear only when the cell can actually
        // shed (faults injected or a deadline set), so fault-free
        // serving artifacts keep their pre-fault metric set.
        const bool recovery = cell.config.fault.enabled() ||
                              cell.config.retry.wantsDeadline();
        if (recovery) {
            add("goodput_qps", r.goodput_qps);
            add("shed_frac", r.shedFraction());
            add("shed_timeout",
                static_cast<double>(r.shed_timeout));
            add("shed_error", static_cast<double>(r.shed_error));
            add("io_retries", static_cast<double>(r.io_retries));
            add("io_timeouts", static_cast<double>(r.io_timeouts));
            add("io_abandoned",
                static_cast<double>(r.io_abandoned));
        }
        // Multi-tenant columns appear only when tenant classes are
        // configured, so single-stream serving artifacts keep their
        // pre-tenant metric set.
        if (!r.tenants.empty()) {
            add("slo_attainment", r.sloAttainment());
            if (!recovery) { // else already emitted above
                add("goodput_qps", r.goodput_qps);
                add("shed_frac", r.shedFraction());
            }
            add("shed_admission",
                static_cast<double>(r.shed_admission));
            for (std::size_t t = 0; t < r.tenants.size(); ++t) {
                const TenantServingResult &tr = r.tenants[t];
                std::string prefix = "t" + std::to_string(t) + "_";
                add(prefix + "slo_frac", tr.sloAttainment());
                add(prefix + "p99_us",
                    tr.latency_us.percentile(99.0));
                add(prefix + "goodput_qps", tr.goodput_qps);
            }
        }
    }

    // Backend-specific counters come through the uniform instance
    // surface — no substrate casts, so new backends report for free.
    system.backend().addMetrics(
        [&](const std::string &name, double value) { add(name, value); });
    result.notes = system.backend().notes();

    // Feature-cache columns appear only when the decorator exists, so
    // cache-disabled runs keep their pre-cache metric set and notes.
    if (const host::FeatureCacheStore *cache = system.featureCache()) {
        add("cache_hit_frac", cache->hitRate());
        // The prefetch column only for hoard-enabled cells: demand-only
        // cells keep their pre-prefetch metric set.
        if (cache->params().prefetch_enabled)
            add("prefetch_hit_frac", cache->stats().prefetchHitRate());
        std::string note =
            "cache " +
            host::featureCachePolicyName(cache->params().policy) + " " +
            fmtPct(cache->hitRate());
        result.notes = result.notes.empty()
                           ? note
                           : result.notes + ", " + note;
    }
    if (options.collect_stats) {
        std::ostringstream stats;
        system.dumpStats(stats);
        result.stats = stats.str();
    }
    return result;
}

/** JSON string escaping (quotes, backslashes, control characters). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace

double
CellResult::metric(const std::string &name) const
{
    for (const auto &m : metrics)
        if (m.name == name)
            return m.value;
    return 0.0;
}

ExperimentRunner::ExperimentRunner(RunnerOptions options)
    : options_(options)
{
    SS_ASSERT(options_.workers > 0, "need at least one runner worker");
    if (options_.ckpt_root.empty()) {
        // Unique per runner so concurrent processes (parallel ctest
        // jobs) never share recovery-cell scratch directories.
        static std::atomic<unsigned> counter{0};
        options_.ckpt_root =
            (std::filesystem::temp_directory_path() /
             ("smartsage-ckpt-" + std::to_string(::getpid()) + "-" +
              std::to_string(counter.fetch_add(1))))
                .string();
        owns_ckpt_root_ = true;
    }
    if (options_.workers > 1)
        pool_ = std::make_unique<sim::ThreadPool>(options_.workers);
}

ExperimentRunner::~ExperimentRunner()
{
    if (owns_ckpt_root_ && !options_.keep_checkpoints) {
        std::error_code ec;
        std::filesystem::remove_all(options_.ckpt_root, ec);
    }
}

const Workload &
ExperimentRunner::workload(graph::DatasetId id, bool large_scale)
{
    auto key = std::make_pair(static_cast<int>(id), large_scale);
    auto it = workloads_.find(key);
    if (it == workloads_.end()) {
        it = workloads_
                 .emplace(key, std::make_unique<Workload>(
                                   Workload::make(id, large_scale)))
                 .first;
    }
    return *it->second;
}

ScenarioRun
ExperimentRunner::run(const Scenario &scenario)
{
    ScenarioRun out;
    out.scenario = scenario;
    std::vector<ExperimentCell> cells = expandScenario(scenario);
    if (options_.progress)
        SS_INFORM("scenario ", scenario.family, ": ", cells.size(),
                  " cells, ", scenario.num_batches, " batches each");

    // Workloads are built up front on this thread; cells only read
    // them concurrently.
    for (auto id : scenario.datasets)
        workload(id, scenario.large_scale);

    out.cells.resize(cells.size());
    sim::parallelFor(pool_.get(), cells.size(), [&](std::size_t i) {
        const ExperimentCell &cell = cells[i];
        const Workload &wl =
            *workloads_.at({static_cast<int>(cell.dataset),
                            cell.large_scale});
        out.cells[i] = executeCell(cell, wl, options_);
    });
    return out;
}

std::vector<ScenarioRun>
ExperimentRunner::runAll(const std::vector<Scenario> &scenarios)
{
    std::vector<ScenarioRun> runs;
    runs.reserve(scenarios.size());
    for (const auto &scenario : scenarios)
        runs.push_back(run(scenario));
    return runs;
}

TableReporter
ExperimentRunner::table(const ScenarioRun &run)
{
    const Scenario &s = run.scenario;

    // Axis columns: only the axes that actually vary in this grid.
    struct Axis
    {
        const char *name;
        bool show;
        std::string (*value)(const ExperimentCell &);
    };
    const Axis axes[] = {
        {"dataset", s.datasets.size() > 1,
         [](const ExperimentCell &c) {
             return graph::datasetName(c.dataset);
         }},
        {"design", s.resolvedBackends().size() > 1,
         [](const ExperimentCell &c) {
             return backendDisplayName(c.backend);
         }},
        {"fanouts", s.fanout_grid.size() > 1,
         [](const ExperimentCell &c) { return fanoutLabel(c.fanouts); }},
        {"batch", s.batch_sizes.size() > 1,
         [](const ExperimentCell &c) {
             return std::to_string(c.batch_size);
         }},
        {"mix", s.batch_mixes.size() > 1,
         [](const ExperimentCell &c) { return mixLabel(c.batch_mix); }},
        {"override", s.overrides.size() > 1,
         [](const ExperimentCell &c) { return overrideLabel(c.knobs); }},
        {"workers", s.worker_grid.size() > 1,
         [](const ExperimentCell &c) {
             return std::to_string(c.sim_workers);
         }},
        {"rate_qps",
         s.kind == ExperimentKind::Serving &&
             s.arrival_rates.size() > 1,
         [](const ExperimentCell &c) {
             char buf[32];
             std::snprintf(buf, sizeof(buf), "%g", c.arrival_qps);
             return std::string(buf);
         }},
        {"qdepth",
         s.kind == ExperimentKind::Serving && s.queue_depths.size() > 1,
         [](const ExperimentCell &c) {
             return c.queue_depth ? std::to_string(c.queue_depth)
                                  : std::string("default");
         }},
    };
    bool any_axis = false;
    for (const auto &axis : axes)
        any_axis = any_axis || axis.show;

    // Metric columns: union across cells in first-appearance order
    // (cells of one scenario normally share the set; SSD counters are
    // absent for host-only design points).
    std::vector<std::string> metric_names;
    for (const auto &cell : run.cells)
        for (const auto &m : cell.metrics)
            if (std::find(metric_names.begin(), metric_names.end(),
                          m.name) == metric_names.end())
                metric_names.push_back(m.name);

    std::vector<std::string> columns;
    if (!any_axis)
        columns.push_back("design");
    for (const auto &axis : axes)
        if (axis.show)
            columns.push_back(axis.name);
    columns.insert(columns.end(), metric_names.begin(),
                   metric_names.end());
    columns.push_back("notes");

    TableReporter table(s.title, columns);
    for (const auto &result : run.cells) {
        std::vector<std::string> row;
        if (!any_axis)
            row.push_back(backendDisplayName(result.cell.backend));
        for (const auto &axis : axes)
            if (axis.show)
                row.push_back(axis.value(result.cell));
        for (const auto &name : metric_names) {
            bool present = false;
            for (const auto &m : result.metrics)
                present = present || m.name == name;
            if (!present) {
                row.push_back("-");
            } else if (name.size() > 5 &&
                       name.substr(name.size() - 5) == "_frac") {
                row.push_back(fmtPct(result.metric(name)));
            } else {
                row.push_back(fmt(result.metric(name), 2));
            }
        }
        row.push_back(result.notes);
        table.addRow(std::move(row));
    }
    return table;
}

void
annotateScalingMetrics(std::vector<ScenarioRun> &runs)
{
    for (ScenarioRun &run : runs) {
        // Group key: every cell axis and knob except part.nodes.
        auto keyOf = [](const CellResult &result) {
            const ExperimentCell &cell = result.cell;
            std::string key = graph::datasetName(cell.dataset);
            key += '|' + cell.backend;
            for (unsigned f : cell.fanouts)
                key += '/' + std::to_string(f);
            key += '|' + std::to_string(cell.batch_size);
            key += '|' + std::to_string(cell.sim_workers);
            for (const KnobSetting &k : cell.knobs)
                if (k.key != "part.nodes")
                    key += '|' + k.label();
            return key;
        };
        auto nodesOf = [](const CellResult &result) {
            for (const KnobSetting &k : result.cell.knobs)
                if (k.key == "part.nodes")
                    return k.value;
            return 0.0;
        };

        std::map<std::string, double> baseline_ms;
        for (const CellResult &result : run.cells)
            if (nodesOf(result) == 1.0)
                baseline_ms[keyOf(result)] =
                    result.metric("avg_sample_ms");

        for (CellResult &result : run.cells) {
            const double nodes = nodesOf(result);
            if (nodes < 1)
                continue;
            auto base = baseline_ms.find(keyOf(result));
            if (base == baseline_ms.end() || base->second <= 0)
                continue;
            const double ms = result.metric("avg_sample_ms");
            if (ms <= 0)
                continue;
            const double speedup = base->second / ms;
            result.metrics.push_back({"scaling_speedup", speedup});
            result.metrics.push_back(
                {"scaling_efficiency", speedup / nodes});
        }
    }
}

void
writeServingJson(std::ostream &os, const std::vector<ScenarioRun> &runs)
{
    os.precision(10);
    os << "{\n"
       << "  \"bench\": \"serving_load\",\n"
       << "  \"schema_version\": 1,\n"
       << "  \"config\": {\n"
       << "    \"families\": [";
    for (std::size_t i = 0; i < runs.size(); ++i)
        os << (i ? ", " : "") << '"'
           << jsonEscape(runs[i].scenario.family) << '"';
    os << "]\n  },\n"
       << "  \"results\": {\n";

    for (std::size_t r = 0; r < runs.size(); ++r) {
        const ScenarioRun &run = runs[r];
        const Scenario &s = run.scenario;
        SS_ASSERT(s.kind == ExperimentKind::Serving,
                  "writeServingJson needs serving runs, got family '",
                  s.family, "'");
        os << "    \"" << jsonEscape(s.family) << "\": {\n"
           << "      \"title\": \"" << jsonEscape(s.title) << "\",\n"
           << "      \"kind\": \"serving\",\n"
           << "      \"large_scale\": "
           << (s.large_scale ? "true" : "false") << ",\n"
           << "      \"requests\": " << s.serve_requests << ",\n"
           << "      \"fanout\": " << s.serve_fanout << ",\n"
           << "      \"poisson\": "
           << (s.serve_poisson ? "true" : "false") << ",\n"
           << "      \"seed\": " << s.seed << ",\n"
           << "      \"cells\": [\n";
        for (std::size_t i = 0; i < run.cells.size(); ++i) {
            const CellResult &cell = run.cells[i];
            const ExperimentCell &c = cell.cell;
            os << "        {\"dataset\": \""
               << jsonEscape(graph::datasetName(c.dataset))
               << "\", \"backend\": \"" << jsonEscape(c.backend)
               << "\", \"design\": \""
               << jsonEscape(backendDisplayName(c.backend))
               << "\", \"arrival_qps\": " << c.arrival_qps
               << ", \"queue_depth\": " << c.queue_depth
               << ", \"knobs\": {";
            for (std::size_t k = 0; k < c.knobs.size(); ++k)
                os << (k ? ", " : "") << '"'
                   << jsonEscape(c.knobs[k].key)
                   << "\": " << c.knobs[k].value;
            os << "}, \"metrics\": {";
            for (std::size_t m = 0; m < cell.metrics.size(); ++m)
                os << (m ? ", " : "") << '"'
                   << jsonEscape(cell.metrics[m].name)
                   << "\": " << cell.metrics[m].value;
            os << "}, \"notes\": \"" << jsonEscape(cell.notes) << "\"}"
               << (i + 1 < run.cells.size() ? ",\n" : "\n");
        }
        os << "      ]\n    }" << (r + 1 < runs.size() ? ",\n" : "\n");
    }
    os << "  }\n}\n";
}

void
writeDesignSpaceJson(std::ostream &os,
                     const std::vector<ScenarioRun> &runs,
                     const std::string &bench_name)
{
    os.precision(10);
    os << "{\n"
       << "  \"bench\": \"" << jsonEscape(bench_name) << "\",\n"
       << "  \"schema_version\": 1,\n"
       << "  \"config\": {\n"
       << "    \"families\": [";
    for (std::size_t i = 0; i < runs.size(); ++i)
        os << (i ? ", " : "") << '"'
           << jsonEscape(runs[i].scenario.family) << '"';
    os << "]\n  },\n"
       << "  \"results\": {\n";

    for (std::size_t r = 0; r < runs.size(); ++r) {
        const ScenarioRun &run = runs[r];
        const Scenario &s = run.scenario;
        os << "    \"" << jsonEscape(s.family) << "\": {\n"
           << "      \"title\": \"" << jsonEscape(s.title) << "\",\n"
           << "      \"kind\": \""
           << (s.kind == ExperimentKind::Pipeline       ? "pipeline"
               : s.kind == ExperimentKind::SamplingOnly ? "sampling"
               : s.kind == ExperimentKind::Recovery     ? "recovery"
                                                        : "serving")
           << "\",\n"
           << "      \"large_scale\": "
           << (s.large_scale ? "true" : "false") << ",\n"
           << "      \"num_batches\": " << s.num_batches << ",\n"
           << "      \"seed\": " << s.seed << ",\n";
        // Serving axes only for serving families, so non-serving
        // documents (the default artifact) are byte-stable.
        if (s.kind == ExperimentKind::Serving)
            os << "      \"requests\": " << s.serve_requests << ",\n"
               << "      \"fanout\": " << s.serve_fanout << ",\n"
               << "      \"poisson\": "
               << (s.serve_poisson ? "true" : "false") << ",\n";
        os << "      \"cells\": [\n";
        for (std::size_t i = 0; i < run.cells.size(); ++i) {
            const CellResult &cell = run.cells[i];
            const ExperimentCell &c = cell.cell;
            os << "        {\"dataset\": \""
               << jsonEscape(graph::datasetName(c.dataset))
               << "\", \"design\": \""
               << jsonEscape(backendDisplayName(c.backend))
               << "\", \"fanouts\": [";
            for (std::size_t f = 0; f < c.fanouts.size(); ++f)
                os << (f ? ", " : "") << c.fanouts[f];
            os << "], \"batch_size\": " << c.batch_size
               << ", \"batch_mix\": [";
            for (std::size_t m = 0; m < c.batch_mix.size(); ++m)
                os << (m ? ", " : "") << c.batch_mix[m];
            os << "], \"sim_workers\": " << c.sim_workers;
            if (c.kind == ExperimentKind::Serving)
                os << ", \"arrival_qps\": " << c.arrival_qps
                   << ", \"queue_depth\": " << c.queue_depth;
            os << ", \"knobs\": {";
            for (std::size_t k = 0; k < c.knobs.size(); ++k)
                os << (k ? ", " : "") << '"' << jsonEscape(c.knobs[k].key)
                   << "\": " << c.knobs[k].value;
            os << "}, \"metrics\": {";
            for (std::size_t m = 0; m < cell.metrics.size(); ++m)
                os << (m ? ", " : "") << '"'
                   << jsonEscape(cell.metrics[m].name)
                   << "\": " << cell.metrics[m].value;
            os << "}, \"notes\": \"" << jsonEscape(cell.notes) << "\"}"
               << (i + 1 < run.cells.size() ? ",\n" : "\n");
        }
        os << "      ]\n    }" << (r + 1 < runs.size() ? ",\n" : "\n");
    }
    os << "  }\n}\n";
}

} // namespace smartsage::core
