/**
 * @file
 * Online serving harness: request-level evaluation of a storage
 * backend under open-loop load.
 *
 * A GNN inference service answers neighbor-lookup requests — "gather
 * this node's sampled adjacency entries" — arriving from an open
 * population of users at a fixed offered rate (Poisson or metronome
 * arrivals), independent of how fast the system drains them. Requests
 * are submitted through the edge store's asynchronous port (sim/io.hh)
 * so many are in flight at once; queue-depth contention and latency
 * tails emerge from the bounded host-I/O channel plus the shared
 * busy-until device timelines. Per-request latency is recorded into a
 * sim::LatencyHistogram (p50/p95/p99/max), which is what distinguishes
 * this mode from the throughput-oriented sweep harnesses: under load,
 * the tail is the product.
 *
 * With tenant classes configured (core/tenant.hh) the harness becomes
 * a multi-tenant front end: each class contributes either an open-loop
 * stream at a shaped offered rate (Poisson/fixed/diurnal/bursty/
 * flash-crowd) or a closed-loop client population pacing itself off
 * completions plus think time, and every request carries its class's
 * priority/deadline DispatchTag into the channel — which is what makes
 * SLO-aware dispatch and admission shedding measurable per tenant.
 *
 * The whole run is a single-threaded, fully deterministic simulation:
 * request i draws its node and entries from fork(i) of the seed (class
 * t's request j from nested forks keyed by (t, j)), so results are
 * bit-reproducible at any runner --workers count.
 */

#ifndef SMARTSAGE_CORE_SERVING_HH
#define SMARTSAGE_CORE_SERVING_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"
#include "system.hh"
#include "tenant.hh"

namespace smartsage::core
{

/** Parameters of one serving run. */
struct ServingConfig
{
    /** Offered arrival rate, requests per second (open loop). */
    double arrival_qps = 20000;
    /** Poisson (exponential gaps) vs fixed-rate metronome arrivals. */
    bool poisson = true;
    /** Requests in the run (total across tenant classes). */
    std::size_t num_requests = 512;
    /** Sampled neighbor entries gathered per request (single-stream
     *  runs; tenant classes carry their own fanout). */
    unsigned fanout = 10;
    /** Master seed; request i uses fork(i). */
    std::uint64_t seed = 0xba7c;

    /**
     * Tenant classes. Empty runs the classic homogeneous open loop
     * (byte-identical to the pre-tenant harness); otherwise each class
     * contributes its own stream — open loop at its shaped rate or
     * closed loop over its client population — and requests carry the
     * class's priority/deadline DispatchTag into the host I/O channel.
     * A class with `requests == 0` receives an even share of
     * num_requests.
     */
    std::vector<TenantClass> tenants;
};

/** Per-tenant outcome of a multi-tenant serving run. */
struct TenantServingResult
{
    std::string name;
    sim::Tick slo = 0; //!< the class SLO (0 = none), for aggregation
    std::uint64_t requests = 0;
    std::uint64_t completed_ok = 0;
    /** Ok completions within the class SLO (every Ok completion when
     *  the class has no SLO). */
    std::uint64_t slo_met = 0;
    std::uint64_t shed = 0; //!< admission + timeout + error sheds
    sim::LatencyHistogram latency_us;
    double goodput_qps = 0; //!< Ok completions over the run makespan

    /** Fraction of this class's requests answered within its SLO. */
    double
    sloAttainment() const
    {
        return requests ? static_cast<double>(slo_met) /
                              static_cast<double>(requests)
                        : 1.0;
    }
};

/** Outcome of one serving run. */
struct ServingResult
{
    /** Per-request latency (submit -> data usable), microseconds. */
    sim::LatencyHistogram latency_us;
    std::uint64_t requests = 0;
    sim::Tick makespan = 0;     //!< first arrival to last completion
    double offered_qps = 0;     //!< configured arrival rate
    double achieved_qps = 0;    //!< completions over the makespan
    /** Mean host-I/O channel admission wait over the requests that
     *  actually queued (straight-to-slot dispatches are excluded). */
    double mean_queue_wait_us = 0;
    std::uint64_t peak_outstanding = 0; //!< channel high-water mark

    // ---- recovery / degradation (all zero in fault-free runs) ----
    std::uint64_t completed_ok = 0;   //!< requests that returned data
    std::uint64_t shed_error = 0;     //!< shed: retry budget exhausted
    std::uint64_t shed_timeout = 0;   //!< shed: deadline missed
    std::uint64_t shed_admission = 0; //!< shed: admission control
    double goodput_qps = 0;           //!< Ok completions over makespan
    std::uint64_t io_retries = 0;     //!< channel retry count
    std::uint64_t io_timeouts = 0;    //!< channel timeout count
    std::uint64_t io_abandoned = 0;   //!< channel abandon count

    // ---- multi-tenant runs only (empty otherwise) ----
    /** Per-class outcomes, in ServingConfig::tenants order. */
    std::vector<TenantServingResult> tenants;

    /** Fraction of the offered requests shed (not answered with data).
     *  Only Ok completions enter the latency histogram, so the
     *  percentiles below always describe goodput. */
    double
    shedFraction() const
    {
        std::uint64_t shed = shed_error + shed_timeout + shed_admission;
        return requests ? static_cast<double>(shed) /
                              static_cast<double>(requests)
                        : 0.0;
    }

    /**
     * Aggregate SLO attainment over the classes that carry an SLO
     * (shed and late requests count as misses); 1.0 when no class has
     * one, so the metric reads "nothing violated".
     */
    double sloAttainment() const;

    double p50_us() const { return latency_us.percentile(50.0); }
    double p95_us() const { return latency_us.percentile(95.0); }
    double p99_us() const { return latency_us.percentile(99.0); }
    double max_us() const { return latency_us.max(); }
};

/**
 * Run one serving experiment against @p system's edge store: the
 * classic homogeneous open loop when config.tenants is empty, the
 * multi-tenant front end (closed-loop clients, shaped arrivals,
 * tagged dispatch) otherwise. The store is reset() first; backends
 * without a host-side edge store (in-storage ISP/FPGA producers) are
 * fatal — serving evaluates the host request path.
 */
ServingResult runServingLoad(GnnSystem &system,
                             const ServingConfig &config);

} // namespace smartsage::core

#endif // SMARTSAGE_CORE_SERVING_HH
