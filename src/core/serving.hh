/**
 * @file
 * Online serving harness: request-level evaluation of a storage
 * backend under open-loop load.
 *
 * A GNN inference service answers neighbor-lookup requests — "gather
 * this node's sampled adjacency entries" — arriving from an open
 * population of users at a fixed offered rate (Poisson or metronome
 * arrivals), independent of how fast the system drains them. Requests
 * are submitted through the edge store's asynchronous port (sim/io.hh)
 * so many are in flight at once; queue-depth contention and latency
 * tails emerge from the bounded host-I/O channel plus the shared
 * busy-until device timelines. Per-request latency is recorded into a
 * sim::LatencyHistogram (p50/p95/p99/max), which is what distinguishes
 * this mode from the throughput-oriented sweep harnesses: under load,
 * the tail is the product.
 *
 * The whole run is a single-threaded, fully deterministic simulation:
 * request i draws its node and entries from fork(i) of the seed, so
 * results are bit-reproducible at any runner --workers count.
 */

#ifndef SMARTSAGE_CORE_SERVING_HH
#define SMARTSAGE_CORE_SERVING_HH

#include <cstdint>

#include "sim/stats.hh"
#include "sim/types.hh"
#include "system.hh"

namespace smartsage::core
{

/** Parameters of one open-loop serving run. */
struct ServingConfig
{
    /** Offered arrival rate, requests per second (open loop). */
    double arrival_qps = 20000;
    /** Poisson (exponential gaps) vs fixed-rate metronome arrivals. */
    bool poisson = true;
    /** Requests in the run. */
    std::size_t num_requests = 512;
    /** Sampled neighbor entries gathered per request. */
    unsigned fanout = 10;
    /** Master seed; request i uses fork(i). */
    std::uint64_t seed = 0xba7c;
};

/** Outcome of one serving run. */
struct ServingResult
{
    /** Per-request latency (submit -> data usable), microseconds. */
    sim::LatencyHistogram latency_us;
    std::uint64_t requests = 0;
    sim::Tick makespan = 0;     //!< first arrival to last completion
    double offered_qps = 0;     //!< configured arrival rate
    double achieved_qps = 0;    //!< completions over the makespan
    /** Mean host-I/O channel admission wait over the requests that
     *  actually queued (straight-to-slot dispatches are excluded). */
    double mean_queue_wait_us = 0;
    std::uint64_t peak_outstanding = 0; //!< channel high-water mark

    // ---- recovery / degradation (all zero in fault-free runs) ----
    std::uint64_t completed_ok = 0;   //!< requests that returned data
    std::uint64_t shed_error = 0;     //!< shed: retry budget exhausted
    std::uint64_t shed_timeout = 0;   //!< shed: deadline missed
    double goodput_qps = 0;           //!< Ok completions over makespan
    std::uint64_t io_retries = 0;     //!< channel retry count
    std::uint64_t io_timeouts = 0;    //!< channel timeout count
    std::uint64_t io_abandoned = 0;   //!< channel abandon count

    /** Fraction of the offered requests shed (not answered with data).
     *  Only Ok completions enter the latency histogram, so the
     *  percentiles below always describe goodput. */
    double
    shedFraction() const
    {
        std::uint64_t shed = shed_error + shed_timeout;
        return requests ? static_cast<double>(shed) /
                              static_cast<double>(requests)
                        : 0.0;
    }

    double p50_us() const { return latency_us.percentile(50.0); }
    double p95_us() const { return latency_us.percentile(95.0); }
    double p99_us() const { return latency_us.percentile(99.0); }
    double max_us() const { return latency_us.max(); }
};

/**
 * Run one open-loop serving experiment against @p system's edge store.
 * The store is reset() first; backends without a host-side edge store
 * (in-storage ISP/FPGA producers) are fatal — serving evaluates the
 * host request path.
 */
ServingResult runServingLoad(GnnSystem &system,
                             const ServingConfig &config);

} // namespace smartsage::core

#endif // SMARTSAGE_CORE_SERVING_HH
