/**
 * @file
 * The design points evaluated in the paper (Sections V-VI).
 */

#ifndef SMARTSAGE_CORE_DESIGN_POINT_HH
#define SMARTSAGE_CORE_DESIGN_POINT_HH

#include <string>
#include <vector>

namespace smartsage::core
{

/** Every system configuration the paper compares. */
enum class DesignPoint
{
    DramOracle,      //!< infinite-DRAM in-memory processing upper bound
    SsdMmap,         //!< baseline SSD via mmap + OS page cache
    SmartSageSw,     //!< direct I/O runtime, no ISP
    SmartSageHwSw,   //!< direct I/O + firmware ISP (the proposal)
    SmartSageOracle, //!< ISP with dedicated cores (Newport-style CSD)
    Pmem,            //!< Optane DC PMEM on the memory bus
    FpgaCsd,         //!< SmartSSD-style FPGA CSD (Section VI-D)
};

/** Display name matching the paper's figure labels. */
const std::string &designName(DesignPoint dp);

/** All design points in presentation order. */
const std::vector<DesignPoint> &allDesignPoints();

} // namespace smartsage::core

#endif // SMARTSAGE_CORE_DESIGN_POINT_HH
