/**
 * @file
 * The design points evaluated in the paper (Sections V-VI).
 *
 * Since the storage-backend redesign this enum is a thin alias layer:
 * every design point maps 1:1 onto a registered `core::StorageBackend`
 * id (backend.hh), and systems are composed through the registry. The
 * enum (and the helpers below) stay for source compatibility and for
 * concise test/bench code; new substrates register a backend and never
 * extend this enum.
 */

#ifndef SMARTSAGE_CORE_DESIGN_POINT_HH
#define SMARTSAGE_CORE_DESIGN_POINT_HH

#include <string>
#include <string_view>
#include <vector>

namespace smartsage::core
{

/** Every system configuration the paper compares. */
enum class DesignPoint
{
    DramOracle,      //!< infinite-DRAM in-memory processing upper bound
    SsdMmap,         //!< baseline SSD via mmap + OS page cache
    SmartSageSw,     //!< direct I/O runtime, no ISP
    SmartSageHwSw,   //!< direct I/O + firmware ISP (the proposal)
    SmartSageOracle, //!< ISP with dedicated cores (Newport-style CSD)
    Pmem,            //!< Optane DC PMEM on the memory bus
    FpgaCsd,         //!< SmartSSD-style FPGA CSD (Section VI-D)
};

/** Display name matching the paper's figure labels. */
const std::string &designName(DesignPoint dp);

/** Registry id of the backend implementing @p dp ("dram", ...). */
const std::string &backendIdOf(DesignPoint dp);

/**
 * The design point aliased by backend id @p id.
 * @return nullptr for non-paper backends (e.g. "multi-ssd")
 */
const DesignPoint *designPointOf(std::string_view id);

/** All design points in presentation order. */
const std::vector<DesignPoint> &allDesignPoints();

/** Backend ids of the paper's seven design points, presentation order. */
const std::vector<std::string> &paperBackendIds();

} // namespace smartsage::core

#endif // SMARTSAGE_CORE_DESIGN_POINT_HH
