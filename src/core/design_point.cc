#include "design_point.hh"

#include <array>

#include "sim/logging.hh"

namespace smartsage::core
{

namespace
{

/** One enum row of the alias layer: paper label + registry id. */
struct Alias
{
    std::string name; //!< paper figure label
    std::string id;   //!< BackendRegistry id
};

// Function-local statics, not globals: backend registrars in other
// translation units consult this table during static initialization,
// before this file's globals would have been constructed.
const std::array<Alias, 7> &
aliasTable()
{
    static const std::array<Alias, 7> aliases = {{
        {"DRAM", "dram"},
        {"SSD (mmap)", "ssd-mmap"},
        {"SmartSAGE (SW)", "direct-io"},
        {"SmartSAGE (HW/SW)", "isp-hwsw"},
        {"SmartSAGE (oracle)", "isp-oracle"},
        {"PMEM", "pmem"},
        {"FPGA-CSD", "fpga-csd"},
    }};
    return aliases;
}

const std::vector<DesignPoint> &
orderTable()
{
    static const std::vector<DesignPoint> order = {
        DesignPoint::DramOracle,      DesignPoint::SsdMmap,
        DesignPoint::SmartSageSw,     DesignPoint::SmartSageHwSw,
        DesignPoint::SmartSageOracle, DesignPoint::Pmem,
        DesignPoint::FpgaCsd,
    };
    return order;
}

const Alias &
aliasOf(DesignPoint dp)
{
    auto idx = static_cast<std::size_t>(dp);
    SS_ASSERT(idx < aliasTable().size(), "bad design point ", idx);
    return aliasTable()[idx];
}

} // namespace

const std::string &
designName(DesignPoint dp)
{
    return aliasOf(dp).name;
}

const std::string &
backendIdOf(DesignPoint dp)
{
    return aliasOf(dp).id;
}

const DesignPoint *
designPointOf(std::string_view id)
{
    for (const DesignPoint &dp : orderTable())
        if (aliasOf(dp).id == id)
            return &dp;
    return nullptr;
}

const std::vector<DesignPoint> &
allDesignPoints()
{
    return orderTable();
}

const std::vector<std::string> &
paperBackendIds()
{
    static const std::vector<std::string> ids = [] {
        std::vector<std::string> out;
        for (auto dp : orderTable())
            out.push_back(backendIdOf(dp));
        return out;
    }();
    return ids;
}

} // namespace smartsage::core
