#include "design_point.hh"

#include <array>

#include "sim/logging.hh"

namespace smartsage::core
{

namespace
{

const std::array<std::string, 7> names = {
    "DRAM",
    "SSD (mmap)",
    "SmartSAGE (SW)",
    "SmartSAGE (HW/SW)",
    "SmartSAGE (oracle)",
    "PMEM",
    "FPGA-CSD",
};

const std::vector<DesignPoint> order = {
    DesignPoint::DramOracle,      DesignPoint::SsdMmap,
    DesignPoint::SmartSageSw,     DesignPoint::SmartSageHwSw,
    DesignPoint::SmartSageOracle, DesignPoint::Pmem,
    DesignPoint::FpgaCsd,
};

} // namespace

const std::string &
designName(DesignPoint dp)
{
    auto idx = static_cast<std::size_t>(dp);
    SS_ASSERT(idx < names.size(), "bad design point ", idx);
    return names[idx];
}

const std::vector<DesignPoint> &
allDesignPoints()
{
    return order;
}

} // namespace smartsage::core
