/**
 * @file
 * SystemBuilder: the public top-level API.
 *
 * A Workload is one dataset (graph + features); a GnnSystem wires every
 * substrate — SSD, host paths, ISP engine, samplers, GPU model — for
 * one storage backend over that workload, and can run sampling-only
 * experiments (Figs 14-17) or full training pipelines (Figs 6, 7, 18).
 *
 * Substrate composition is delegated to a `core::StorageBackend`
 * looked up in the `core::BackendRegistry` (backend.hh): GnnSystem
 * resolves `SystemConfig::backend` (or the legacy `design` enum alias),
 * asks the backend to build its substrate pieces, and from then on
 * talks to them only through the uniform BackendInstance surface.
 */

#ifndef SMARTSAGE_CORE_SYSTEM_HH
#define SMARTSAGE_CORE_SYSTEM_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "checkpoint.hh"
#include "design_point.hh"
#include "gnn/feature_table.hh"
#include "gnn/gpu_model.hh"
#include "gnn/model.hh"
#include "gnn/sampler.hh"
#include "gnn/tensor.hh"
#include "graph/datasets.hh"
#include "graph/layout.hh"
#include "host/config.hh"
#include "isp/fpga_csd.hh"
#include "isp/isp_engine.hh"
#include "pipeline/trainer.hh"
#include "ssd/config.hh"
#include "tenant.hh"

namespace smartsage::host
{
class EdgeStore;
class FeatureCacheStore;
}
namespace smartsage::ssd
{
class SsdDevice;
}

namespace smartsage::core
{

class BackendInstance; // backend.hh

/** One dataset instantiated at simulation scale. */
struct Workload
{
    graph::DatasetId id;
    graph::CsrGraph graph;
    gnn::FeatureTable features;

    /** Build the large-scale (default) or in-memory variant of @p id. */
    static Workload make(graph::DatasetId id, bool large_scale = true,
                         unsigned num_classes = 16);

    /** Edge-list bytes as stored on the device (8 B entries). */
    std::uint64_t edgeListBytes(const graph::EdgeLayout &layout) const;
};

/** Everything configurable about one system instantiation. */
struct SystemConfig
{
    /** Legacy design-point alias; ignored when `backend` is set. */
    DesignPoint design = DesignPoint::SmartSageHwSw;
    /** Storage-backend registry id; empty defers to `design`. */
    std::string backend;

    host::HostConfig host;
    ssd::SsdConfig ssd;
    isp::IspConfig isp;
    isp::FpgaCsdConfig fpga;
    gnn::GpuConfig gpu;
    pipeline::PipelineConfig pipeline;
    graph::EdgeLayout layout;

    /**
     * Backend-extension knobs ("multi-ssd.shards", ...): settings in a
     * namespace a registered backend claims via its capability flags,
     * stored verbatim for that backend to interpret at build time.
     */
    std::map<std::string, double> backend_knobs;

    /**
     * System-wide fault schedule (`fault.*` knobs) and retry/timeout
     * policy (`retry.*`). GnnSystem propagates them into the host I/O
     * path and the flash array before the backend builds, so every
     * registered backend composes them for free. Defaults are inert.
     */
    sim::FaultPlan fault;
    sim::RetryPolicy retry;

    /**
     * Host I/O channel dispatch policy (`sched.*`) and admission
     * control (`admit.*`), propagated into the host config like the
     * fault plan above. Defaults (Fifo, admission off) keep the
     * request path byte-identical to a build without scheduling.
     */
    sim::SchedConfig sched;
    sim::AdmissionControl admit;

    /**
     * GEMM/aggregate microkernel selection (`kernel.*` knobs):
     * dispatch flavor (auto/scalar/avx2) and the row-block GEMM
     * thread count. Applied process-globally when the GnnSystem is
     * built (gnn::applyKernelConfig); defaults — auto dispatch,
     * single-threaded — match a build without the knob block. No
     * simulated-timing metric depends on GEMM float output, so the
     * flavor never changes a bench artifact.
     */
    gnn::KernelConfig kernel;

    /**
     * Checkpoint policy (`ckpt.*` knobs). Inert by default
     * (interval_batches == 0); the recovery harness (core/recovery.hh)
     * fills in the directory and drives save/restore around the
     * functional training loop.
     */
    CheckpointConfig ckpt;

    /**
     * Serving tenant classes (`tenant.*` knobs). Empty means the
     * serving harness runs its classic single-stream open loop; any
     * classes switch it to the multi-tenant front end (core/tenant.hh,
     * runServingLoad). Ignored by non-serving experiment kinds.
     */
    std::vector<TenantClass> tenants;

    /** GraphSAGE fanouts; ignored when use_saint is set. */
    std::vector<unsigned> fanouts = {25, 10};
    bool use_saint = false;
    unsigned saint_walk_length = 2;

    /**
     * The OS page cache and the direct-I/O scratchpad are sized as a
     * fraction of the edge-list file, preserving the paper's
     * DRAM-to-dataset capacity ratio at simulation scale.
     */
    double page_cache_fraction = 0.45;
    double scratchpad_fraction = 0.45;
    /** SSD-internal DRAM page buffer, scaled the same way. A real 256
     *  MiB controller buffer against a 400 GB dataset covers well
     *  under 1% of the edge file; 2% keeps the same regime while
     *  leaving the ISP engine its intra-batch reuse. May exceed 1 (up
     *  to 2) for deliberate oversizing ablations ("page-buffer"
     *  scenario family). */
    double ssd_buffer_fraction = 0.02;

    unsigned hidden_dim = 64;

    /** Effective sampling depth (fanout hops or walk length). */
    unsigned depth() const;

    /** The backend id this config resolves to (`backend` or the
     *  `design` alias). */
    const std::string &resolvedBackend() const;

    /** Backend-extension knob lookup with a default. */
    double knobOr(const std::string &key, double fallback) const;

    /**
     * Fatal (with a clear message) on impossible settings: cache
     * fractions outside [0, 1] (ssd_buffer_fraction: [0, 2]), empty or
     * zero fanouts, a zero SAINT walk length, fault rates outside
     * [0, 1], a zero retry attempt budget, a backoff ceiling below the
     * base, or a timeout shorter than the minimum service tick. Called
     * by GnnSystem at construction, before any cache is sized.
     */
    void validate() const;
};

/** A fully wired system for one (workload, backend) pair. */
class GnnSystem
{
  public:
    GnnSystem(const SystemConfig &config, const Workload &workload);
    ~GnnSystem();

    /** The producer implementing this backend's sampling path. */
    pipeline::SubgraphProducer &producer();

    /** Run the full producer-consumer training pipeline. */
    pipeline::PipelineResult runPipeline();

    /**
     * Sampling-only experiment: @p workers worker timelines produce
     * @p batches mini-batches (no GPU stage).
     */
    struct SamplingResult
    {
        sim::Tick makespan = 0;
        double avg_batch_us = 0;   //!< mean per-batch sampling latency
        std::uint64_t batches = 0;

        double
        batchesPerSecond() const
        {
            return makespan ? static_cast<double>(batches) /
                                  sim::toSeconds(makespan)
                            : 0.0;
        }
    };

    SamplingResult runSamplingOnly(unsigned workers,
                                   std::size_t batches);

    /**
     * Post-restart variant of runSamplingOnly: every timeline and
     * store is reset (a restarted process starts cold), then — when
     * @p warm_lines is non-null and this backend carries a feature
     * cache — the checkpointed resident set is re-installed before
     * the run, modeling a warm-cache restart.
     */
    SamplingResult
    runSamplingResumed(unsigned workers, std::size_t batches,
                       const std::vector<std::uint64_t> *warm_lines);

    /**
     * Wall-clock outcome of a *functional* multi-worker run: real
     * subgraphs sampled (and optionally a real model trained) on host
     * threads, as opposed to the simulated-time results above.
     */
    struct FunctionalResult
    {
        double wall_seconds = 0;
        std::uint64_t batches = 0;
        std::uint64_t sampled_edges = 0;
        double mean_loss = 0; //!< training runs only

        double
        edgesPerSecond() const
        {
            return wall_seconds > 0
                       ? static_cast<double>(sampled_edges) / wall_seconds
                       : 0.0;
        }

        double
        batchesPerSecond() const
        {
            return wall_seconds > 0
                       ? static_cast<double>(batches) / wall_seconds
                       : 0.0;
        }
    };

    /**
     * Functionally sample @p batches mini-batches over @p workers host
     * threads. Output batches (and therefore sampled_edges) are
     * bit-identical for any worker count at a fixed pipeline seed; see
     * pipeline::runSamplingPipeline.
     */
    FunctionalResult runFunctionalSampling(unsigned workers,
                                           std::size_t batches);

    /**
     * The real per-batch sampling/training loop: @p workers sampler
     * threads feed @p model's trainStep, which consumes batches in
     * strict batch order on the calling thread — so the trained model
     * state is also independent of the worker count.
     */
    FunctionalResult runFunctionalTraining(gnn::SageModel &model,
                                           unsigned workers,
                                           std::size_t batches);

    const SystemConfig &config() const { return config_; }
    const Workload &workload() const { return workload_; }
    const gnn::AnySampler &sampler() const { return *sampler_; }

    /** The backend's substrate instance (producer, stats, notes). */
    BackendInstance &backend() const;

    /** Convenience: the backend's primary SSD; null when it has none
     *  (host-memory backends) or more than one (sharded backends). */
    ssd::SsdDevice *ssd();

    /** Convenience: the backend's host-side edge store; null for
     *  in-storage (ISP/FPGA) backends. */
    host::EdgeStore *edgeStore();

    /** The feature-cache decorator when the `cache.*` knobs enabled
     *  one over this backend's edge store; null otherwise. */
    const host::FeatureCacheStore *featureCache() const;

    /** Mutable access for checkpoint warm-restore. */
    host::FeatureCacheStore *featureCache();

    /** Rendering of a stats report. */
    enum class StatsFormat
    {
        Text, //!< gem5-style name=value lines
        Json, //!< schema-versioned machine-readable document
    };

    /**
     * Render the component-level counters of this system — SSD page
     * buffer, flash array, host caches, PCIe traffic — as a gem5-style
     * stats report (Text) or a schema-versioned JSON document sharing
     * the BENCH_*.json envelope (Json). Call after an experiment.
     */
    void dumpStats(std::ostream &os,
                   StatsFormat format = StatsFormat::Text) const;

    /**
     * The bare `{"stat": value, ...}` object of the JSON stats mode,
     * for embedding into larger documents (design_space --stats-json).
     * @param indent prefix applied to every emitted line
     */
    void dumpStatsJsonMap(std::ostream &os,
                          const std::string &indent) const;

  private:
    SystemConfig config_;
    const Workload &workload_;

    std::unique_ptr<gnn::AnySampler> sampler_;
    std::unique_ptr<BackendInstance> backend_;
    std::unique_ptr<gnn::GpuTimingModel> gpu_;

    struct StatRow
    {
        std::string name;
        double value;
        std::string desc;
    };

    /** All stats rows, graph counters first then backend counters. */
    std::vector<StatRow> statRows() const;
};

} // namespace smartsage::core

#endif // SMARTSAGE_CORE_SYSTEM_HH
