/**
 * @file
 * SystemBuilder: the public top-level API.
 *
 * A Workload is one dataset (graph + features); a GnnSystem wires every
 * substrate — SSD, host paths, ISP engine, samplers, GPU model — for
 * one design point over that workload, and can run sampling-only
 * experiments (Figs 14-17) or full training pipelines (Figs 6, 7, 18).
 */

#ifndef SMARTSAGE_CORE_SYSTEM_HH
#define SMARTSAGE_CORE_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "design_point.hh"
#include "gnn/feature_table.hh"
#include "gnn/gpu_model.hh"
#include "gnn/model.hh"
#include "gnn/sampler.hh"
#include "graph/datasets.hh"
#include "graph/layout.hh"
#include "host/config.hh"
#include "host/io_path.hh"
#include "isp/fpga_csd.hh"
#include "isp/isp_engine.hh"
#include "pipeline/producer.hh"
#include "pipeline/trainer.hh"
#include "ssd/ssd_device.hh"

namespace smartsage::core
{

/** One dataset instantiated at simulation scale. */
struct Workload
{
    graph::DatasetId id;
    graph::CsrGraph graph;
    gnn::FeatureTable features;

    /** Build the large-scale (default) or in-memory variant of @p id. */
    static Workload make(graph::DatasetId id, bool large_scale = true,
                         unsigned num_classes = 16);

    /** Edge-list bytes as stored on the device (8 B entries). */
    std::uint64_t edgeListBytes(const graph::EdgeLayout &layout) const;
};

/** Everything configurable about one system instantiation. */
struct SystemConfig
{
    DesignPoint design = DesignPoint::SmartSageHwSw;

    host::HostConfig host;
    ssd::SsdConfig ssd;
    isp::IspConfig isp;
    isp::FpgaCsdConfig fpga;
    gnn::GpuConfig gpu;
    pipeline::PipelineConfig pipeline;
    graph::EdgeLayout layout;

    /** GraphSAGE fanouts; ignored when use_saint is set. */
    std::vector<unsigned> fanouts = {25, 10};
    bool use_saint = false;
    unsigned saint_walk_length = 2;

    /**
     * The OS page cache and the direct-I/O scratchpad are sized as a
     * fraction of the edge-list file, preserving the paper's
     * DRAM-to-dataset capacity ratio at simulation scale.
     */
    double page_cache_fraction = 0.45;
    double scratchpad_fraction = 0.45;
    /** SSD-internal DRAM page buffer, scaled the same way. A real 256
     *  MiB controller buffer against a 400 GB dataset covers well
     *  under 1% of the edge file; 2% keeps the same regime while
     *  leaving the ISP engine its intra-batch reuse. */
    double ssd_buffer_fraction = 0.02;

    unsigned hidden_dim = 64;

    /** Effective sampling depth (fanout hops or walk length). */
    unsigned depth() const;
};

/** A fully wired system for one (workload, design point) pair. */
class GnnSystem
{
  public:
    GnnSystem(const SystemConfig &config, const Workload &workload);

    /** The producer implementing this design point's sampling path. */
    pipeline::SubgraphProducer &producer() { return *producer_; }

    /** Run the full producer-consumer training pipeline. */
    pipeline::PipelineResult runPipeline();

    /**
     * Sampling-only experiment: @p workers worker timelines produce
     * @p batches mini-batches (no GPU stage).
     */
    struct SamplingResult
    {
        sim::Tick makespan = 0;
        double avg_batch_us = 0;   //!< mean per-batch sampling latency
        std::uint64_t batches = 0;

        double
        batchesPerSecond() const
        {
            return makespan ? static_cast<double>(batches) /
                                  sim::toSeconds(makespan)
                            : 0.0;
        }
    };

    SamplingResult runSamplingOnly(unsigned workers,
                                   std::size_t batches);

    /**
     * Wall-clock outcome of a *functional* multi-worker run: real
     * subgraphs sampled (and optionally a real model trained) on host
     * threads, as opposed to the simulated-time results above.
     */
    struct FunctionalResult
    {
        double wall_seconds = 0;
        std::uint64_t batches = 0;
        std::uint64_t sampled_edges = 0;
        double mean_loss = 0; //!< training runs only

        double
        edgesPerSecond() const
        {
            return wall_seconds > 0
                       ? static_cast<double>(sampled_edges) / wall_seconds
                       : 0.0;
        }

        double
        batchesPerSecond() const
        {
            return wall_seconds > 0
                       ? static_cast<double>(batches) / wall_seconds
                       : 0.0;
        }
    };

    /**
     * Functionally sample @p batches mini-batches over @p workers host
     * threads. Output batches (and therefore sampled_edges) are
     * bit-identical for any worker count at a fixed pipeline seed; see
     * pipeline::runSamplingPipeline.
     */
    FunctionalResult runFunctionalSampling(unsigned workers,
                                           std::size_t batches);

    /**
     * The real per-batch sampling/training loop: @p workers sampler
     * threads feed @p model's trainStep, which consumes batches in
     * strict batch order on the calling thread — so the trained model
     * state is also independent of the worker count.
     */
    FunctionalResult runFunctionalTraining(gnn::SageModel &model,
                                           unsigned workers,
                                           std::size_t batches);

    const SystemConfig &config() const { return config_; }
    const Workload &workload() const { return workload_; }
    const gnn::AnySampler &sampler() const { return *sampler_; }

    /** Non-null for SSD-backed design points. */
    ssd::SsdDevice *ssd() { return ssd_.get(); }

    /** Non-null for CPU-sampling design points (DRAM/mmap/SW/PMEM). */
    host::EdgeStore *edgeStore() { return store_.get(); }

    /**
     * Render the component-level counters of this system — SSD page
     * buffer, flash array, host caches, PCIe traffic — as a gem5-style
     * stats report. Call after an experiment.
     */
    void dumpStats(std::ostream &os) const;

  private:
    SystemConfig config_;
    const Workload &workload_;

    std::unique_ptr<gnn::AnySampler> sampler_;
    std::unique_ptr<ssd::SsdDevice> ssd_;
    std::unique_ptr<host::EdgeStore> store_;
    std::unique_ptr<isp::IspEngine> isp_engine_;
    std::unique_ptr<isp::FpgaCsdEngine> fpga_engine_;
    std::unique_ptr<pipeline::SubgraphProducer> producer_;
    std::unique_ptr<gnn::GpuTimingModel> gpu_;
};

} // namespace smartsage::core

#endif // SMARTSAGE_CORE_SYSTEM_HH
