/**
 * @file
 * The paper's seven design points as registered storage backends.
 *
 * Each backend reproduces exactly the substrate wiring the legacy
 * `DesignPoint` enum switch performed in GnnSystem's constructor, so
 * enum-configured and id-configured systems are bit-identical (pinned
 * by tests/backend/test_registry.cpp).
 */

#include "backend.hh"

#include "core/report.hh"
#include "host/feature_cache.hh"
#include "host/io_path.hh"
#include "isp/fpga_csd.hh"
#include "isp/isp_engine.hh"
#include "ssd/ssd_device.hh"

namespace smartsage::core
{

namespace
{

/**
 * Host-CPU sampling over an EdgeStore, with an optional SSD below.
 * The store is decorated with the feature cache when the `cache.*`
 * knobs enable one; `inner_` keeps the undecorated store for the
 * subclasses' typed counter access.
 */
class CpuStoreInstance : public BackendInstance
{
  public:
    CpuStoreInstance(const BackendBuildContext &ctx,
                     std::unique_ptr<ssd::SsdDevice> ssd,
                     std::unique_ptr<host::EdgeStore> store)
        : ssd_(std::move(ssd)), inner_(store.get()),
          store_(host::wrapWithFeatureCache(std::move(store), ctx)),
          producer_(ctx.workload.graph, ctx.sampler, *store_,
                    ctx.config.host, ctx.config.layout)
    {
    }

    pipeline::SubgraphProducer &producer() override { return producer_; }
    ssd::SsdDevice *ssd() override { return ssd_.get(); }
    host::EdgeStore *edgeStore() override { return store_.get(); }

    void
    addMetrics(const MetricSink &add) const override
    {
        addSsdMetrics(ssd_.get(), add);
    }

    void
    addStats(const StatSink &add) const override
    {
        addSsdStats(ssd_.get(), add);
    }

  protected:
    std::unique_ptr<ssd::SsdDevice> ssd_;
    host::EdgeStore *inner_; //!< undecorated store (typed stats)
    std::unique_ptr<host::EdgeStore> store_;
    pipeline::CpuProducer producer_;
};

// ---------------------------------------------------------------- DRAM

class DramInstance : public CpuStoreInstance
{
  public:
    using CpuStoreInstance::CpuStoreInstance;

    void
    addStats(const StatSink &add) const override
    {
        auto *dram = static_cast<host::DramEdgeStore *>(inner_);
        add("host.llc.miss_rate", dram->llc().missRate(),
            "LLC miss rate over edge reads");
    }
};

std::unique_ptr<BackendInstance>
buildDram(const BackendBuildContext &ctx)
{
    return std::make_unique<DramInstance>(
        ctx, nullptr,
        std::make_unique<host::DramEdgeStore>(ctx.config.host));
}

// ---------------------------------------------------------------- PMEM

std::unique_ptr<BackendInstance>
buildPmem(const BackendBuildContext &ctx)
{
    return std::make_unique<CpuStoreInstance>(
        ctx, nullptr,
        std::make_unique<host::PmemEdgeStore>(ctx.config.host));
}

// ---------------------------------------------------------- SSD (mmap)

class MmapInstance : public CpuStoreInstance
{
  public:
    using CpuStoreInstance::CpuStoreInstance;

    std::string
    notes() const override
    {
        auto *mm = static_cast<host::MmapEdgeStore *>(inner_);
        return "page cache " + fmtPct(mm->pageCacheHitRate()) +
               ", faults " + std::to_string(mm->pageFaults());
    }

    void
    addStats(const StatSink &add) const override
    {
        CpuStoreInstance::addStats(add);
        auto *mm = static_cast<host::MmapEdgeStore *>(inner_);
        add("host.page_cache.hit_rate", mm->pageCacheHitRate(),
            "OS page cache hit rate");
        add("host.page_faults", static_cast<double>(mm->pageFaults()),
            "major faults taken");
    }
};

std::unique_ptr<BackendInstance>
buildMmap(const BackendBuildContext &ctx)
{
    auto ssd = std::make_unique<ssd::SsdDevice>(ctx.config.ssd);
    auto store =
        std::make_unique<host::MmapEdgeStore>(ctx.config.host, *ssd);
    return std::make_unique<MmapInstance>(ctx, std::move(ssd),
                                          std::move(store));
}

// ----------------------------------------------------------- direct I/O

class DirectIoInstance : public CpuStoreInstance
{
  public:
    using CpuStoreInstance::CpuStoreInstance;

    std::string
    notes() const override
    {
        auto *dio = static_cast<host::DirectIoEdgeStore *>(inner_);
        return "scratchpad " + fmtPct(dio->scratchpadHitRate()) +
               ", submits " + std::to_string(dio->submits());
    }

    void
    addStats(const StatSink &add) const override
    {
        CpuStoreInstance::addStats(add);
        auto *dio = static_cast<host::DirectIoEdgeStore *>(inner_);
        add("host.scratchpad.hit_rate", dio->scratchpadHitRate(),
            "user scratchpad hit rate");
        add("host.direct_io.submits",
            static_cast<double>(dio->submits()), "O_DIRECT submissions");
    }
};

std::unique_ptr<BackendInstance>
buildDirectIo(const BackendBuildContext &ctx)
{
    auto ssd = std::make_unique<ssd::SsdDevice>(ctx.config.ssd);
    auto store =
        std::make_unique<host::DirectIoEdgeStore>(ctx.config.host, *ssd);
    return std::make_unique<DirectIoInstance>(ctx, std::move(ssd),
                                              std::move(store));
}

// ----------------------------------------------------- ISP / FPGA CSD

/**
 * In-storage subgraph generation: an SSD plus an offload engine and
 * its producer flavor. The ISP and FPGA design points only differ in
 * the (engine, producer, engine-config) triple.
 */
template <typename Engine, typename Producer, typename EngineConfig>
class InStorageInstance : public BackendInstance
{
  public:
    InStorageInstance(const BackendBuildContext &ctx,
                      const EngineConfig &engine_config, bool dedicated)
        : ssd_(std::make_unique<ssd::SsdDevice>(ctx.config.ssd,
                                                dedicated)),
          engine_(engine_config, *ssd_, ctx.config.layout),
          producer_(ctx.workload.graph, ctx.sampler, engine_, *ssd_)
    {
    }

    pipeline::SubgraphProducer &producer() override { return producer_; }
    ssd::SsdDevice *ssd() override { return ssd_.get(); }

    void
    addMetrics(const MetricSink &add) const override
    {
        addSsdMetrics(ssd_.get(), add);
    }

    void
    addStats(const StatSink &add) const override
    {
        addSsdStats(ssd_.get(), add);
    }

  private:
    std::unique_ptr<ssd::SsdDevice> ssd_;
    Engine engine_;
    Producer producer_;
};

using IspInstance = InStorageInstance<isp::IspEngine,
                                      pipeline::IspProducer,
                                      isp::IspConfig>;
using FpgaInstance = InStorageInstance<isp::FpgaCsdEngine,
                                       pipeline::FpgaProducer,
                                       isp::FpgaCsdConfig>;

std::unique_ptr<BackendInstance>
buildIspHwSw(const BackendBuildContext &ctx)
{
    return std::make_unique<IspInstance>(ctx, ctx.config.isp, false);
}

std::unique_ptr<BackendInstance>
buildIspOracle(const BackendBuildContext &ctx)
{
    // Newport-style CSD: a quad-core complex dedicated to ISP on top
    // of the firmware cores (Section VI-C).
    ctx.config.ssd.embedded_cores += 4;
    return std::make_unique<IspInstance>(ctx, ctx.config.isp, true);
}

std::unique_ptr<BackendInstance>
buildFpga(const BackendBuildContext &ctx)
{
    return std::make_unique<FpgaInstance>(ctx, ctx.config.fpga, false);
}

// -------------------------------------------------------- registration

BackendCaps
caps(bool has_ssd, bool has_isp, EdgeStoreKind store,
     std::vector<std::string> namespaces)
{
    return BackendCaps{has_ssd, has_isp, store, std::move(namespaces)};
}

std::unique_ptr<StorageBackend>
paper(DesignPoint dp, std::string summary, BackendCaps c,
      SimpleBackend::BuildFn build)
{
    return std::make_unique<SimpleBackend>(backendIdOf(dp),
                                           designName(dp),
                                           std::move(summary),
                                           std::move(c), build);
}

const BackendRegistrar reg_dram{paper(
    DesignPoint::DramOracle,
    "infinite-DRAM in-memory oracle: edge list behind the host LLC",
    caps(false, false, EdgeStoreKind::Dram, {"host.", "cache."}),
    buildDram)};

const BackendRegistrar reg_mmap{paper(
    DesignPoint::SsdMmap,
    "baseline SSD: mmap'd edge file through the OS page cache",
    caps(true, false, EdgeStoreKind::Mmap,
         {"host.", "ssd.", "cache."}),
    buildMmap)};

const BackendRegistrar reg_dio{paper(
    DesignPoint::SmartSageSw,
    "SmartSAGE(SW): O_DIRECT runtime with a user scratchpad, no ISP",
    caps(true, false, EdgeStoreKind::DirectIo,
         {"host.", "ssd.", "cache."}),
    buildDirectIo)};

const BackendRegistrar reg_hwsw{paper(
    DesignPoint::SmartSageHwSw,
    "SmartSAGE(HW/SW): firmware in-storage subgraph generation",
    caps(true, true, EdgeStoreKind::None, {"ssd.", "isp."}),
    buildIspHwSw)};

const BackendRegistrar reg_oracle{paper(
    DesignPoint::SmartSageOracle,
    "ISP oracle: Newport-style dedicated in-storage cores",
    caps(true, true, EdgeStoreKind::None, {"ssd.", "isp."}),
    buildIspOracle)};

const BackendRegistrar reg_pmem{paper(
    DesignPoint::Pmem,
    "Optane DC PMEM on the memory bus, byte-granular loads",
    caps(false, false, EdgeStoreKind::Pmem, {"host.", "cache."}),
    buildPmem)};

const BackendRegistrar reg_fpga{paper(
    DesignPoint::FpgaCsd,
    "SmartSSD-style FPGA CSD: P2P transfer + hardwired gather unit",
    caps(true, true, EdgeStoreKind::None, {"ssd.", "fpga."}),
    buildFpga)};

} // namespace

} // namespace smartsage::core
