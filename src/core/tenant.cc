#include "tenant.hh"

#include <charconv>

#include "sim/logging.hh"

namespace smartsage::core
{

const char *
arrivalShapeName(ArrivalShape shape)
{
    switch (shape) {
      case ArrivalShape::Poisson:
        return "poisson";
      case ArrivalShape::Fixed:
        return "fixed";
      case ArrivalShape::Diurnal:
        return "diurnal";
      case ArrivalShape::Bursty:
        return "bursty";
      case ArrivalShape::FlashCrowd:
        return "flash-crowd";
    }
    return "unknown";
}

namespace
{

/** Parse the leading "<i>." of an indexed tenant key. @return false
 *  when @p key does not start with an integer index */
bool
parseIndex(std::string_view &key, std::size_t &index)
{
    const char *begin = key.data();
    const char *end = begin + key.size();
    auto [ptr, ec] = std::from_chars(begin, end, index);
    if (ec != std::errc{} || ptr == begin || ptr == end || *ptr != '.')
        return false;
    key.remove_prefix(static_cast<std::size_t>(ptr - begin) + 1);
    return true;
}

} // namespace

bool
applyKnob(std::vector<TenantClass> &tenants, std::string_view key,
          double value)
{
    if (key == "count") {
        if (value < 0 || value != static_cast<std::size_t>(value))
            SS_FATAL("tenant.count must be a non-negative integer, got ",
                     value);
        tenants.resize(static_cast<std::size_t>(value));
        for (std::size_t i = 0; i < tenants.size(); ++i)
            tenants[i].name = "t" + std::to_string(i);
        return true;
    }

    std::size_t index = 0;
    if (!parseIndex(key, index))
        return false;
    if (index >= tenants.size()) {
        // Grow on demand so "tenant.0.qps" works without a preceding
        // "tenant.count" (knob order stays forgiving).
        std::size_t old = tenants.size();
        tenants.resize(index + 1);
        for (std::size_t i = old; i < tenants.size(); ++i)
            tenants[i].name = "t" + std::to_string(i);
    }
    TenantClass &t = tenants[index];

    if (key == "clients")
        t.clients = static_cast<unsigned>(value);
    else if (key == "think_us")
        t.think = sim::us(value);
    else if (key == "qps")
        t.arrival_qps = value;
    else if (key == "shape") {
        if (value < 0 || value > 4 ||
            value != static_cast<std::uint8_t>(value))
            SS_FATAL("tenant.", index, ".shape must be 0 (poisson), 1 "
                     "(fixed), 2 (diurnal), 3 (bursty), or 4 "
                     "(flash-crowd), got ", value);
        t.shape =
            static_cast<ArrivalShape>(static_cast<std::uint8_t>(value));
    } else if (key == "fanout")
        t.fanout = static_cast<unsigned>(value);
    else if (key == "slo_us")
        t.slo = sim::us(value);
    else if (key == "priority")
        t.priority = static_cast<int>(value);
    else if (key == "requests")
        t.requests = static_cast<std::size_t>(value);
    else if (key == "shape_period_us")
        t.shape_period = sim::us(value);
    else if (key == "shape_mag")
        t.shape_mag = value;
    else
        return false;
    return true;
}

void
validate(const std::vector<TenantClass> &tenants)
{
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const TenantClass &t = tenants[i];
        if (!t.closedLoop() && !(t.arrival_qps > 0))
            SS_FATAL("tenant ", i, " ('", t.name, "'): open-loop "
                     "classes need a positive arrival_qps, got ",
                     t.arrival_qps);
        if (t.fanout == 0)
            SS_FATAL("tenant ", i, " ('", t.name,
                     "'): fanout must be >= 1");
        if (!(t.shape_mag >= 1.0))
            SS_FATAL("tenant ", i, " ('", t.name, "'): shape_mag is a "
                     "peak-to-baseline multiplier and must be >= 1, "
                     "got ", t.shape_mag);
        bool shaped = t.shape == ArrivalShape::Diurnal ||
                      t.shape == ArrivalShape::Bursty ||
                      t.shape == ArrivalShape::FlashCrowd;
        if (shaped && t.shape_period == 0)
            SS_FATAL("tenant ", i, " ('", t.name, "'): shape '",
                     arrivalShapeName(t.shape),
                     "' needs a positive shape_period");
    }
}

} // namespace smartsage::core
