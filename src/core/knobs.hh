/**
 * @file
 * The declarative knob catalog: one row per scenario-override key the
 * applyKnob dispatch (core/scenario.cc) understands, grouped by
 * namespace, with the type, default, validation range, and meaning of
 * each knob.
 *
 * The catalog is the single source of truth for docs/KNOBS.md
 * (`design_space --knobs-doc`, drift-gated in CI) and is itself kept
 * honest by a round-trip test that pushes every cataloged key through
 * applyKnob on a fresh SystemConfig — a knob that exists in code but
 * not here fails the doc-coverage check, and a cataloged key the code
 * no longer accepts fails the round trip.
 */

#ifndef SMARTSAGE_CORE_KNOBS_HH
#define SMARTSAGE_CORE_KNOBS_HH

#include <ostream>
#include <string>
#include <vector>

namespace smartsage::core
{

/** Documentation row of one scenario-override knob. */
struct KnobDoc
{
    /** Key relative to the namespace prefix ("flash.channels"). The
     *  placeholder "<i>" stands for a tenant index ("0.", "1.", ...)
     *  and is replaced with "0" when the row is machine-checked. */
    std::string key;
    std::string type;  //!< "int", "double", "bool", or "enum"
    std::string def;   //!< rendered default value
    std::string range; //!< accepted values / validation constraint
    std::string desc;  //!< one-line meaning
    /** A representative valid value, used by the round-trip test. */
    double sample = 0;
};

/** One knob namespace of the applyKnob dispatch. */
struct KnobNamespaceDoc
{
    std::string prefix; //!< "ssd." etc.; "" for top-level keys
    std::string title;
    std::string owner; //!< source file interpreting the namespace
    std::vector<KnobDoc> knobs;
};

/** The full catalog, in dispatch order (top-level last). */
const std::vector<KnobNamespaceDoc> &knobCatalog();

/**
 * Render the catalog as docs/KNOBS.md: one table per namespace plus
 * a section on the registry-claimed backend namespaces. Deterministic,
 * so CI can regenerate and diff.
 */
void writeKnobsDoc(std::ostream &os);

} // namespace smartsage::core

#endif // SMARTSAGE_CORE_KNOBS_HH
