#include "docgen.hh"

#include <fstream>
#include <string_view>
#include <utility>
#include <vector>

#include "backend.hh"
#include "scenario.hh"
#include "sim/logging.hh"

namespace smartsage::core
{

namespace
{

const char *
kindName(ExperimentKind kind)
{
    switch (kind) {
      case ExperimentKind::Pipeline:
        return "pipeline";
      case ExperimentKind::SamplingOnly:
        return "sampling-only";
      case ExperimentKind::Serving:
        return "serving";
      case ExperimentKind::Recovery:
        return "recovery";
    }
    return "?";
}

/**
 * Artifact document a family's cells land in — the same routing
 * design_space's main() applies when splitting runs across --out
 * flags, kept in one place so the doc cannot disagree with the tool.
 */
std::string
artifactFileFor(const Scenario &s)
{
    if (s.artifact == "cache-policy")
        return "BENCH_cachepolicy.json";
    if (s.artifact == "faults")
        return "BENCH_faults.json";
    if (s.artifact == "slo")
        return "BENCH_slo.json";
    if (s.artifact == "recovery")
        return "BENCH_recovery.json";
    if (s.artifact == "scaling")
        return "BENCH_scaling.json";
    if (s.kind == ExperimentKind::Serving)
        return "BENCH_serving.json";
    return "BENCH_designspace.json";
}

/** One row of the static module map. */
struct ModuleDoc
{
    const char *dir;
    const char *role;
};

constexpr ModuleDoc kModules[] = {
    {"src/sim",
     "simulation substrate: ticks, event queue, bounded service "
     "stations (io.hh), inter-node links (net.hh), fault injection, "
     "RNG, serialization, host thread pool"},
    {"src/graph",
     "CSR graphs, paper datasets at simulation scale, power-law "
     "generator, on-device edge-list layout"},
    {"src/gnn",
     "GraphSAGE/SAINT samplers, Tensor2D + runtime-dispatched GEMM "
     "microkernels (scalar/AVX2, thread-parallel row blocks), model, "
     "feature table"},
    {"src/flash",
     "NAND array: channel/die geometry, page read + transfer timing"},
    {"src/ssd",
     "SSD device: controller page buffer, firmware cores, NVMe/PCIe "
     "front end, sharded multi-device striping"},
    {"src/isp",
     "in-storage processing engines: SmartSAGE ISP cores and the "
     "FPGA CSD design point"},
    {"src/host",
     "host-side edge stores: page cache, direct I/O, tiered DRAM, "
     "feature cache (LRU/hoard, MSHRs), partitioned scale-out store"},
    {"src/pipeline",
     "producer-consumer training pipeline: batch jobs, worker "
     "scheduler, parallel functional sampling"},
    {"src/core",
     "experiment harness: backend registry, scenario grids, "
     "serving/SLO/fault/recovery harnesses, checkpoints, knob "
     "catalog, reports, this docs generator"},
};

/** One row of the service-station inventory. */
struct ChannelDoc
{
    const char *name;
    const char *where;
    const char *what;
};

constexpr ChannelDoc kChannels[] = {
    {"StorageChannel", "src/sim/io.hh",
     "bounded host-I/O submission queue in front of every edge store; "
     "queue-depth contention under open-loop serving load"},
    {"flash channels x dies", "src/flash/flash_array.hh",
     "NAND service stations: page sense (tR) per die, transfer time "
     "per channel; the aggregate die count bounds storage concurrency"},
    {"NVMe command + PCIe link", "src/ssd/ssd_device.hh",
     "per-command firmware/submission cost and the host link "
     "bandwidth in front of the flash array"},
    {"embedded firmware cores", "src/ssd/config.hh",
     "SSD-internal compute budget shared by the FTL baseline and the "
     "ISP engines"},
    {"NetworkChannel", "src/sim/net.hh",
     "point-to-point inter-node link (bandwidth, one-way latency, "
     "lane count); one per remote node of the partitioned backend"},
    {"ThreadPool", "src/sim/thread_pool.hh",
     "real host threads for wall-clock work: parallel sweep cells, "
     "pipeline workers, and the row-block threaded GEMM"},
};

/** One row of the ctest label taxonomy. */
struct LabelDoc
{
    const char *label;
    const char *source;
    const char *covers;
};

constexpr LabelDoc kLabels[] = {
    {"unit", "tests/* (default)",
     "everything not claimed by a directory rule below"},
    {"integration", "tests/integration/",
     "end-to-end paper-figure reproductions and cross-design "
     "functional identity"},
    {"backend", "tests/backend/",
     "every-registered-backend smoke plus the plugin backends' "
     "behavior and knob validation"},
    {"serving", "tests/serving/",
     "open-loop latency harness and serving-percentile plumbing"},
    {"cache", "tests/cache/",
     "feature-cache policies, decorator, MSHR/coalescing miss path"},
    {"fault", "tests/fault/",
     "fault injection, retry/timeout policy, degraded-mode recovery"},
    {"slo", "tests/slo/",
     "multi-tenant SLO front end: tenant classes, tagged dispatch, "
     "admission shedding"},
    {"recovery", "tests/recovery/",
     "versioned checkpoint store, suspend/resume bit-identity, "
     "crash-under-load accounting"},
    {"kernel", "tests/kernel/",
     "SIMD/threaded GEMM dispatch: flavor equivalence vs the naive "
     "goldens, worker-count bit-identity"},
    {"scaling", "tests/scaling/",
     "partitioned scale-out backend: partition maps, network channel, "
     "remote routing, dram functional identity"},
    {"perf", "CMakeLists.txt (bench smokes)",
     "perf_* binaries in --quick mode; full suite on main/nightly "
     "only"},
};

/**
 * Parse the GATED_METRICS table out of ci/compare_bench.py: lines of
 * the form `"name": "higher",` between the `GATED_METRICS = {` opener
 * and its closing `}`. Fatal when absent — the doc must not render
 * without the gate's source of truth.
 */
std::vector<std::pair<std::string, std::string>>
parseGatedMetrics(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        SS_FATAL("cannot read ", path,
                 " (run from the repository root so the gated-metric "
                 "table is reachable)");
    std::vector<std::pair<std::string, std::string>> metrics;
    std::string line;
    bool inside = false;
    while (std::getline(in, line)) {
        if (!inside) {
            if (line.find("GATED_METRICS = {") != std::string::npos)
                inside = true;
            continue;
        }
        if (!line.empty() && line[0] == '}')
            break;
        // Match `    "metric": "higher",` allowing trailing comments.
        std::size_t k0 = line.find('"');
        if (k0 == std::string::npos)
            continue;
        std::size_t k1 = line.find('"', k0 + 1);
        std::size_t v0 = line.find('"', k1 + 1);
        std::size_t v1 =
            v0 == std::string::npos ? v0 : line.find('"', v0 + 1);
        if (k1 == std::string::npos || v1 == std::string::npos)
            continue;
        std::string dir = line.substr(v0 + 1, v1 - v0 - 1);
        if (dir != "higher" && dir != "lower")
            continue;
        metrics.emplace_back(line.substr(k0 + 1, k1 - k0 - 1), dir);
    }
    if (metrics.empty())
        SS_FATAL("no GATED_METRICS table found in ", path);
    return metrics;
}

/** Every scenario family, builtin first then --family-only extras. */
std::vector<std::pair<Scenario, bool>>
allScenarios()
{
    std::vector<std::pair<Scenario, bool>> all;
    for (const Scenario &s : builtinScenarios())
        all.emplace_back(s, true);
    for (const Scenario &s : extraScenarios())
        all.emplace_back(s, false);
    return all;
}

} // namespace

void
writeArchDoc(std::ostream &os)
{
    os << "# Architecture map\n"
       << "\n"
       << "<!-- Generated by `design_space --arch-doc`; do not edit "
          "by hand.\n"
       << "     CI regenerates this file and fails on drift. -->\n"
       << "\n"
       << "One page of load-bearing structure: what lives where, "
          "which storage\n"
       << "backends are registered, which service stations time "
          "requests, and\n"
       << "how the test suite is labeled. [DESIGN.md](../DESIGN.md) "
          "has the\n"
       << "narrative; [docs/KNOBS.md](KNOBS.md) has every "
          "configuration knob.\n"
       << "\n"
       << "## Module map\n"
       << "\n"
       << "| directory | role |\n"
       << "|---|---|\n";
    for (const ModuleDoc &m : kModules)
        os << "| `" << m.dir << "` | " << m.role << " |\n";

    os << "\n"
       << "## Storage backends (`core::BackendRegistry`)\n"
       << "\n"
       << "Registered via static `BackendRegistration` objects — no "
          "core edits\n"
       << "to add one. `default grids` marks participation in the "
          "default\n"
       << "design-space artifacts; opt-out backends run only in their "
          "dedicated\n"
       << "`--family` sweeps so the default artifacts stay "
          "byte-stable.\n"
       << "\n"
       << "| id | design | SSD | ISP | edge store | default grids | "
          "knob namespaces | summary |\n"
       << "|---|---|---|---|---|---|---|---|\n";
    for (const StorageBackend *b : BackendRegistry::instance().all()) {
        const BackendCaps &caps = b->caps();
        std::string namespaces;
        for (const std::string &ns : caps.knob_namespaces) {
            if (!namespaces.empty())
                namespaces += " ";
            namespaces += "`" + ns + "`";
        }
        os << "| `" << b->id() << "` | " << b->displayName() << " | "
           << (caps.has_ssd ? "yes" : "no") << " | "
           << (caps.has_isp ? "yes" : "no") << " | "
           << edgeStoreKindName(caps.edge_store) << " | "
           << (caps.in_default_grids ? "yes" : "no") << " | "
           << namespaces << " | " << b->summary() << " |\n";
    }

    os << "\n"
       << "## Service stations\n"
       << "\n"
       << "Every latency in the simulator comes from a busy-until "
          "timeline on\n"
       << "one of these bounded resources; concurrency beyond a "
          "station's lane\n"
       << "count queues.\n"
       << "\n"
       << "| station | where | what queues on it |\n"
       << "|---|---|---|\n";
    for (const ChannelDoc &c : kChannels)
        os << "| " << c.name << " | `" << c.where << "` | " << c.what
           << " |\n";

    os << "\n"
       << "## Scenario families\n"
       << "\n"
       << "Declarative design grids (`core::Scenario`); `builtin` "
          "families run\n"
       << "by default, the rest need `--family <name>`. Cell counts "
          "are the\n"
       << "full-size grid (before `--smoke`).\n"
       << "\n"
       << "| family | kind | cells | builtin | artifact | title |\n"
       << "|---|---|---|---|---|---|\n";
    for (const auto &[s, builtin] : allScenarios())
        os << "| `" << s.family << "` | " << kindName(s.kind) << " | "
           << s.gridSize() << " | " << (builtin ? "yes" : "no")
           << " | `" << artifactFileFor(s) << "` | " << s.title
           << " |\n";

    os << "\n"
       << "## Test labels\n"
       << "\n"
       << "`ctest -L <label>`; the PR fast path runs every label "
          "except\n"
       << "`integration` and `perf` (see `.github/workflows/ci.yml`).\n"
       << "\n"
       << "| label | source | covers |\n"
       << "|---|---|---|\n";
    for (const LabelDoc &l : kLabels)
        os << "| `" << l.label << "` | `" << l.source << "` | "
           << l.covers << " |\n";
}

void
writeBenchesDoc(std::ostream &os,
                const std::string &compare_script_path)
{
    auto gated = parseGatedMetrics(compare_script_path);

    os << "# Bench artifacts\n"
       << "\n"
       << "<!-- Generated by `design_space --benches-doc`; do not "
          "edit by hand.\n"
       << "     CI regenerates this file and fails on drift. -->\n"
       << "\n"
       << "Every CI run's optimized gcc leg emits these "
          "machine-readable\n"
       << "`BENCH_*.json` documents (uploaded as the "
          "`bench-trajectory`\n"
       << "artifact), then `ci/compare_bench.py` diffs the sweep "
          "documents\n"
       << "against the previous successful main run. All share the "
          "same\n"
       << "top-level schema: `bench`, `schema_version`, `config`, "
          "`results`.\n"
       << "\n"
       << "## Artifacts\n"
       << "\n"
       << "| artifact | bench id | schema | gated | producing command "
          "|\n"
       << "|---|---|---|---|---|\n";

    struct ArtifactDoc
    {
        const char *file;
        const char *bench;
        bool gated;
        const char *command;
    };
    constexpr ArtifactDoc kArtifacts[] = {
        {"BENCH_designspace.json", "design_space", true,
         "`design_space --smoke --workers 2 --out "
         "BENCH_designspace.json --stats-json "
         "BENCH_backendstats.json`"},
        {"BENCH_backendstats.json", "backend_stats", false,
         "emitted by the `--stats-json` flag of the design-space "
         "sweep above"},
        {"BENCH_serving.json", "serving_load", true,
         "`design_space --family serving-load --smoke --workers 2 "
         "--serving-out BENCH_serving.json`"},
        {"BENCH_cachepolicy.json", "cache_policy", true,
         "`design_space --family cache-policy --family "
         "cache-policy-throughput --smoke --workers 2 --cache-out "
         "BENCH_cachepolicy.json`"},
        {"BENCH_faults.json", "fault_space", true,
         "`design_space --family fault-space --smoke --workers 2 "
         "--faults-out BENCH_faults.json`"},
        {"BENCH_slo.json", "slo_space", true,
         "`design_space --family slo-space --smoke --workers 2 "
         "--slo-out BENCH_slo.json`"},
        {"BENCH_recovery.json", "recovery_space", true,
         "`design_space --family recovery-space --smoke --workers 2 "
         "--recovery-out BENCH_recovery.json`"},
        {"BENCH_scaling.json", "scaling_space", true,
         "`design_space --family scaling --smoke --workers 2 "
         "--scaling-out BENCH_scaling.json`"},
        {"BENCH_hotpath.json", "perf_hotpath", false,
         "`perf_hotpath --quick --out BENCH_hotpath.json` "
         "(non-gating: wall-clock speedups are noisy on shared "
         "runners)"},
    };
    for (const ArtifactDoc &a : kArtifacts)
        os << "| `" << a.file << "` | `" << a.bench << "` | 1 | "
           << (a.gated ? "yes" : "no") << " | " << a.command << " |\n";

    os << "\n"
       << "## Family-to-artifact routing\n"
       << "\n"
       << "Which scenario family's cells land in which document "
          "(serving-kind\n"
       << "families route to the serving schema; `artifact` tags "
          "override):\n"
       << "\n"
       << "| family | kind | artifact |\n"
       << "|---|---|---|\n";
    for (const auto &[s, builtin] : allScenarios()) {
        (void)builtin;
        os << "| `" << s.family << "` | " << kindName(s.kind)
           << " | `" << artifactFileFor(s) << "` |\n";
    }

    os << "\n"
       << "## Gated metrics\n"
       << "\n"
       << "From `ci/compare_bench.py` (`GATED_METRICS`) — the single "
          "table\n"
       << "declaring which cell metrics gate and in which direction. "
          "\"higher\"\n"
       << "metrics must not drop and \"lower\" metrics must not rise "
          "by more\n"
       << "than the threshold (default 20%) at the same cell "
          "identity; every\n"
       << "other metric is informational.\n"
       << "\n"
       << "| metric | good direction |\n"
       << "|---|---|\n";
    for (const auto &[name, dir] : gated)
        os << "| `" << name << "` | " << dir << " |\n";
}

} // namespace smartsage::core
