#include "recovery.hh"

#include <bit>
#include <filesystem>
#include <memory>

#include "host/feature_cache.hh"
#include "pipeline/producer.hh"
#include "sim/logging.hh"
#include "sim/thread_pool.hh"

namespace smartsage::core
{

namespace
{

/** Section names of a training snapshot. */
constexpr const char *kMetaSection = "meta";
constexpr const char *kModelSection = "model";
constexpr const char *kTrainerSection = "trainer";
constexpr const char *kRngSection = "rng";
constexpr const char *kCacheSection = "cache";

/**
 * Config fingerprint: everything that must match for a snapshot to be
 * resumable on this system — backend, sampling seed/shape, batch size.
 * Model-shape mismatches are caught separately by SageModel::loadState.
 */
std::vector<std::uint8_t>
metaFingerprint(const GnnSystem &system)
{
    const SystemConfig &config = system.config();
    sim::ByteWriter writer;
    writer.str(config.resolvedBackend());
    writer.u64(config.pipeline.seed);
    writer.u64(config.pipeline.batch_size);
    writer.u64(config.fanouts.size());
    for (unsigned fanout : config.fanouts)
        writer.u32(fanout);
    writer.u8(config.use_saint ? 1 : 0);
    writer.u32(config.saint_walk_length);
    return writer.take();
}

const std::vector<std::uint8_t> &
section(const Snapshot &snapshot, const std::string &name)
{
    auto it = snapshot.sections.find(name);
    if (it == snapshot.sections.end())
        throw sim::SerializeError("checkpoint step " +
                                  std::to_string(snapshot.step) +
                                  " has no '" + name + "' section");
    return it->second;
}

Snapshot
makeSnapshot(const GnnSystem &system, const gnn::SageModel &model,
             std::uint64_t cursor, double loss_sum,
             std::uint64_t sampled_edges,
             const std::vector<std::uint64_t> *cache_lines)
{
    Snapshot snapshot;
    snapshot.step = cursor;
    snapshot.sections.emplace(kMetaSection, metaFingerprint(system));

    sim::ByteWriter model_bytes;
    model.saveState(model_bytes);
    snapshot.sections.emplace(kModelSection, model_bytes.take());

    sim::ByteWriter trainer;
    trainer.u64(cursor);
    trainer.u64(sampled_edges);
    trainer.f64(loss_sum);
    snapshot.sections.emplace(kTrainerSection, trainer.take());

    // The sampler "state" is just the fork position: batch i draws
    // from fork(i), so saving fork(cursor) gives the load path an
    // integrity check that the reader derives the same stream.
    const sim::RngState rng =
        sim::Rng(system.config().pipeline.seed).fork(cursor).save();
    sim::ByteWriter rng_bytes;
    for (std::uint64_t word : rng.s)
        rng_bytes.u64(word);
    rng_bytes.u64(rng.seed);
    snapshot.sections.emplace(kRngSection, rng_bytes.take());

    if (cache_lines) {
        sim::ByteWriter cache;
        cache.u64(cache_lines->size());
        for (std::uint64_t line : *cache_lines)
            cache.u64(line);
        snapshot.sections.emplace(kCacheSection, cache.take());
    }
    return snapshot;
}

/** Restore @p snapshot into the run state; throws on any mismatch. */
void
applySnapshot(const Snapshot &snapshot, const GnnSystem &system,
              gnn::SageModel &model, std::uint64_t &cursor,
              double &loss_sum, std::uint64_t &sampled_edges,
              std::vector<std::uint64_t> &warm_lines)
{
    if (section(snapshot, kMetaSection) != metaFingerprint(system))
        throw sim::SerializeError(
            "checkpoint step " + std::to_string(snapshot.step) +
            " was taken under a different system configuration");

    sim::ByteReader trainer(section(snapshot, kTrainerSection));
    cursor = trainer.u64();
    sampled_edges = trainer.u64();
    loss_sum = trainer.f64();
    if (cursor != snapshot.step)
        throw sim::SerializeError(
            "trainer cursor " + std::to_string(cursor) +
            " disagrees with manifest step " +
            std::to_string(snapshot.step));

    sim::ByteReader model_bytes(section(snapshot, kModelSection));
    model.loadState(model_bytes);

    sim::ByteReader rng_bytes(section(snapshot, kRngSection));
    sim::RngState stored;
    for (std::uint64_t &word : stored.s)
        word = rng_bytes.u64();
    stored.seed = rng_bytes.u64();
    const sim::RngState expected =
        sim::Rng(system.config().pipeline.seed).fork(cursor).save();
    if (!(stored == expected))
        throw sim::SerializeError(
            "checkpoint RNG fork position does not match fork(" +
            std::to_string(cursor) + ") of the pipeline seed");

    warm_lines.clear();
    auto cache_it = snapshot.sections.find(kCacheSection);
    if (cache_it != snapshot.sections.end()) {
        sim::ByteReader cache(cache_it->second);
        const std::uint64_t count = cache.u64();
        warm_lines.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i)
            warm_lines.push_back(cache.u64());
    }
}

bool
bitEqual(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
           std::bit_cast<std::uint64_t>(b);
}

} // namespace

gnn::ModelConfig
checkpointModelConfig(const GnnSystem &system)
{
    const SystemConfig &config = system.config();
    gnn::ModelConfig mc;
    mc.in_dim = system.workload().features.dim();
    mc.hidden_dim = config.hidden_dim;
    mc.num_classes = system.workload().features.numClasses();
    mc.depth = config.depth();
    mc.seed = config.pipeline.seed;
    return mc;
}

TrainRunResult
runCheckpointedTraining(GnnSystem &system, gnn::SageModel &model,
                        const TrainRunOptions &options)
{
    SS_ASSERT(options.workers > 0 && options.total_batches > 0,
              "degenerate checkpointed run");
    const SystemConfig &config = system.config();
    const CheckpointConfig &ckpt = config.ckpt;

    std::unique_ptr<CheckpointManager> manager;
    if (ckpt.enabled())
        manager = std::make_unique<CheckpointManager>(ckpt);

    TrainRunResult result;
    std::uint64_t cursor = 0;
    double loss_sum = 0;
    std::uint64_t sampled_edges = 0;

    if (manager) {
        if (auto latest = manager->latestStep()) {
            applySnapshot(manager->load(*latest), system, model, cursor,
                          loss_sum, sampled_edges, result.warm_lines);
            result.resumed = true;
        }
    }
    result.start_batch = cursor;
    SS_ASSERT(cursor <= options.total_batches,
              "checkpoint cursor is past the end of this run");

    // A kill at batch K means batches [0, K) completed before the
    // process died; a kill the run never reaches is a no-op.
    const bool kill = options.kill_batch != 0 &&
                      options.kill_batch > cursor &&
                      options.kill_batch < options.total_batches;
    const std::uint64_t stop =
        kill ? options.kill_batch : options.total_batches;

    if (stop > cursor) {
        pipeline::ParallelSampleConfig psc;
        psc.workers = options.workers;
        psc.num_batches = stop - cursor;
        psc.batch_size = config.pipeline.batch_size;
        psc.seed = config.pipeline.seed;
        psc.first_batch = cursor;
        sim::ThreadPool pool(options.workers);

        const std::uint64_t start = cursor;
        pipeline::runSamplingPipeline(
            system.workload().graph, system.sampler(), psc, &pool,
            [&](std::size_t local, pipeline::FunctionalBatch &&batch) {
                sampled_edges += batch.subgraph.totalSampledEdges();
                loss_sum += model.trainStep(batch.subgraph,
                                            system.workload().features);
                cursor = start + local + 1;
                if (manager && cursor % ckpt.interval_batches == 0)
                    manager->save(makeSnapshot(system, model, cursor,
                                               loss_sum, sampled_edges,
                                               options.cache_lines));
            });
    }

    result.end_batch = cursor;
    result.loss_sum = loss_sum;
    result.sampled_edges = sampled_edges;
    if (manager)
        result.stats = manager->stats();
    return result;
}

RecoveryCellResult
runRecoveryCell(GnnSystem &system, const RecoveryRunSpec &spec)
{
    const SystemConfig &config = system.config();
    SS_ASSERT(config.ckpt.interval_batches != 0,
              "recovery cells need ckpt.interval_batches");
    SS_ASSERT(!spec.ckpt_dir.empty(),
              "recovery cells need a checkpoint scratch directory");
    std::filesystem::remove_all(spec.ckpt_dir);

    RecoveryCellResult out;
    const std::uint64_t total = spec.num_batches;
    const std::uint64_t interval = config.ckpt.interval_batches;
    const std::uint64_t kill = config.fault.kill_batch;
    const bool crash = kill != 0 && kill < total;
    const std::uint64_t last_ckpt = crash ? (kill / interval) * interval : 0;

    // Warm-restart residency: what the feature cache held at the last
    // checkpoint, captured from a simulated prefix run. Runs before
    // the headline run, which resets every store, so the final
    // counters describe the uninterrupted run alone.
    std::vector<std::uint64_t> cache_lines;
    if (config.ckpt.warm_cache && last_ckpt > 0 && system.featureCache()) {
        system.runSamplingOnly(spec.sim_workers, last_ckpt);
        cache_lines = system.featureCache()->residentLineIds();
    }
    out.sim = system.runSamplingOnly(spec.sim_workers, total);

    SystemConfig ckpt_config = config;
    ckpt_config.ckpt.dir = spec.ckpt_dir;
    const gnn::ModelConfig mc = checkpointModelConfig(system);
    const std::vector<std::uint64_t> *lines =
        cache_lines.empty() ? nullptr : &cache_lines;

    // Phase A: the run that dies mid-batch, leaving manifests behind.
    CheckpointStats crash_stats;
    {
        GnnSystem crash_system(ckpt_config, system.workload());
        gnn::SageModel crash_model(mc);
        TrainRunOptions opts;
        opts.workers = spec.train_workers;
        opts.total_batches = total;
        opts.kill_batch = crash ? kill : 0;
        opts.cache_lines = lines;
        crash_stats =
            runCheckpointedTraining(crash_system, crash_model, opts).stats;
    }

    // Phase B: a fresh process restarts over the same directory,
    // restores the newest manifest, and trains to the end.
    GnnSystem resumed_system(ckpt_config, system.workload());
    gnn::SageModel resumed_model(mc);
    TrainRunOptions resume_opts;
    resume_opts.workers = spec.train_workers;
    resume_opts.total_batches = total;
    resume_opts.cache_lines = lines;
    const TrainRunResult resumed =
        runCheckpointedTraining(resumed_system, resumed_model, resume_opts);

    // Reference: the uninterrupted run (checkpointing inert on the
    // caller's system — its dir is empty).
    gnn::SageModel reference_model(mc);
    TrainRunOptions reference_opts;
    reference_opts.workers = spec.train_workers;
    reference_opts.total_batches = total;
    const TrainRunResult reference =
        runCheckpointedTraining(system, reference_model, reference_opts);

    out.resume_bit_identical =
        resumed_model.stateHash() == reference_model.stateHash() &&
        bitEqual(resumed.loss_sum, reference.loss_sum) &&
        resumed.sampled_edges == reference.sampled_edges;

    out.lost_work_batches = crash ? kill - last_ckpt : 0;
    if (crash) {
        sim::Tick redo = 0;
        if (out.lost_work_batches > 0) {
            const std::vector<std::uint64_t> *warm =
                resumed.warm_lines.empty() ? nullptr
                                           : &resumed.warm_lines;
            redo = resumed_system
                       .runSamplingResumed(spec.sim_workers,
                                           out.lost_work_batches, warm)
                       .makespan;
        }
        out.recovery_time_us = sim::toMicros(
            sim::transferTime(resumed.stats.bytes_read,
                              config.ckpt.read_gbps) +
            redo);
    }

    const std::uint64_t written =
        crash_stats.bytes_written + crash_stats.manifest_bytes;
    const double write_us =
        sim::toMicros(sim::transferTime(written, config.ckpt.write_gbps));
    const double makespan_us = sim::toMicros(out.sim.makespan);
    out.ckpt_overhead_frac =
        written ? write_us / (makespan_us + write_us) : 0.0;
    out.ckpt_bytes_kib = static_cast<double>(written) / 1024.0;
    const std::uint64_t chunk_refs =
        crash_stats.chunks_written + crash_stats.chunks_deduped;
    out.ckpt_dedup_frac =
        chunk_refs ? static_cast<double>(crash_stats.chunks_deduped) /
                         static_cast<double>(chunk_refs)
                   : 0.0;
    out.checkpoints = crash_stats.saves;
    return out;
}

std::vector<std::uint8_t>
saveServingAccounting(const ServingResult &result)
{
    sim::ByteWriter writer;
    writer.u32(kCheckpointFormatVersion);
    writer.u64(result.requests);
    writer.u64(result.completed_ok);
    writer.u64(result.shed_error);
    writer.u64(result.shed_timeout);
    writer.u64(result.shed_admission);
    writer.u64(result.io_retries);
    writer.u64(result.io_timeouts);
    writer.u64(result.io_abandoned);
    writer.u64(result.tenants.size());
    for (const TenantServingResult &tenant : result.tenants) {
        writer.str(tenant.name);
        writer.u64(tenant.slo);
        writer.u64(tenant.requests);
        writer.u64(tenant.completed_ok);
        writer.u64(tenant.slo_met);
        writer.u64(tenant.shed);
    }

    std::vector<std::uint8_t> body = writer.take();
    const std::uint32_t crc = sim::crc32(body);
    sim::ByteWriter sealed;
    sealed.bytes(body.data(), body.size());
    sealed.u32(crc);
    return sealed.take();
}

void
mergeServingAccounting(const std::vector<std::uint8_t> &saved,
                       ServingResult &into)
{
    if (saved.size() < 4)
        throw sim::SerializeError("serving accounting blob too short");
    const std::size_t body_size = saved.size() - 4;
    sim::ByteReader trailer(saved.data() + body_size, 4);
    if (trailer.u32() != sim::crc32(saved.data(), body_size))
        throw sim::SerializeError("serving accounting CRC mismatch");

    sim::ByteReader reader(saved.data(), body_size);
    const std::uint32_t version = reader.u32();
    if (version > kCheckpointFormatVersion)
        throw sim::SerializeError(
            "serving accounting has format version " +
            std::to_string(version) + "; this build reads up to " +
            std::to_string(kCheckpointFormatVersion));

    into.requests += reader.u64();
    into.completed_ok += reader.u64();
    into.shed_error += reader.u64();
    into.shed_timeout += reader.u64();
    into.shed_admission += reader.u64();
    into.io_retries += reader.u64();
    into.io_timeouts += reader.u64();
    into.io_abandoned += reader.u64();

    const std::uint64_t tenants = reader.u64();
    if (!into.tenants.empty() && into.tenants.size() != tenants)
        throw sim::SerializeError(
            "serving accounting tenant count mismatch: saved " +
            std::to_string(tenants) + ", live " +
            std::to_string(into.tenants.size()));
    const bool fill = into.tenants.empty();
    for (std::uint64_t i = 0; i < tenants; ++i) {
        TenantServingResult saved_tenant;
        saved_tenant.name = reader.str();
        saved_tenant.slo = reader.u64();
        saved_tenant.requests = reader.u64();
        saved_tenant.completed_ok = reader.u64();
        saved_tenant.slo_met = reader.u64();
        saved_tenant.shed = reader.u64();
        if (fill) {
            into.tenants.push_back(std::move(saved_tenant));
            continue;
        }
        TenantServingResult &live = into.tenants[i];
        if (live.name != saved_tenant.name)
            throw sim::SerializeError(
                "serving accounting tenant " + std::to_string(i) +
                " is '" + saved_tenant.name + "' on disk but '" +
                live.name + "' live");
        live.requests += saved_tenant.requests;
        live.completed_ok += saved_tenant.completed_ok;
        live.slo_met += saved_tenant.slo_met;
        live.shed += saved_tenant.shed;
    }
}

} // namespace smartsage::core
