#include "report.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace smartsage::core
{

TableReporter::TableReporter(std::string title,
                             std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns))
{
    SS_ASSERT(!columns_.empty(), "table needs columns");
}

void
TableReporter::addRow(std::vector<std::string> cells)
{
    SS_ASSERT(cells.size() == columns_.size(), "row width ",
              cells.size(), " != column count ", columns_.size());
    rows_.push_back(std::move(cells));
}

void
TableReporter::print(std::ostream &os) const
{
    std::vector<std::size_t> width(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        width[c] = columns_[c].size();
        for (const auto &row : rows_)
            width[c] = std::max(width[c], row[c].size());
    }

    os << "== " << title_ << " ==\n";
    auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c] + 2))
               << cells[c];
        }
        os << "\n";
    };
    line(columns_);
    std::size_t total = 0;
    for (auto w : width)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        line(row);
    os.flush();
}

std::string
fmt(double v, int prec)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
}

std::string
fmtX(double v, int prec)
{
    return fmt(v, prec) + "x";
}

std::string
fmtPct(double frac, int prec)
{
    return fmt(frac * 100.0, prec) + "%";
}

double
geomean(const std::vector<double> &values)
{
    SS_ASSERT(!values.empty(), "geomean of nothing");
    double acc = 0.0;
    for (double v : values) {
        SS_ASSERT(v > 0.0, "geomean needs positive values, got ", v);
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    SS_ASSERT(!values.empty(), "mean of nothing");
    double acc = 0.0;
    for (double v : values)
        acc += v;
    return acc / static_cast<double>(values.size());
}

} // namespace smartsage::core
