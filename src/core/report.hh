/**
 * @file
 * Plain-text table reporting for the experiment harnesses: every bench
 * binary prints the same rows/series the corresponding paper figure or
 * table shows.
 */

#ifndef SMARTSAGE_CORE_REPORT_HH
#define SMARTSAGE_CORE_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

namespace smartsage::core
{

/** Fixed-width text table. */
class TableReporter
{
  public:
    TableReporter(std::string title, std::vector<std::string> columns);

    /** Append one row; cell count must match the column count. */
    void addRow(std::vector<std::string> cells);

    /** Render with a title banner and aligned columns. */
    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format @p v with @p prec decimals. */
std::string fmt(double v, int prec = 2);

/** Format @p v as "N.NNx". */
std::string fmtX(double v, int prec = 2);

/** Format a percentage. */
std::string fmtPct(double frac, int prec = 1);

/** Geometric mean. @pre all values > 0 */
double geomean(const std::vector<double> &values);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

} // namespace smartsage::core

#endif // SMARTSAGE_CORE_REPORT_HH
