#include "knobs.hh"

#include <utility>

#include "backend.hh"

namespace smartsage::core
{

const std::vector<KnobNamespaceDoc> &
knobCatalog()
{
    static const std::vector<KnobNamespaceDoc> catalog = {
        {"ssd.", "SSD controller", "src/ssd/config.hh",
         {
             {"page_buffer_ways", "int", "16", ">= 1",
              "set associativity of the controller DRAM page buffer",
              8},
             {"embedded_cores", "int", "2", ">= 1",
              "firmware cores running the FTL and the ISP loop", 4},
             {"firmware_duty", "double", "0.30", "[0, 1]",
              "core-time fraction reserved by baseline FTL work", 0.5},
             {"isp_per_edge_ns", "double", "150", "> 0",
              "firmware cost to gather one sampled edge", 200},
             {"nvme_command_us", "double", "5", "> 0",
              "NVMe command handling (submit + completion doorbells)",
              3},
             {"pcie_gbps", "double", "3.2", "> 0",
              "PCIe link bandwidth to the host", 6.4},
         }},
        {"ssd.flash.", "NAND flash geometry", "src/flash/config.hh",
         {
             {"channels", "int", "8", ">= 1",
              "independent ONFI channels", 16},
             {"dies_per_channel", "int", "4", ">= 1",
              "dies (LUNs) per channel", 8},
             {"page_kib", "int", "16", ">= 1",
              "NAND page size in KiB", 8},
             {"read_latency_us", "double", "55", "> 0",
              "tR: cell array to die register", 70},
             {"channel_gbps", "double", "1.0", "> 0",
              "ONFI transfer rate per channel", 2},
         }},
        {"isp.", "In-storage sampling engine", "src/isp/isp_engine.hh",
         {
             {"coalesce_targets", "int", "1024", ">= 1",
              "targets batched into one NSconfig command", 512},
             {"host_submit_us", "double", "3", "> 0",
              "host cost to build and submit one NSconfig", 5},
         }},
        {"fpga.", "FPGA CSD engine", "src/isp/fpga_csd.hh",
         {
             {"p2p_gbps", "double", "3.0", "> 0",
              "SSD-to-FPGA bandwidth over the on-card switch", 6},
             {"queue_depth", "int", "64", ">= 1",
              "outstanding P2P transfers", 32},
             {"fpga_per_edge_ns", "double", "8", "> 0",
              "hardwired gather-unit cost per edge", 12},
             {"kernel_setup_us", "double", "40", "> 0",
              "per-batch kernel control overhead", 20},
         }},
        {"host.", "Host memory and I/O path", "src/host/config.hh",
         {
             {"llc_mib", "int", "16", ">= 1",
              "shared last-level cache capacity in MiB", 32},
             {"dram_peak_gbps", "double", "125", "> 0",
              "peak DRAM bandwidth", 100},
             {"memory_level_parallelism", "double", "3.0", ">= 1",
              "outstanding misses per sampling worker", 4},
             {"page_fault_cost_us", "double", "28", "> 0",
              "mmap fault + kernel traversal + page install", 20},
             {"direct_io_submit_us", "double", "8", "> 0",
              "O_DIRECT syscall + NVMe submit cost", 6},
             {"io_queue_depth", "int", "64", ">= 1",
              "host I/O channel service slots (serving sweeps this)",
              16},
             {"pmem_latency_ns", "double", "320", "> 0",
              "Optane PMEM random-load latency", 250},
             {"cpu_per_edge_ns", "double", "350", "> 0",
              "host CPU work per sampled edge", 300},
             {"feature_stream_gbps", "double", "25", "> 0",
              "feature-row streaming copy bandwidth", 20},
             {"host_gpu_gbps", "double", "12", "> 0",
              "effective host-to-GPU PCIe bandwidth", 16},
         }},
        {"fault.", "Fault-injection schedule", "src/sim/fault.hh",
         {
             {"seed", "int", "0xfa0175eed", "any",
              "fault-plan RNG seed (decoupled from workload seeds)",
              42},
             {"read_error_rate", "double", "0", "[0, 1]",
              "probability a host-I/O attempt fails transiently",
              0.05},
             {"slow_rate", "double", "0", "[0, 1]",
              "probability a host-I/O attempt runs slow", 0.05},
             {"slow_multiplier", "double", "8", ">= 1",
              "service-time multiplier of a slow attempt", 4},
             {"ecc_rate", "double", "0", "[0, 1]",
              "probability a flash sense needs an ECC retry", 0.02},
             {"ecc_retry_us", "double", "60", "> 0",
              "extra die occupancy per ECC retry", 80},
             {"shard_outage_rate", "double", "0", "[0, 1)",
              "fraction of each period a shard spends down", 0.1},
             {"outage_period_ms", "double", "50", "> 0",
              "shard outage window period", 100},
             {"degraded_penalty", "double", "4", ">= 1",
              "latency multiplier of reads routed around a down shard",
              2},
             {"kill_batch", "int", "0", ">= 0",
              "recovery harness: crash while this (0-based) training "
              "batch is in flight; 0 disables",
              3},
         }},
        {"retry.", "Retry and timeout policy", "src/sim/fault.hh",
         {
             {"max_attempts", "int", "3", ">= 1",
              "total service attempts (1 = no retries)", 4},
             {"backoff_base_us", "double", "100", "> 0",
              "backoff before the first retry (doubles per attempt)",
              50},
             {"backoff_cap_us", "double", "10000", ">= base",
              "exponential backoff ceiling", 5000},
             {"jitter", "double", "0.5", "[0, 1]",
              "uniform jitter fraction added to each backoff", 0.25},
             {"timeout_us", "double", "0", ">= 0",
              "end-to-end request deadline; 0 disables", 100000},
         }},
        {"ckpt.", "Checkpoint / suspend-resume policy",
         "src/core/checkpoint.hh",
         {
             {"interval_batches", "int", "0", ">= 0",
              "checkpoint every N trained batches; 0 disables", 2},
             {"warm_cache", "bool", "0", "0 or 1",
              "snapshot feature-cache residency for warm restarts", 1},
             {"keep_last", "int", "2", ">= 1",
              "manifests retained; older ones pruned, unreferenced "
              "chunks collected",
              3},
             {"chunk_kib", "int", "256", ">= 1",
              "content-addressed payload chunk size in KiB", 64},
             {"write_gbps", "double", "2.0", "> 0",
              "modeled checkpoint write bandwidth (overhead metric)",
              4},
             {"read_gbps", "double", "3.5", "> 0",
              "modeled checkpoint read bandwidth (recovery metric)", 2},
         }},
        {"kernel.", "GEMM/aggregate microkernel dispatch",
         "src/gnn/tensor.hh",
         {
             {"dispatch", "enum", "0 (auto)",
              "0 = auto, 1 = scalar, 2 = avx2",
              "microkernel flavor; auto probes cpuid once and picks "
              "the fastest available, avx2 silently degrades to "
              "scalar when the ISA is absent",
              1},
             {"gemm_threads", "int", "1", "[1, 64]",
              "row-block GEMM worker threads; fixed block size keeps "
              "outputs bit-identical at any count",
              2},
         }},
        {"sched.", "Host I/O channel dispatch", "src/sim/io.hh",
         {
             {"policy", "enum", "0 (fifo)",
              "0 = fifo, 1 = priority, 2 = edf",
              "queue dispatch order; fifo reproduces the historical "
              "arrival-order channel",
              2},
         }},
        {"admit.", "Host I/O admission control", "src/sim/io.hh",
         {
             {"max_queue", "int", "0", ">= 0",
              "bound on the channel wait queue; 0 disables", 64},
             {"slo_aware", "bool", "0", "0 or 1",
              "shed tagged requests whose deadline the backlog "
              "estimate already misses",
              1},
         }},
        {"tenant.", "Serving tenant classes", "src/core/tenant.hh",
         {
             {"count", "int", "0", ">= 0",
              "number of tenant classes (0 = classic single stream)",
              2},
             {"<i>.clients", "int", "0", ">= 0",
              "closed-loop client population; 0 = open loop", 8},
             {"<i>.think_us", "double", "500", ">= 0",
              "mean exponential think time of a closed-loop client",
              300},
             {"<i>.qps", "double", "10000", "> 0 (open loop)",
              "offered arrival rate of an open-loop class", 5000},
             {"<i>.shape", "enum", "0 (poisson)",
              "0 = poisson, 1 = fixed, 2 = diurnal, 3 = bursty, "
              "4 = flash-crowd",
              "arrival process of an open-loop class", 3},
             {"<i>.fanout", "int", "10", ">= 1",
              "neighbor entries gathered per request", 4},
             {"<i>.slo_us", "double", "0", ">= 0",
              "per-request latency SLO; 0 = none", 2000},
             {"<i>.priority", "int", "0", "any",
              "dispatch priority under sched.policy = 1", 10},
             {"<i>.requests", "int", "0", ">= 0",
              "request budget; 0 = even share of the run total", 256},
             {"<i>.shape_period_us", "double", "5000", "> 0 (shaped)",
              "period of the diurnal/bursty/flash-crowd modulation",
              2000},
             {"<i>.shape_mag", "double", "4", ">= 1",
              "peak-to-baseline rate multiplier of a shaped stream",
              3},
         }},
        {"cache.", "Feature cache (registry-routed)",
         "src/host/feature_cache.cc",
         {
             {"policy", "enum", "0 (lru)",
              "0 = lru, 1 = clock, 2 = lfu-lite, 3 = degree-pin",
              "replacement policy of the feature-cache decorator", 1},
             {"capacity_fraction", "double", "0", "[0, 1]",
              "cache capacity as a fraction of the edge file; 0 "
              "builds no cache",
              0.1},
             {"line_kib", "int", "4", ">= 1",
              "fill/lookup line granularity in KiB", 8},
             {"hit_ns", "double", "150", "> 0",
              "host DRAM hit latency of a cached line", 200},
             {"mshr.enabled", "bool", "1", "0/1",
              "per-line MSHRs + gather coalescing on the miss path; "
              "0 restores the pre-MSHR forward-everything behavior",
              1},
             {"mshr.entries", "int", "64", "[1, 65536]",
              "max distinct lines in flight; further misses park "
              "FIFO until a fill frees an entry",
              32},
             {"mshr.waiters", "int", "16", "[1, 65536]",
              "max requests coalesced onto one in-flight line", 8},
             {"prefetch.enabled", "bool", "0", "0/1 (needs mshr)",
              "hoard-style async prefetch of announced gather lists "
              "through low-priority fills",
              1},
             {"prefetch.lookahead", "int", "1", "[1, 64]",
              "serving requests announced ahead of demand on the "
              "classic open-loop path",
              2},
             {"prefetch.max_lines", "int", "256", "[1, 1048576]",
              "line budget of one announced batch; excess lines shed",
              64},
         }},
        {"multi-ssd.", "Sharded-SSD backend (registry-routed)",
         "src/ssd/sharded_ssd.cc",
         {
             {"shards", "int", "4", ">= 1",
              "independent SSD timelines striped RAID-0", 8},
             {"stripe_kib", "int", "64", ">= 1",
              "stripe unit in KiB", 128},
         }},
        {"tiered.", "Tiered-hybrid backend (registry-routed)",
         "src/host/tiered_store.cc",
         {
             {"hot_line_kib", "int", "64", ">= 1",
              "hot-tier line granularity in KiB", 32},
             {"hot_hit_ns", "double", "150", "> 0",
              "hot-tier DRAM hit latency", 200},
         }},
        {"part.", "Partitioned scale-out backend (registry-routed)",
         "src/host/partitioned_store.cc",
         {
             {"nodes", "int", "2", "[1, 64]",
              "simulated host+SSD nodes the edge list is cut across",
              4},
             {"strategy", "enum", "0 (hash)", "0 = hash, 1 = degree",
              "edge-cut assignment: node-id hash or degree-balanced "
              "greedy",
              1},
         }},
        {"net.", "Inter-node network channel (partitioned backend)",
         "src/sim/net.hh",
         {
             {"bandwidth_gbps", "double", "25.0", "> 0",
              "link bandwidth per node pair", 100},
             {"latency_us", "double", "2.0", ">= 0",
              "one-way message latency", 5},
             {"queue_depth", "int", "16", ">= 1",
              "in-flight transfers per link before queueing", 32},
         }},
        {"", "Top-level system", "src/core/system.hh",
         {
             {"page_cache_fraction", "double", "0.45", "[0, 1]",
              "OS page cache sized as a fraction of the edge file",
              0.3},
             {"scratchpad_fraction", "double", "0.45", "[0, 1]",
              "direct-I/O scratchpad sized the same way", 0.3},
             {"ssd_buffer_fraction", "double", "0.02", "[0, 2]",
              "SSD-internal page buffer sized the same way", 0.15},
             {"hidden_dim", "int", "64", ">= 1",
              "GNN hidden dimension", 128},
             {"use_saint", "bool", "0", "0 or 1",
              "GraphSAINT random-walk sampling instead of GraphSAGE",
              1},
             {"saint_walk_length", "int", "2", ">= 1",
              "SAINT random-walk length", 3},
             {"else_per_batch_us", "double", "0", ">= 0",
              "per-batch non-sampling pipeline overhead", 50},
         }},
    };
    return catalog;
}

void
writeKnobsDoc(std::ostream &os)
{
    os << "# Configuration knobs\n"
       << "\n"
       << "<!-- Generated by `design_space --knobs-doc`; do not edit "
          "by hand.\n"
       << "     CI regenerates this file and fails on drift. -->\n"
       << "\n"
       << "Every scenario override (`design_space` families, "
          "`--family` grids,\n"
       << "tests) is a `key = value` pair dispatched on the key's "
          "namespace\n"
       << "prefix by `core::applyKnob` (src/core/scenario.cc). Values "
          "are\n"
       << "doubles on the wire; `int`/`bool`/`enum` knobs reject or "
          "truncate\n"
       << "non-integral values as documented in the owning header. "
          "`<i>` is a\n"
       << "tenant-class index (`tenant.0.qps`, `tenant.1.slo_us`, "
          "...).\n";

    for (const KnobNamespaceDoc &ns : knobCatalog()) {
        os << "\n## "
           << (ns.prefix.empty() ? std::string("Top-level keys")
                                 : "`" + ns.prefix + "*`")
           << " — " << ns.title << "\n"
           << "\n"
           << "Interpreted by `" << ns.owner << "`.\n"
           << "\n"
           << "| knob | type | default | range | meaning |\n"
           << "|---|---|---|---|---|\n";
        for (const KnobDoc &k : ns.knobs)
            os << "| `" << ns.prefix << k.key << "` | " << k.type
               << " | " << k.def << " | " << k.range << " | " << k.desc
               << " |\n";
    }

    // Registry-claimed namespaces: keys a backend interprets privately
    // at build time (core/backend.hh knob_namespaces). The builtin
    // namespaces are excluded; what remains maps each backend-routed
    // namespace above to the backends that accept it.
    std::vector<std::pair<std::string, std::string>> claimed;
    for (const StorageBackend *backend :
         BackendRegistry::instance().all()) {
        for (const std::string &ns : backend->caps().knob_namespaces) {
            if (ns == "ssd." || ns == "isp." || ns == "fpga." ||
                ns == "host.")
                continue;
            bool found = false;
            for (auto &entry : claimed) {
                if (entry.first == ns) {
                    entry.second += ", `" + backend->id() + "`";
                    found = true;
                }
            }
            if (!found)
                claimed.emplace_back(ns, "`" + backend->id() + "`");
        }
    }
    os << "\n## Namespace-to-backend routing\n"
       << "\n"
       << "Keys in a namespace a registered backend claims are stored\n"
       << "verbatim in `SystemConfig::backend_knobs` for that backend "
          "to\n"
       << "interpret at build time; a knob in a claimed namespace is "
          "only\n"
       << "meaningful when one of the claiming backends is selected.\n"
       << "\n"
       << "| namespace | claimed by |\n"
       << "|---|---|\n";
    for (const auto &entry : claimed)
        os << "| `" << entry.first << "*` | " << entry.second << " |\n";
}

} // namespace smartsage::core
