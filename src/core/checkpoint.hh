/**
 * @file
 * Versioned, schema-stamped checkpoint store.
 *
 * A checkpoint is a Snapshot — named byte sections produced by the
 * layers that own the state (gnn model tensors, pipeline cursor, RNG
 * fork position, resident cache lines) — persisted as one manifest
 * plus content-addressed payload chunks:
 *
 *   <dir>/chunks/<fnv1a64-hex>.bin   raw section bytes, split at
 *                                    chunk_bytes boundaries
 *   <dir>/manifest-<step>.ckpt      magic, format version, section
 *                                    table (name, size, chunk list
 *                                    with per-chunk CRC-32), trailing
 *                                    manifest CRC-32
 *
 * Chunks are addressed by the FNV-1a hash of their content, so a chunk
 * whose bytes did not change between checkpoints is written once and
 * referenced by every manifest — incremental checkpoints only pay for
 * dirty chunks. Loads verify the manifest CRC, the format version
 * (future versions are rejected, older readers never misparse newer
 * payloads), and every chunk CRC before reassembling sections.
 * keep_last prunes old manifests and garbage-collects chunks no
 * surviving manifest references. All failures surface as
 * sim::SerializeError, never a crash.
 *
 * This header is deliberately byte-level only (no gnn/pipeline types);
 * core/recovery.hh owns the glue that fills and applies Snapshots.
 */

#ifndef SMARTSAGE_CORE_CHECKPOINT_HH
#define SMARTSAGE_CORE_CHECKPOINT_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/serialize.hh"
#include "sim/types.hh"

namespace smartsage::core
{

/** On-disk format version this build writes and the newest it reads. */
constexpr std::uint32_t kCheckpointFormatVersion = 1;

/**
 * Checkpoint policy knobs (`ckpt.*` namespace). interval_batches == 0
 * disables checkpointing entirely; dir is a path, not a knob (knob
 * values are doubles), and is filled in by the harness per cell.
 */
struct CheckpointConfig
{
    /** Checkpoint every N trained batches; 0 disables. */
    std::uint64_t interval_batches = 0;
    /** Manifest + chunk directory; set by CLI/harness, not a knob. */
    std::string dir;
    /** Snapshot resident feature-cache lines for warm restart. */
    bool warm_cache = false;
    /** Manifests retained after a save; older ones are pruned. */
    std::uint64_t keep_last = 2;
    /** Payload chunk size in KiB (content-address granularity). */
    std::uint64_t chunk_kib = 256;
    /** Modeled checkpoint write bandwidth, GB/s (overhead metric). */
    double write_gbps = 2.0;
    /** Modeled checkpoint read bandwidth, GB/s (recovery metric). */
    double read_gbps = 3.5;

    bool enabled() const { return interval_batches != 0 && !dir.empty(); }
};

/**
 * Apply one `ckpt.`-namespace knob (namespace already stripped).
 * @return false if the key is unknown
 */
bool applyKnob(CheckpointConfig &config, std::string_view key,
               double value);

/** Fatal on impossible checkpoint values (zero chunk size, ...). */
void validate(const CheckpointConfig &config);

/**
 * One checkpoint's content: the training cursor plus named byte
 * sections, each serialized by the layer that owns the state.
 */
struct Snapshot
{
    /** Batches completed when the snapshot was taken. */
    std::uint64_t step = 0;
    std::map<std::string, std::vector<std::uint8_t>> sections;
};

/** Monotonic counters over one manager's lifetime. */
struct CheckpointStats
{
    std::uint64_t saves = 0;
    std::uint64_t loads = 0;
    std::uint64_t chunks_written = 0;
    std::uint64_t chunks_deduped = 0; //!< content already on disk
    std::uint64_t bytes_written = 0;  //!< chunk payload actually written
    std::uint64_t bytes_read = 0;     //!< chunk payload read by loads
    std::uint64_t manifest_bytes = 0;
};

/**
 * Chunk store + manifest reader/writer rooted at config.dir.
 *
 * Not thread-safe; the experiment runner gives each cell its own
 * directory and manager.
 */
class CheckpointManager
{
  public:
    explicit CheckpointManager(const CheckpointConfig &config);

    /** Persist @p snapshot as manifest-<step>, then prune/GC. */
    void save(const Snapshot &snapshot);

    /** Steps with a manifest on disk, ascending. */
    std::vector<std::uint64_t> steps() const;

    /** Newest checkpointed step, if any. */
    std::optional<std::uint64_t> latestStep() const;

    /**
     * Reassemble the snapshot saved at @p step, CRC-checking the
     * manifest and every chunk. Throws sim::SerializeError on any
     * corruption, truncation, or future format version.
     */
    Snapshot load(std::uint64_t step);

    const CheckpointStats &stats() const { return stats_; }
    const CheckpointConfig &config() const { return config_; }

  private:
    std::string manifestPath(std::uint64_t step) const;
    std::string chunkPath(std::uint64_t hash) const;
    void prune();

    CheckpointConfig config_;
    CheckpointStats stats_;
};

/** Decoded manifest, exposed for the ckpt_tool inspector. */
struct ManifestChunkInfo
{
    std::uint64_t hash = 0;
    std::uint64_t size = 0;
    std::uint32_t crc = 0;
};

struct ManifestSectionInfo
{
    std::string name;
    std::uint64_t total_bytes = 0;
    std::vector<ManifestChunkInfo> chunks;
};

struct ManifestInfo
{
    std::uint32_t format_version = 0;
    std::uint64_t step = 0;
    std::vector<ManifestSectionInfo> sections;
};

/**
 * Parse and CRC-check one manifest file. Throws sim::SerializeError on
 * corruption or a future format version.
 */
ManifestInfo readManifest(const std::string &path);

} // namespace smartsage::core

#endif // SMARTSAGE_CORE_CHECKPOINT_HH
