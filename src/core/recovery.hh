/**
 * @file
 * Suspend/resume glue over the checkpoint store (core/checkpoint.hh).
 *
 * runCheckpointedTraining drives the real functional training loop
 * under a checkpoint policy: it resumes from the newest manifest in
 * the configured directory (verifying the config fingerprint and the
 * RNG fork position), trains forward saving a snapshot every
 * interval_batches, and can "crash" at a scheduled batch — modeling a
 * process kill while that batch is in flight. Because batch i is
 * always drawn from fork(i) of the pipeline seed, a resumed run
 * regenerates exactly the batches an uninterrupted run would have
 * seen, and the trained model is bit-identical at any worker count.
 *
 * runRecoveryCell wraps that loop into one recovery-space experiment
 * cell: crash run -> restart run -> uninterrupted reference, plus the
 * modeled (simulated-time, wall-clock-free) recovery metrics that land
 * in BENCH_recovery.json.
 */

#ifndef SMARTSAGE_CORE_RECOVERY_HH
#define SMARTSAGE_CORE_RECOVERY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "checkpoint.hh"
#include "serving.hh"
#include "system.hh"

namespace smartsage::core
{

/** Parameters of one checkpointed functional training run. */
struct TrainRunOptions
{
    /** Sampler host threads (results are worker-count independent). */
    unsigned workers = 1;
    /** Global batch count of the full (uninterrupted) run. */
    std::size_t total_batches = 8;
    /**
     * Simulated crash point: the process dies while batch kill_batch
     * (0-based) is in flight, so batches [0, kill_batch) completed and
     * every checkpoint due by then is on disk. 0 disables the kill.
     */
    std::uint64_t kill_batch = 0;
    /**
     * Resident feature-cache line ids to snapshot into the "cache"
     * section for warm restarts; null skips the section.
     */
    const std::vector<std::uint64_t> *cache_lines = nullptr;
};

/** Outcome of one checkpointed functional training run. */
struct TrainRunResult
{
    bool resumed = false;          //!< restored from a manifest
    std::uint64_t start_batch = 0; //!< cursor the run began at
    std::uint64_t end_batch = 0;   //!< cursor after the run
    /** Cumulative training loss over batches [0, end_batch), including
     *  the restored prefix — bit-comparable across runs. */
    double loss_sum = 0;
    /** Cumulative sampled edges over the same range. */
    std::uint64_t sampled_edges = 0;
    /** Warm-restart cache lines restored from the snapshot. */
    std::vector<std::uint64_t> warm_lines;
    /** Checkpoint-store counters of this run's manager. */
    CheckpointStats stats;
};

/**
 * The model shape a training checkpoint of @p system describes:
 * feature/class dims from the workload, hidden/depth from the config,
 * seed from the pipeline seed. Every phase of a recovery cell builds
 * its model from this one config, so fingerprints line up.
 */
gnn::ModelConfig checkpointModelConfig(const GnnSystem &system);

/**
 * Train @p model for batches [resume_point, stop) of an
 * @p options.total_batches run over @p system's sampler, saving a
 * snapshot (model + trainer cursor + RNG fork position + optional
 * cache residency) every config.ckpt.interval_batches trained batches.
 * When config.ckpt is enabled and its directory holds a manifest, the
 * run first restores the newest snapshot (throwing sim::SerializeError
 * on corruption, a future format version, or a config-fingerprint /
 * RNG-position mismatch). A disabled checkpoint config degrades to a
 * plain uninterrupted training run — the bit-identity reference.
 */
TrainRunResult runCheckpointedTraining(GnnSystem &system,
                                       gnn::SageModel &model,
                                       const TrainRunOptions &options);

/** Per-cell inputs of one recovery-space experiment. */
struct RecoveryRunSpec
{
    /** Simulated producer timelines (cell.sim_workers). */
    unsigned sim_workers = 4;
    /** Host threads of the functional training phases. */
    unsigned train_workers = 4;
    /** Batches of the uninterrupted run. */
    std::size_t num_batches = 8;
    /** Per-cell checkpoint scratch directory (cleared on entry). */
    std::string ckpt_dir;
};

/** Modeled outcome of one recovery-space cell. */
struct RecoveryCellResult
{
    /** Uninterrupted simulated sampling run (headline timing). */
    GnnSystem::SamplingResult sim;
    /** Modeled restart cost: snapshot read time plus the simulated
     *  makespan of re-producing the lost batches. */
    double recovery_time_us = 0;
    /** Batches trained after the last checkpoint and lost to the
     *  crash: kill_batch - floor(kill_batch / interval) * interval. */
    std::uint64_t lost_work_batches = 0;
    /** Modeled checkpoint write time over the extended run:
     *  write / (sim_makespan + write). */
    double ckpt_overhead_frac = 0;
    double ckpt_bytes_kib = 0;  //!< chunk + manifest bytes written
    double ckpt_dedup_frac = 0; //!< chunks shared with prior manifests
    std::uint64_t checkpoints = 0; //!< manifests written by the crash run
    /** Resumed run ends bit-identical (model hash, loss bits, edge
     *  count) to the uninterrupted reference. */
    bool resume_bit_identical = false;
};

/**
 * Execute one recovery-space cell over @p system (built with an inert
 * checkpoint dir): capture warm-cache residency, run the uninterrupted
 * simulated baseline, crash a checkpointed training run at
 * config.fault.kill_batch, restart it from the newest manifest, and
 * compare against an uninterrupted reference. All reported times are
 * modeled from simulated makespans and configured checkpoint
 * bandwidths — never wall clock — so the artifact is bit-reproducible.
 */
RecoveryCellResult runRecoveryCell(GnnSystem &system,
                                   const RecoveryRunSpec &spec);

/**
 * Serialize the closing counters of @p result — totals plus per-tenant
 * accounting — as a crash-survivable byte blob (CRC-sealed like every
 * other serialized payload in the checkpoint subsystem).
 */
std::vector<std::uint8_t> saveServingAccounting(const ServingResult &result);

/**
 * Merge accounting saved by saveServingAccounting into @p into,
 * summing request/completion/shed counters (latency histograms are not
 * mergeable and stay as @p into measured them). Tenant rows must match
 * by position and name. Throws sim::SerializeError on corrupt bytes or
 * a tenant-set mismatch. Each blob must be merged exactly once —
 * counters are sums, so double application double-counts.
 */
void mergeServingAccounting(const std::vector<std::uint8_t> &saved,
                            ServingResult &into);

} // namespace smartsage::core

#endif // SMARTSAGE_CORE_RECOVERY_HH
