/**
 * @file
 * Generated-docs layer: renders docs/ARCHITECTURE.md and
 * docs/BENCHES.md from the live registries (BackendRegistry, the
 * scenario catalog) plus the declarative tables below, the same way
 * docs/KNOBS.md is rendered from the knob catalog (knobs.hh). All
 * three are drift-gated in CI: the workflow regenerates them and
 * fails on `git diff`, so a new backend, scenario family, channel, or
 * gated metric that forgets the docs fails the job instead of rotting
 * silently.
 */

#ifndef SMARTSAGE_CORE_DOCGEN_HH
#define SMARTSAGE_CORE_DOCGEN_HH

#include <ostream>
#include <string>

namespace smartsage::core
{

/**
 * Render docs/ARCHITECTURE.md: the module map, the registered-backend
 * table (BackendRegistry::all()), the service-station/channel
 * inventory, the scenario-family catalog, and the ctest label
 * taxonomy. Deterministic for a given build.
 */
void writeArchDoc(std::ostream &os);

/**
 * Render docs/BENCHES.md: every BENCH_*.json artifact with its
 * producing command, bench id, schema version, and contributing
 * scenario families, plus the gated-metric table parsed from
 * @p compare_script_path (ci/compare_bench.py's GATED_METRICS — the
 * single declarative source of which metrics gate and in which
 * direction). Fatal if the script cannot be read or the table is not
 * found, so the doc can never silently go stale against the gate.
 */
void writeBenchesDoc(std::ostream &os,
                     const std::string &compare_script_path);

} // namespace smartsage::core

#endif // SMARTSAGE_CORE_DOCGEN_HH
