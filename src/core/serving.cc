#include "serving.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "host/io_path.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace smartsage::core
{

namespace
{

/** One pre-generated request: arrival tick plus gather addresses. */
struct ServingRequest
{
    sim::Tick arrival = 0;
    std::vector<std::uint64_t> addrs;
};

/**
 * Deterministically pick a node with at least one neighbor: bounded
 * rejection, then a forward scan so pathological graphs still
 * terminate.
 */
graph::LocalNodeId
pickServedNode(const graph::CsrGraph &graph, sim::Rng &rng)
{
    std::uint64_t n = graph.numNodes();
    for (int attempt = 0; attempt < 64; ++attempt) {
        auto node =
            static_cast<graph::LocalNodeId>(rng.nextBounded(n));
        if (graph.degree(node) > 0)
            return node;
    }
    auto node = static_cast<graph::LocalNodeId>(rng.nextBounded(n));
    for (std::uint64_t step = 0; step < n; ++step) {
        auto candidate = static_cast<graph::LocalNodeId>(
            (node + step) % n);
        if (graph.degree(candidate) > 0)
            return candidate;
    }
    SS_FATAL("serving workload needs a graph with at least one edge");
}

/**
 * Pre-generate the whole request stream. Request i draws from fork(i)
 * of the seed and arrivals accumulate in order, so the stream is a
 * pure function of (config, workload) — independent of event
 * interleaving and of which runner thread executes the cell.
 */
std::vector<ServingRequest>
generateRequests(const GnnSystem &system, const ServingConfig &config)
{
    const graph::CsrGraph &graph = system.workload().graph;
    const graph::EdgeLayout &layout = system.config().layout;
    sim::Rng master(config.seed);
    sim::Rng arrivals = master.fork(0);

    const double gap_ns = 1e9 / config.arrival_qps;
    double clock_ns = 0;

    std::vector<ServingRequest> requests(config.num_requests);
    for (std::size_t i = 0; i < config.num_requests; ++i) {
        ServingRequest &req = requests[i];
        if (i > 0) {
            // Open loop: the next arrival does not wait for anything.
            double gap = gap_ns;
            if (config.poisson)
                gap = -std::log1p(-arrivals.nextDouble()) * gap_ns;
            clock_ns += gap;
        }
        req.arrival = static_cast<sim::Tick>(clock_ns);

        sim::Rng rng = master.fork(i + 1);
        graph::LocalNodeId node = pickServedNode(graph, rng);
        std::uint64_t degree = graph.degree(node);
        sim::EdgeIndex row = graph.edgeOffset(node);
        req.addrs.reserve(config.fanout);
        for (unsigned k = 0; k < config.fanout; ++k)
            req.addrs.push_back(
                layout.addrOf(row + rng.nextBounded(degree)));
    }
    return requests;
}

} // namespace

ServingResult
runServingLoad(GnnSystem &system, const ServingConfig &config)
{
    SS_ASSERT(config.arrival_qps > 0, "arrival rate must be positive");
    SS_ASSERT(config.num_requests > 0 && config.fanout > 0,
              "degenerate serving run");

    host::EdgeStore *store = system.edgeStore();
    if (!store)
        SS_FATAL("backend '", system.config().resolvedBackend(),
                 "' has no host-side edge store; the serving harness "
                 "evaluates the host request path (pick a backend "
                 "whose caps list an edge store)");
    store->reset();

    std::vector<ServingRequest> requests =
        generateRequests(system, config);
    const unsigned entry_bytes = system.config().layout.entry_bytes;

    ServingResult result;
    result.offered_qps = config.arrival_qps;
    result.requests = requests.size();

    sim::EventQueue eq;
    sim::Tick last_completion = 0;
    for (const ServingRequest &req : requests) {
        eq.schedule(req.arrival, [&, &req = req] {
            store->submitGather(
                eq, req.addrs, entry_bytes,
                [&result, &last_completion,
                 arrival = req.arrival](sim::Tick finish,
                                        sim::IoStatus status) {
                    // Only answered requests enter the latency
                    // histogram — shed requests have no meaningful
                    // service latency, just a separate count.
                    if (status == sim::IoStatus::Ok) {
                        ++result.completed_ok;
                        result.latency_us.record(
                            sim::toMicros(finish - arrival));
                    } else if (status == sim::IoStatus::Timeout) {
                        ++result.shed_timeout;
                    } else {
                        ++result.shed_error;
                    }
                    last_completion =
                        std::max(last_completion, finish);
                });
        });
    }
    eq.run();

    SS_ASSERT(result.completed_ok + result.shed_timeout +
                      result.shed_error ==
                  requests.size(),
              "serving run dropped requests");
    result.makespan = last_completion - requests.front().arrival;
    result.achieved_qps =
        result.makespan
            ? static_cast<double>(result.requests) /
                  sim::toSeconds(result.makespan)
            : 0.0;
    result.goodput_qps =
        result.makespan
            ? static_cast<double>(result.completed_ok) /
                  sim::toSeconds(result.makespan)
            : 0.0;

    const sim::StorageChannel &channel = store->ioChannel();
    result.peak_outstanding = channel.peakOutstanding();
    // Mean over the requests that actually queued: averaging the zero
    // waits of straight-to-slot dispatches in would understate the
    // admission wait a queued request experiences.
    result.mean_queue_wait_us =
        channel.queuedCount()
            ? sim::toMicros(channel.totalQueueWait()) /
                  static_cast<double>(channel.queuedCount())
            : 0.0;
    result.io_retries = channel.retries();
    result.io_timeouts = channel.timeouts();
    result.io_abandoned = channel.abandoned();
    return result;
}

} // namespace smartsage::core
