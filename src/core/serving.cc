#include "serving.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "host/feature_cache.hh"
#include "host/io_path.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace smartsage::core
{

namespace
{

/** One pre-generated request: arrival tick plus gather addresses. */
struct ServingRequest
{
    sim::Tick arrival = 0;
    std::vector<std::uint64_t> addrs;
};

/**
 * Deterministically pick a node with at least one neighbor: bounded
 * rejection, then a forward scan so pathological graphs still
 * terminate.
 */
graph::LocalNodeId
pickServedNode(const graph::CsrGraph &graph, sim::Rng &rng)
{
    std::uint64_t n = graph.numNodes();
    for (int attempt = 0; attempt < 64; ++attempt) {
        auto node =
            static_cast<graph::LocalNodeId>(rng.nextBounded(n));
        if (graph.degree(node) > 0)
            return node;
    }
    auto node = static_cast<graph::LocalNodeId>(rng.nextBounded(n));
    for (std::uint64_t step = 0; step < n; ++step) {
        auto candidate = static_cast<graph::LocalNodeId>(
            (node + step) % n);
        if (graph.degree(candidate) > 0)
            return candidate;
    }
    SS_FATAL("serving workload needs a graph with at least one edge");
}

/**
 * Pre-generate the whole request stream. Request i draws from fork(i)
 * of the seed and arrivals accumulate in order, so the stream is a
 * pure function of (config, workload) — independent of event
 * interleaving and of which runner thread executes the cell.
 */
std::vector<ServingRequest>
generateRequests(const GnnSystem &system, const ServingConfig &config)
{
    const graph::CsrGraph &graph = system.workload().graph;
    const graph::EdgeLayout &layout = system.config().layout;
    sim::Rng master(config.seed);
    sim::Rng arrivals = master.fork(0);

    const double gap_ns = 1e9 / config.arrival_qps;
    double clock_ns = 0;

    std::vector<ServingRequest> requests(config.num_requests);
    for (std::size_t i = 0; i < config.num_requests; ++i) {
        ServingRequest &req = requests[i];
        if (i > 0) {
            // Open loop: the next arrival does not wait for anything.
            double gap = gap_ns;
            if (config.poisson)
                gap = -std::log1p(-arrivals.nextDouble()) * gap_ns;
            clock_ns += gap;
        }
        req.arrival = static_cast<sim::Tick>(clock_ns);

        sim::Rng rng = master.fork(i + 1);
        graph::LocalNodeId node = pickServedNode(graph, rng);
        std::uint64_t degree = graph.degree(node);
        sim::EdgeIndex row = graph.edgeOffset(node);
        req.addrs.reserve(config.fanout);
        for (unsigned k = 0; k < config.fanout; ++k)
            req.addrs.push_back(
                layout.addrOf(row + rng.nextBounded(degree)));
    }
    return requests;
}

/** Exponential draw with unit mean (inverse-CDF of the next double). */
double
expDraw(sim::Rng &rng)
{
    return -std::log1p(-rng.nextDouble());
}

/**
 * Pre-generate one open-loop tenant's arrival ticks. The shaped
 * streams modulate the instantaneous rate deterministically: the gap
 * after an arrival at simulated time `clock` is divided by the shape's
 * rate factor at that time, so bursts compress gaps and troughs
 * stretch them. All draws come from @p rng (the tenant's private
 * arrival fork), never from shared state.
 */
std::vector<sim::Tick>
generateShapedArrivals(const TenantClass &tenant, std::size_t count,
                       sim::Rng &rng)
{
    const double base_gap = 1e9 / tenant.arrival_qps;
    const double period = static_cast<double>(tenant.shape_period);
    double clock_ns = 0;

    // Bursty (MMPP) state: exponential dwell times with mean `period`,
    // toggling between the baseline and the burst rate.
    bool burst = false;
    double state_end = expDraw(rng) * period;

    std::vector<sim::Tick> arrivals(count);
    for (std::size_t i = 0; i < count; ++i) {
        if (i > 0) {
            double factor = 1.0;
            switch (tenant.shape) {
              case ArrivalShape::Fixed:
              case ArrivalShape::Poisson:
                break;
              case ArrivalShape::Diurnal:
                // Rate sweeps [qps/mag, qps*mag] once per period.
                factor = std::pow(tenant.shape_mag,
                                  std::sin(2.0 * M_PI * clock_ns /
                                           period));
                break;
              case ArrivalShape::Bursty:
                while (clock_ns >= state_end) {
                    burst = !burst;
                    state_end += expDraw(rng) * period;
                }
                factor = burst ? tenant.shape_mag : 1.0;
                break;
              case ArrivalShape::FlashCrowd:
                // Deterministic replay: a crowd arrives at `period`
                // and disperses half a period later.
                factor = (clock_ns >= period &&
                          clock_ns < period * 1.5)
                             ? tenant.shape_mag
                             : 1.0;
                break;
            }
            double gap = tenant.shape == ArrivalShape::Fixed
                             ? base_gap
                             : expDraw(rng) * base_gap;
            clock_ns += gap / factor;
        }
        arrivals[i] = static_cast<sim::Tick>(clock_ns);
    }
    return arrivals;
}

/** One pre-generated multi-tenant request. */
struct TenantRequest
{
    std::vector<std::uint64_t> addrs;
    sim::Tick think = 0; //!< closed loop: gap before this submission
};

/** Request budget of class @p t: its explicit count, or an even share
 *  of the run budget (at least one request). */
std::size_t
tenantBudget(const TenantClass &tenant, std::size_t num_requests,
             std::size_t num_tenants)
{
    if (tenant.requests > 0)
        return tenant.requests;
    return std::max<std::size_t>(1, num_requests / num_tenants);
}

/**
 * The multi-tenant front end. Open-loop classes replay pre-generated
 * shaped arrivals; closed-loop classes schedule request j + clients at
 * the completion of request j plus an exponential think time. Every
 * draw comes from forks keyed by (tenant, request), so the run is a
 * pure function of (config, workload).
 */
ServingResult
runTenantServingLoad(GnnSystem &system, const ServingConfig &config,
                     host::EdgeStore *store)
{
    const graph::CsrGraph &graph = system.workload().graph;
    const graph::EdgeLayout &layout = system.config().layout;
    const unsigned entry_bytes = layout.entry_bytes;
    const std::size_t num_tenants = config.tenants.size();
    sim::Rng master(config.seed);

    // ---- pre-generate every class's stream ----
    std::vector<std::vector<TenantRequest>> streams(num_tenants);
    std::vector<std::vector<sim::Tick>> open_arrivals(num_tenants);
    for (std::size_t t = 0; t < num_tenants; ++t) {
        const TenantClass &tenant = config.tenants[t];
        std::size_t budget =
            tenantBudget(tenant, config.num_requests, num_tenants);
        // Nested fork discipline: stream 0 of the tenant fork paces
        // arrivals, stream j + 1 is request j's private draws.
        sim::Rng tenant_master = master.fork(0x7e0000 + t);
        sim::Rng arrivals = tenant_master.fork(0);
        if (!tenant.closedLoop())
            open_arrivals[t] =
                generateShapedArrivals(tenant, budget, arrivals);

        streams[t].resize(budget);
        for (std::size_t j = 0; j < budget; ++j) {
            TenantRequest &req = streams[t][j];
            sim::Rng rng = tenant_master.fork(j + 1);
            // Draw order is fixed (think gap, then content) so the
            // stream is identical no matter when requests dispatch.
            if (tenant.closedLoop())
                req.think = static_cast<sim::Tick>(
                    expDraw(rng) * static_cast<double>(tenant.think));
            graph::LocalNodeId node = pickServedNode(graph, rng);
            std::uint64_t degree = graph.degree(node);
            sim::EdgeIndex row = graph.edgeOffset(node);
            req.addrs.reserve(tenant.fanout);
            for (unsigned k = 0; k < tenant.fanout; ++k)
                req.addrs.push_back(
                    layout.addrOf(row + rng.nextBounded(degree)));
        }
    }

    ServingResult result;
    result.tenants.resize(num_tenants);
    std::size_t total_requests = 0;
    for (std::size_t t = 0; t < num_tenants; ++t) {
        result.tenants[t].name = config.tenants[t].name;
        result.tenants[t].slo = config.tenants[t].slo;
        result.tenants[t].requests = streams[t].size();
        total_requests += streams[t].size();
    }
    result.requests = total_requests;
    result.offered_qps = config.arrival_qps;

    sim::EventQueue eq;
    sim::Tick first_submit = ~sim::Tick{0};
    sim::Tick last_completion = 0;
    std::uint64_t accounted = 0;

    // Submits request j of class t at eq.now(); the completion updates
    // the aggregate and per-class tallies, and for closed-loop classes
    // chains the client's next request.
    std::function<void(std::size_t, std::size_t)> submitRequest =
        [&](std::size_t t, std::size_t j) {
            const TenantClass &tenant = config.tenants[t];
            const TenantRequest &req = streams[t][j];
            sim::Tick arrival = eq.now();
            first_submit = std::min(first_submit, arrival);
            sim::DispatchTag tag{
                tenant.priority,
                tenant.slo ? arrival + tenant.slo : sim::Tick{0}};
            store->submitGather(
                eq, req.addrs, entry_bytes,
                [&, t, j, arrival](sim::Tick finish,
                                   sim::IoStatus status) {
                    const TenantClass &cls = config.tenants[t];
                    TenantServingResult &tr = result.tenants[t];
                    ++accounted;
                    if (status == sim::IoStatus::Ok) {
                        sim::Tick latency = finish - arrival;
                        ++result.completed_ok;
                        ++tr.completed_ok;
                        if (cls.slo == 0 || latency <= cls.slo)
                            ++tr.slo_met;
                        double us = sim::toMicros(latency);
                        result.latency_us.record(us);
                        tr.latency_us.record(us);
                    } else {
                        ++tr.shed;
                        if (status == sim::IoStatus::Timeout)
                            ++result.shed_timeout;
                        else if (status == sim::IoStatus::Shed)
                            ++result.shed_admission;
                        else
                            ++result.shed_error;
                    }
                    last_completion =
                        std::max(last_completion, finish);
                    // Closed loop: the same client asks again after
                    // thinking about the answer (answered or not).
                    if (cls.closedLoop() &&
                        j + cls.clients < streams[t].size()) {
                        std::size_t next = j + cls.clients;
                        eq.schedule(finish + streams[t][next].think,
                                    [&, t, next] {
                                        submitRequest(t, next);
                                    });
                    }
                },
                tag);
        };

    for (std::size_t t = 0; t < num_tenants; ++t) {
        const TenantClass &tenant = config.tenants[t];
        if (tenant.closedLoop()) {
            // First wave: one request per client, staggered by each
            // request's own think draw so clients do not arrive in
            // lockstep at tick zero.
            std::size_t wave =
                std::min<std::size_t>(tenant.clients, streams[t].size());
            for (std::size_t j = 0; j < wave; ++j)
                eq.schedule(streams[t][j].think,
                            [&, t, j] { submitRequest(t, j); });
        } else {
            for (std::size_t j = 0; j < streams[t].size(); ++j)
                eq.schedule(open_arrivals[t][j],
                            [&, t, j] { submitRequest(t, j); });
        }
    }
    eq.run();

    SS_ASSERT(accounted == total_requests,
              "multi-tenant serving run dropped requests (",
              accounted, " of ", total_requests, " accounted)");
    result.makespan = last_completion - first_submit;
    double seconds = sim::toSeconds(result.makespan);
    result.achieved_qps =
        seconds > 0 ? static_cast<double>(result.requests) / seconds
                    : 0.0;
    result.goodput_qps =
        seconds > 0 ? static_cast<double>(result.completed_ok) / seconds
                    : 0.0;
    for (TenantServingResult &tr : result.tenants)
        tr.goodput_qps =
            seconds > 0
                ? static_cast<double>(tr.completed_ok) / seconds
                : 0.0;

    const sim::StorageChannel &channel = store->ioChannel();
    result.peak_outstanding = channel.peakOutstanding();
    result.mean_queue_wait_us =
        channel.queuedCount()
            ? sim::toMicros(channel.totalQueueWait()) /
                  static_cast<double>(channel.queuedCount())
            : 0.0;
    result.io_retries = channel.retries();
    result.io_timeouts = channel.timeouts();
    result.io_abandoned = channel.abandoned();
    return result;
}

} // namespace

double
ServingResult::sloAttainment() const
{
    std::uint64_t offered = 0;
    std::uint64_t met = 0;
    for (const TenantServingResult &tr : tenants) {
        if (tr.slo == 0)
            continue;
        offered += tr.requests;
        met += tr.slo_met;
    }
    return offered ? static_cast<double>(met) /
                         static_cast<double>(offered)
                   : 1.0;
}

ServingResult
runServingLoad(GnnSystem &system, const ServingConfig &config)
{
    SS_ASSERT(config.arrival_qps > 0, "arrival rate must be positive");
    SS_ASSERT(config.num_requests > 0 && config.fanout > 0,
              "degenerate serving run");

    host::EdgeStore *store = system.edgeStore();
    if (!store)
        SS_FATAL("backend '", system.config().resolvedBackend(),
                 "' has no host-side edge store; the serving harness "
                 "evaluates the host request path (pick a backend "
                 "whose caps list an edge store)");
    store->reset();

    if (!config.tenants.empty())
        return runTenantServingLoad(system, config, store);

    std::vector<ServingRequest> requests =
        generateRequests(system, config);
    const unsigned entry_bytes = system.config().layout.entry_bytes;

    ServingResult result;
    result.offered_qps = config.arrival_qps;
    result.requests = requests.size();

    // Hoard lookahead: when the cache's prefetcher is on, the arrival
    // of request i announces request i + lookahead's gather list, so
    // its lines stream in as low-priority fills while earlier demand
    // is served. The first `lookahead` requests run cold. The
    // multi-tenant path stays demand-only: its per-tenant streams
    // interleave, so one stream's lookahead would mispredict the
    // device-level arrival order.
    host::FeatureCacheStore *cache = system.featureCache();
    const std::size_t lookahead =
        cache && cache->prefetchEnabled()
            ? cache->params().prefetch_lookahead
            : 0;

    sim::EventQueue eq;
    sim::Tick last_completion = 0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const ServingRequest &req = requests[i];
        eq.schedule(req.arrival, [&, &req = req, i] {
            if (lookahead && i + lookahead < requests.size())
                cache->announceGather(
                    eq, requests[i + lookahead].addrs, entry_bytes);
            store->submitGather(
                eq, req.addrs, entry_bytes,
                [&result, &last_completion,
                 arrival = req.arrival](sim::Tick finish,
                                        sim::IoStatus status) {
                    // Only answered requests enter the latency
                    // histogram — shed requests have no meaningful
                    // service latency, just a separate count.
                    if (status == sim::IoStatus::Ok) {
                        ++result.completed_ok;
                        result.latency_us.record(
                            sim::toMicros(finish - arrival));
                    } else if (status == sim::IoStatus::Timeout) {
                        ++result.shed_timeout;
                    } else {
                        ++result.shed_error;
                    }
                    last_completion =
                        std::max(last_completion, finish);
                });
        });
    }
    eq.run();

    SS_ASSERT(result.completed_ok + result.shed_timeout +
                      result.shed_error ==
                  requests.size(),
              "serving run dropped requests");
    result.makespan = last_completion - requests.front().arrival;
    result.achieved_qps =
        result.makespan
            ? static_cast<double>(result.requests) /
                  sim::toSeconds(result.makespan)
            : 0.0;
    result.goodput_qps =
        result.makespan
            ? static_cast<double>(result.completed_ok) /
                  sim::toSeconds(result.makespan)
            : 0.0;

    const sim::StorageChannel &channel = store->ioChannel();
    result.peak_outstanding = channel.peakOutstanding();
    // Mean over the requests that actually queued: averaging the zero
    // waits of straight-to-slot dispatches in would understate the
    // admission wait a queued request experiences.
    result.mean_queue_wait_us =
        channel.queuedCount()
            ? sim::toMicros(channel.totalQueueWait()) /
                  static_cast<double>(channel.queuedCount())
            : 0.0;
    result.io_retries = channel.retries();
    result.io_timeouts = channel.timeouts();
    result.io_abandoned = channel.abandoned();
    return result;
}

} // namespace smartsage::core
