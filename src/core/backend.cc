#include "backend.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "sim/logging.hh"
#include "ssd/ssd_device.hh"

namespace smartsage::core
{

const std::string &
edgeStoreKindName(EdgeStoreKind kind)
{
    static const std::array<std::string, 8> names = {
        "none", "host-dram", "os-page-cache", "direct-io",
        "pmem", "sharded",   "tiered",        "partitioned",
    };
    auto idx = static_cast<std::size_t>(kind);
    SS_ASSERT(idx < names.size(), "bad edge-store kind ", idx);
    return names[idx];
}

BackendRegistry &
BackendRegistry::instance()
{
    static BackendRegistry registry;
    return registry;
}

void
BackendRegistry::add(std::unique_ptr<StorageBackend> backend)
{
    SS_ASSERT(backend, "null backend registration");
    const std::string &id = backend->id();
    if (backends_.count(id))
        SS_FATAL("duplicate storage backend registration for id '", id,
                 "'");
    backends_.emplace(id, std::move(backend));
}

const StorageBackend *
BackendRegistry::find(const std::string &id) const
{
    auto it = backends_.find(id);
    return it == backends_.end() ? nullptr : it->second.get();
}

const StorageBackend &
BackendRegistry::get(const std::string &id) const
{
    const StorageBackend *backend = find(id);
    if (!backend)
        SS_FATAL("unknown storage backend '", id,
                 "'; registered backends: ", idList());
    return *backend;
}

std::vector<const StorageBackend *>
BackendRegistry::all() const
{
    std::vector<const StorageBackend *> out;
    out.reserve(backends_.size());
    for (const auto &[id, backend] : backends_)
        out.push_back(backend.get());
    return out; // std::map iteration: already sorted by id
}

std::vector<std::string>
BackendRegistry::ids() const
{
    std::vector<std::string> out;
    out.reserve(backends_.size());
    for (const auto &[id, backend] : backends_)
        out.push_back(id);
    return out;
}

std::string
BackendRegistry::idList() const
{
    std::string out;
    for (const auto &[id, backend] : backends_) {
        if (!out.empty())
            out += ", ";
        out += id;
    }
    return out;
}

const std::string &
backendDisplayName(const std::string &id)
{
    return BackendRegistry::instance().get(id).displayName();
}

void
addSsdMetrics(const ssd::SsdDevice *ssd, const MetricSink &add)
{
    if (!ssd)
        return;
    auto *dev = const_cast<ssd::SsdDevice *>(ssd);
    add("ssd_buffer_hit_frac", dev->pageBuffer().hitRate());
    add("flash_pages_read",
        static_cast<double>(dev->flashArray().pagesRead()));
}

void
validateBackendKnobs(const SystemConfig &config, std::string_view ns,
                     std::initializer_list<std::string_view> known)
{
    for (const auto &[key, value] : config.backend_knobs) {
        if (key.rfind(ns, 0) != 0)
            continue;
        if (std::find(known.begin(), known.end(), key) == known.end())
            SS_FATAL("unknown '", ns, "' knob '", key,
                     "' (the backend owning this namespace does not "
                     "read it)");
    }
}

std::uint64_t
requireIntegerKnob(const std::string &key, double value)
{
    if (value != std::floor(value))
        SS_FATAL(key, " must be a whole number, got ", value);
    return static_cast<std::uint64_t>(value);
}

void
addSsdStats(ssd::SsdDevice *ssd, const StatSink &add)
{
    if (!ssd)
        return;
    add("ssd.host_reads", static_cast<double>(ssd->hostReads()),
        "block read commands served");
    add("ssd.bytes_to_host", static_cast<double>(ssd->bytesToHost()),
        "bytes shipped over PCIe");
    add("ssd.page_buffer.hit_rate", ssd->pageBuffer().hitRate(),
        "controller DRAM buffer hit rate");
    add("ssd.flash.pages_read",
        static_cast<double>(ssd->flashArray().pagesRead()),
        "NAND pages sensed");
    // Gated so fault-free stats documents keep their pre-fault rows.
    if (ssd->config().flash.fault.injectsEcc())
        add("ssd.flash.ecc_retries",
            static_cast<double>(ssd->eccRetries()),
            "pages re-sensed after an ECC failure");
    add("ssd.cores.busy_us", sim::toMicros(ssd->cores().busyTime()),
        "embedded core busy time");
}

} // namespace smartsage::core
