/**
 * @file
 * Host-side access paths to the neighbor edge list array.
 *
 * Every design point reduces to "where do edge-list bytes live and what
 * does one read cost": host DRAM (oracle), mmap through the OS page
 * cache (baseline SSD), direct I/O with a user scratchpad
 * (SmartSAGE(SW)), or Optane PMEM. The CPU-side sampler drivers are
 * written against this interface; the ISP path (src/isp) deliberately
 * is not — offloading whole-subgraph generation is the paper's point.
 */

#ifndef SMARTSAGE_HOST_IO_PATH_HH
#define SMARTSAGE_HOST_IO_PATH_HH

#include <cstdint>
#include <memory>
#include <string>

#include "config.hh"
#include "llc.hh"
#include "sim/set_assoc.hh"
#include "sim/types.hh"
#include "ssd/ssd_device.hh"

namespace smartsage::host
{

/** One way of reading bytes out of the edge-list file. */
class EdgeStore
{
  public:
    virtual ~EdgeStore() = default;

    /**
     * Read @p bytes at file offset @p addr, issued at @p arrival.
     * @return tick the data is usable by the CPU
     */
    virtual sim::Tick read(sim::Tick arrival, std::uint64_t addr,
                           std::uint64_t bytes) = 0;

    /**
     * Gather all of one node's sampled entries ( @p addrs byte
     * addresses, @p entry_bytes each), issued at @p arrival.
     *
     * The default walks the entries one blocking read at a time —
     * correct for byte-addressable stores and for mmap, whose kernel
     * faults are inherently per-page-blocking. The direct-I/O store
     * overrides this to coalesce one command per node, which is
     * precisely its latency edge (Section IV-C).
     *
     * @return tick the last entry is usable by the CPU
     */
    virtual sim::Tick readGather(sim::Tick arrival,
                                 const std::vector<std::uint64_t> &addrs,
                                 unsigned entry_bytes);

    /** Display name for reports. */
    virtual const std::string &name() const = 0;

    /** Fresh timeline + caches for a new experiment. */
    virtual void reset() = 0;
};

/** Oracle: the whole edge list resides in host DRAM behind the LLC. */
class DramEdgeStore : public EdgeStore
{
  public:
    explicit DramEdgeStore(const HostConfig &config);

    sim::Tick read(sim::Tick arrival, std::uint64_t addr,
                   std::uint64_t bytes) override;
    const std::string &name() const override { return name_; }
    void reset() override;

    LlcModel &llc() { return llc_; }

  private:
    std::string name_ = "DRAM";
    LlcModel llc_;
};

/**
 * Baseline SSD: memory-mapped file I/O through the OS page cache
 * (Section III-C). Page-cache hits cost a minor-touch latency; misses
 * pay the page-fault + kernel-stack traversal cost and a block read
 * from the SSD.
 */
class MmapEdgeStore : public EdgeStore
{
  public:
    MmapEdgeStore(const HostConfig &config, ssd::SsdDevice &ssd);

    sim::Tick read(sim::Tick arrival, std::uint64_t addr,
                   std::uint64_t bytes) override;
    const std::string &name() const override { return name_; }
    void reset() override;

    double pageCacheHitRate() const { return cache_.hitRate(); }
    std::uint64_t pageFaults() const { return faults_; }

  private:
    std::string name_ = "SSD (mmap)";
    HostConfig config_;
    ssd::SsdDevice &ssd_;
    sim::SetAssocLru cache_; //!< OS page cache, 4 KiB pages
    std::uint64_t faults_ = 0;
};

/**
 * SmartSAGE(SW): Linux direct I/O (O_DIRECT) into a user-space
 * scratchpad buffer, bypassing the page cache (Section IV-C).
 */
class DirectIoEdgeStore : public EdgeStore
{
  public:
    DirectIoEdgeStore(const HostConfig &config, ssd::SsdDevice &ssd);

    sim::Tick read(sim::Tick arrival, std::uint64_t addr,
                   std::uint64_t bytes) override;

    /** Coalesce one O_DIRECT command covering all missing blocks. */
    sim::Tick readGather(sim::Tick arrival,
                         const std::vector<std::uint64_t> &addrs,
                         unsigned entry_bytes) override;

    const std::string &name() const override { return name_; }
    void reset() override;

    double scratchpadHitRate() const { return cache_.hitRate(); }
    std::uint64_t submits() const { return submits_; }

  private:
    std::string name_ = "SmartSAGE (SW)";
    HostConfig config_;
    ssd::SsdDevice &ssd_;
    sim::SetAssocLru cache_; //!< user scratchpad, block-granular
    std::uint64_t submits_ = 0;
};

/** Optane DC PMEM on the memory bus: byte-granular, ~300 ns loads. */
class PmemEdgeStore : public EdgeStore
{
  public:
    explicit PmemEdgeStore(const HostConfig &config);

    sim::Tick read(sim::Tick arrival, std::uint64_t addr,
                   std::uint64_t bytes) override;
    const std::string &name() const override { return name_; }
    void reset() override;

  private:
    std::string name_ = "PMEM";
    HostConfig config_;
    std::uint64_t reads_ = 0;
};

} // namespace smartsage::host

#endif // SMARTSAGE_HOST_IO_PATH_HH
