/**
 * @file
 * Host-side access paths to the neighbor edge list array.
 *
 * Every design point reduces to "where do edge-list bytes live and what
 * does one read cost": host DRAM (oracle), mmap through the OS page
 * cache (baseline SSD), direct I/O with a user scratchpad
 * (SmartSAGE(SW)), or Optane PMEM. The CPU-side sampler drivers are
 * written against this interface; the ISP path (src/isp) deliberately
 * is not — offloading whole-subgraph generation is the paper's point.
 *
 * The access model is asynchronous submit/complete: requests enter a
 * bounded host-I/O StorageChannel (sim/io.hh) and dispatch when a queue
 * slot frees, so N requests can be in flight and queue-depth contention
 * emerges under open-loop load (the serving harness, core/serving.hh).
 * Each store implements the *service* timing (serviceRead /
 * serviceGather); the classic blocking calls (read / readGather) are
 * thin submit-and-drain adapters over the async port and reproduce the
 * pre-async completion ticks exactly.
 */

#ifndef SMARTSAGE_HOST_IO_PATH_HH
#define SMARTSAGE_HOST_IO_PATH_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "config.hh"
#include "llc.hh"
#include "sim/io.hh"
#include "sim/set_assoc.hh"
#include "sim/types.hh"
#include "ssd/ssd_device.hh"

namespace smartsage::host
{

/** One way of reading bytes out of the edge-list file. */
class EdgeStore
{
  public:
    /**
     * @param queue_depth host I/O path queue bound (NVMe SQ slots the
     *        runtime exposes to the application;
     *        HostConfig::io_queue_depth)
     * @param fault host-I/O fault schedule; an all-zero plan builds no
     *        injector, leaving the request path untouched
     * @param retry retry/timeout policy installed on the channel
     * @param sched dispatch-policy knob block; the Fifo default keeps
     *        the historical arrival-order channel
     * @param admit admission control; the all-off default never
     *        evaluates the admission check
     */
    explicit EdgeStore(unsigned queue_depth,
                       const sim::FaultPlan &fault = {},
                       const sim::RetryPolicy &retry = {},
                       const sim::SchedConfig &sched = {},
                       const sim::AdmissionControl &admit = {});
    virtual ~EdgeStore() = default;

    // ------------------------- async port -------------------------

    /**
     * Submit a read of @p bytes at file offset @p addr at eq.now().
     * @p done fires at the tick the data is usable by the CPU.
     * Virtual so decorators (host/feature_cache.hh) can intercept the
     * port; the blocking adapters below route through the virtual
     * call, so a decorator covers both access styles at once. @p tag
     * carries the request's scheduling metadata (priority, deadline);
     * the default tag reproduces the untagged channel exactly.
     */
    virtual void submitRead(sim::EventQueue &eq, std::uint64_t addr,
                            std::uint64_t bytes, sim::IoCompletion done,
                            const sim::DispatchTag &tag = {});

    /**
     * Submit a gather of one node's sampled entries (@p addrs byte
     * addresses, @p entry_bytes each) at eq.now(). @p addrs must stay
     * alive until completion. An empty gather completes immediately
     * without occupying a queue slot (and is never shed).
     *
     * Decorators may reshape the traffic that reaches the inner store:
     * the feature cache's MSHR path issues the unique missing lines of
     * a gather as one line-granular inner gather and fans that single
     * completion back out to every coalesced requester. Callers
     * therefore must not assume a 1:1 mapping between their submits
     * and inner-channel commands — only that @p done fires exactly
     * once with the request's final status.
     */
    virtual void submitGather(sim::EventQueue &eq,
                              const std::vector<std::uint64_t> &addrs,
                              unsigned entry_bytes, sim::IoCompletion done,
                              const sim::DispatchTag &tag = {});

    // --------------------- blocking adapters ----------------------

    /**
     * Read @p bytes at file offset @p addr, issued at @p arrival:
     * submit-and-drain over the async port (bit-identical to the
     * pre-async blocking path). @return tick the data is usable
     */
    sim::Tick read(sim::Tick arrival, std::uint64_t addr,
                   std::uint64_t bytes);

    /** Blocking gather adapter; see submitGather. */
    sim::Tick readGather(sim::Tick arrival,
                         const std::vector<std::uint64_t> &addrs,
                         unsigned entry_bytes);

    /** Display name for reports. */
    virtual const std::string &name() const = 0;

    /** Fresh timelines, caches, and queue counters. */
    void reset();

    /** The bounded host-I/O service queue (depth, wait stats).
     *  Decorators forward to the channel actually carrying requests. */
    virtual sim::StorageChannel &ioChannel() { return channel_; }
    virtual const sim::StorageChannel &ioChannel() const
    {
        return channel_;
    }

  protected:
    /**
     * Service timing of one read beginning at @p start (after any
     * queueing delay). @return completion tick >= start
     */
    virtual sim::Tick serviceRead(sim::Tick start, std::uint64_t addr,
                                  std::uint64_t bytes) = 0;

    /**
     * Service timing of one gather beginning at @p start.
     *
     * The default walks the entries one serviceRead at a time —
     * correct for byte-addressable stores and for mmap, whose kernel
     * faults are inherently per-page-blocking. The direct-I/O store
     * overrides this to coalesce one command per node, which is
     * precisely its latency edge (Section IV-C).
     */
    virtual sim::Tick serviceGather(sim::Tick start,
                                    const std::vector<std::uint64_t> &addrs,
                                    unsigned entry_bytes);

    /** Subclass caches/counters back to a fresh state. */
    virtual void resetStore() = 0;

  private:
    /**
     * Apply the fault schedule to one service attempt: possibly
     * stretch [start, finish], possibly fail it transiently. With no
     * injector this is the identity outcome.
     */
    sim::IoOutcome injectFaults(sim::Tick start, sim::Tick finish);

    sim::StorageChannel channel_;
    sim::EventQueue drain_eq_; //!< blocking-adapter drain queue
    std::unique_ptr<sim::FaultInjector> injector_; //!< null when inert
};

/** Oracle: the whole edge list resides in host DRAM behind the LLC. */
class DramEdgeStore : public EdgeStore
{
  public:
    explicit DramEdgeStore(const HostConfig &config);

    const std::string &name() const override { return name_; }

    LlcModel &llc() { return llc_; }

  protected:
    sim::Tick serviceRead(sim::Tick start, std::uint64_t addr,
                          std::uint64_t bytes) override;
    void resetStore() override;

  private:
    std::string name_ = "DRAM";
    LlcModel llc_;
};

/**
 * Baseline SSD: memory-mapped file I/O through the OS page cache
 * (Section III-C). Page-cache hits cost a minor-touch latency; misses
 * pay the page-fault + kernel-stack traversal cost and a block read
 * from the SSD.
 */
class MmapEdgeStore : public EdgeStore
{
  public:
    MmapEdgeStore(const HostConfig &config, ssd::SsdDevice &ssd);

    const std::string &name() const override { return name_; }

    double pageCacheHitRate() const { return cache_.hitRate(); }
    std::uint64_t pageFaults() const { return faults_; }

  protected:
    sim::Tick serviceRead(sim::Tick start, std::uint64_t addr,
                          std::uint64_t bytes) override;
    void resetStore() override;

  private:
    std::string name_ = "SSD (mmap)";
    HostConfig config_;
    ssd::SsdDevice &ssd_;
    sim::SetAssocLru cache_; //!< OS page cache, 4 KiB pages
    std::uint64_t faults_ = 0;
};

/**
 * SmartSAGE(SW): Linux direct I/O (O_DIRECT) into a user-space
 * scratchpad buffer, bypassing the page cache (Section IV-C).
 */
class DirectIoEdgeStore : public EdgeStore
{
  public:
    DirectIoEdgeStore(const HostConfig &config, ssd::SsdDevice &ssd);

    const std::string &name() const override { return name_; }

    double scratchpadHitRate() const { return cache_.hitRate(); }
    std::uint64_t submits() const { return submits_; }

  protected:
    sim::Tick serviceRead(sim::Tick start, std::uint64_t addr,
                          std::uint64_t bytes) override;

    /** Coalesce one O_DIRECT command covering all missing blocks. */
    sim::Tick serviceGather(sim::Tick start,
                            const std::vector<std::uint64_t> &addrs,
                            unsigned entry_bytes) override;

    void resetStore() override;

  private:
    std::string name_ = "SmartSAGE (SW)";
    HostConfig config_;
    ssd::SsdDevice &ssd_;
    sim::SetAssocLru cache_; //!< user scratchpad, block-granular
    std::uint64_t submits_ = 0;
};

/** Optane DC PMEM on the memory bus: byte-granular, ~300 ns loads. */
class PmemEdgeStore : public EdgeStore
{
  public:
    explicit PmemEdgeStore(const HostConfig &config);

    const std::string &name() const override { return name_; }

  protected:
    sim::Tick serviceRead(sim::Tick start, std::uint64_t addr,
                          std::uint64_t bytes) override;
    void resetStore() override;

  private:
    std::string name_ = "PMEM";
    HostConfig config_;
    std::uint64_t reads_ = 0;
};

} // namespace smartsage::host

#endif // SMARTSAGE_HOST_IO_PATH_HH
