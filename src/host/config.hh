/**
 * @file
 * Host-side configuration: CPU cache hierarchy, DRAM, OS I/O path
 * costs, and PMEM. Defaults approximate the paper's testbed (Xeon Gold
 * 6242, 192 GB DDR4 at 125 GB/s peak, Linux NVMe stack).
 */

#ifndef SMARTSAGE_HOST_CONFIG_HH
#define SMARTSAGE_HOST_CONFIG_HH

#include <cstdint>
#include <string_view>

#include "sim/fault.hh"
#include "sim/io.hh"
#include "sim/types.hh"

namespace smartsage::host
{

/** Static host-system parameters. */
struct HostConfig
{
    // --- CPU cache / memory ---
    std::uint64_t llc_bytes = sim::MiB(16); //!< shared last-level cache
    unsigned llc_ways = 16;
    std::uint64_t llc_line = 64;
    sim::Tick llc_hit = sim::ns(12);
    sim::Tick dram_latency = sim::ns(90);   //!< LLC-miss random access
    double dram_peak_gbps = 125.0;          //!< Fig 5 right axis
    /**
     * Outstanding-miss factor of one sampling worker: an OoO core keeps
     * a few misses in flight, so achieved bandwidth is
     * mlp * line / dram_latency per worker.
     */
    double memory_level_parallelism = 3.0;

    // --- OS page-cache (mmap) path, Section III-C ---
    std::uint64_t os_page_bytes = sim::KiB(4);
    std::uint64_t page_cache_bytes = sim::MiB(128);
    unsigned page_cache_ways = 16;
    /** Fault + kernel traversal + page install ("tens of us"). */
    sim::Tick page_fault_cost = sim::us(28);
    /** Minor cost of touching an already-resident mmap page. */
    sim::Tick page_cache_hit = sim::ns(250);

    // --- Host I/O request path (async submit/complete) ---
    /**
     * Bound on concurrently serviced edge-store requests: the NVMe
     * submission-queue slots (and matching scratchpad staging buffers)
     * the runtime exposes to the application. Requests beyond this
     * depth wait in the host I/O channel; the serving-load scenario
     * family sweeps it. Blocking (submit-and-drain) callers never have
     * more than one request outstanding, so this does not affect the
     * classic sweep results.
     */
    unsigned io_queue_depth = 64;

    // --- Direct I/O path, Section IV-C ---
    /** Syscall + NVMe submit without page-cache maintenance. */
    sim::Tick direct_io_submit = sim::us(8);
    /** User-space scratchpad buffer the runtime manages itself. */
    std::uint64_t scratchpad_bytes = sim::MiB(64);
    unsigned scratchpad_ways = 16;
    sim::Tick scratchpad_hit = sim::ns(180);

    // --- Optane PMEM (NVDIMM) alternative, Section VI-C ---
    sim::Tick pmem_latency = sim::ns(320);  //!< random load
    std::uint64_t pmem_access_bytes = 256;  //!< XPLine granularity

    // --- CPU-side sampling compute ---
    /** Per-sampled-edge host CPU work (RNG + bookkeeping). */
    sim::Tick cpu_per_edge = sim::ns(350);

    // --- Feature-table lookup (host DRAM resident in every design) ---
    double feature_stream_gbps = 25.0; //!< streaming row-copy bandwidth
    sim::Tick feature_node_overhead = sim::ns(25);

    // --- GPU link ---
    double host_gpu_gbps = 12.0; //!< effective PCIe gen3 x16 to the GPU
    sim::Tick host_gpu_latency = sim::us(10);

    // --- Fault injection / recovery (defaults inert) ---
    /** Host-I/O fault schedule; every rate defaults to zero. */
    sim::FaultPlan fault;
    /** Retry/timeout policy for the host I/O channel. */
    sim::RetryPolicy retry;

    // --- Request scheduling / admission (defaults inert) ---
    /** Dispatch policy of the host I/O channel (`sched.*` knobs);
     *  Fifo reproduces the historical arrival-order channel. */
    sim::SchedConfig sched;
    /** Admission control at the channel submit edge (`admit.*`);
     *  all-off by default so nothing is ever shed. */
    sim::AdmissionControl admit;
};

/**
 * Set the named host knob (scenario override support).
 * @return false for an unknown key
 */
inline bool
applyKnob(HostConfig &config, std::string_view key, double value)
{
    if (key == "llc_mib")
        config.llc_bytes = sim::MiB(static_cast<std::uint64_t>(value));
    else if (key == "dram_peak_gbps")
        config.dram_peak_gbps = value;
    else if (key == "memory_level_parallelism")
        config.memory_level_parallelism = value;
    else if (key == "page_fault_cost_us")
        config.page_fault_cost = sim::us(value);
    else if (key == "direct_io_submit_us")
        config.direct_io_submit = sim::us(value);
    else if (key == "io_queue_depth")
        config.io_queue_depth = static_cast<unsigned>(value);
    else if (key == "pmem_latency_ns")
        config.pmem_latency = sim::ns(value);
    else if (key == "cpu_per_edge_ns")
        config.cpu_per_edge = sim::ns(value);
    else if (key == "feature_stream_gbps")
        config.feature_stream_gbps = value;
    else if (key == "host_gpu_gbps")
        config.host_gpu_gbps = value;
    else
        return false;
    return true;
}

} // namespace smartsage::host

#endif // SMARTSAGE_HOST_CONFIG_HH
