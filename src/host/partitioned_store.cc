#include "partitioned_store.hh"

#include <algorithm>
#include <utility>

#include "core/backend.hh"
#include "core/report.hh"
#include "host/feature_cache.hh"
#include "pipeline/producer.hh"
#include "sim/logging.hh"

namespace smartsage::host
{

namespace
{

/** splitmix64 finalizer: uncorrelated with CSR node-id locality. */
std::uint64_t
mixNodeId(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

PartitionedEdgeStore::PartitionedEdgeStore(
    const HostConfig &config, const ssd::SsdConfig &ssd_config,
    const sim::NetConfig &net_config, const PartitionedParams &params,
    const graph::CsrGraph &graph, const graph::EdgeLayout &layout)
    : host::EdgeStore(config.io_queue_depth, config.fault, config.retry),
      config_(config), params_(params), layout_(layout), graph_(graph),
      cache_(config.scratchpad_bytes, config.os_page_bytes,
             config.scratchpad_ways)
{
    SS_ASSERT(params_.nodes >= 1, "partitioned store needs >= 1 node");
    ssds_.reserve(params_.nodes);
    links_.resize(params_.nodes);
    for (unsigned i = 0; i < params_.nodes; ++i) {
        ssds_.push_back(std::make_unique<ssd::SsdDevice>(ssd_config));
        if (i > 0)
            links_[i] =
                std::make_unique<sim::NetworkChannel>(net_config);
    }
    buildPartitionMap();
}

void
PartitionedEdgeStore::buildPartitionMap()
{
    const sim::NodeId n = graph_.numNodes();
    node_part_.assign(n, 0);
    if (params_.nodes <= 1)
        return;
    if (params_.strategy == PartitionStrategy::Hash) {
        for (sim::NodeId u = 0; u < n; ++u)
            node_part_[u] = static_cast<std::uint8_t>(
                mixNodeId(u) % params_.nodes);
        return;
    }
    // Degree-balanced contiguous ranges: walk nodes in id order and
    // advance the cut whenever the accumulated edge count crosses the
    // next ~numEdges/nodes boundary. Contiguity keeps a neighbor run's
    // blocks on one node, so per-partition command coalescing survives
    // the cut.
    const std::uint64_t total = graph_.numEdges();
    std::uint64_t acc = 0;
    unsigned part = 0;
    for (sim::NodeId u = 0; u < n; ++u) {
        node_part_[u] = static_cast<std::uint8_t>(part);
        acc += graph_.degree(u);
        while (part + 1 < params_.nodes &&
               acc * params_.nodes >= total * (part + 1))
            ++part;
    }
}

unsigned
PartitionedEdgeStore::partitionOfNode(sim::NodeId node) const
{
    SS_ASSERT(node < node_part_.size(), "node out of range");
    return node_part_[node];
}

unsigned
PartitionedEdgeStore::partitionOfBlock(std::uint64_t block) const
{
    // A block is owned by the partition of the node whose neighbor
    // list holds the block's first edge entry. Blocks spanning a
    // partition boundary (rare: one per cut) are charged wholly to the
    // first owner — a deterministic approximation.
    const std::uint64_t addr = block * config_.os_page_bytes;
    std::uint64_t entry = 0;
    if (addr > layout_.base)
        entry = (addr - layout_.base) / layout_.entry_bytes;
    const auto &offsets = graph_.offsets();
    if (entry >= graph_.numEdges())
        entry = graph_.numEdges() ? graph_.numEdges() - 1 : 0;
    auto it = std::upper_bound(offsets.begin(), offsets.end(), entry);
    sim::NodeId node =
        it == offsets.begin()
            ? 0
            : static_cast<sim::NodeId>(it - offsets.begin() - 1);
    if (node >= node_part_.size())
        node = node_part_.empty() ? 0 : node_part_.size() - 1;
    return node_part_.empty() ? 0 : node_part_[node];
}

sim::Tick
PartitionedEdgeStore::issueMissing(sim::Tick submitted)
{
    // Per-partition contiguous block runs become one command each;
    // nodes service their runs on independent SSD timelines, and a
    // remote partition's results ride its link back as one payload.
    std::sort(missing_.begin(), missing_.end());
    missing_.erase(std::unique(missing_.begin(), missing_.end()),
                   missing_.end());
    std::sort(missing_.begin(), missing_.end(),
              [this](std::uint64_t a, std::uint64_t b) {
                  return std::make_pair(partitionOfBlock(a), a) <
                         std::make_pair(partitionOfBlock(b), b);
              });

    const std::uint64_t bs = config_.os_page_bytes;
    sim::Tick done = submitted;
    std::size_t i = 0;
    while (i < missing_.size()) {
        const unsigned part = partitionOfBlock(missing_[i]);
        // The request message to a remote node pays one link latency
        // before its SSD sees the commands; node 0 is the caller.
        const sim::Tick cmd_at =
            part == 0 ? submitted
                      : submitted + links_[part]->messageLatency();
        sim::Tick dev_done = cmd_at;
        std::uint64_t part_bytes = 0;
        while (i < missing_.size() &&
               partitionOfBlock(missing_[i]) == part) {
            std::size_t j = i + 1;
            while (j < missing_.size() &&
                   missing_[j] == missing_[i] + (j - i) &&
                   partitionOfBlock(missing_[j]) == part)
                ++j;
            const std::uint64_t run_bytes = (j - i) * bs;
            dev_done = std::max(
                dev_done, ssds_[part]->readBlocks(
                              cmd_at, missing_[i] * bs, run_bytes));
            part_bytes += run_bytes;
            if (part == 0)
                local_blocks_ += j - i;
            else
                remote_blocks_ += j - i;
            i = j;
        }
        const sim::Tick landed =
            part == 0
                ? dev_done
                : links_[part]->serviceTransfer(dev_done, part_bytes);
        done = std::max(done, landed);
    }
    return done;
}

sim::Tick
PartitionedEdgeStore::serviceRead(sim::Tick start, std::uint64_t addr,
                                  std::uint64_t bytes)
{
    SS_ASSERT(bytes > 0, "zero-length partitioned read");
    std::uint64_t first = cache_.lineOf(addr);
    std::uint64_t last = cache_.lineOf(addr + bytes - 1);
    bool any_hit = false;
    missing_.clear();
    for (std::uint64_t block = first; block <= last; ++block) {
        if (cache_.access(block))
            any_hit = true;
        else
            missing_.push_back(block);
    }
    sim::Tick done = start;
    if (any_hit)
        done = std::max(done, start + config_.scratchpad_hit);
    if (!missing_.empty()) {
        ++submits_;
        done = std::max(done,
                        issueMissing(start + config_.direct_io_submit));
    }
    return done;
}

sim::Tick
PartitionedEdgeStore::serviceGather(sim::Tick start,
                                    const std::vector<std::uint64_t> &addrs,
                                    unsigned entry_bytes)
{
    if (addrs.empty())
        return start;

    // Classify the touched blocks through the training-host
    // scratchpad, exactly like the single-device direct-I/O store.
    missing_.clear();
    bool any_hit = false;
    for (std::uint64_t a : addrs) {
        std::uint64_t first = cache_.lineOf(a);
        std::uint64_t last = cache_.lineOf(a + entry_bytes - 1);
        for (std::uint64_t b = first; b <= last; ++b) {
            if (cache_.access(b))
                any_hit = true;
            else
                missing_.push_back(b);
        }
    }

    sim::Tick done = start;
    if (any_hit)
        done = std::max(done, start + config_.scratchpad_hit);
    if (!missing_.empty()) {
        ++submits_;
        done = std::max(done,
                        issueMissing(start + config_.direct_io_submit));
    }
    return done;
}

void
PartitionedEdgeStore::resetStore()
{
    cache_.reset();
    submits_ = 0;
    remote_blocks_ = 0;
    local_blocks_ = 0;
    for (auto &ssd : ssds_)
        ssd->reset();
    for (auto &link : links_)
        if (link)
            link->reset();
}

std::uint64_t
PartitionedEdgeStore::netBytes() const
{
    std::uint64_t bytes = 0;
    for (const auto &link : links_)
        if (link)
            bytes += link->bytesMoved();
    return bytes;
}

std::uint64_t
PartitionedEdgeStore::netTransfers() const
{
    std::uint64_t transfers = 0;
    for (const auto &link : links_)
        if (link)
            transfers += link->transfers();
    return transfers;
}

double
PartitionedEdgeStore::bufferHitRate() const
{
    std::uint64_t hits = 0, total = 0;
    for (const auto &ssd : ssds_) {
        const auto &buffer = ssd->pageBuffer();
        hits += buffer.hits();
        total += buffer.hits() + buffer.misses();
    }
    return total ? static_cast<double>(hits) /
                       static_cast<double>(total)
                 : 0.0;
}

std::uint64_t
PartitionedEdgeStore::flashPagesRead() const
{
    std::uint64_t pages = 0;
    for (const auto &ssd : ssds_)
        pages += ssd->flashArray().pagesRead();
    return pages;
}

// ------------------------------------------------ backend registration

namespace
{

PartitionedParams
paramsFrom(const core::SystemConfig &config)
{
    core::validateBackendKnobs(config, "part.",
                               {"part.nodes", "part.strategy"});

    PartitionedParams params;
    double nodes = config.knobOr("part.nodes", 2);
    if (!(nodes >= 1 && nodes <= 64))
        SS_FATAL("part.nodes must be within [1, 64], got ", nodes);
    params.nodes = static_cast<unsigned>(
        core::requireIntegerKnob("part.nodes", nodes));
    double strategy = config.knobOr("part.strategy", 0);
    if (strategy == 0)
        params.strategy = PartitionStrategy::Hash;
    else if (strategy == 1)
        params.strategy = PartitionStrategy::Degree;
    else
        SS_FATAL("part.strategy must be 0 (hash) or 1 (degree), got ",
                 strategy);
    return params;
}

sim::NetConfig
netConfigFrom(const core::SystemConfig &config)
{
    core::validateBackendKnobs(config, "net.",
                               {"net.bandwidth_gbps", "net.latency_us",
                                "net.queue_depth"});

    sim::NetConfig net;
    sim::applyKnob(net, "bandwidth_gbps",
                   config.knobOr("net.bandwidth_gbps",
                                 net.bandwidth_gbps));
    sim::applyKnob(net, "latency_us",
                   config.knobOr("net.latency_us",
                                 sim::toMicros(net.latency)));
    sim::applyKnob(net, "queue_depth",
                   config.knobOr("net.queue_depth", net.queue_depth));
    return net;
}

/** Host-CPU sampling over the partitioned cluster. */
class PartitionedInstance : public core::BackendInstance
{
  public:
    explicit PartitionedInstance(const core::BackendBuildContext &ctx)
        : PartitionedInstance(
              ctx, std::make_unique<PartitionedEdgeStore>(
                       ctx.config.host, ctx.config.ssd,
                       netConfigFrom(ctx.config), paramsFrom(ctx.config),
                       ctx.workload.graph, ctx.config.layout))
    {
    }

    pipeline::SubgraphProducer &producer() override { return producer_; }
    host::EdgeStore *edgeStore() override { return wrapped_.get(); }

    void
    addMetrics(const core::MetricSink &add) const override
    {
        const double remote =
            static_cast<double>(partitioned_->remoteBlocks());
        const double total =
            remote + static_cast<double>(partitioned_->localBlocks());
        add("net_remote_frac", total > 0 ? remote / total : 0.0);
        add("net_bytes",
            static_cast<double>(partitioned_->netBytes()));
        add("ssd_buffer_hit_frac", partitioned_->bufferHitRate());
        const double submits =
            static_cast<double>(partitioned_->submits());
        add("blocks_per_submit", submits > 0 ? total / submits : 0.0);
    }

    std::string
    notes() const override
    {
        const double remote =
            static_cast<double>(partitioned_->remoteBlocks());
        const double total =
            remote + static_cast<double>(partitioned_->localBlocks());
        return "nodes " + std::to_string(partitioned_->numNodes()) +
               ", " +
               (partitioned_->strategy() == PartitionStrategy::Hash
                    ? "hash"
                    : "degree") +
               " cut, remote " +
               core::fmtPct(total > 0 ? remote / total : 0.0);
    }

    void
    addStats(const core::StatSink &add) const override
    {
        add("part.nodes",
            static_cast<double>(partitioned_->numNodes()),
            "simulated host+SSD nodes");
        add("part.remote_blocks",
            static_cast<double>(partitioned_->remoteBlocks()),
            "missing blocks owned by a remote partition");
        add("part.local_blocks",
            static_cast<double>(partitioned_->localBlocks()),
            "missing blocks owned by the training host");
        add("net.bytes",
            static_cast<double>(partitioned_->netBytes()),
            "payload bytes over all inter-node links");
        add("net.transfers",
            static_cast<double>(partitioned_->netTransfers()),
            "response transfers over all inter-node links");
        add("ssd.page_buffer.hit_rate", partitioned_->bufferHitRate(),
            "controller DRAM buffer hit rate, all nodes");
        add("ssd.flash.pages_read",
            static_cast<double>(partitioned_->flashPagesRead()),
            "NAND pages sensed, all nodes");
        add("host.scratchpad.hit_rate",
            partitioned_->scratchpadHitRate(),
            "training-host scratchpad hit rate");
        add("host.direct_io.submits",
            static_cast<double>(partitioned_->submits()),
            "O_DIRECT submissions");
    }

  private:
    PartitionedInstance(const core::BackendBuildContext &ctx,
                        std::unique_ptr<PartitionedEdgeStore> store)
        : partitioned_(store.get()),
          wrapped_(host::wrapWithFeatureCache(std::move(store), ctx)),
          producer_(ctx.workload.graph, ctx.sampler, *wrapped_,
                    ctx.config.host, ctx.config.layout)
    {
    }

    PartitionedEdgeStore *partitioned_; //!< undecorated (counters)
    std::unique_ptr<host::EdgeStore> wrapped_;
    pipeline::CpuProducer producer_;
};

std::unique_ptr<core::BackendInstance>
buildPartitioned(const core::BackendBuildContext &ctx)
{
    return std::make_unique<PartitionedInstance>(ctx);
}

const core::BackendRegistrar reg_partitioned{
    std::make_unique<core::SimpleBackend>(
        "partitioned", "Partitioned",
        "edge-cut CSR across N host+SSD nodes, cross-partition "
        "gathers over a bounded network channel",
        core::BackendCaps{true, false, core::EdgeStoreKind::Partitioned,
                          {"host.", "ssd.", "part.", "net.", "cache."},
                          /*in_default_grids=*/false},
        buildPartitioned)};

} // namespace

} // namespace smartsage::host
