#include "llc.hh"

namespace smartsage::host
{

LlcModel::LlcModel(const HostConfig &config)
    : config_(config),
      cache_(config.llc_bytes, config.llc_line, config.llc_ways)
{
}

sim::Tick
LlcModel::access(std::uint64_t addr, std::uint64_t bytes)
{
    // Touch every line the access spans; latency is set by the slowest
    // component (one DRAM fill if anything missed).
    std::uint64_t first = cache_.lineOf(addr);
    std::uint64_t last = cache_.lineOf(addr + (bytes ? bytes - 1 : 0));
    bool any_miss = false;
    for (std::uint64_t line = first; line <= last; ++line) {
        if (!cache_.access(line)) {
            any_miss = true;
            dram_bytes_ += config_.llc_line;
        }
    }
    ++accesses_;
    sim::Tick lat = any_miss ? config_.dram_latency : config_.llc_hit;
    total_latency_ += lat;
    return lat;
}

double
LlcModel::dramBwUtilization(unsigned workers) const
{
    if (total_latency_ == 0 || accesses_ == 0)
        return 0.0;
    // Average demand stream of one worker: dram bytes spread over its
    // access latency, amplified by in-flight misses and worker count.
    double per_worker_gbps =
        static_cast<double>(dram_bytes_) /
        sim::toSeconds(total_latency_) / 1e9 *
        config_.memory_level_parallelism;
    double util = per_worker_gbps * workers / config_.dram_peak_gbps;
    return util > 1.0 ? 1.0 : util;
}

void
LlcModel::reset()
{
    cache_.reset();
    dram_bytes_ = 0;
    accesses_ = 0;
    total_latency_ = 0;
}

} // namespace smartsage::host
