#include "io_path.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace smartsage::host
{

EdgeStore::EdgeStore(unsigned queue_depth, const sim::FaultPlan &fault,
                     const sim::RetryPolicy &retry,
                     const sim::SchedConfig &sched,
                     const sim::AdmissionControl &admit)
    : channel_("host-io", queue_depth)
{
    channel_.setRetryPolicy(retry);
    channel_.setDispatchPolicy(sched.policy);
    channel_.setAdmission(admit);
    if (fault.injectsHostFaults())
        injector_ = std::make_unique<sim::FaultInjector>(fault, "host-io");
}

sim::IoOutcome
EdgeStore::injectFaults(sim::Tick start, sim::Tick finish)
{
    if (!injector_)
        return {finish, sim::IoStatus::Ok};
    finish = injector_->slowed(start, finish);
    if (injector_->drawReadError())
        return {finish, sim::IoStatus::TransientError};
    return {finish, sim::IoStatus::Ok};
}

void
EdgeStore::submitRead(sim::EventQueue &eq, std::uint64_t addr,
                      std::uint64_t bytes, sim::IoCompletion done,
                      const sim::DispatchTag &tag)
{
    // A retried attempt re-runs the full service: cache state mutated
    // by the failed attempt stays mutated, exactly as a real runtime
    // re-issuing a command would find it.
    channel_.submitFallible(
        eq,
        [this, addr, bytes](sim::Tick start, unsigned) {
            return injectFaults(start, serviceRead(start, addr, bytes));
        },
        std::move(done), tag);
}

void
EdgeStore::submitGather(sim::EventQueue &eq,
                        const std::vector<std::uint64_t> &addrs,
                        unsigned entry_bytes, sim::IoCompletion done,
                        const sim::DispatchTag &tag)
{
    if (addrs.empty()) {
        if (done)
            done(eq.now(), sim::IoStatus::Ok);
        return;
    }
    channel_.submitFallible(
        eq,
        [this, &addrs, entry_bytes](sim::Tick start, unsigned) {
            return injectFaults(start,
                                serviceGather(start, addrs, entry_bytes));
        },
        std::move(done), tag);
}

sim::Tick
EdgeStore::read(sim::Tick arrival, std::uint64_t addr,
                std::uint64_t bytes)
{
    return sim::drainOne(
        drain_eq_, arrival,
        [&](sim::EventQueue &eq, sim::IoCompletion done) {
            submitRead(eq, addr, bytes, std::move(done));
        },
        name(), ioChannel().submitted());
}

sim::Tick
EdgeStore::readGather(sim::Tick arrival,
                      const std::vector<std::uint64_t> &addrs,
                      unsigned entry_bytes)
{
    return sim::drainOne(
        drain_eq_, arrival,
        [&](sim::EventQueue &eq, sim::IoCompletion done) {
            submitGather(eq, addrs, entry_bytes, std::move(done));
        },
        name(), ioChannel().submitted());
}

sim::Tick
EdgeStore::serviceGather(sim::Tick start,
                         const std::vector<std::uint64_t> &addrs,
                         unsigned entry_bytes)
{
    sim::Tick t = start;
    for (std::uint64_t a : addrs)
        t = serviceRead(t, a, entry_bytes);
    return t;
}

void
EdgeStore::reset()
{
    channel_.reset();
    drain_eq_.reset();
    if (injector_)
        injector_->reset();
    resetStore();
}

DramEdgeStore::DramEdgeStore(const HostConfig &config)
    : EdgeStore(config.io_queue_depth, config.fault, config.retry,
                config.sched, config.admit),
      llc_(config)
{
}

sim::Tick
DramEdgeStore::serviceRead(sim::Tick start, std::uint64_t addr,
                           std::uint64_t bytes)
{
    return start + llc_.access(addr, bytes);
}

void
DramEdgeStore::resetStore()
{
    llc_.reset();
}

MmapEdgeStore::MmapEdgeStore(const HostConfig &config,
                             ssd::SsdDevice &ssd)
    : EdgeStore(config.io_queue_depth, config.fault, config.retry,
                config.sched, config.admit),
      config_(config), ssd_(ssd),
      cache_(config.page_cache_bytes, config.os_page_bytes,
             config.page_cache_ways)
{
}

sim::Tick
MmapEdgeStore::serviceRead(sim::Tick start, std::uint64_t addr,
                           std::uint64_t bytes)
{
    SS_ASSERT(bytes > 0, "zero-length mmap read");
    // Touch every OS page the range spans. Each missing page is a
    // separate fault: the kernel traverses the driver stack and brings
    // in exactly one page-sized block.
    std::uint64_t first = cache_.lineOf(addr);
    std::uint64_t last = cache_.lineOf(addr + bytes - 1);
    sim::Tick done = start;
    for (std::uint64_t page = first; page <= last; ++page) {
        if (cache_.access(page)) {
            done = std::max(done, start + config_.page_cache_hit);
        } else {
            ++faults_;
            sim::Tick submitted = start + config_.page_fault_cost;
            sim::Tick landed = ssd_.readBlocks(
                submitted, page * config_.os_page_bytes,
                config_.os_page_bytes);
            done = std::max(done, landed);
        }
    }
    return done;
}

void
MmapEdgeStore::resetStore()
{
    cache_.reset();
    faults_ = 0;
}

DirectIoEdgeStore::DirectIoEdgeStore(const HostConfig &config,
                                     ssd::SsdDevice &ssd)
    : EdgeStore(config.io_queue_depth, config.fault, config.retry,
                config.sched, config.admit),
      config_(config), ssd_(ssd),
      cache_(config.scratchpad_bytes, config.os_page_bytes,
             config.scratchpad_ways)
{
}

sim::Tick
DirectIoEdgeStore::serviceRead(sim::Tick start, std::uint64_t addr,
                               std::uint64_t bytes)
{
    SS_ASSERT(bytes > 0, "zero-length direct read");
    std::uint64_t first = cache_.lineOf(addr);
    std::uint64_t last = cache_.lineOf(addr + bytes - 1);
    sim::Tick done = start;
    for (std::uint64_t block = first; block <= last; ++block) {
        if (cache_.access(block)) {
            done = std::max(done, start + config_.scratchpad_hit);
        } else {
            ++submits_;
            sim::Tick submitted = start + config_.direct_io_submit;
            sim::Tick landed = ssd_.readBlocks(
                submitted, block * config_.os_page_bytes,
                config_.os_page_bytes);
            done = std::max(done, landed);
        }
    }
    return done;
}

sim::Tick
DirectIoEdgeStore::serviceGather(sim::Tick start,
                                 const std::vector<std::uint64_t> &addrs,
                                 unsigned entry_bytes)
{
    if (addrs.empty())
        return start;

    // Classify the touched blocks through the scratchpad.
    std::vector<std::uint64_t> missing;
    bool any_hit = false;
    for (std::uint64_t a : addrs) {
        std::uint64_t first = cache_.lineOf(a);
        std::uint64_t last = cache_.lineOf(a + entry_bytes - 1);
        for (std::uint64_t b = first; b <= last; ++b) {
            if (cache_.access(b))
                any_hit = true;
            else
                missing.push_back(b);
        }
    }

    sim::Tick done = start;
    if (any_hit)
        done = std::max(done, start + config_.scratchpad_hit);
    if (!missing.empty()) {
        // The runtime knows every offset up front, so the whole gather
        // rides one submission: contiguous runs of missing blocks
        // become commands the SSD services in parallel, for a single
        // syscall's worth of latency instead of one fault per page.
        ++submits_;
        std::sort(missing.begin(), missing.end());
        missing.erase(std::unique(missing.begin(), missing.end()),
                      missing.end());
        std::uint64_t bs = config_.os_page_bytes;
        sim::Tick submitted = start + config_.direct_io_submit;
        std::size_t i = 0;
        while (i < missing.size()) {
            std::size_t j = i + 1;
            while (j < missing.size() &&
                   missing[j] == missing[j - 1] + 1) {
                ++j;
            }
            sim::Tick landed = ssd_.readBlocks(
                submitted, missing[i] * bs, (j - i) * bs);
            done = std::max(done, landed);
            i = j;
        }
    }
    return done;
}

void
DirectIoEdgeStore::resetStore()
{
    cache_.reset();
    submits_ = 0;
}

PmemEdgeStore::PmemEdgeStore(const HostConfig &config)
    : EdgeStore(config.io_queue_depth, config.fault, config.retry,
                config.sched, config.admit),
      config_(config)
{
}

sim::Tick
PmemEdgeStore::serviceRead(sim::Tick start, std::uint64_t addr,
                           std::uint64_t bytes)
{
    // Byte-addressable: one XPLine access per touched chunk.
    std::uint64_t chunk = config_.pmem_access_bytes;
    std::uint64_t first = addr / chunk;
    std::uint64_t last = (addr + (bytes ? bytes - 1 : 0)) / chunk;
    std::uint64_t chunks = last - first + 1;
    reads_ += chunks;
    return start + config_.pmem_latency * chunks;
}

void
PmemEdgeStore::resetStore()
{
    reads_ = 0;
}

} // namespace smartsage::host
