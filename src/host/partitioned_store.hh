/**
 * @file
 * Partitioned-graph scale-out edge store: the CSR edge list is
 * edge-cut across N simulated host+SSD nodes, and cross-partition
 * gathers traverse a per-remote-node sim::NetworkChannel.
 *
 * Node 0 is the training host. A gather classifies its blocks through
 * the host scratchpad (exactly like the direct-I/O store), then fans
 * the missing blocks out by owning partition: node-0 runs are serviced
 * by the local SSD directly, while a remote partition pays a one-way
 * request message, its own SSD's service time, and the response
 * payload transfer back over the link. Every node is a complete
 * machine — its own SsdDevice with full controller buffer — so
 * aggregate storage bandwidth (and cache) grows with `part.nodes`,
 * which is precisely the scaling story the "scaling" sweep family
 * measures against `net.bandwidth_gbps`.
 *
 * Partition strategies (`part.strategy`): 0 = hash (node-id bit mix,
 * locality-destroying but trivially balanced), 1 = degree-balanced
 * contiguous ranges (node-id ranges cut so each partition holds
 * ~numEdges/N edges, preserving neighbor-run locality).
 *
 * This file also registers the "partitioned" storage backend
 * (core::BackendRegistry) — zero edits to core, like multi-ssd — with
 * BackendCaps::in_default_grids = false so every pre-existing default
 * artifact stays byte-identical.
 */

#ifndef SMARTSAGE_HOST_PARTITIONED_STORE_HH
#define SMARTSAGE_HOST_PARTITIONED_STORE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/csr.hh"
#include "graph/layout.hh"
#include "host/config.hh"
#include "host/io_path.hh"
#include "sim/net.hh"
#include "sim/set_assoc.hh"
#include "ssd/ssd_device.hh"

namespace smartsage::host
{

/** Edge-cut assignment of graph nodes to partitions. */
enum class PartitionStrategy { Hash, Degree };

/** Scale-out geometry (`part.*` knobs). */
struct PartitionedParams
{
    unsigned nodes = 2; //!< simulated host+SSD nodes
    PartitionStrategy strategy = PartitionStrategy::Hash;
};

/** Direct-I/O edge store spread over N host+SSD nodes. */
class PartitionedEdgeStore : public host::EdgeStore
{
  public:
    /**
     * @param config     training-host parameters (scratchpad sizing)
     * @param ssd_config per-node device template (each node keeps the
     *                   full controller budget — it is a whole machine)
     * @param net_config per-remote-node link parameters
     * @param params     partition count and strategy
     * @param graph      the CSR graph whose edge list is being cut
     * @param layout     on-device byte layout of the edge array
     */
    PartitionedEdgeStore(const HostConfig &config,
                         const ssd::SsdConfig &ssd_config,
                         const sim::NetConfig &net_config,
                         const PartitionedParams &params,
                         const graph::CsrGraph &graph,
                         const graph::EdgeLayout &layout);

    const std::string &name() const override { return name_; }

    unsigned numNodes() const
    {
        return static_cast<unsigned>(ssds_.size());
    }
    PartitionStrategy strategy() const { return params_.strategy; }

    double scratchpadHitRate() const { return cache_.hitRate(); }
    std::uint64_t submits() const { return submits_; }

    /** Missing blocks owned by a remote partition (network round
     *  trips), vs local_blocks_ on the training host. */
    std::uint64_t remoteBlocks() const { return remote_blocks_; }
    std::uint64_t localBlocks() const { return local_blocks_; }
    /** Payload bytes shipped over all inter-node links. */
    std::uint64_t netBytes() const;
    /** Response transfers over all inter-node links. */
    std::uint64_t netTransfers() const;

    /** Page-buffer hit rate aggregated over every node's SSD. */
    double bufferHitRate() const;
    /** NAND pages sensed, summed over every node. */
    std::uint64_t flashPagesRead() const;

    /** Partition owning graph node @p node (exposed for tests). */
    unsigned partitionOfNode(sim::NodeId node) const;

  protected:
    sim::Tick serviceRead(sim::Tick start, std::uint64_t addr,
                          std::uint64_t bytes) override;

    /** One coalesced submission; missing runs fan out per partition,
     *  remote partitions through their network link. */
    sim::Tick serviceGather(sim::Tick start,
                            const std::vector<std::uint64_t> &addrs,
                            unsigned entry_bytes) override;

    void resetStore() override;

  private:
    std::string name_ = "Partitioned";
    HostConfig config_;
    PartitionedParams params_;
    graph::EdgeLayout layout_;
    const graph::CsrGraph &graph_;
    std::vector<std::unique_ptr<ssd::SsdDevice>> ssds_; //!< per node
    /** Links to nodes 1..N-1; index 0 (the local node) is null. */
    std::vector<std::unique_ptr<sim::NetworkChannel>> links_;
    sim::SetAssocLru cache_; //!< training-host scratchpad
    std::vector<std::uint8_t> node_part_; //!< graph node -> partition
    std::uint64_t submits_ = 0;
    std::uint64_t remote_blocks_ = 0;
    std::uint64_t local_blocks_ = 0;
    std::vector<std::uint64_t> missing_; //!< gather scratch

    /** Partition owning scratchpad block @p block (by first edge). */
    unsigned partitionOfBlock(std::uint64_t block) const;

    /** Issue the deduped missing-block list at @p submitted. */
    sim::Tick issueMissing(sim::Tick submitted);

    /** Fill node_part_ per the configured strategy. */
    void buildPartitionMap();
};

} // namespace smartsage::host

#endif // SMARTSAGE_HOST_PARTITIONED_STORE_HH
