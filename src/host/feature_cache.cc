#include "feature_cache.hh"

#include <algorithm>
#include <list>
#include <numeric>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/backend.hh"
#include "graph/csr.hh"
#include "graph/layout.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace smartsage::host
{

const std::string &
featureCachePolicyName(FeatureCachePolicy policy)
{
    static const std::string names[] = {"lru", "clock", "lfu-lite",
                                        "degree-pin"};
    return names[static_cast<int>(policy)];
}

FeatureCachePolicy
featureCachePolicyFromKnob(double value)
{
    std::uint64_t id = core::requireIntegerKnob("cache.policy", value);
    if (id > 3)
        SS_FATAL("cache.policy must be one of 0=lru, 1=clock, "
                 "2=lfu-lite, 3=degree-pin, got ",
                 value);
    return static_cast<FeatureCachePolicy>(id);
}

namespace
{

/** Exact LRU: splice-to-front list plus an id index. */
class LruPolicy final : public CacheReplacementPolicy
{
  public:
    explicit LruPolicy(std::uint64_t max_lines) : max_lines_(max_lines) {}

    bool
    access(std::uint64_t line) override
    {
        auto it = index_.find(line);
        if (it == index_.end())
            return false;
        order_.splice(order_.begin(), order_, it->second);
        return true;
    }

    bool
    contains(std::uint64_t line) const override
    {
        return index_.count(line) != 0;
    }

    bool
    fill(std::uint64_t line) override
    {
        if (max_lines_ == 0)
            return false;
        bool evicted = false;
        if (order_.size() >= max_lines_) {
            index_.erase(order_.back());
            order_.pop_back();
            evicted = true;
        }
        order_.push_front(line);
        index_[line] = order_.begin();
        return evicted;
    }

    std::uint64_t size() const override { return order_.size(); }

    void
    reset() override
    {
        order_.clear();
        index_.clear();
    }

    void
    appendResident(std::vector<std::uint64_t> &out) const override
    {
        out.insert(out.end(), order_.begin(), order_.end());
    }

  private:
    std::uint64_t max_lines_;
    std::list<std::uint64_t> order_; //!< MRU first
    std::unordered_map<std::uint64_t,
                       std::list<std::uint64_t>::iterator>
        index_;
};

/**
 * CLOCK (second chance): fills take empty slots in arrival order; once
 * full, the hand clears reference bits until it lands on an
 * unreferenced victim and moves one past the replaced slot.
 */
class ClockPolicy final : public CacheReplacementPolicy
{
  public:
    explicit ClockPolicy(std::uint64_t max_lines) : max_lines_(max_lines)
    {
    }

    bool
    access(std::uint64_t line) override
    {
        auto it = index_.find(line);
        if (it == index_.end())
            return false;
        slots_[it->second].referenced = true;
        return true;
    }

    bool
    contains(std::uint64_t line) const override
    {
        return index_.count(line) != 0;
    }

    bool
    fill(std::uint64_t line) override
    {
        if (max_lines_ == 0)
            return false;
        if (slots_.size() < max_lines_) {
            index_[line] = slots_.size();
            slots_.push_back({line, false});
            return false;
        }
        while (slots_[hand_].referenced) {
            slots_[hand_].referenced = false;
            hand_ = (hand_ + 1) % slots_.size();
        }
        index_.erase(slots_[hand_].line);
        slots_[hand_] = {line, false};
        index_[line] = hand_;
        hand_ = (hand_ + 1) % slots_.size();
        return true;
    }

    std::uint64_t size() const override { return slots_.size(); }

    void
    reset() override
    {
        slots_.clear();
        index_.clear();
        hand_ = 0;
    }

    void
    appendResident(std::vector<std::uint64_t> &out) const override
    {
        for (const Slot &slot : slots_)
            out.push_back(slot.line);
    }

  private:
    struct Slot
    {
        std::uint64_t line;
        bool referenced;
    };

    std::uint64_t max_lines_;
    std::vector<Slot> slots_;
    std::size_t hand_ = 0;
    std::unordered_map<std::uint64_t, std::size_t> index_;
};

/**
 * LFU-lite: per-line frequency saturating at a small cap (so stale
 * once-hot lines can age out of the victim race), victims picked by
 * (frequency, fill stamp) — FIFO among equally-cold lines.
 */
class LfuLitePolicy final : public CacheReplacementPolicy
{
  public:
    explicit LfuLitePolicy(std::uint64_t max_lines)
        : max_lines_(max_lines)
    {
    }

    bool
    access(std::uint64_t line) override
    {
        auto it = entries_.find(line);
        if (it == entries_.end())
            return false;
        Entry &e = it->second;
        if (e.freq < kMaxFreq) {
            queue_.erase({e.freq, e.stamp, line});
            ++e.freq;
            queue_.insert({e.freq, e.stamp, line});
        }
        return true;
    }

    bool
    contains(std::uint64_t line) const override
    {
        return entries_.count(line) != 0;
    }

    bool
    fill(std::uint64_t line) override
    {
        if (max_lines_ == 0)
            return false;
        bool evicted = false;
        if (entries_.size() >= max_lines_) {
            auto victim = queue_.begin();
            entries_.erase(std::get<2>(*victim));
            queue_.erase(victim);
            evicted = true;
        }
        Entry e{1, ++stamp_};
        entries_[line] = e;
        queue_.insert({e.freq, e.stamp, line});
        return evicted;
    }

    std::uint64_t size() const override { return entries_.size(); }

    void
    reset() override
    {
        entries_.clear();
        queue_.clear();
        stamp_ = 0;
    }

    void
    appendResident(std::vector<std::uint64_t> &out) const override
    {
        for (const auto &entry : queue_)
            out.push_back(std::get<2>(entry));
    }

  private:
    static constexpr std::uint32_t kMaxFreq = 15;

    struct Entry
    {
        std::uint32_t freq;
        std::uint64_t stamp;
    };

    std::uint64_t max_lines_;
    std::uint64_t stamp_ = 0;
    std::unordered_map<std::uint64_t, Entry> entries_;
    /** Victim order: coldest (freq, stamp) first. */
    std::set<std::tuple<std::uint32_t, std::uint64_t, std::uint64_t>>
        queue_;
};

/** Static pin set: membership decided at build time, never replaced. */
class DegreePinPolicy final : public CacheReplacementPolicy
{
  public:
    explicit DegreePinPolicy(const std::vector<std::uint64_t> &pinned)
        : order_(pinned), pinned_(pinned.begin(), pinned.end())
    {
    }

    bool
    access(std::uint64_t line) override
    {
        return pinned_.count(line) != 0;
    }

    bool
    contains(std::uint64_t line) const override
    {
        return pinned_.count(line) != 0;
    }

    bool
    fill(std::uint64_t line) override
    {
        (void)line; // misses stay misses: the pin set is the cache
        return false;
    }

    std::uint64_t size() const override { return pinned_.size(); }

    void reset() override {} // construction-time state survives reset

    void
    appendResident(std::vector<std::uint64_t> &out) const override
    {
        out.insert(out.end(), order_.begin(), order_.end());
    }

  private:
    std::vector<std::uint64_t> order_; //!< pin order, hottest first
    std::unordered_set<std::uint64_t> pinned_;
};

} // namespace

std::unique_ptr<CacheReplacementPolicy>
makeCacheReplacementPolicy(const FeatureCacheParams &params)
{
    switch (params.policy) {
    case FeatureCachePolicy::Lru:
        return std::make_unique<LruPolicy>(params.capacityLines());
    case FeatureCachePolicy::Clock:
        return std::make_unique<ClockPolicy>(params.capacityLines());
    case FeatureCachePolicy::LfuLite:
        return std::make_unique<LfuLitePolicy>(params.capacityLines());
    case FeatureCachePolicy::DegreePin:
        return std::make_unique<DegreePinPolicy>(params.pinned_lines);
    }
    SS_FATAL("unknown feature-cache policy id ",
             static_cast<int>(params.policy));
}

std::vector<std::uint64_t>
degreePinnedLines(const graph::CsrGraph &graph,
                  const graph::EdgeLayout &layout,
                  std::uint64_t line_bytes, std::uint64_t max_lines)
{
    std::vector<std::uint64_t> out;
    if (max_lines == 0)
        return out;

    auto n = static_cast<graph::LocalNodeId>(graph.numNodes());
    std::vector<graph::LocalNodeId> nodes(n);
    std::iota(nodes.begin(), nodes.end(), graph::LocalNodeId(0));
    std::sort(nodes.begin(), nodes.end(),
              [&graph](graph::LocalNodeId a, graph::LocalNodeId b) {
                  std::uint64_t da = graph.degree(a);
                  std::uint64_t db = graph.degree(b);
                  return da != db ? da > db : a < b;
              });

    std::unordered_set<std::uint64_t> taken;
    out.reserve(max_lines);
    for (graph::LocalNodeId node : nodes) {
        std::uint64_t degree = graph.degree(node);
        if (degree == 0)
            break; // degrees descend: the rest are isolated nodes
        sim::EdgeIndex row = graph.edgeOffset(node);
        std::uint64_t first = layout.addrOf(row) / line_bytes;
        std::uint64_t last = (layout.addrOf(row + degree - 1) +
                              layout.entry_bytes - 1) /
                             line_bytes;
        for (std::uint64_t line = first; line <= last; ++line) {
            if (!taken.insert(line).second)
                continue;
            out.push_back(line);
            if (out.size() >= max_lines)
                return out;
        }
    }
    return out;
}

FeatureCacheStore::FeatureCacheStore(std::unique_ptr<EdgeStore> inner,
                                     FeatureCacheParams params)
    : EdgeStore(1), inner_(std::move(inner)),
      params_(std::move(params)),
      policy_(makeCacheReplacementPolicy(params_))
{
    SS_ASSERT(inner_, "feature cache needs a store to decorate");
    SS_ASSERT(params_.line_bytes > 0, "feature cache needs a line size");
    name_ = inner_->name() + " + " +
            featureCachePolicyName(params_.policy) + " cache";
}

void
FeatureCacheStore::classifyRange(std::uint64_t addr, std::uint64_t bytes,
                                 std::vector<std::uint64_t> &missing)
{
    std::uint64_t first = addr / params_.line_bytes;
    std::uint64_t last =
        (addr + (bytes ? bytes - 1 : 0)) / params_.line_bytes;
    for (std::uint64_t line = first; line <= last; ++line) {
        if (policy_->access(line)) {
            ++stats_.hits;
        } else {
            ++stats_.misses;
            missing.push_back(line);
        }
    }
}

void
FeatureCacheStore::fillLines(const std::vector<std::uint64_t> &lines)
{
    for (std::uint64_t line : lines) {
        // A concurrent request may have filled the line while this
        // miss was in flight; fills are idempotent.
        if (policy_->contains(line))
            continue;
        if (policy_->fill(line))
            ++stats_.evictions;
    }
}

void
FeatureCacheStore::completeHit(sim::EventQueue &eq, sim::IoCompletion done)
{
    sim::Tick finish = eq.now() + params_.hit;
    eq.schedule(finish, [done = std::move(done), finish] {
        if (done)
            done(finish, sim::IoStatus::Ok);
    });
}

void
FeatureCacheStore::submitRead(sim::EventQueue &eq, std::uint64_t addr,
                              std::uint64_t bytes, sim::IoCompletion done,
                              const sim::DispatchTag &tag)
{
    std::vector<std::uint64_t> missing;
    classifyRange(addr, bytes, missing);
    if (missing.empty()) {
        completeHit(eq, std::move(done));
        return;
    }
    inner_->submitRead(
        eq, addr, bytes,
        [this, missing = std::move(missing),
         done = std::move(done)](sim::Tick finish, sim::IoStatus status) {
            // A failed read delivered no data: caching its lines would
            // serve garbage to every later hit.
            if (status == sim::IoStatus::Ok)
                fillLines(missing);
            else
                stats_.failed_fills += missing.size();
            if (done)
                done(finish, status);
        },
        tag);
}

void
FeatureCacheStore::submitGather(sim::EventQueue &eq,
                                const std::vector<std::uint64_t> &addrs,
                                unsigned entry_bytes,
                                sim::IoCompletion done,
                                const sim::DispatchTag &tag)
{
    if (addrs.empty()) {
        if (done)
            done(eq.now(), sim::IoStatus::Ok);
        return;
    }
    std::vector<std::uint64_t> missing;
    for (std::uint64_t a : addrs)
        classifyRange(a, entry_bytes, missing);
    if (missing.empty()) {
        completeHit(eq, std::move(done));
        return;
    }
    // Entries of one gather may share lines; fill each line once.
    std::sort(missing.begin(), missing.end());
    missing.erase(std::unique(missing.begin(), missing.end()),
                  missing.end());
    inner_->submitGather(
        eq, addrs, entry_bytes,
        [this, missing = std::move(missing),
         done = std::move(done)](sim::Tick finish, sim::IoStatus status) {
            if (status == sim::IoStatus::Ok)
                fillLines(missing);
            else
                stats_.failed_fills += missing.size();
            if (done)
                done(finish, status);
        },
        tag);
}

std::vector<std::uint64_t>
FeatureCacheStore::residentLineIds() const
{
    std::vector<std::uint64_t> out;
    policy_->appendResident(out);
    std::sort(out.begin(), out.end());
    return out;
}

void
FeatureCacheStore::warmFill(const std::vector<std::uint64_t> &lines)
{
    for (std::uint64_t line : lines) {
        if (policy_->contains(line))
            continue;
        policy_->fill(line);
    }
}

sim::Tick
FeatureCacheStore::serviceRead(sim::Tick start, std::uint64_t addr,
                               std::uint64_t bytes)
{
    (void)start;
    (void)addr;
    (void)bytes;
    SS_FATAL("FeatureCacheStore has no service timing of its own; "
             "requests route through the decorated store");
}

void
FeatureCacheStore::resetStore()
{
    inner_->reset();
    policy_->reset();
    stats_ = {};
}

std::unique_ptr<EdgeStore>
wrapWithFeatureCache(std::unique_ptr<EdgeStore> store,
                     const core::BackendBuildContext &ctx)
{
    const core::SystemConfig &config = ctx.config;
    core::validateBackendKnobs(config, "cache.",
                               {"cache.policy", "cache.capacity_fraction",
                                "cache.line_kib", "cache.hit_ns"});

    double fraction = config.knobOr("cache.capacity_fraction", 0.0);
    if (!(fraction >= 0.0 && fraction <= 1.0))
        SS_FATAL("cache.capacity_fraction must be within [0, 1], got ",
                 fraction);
    if (fraction == 0.0)
        return store; // disabled: the store is untouched

    FeatureCacheParams params;
    params.policy =
        featureCachePolicyFromKnob(config.knobOr("cache.policy", 0));

    double line_kib = config.knobOr("cache.line_kib", 4);
    if (!(line_kib >= 1 && line_kib <= 4096))
        SS_FATAL("cache.line_kib must be within [1, 4096], got ",
                 line_kib);
    params.line_bytes =
        sim::KiB(core::requireIntegerKnob("cache.line_kib", line_kib));

    double hit_ns = config.knobOr("cache.hit_ns", 150);
    if (!(hit_ns >= 0))
        SS_FATAL("cache.hit_ns must be >= 0, got ", hit_ns);
    params.hit = sim::ns(hit_ns);

    // Capacity scales off the edge-list footprint like the page-cache
    // and scratchpad budgets; once enabled it holds at least one line.
    std::uint64_t edge_bytes = ctx.workload.edgeListBytes(config.layout);
    auto want = static_cast<std::uint64_t>(
        fraction * static_cast<double>(edge_bytes));
    params.capacity_bytes = std::max(want, params.line_bytes);

    if (params.policy == FeatureCachePolicy::DegreePin)
        params.pinned_lines = degreePinnedLines(
            ctx.workload.graph, config.layout, params.line_bytes,
            params.capacityLines());

    return std::make_unique<FeatureCacheStore>(std::move(store),
                                               std::move(params));
}

} // namespace smartsage::host
