#include "feature_cache.hh"

#include <algorithm>
#include <list>
#include <numeric>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/backend.hh"
#include "graph/csr.hh"
#include "graph/layout.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace smartsage::host
{

const std::string &
featureCachePolicyName(FeatureCachePolicy policy)
{
    static const std::string names[] = {"lru", "clock", "lfu-lite",
                                        "degree-pin"};
    return names[static_cast<int>(policy)];
}

FeatureCachePolicy
featureCachePolicyFromKnob(double value)
{
    std::uint64_t id = core::requireIntegerKnob("cache.policy", value);
    if (id > 3)
        SS_FATAL("cache.policy must be one of 0=lru, 1=clock, "
                 "2=lfu-lite, 3=degree-pin, got ",
                 value);
    return static_cast<FeatureCachePolicy>(id);
}

namespace
{

/** Exact LRU: splice-to-front list plus an id index. */
class LruPolicy final : public CacheReplacementPolicy
{
  public:
    explicit LruPolicy(std::uint64_t max_lines) : max_lines_(max_lines) {}

    bool
    access(std::uint64_t line) override
    {
        auto it = index_.find(line);
        if (it == index_.end())
            return false;
        order_.splice(order_.begin(), order_, it->second);
        return true;
    }

    bool
    contains(std::uint64_t line) const override
    {
        return index_.count(line) != 0;
    }

    bool
    fill(std::uint64_t line, std::uint64_t *victim) override
    {
        if (max_lines_ == 0)
            return false;
        bool evicted = false;
        if (order_.size() >= max_lines_) {
            if (victim)
                *victim = order_.back();
            index_.erase(order_.back());
            order_.pop_back();
            evicted = true;
        }
        order_.push_front(line);
        index_[line] = order_.begin();
        return evicted;
    }

    std::uint64_t size() const override { return order_.size(); }

    void
    reset() override
    {
        order_.clear();
        index_.clear();
    }

    void
    appendResident(std::vector<std::uint64_t> &out) const override
    {
        out.insert(out.end(), order_.begin(), order_.end());
    }

  private:
    std::uint64_t max_lines_;
    std::list<std::uint64_t> order_; //!< MRU first
    std::unordered_map<std::uint64_t,
                       std::list<std::uint64_t>::iterator>
        index_;
};

/**
 * CLOCK (second chance): fills take empty slots in arrival order; once
 * full, the hand clears reference bits until it lands on an
 * unreferenced victim and moves one past the replaced slot.
 */
class ClockPolicy final : public CacheReplacementPolicy
{
  public:
    explicit ClockPolicy(std::uint64_t max_lines) : max_lines_(max_lines)
    {
    }

    bool
    access(std::uint64_t line) override
    {
        auto it = index_.find(line);
        if (it == index_.end())
            return false;
        slots_[it->second].referenced = true;
        return true;
    }

    bool
    contains(std::uint64_t line) const override
    {
        return index_.count(line) != 0;
    }

    bool
    fill(std::uint64_t line, std::uint64_t *victim) override
    {
        if (max_lines_ == 0)
            return false;
        if (slots_.size() < max_lines_) {
            index_[line] = slots_.size();
            slots_.push_back({line, false});
            return false;
        }
        while (slots_[hand_].referenced) {
            slots_[hand_].referenced = false;
            hand_ = (hand_ + 1) % slots_.size();
        }
        if (victim)
            *victim = slots_[hand_].line;
        index_.erase(slots_[hand_].line);
        slots_[hand_] = {line, false};
        index_[line] = hand_;
        hand_ = (hand_ + 1) % slots_.size();
        return true;
    }

    std::uint64_t size() const override { return slots_.size(); }

    void
    reset() override
    {
        slots_.clear();
        index_.clear();
        hand_ = 0;
    }

    void
    appendResident(std::vector<std::uint64_t> &out) const override
    {
        for (const Slot &slot : slots_)
            out.push_back(slot.line);
    }

  private:
    struct Slot
    {
        std::uint64_t line;
        bool referenced;
    };

    std::uint64_t max_lines_;
    std::vector<Slot> slots_;
    std::size_t hand_ = 0;
    std::unordered_map<std::uint64_t, std::size_t> index_;
};

/**
 * LFU-lite: per-line frequency saturating at a small cap (so stale
 * once-hot lines can age out of the victim race), victims picked by
 * (frequency, fill stamp) — FIFO among equally-cold lines.
 */
class LfuLitePolicy final : public CacheReplacementPolicy
{
  public:
    explicit LfuLitePolicy(std::uint64_t max_lines)
        : max_lines_(max_lines)
    {
    }

    bool
    access(std::uint64_t line) override
    {
        auto it = entries_.find(line);
        if (it == entries_.end())
            return false;
        Entry &e = it->second;
        if (e.freq < kMaxFreq) {
            queue_.erase({e.freq, e.stamp, line});
            ++e.freq;
            queue_.insert({e.freq, e.stamp, line});
        }
        return true;
    }

    bool
    contains(std::uint64_t line) const override
    {
        return entries_.count(line) != 0;
    }

    bool
    fill(std::uint64_t line, std::uint64_t *victim) override
    {
        if (max_lines_ == 0)
            return false;
        bool evicted = false;
        if (entries_.size() >= max_lines_) {
            auto coldest = queue_.begin();
            if (victim)
                *victim = std::get<2>(*coldest);
            entries_.erase(std::get<2>(*coldest));
            queue_.erase(coldest);
            evicted = true;
        }
        Entry e{1, ++stamp_};
        entries_[line] = e;
        queue_.insert({e.freq, e.stamp, line});
        return evicted;
    }

    std::uint64_t size() const override { return entries_.size(); }

    void
    reset() override
    {
        entries_.clear();
        queue_.clear();
        stamp_ = 0;
    }

    void
    appendResident(std::vector<std::uint64_t> &out) const override
    {
        for (const auto &entry : queue_)
            out.push_back(std::get<2>(entry));
    }

  private:
    static constexpr std::uint32_t kMaxFreq = 15;

    struct Entry
    {
        std::uint32_t freq;
        std::uint64_t stamp;
    };

    std::uint64_t max_lines_;
    std::uint64_t stamp_ = 0;
    std::unordered_map<std::uint64_t, Entry> entries_;
    /** Victim order: coldest (freq, stamp) first. */
    std::set<std::tuple<std::uint32_t, std::uint64_t, std::uint64_t>>
        queue_;
};

/** Static pin set: membership decided at build time, never replaced. */
class DegreePinPolicy final : public CacheReplacementPolicy
{
  public:
    explicit DegreePinPolicy(const std::vector<std::uint64_t> &pinned)
        : order_(pinned), pinned_(pinned.begin(), pinned.end())
    {
    }

    bool
    access(std::uint64_t line) override
    {
        return pinned_.count(line) != 0;
    }

    bool
    contains(std::uint64_t line) const override
    {
        return pinned_.count(line) != 0;
    }

    bool
    fill(std::uint64_t line, std::uint64_t *victim) override
    {
        (void)line; // misses stay misses: the pin set is the cache
        (void)victim;
        return false;
    }

    std::uint64_t size() const override { return pinned_.size(); }

    void reset() override {} // construction-time state survives reset

    void
    appendResident(std::vector<std::uint64_t> &out) const override
    {
        out.insert(out.end(), order_.begin(), order_.end());
    }

  private:
    std::vector<std::uint64_t> order_; //!< pin order, hottest first
    std::unordered_set<std::uint64_t> pinned_;
};

/**
 * Worst-of two statuses for a request whose lines resolved from
 * different fills: any failure poisons the request, and among
 * failures the numerically larger (TransientError < Timeout < Shed)
 * wins — an arbitrary but deterministic total order.
 */
sim::IoStatus
worseStatus(sim::IoStatus a, sim::IoStatus b)
{
    return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b)
               ? a
               : b;
}

/** Dispatch tag of hoard fills: below every demand priority, so under
 *  a priority scheduler prefetch never delays a demand miss. */
constexpr sim::DispatchTag kPrefetchTag{-1, 0};

} // namespace

std::unique_ptr<CacheReplacementPolicy>
makeCacheReplacementPolicy(const FeatureCacheParams &params)
{
    switch (params.policy) {
    case FeatureCachePolicy::Lru:
        return std::make_unique<LruPolicy>(params.capacityLines());
    case FeatureCachePolicy::Clock:
        return std::make_unique<ClockPolicy>(params.capacityLines());
    case FeatureCachePolicy::LfuLite:
        return std::make_unique<LfuLitePolicy>(params.capacityLines());
    case FeatureCachePolicy::DegreePin:
        return std::make_unique<DegreePinPolicy>(params.pinned_lines);
    }
    SS_FATAL("unknown feature-cache policy id ",
             static_cast<int>(params.policy));
}

std::vector<std::uint64_t>
degreePinnedLines(const graph::CsrGraph &graph,
                  const graph::EdgeLayout &layout,
                  std::uint64_t line_bytes, std::uint64_t max_lines)
{
    std::vector<std::uint64_t> out;
    if (max_lines == 0)
        return out;

    auto n = static_cast<graph::LocalNodeId>(graph.numNodes());
    std::vector<graph::LocalNodeId> nodes(n);
    std::iota(nodes.begin(), nodes.end(), graph::LocalNodeId(0));
    std::sort(nodes.begin(), nodes.end(),
              [&graph](graph::LocalNodeId a, graph::LocalNodeId b) {
                  std::uint64_t da = graph.degree(a);
                  std::uint64_t db = graph.degree(b);
                  return da != db ? da > db : a < b;
              });

    std::unordered_set<std::uint64_t> taken;
    out.reserve(max_lines);
    for (graph::LocalNodeId node : nodes) {
        std::uint64_t degree = graph.degree(node);
        if (degree == 0)
            break; // degrees descend: the rest are isolated nodes
        sim::EdgeIndex row = graph.edgeOffset(node);
        std::uint64_t first = layout.addrOf(row) / line_bytes;
        std::uint64_t last = (layout.addrOf(row + degree - 1) +
                              layout.entry_bytes - 1) /
                             line_bytes;
        for (std::uint64_t line = first; line <= last; ++line) {
            if (!taken.insert(line).second)
                continue;
            out.push_back(line);
            if (out.size() >= max_lines)
                return out;
        }
    }
    return out;
}

FeatureCacheStore::FeatureCacheStore(std::unique_ptr<EdgeStore> inner,
                                     FeatureCacheParams params)
    : EdgeStore(1), inner_(std::move(inner)),
      params_(std::move(params)),
      policy_(makeCacheReplacementPolicy(params_))
{
    SS_ASSERT(inner_, "feature cache needs a store to decorate");
    SS_ASSERT(params_.line_bytes > 0, "feature cache needs a line size");
    name_ = inner_->name() + " + " +
            featureCachePolicyName(params_.policy) + " cache";
}

void
FeatureCacheStore::classifyRange(std::uint64_t addr, std::uint64_t bytes,
                                 std::vector<std::uint64_t> &missing)
{
    std::uint64_t first = addr / params_.line_bytes;
    std::uint64_t last =
        (addr + (bytes ? bytes - 1 : 0)) / params_.line_bytes;
    for (std::uint64_t line = first; line <= last; ++line) {
        if (policy_->access(line)) {
            ++stats_.hits;
            // First demand touch on a hoard-installed line: the
            // prefetch proved useful; later touches are plain hits.
            if (!hoarded_.empty() && hoarded_.erase(line))
                ++stats_.prefetch_useful;
        } else {
            ++stats_.misses;
            missing.push_back(line);
        }
    }
}

void
FeatureCacheStore::fillLines(const std::vector<std::uint64_t> &lines)
{
    for (std::uint64_t line : lines) {
        // A concurrent request may have filled the line while this
        // miss was in flight; fills are idempotent.
        if (policy_->contains(line))
            continue;
        if (policy_->fill(line))
            ++stats_.evictions;
    }
}

void
FeatureCacheStore::completeHit(sim::EventQueue &eq, sim::IoCompletion done)
{
    sim::Tick finish = eq.now() + params_.hit;
    eq.schedule(finish, [done = std::move(done), finish] {
        if (done)
            done(finish, sim::IoStatus::Ok);
    });
}

void
FeatureCacheStore::forwardRead(sim::EventQueue &eq, std::uint64_t addr,
                               std::uint64_t bytes,
                               std::vector<std::uint64_t> missing,
                               sim::IoCompletion done,
                               const sim::DispatchTag &tag)
{
    inner_->submitRead(
        eq, addr, bytes,
        [this, missing = std::move(missing),
         done = std::move(done)](sim::Tick finish, sim::IoStatus status) {
            // A failed read delivered no data: caching its lines would
            // serve garbage to every later hit.
            if (status == sim::IoStatus::Ok)
                fillLines(missing);
            else
                stats_.failed_fills += missing.size();
            if (done)
                done(finish, status);
        },
        tag);
}

void
FeatureCacheStore::forwardGather(sim::EventQueue &eq,
                                 const std::vector<std::uint64_t> &addrs,
                                 unsigned entry_bytes,
                                 std::vector<std::uint64_t> missing,
                                 sim::IoCompletion done,
                                 const sim::DispatchTag &tag)
{
    inner_->submitGather(
        eq, addrs, entry_bytes,
        [this, missing = std::move(missing),
         done = std::move(done)](sim::Tick finish, sim::IoStatus status) {
            if (status == sim::IoStatus::Ok)
                fillLines(missing);
            else
                stats_.failed_fills += missing.size();
            if (done)
                done(finish, status);
        },
        tag);
}

void
FeatureCacheStore::submitRead(sim::EventQueue &eq, std::uint64_t addr,
                              std::uint64_t bytes, sim::IoCompletion done,
                              const sim::DispatchTag &tag)
{
    std::vector<std::uint64_t> missing;
    classifyRange(addr, bytes, missing);
    if (missing.empty()) {
        completeHit(eq, std::move(done));
        return;
    }
    // A contiguous range touches each line once, so `missing` is
    // already unique and in ascending order.
    if (mshrActive())
        processMisses(eq, std::move(missing), std::move(done), tag);
    else
        forwardRead(eq, addr, bytes, std::move(missing), std::move(done),
                    tag);
}

void
FeatureCacheStore::submitGather(sim::EventQueue &eq,
                                const std::vector<std::uint64_t> &addrs,
                                unsigned entry_bytes,
                                sim::IoCompletion done,
                                const sim::DispatchTag &tag)
{
    if (addrs.empty()) {
        if (done)
            done(eq.now(), sim::IoStatus::Ok);
        return;
    }
    std::vector<std::uint64_t> missing;
    for (std::uint64_t a : addrs)
        classifyRange(a, entry_bytes, missing);
    if (missing.empty()) {
        completeHit(eq, std::move(done));
        return;
    }
    // Entries of one gather may share lines; each line is obligated
    // (and, under MSHRs, issued) once.
    std::size_t touches = missing.size();
    std::sort(missing.begin(), missing.end());
    missing.erase(std::unique(missing.begin(), missing.end()),
                  missing.end());
    if (mshrActive()) {
        stats_.gather_dedup += touches - missing.size();
        processMisses(eq, std::move(missing), std::move(done), tag);
    } else {
        forwardGather(eq, addrs, entry_bytes, std::move(missing),
                      std::move(done), tag);
    }
}

void
FeatureCacheStore::processMisses(sim::EventQueue &eq,
                                 std::vector<std::uint64_t> unique_missing,
                                 sim::IoCompletion done,
                                 const sim::DispatchTag &tag)
{
    auto request = std::make_shared<PendingRequest>();
    request->done = std::move(done);
    request->remaining = unique_missing.size();

    std::vector<std::uint64_t> fetch;
    std::vector<std::uint64_t> deferred;
    for (std::uint64_t line : unique_missing) {
        auto it = mshr_.find(line);
        if (it != mshr_.end()) {
            MshrEntry &entry = it->second;
            if (entry.waiters.size() >= params_.mshr_waiters) {
                deferred.push_back(line);
                continue;
            }
            ++stats_.mshr_piggybacks;
            if (entry.prefetch) {
                // Demand touch on an in-flight prefetch: upgrade in
                // place. The line now installs as demand-resident.
                entry.prefetch = false;
                ++stats_.prefetch_useful;
            }
            entry.waiters.push_back(request);
        } else if (mshr_.size() < params_.mshr_entries) {
            mshr_.emplace(line, MshrEntry{false, {request}});
            fetch.push_back(line);
        } else {
            deferred.push_back(line);
        }
    }

    if (!deferred.empty()) {
        ++stats_.mshr_stalls;
        parked_.push_back({request, std::move(deferred), tag});
    }
    if (!fetch.empty())
        issueFill(eq, std::move(fetch), tag);
}

void
FeatureCacheStore::issueFill(sim::EventQueue &eq,
                             std::vector<std::uint64_t> lines,
                             const sim::DispatchTag &tag)
{
    std::vector<std::uint64_t> addrs;
    addrs.reserve(lines.size());
    for (std::uint64_t line : lines)
        addrs.push_back(line * params_.line_bytes);
    inner_->submitGather(
        eq, addrs, static_cast<unsigned>(params_.line_bytes),
        [this, &eq, lines = std::move(lines)](sim::Tick finish,
                                              sim::IoStatus status) {
            completeFill(eq, lines, finish, status);
        },
        tag);
}

void
FeatureCacheStore::completeFill(sim::EventQueue &eq,
                                const std::vector<std::uint64_t> &lines,
                                sim::Tick finish, sim::IoStatus status)
{
    for (std::uint64_t line : lines) {
        auto it = mshr_.find(line);
        SS_ASSERT(it != mshr_.end(),
                  "fill completed for a line with no MSHR entry");
        // Detach before resolving: a waiter's completion may reenter
        // submitGather (closed-loop clients) and mutate the table.
        MshrEntry entry = std::move(it->second);
        mshr_.erase(it);

        if (status == sim::IoStatus::Ok) {
            installLine(line, entry.prefetch);
        } else if (entry.prefetch) {
            // A failed hoard fill sheds silently: nothing installs,
            // no demand request existed to care.
            ++stats_.prefetch_failed;
        } else {
            // Once per line per fill, however many waiters coalesced
            // on it; every waiter still sees the error below.
            ++stats_.failed_fills;
        }
        for (const auto &waiter : entry.waiters)
            resolveObligation(waiter, finish, status);
    }
    retryParked(eq);
}

void
FeatureCacheStore::installLine(std::uint64_t line, bool prefetched)
{
    if (policy_->contains(line))
        return; // warm-filled concurrently; fills stay idempotent
    std::uint64_t victim = 0;
    if (policy_->fill(line, &victim)) {
        ++stats_.evictions;
        hoarded_.erase(victim);
    }
    if (prefetched)
        hoarded_.insert(line);
}

void
FeatureCacheStore::resolveObligation(
    const std::shared_ptr<PendingRequest> &request, sim::Tick finish,
    sim::IoStatus status)
{
    request->finish = std::max(request->finish, finish);
    request->status = worseStatus(request->status, status);
    SS_ASSERT(request->remaining > 0,
              "over-resolved feature-cache request");
    if (--request->remaining == 0 && request->done)
        request->done(request->finish, request->status);
}

void
FeatureCacheStore::retryParked(sim::EventQueue &eq)
{
    while (!parked_.empty()) {
        ParkedRequest &parked = parked_.front();
        std::vector<std::uint64_t> fetch;
        std::vector<std::uint64_t> still;
        for (std::uint64_t line : parked.lines) {
            if (policy_->access(line)) {
                // The fill this line waited out installed it (counted
                // as a miss at classification; not re-counted here).
                resolveObligation(parked.request, eq.now(),
                                  sim::IoStatus::Ok);
            } else if (auto it = mshr_.find(line); it != mshr_.end()) {
                MshrEntry &entry = it->second;
                if (entry.waiters.size() >= params_.mshr_waiters) {
                    still.push_back(line);
                    continue;
                }
                ++stats_.mshr_piggybacks;
                if (entry.prefetch) {
                    entry.prefetch = false;
                    ++stats_.prefetch_useful;
                }
                entry.waiters.push_back(parked.request);
            } else if (mshr_.size() < params_.mshr_entries) {
                mshr_.emplace(line, MshrEntry{false, {parked.request}});
                fetch.push_back(line);
            } else {
                still.push_back(line);
            }
        }
        if (!fetch.empty())
            issueFill(eq, std::move(fetch), parked.tag);
        if (!still.empty()) {
            // Head still blocked: stop here, strict FIFO (no younger
            // parked request may overtake it into freed entries).
            parked.lines = std::move(still);
            return;
        }
        parked_.pop_front();
    }
}

void
FeatureCacheStore::announceGather(sim::EventQueue &eq,
                                  const std::vector<std::uint64_t> &addrs,
                                  unsigned entry_bytes)
{
    if (!prefetchEnabled() || addrs.empty())
        return;

    // First-touch order, deduplicated; residency probes via the
    // non-mutating contains() so an announcement perturbs neither
    // replacement state nor the hit/miss counters.
    std::unordered_set<std::uint64_t> seen;
    std::vector<std::uint64_t> fetch;
    for (std::uint64_t a : addrs) {
        std::uint64_t first = a / params_.line_bytes;
        std::uint64_t last =
            (a + (entry_bytes ? entry_bytes - 1 : 0)) / params_.line_bytes;
        for (std::uint64_t line = first; line <= last; ++line) {
            if (!seen.insert(line).second)
                continue;
            if (policy_->contains(line) || mshr_.count(line))
                continue;
            if (fetch.size() >= params_.prefetch_max_lines ||
                mshr_.size() >= params_.mshr_entries) {
                // The hoard path never parks: excess lines shed.
                ++stats_.prefetch_dropped;
                continue;
            }
            mshr_.emplace(line, MshrEntry{true, {}});
            ++stats_.prefetch_issued;
            fetch.push_back(line);
        }
    }
    if (!fetch.empty())
        issueFill(eq, std::move(fetch), kPrefetchTag);
}

void
FeatureCacheStore::announceBlocking(
    sim::Tick now, const std::vector<std::uint64_t> &addrs,
    unsigned entry_bytes)
{
    if (!prefetchEnabled() || addrs.empty())
        return;
    SS_ASSERT(mshr_.empty() && parked_.empty(),
              "blocking announce with fills in flight (the blocking "
              "adapters drain fully between calls)");
    prefetch_eq_.reset();
    prefetch_eq_.schedule(now, [this, &addrs, entry_bytes] {
        announceGather(prefetch_eq_, addrs, entry_bytes);
    });
    prefetch_eq_.run();
    SS_ASSERT(mshr_.empty(), "blocking announce left fills in flight");
}

std::vector<std::uint64_t>
FeatureCacheStore::residentLineIds() const
{
    std::vector<std::uint64_t> out;
    policy_->appendResident(out);
    std::sort(out.begin(), out.end());
    return out;
}

void
FeatureCacheStore::warmFill(const std::vector<std::uint64_t> &lines)
{
    for (std::uint64_t line : lines) {
        if (policy_->contains(line))
            continue;
        policy_->fill(line);
    }
}

sim::Tick
FeatureCacheStore::serviceRead(sim::Tick start, std::uint64_t addr,
                               std::uint64_t bytes)
{
    (void)start;
    (void)addr;
    (void)bytes;
    SS_FATAL("FeatureCacheStore has no service timing of its own; "
             "requests route through the decorated store");
}

void
FeatureCacheStore::resetStore()
{
    SS_ASSERT(mshr_.empty() && parked_.empty(),
              "feature-cache reset with fills in flight");
    inner_->reset();
    policy_->reset();
    stats_ = {};
    hoarded_.clear();
}

std::unique_ptr<EdgeStore>
wrapWithFeatureCache(std::unique_ptr<EdgeStore> store,
                     const core::BackendBuildContext &ctx)
{
    const core::SystemConfig &config = ctx.config;
    core::validateBackendKnobs(
        config, "cache.",
        {"cache.policy", "cache.capacity_fraction", "cache.line_kib",
         "cache.hit_ns", "cache.mshr.enabled", "cache.mshr.entries",
         "cache.mshr.waiters", "cache.prefetch.enabled",
         "cache.prefetch.lookahead", "cache.prefetch.max_lines"});

    double fraction = config.knobOr("cache.capacity_fraction", 0.0);
    if (!(fraction >= 0.0 && fraction <= 1.0))
        SS_FATAL("cache.capacity_fraction must be within [0, 1], got ",
                 fraction);
    if (fraction == 0.0)
        return store; // disabled: the store is untouched

    FeatureCacheParams params;
    params.policy =
        featureCachePolicyFromKnob(config.knobOr("cache.policy", 0));

    double line_kib = config.knobOr("cache.line_kib", 4);
    if (!(line_kib >= 1 && line_kib <= 4096))
        SS_FATAL("cache.line_kib must be within [1, 4096], got ",
                 line_kib);
    params.line_bytes =
        sim::KiB(core::requireIntegerKnob("cache.line_kib", line_kib));

    double hit_ns = config.knobOr("cache.hit_ns", 150);
    if (!(hit_ns >= 0))
        SS_FATAL("cache.hit_ns must be >= 0, got ", hit_ns);
    params.hit = sim::ns(hit_ns);

    double mshr_enabled = config.knobOr("cache.mshr.enabled", 1);
    if (mshr_enabled != 0 && mshr_enabled != 1)
        SS_FATAL("cache.mshr.enabled must be 0 or 1, got ", mshr_enabled);
    params.mshr_enabled = mshr_enabled != 0;

    double mshr_entries = config.knobOr("cache.mshr.entries", 64);
    if (!(mshr_entries >= 1 && mshr_entries <= 65536))
        SS_FATAL("cache.mshr.entries must be within [1, 65536], got ",
                 mshr_entries);
    params.mshr_entries = static_cast<std::uint32_t>(
        core::requireIntegerKnob("cache.mshr.entries", mshr_entries));

    double mshr_waiters = config.knobOr("cache.mshr.waiters", 16);
    if (!(mshr_waiters >= 1 && mshr_waiters <= 65536))
        SS_FATAL("cache.mshr.waiters must be within [1, 65536], got ",
                 mshr_waiters);
    params.mshr_waiters = static_cast<std::uint32_t>(
        core::requireIntegerKnob("cache.mshr.waiters", mshr_waiters));

    double prefetch_enabled = config.knobOr("cache.prefetch.enabled", 0);
    if (prefetch_enabled != 0 && prefetch_enabled != 1)
        SS_FATAL("cache.prefetch.enabled must be 0 or 1, got ",
                 prefetch_enabled);
    params.prefetch_enabled = prefetch_enabled != 0;
    if (params.prefetch_enabled && !params.mshr_enabled)
        SS_FATAL("cache.prefetch.enabled requires cache.mshr.enabled: "
                 "the hoard path tracks in-flight lines in the MSHR "
                 "table");

    double lookahead = config.knobOr("cache.prefetch.lookahead", 1);
    if (!(lookahead >= 1 && lookahead <= 64))
        SS_FATAL("cache.prefetch.lookahead must be within [1, 64], got ",
                 lookahead);
    params.prefetch_lookahead = static_cast<std::uint32_t>(
        core::requireIntegerKnob("cache.prefetch.lookahead", lookahead));

    double max_lines = config.knobOr("cache.prefetch.max_lines", 256);
    if (!(max_lines >= 1 && max_lines <= 1048576))
        SS_FATAL("cache.prefetch.max_lines must be within [1, 1048576], "
                 "got ",
                 max_lines);
    params.prefetch_max_lines = static_cast<std::uint32_t>(
        core::requireIntegerKnob("cache.prefetch.max_lines", max_lines));

    // Capacity scales off the edge-list footprint like the page-cache
    // and scratchpad budgets; once enabled it holds at least one line.
    std::uint64_t edge_bytes = ctx.workload.edgeListBytes(config.layout);
    auto want = static_cast<std::uint64_t>(
        fraction * static_cast<double>(edge_bytes));
    params.capacity_bytes = std::max(want, params.line_bytes);

    if (params.policy == FeatureCachePolicy::DegreePin)
        params.pinned_lines = degreePinnedLines(
            ctx.workload.graph, config.layout, params.line_bytes,
            params.capacityLines());

    return std::make_unique<FeatureCacheStore>(std::move(store),
                                               std::move(params));
}

} // namespace smartsage::host
