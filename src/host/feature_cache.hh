/**
 * @file
 * Policy-pluggable host-side feature cache over the async I/O path.
 *
 * Where neighbor-feature reads land in the memory/storage hierarchy is
 * the paper's central tension; a host-DRAM feature/page cache in front
 * of *any* edge store is the missing axis between the DRAM oracle and
 * the device paths. `FeatureCacheStore` is a decorator over an owned
 * inner `EdgeStore`: requests whose touched cache lines are all
 * resident complete at a flat DRAM-tier latency *without entering the
 * host I/O channel*; anything else flows through to the inner store
 * unchanged and fills the missed lines when the completion fires.
 * Because the decorator speaks the async submit/complete port
 * (io_path.hh) and the blocking adapters drain through that same port,
 * every registered storage backend — DRAM, mmap, direct-io, PMEM,
 * sharded, tiered — gains the cache for free, in both the throughput
 * sweeps and the open-loop serving harness.
 *
 * The miss path is concurrency-aware. Per-line miss-status holding
 * registers (MSHRs) track lines whose fill is in flight: a secondary
 * miss on such a line registers as a waiter and completes when the one
 * fill returns instead of issuing a duplicate read through the host
 * I/O channel, and the touched lines of one gather are deduplicated so
 * each missing line is issued exactly once (gather coalescing). Both
 * are bounded (`cache.mshr.entries` / `cache.mshr.waiters`); requests
 * that cannot take an entry park in FIFO order and retry as fills
 * complete, with the stall accounted. A hoard-style prefetch engine
 * rides the same table: announced gather lists (the sampler's
 * materialized batch, or a serving request a configurable lookahead
 * ahead of demand) issue low-priority fills through the same async
 * port, so every line is in exactly one of three residency states —
 * resident, in-flight-demand, or in-flight-prefetch — and a demand
 * touch on an in-flight prefetch upgrades it in place.
 *
 * Replacement is pluggable (`CacheReplacementPolicy`): exact LRU,
 * CLOCK (second chance), LFU-lite (saturating frequency, FIFO
 * tiebreak), and a degree-aware static-pin policy that pins the
 * edge-list lines of the highest-degree nodes (fed by CsrGraph degree,
 * the Fig 13 skew) and never replaces — the Ginex-style static regime
 * against the GNNLab-style dynamic ones.
 *
 * Configured through the backend-knob system: `cache.policy`,
 * `cache.capacity_fraction`, `cache.line_kib`, `cache.hit_ns`, plus
 * the miss-path knobs `cache.mshr.*` (MSHRs + coalescing, default on)
 * and `cache.prefetch.*` (hoard prefetch, default off). The default
 * capacity fraction is 0, which builds no decorator at all, so
 * existing design points are bit-identical with the cache disabled.
 */

#ifndef SMARTSAGE_HOST_FEATURE_CACHE_HH
#define SMARTSAGE_HOST_FEATURE_CACHE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/event_queue.hh"

#include "io_path.hh"
#include "sim/types.hh"

namespace smartsage::graph
{
class CsrGraph;
struct EdgeLayout;
} // namespace smartsage::graph

namespace smartsage::core
{
struct BackendBuildContext; // core/backend.hh
} // namespace smartsage::core

namespace smartsage::host
{

/** Replacement policy selector (the `cache.policy` knob values). */
enum class FeatureCachePolicy
{
    Lru = 0,       //!< exact least-recently-used
    Clock = 1,     //!< second-chance clock sweep
    LfuLite = 2,   //!< saturating-frequency LFU, FIFO tiebreak
    DegreePin = 3, //!< static pin of the highest-degree nodes' lines
};

/** Display name of a policy ("lru", "clock", "lfu-lite", "degree-pin"). */
const std::string &featureCachePolicyName(FeatureCachePolicy policy);

/** Decode the `cache.policy` knob; non-integral or out-of-range values
 *  are fatal, listing the valid ids. */
FeatureCachePolicy featureCachePolicyFromKnob(double value);

/** Resolved cache shape of one FeatureCacheStore. */
struct FeatureCacheParams
{
    FeatureCachePolicy policy = FeatureCachePolicy::Lru;
    /** Total capacity; 0 builds a pass-through cache that never hits
     *  (useful for pinning byte-identity in tests). */
    std::uint64_t capacity_bytes = 0;
    std::uint64_t line_bytes = sim::KiB(4); //!< fill/lookup granularity
    sim::Tick hit = sim::ns(150);           //!< DRAM-tier hit latency
    /** DegreePin only: the pinned line set, hottest nodes first. */
    std::vector<std::uint64_t> pinned_lines;

    /** MSHRs + gather coalescing on the miss path (`cache.mshr.*`).
     *  Disabled reproduces the pre-MSHR decorator exactly: the whole
     *  request forwards to the inner store and concurrent same-line
     *  misses each pay full storage latency. */
    bool mshr_enabled = true;
    std::uint32_t mshr_entries = 64; //!< max distinct lines in flight
    std::uint32_t mshr_waiters = 16; //!< max coalesced requests per line

    /** Hoard-style prefetch of announced gathers (`cache.prefetch.*`);
     *  requires mshr_enabled (residency state lives in the MSHR
     *  table). Default off so default artifacts stay byte-identical. */
    bool prefetch_enabled = false;
    /** Serving requests announced ahead of demand (classic path). */
    std::uint32_t prefetch_lookahead = 1;
    /** Line budget of one announced batch; the rest shed. */
    std::uint32_t prefetch_max_lines = 256;

    /** Capacity in whole lines (0 when disabled). */
    std::uint64_t capacityLines() const
    {
        return capacity_bytes / line_bytes;
    }
};

/**
 * Replacement decisions over 64-bit line ids. Residency bookkeeping
 * and hit/miss/eviction counting live in the store; policies only
 * answer "is it resident" and "what gets evicted".
 */
class CacheReplacementPolicy
{
  public:
    virtual ~CacheReplacementPolicy() = default;

    /** Touch @p line, updating recency/frequency state.
     *  @return true when resident */
    virtual bool access(std::uint64_t line) = 0;

    /** Non-mutating residency probe (fill-time idempotence guard). */
    virtual bool contains(std::uint64_t line) const = 0;

    /**
     * Install @p line after its miss completed, evicting a victim when
     * full. @pre !contains(line) @return true when a victim was
     * evicted, storing its id through @p victim when non-null (the
     * store uses it to retire hoard bookkeeping with the line).
     */
    virtual bool fill(std::uint64_t line,
                      std::uint64_t *victim = nullptr) = 0;

    /** Resident line count. */
    virtual std::uint64_t size() const = 0;

    /** Drop all residency and recency state. */
    virtual void reset() = 0;

    /**
     * Append every resident line id to @p out, in a deterministic
     * policy-defined order. Checkpointing uses this to persist the
     * warm set; the store sorts before serializing, so only residency
     * (not recency) must be stable.
     */
    virtual void appendResident(std::vector<std::uint64_t> &out) const = 0;
};

/** Build the policy implementation for @p params. */
std::unique_ptr<CacheReplacementPolicy>
makeCacheReplacementPolicy(const FeatureCacheParams &params);

/**
 * The pinned-line set of the degree-aware static policy: walk nodes by
 * descending degree (node id breaks ties) and pin the lines their
 * edge-list rows span, until @p max_lines are taken. Deterministic for
 * a fixed graph/layout/shape.
 */
std::vector<std::uint64_t>
degreePinnedLines(const graph::CsrGraph &graph,
                  const graph::EdgeLayout &layout,
                  std::uint64_t line_bytes, std::uint64_t max_lines);

/** Lifetime counters of one FeatureCacheStore (line granularity). */
struct FeatureCacheStats
{
    std::uint64_t hits = 0;      //!< line touches found resident
    std::uint64_t misses = 0;    //!< line touches that went to storage
    std::uint64_t evictions = 0; //!< victims replaced by fills
    /** Demand lines whose fill failed; counted once per line per fill
     *  no matter how many coalesced waiters shared it, and never
     *  installed (no garbage). */
    std::uint64_t failed_fills = 0;

    /** Miss touches that attached to an already-in-flight fill instead
     *  of issuing a duplicate read (MSHR secondary misses). */
    std::uint64_t mshr_piggybacks = 0;
    /** Duplicate missing-line touches folded within one gather. */
    std::uint64_t gather_dedup = 0;
    /** Requests parked because the MSHR table or a line's waiter list
     *  was full (counted once per park event). */
    std::uint64_t mshr_stalls = 0;

    std::uint64_t prefetch_issued = 0; //!< lines fetched by the hoard
    /** Prefetched lines a demand touch later wanted: an in-flight
     *  prefetch upgraded through the MSHR, or the first demand hit on
     *  a hoarded resident line. */
    std::uint64_t prefetch_useful = 0;
    /** Prefetch fill lines shed on a failed read (silent: no
     *  failed_fills, nothing installed). */
    std::uint64_t prefetch_failed = 0;
    /** Announced lines dropped: per-announce budget exhausted or no
     *  MSHR entry free (prefetch never parks). */
    std::uint64_t prefetch_dropped = 0;

    double hitRate() const
    {
        std::uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) / total : 0.0;
    }

    /** Fraction of issued prefetch lines that turned out useful. */
    double prefetchHitRate() const
    {
        return prefetch_issued ? static_cast<double>(prefetch_useful) /
                                     static_cast<double>(prefetch_issued)
                               : 0.0;
    }
};

/** Capacity-bounded feature cache decorating any EdgeStore. */
class FeatureCacheStore : public EdgeStore
{
  public:
    /** @param inner the decorated store (owned); its name, channel,
     *  and service timing carry every miss */
    FeatureCacheStore(std::unique_ptr<EdgeStore> inner,
                      FeatureCacheParams params);

    const std::string &name() const override { return name_; }

    /** All-lines-resident reads complete at `hit` ticks, bypassing the
     *  host I/O channel. With MSHRs enabled (the default) the unique
     *  missing lines are issued to the inner store as one line-granular
     *  gather, lines already in flight attach as waiters, and the
     *  completion fires when the last obligated fill lands; with
     *  `cache.mshr.enabled = 0` (or a zero-capacity cache) any miss
     *  forwards the request (and its dispatch tag) unchanged. */
    void submitRead(sim::EventQueue &eq, std::uint64_t addr,
                    std::uint64_t bytes, sim::IoCompletion done,
                    const sim::DispatchTag &tag = {}) override;
    void submitGather(sim::EventQueue &eq,
                      const std::vector<std::uint64_t> &addrs,
                      unsigned entry_bytes, sim::IoCompletion done,
                      const sim::DispatchTag &tag = {}) override;

    /** Misses are the only channel users: expose the inner channel so
     *  serving stats keep meaning "requests that hit storage". */
    sim::StorageChannel &ioChannel() override
    {
        return inner_->ioChannel();
    }
    const sim::StorageChannel &ioChannel() const override
    {
        return inner_->ioChannel();
    }

    EdgeStore &inner() { return *inner_; }
    const EdgeStore &inner() const { return *inner_; }

    const FeatureCacheParams &params() const { return params_; }
    const FeatureCacheStats &stats() const { return stats_; }
    double hitRate() const { return stats_.hitRate(); }
    /** Lines currently resident. */
    std::uint64_t residentLines() const { return policy_->size(); }

    /** Whether the hoard prefetcher accepts announcements (prefetch
     *  knob on, a real capacity, and the MSHR table to ride). */
    bool prefetchEnabled() const
    {
        return params_.prefetch_enabled && params_.mshr_enabled &&
               params_.capacityLines() > 0;
    }

    /**
     * Announce an upcoming gather to the hoard prefetcher: issue
     * low-priority fills for its not-yet-resident, not-in-flight lines
     * through the inner async port, up to `prefetch_max_lines` and the
     * free MSHR entries (excess lines shed, never parked). Residency
     * probes are non-mutating, so an announcement perturbs no
     * replacement state and no hit/miss counters. No-op unless
     * prefetchEnabled().
     */
    void announceGather(sim::EventQueue &eq,
                        const std::vector<std::uint64_t> &addrs,
                        unsigned entry_bytes);

    /**
     * Blocking-adapter flavor of announceGather for the pipeline
     * replay: drains the prefetch fills on a private queue starting at
     * @p now, so the fills occupy the inner store's busy-until
     * timelines (demand reads issued afterwards queue behind them —
     * the prefetch cost is modeled, not free). @pre no fill in flight
     * (the blocking adapters fully drain between calls).
     */
    void announceBlocking(sim::Tick now,
                          const std::vector<std::uint64_t> &addrs,
                          unsigned entry_bytes);

    /** Sorted ids of every resident line (checkpoint warm set). Fills
     *  still in flight — demand or prefetch — are deliberately absent:
     *  residency comes from the replacement policy alone, so a
     *  checkpoint can never leak in-flight state. */
    std::vector<std::uint64_t> residentLineIds() const;

    /**
     * Re-install checkpointed lines after a restart without touching
     * the hit/miss/eviction counters: a warm restore is bookkeeping,
     * not traffic. Lines already resident are skipped; a smaller
     * restored capacity simply evicts per policy while filling.
     */
    void warmFill(const std::vector<std::uint64_t> &lines);

  protected:
    /** Never reached: the decorator overrides the whole async port and
     *  owns no service timing of its own. */
    sim::Tick serviceRead(sim::Tick start, std::uint64_t addr,
                          std::uint64_t bytes) override;

    void resetStore() override;

  private:
    /**
     * One demand request with outstanding miss obligations. Each of
     * its unique missing lines resolves exactly once — by its own
     * fill, a piggybacked fill, or a parked retry finding the line
     * resident — and the completion fires when the last one lands,
     * with the worst IoStatus seen and the max finish tick.
     */
    struct PendingRequest
    {
        sim::IoCompletion done;
        std::size_t remaining = 0;
        sim::Tick finish = 0;
        sim::IoStatus status = sim::IoStatus::Ok;
    };

    /** Miss-status holding register of one in-flight line. */
    struct MshrEntry
    {
        bool prefetch = false; //!< in-flight-prefetch vs -demand
        std::vector<std::shared_ptr<PendingRequest>> waiters;
    };

    /** A request whose lines could not all take MSHR entries; retried
     *  in FIFO order as fills complete. */
    struct ParkedRequest
    {
        std::shared_ptr<PendingRequest> request;
        std::vector<std::uint64_t> lines; //!< still-deferred lines
        sim::DispatchTag tag;
    };

    /**
     * Classify the lines of [@p addr, @p addr + @p bytes) through the
     * policy, appending deduplicated missing lines to @p missing.
     * Counts one hit/miss per line touch.
     */
    void classifyRange(std::uint64_t addr, std::uint64_t bytes,
                       std::vector<std::uint64_t> &missing);

    /** Install @p lines after their miss completed (idempotent: lines
     *  filled by a concurrent request are skipped). Legacy
     *  (mshr-disabled) fill path. */
    void fillLines(const std::vector<std::uint64_t> &lines);

    /** Schedule @p done at eq.now() + hit (channel bypass). */
    void completeHit(sim::EventQueue &eq, sim::IoCompletion done);

    /** Legacy miss path: forward the request unchanged, fill missing
     *  lines when the completion fires (`cache.mshr.enabled = 0`). */
    void forwardRead(sim::EventQueue &eq, std::uint64_t addr,
                     std::uint64_t bytes,
                     std::vector<std::uint64_t> missing,
                     sim::IoCompletion done, const sim::DispatchTag &tag);
    void forwardGather(sim::EventQueue &eq,
                       const std::vector<std::uint64_t> &addrs,
                       unsigned entry_bytes,
                       std::vector<std::uint64_t> missing,
                       sim::IoCompletion done,
                       const sim::DispatchTag &tag);

    /** Whether the MSHR machinery handles misses (knob on and a real
     *  capacity; a zero-capacity cache stays a pure pass-through). */
    bool mshrActive() const
    {
        return params_.mshr_enabled && params_.capacityLines() > 0;
    }

    /** MSHR miss path shared by submitRead/submitGather: attach each
     *  unique missing line to an in-flight fill, issue the rest as one
     *  coalesced line gather, park what fits nowhere. */
    void processMisses(sim::EventQueue &eq,
                       std::vector<std::uint64_t> unique_missing,
                       sim::IoCompletion done,
                       const sim::DispatchTag &tag);

    /** Issue one coalesced line-granular fill for @p lines. */
    void issueFill(sim::EventQueue &eq, std::vector<std::uint64_t> lines,
                   const sim::DispatchTag &tag);

    /** Retire the MSHR entries of one completed fill: install (demand
     *  or hoard) or account the failure, resolve every waiter, then
     *  retry parked requests against the freed entries. */
    void completeFill(sim::EventQueue &eq,
                      const std::vector<std::uint64_t> &lines,
                      sim::Tick finish, sim::IoStatus status);

    /** Install one filled line, retiring hoard bookkeeping with the
     *  victim; @p prefetched lines enter the hoarded set. */
    void installLine(std::uint64_t line, bool prefetched);

    /** Resolve one line obligation of @p request. */
    void resolveObligation(const std::shared_ptr<PendingRequest> &request,
                           sim::Tick finish, sim::IoStatus status);

    /** Retry parked requests in strict FIFO order; stops at the first
     *  request that still cannot place all its lines. */
    void retryParked(sim::EventQueue &eq);

    std::string name_;
    std::unique_ptr<EdgeStore> inner_;
    FeatureCacheParams params_;
    std::unique_ptr<CacheReplacementPolicy> policy_;
    FeatureCacheStats stats_;

    /** In-flight lines (demand and prefetch). Never iterated for
     *  order-dependent work — completions walk their own line vectors
     *  and waiter lists in attach order, keeping runs deterministic. */
    std::unordered_map<std::uint64_t, MshrEntry> mshr_;
    std::deque<ParkedRequest> parked_;
    /** Prefetch-installed lines no demand touch has wanted yet; the
     *  first demand hit counts prefetch_useful and retires the entry. */
    std::unordered_set<std::uint64_t> hoarded_;
    /** Private drain queue of announceBlocking. */
    sim::EventQueue prefetch_eq_;
};

/**
 * Decorate @p store with a FeatureCacheStore when the build context's
 * `cache.*` knobs enable one (`cache.capacity_fraction` > 0; capacity
 * scales off the workload's edge-list footprint like every other cache
 * budget). With the default fraction of 0 the store is returned
 * untouched, so backends calling this wrapper stay bit-identical to
 * their pre-cache behavior. Unknown or out-of-range `cache.*` knobs
 * are fatal.
 */
std::unique_ptr<EdgeStore>
wrapWithFeatureCache(std::unique_ptr<EdgeStore> store,
                     const core::BackendBuildContext &ctx);

} // namespace smartsage::host

#endif // SMARTSAGE_HOST_FEATURE_CACHE_HH
