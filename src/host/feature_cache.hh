/**
 * @file
 * Policy-pluggable host-side feature cache over the async I/O path.
 *
 * Where neighbor-feature reads land in the memory/storage hierarchy is
 * the paper's central tension; a host-DRAM feature/page cache in front
 * of *any* edge store is the missing axis between the DRAM oracle and
 * the device paths. `FeatureCacheStore` is a decorator over an owned
 * inner `EdgeStore`: requests whose touched cache lines are all
 * resident complete at a flat DRAM-tier latency *without entering the
 * host I/O channel*; anything else flows through to the inner store
 * unchanged and fills the missed lines when the completion fires.
 * Because the decorator speaks the async submit/complete port
 * (io_path.hh) and the blocking adapters drain through that same port,
 * every registered storage backend — DRAM, mmap, direct-io, PMEM,
 * sharded, tiered — gains the cache for free, in both the throughput
 * sweeps and the open-loop serving harness.
 *
 * Replacement is pluggable (`CacheReplacementPolicy`): exact LRU,
 * CLOCK (second chance), LFU-lite (saturating frequency, FIFO
 * tiebreak), and a degree-aware static-pin policy that pins the
 * edge-list lines of the highest-degree nodes (fed by CsrGraph degree,
 * the Fig 13 skew) and never replaces — the Ginex-style static regime
 * against the GNNLab-style dynamic ones.
 *
 * Configured through the backend-knob system: `cache.policy`,
 * `cache.capacity_fraction`, `cache.line_kib`, `cache.hit_ns`. The
 * default capacity fraction is 0, which builds no decorator at all, so
 * existing design points are bit-identical with the cache disabled.
 */

#ifndef SMARTSAGE_HOST_FEATURE_CACHE_HH
#define SMARTSAGE_HOST_FEATURE_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io_path.hh"
#include "sim/types.hh"

namespace smartsage::graph
{
class CsrGraph;
struct EdgeLayout;
} // namespace smartsage::graph

namespace smartsage::core
{
struct BackendBuildContext; // core/backend.hh
} // namespace smartsage::core

namespace smartsage::host
{

/** Replacement policy selector (the `cache.policy` knob values). */
enum class FeatureCachePolicy
{
    Lru = 0,       //!< exact least-recently-used
    Clock = 1,     //!< second-chance clock sweep
    LfuLite = 2,   //!< saturating-frequency LFU, FIFO tiebreak
    DegreePin = 3, //!< static pin of the highest-degree nodes' lines
};

/** Display name of a policy ("lru", "clock", "lfu-lite", "degree-pin"). */
const std::string &featureCachePolicyName(FeatureCachePolicy policy);

/** Decode the `cache.policy` knob; non-integral or out-of-range values
 *  are fatal, listing the valid ids. */
FeatureCachePolicy featureCachePolicyFromKnob(double value);

/** Resolved cache shape of one FeatureCacheStore. */
struct FeatureCacheParams
{
    FeatureCachePolicy policy = FeatureCachePolicy::Lru;
    /** Total capacity; 0 builds a pass-through cache that never hits
     *  (useful for pinning byte-identity in tests). */
    std::uint64_t capacity_bytes = 0;
    std::uint64_t line_bytes = sim::KiB(4); //!< fill/lookup granularity
    sim::Tick hit = sim::ns(150);           //!< DRAM-tier hit latency
    /** DegreePin only: the pinned line set, hottest nodes first. */
    std::vector<std::uint64_t> pinned_lines;

    /** Capacity in whole lines (0 when disabled). */
    std::uint64_t capacityLines() const
    {
        return capacity_bytes / line_bytes;
    }
};

/**
 * Replacement decisions over 64-bit line ids. Residency bookkeeping
 * and hit/miss/eviction counting live in the store; policies only
 * answer "is it resident" and "what gets evicted".
 */
class CacheReplacementPolicy
{
  public:
    virtual ~CacheReplacementPolicy() = default;

    /** Touch @p line, updating recency/frequency state.
     *  @return true when resident */
    virtual bool access(std::uint64_t line) = 0;

    /** Non-mutating residency probe (fill-time idempotence guard). */
    virtual bool contains(std::uint64_t line) const = 0;

    /**
     * Install @p line after its miss completed, evicting a victim when
     * full. @pre !contains(line) @return true when a victim was evicted
     */
    virtual bool fill(std::uint64_t line) = 0;

    /** Resident line count. */
    virtual std::uint64_t size() const = 0;

    /** Drop all residency and recency state. */
    virtual void reset() = 0;

    /**
     * Append every resident line id to @p out, in a deterministic
     * policy-defined order. Checkpointing uses this to persist the
     * warm set; the store sorts before serializing, so only residency
     * (not recency) must be stable.
     */
    virtual void appendResident(std::vector<std::uint64_t> &out) const = 0;
};

/** Build the policy implementation for @p params. */
std::unique_ptr<CacheReplacementPolicy>
makeCacheReplacementPolicy(const FeatureCacheParams &params);

/**
 * The pinned-line set of the degree-aware static policy: walk nodes by
 * descending degree (node id breaks ties) and pin the lines their
 * edge-list rows span, until @p max_lines are taken. Deterministic for
 * a fixed graph/layout/shape.
 */
std::vector<std::uint64_t>
degreePinnedLines(const graph::CsrGraph &graph,
                  const graph::EdgeLayout &layout,
                  std::uint64_t line_bytes, std::uint64_t max_lines);

/** Lifetime counters of one FeatureCacheStore (line granularity). */
struct FeatureCacheStats
{
    std::uint64_t hits = 0;      //!< line touches found resident
    std::uint64_t misses = 0;    //!< line touches that went to storage
    std::uint64_t evictions = 0; //!< victims replaced by fills
    /** Miss lines whose read failed; never installed (no garbage). */
    std::uint64_t failed_fills = 0;

    double hitRate() const
    {
        std::uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) / total : 0.0;
    }
};

/** Capacity-bounded feature cache decorating any EdgeStore. */
class FeatureCacheStore : public EdgeStore
{
  public:
    /** @param inner the decorated store (owned); its name, channel,
     *  and service timing carry every miss */
    FeatureCacheStore(std::unique_ptr<EdgeStore> inner,
                      FeatureCacheParams params);

    const std::string &name() const override { return name_; }

    /** All-lines-resident reads complete at `hit` ticks, bypassing the
     *  host I/O channel; any miss forwards the request (and its
     *  dispatch tag) unchanged. */
    void submitRead(sim::EventQueue &eq, std::uint64_t addr,
                    std::uint64_t bytes, sim::IoCompletion done,
                    const sim::DispatchTag &tag = {}) override;
    void submitGather(sim::EventQueue &eq,
                      const std::vector<std::uint64_t> &addrs,
                      unsigned entry_bytes, sim::IoCompletion done,
                      const sim::DispatchTag &tag = {}) override;

    /** Misses are the only channel users: expose the inner channel so
     *  serving stats keep meaning "requests that hit storage". */
    sim::StorageChannel &ioChannel() override
    {
        return inner_->ioChannel();
    }
    const sim::StorageChannel &ioChannel() const override
    {
        return inner_->ioChannel();
    }

    EdgeStore &inner() { return *inner_; }
    const EdgeStore &inner() const { return *inner_; }

    const FeatureCacheParams &params() const { return params_; }
    const FeatureCacheStats &stats() const { return stats_; }
    double hitRate() const { return stats_.hitRate(); }
    /** Lines currently resident. */
    std::uint64_t residentLines() const { return policy_->size(); }

    /** Sorted ids of every resident line (checkpoint warm set). */
    std::vector<std::uint64_t> residentLineIds() const;

    /**
     * Re-install checkpointed lines after a restart without touching
     * the hit/miss/eviction counters: a warm restore is bookkeeping,
     * not traffic. Lines already resident are skipped; a smaller
     * restored capacity simply evicts per policy while filling.
     */
    void warmFill(const std::vector<std::uint64_t> &lines);

  protected:
    /** Never reached: the decorator overrides the whole async port and
     *  owns no service timing of its own. */
    sim::Tick serviceRead(sim::Tick start, std::uint64_t addr,
                          std::uint64_t bytes) override;

    void resetStore() override;

  private:
    /**
     * Classify the lines of [@p addr, @p addr + @p bytes) through the
     * policy, appending deduplicated missing lines to @p missing.
     * Counts one hit/miss per line touch.
     */
    void classifyRange(std::uint64_t addr, std::uint64_t bytes,
                       std::vector<std::uint64_t> &missing);

    /** Install @p lines after their miss completed (idempotent: lines
     *  filled by a concurrent request are skipped). */
    void fillLines(const std::vector<std::uint64_t> &lines);

    /** Schedule @p done at eq.now() + hit (channel bypass). */
    void completeHit(sim::EventQueue &eq, sim::IoCompletion done);

    std::string name_;
    std::unique_ptr<EdgeStore> inner_;
    FeatureCacheParams params_;
    std::unique_ptr<CacheReplacementPolicy> policy_;
    FeatureCacheStats stats_;
};

/**
 * Decorate @p store with a FeatureCacheStore when the build context's
 * `cache.*` knobs enable one (`cache.capacity_fraction` > 0; capacity
 * scales off the workload's edge-list footprint like every other cache
 * budget). With the default fraction of 0 the store is returned
 * untouched, so backends calling this wrapper stay bit-identical to
 * their pre-cache behavior. Unknown or out-of-range `cache.*` knobs
 * are fatal.
 */
std::unique_ptr<EdgeStore>
wrapWithFeatureCache(std::unique_ptr<EdgeStore> store,
                     const core::BackendBuildContext &ctx);

} // namespace smartsage::host

#endif // SMARTSAGE_HOST_FEATURE_CACHE_HH
