#include "tiered_store.hh"

#include <algorithm>

#include "core/backend.hh"
#include "core/report.hh"
#include "feature_cache.hh"
#include "sim/logging.hh"
#include "ssd/ssd_device.hh"

namespace smartsage::host
{

namespace
{

/** Hot-tier capacity: the page-cache budget, floored to one set. */
std::uint64_t
hotCapacity(const HostConfig &config, const TieredStoreParams &params)
{
    std::uint64_t floor_bytes =
        params.hot_line_bytes * config.page_cache_ways;
    return std::max(config.page_cache_bytes, floor_bytes);
}

/**
 * The inner direct-I/O store is driven through its *blocking* adapters
 * from inside the tiered service, so host faults must fire once, at
 * the outer channel — an inner abandon would be fatal with nowhere to
 * retry. Strip the fault plan and retry policy off the cold tier.
 */
HostConfig
coldConfig(const HostConfig &config)
{
    HostConfig cold = config;
    cold.fault = sim::FaultPlan{};
    cold.retry = sim::RetryPolicy{};
    return cold;
}

} // namespace

TieredEdgeStore::TieredEdgeStore(const HostConfig &config,
                                 ssd::SsdDevice &ssd,
                                 const TieredStoreParams &params)
    : EdgeStore(config.io_queue_depth, config.fault, config.retry),
      params_(params),
      hot_(hotCapacity(config, params), params.hot_line_bytes,
           config.page_cache_ways),
      cold_(coldConfig(config), ssd)
{
}

sim::Tick
TieredEdgeStore::serviceRead(sim::Tick start, std::uint64_t addr,
                             std::uint64_t bytes)
{
    SS_ASSERT(bytes > 0, "zero-length tiered read");
    // Install-on-miss: a miss is fetched through the cold path and
    // then resides in the DRAM tier, so the hot set self-tunes to the
    // sampler's reuse pattern.
    std::uint64_t first = hot_.lineOf(addr);
    std::uint64_t last = hot_.lineOf(addr + bytes - 1);
    bool all_hot = true;
    for (std::uint64_t line = first; line <= last; ++line)
        all_hot = hot_.access(line) && all_hot;
    if (all_hot)
        return start + params_.hot_hit;
    return std::max(start + params_.hot_hit,
                    cold_.read(start, addr, bytes));
}

sim::Tick
TieredEdgeStore::serviceGather(sim::Tick start,
                               const std::vector<std::uint64_t> &addrs,
                               unsigned entry_bytes)
{
    if (addrs.empty())
        return start;

    cold_addrs_.clear();
    bool any_hot = false;
    for (std::uint64_t a : addrs) {
        std::uint64_t first = hot_.lineOf(a);
        std::uint64_t last = hot_.lineOf(a + entry_bytes - 1);
        bool all_hot = true;
        for (std::uint64_t line = first; line <= last; ++line)
            all_hot = hot_.access(line) && all_hot;
        if (all_hot)
            any_hot = true;
        else
            cold_addrs_.push_back(a);
    }

    sim::Tick done = start;
    if (any_hot)
        done = std::max(done, start + params_.hot_hit);
    if (!cold_addrs_.empty())
        done = std::max(
            done, cold_.readGather(start, cold_addrs_, entry_bytes));
    return done;
}

void
TieredEdgeStore::resetStore()
{
    hot_.reset();
    cold_.reset();
}

// ------------------------------------------------ backend registration

namespace
{

TieredStoreParams
paramsFrom(const core::SystemConfig &config)
{
    core::validateBackendKnobs(
        config, "tiered.",
        {"tiered.hot_line_kib", "tiered.hot_hit_ns"});

    TieredStoreParams params;
    double line_kib = config.knobOr("tiered.hot_line_kib", 64);
    if (!(line_kib >= 1 && line_kib <= 4096))
        SS_FATAL("tiered.hot_line_kib must be within [1, 4096], got ",
                 line_kib);
    double hit_ns = config.knobOr("tiered.hot_hit_ns", 150);
    if (!(hit_ns >= 0))
        SS_FATAL("tiered.hot_hit_ns must be >= 0, got ", hit_ns);
    params.hot_line_bytes = sim::KiB(
        core::requireIntegerKnob("tiered.hot_line_kib", line_kib));
    params.hot_hit = sim::ns(hit_ns);
    return params;
}

/** Host-CPU sampling over the tiered store, SSD below. */
class TieredInstance : public core::BackendInstance
{
  public:
    TieredInstance(const core::BackendBuildContext &ctx,
                   std::unique_ptr<ssd::SsdDevice> ssd,
                   std::unique_ptr<TieredEdgeStore> store)
        : ssd_(std::move(ssd)), tiered_(store.get()),
          wrapped_(wrapWithFeatureCache(std::move(store), ctx)),
          producer_(ctx.workload.graph, ctx.sampler, *wrapped_,
                    ctx.config.host, ctx.config.layout)
    {
    }

    pipeline::SubgraphProducer &producer() override { return producer_; }
    ssd::SsdDevice *ssd() override { return ssd_.get(); }
    host::EdgeStore *edgeStore() override { return wrapped_.get(); }

    void
    addMetrics(const core::MetricSink &add) const override
    {
        core::addSsdMetrics(ssd_.get(), add);
        add("hot_hit_frac", tiered_->hotHitRate());
    }

    std::string
    notes() const override
    {
        return "hot " + core::fmtPct(tiered_->hotHitRate()) +
               ", scratchpad " +
               core::fmtPct(tiered_->scratchpadHitRate()) +
               ", submits " + std::to_string(tiered_->submits());
    }

    void
    addStats(const core::StatSink &add) const override
    {
        core::addSsdStats(ssd_.get(), add);
        add("host.hot_cache.hit_rate", tiered_->hotHitRate(),
            "DRAM hot-tier hit rate");
        add("host.scratchpad.hit_rate", tiered_->scratchpadHitRate(),
            "user scratchpad hit rate");
        add("host.direct_io.submits",
            static_cast<double>(tiered_->submits()),
            "O_DIRECT submissions");
    }

  private:
    std::unique_ptr<ssd::SsdDevice> ssd_;
    TieredEdgeStore *tiered_; //!< undecorated store (typed counters)
    std::unique_ptr<host::EdgeStore> wrapped_;
    pipeline::CpuProducer producer_;
};

std::unique_ptr<core::BackendInstance>
buildTiered(const core::BackendBuildContext &ctx)
{
    auto ssd = std::make_unique<ssd::SsdDevice>(ctx.config.ssd);
    auto store = std::make_unique<TieredEdgeStore>(
        ctx.config.host, *ssd, paramsFrom(ctx.config));
    return std::make_unique<TieredInstance>(ctx, std::move(ssd),
                                            std::move(store));
}

const core::BackendRegistrar reg_tiered{
    std::make_unique<core::SimpleBackend>(
        "tiered-hybrid", "Tiered-Hybrid",
        "host-DRAM hot cache in front of the direct-I/O SSD path, "
        "capacity set by page_cache_fraction",
        core::BackendCaps{true, false, core::EdgeStoreKind::Tiered,
                          {"host.", "ssd.", "tiered.", "cache."}},
        buildTiered)};

} // namespace

} // namespace smartsage::host
