/**
 * @file
 * Last-level-cache + DRAM timing model for the in-memory (DRAM oracle)
 * design point, and the measurement vehicle for Fig 5 (LLC miss rate,
 * DRAM bandwidth utilization during neighbor sampling).
 */

#ifndef SMARTSAGE_HOST_LLC_HH
#define SMARTSAGE_HOST_LLC_HH

#include <cstdint>

#include "config.hh"
#include "sim/set_assoc.hh"
#include "sim/types.hh"

namespace smartsage::host
{

/** LLC directory plus DRAM latency/bandwidth accounting. */
class LlcModel
{
  public:
    explicit LlcModel(const HostConfig &config);

    /**
     * One CPU load of @p bytes at @p addr.
     * @return access latency (LLC hit or DRAM fill)
     */
    sim::Tick access(std::uint64_t addr, std::uint64_t bytes);

    double missRate() const { return cache_.missRate(); }
    std::uint64_t hits() const { return cache_.hits(); }
    std::uint64_t misses() const { return cache_.misses(); }

    /** Bytes filled from DRAM (misses x line). */
    std::uint64_t dramBytes() const { return dram_bytes_; }

    /**
     * Achieved DRAM bandwidth as a fraction of peak, for @p workers
     * concurrent sampling workers each sustaining the configured
     * memory-level parallelism (Fig 5 right axis).
     */
    double dramBwUtilization(unsigned workers) const;

    void reset();

  private:
    HostConfig config_;
    sim::SetAssocLru cache_;
    std::uint64_t dram_bytes_ = 0;
    std::uint64_t accesses_ = 0;
    sim::Tick total_latency_ = 0;
};

} // namespace smartsage::host

#endif // SMARTSAGE_HOST_LLC_HH
