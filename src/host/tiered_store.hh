/**
 * @file
 * Tiered-hybrid edge store: a host-DRAM hot cache in front of the
 * direct-I/O SSD path.
 *
 * The runtime pins the hottest edge-list lines in a DRAM tier sized by
 * the existing `page_cache_fraction` knob (the DRAM-to-dataset ratio
 * the paper's testbed fixes); anything colder falls through to the
 * O_DIRECT scratchpad + SSD path. Hot hits cost a DRAM access, so the
 * backend interpolates between the DRAM oracle and SmartSAGE(SW) as
 * the fraction knob moves.
 *
 * This file also registers the "tiered-hybrid" storage backend
 * (core::BackendRegistry) — the whole design point lives here, with
 * zero edits to src/core.
 */

#ifndef SMARTSAGE_HOST_TIERED_STORE_HH
#define SMARTSAGE_HOST_TIERED_STORE_HH

#include <cstdint>

#include "io_path.hh"
#include "sim/set_assoc.hh"

namespace smartsage::host
{

/** Hot-tier parameters of the hybrid store. */
struct TieredStoreParams
{
    std::uint64_t hot_line_bytes = sim::KiB(64); //!< tier granularity
    sim::Tick hot_hit = sim::ns(150);            //!< DRAM-tier access
};

/** DRAM hot-cache over a DirectIoEdgeStore cold path. */
class TieredEdgeStore : public EdgeStore
{
  public:
    TieredEdgeStore(const HostConfig &config, ssd::SsdDevice &ssd,
                    const TieredStoreParams &params);

    const std::string &name() const override { return name_; }

    double hotHitRate() const { return hot_.hitRate(); }
    double scratchpadHitRate() const { return cold_.scratchpadHitRate(); }
    std::uint64_t submits() const { return cold_.submits(); }

  protected:
    sim::Tick serviceRead(sim::Tick start, std::uint64_t addr,
                          std::uint64_t bytes) override;

    /** Hot hits answer from DRAM; the cold remainder rides one
     *  coalesced O_DIRECT gather. */
    sim::Tick serviceGather(sim::Tick start,
                            const std::vector<std::uint64_t> &addrs,
                            unsigned entry_bytes) override;

    void resetStore() override;

  private:
    std::string name_ = "Tiered-Hybrid";
    TieredStoreParams params_;
    sim::SetAssocLru hot_; //!< DRAM tier, hot_line_bytes lines
    DirectIoEdgeStore cold_;
    std::vector<std::uint64_t> cold_addrs_; //!< gather scratch
};

} // namespace smartsage::host

#endif // SMARTSAGE_HOST_TIERED_STORE_HH
