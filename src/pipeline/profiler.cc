#include "profiler.hh"

namespace smartsage::pipeline
{

SamplingMemoryProfiler::SamplingMemoryProfiler(
    const host::HostConfig &config, const graph::EdgeLayout &layout)
    : layout_(layout), llc_(config)
{
}

void
SamplingMemoryProfiler::onOffsetRead(graph::LocalNodeId u)
{
    llc_.access(offset_region + std::uint64_t(u) * 8, 16);
}

void
SamplingMemoryProfiler::onEdgeEntryRead(graph::LocalNodeId u,
                                        std::uint64_t entry_index)
{
    (void)u;
    llc_.access(layout_.addrOf(entry_index), layout_.entry_bytes);
}

void
SamplingMemoryProfiler::onSampled(graph::LocalNodeId u,
                                  graph::LocalNodeId v)
{
    (void)u;
    (void)v;
    // Appending the sampled ID to the subgraph is a sequential store
    // stream that the L1/L2 write path absorbs; it never generates
    // LLC demand traffic, so it is excluded from the Fig 5 counters.
    out_cursor_ += 8;
}

double
SamplingMemoryProfiler::dramBwUtilization(unsigned workers) const
{
    return llc_.dramBwUtilization(workers);
}

void
SamplingMemoryProfiler::reset()
{
    llc_.reset();
    out_cursor_ = 0;
}

} // namespace smartsage::pipeline
