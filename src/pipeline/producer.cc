#include "producer.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>

#include "host/feature_cache.hh"
#include "sim/logging.hh"

namespace smartsage::pipeline
{

namespace
{

/** Sample batch @p i of @p config from its own RNG fork. */
void
sampleBatchIndex(const graph::CsrGraph &graph,
                 const gnn::AnySampler &sampler,
                 const ParallelSampleConfig &config, std::size_t i,
                 FunctionalBatch &out)
{
    // Per-index RNG forks keep the output independent of how indices
    // land on threads; the shared per-thread scratch gives each worker
    // its own allocation-free arena.
    gnn::SampleScratch &scratch = gnn::threadSampleScratch();
    sim::Rng rng = sim::Rng(config.seed).fork(config.first_batch + i);
    gnn::selectTargetsInto(graph, config.batch_size, rng, scratch,
                           out.targets);
    sampler.sampleInto(graph, out.targets, rng, scratch, out.subgraph);
}

} // namespace

void
runSamplingPipeline(
    const graph::CsrGraph &graph, const gnn::AnySampler &sampler,
    const ParallelSampleConfig &config, sim::ThreadPool *pool,
    const std::function<void(std::size_t, FunctionalBatch &&)> &consume)
{
    SS_ASSERT(config.num_batches > 0 && config.batch_size > 0,
              "degenerate parallel sample run");
    SS_ASSERT(config.workers > 0, "need at least one worker");
    const std::size_t n = config.num_batches;

    const std::size_t producers = std::min<std::size_t>(
        {config.workers, pool ? pool->size() : 1, n});
    if (!pool || producers <= 1) {
        // Serial pipeline: produce then consume, one batch at a time.
        for (std::size_t i = 0; i < n; ++i) {
            FunctionalBatch batch;
            sampleBatchIndex(graph, sampler, config, i, batch);
            consume(i, std::move(batch));
        }
        return;
    }
    // Enough staged batches to keep every producer busy while the
    // consumer catches up. Memory is O(window), never O(num_batches):
    // slots form a ring, and the window backpressure guarantees slot
    // i % slots is free (batch i - slots already consumed) before
    // batch i is produced into it.
    const std::size_t window = 2 * producers + 2;
    const std::size_t slots = std::min(window, n);
    constexpr std::size_t no_batch = static_cast<std::size_t>(-1);

    std::vector<FunctionalBatch> staged(slots);
    std::vector<std::size_t> slot_batch(slots, no_batch);
    std::mutex m;
    std::condition_variable cv_ready, cv_space;
    std::size_t consumed = 0;
    std::size_t live = 0;              // launched tasks, guarded by m
    std::exception_ptr producer_error; // first failure, guarded by m
    bool cancelled = false;            // abort signal, guarded by m
    std::atomic<std::size_t> next{0};

    auto submitProducer = [&] {
        pool->submit([&] {
            try {
                for (;;) {
                    std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= n)
                        break;
                    {
                        std::unique_lock<std::mutex> lock(m);
                        cv_space.wait(lock, [&] {
                            return i < consumed + window ||
                                   producer_error || cancelled;
                        });
                        // Re-check after waking: a drain must not let a
                        // released producer write into a ring slot that
                        // another producer may still be filling.
                        if (producer_error || cancelled)
                            break;
                    }
                    sampleBatchIndex(graph, sampler, config, i,
                                     staged[i % slots]);
                    {
                        std::unique_lock<std::mutex> lock(m);
                        slot_batch[i % slots] = i;
                    }
                    cv_ready.notify_all();
                }
            } catch (...) {
                {
                    std::unique_lock<std::mutex> lock(m);
                    if (!producer_error)
                        producer_error = std::current_exception();
                }
                next.store(n, std::memory_order_relaxed);
                cv_space.notify_all();
            }
            {
                std::unique_lock<std::mutex> lock(m);
                --live;
            }
            cv_ready.notify_all();
        });
    };

    // Wait for *our* producers only — never the whole pool, which may
    // be running unrelated tasks. Stealing the remaining indices and
    // lifting the window lets every producer run to completion first.
    auto drainProducers = [&] {
        next.store(n, std::memory_order_relaxed);
        {
            std::unique_lock<std::mutex> lock(m);
            cancelled = true;
        }
        cv_space.notify_all();
        std::unique_lock<std::mutex> lock(m);
        cv_ready.wait(lock, [&] { return live == 0; });
    };

    // Launch producers one at a time; if a submit itself throws (e.g.
    // allocation failure), the already-launched tasks still reference
    // this frame — drain them before unwinding.
    try {
        for (std::size_t t = 0; t < producers; ++t) {
            {
                std::unique_lock<std::mutex> lock(m);
                ++live;
            }
            try {
                submitProducer();
            } catch (...) {
                std::unique_lock<std::mutex> lock(m);
                --live; // this task never launched
                throw;
            }
        }
    } catch (...) {
        drainProducers();
        throw;
    }

    try {
        for (std::size_t i = 0; i < n; ++i) {
            {
                std::unique_lock<std::mutex> lock(m);
                cv_ready.wait(lock, [&] {
                    return slot_batch[i % slots] == i || producer_error;
                });
                if (slot_batch[i % slots] != i)
                    break; // a producer failed; abort consumption
            }
            consume(i, std::move(staged[i % slots]));
            {
                std::unique_lock<std::mutex> lock(m);
                ++consumed;
            }
            cv_space.notify_all();
        }
    } catch (...) {
        // The producers reference this frame's locals; drain them
        // before unwinding the consumer's exception.
        drainProducers();
        throw;
    }
    drainProducers();
    if (producer_error)
        std::rethrow_exception(producer_error);
}

std::vector<FunctionalBatch>
sampleBatchesParallel(const graph::CsrGraph &graph,
                      const gnn::AnySampler &sampler,
                      const ParallelSampleConfig &config,
                      sim::ThreadPool *pool)
{
    std::vector<FunctionalBatch> batches(config.num_batches);
    runSamplingPipeline(graph, sampler, config, pool,
                        [&batches](std::size_t i,
                                   FunctionalBatch &&batch) {
                            batches[i] = std::move(batch);
                        });
    return batches;
}

SubgraphStats
SubgraphStats::of(const gnn::Subgraph &sg)
{
    SubgraphStats s;
    s.num_targets = sg.targets().size();
    s.total_edges = sg.totalSampledEdges();
    s.unique_nodes = sg.numUniqueNodes();
    return s;
}

namespace
{

/** Replays one node-gather per step through an EdgeStore. */
class CpuBatchJob : public BatchJob
{
  public:
    CpuBatchJob(gnn::Subgraph sg, std::vector<isp::NodeWork> work,
                host::EdgeStore &store, host::LlcModel &llc,
                const host::HostConfig &config,
                const graph::EdgeLayout &layout)
        : sg_(std::move(sg)), work_(std::move(work)), store_(store),
          llc_(llc), config_(config), layout_(layout),
          cache_(dynamic_cast<host::FeatureCacheStore *>(&store))
    {
    }

    bool done() const override { return next_ >= work_.size(); }

    sim::Tick
    step(sim::Tick now) override
    {
        SS_ASSERT(!done(), "step past end of batch");
        // The batch's gather trace is fully materialized at startBatch,
        // so the hoard prefetcher can be handed the whole neighborhood
        // before the first node replays: the fills drain here at `now`
        // and occupy the store's timelines, making later demand reads
        // queue behind them (prefetch is modeled, not free).
        if (next_ == 0 && cache_ && cache_->prefetchEnabled()) {
            std::vector<std::uint64_t> batch_addrs;
            for (const isp::NodeWork &nw : work_)
                for (std::uint64_t e : nw.entries)
                    batch_addrs.push_back(layout_.addrOf(e));
            cache_->announceBlocking(now, batch_addrs,
                                     layout_.entry_bytes);
        }
        const isp::NodeWork &w = work_[next_++];

        // Degree/offset lookup out of host DRAM.
        sim::Tick t =
            now + llc_.access(offset_region + std::uint64_t(w.node) * 8,
                              16);
        if (!w.entries.empty()) {
            addrs_.clear();
            for (std::uint64_t e : w.entries)
                addrs_.push_back(layout_.addrOf(e));
            t = store_.readGather(t, addrs_, layout_.entry_bytes);
            t += config_.cpu_per_edge * w.entries.size();
        }
        return t;
    }

    gnn::Subgraph takeSubgraph() override { return std::move(sg_); }

  private:
    gnn::Subgraph sg_;
    std::vector<isp::NodeWork> work_;
    std::size_t next_ = 0;
    host::EdgeStore &store_;
    host::LlcModel &llc_;
    const host::HostConfig &config_;
    graph::EdgeLayout layout_;
    host::FeatureCacheStore *cache_; //!< null unless the store is one
    std::vector<std::uint64_t> addrs_;

    static constexpr std::uint64_t offset_region = 1ULL << 42;
};

/** Replays one coalesced NSconfig group per step. */
class IspBatchJob : public BatchJob
{
  public:
    IspBatchJob(gnn::Subgraph sg, std::vector<isp::NodeWork> work,
                std::size_t num_targets, IspProducer &owner,
                isp::IspEngine &engine)
        : sg_(std::move(sg)), work_(std::move(work)), owner_(owner),
          engine_(engine)
    {
        std::size_t groups =
            (num_targets + engine.config().coalesce_targets - 1) /
            engine.config().coalesce_targets;
        groups = std::max<std::size_t>(
            1, std::min(groups, std::max<std::size_t>(work_.size(), 1)));
        per_group_ = (work_.size() + groups - 1) / groups;
        if (per_group_ == 0)
            per_group_ = 1;
    }

    bool done() const override { return next_ >= work_.size(); }

    sim::Tick
    step(sim::Tick now) override
    {
        SS_ASSERT(!done(), "step past end of batch");
        std::size_t n = std::min(per_group_, work_.size() - next_);
        sim::Tick submit = now + engine_.config().host_submit;
        sim::Tick t = engine_.runGroup(work_.data() + next_, n, submit,
                                       owner_.accum());
        next_ += n;
        return t;
    }

    gnn::Subgraph takeSubgraph() override { return std::move(sg_); }

  private:
    gnn::Subgraph sg_;
    std::vector<isp::NodeWork> work_;
    std::size_t next_ = 0;
    std::size_t per_group_ = 1;
    IspProducer &owner_;
    isp::IspEngine &engine_;
};

/** Replays the whole batch on the FPGA CSD in one step. */
class FpgaBatchJob : public BatchJob
{
  public:
    FpgaBatchJob(gnn::Subgraph sg, isp::IspTraceVisitor trace,
                 FpgaProducer &owner, isp::FpgaCsdEngine &engine)
        : sg_(std::move(sg)), trace_(std::move(trace)), owner_(owner),
          engine_(engine)
    {
    }

    bool done() const override { return done_; }

    sim::Tick
    step(sim::Tick now) override
    {
        SS_ASSERT(!done_, "step past end of batch");
        done_ = true;
        isp::FpgaBatchResult r = engine_.runBatch(trace_, now);
        owner_.accum().ssd_to_fpga += r.ssd_to_fpga;
        owner_.accum().sampling += r.sampling;
        owner_.accum().fpga_to_cpu += r.fpga_to_cpu;
        owner_.accum().p2p_bytes += r.p2p_bytes;
        owner_.accum().out_bytes += r.out_bytes;
        return r.finish;
    }

    gnn::Subgraph takeSubgraph() override { return std::move(sg_); }

  private:
    gnn::Subgraph sg_;
    isp::IspTraceVisitor trace_;
    FpgaProducer &owner_;
    isp::FpgaCsdEngine &engine_;
    bool done_ = false;
};

/** Run the functional sampler, capturing the per-node access trace. */
gnn::Subgraph
traceSample(const graph::CsrGraph &graph, const gnn::AnySampler &sampler,
            const std::vector<graph::LocalNodeId> &targets, sim::Rng &rng,
            isp::IspTraceVisitor &trace)
{
    return sampler.sample(graph, targets, rng, &trace);
}

} // namespace

CpuProducer::CpuProducer(const graph::CsrGraph &graph,
                         const gnn::AnySampler &sampler,
                         host::EdgeStore &store,
                         const host::HostConfig &config,
                         const graph::EdgeLayout &layout)
    : graph_(graph), sampler_(sampler), store_(store), config_(config),
      layout_(layout), host_llc_(config)
{
}

std::unique_ptr<BatchJob>
CpuProducer::startBatch(const std::vector<graph::LocalNodeId> &targets,
                        sim::Rng &rng)
{
    isp::IspTraceVisitor trace;
    gnn::Subgraph sg = traceSample(graph_, sampler_, targets, rng, trace);
    std::vector<isp::NodeWork> work(trace.work());
    return std::make_unique<CpuBatchJob>(std::move(sg), std::move(work),
                                         store_, host_llc_, config_,
                                         layout_);
}

void
CpuProducer::reset()
{
    store_.reset();
    host_llc_.reset();
}

IspProducer::IspProducer(const graph::CsrGraph &graph,
                         const gnn::AnySampler &sampler,
                         isp::IspEngine &engine, ssd::SsdDevice &ssd)
    : graph_(graph), sampler_(sampler), engine_(engine), ssd_(ssd)
{
}

std::unique_ptr<BatchJob>
IspProducer::startBatch(const std::vector<graph::LocalNodeId> &targets,
                        sim::Rng &rng)
{
    isp::IspTraceVisitor trace;
    gnn::Subgraph sg = traceSample(graph_, sampler_, targets, rng, trace);
    std::vector<isp::NodeWork> work(trace.work());
    return std::make_unique<IspBatchJob>(std::move(sg), std::move(work),
                                         targets.size(), *this, engine_);
}

void
IspProducer::reset()
{
    ssd_.reset();
    engine_.reset();
    accum_ = isp::IspBatchResult{};
}

FpgaProducer::FpgaProducer(const graph::CsrGraph &graph,
                           const gnn::AnySampler &sampler,
                           isp::FpgaCsdEngine &engine,
                           ssd::SsdDevice &ssd)
    : graph_(graph), sampler_(sampler), engine_(engine), ssd_(ssd)
{
}

std::unique_ptr<BatchJob>
FpgaProducer::startBatch(const std::vector<graph::LocalNodeId> &targets,
                         sim::Rng &rng)
{
    isp::IspTraceVisitor trace;
    gnn::Subgraph sg = traceSample(graph_, sampler_, targets, rng, trace);
    return std::make_unique<FpgaBatchJob>(std::move(sg), std::move(trace),
                                          *this, engine_);
}

void
FpgaProducer::reset()
{
    ssd_.reset();
    accum_ = isp::FpgaBatchResult{};
}

} // namespace smartsage::pipeline
