#include "producer.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace smartsage::pipeline
{

SubgraphStats
SubgraphStats::of(const gnn::Subgraph &sg)
{
    SubgraphStats s;
    s.num_targets = sg.targets().size();
    s.total_edges = sg.totalSampledEdges();
    s.unique_nodes = sg.numUniqueNodes();
    return s;
}

namespace
{

/** Replays one node-gather per step through an EdgeStore. */
class CpuBatchJob : public BatchJob
{
  public:
    CpuBatchJob(gnn::Subgraph sg, std::vector<isp::NodeWork> work,
                host::EdgeStore &store, host::LlcModel &llc,
                const host::HostConfig &config,
                const graph::EdgeLayout &layout)
        : sg_(std::move(sg)), work_(std::move(work)), store_(store),
          llc_(llc), config_(config), layout_(layout)
    {
    }

    bool done() const override { return next_ >= work_.size(); }

    sim::Tick
    step(sim::Tick now) override
    {
        SS_ASSERT(!done(), "step past end of batch");
        const isp::NodeWork &w = work_[next_++];

        // Degree/offset lookup out of host DRAM.
        sim::Tick t =
            now + llc_.access(offset_region + std::uint64_t(w.node) * 8,
                              16);
        if (!w.entries.empty()) {
            addrs_.clear();
            for (std::uint64_t e : w.entries)
                addrs_.push_back(layout_.addrOf(e));
            t = store_.readGather(t, addrs_, layout_.entry_bytes);
            t += config_.cpu_per_edge * w.entries.size();
        }
        return t;
    }

    gnn::Subgraph takeSubgraph() override { return std::move(sg_); }

  private:
    gnn::Subgraph sg_;
    std::vector<isp::NodeWork> work_;
    std::size_t next_ = 0;
    host::EdgeStore &store_;
    host::LlcModel &llc_;
    const host::HostConfig &config_;
    graph::EdgeLayout layout_;
    std::vector<std::uint64_t> addrs_;

    static constexpr std::uint64_t offset_region = 1ULL << 42;
};

/** Replays one coalesced NSconfig group per step. */
class IspBatchJob : public BatchJob
{
  public:
    IspBatchJob(gnn::Subgraph sg, std::vector<isp::NodeWork> work,
                std::size_t num_targets, IspProducer &owner,
                isp::IspEngine &engine)
        : sg_(std::move(sg)), work_(std::move(work)), owner_(owner),
          engine_(engine)
    {
        std::size_t groups =
            (num_targets + engine.config().coalesce_targets - 1) /
            engine.config().coalesce_targets;
        groups = std::max<std::size_t>(
            1, std::min(groups, std::max<std::size_t>(work_.size(), 1)));
        per_group_ = (work_.size() + groups - 1) / groups;
        if (per_group_ == 0)
            per_group_ = 1;
    }

    bool done() const override { return next_ >= work_.size(); }

    sim::Tick
    step(sim::Tick now) override
    {
        SS_ASSERT(!done(), "step past end of batch");
        std::size_t n = std::min(per_group_, work_.size() - next_);
        sim::Tick submit = now + engine_.config().host_submit;
        sim::Tick t = engine_.runGroup(work_.data() + next_, n, submit,
                                       owner_.accum());
        next_ += n;
        return t;
    }

    gnn::Subgraph takeSubgraph() override { return std::move(sg_); }

  private:
    gnn::Subgraph sg_;
    std::vector<isp::NodeWork> work_;
    std::size_t next_ = 0;
    std::size_t per_group_ = 1;
    IspProducer &owner_;
    isp::IspEngine &engine_;
};

/** Replays the whole batch on the FPGA CSD in one step. */
class FpgaBatchJob : public BatchJob
{
  public:
    FpgaBatchJob(gnn::Subgraph sg, isp::IspTraceVisitor trace,
                 FpgaProducer &owner, isp::FpgaCsdEngine &engine)
        : sg_(std::move(sg)), trace_(std::move(trace)), owner_(owner),
          engine_(engine)
    {
    }

    bool done() const override { return done_; }

    sim::Tick
    step(sim::Tick now) override
    {
        SS_ASSERT(!done_, "step past end of batch");
        done_ = true;
        isp::FpgaBatchResult r = engine_.runBatch(trace_, now);
        owner_.accum().ssd_to_fpga += r.ssd_to_fpga;
        owner_.accum().sampling += r.sampling;
        owner_.accum().fpga_to_cpu += r.fpga_to_cpu;
        owner_.accum().p2p_bytes += r.p2p_bytes;
        owner_.accum().out_bytes += r.out_bytes;
        return r.finish;
    }

    gnn::Subgraph takeSubgraph() override { return std::move(sg_); }

  private:
    gnn::Subgraph sg_;
    isp::IspTraceVisitor trace_;
    FpgaProducer &owner_;
    isp::FpgaCsdEngine &engine_;
    bool done_ = false;
};

/** Run the functional sampler, capturing the per-node access trace. */
gnn::Subgraph
traceSample(const graph::CsrGraph &graph, const gnn::AnySampler &sampler,
            const std::vector<graph::LocalNodeId> &targets, sim::Rng &rng,
            isp::IspTraceVisitor &trace)
{
    return sampler.sample(graph, targets, rng, &trace);
}

} // namespace

CpuProducer::CpuProducer(const graph::CsrGraph &graph,
                         const gnn::AnySampler &sampler,
                         host::EdgeStore &store,
                         const host::HostConfig &config,
                         const graph::EdgeLayout &layout)
    : graph_(graph), sampler_(sampler), store_(store), config_(config),
      layout_(layout), host_llc_(config)
{
}

std::unique_ptr<BatchJob>
CpuProducer::startBatch(const std::vector<graph::LocalNodeId> &targets,
                        sim::Rng &rng)
{
    isp::IspTraceVisitor trace;
    gnn::Subgraph sg = traceSample(graph_, sampler_, targets, rng, trace);
    std::vector<isp::NodeWork> work(trace.work());
    return std::make_unique<CpuBatchJob>(std::move(sg), std::move(work),
                                         store_, host_llc_, config_,
                                         layout_);
}

void
CpuProducer::reset()
{
    store_.reset();
    host_llc_.reset();
}

IspProducer::IspProducer(const graph::CsrGraph &graph,
                         const gnn::AnySampler &sampler,
                         isp::IspEngine &engine, ssd::SsdDevice &ssd)
    : graph_(graph), sampler_(sampler), engine_(engine), ssd_(ssd)
{
}

std::unique_ptr<BatchJob>
IspProducer::startBatch(const std::vector<graph::LocalNodeId> &targets,
                        sim::Rng &rng)
{
    isp::IspTraceVisitor trace;
    gnn::Subgraph sg = traceSample(graph_, sampler_, targets, rng, trace);
    std::vector<isp::NodeWork> work(trace.work());
    return std::make_unique<IspBatchJob>(std::move(sg), std::move(work),
                                         targets.size(), *this, engine_);
}

void
IspProducer::reset()
{
    ssd_.reset();
    accum_ = isp::IspBatchResult{};
}

FpgaProducer::FpgaProducer(const graph::CsrGraph &graph,
                           const gnn::AnySampler &sampler,
                           isp::FpgaCsdEngine &engine,
                           ssd::SsdDevice &ssd)
    : graph_(graph), sampler_(sampler), engine_(engine), ssd_(ssd)
{
}

std::unique_ptr<BatchJob>
FpgaProducer::startBatch(const std::vector<graph::LocalNodeId> &targets,
                         sim::Rng &rng)
{
    isp::IspTraceVisitor trace;
    gnn::Subgraph sg = traceSample(graph_, sampler_, targets, rng, trace);
    return std::make_unique<FpgaBatchJob>(std::move(sg), std::move(trace),
                                          *this, engine_);
}

void
FpgaProducer::reset()
{
    ssd_.reset();
    accum_ = isp::FpgaBatchResult{};
}

} // namespace smartsage::pipeline
