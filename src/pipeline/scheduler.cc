#include "scheduler.hh"

#include <algorithm>
#include <memory>

#include "gnn/sampler.hh"
#include "sim/logging.hh"

namespace smartsage::pipeline
{

std::vector<ProducedBatch>
runWorkers(SubgraphProducer &producer, const graph::CsrGraph &graph,
           const ScheduleConfig &config, bool reset_producer)
{
    SS_ASSERT(config.workers > 0 && config.num_batches > 0,
              "degenerate schedule");
    if (reset_producer)
        producer.reset();

    struct Worker
    {
        sim::Tick clock = 0;
        sim::Tick batch_start = 0;
        std::unique_ptr<BatchJob> job;
        sim::Rng rng{0};
    };

    sim::Rng master(config.seed);
    std::vector<Worker> workers(config.workers);
    std::size_t next_batch = 0;

    auto assign = [&](Worker &w) {
        if (next_batch >= config.num_batches)
            return;
        std::size_t batch = next_batch++;
        auto targets = gnn::selectTargets(
            graph, config.sizeOfBatch(batch), w.rng);
        w.batch_start = w.clock;
        w.job = producer.startBatch(targets, w.rng);
    };

    for (unsigned i = 0; i < config.workers; ++i) {
        workers[i].rng = master.fork(i);
        assign(workers[i]);
    }

    std::vector<ProducedBatch> finished;
    finished.reserve(config.num_batches);

    for (;;) {
        // Advance the worker whose clock is furthest behind; its next
        // step is the globally earliest pending storage work.
        Worker *w = nullptr;
        for (auto &cand : workers) {
            if (cand.job && (!w || cand.clock < w->clock))
                w = &cand;
        }
        if (!w)
            break;

        w->clock = w->job->step(w->clock);
        if (w->job->done()) {
            ProducedBatch batch;
            batch.ready = w->clock;
            batch.sampling_time = w->clock - w->batch_start;
            batch.subgraph = w->job->takeSubgraph();
            batch.stats = SubgraphStats::of(batch.subgraph);
            finished.push_back(std::move(batch));
            w->job.reset();
            assign(*w);
        }
    }

    std::sort(finished.begin(), finished.end(),
              [](const ProducedBatch &a, const ProducedBatch &b) {
                  return a.ready < b.ready;
              });
    return finished;
}

} // namespace smartsage::pipeline
