/**
 * @file
 * Memory profiler for the in-memory neighbor sampling stage (Fig 5):
 * replays the sampler's full access stream — offset reads, edge-entry
 * reads, and subgraph-output appends — through one LLC model and
 * reports the LLC miss rate and DRAM bandwidth utilization.
 */

#ifndef SMARTSAGE_PIPELINE_PROFILER_HH
#define SMARTSAGE_PIPELINE_PROFILER_HH

#include <cstdint>

#include "gnn/sampler.hh"
#include "graph/layout.hh"
#include "host/config.hh"
#include "host/llc.hh"

namespace smartsage::pipeline
{

/** Fig 5 measurement vehicle. */
class SamplingMemoryProfiler : public gnn::SampleVisitor
{
  public:
    SamplingMemoryProfiler(const host::HostConfig &config,
                           const graph::EdgeLayout &layout);

    void onOffsetRead(graph::LocalNodeId u) override;
    void onEdgeEntryRead(graph::LocalNodeId u,
                         std::uint64_t entry_index) override;
    void onSampled(graph::LocalNodeId u, graph::LocalNodeId v) override;

    /** LLC miss rate over everything observed so far (Fig 5 left). */
    double llcMissRate() const { return llc_.missRate(); }

    /** DRAM bandwidth utilization for @p workers samplers (Fig 5 right). */
    double dramBwUtilization(unsigned workers) const;

    void reset();

  private:
    graph::EdgeLayout layout_;
    host::LlcModel llc_;
    std::uint64_t out_cursor_ = 0; //!< subgraph append stream position

    static constexpr std::uint64_t offset_region = 1ULL << 42;
};

} // namespace smartsage::pipeline

#endif // SMARTSAGE_PIPELINE_PROFILER_HH
