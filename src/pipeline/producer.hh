/**
 * @file
 * Subgraph producers: the CPU-side workers of Fig 4, one flavor per
 * design point.
 *
 * A producer first runs the *functional* sampler to obtain a real
 * subgraph plus its complete storage access trace, then hands back a
 * resumable BatchJob that replays the trace against the shared timing
 * models one node (or one coalesced command group) at a time. The
 * scheduler (scheduler.hh) interleaves jobs from concurrent workers in
 * simulated-time order, which is what makes multi-worker contention
 * honest: a busy-until resource only sees requests in global time
 * order, never one whole worker at a time.
 */

#ifndef SMARTSAGE_PIPELINE_PRODUCER_HH
#define SMARTSAGE_PIPELINE_PRODUCER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "gnn/sampler.hh"
#include "graph/csr.hh"
#include "graph/layout.hh"
#include "host/config.hh"
#include "host/io_path.hh"
#include "host/llc.hh"
#include "isp/fpga_csd.hh"
#include "isp/isp_engine.hh"
#include "sim/random.hh"
#include "sim/thread_pool.hh"
#include "sim/types.hh"

namespace smartsage::pipeline
{

/** One functionally sampled mini-batch of the parallel pipeline. */
struct FunctionalBatch
{
    std::vector<graph::LocalNodeId> targets;
    gnn::Subgraph subgraph;
};

/** Parameters of one parallel functional sampling run. */
struct ParallelSampleConfig
{
    /** Producer concurrency cap; the effective count is
     *  min(workers, pool size, num_batches). */
    unsigned workers = 1;
    std::size_t num_batches = 16;
    std::size_t batch_size = 1024;
    std::uint64_t seed = 0xba7c;

    /**
     * Global index of the first batch produced: local batch i draws
     * from fork(first_batch + i) of the master seed. A resumed run
     * sets this to its restored cursor and regenerates exactly the
     * batches an uninterrupted run would have seen from that point —
     * the RNG fork position is the whole sampler state.
     */
    std::size_t first_batch = 0;
};

/**
 * Overlapped functional pipeline: sampling runs on the pool's worker
 * threads while @p consume runs on the calling thread, once per batch,
 * in strict batch-index order (with bounded in-flight backpressure).
 * This is the real multi-worker producer/consumer loop of Fig 4 — W
 * samplers feeding one trainer — executing on host cores.
 *
 * Same determinism contract as sampleBatchesParallel: batch i is drawn
 * from fork(i) of the master seed, so both the batches and the
 * in-order consumer's state evolution are bit-identical for any worker
 * count.
 */
void runSamplingPipeline(
    const graph::CsrGraph &graph, const gnn::AnySampler &sampler,
    const ParallelSampleConfig &config, sim::ThreadPool *pool,
    const std::function<void(std::size_t, FunctionalBatch &&)> &consume);

/**
 * Sample @p config.num_batches real subgraphs over the pool's worker
 * threads.
 *
 * Determinism contract: batch i draws its targets and its sampling
 * stream from fork(i) of the master seed, and results are stored by
 * batch index — so for a fixed seed the returned batches are
 * **bit-identical for any worker count** (1, 2, 8, ...), regardless of
 * thread scheduling. Each worker thread keeps a private SampleScratch,
 * so steady-state sampling does not allocate.
 *
 * @param pool thread pool to run on; null runs inline on the caller.
 */
std::vector<FunctionalBatch>
sampleBatchesParallel(const graph::CsrGraph &graph,
                      const gnn::AnySampler &sampler,
                      const ParallelSampleConfig &config,
                      sim::ThreadPool *pool);

/** Shape summary of a produced subgraph (enough for timing models). */
struct SubgraphStats
{
    std::size_t num_targets = 0;
    std::uint64_t total_edges = 0;
    std::uint64_t unique_nodes = 0;

    static SubgraphStats of(const gnn::Subgraph &sg);
};

/** One finished mini-batch. */
struct ProducedBatch
{
    sim::Tick ready = 0;         //!< subgraph available in host DRAM
    sim::Tick sampling_time = 0; //!< ready - start
    SubgraphStats stats;
    gnn::Subgraph subgraph;      //!< functional payload
};

/**
 * A resumable replay of one mini-batch's subgraph generation. step()
 * executes the next slice of work (one node gather, or one coalesced
 * ISP group) starting no earlier than @p now, and returns its
 * completion time.
 */
class BatchJob
{
  public:
    virtual ~BatchJob() = default;

    /** True once every slice has executed. */
    virtual bool done() const = 0;

    /** Execute the next slice at @p now. @pre !done() */
    virtual sim::Tick step(sim::Tick now) = 0;

    /** Claim the functional subgraph after completion. @pre done() */
    virtual gnn::Subgraph takeSubgraph() = 0;
};

/** A design point's subgraph-generation path. */
class SubgraphProducer
{
  public:
    virtual ~SubgraphProducer() = default;

    /** Functionally sample @p targets and return the timing replay. */
    virtual std::unique_ptr<BatchJob>
    startBatch(const std::vector<graph::LocalNodeId> &targets,
               sim::Rng &rng) = 0;

    /** Fresh caches/timelines for a new experiment. */
    virtual void reset() = 0;
};

/** Host-CPU sampling over an EdgeStore (DRAM / mmap / directIO / PMEM). */
class CpuProducer : public SubgraphProducer
{
  public:
    CpuProducer(const graph::CsrGraph &graph,
                const gnn::AnySampler &sampler, host::EdgeStore &store,
                const host::HostConfig &config,
                const graph::EdgeLayout &layout);

    std::unique_ptr<BatchJob>
    startBatch(const std::vector<graph::LocalNodeId> &targets,
               sim::Rng &rng) override;
    void reset() override;

    host::LlcModel &hostLlc() { return host_llc_; }

  private:
    const graph::CsrGraph &graph_;
    const gnn::AnySampler &sampler_;
    host::EdgeStore &store_;
    host::HostConfig config_;
    graph::EdgeLayout layout_;
    host::LlcModel host_llc_;
};

/** SmartSAGE(HW/SW): in-storage subgraph generation. */
class IspProducer : public SubgraphProducer
{
  public:
    IspProducer(const graph::CsrGraph &graph,
                const gnn::AnySampler &sampler, isp::IspEngine &engine,
                ssd::SsdDevice &ssd);

    std::unique_ptr<BatchJob>
    startBatch(const std::vector<graph::LocalNodeId> &targets,
               sim::Rng &rng) override;
    void reset() override;

    /** Cumulative result counters across produced batches. */
    const isp::IspBatchResult &accumulated() const { return accum_; }

    /** Mutable accumulator the batch jobs write into. */
    isp::IspBatchResult &accum() { return accum_; }

  private:
    const graph::CsrGraph &graph_;
    const gnn::AnySampler &sampler_;
    isp::IspEngine &engine_;
    ssd::SsdDevice &ssd_;
    isp::IspBatchResult accum_;
};

/** FPGA-based CSD (Fig 19). */
class FpgaProducer : public SubgraphProducer
{
  public:
    FpgaProducer(const graph::CsrGraph &graph,
                 const gnn::AnySampler &sampler,
                 isp::FpgaCsdEngine &engine, ssd::SsdDevice &ssd);

    std::unique_ptr<BatchJob>
    startBatch(const std::vector<graph::LocalNodeId> &targets,
               sim::Rng &rng) override;
    void reset() override;

    /** Breakdown accumulated across produced batches. */
    const isp::FpgaBatchResult &accumulated() const { return accum_; }

    /** Mutable accumulator the batch jobs write into. */
    isp::FpgaBatchResult &accum() { return accum_; }

  private:
    const graph::CsrGraph &graph_;
    const gnn::AnySampler &sampler_;
    isp::FpgaCsdEngine &engine_;
    ssd::SsdDevice &ssd_;
    isp::FpgaBatchResult accum_;
};

} // namespace smartsage::pipeline

#endif // SMARTSAGE_PIPELINE_PRODUCER_HH
