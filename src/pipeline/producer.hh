/**
 * @file
 * Subgraph producers: the CPU-side workers of Fig 4, one flavor per
 * design point.
 *
 * A producer first runs the *functional* sampler to obtain a real
 * subgraph plus its complete storage access trace, then hands back a
 * resumable BatchJob that replays the trace against the shared timing
 * models one node (or one coalesced command group) at a time. The
 * scheduler (scheduler.hh) interleaves jobs from concurrent workers in
 * simulated-time order, which is what makes multi-worker contention
 * honest: a busy-until resource only sees requests in global time
 * order, never one whole worker at a time.
 */

#ifndef SMARTSAGE_PIPELINE_PRODUCER_HH
#define SMARTSAGE_PIPELINE_PRODUCER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "gnn/sampler.hh"
#include "graph/csr.hh"
#include "graph/layout.hh"
#include "host/config.hh"
#include "host/io_path.hh"
#include "host/llc.hh"
#include "isp/fpga_csd.hh"
#include "isp/isp_engine.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace smartsage::pipeline
{

/** Shape summary of a produced subgraph (enough for timing models). */
struct SubgraphStats
{
    std::size_t num_targets = 0;
    std::uint64_t total_edges = 0;
    std::uint64_t unique_nodes = 0;

    static SubgraphStats of(const gnn::Subgraph &sg);
};

/** One finished mini-batch. */
struct ProducedBatch
{
    sim::Tick ready = 0;         //!< subgraph available in host DRAM
    sim::Tick sampling_time = 0; //!< ready - start
    SubgraphStats stats;
    gnn::Subgraph subgraph;      //!< functional payload
};

/**
 * A resumable replay of one mini-batch's subgraph generation. step()
 * executes the next slice of work (one node gather, or one coalesced
 * ISP group) starting no earlier than @p now, and returns its
 * completion time.
 */
class BatchJob
{
  public:
    virtual ~BatchJob() = default;

    /** True once every slice has executed. */
    virtual bool done() const = 0;

    /** Execute the next slice at @p now. @pre !done() */
    virtual sim::Tick step(sim::Tick now) = 0;

    /** Claim the functional subgraph after completion. @pre done() */
    virtual gnn::Subgraph takeSubgraph() = 0;
};

/** A design point's subgraph-generation path. */
class SubgraphProducer
{
  public:
    virtual ~SubgraphProducer() = default;

    /** Functionally sample @p targets and return the timing replay. */
    virtual std::unique_ptr<BatchJob>
    startBatch(const std::vector<graph::LocalNodeId> &targets,
               sim::Rng &rng) = 0;

    /** Fresh caches/timelines for a new experiment. */
    virtual void reset() = 0;
};

/** Host-CPU sampling over an EdgeStore (DRAM / mmap / directIO / PMEM). */
class CpuProducer : public SubgraphProducer
{
  public:
    CpuProducer(const graph::CsrGraph &graph,
                const gnn::AnySampler &sampler, host::EdgeStore &store,
                const host::HostConfig &config,
                const graph::EdgeLayout &layout);

    std::unique_ptr<BatchJob>
    startBatch(const std::vector<graph::LocalNodeId> &targets,
               sim::Rng &rng) override;
    void reset() override;

    host::LlcModel &hostLlc() { return host_llc_; }

  private:
    const graph::CsrGraph &graph_;
    const gnn::AnySampler &sampler_;
    host::EdgeStore &store_;
    host::HostConfig config_;
    graph::EdgeLayout layout_;
    host::LlcModel host_llc_;
};

/** SmartSAGE(HW/SW): in-storage subgraph generation. */
class IspProducer : public SubgraphProducer
{
  public:
    IspProducer(const graph::CsrGraph &graph,
                const gnn::AnySampler &sampler, isp::IspEngine &engine,
                ssd::SsdDevice &ssd);

    std::unique_ptr<BatchJob>
    startBatch(const std::vector<graph::LocalNodeId> &targets,
               sim::Rng &rng) override;
    void reset() override;

    /** Cumulative result counters across produced batches. */
    const isp::IspBatchResult &accumulated() const { return accum_; }

    /** Mutable accumulator the batch jobs write into. */
    isp::IspBatchResult &accum() { return accum_; }

  private:
    const graph::CsrGraph &graph_;
    const gnn::AnySampler &sampler_;
    isp::IspEngine &engine_;
    ssd::SsdDevice &ssd_;
    isp::IspBatchResult accum_;
};

/** FPGA-based CSD (Fig 19). */
class FpgaProducer : public SubgraphProducer
{
  public:
    FpgaProducer(const graph::CsrGraph &graph,
                 const gnn::AnySampler &sampler,
                 isp::FpgaCsdEngine &engine, ssd::SsdDevice &ssd);

    std::unique_ptr<BatchJob>
    startBatch(const std::vector<graph::LocalNodeId> &targets,
               sim::Rng &rng) override;
    void reset() override;

    /** Breakdown accumulated across produced batches. */
    const isp::FpgaBatchResult &accumulated() const { return accum_; }

    /** Mutable accumulator the batch jobs write into. */
    isp::FpgaBatchResult &accum() { return accum_; }

  private:
    const graph::CsrGraph &graph_;
    const gnn::AnySampler &sampler_;
    isp::FpgaCsdEngine &engine_;
    ssd::SsdDevice &ssd_;
    isp::FpgaBatchResult accum_;
};

} // namespace smartsage::pipeline

#endif // SMARTSAGE_PIPELINE_PRODUCER_HH
