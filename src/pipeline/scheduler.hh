/**
 * @file
 * Worker scheduler: interleaves the BatchJobs of W concurrent producer
 * workers in simulated-time order, so shared storage resources see the
 * globally time-ordered request stream (honest multi-worker
 * contention, Section VI-B).
 */

#ifndef SMARTSAGE_PIPELINE_SCHEDULER_HH
#define SMARTSAGE_PIPELINE_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "graph/csr.hh"
#include "producer.hh"
#include "sim/random.hh"

namespace smartsage::pipeline
{

/** Parameters of one scheduled production run. */
struct ScheduleConfig
{
    unsigned workers = 12;
    std::size_t num_batches = 24;
    std::size_t batch_size = 1024;
    /**
     * Multi-tenant mix: when non-empty, batch i uses size
     * batch_mix[i % batch_mix.size()] instead of batch_size — tenants
     * with different mini-batch sizes interleaved round-robin on the
     * shared storage stack.
     */
    std::vector<std::size_t> batch_mix;
    std::uint64_t seed = 0xba7c;

    /** Target count of batch @p index under the mix policy. */
    std::size_t
    sizeOfBatch(std::size_t index) const
    {
        return batch_mix.empty() ? batch_size
                                 : batch_mix[index % batch_mix.size()];
    }
};

/**
 * Drive @p producer through @p config.num_batches mini-batches over
 * @p config.workers interleaved worker timelines. The producer is
 * reset() first unless @p reset_producer is false (checkpoint warm
 * restarts reset and pre-warm the stores themselves before running).
 * Batches are handed to workers dynamically (a worker picks up the
 * next batch the moment it finishes one).
 *
 * @return finished batches in completion order
 */
std::vector<ProducedBatch> runWorkers(SubgraphProducer &producer,
                                      const graph::CsrGraph &graph,
                                      const ScheduleConfig &config,
                                      bool reset_producer = true);

} // namespace smartsage::pipeline

#endif // SMARTSAGE_PIPELINE_SCHEDULER_HH
