#include "trainer.hh"

#include <algorithm>

#include "gnn/sampler.hh"
#include "scheduler.hh"
#include "sim/logging.hh"
#include "sim/resource.hh"

namespace smartsage::pipeline
{

StageBreakdown
StageBreakdown::normalized() const
{
    StageBreakdown n;
    double t = total();
    if (t <= 0.0)
        return n;
    n.sampling = sampling / t;
    n.feature = feature / t;
    n.transfer = transfer / t;
    n.gpu = gpu / t;
    n.other = other / t;
    return n;
}

TrainingPipeline::TrainingPipeline(const PipelineConfig &config,
                                   const host::HostConfig &host,
                                   const gnn::GpuTimingModel &gpu,
                                   const gnn::FeatureTable &features)
    : config_(config), host_(host), gpu_(gpu), features_(features)
{
    SS_ASSERT(config.workers > 0, "need at least one producer worker");
    SS_ASSERT(config.num_batches > 0, "need at least one batch");
}

sim::Tick
TrainingPipeline::featureTime(std::uint64_t unique_nodes) const
{
    sim::Tick per_row =
        host_.feature_node_overhead +
        sim::transferTime(features_.bytesPerNode(),
                          host_.feature_stream_gbps);
    return per_row * unique_nodes;
}

PipelineResult
TrainingPipeline::run(SubgraphProducer &producer,
                      const graph::CsrGraph &graph)
{
    ScheduleConfig sched;
    sched.workers = config_.workers;
    sched.num_batches = config_.num_batches;
    sched.batch_size = config_.batch_size;
    sched.batch_mix = config_.batch_mix;
    sched.seed = config_.seed;
    std::vector<ProducedBatch> produced =
        runWorkers(producer, graph, sched);

    sim::BandwidthLink gpu_link("host_gpu", host_.host_gpu_gbps,
                                host_.host_gpu_latency);

    struct Finished
    {
        sim::Tick ready;
        sim::Tick gpu_time;
    };
    std::vector<Finished> finished;
    finished.reserve(produced.size());

    PipelineResult result;
    for (const ProducedBatch &batch : produced) {
        // Feature lookup runs on the producing worker's core after the
        // subgraph lands.
        sim::Tick ft = featureTime(batch.stats.unique_nodes);
        sim::Tick after_features = batch.ready + ft;

        // CPU->GPU copy contends on the single host-GPU PCIe link.
        std::uint64_t copy_bytes =
            batch.stats.unique_nodes * features_.bytesPerNode() +
            batch.stats.total_edges * 8;
        auto copied = gpu_link.transfer(after_features, copy_bytes);

        sim::Tick ready = copied.finish + config_.else_per_batch;
        sim::Tick gpu_time = gpu_.batchTime(batch.subgraph);
        finished.push_back({ready, gpu_time});

        result.stages.sampling += sim::toSeconds(batch.sampling_time);
        result.stages.feature += sim::toSeconds(ft);
        result.stages.transfer +=
            sim::toSeconds(copied.finish - after_features);
        result.stages.gpu += sim::toSeconds(gpu_time);
        result.stages.other += sim::toSeconds(config_.else_per_batch);
        result.avg_sampling_us += sim::toMicros(batch.sampling_time);
    }

    // The GPU consumer trains batches in ready order (Fig 4's work
    // queue); any gap where the queue is empty is idle time (Fig 7).
    std::sort(finished.begin(), finished.end(),
              [](const Finished &a, const Finished &b) {
                  return a.ready < b.ready;
              });
    sim::Tick gpu_now = 0;
    sim::Tick idle = 0;
    for (const auto &f : finished) {
        sim::Tick start = std::max(gpu_now, f.ready);
        idle += start - gpu_now;
        gpu_now = start + f.gpu_time;
    }

    result.makespan = gpu_now;
    result.batches = config_.num_batches;
    result.gpu_idle_frac =
        gpu_now ? static_cast<double>(idle) / static_cast<double>(gpu_now)
                : 0.0;
    result.avg_sampling_us /= static_cast<double>(config_.num_batches);
    return result;
}

} // namespace smartsage::pipeline
