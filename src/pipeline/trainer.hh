/**
 * @file
 * Producer-consumer training pipeline (Fig 4).
 *
 * W CPU-side worker timelines produce mini-batch subgraphs through a
 * SubgraphProducer (contention for the storage stack is captured inside
 * the shared resource models); each finished batch then runs feature
 * lookup and the CPU->GPU transfer, and the GPU consumer trains batches
 * in ready order. GPU idle time (Fig 7) falls out of the consumer's
 * wait gaps.
 */

#ifndef SMARTSAGE_PIPELINE_TRAINER_HH
#define SMARTSAGE_PIPELINE_TRAINER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gnn/feature_table.hh"
#include "gnn/gpu_model.hh"
#include "graph/csr.hh"
#include "host/config.hh"
#include "producer.hh"
#include "sim/types.hh"

namespace smartsage::pipeline
{

/** Knobs of one pipeline run. */
struct PipelineConfig
{
    unsigned workers = 12;        //!< CPU-side producer processes
    std::size_t num_batches = 24; //!< mini-batches to simulate
    std::size_t batch_size = 1024; //!< paper default M
    /** Multi-tenant batch-size mix; see ScheduleConfig::batch_mix. */
    std::vector<std::size_t> batch_mix;
    /** Framework overhead per batch ("Else" in Fig 6/18). */
    sim::Tick else_per_batch = sim::us(3000);
    std::uint64_t seed = 0xba7c;
};

/** Per-stage accumulated time in seconds (Fig 6/18 bar segments). */
struct StageBreakdown
{
    double sampling = 0;
    double feature = 0;
    double transfer = 0;
    double gpu = 0;
    double other = 0;

    double total() const { return sampling + feature + transfer + gpu + other; }

    /** Fraction of total() in each stage. */
    StageBreakdown normalized() const;
};

/** Outcome of one pipeline simulation. */
struct PipelineResult
{
    sim::Tick makespan = 0;      //!< wall time to train all batches
    StageBreakdown stages;       //!< accumulated per-batch stage time
    double gpu_idle_frac = 0;    //!< Fig 7
    double avg_sampling_us = 0;  //!< mean per-batch sampling latency
    std::uint64_t batches = 0;

    /** Batches per simulated second. */
    double
    throughput() const
    {
        return makespan ? static_cast<double>(batches) /
                              sim::toSeconds(makespan)
                        : 0.0;
    }
};

/** The pipeline simulator. */
class TrainingPipeline
{
  public:
    TrainingPipeline(const PipelineConfig &config,
                     const host::HostConfig &host,
                     const gnn::GpuTimingModel &gpu,
                     const gnn::FeatureTable &features);

    /**
     * Run @p producer over @p graph for the configured batch count.
     * The producer is reset() first.
     */
    PipelineResult run(SubgraphProducer &producer,
                       const graph::CsrGraph &graph);

  private:
    PipelineConfig config_;
    host::HostConfig host_;
    const gnn::GpuTimingModel &gpu_;
    const gnn::FeatureTable &features_;

    /** Host-side feature-gather time for @p unique_nodes rows. */
    sim::Tick featureTime(std::uint64_t unique_nodes) const;
};

} // namespace smartsage::pipeline

#endif // SMARTSAGE_PIPELINE_TRAINER_HH
