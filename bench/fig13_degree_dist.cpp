/**
 * @file
 * Fig 13: degree distributions of the in-memory vs the Kronecker
 * fractal-expanded large-scale datasets — the power-law shape must
 * survive expansion while counts grow and the graph densifies.
 */

#include <iostream>

#include "common.hh"
#include "graph/degree.hh"

using namespace ssbench;

namespace
{

void
printHistogram(const std::string &name, const graph::CsrGraph &g)
{
    graph::DegreeDistribution dd(g);
    std::cout << name << ": nodes " << g.numNodes() << ", avg degree "
              << core::fmt(g.avgDegree(), 1) << ", power-law slope "
              << core::fmt(dd.powerLawSlope(), 2) << "\n";
    for (const auto &b : dd.logBuckets()) {
        double frac =
            static_cast<double>(b.count) / g.numNodes();
        int bars = static_cast<int>(frac * 120);
        std::cout << "  deg [" << b.lo << "," << b.hi << ")  "
                  << std::string(bars ? bars : (b.count ? 1 : 0), '#')
                  << " " << b.count << "\n";
    }
}

} // namespace

int
main()
{
    // The paper shows Reddit and Protein-PI; we print all five.
    for (auto id : graph::allDatasets()) {
        const auto &spec = graph::datasetSpec(id);
        std::cout << "== Fig 13: " << spec.name << " ==\n";
        printHistogram("in-memory ", spec.buildInMemory());
        printHistogram("large-scale", workload(id).graph);
        std::cout << "\n";
    }
    std::cout << "paper: expansion multiplies node counts while the "
                 "power-law shape and community structure persist, and "
                 "average degree rises (densification power law)\n";
    return 0;
}
