/**
 * @file
 * Table I: graph dataset information — the paper-reported statistics
 * side by side with the simulation-scale instantiations this repo
 * actually runs.
 */

#include <iostream>

#include "common.hh"
#include "graph/degree.hh"

using namespace ssbench;

int
main()
{
    core::TableReporter paper(
        "Table I (paper-reported)",
        {"Dataset", "Nodes(in-mem)", "Edges(in-mem)", "Size GB",
         "Nodes(large)", "Edges(large)", "Size GB(large)", "Features"});
    for (auto id : graph::allDatasets()) {
        const auto &s = graph::datasetSpec(id);
        paper.addRow({s.name, core::fmt(s.paper_in_memory.nodes / 1e6, 2) + "M",
                      core::fmt(s.paper_in_memory.edges / 1e9, 2) + "B",
                      core::fmt(s.paper_in_memory.size_gb, 1),
                      core::fmt(s.paper_large.nodes / 1e6, 1) + "M",
                      core::fmt(s.paper_large.edges / 1e9, 1) + "B",
                      core::fmt(s.paper_large.size_gb, 0),
                      std::to_string(s.feature_dim)});
    }
    paper.print(std::cout);
    std::cout << "\n";

    core::TableReporter sim(
        "Table I (simulation scale, ~1000x reduced via the same "
        "Kronecker recipe)",
        {"Dataset", "Nodes(in-mem)", "Edges(in-mem)", "Nodes(large)",
         "Edges(large)", "AvgDeg(large)", "MaxDeg", "EdgeFile MB"});
    for (auto id : graph::allDatasets()) {
        const auto &s = graph::datasetSpec(id);
        graph::CsrGraph small = s.buildInMemory();
        const auto &wl = workload(id);
        graph::EdgeLayout layout;
        sim.addRow({s.name, std::to_string(small.numNodes()),
                    std::to_string(small.numEdges()),
                    std::to_string(wl.graph.numNodes()),
                    std::to_string(wl.graph.numEdges()),
                    core::fmt(wl.graph.avgDegree(), 1),
                    std::to_string(wl.graph.maxDegree()),
                    core::fmt(wl.edgeListBytes(layout) / 1e6, 1)});
    }
    sim.print(std::cout);
    return 0;
}
