/**
 * @file
 * Fig 7: fraction of training time the GPU sits idle waiting for input
 * mini-batches, DRAM vs SSD (mmap).
 *
 * Paper reference: near-full utilization in-memory; large idle
 * fractions once data preparation moves to the mmap SSD.
 */

#include <iostream>

#include "common.hh"

using namespace ssbench;

int
main()
{
    core::TableReporter table("Fig 7: GPU idle time (%)",
                              {"Dataset", "DRAM", "SSD (mmap)"});

    for (auto id : graph::allDatasets()) {
        const auto &wl = workload(id);
        auto idle = [&](core::DesignPoint dp) {
            auto sc = baseConfig(dp);
            sc.pipeline.num_batches = pipeline_batches;
            core::GnnSystem system(sc, wl);
            return system.runPipeline().gpu_idle_frac;
        };
        table.addRow({graph::datasetName(id),
                      core::fmtPct(idle(core::DesignPoint::DramOracle)),
                      core::fmtPct(idle(core::DesignPoint::SsdMmap))});
    }
    table.print(std::cout);
    std::cout << "paper: DRAM keeps the GPU mostly busy; mmap leaves "
                 "it idle 60-95% of the time\n";
    return 0;
}
