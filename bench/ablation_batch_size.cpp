/**
 * @file
 * Section VI-F "Training batch size": the paper states the chosen
 * mini-batch size has little effect on SmartSAGE's achieved speedup
 * (results omitted there for space). This harness generates the table
 * the paper describes: HW/SW-over-mmap sampling speedup across batch
 * sizes.
 */

#include <iostream>

#include "common.hh"

using namespace ssbench;

int
main()
{
    const std::vector<std::size_t> batch_sizes = {256, 512, 1024, 2048};

    core::TableReporter table(
        "Section VI-F: HW/SW speedup over mmap vs mini-batch size "
        "(12 workers)",
        {"Dataset", "256", "512", "1024", "2048"});

    for (auto id : graph::allDatasets()) {
        const auto &wl = workload(id);
        std::vector<std::string> row = {graph::datasetName(id)};
        for (std::size_t bs : batch_sizes) {
            auto tput = [&](core::DesignPoint dp) {
                auto sc = baseConfig(dp);
                sc.pipeline.batch_size = bs;
                core::GnnSystem system(sc, wl);
                return system.runSamplingOnly(12, 16)
                    .batchesPerSecond();
            };
            double speedup = tput(core::DesignPoint::SmartSageHwSw) /
                             tput(core::DesignPoint::SsdMmap);
            row.push_back(core::fmtX(speedup, 1));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "paper: the chosen mini-batch size has little effect "
                 "on SmartSAGE's speedup\n";
    return 0;
}
