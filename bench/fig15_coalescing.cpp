/**
 * @file
 * Fig 15: effect of the I/O command coalescing granularity on
 * SmartSAGE(HW/SW) sampling performance. The default folds all 1024
 * targets of a mini-batch into one NSconfig; shrinking the granularity
 * multiplies command/control overhead until it erases the ISP benefit.
 */

#include <iostream>

#include "common.hh"

using namespace ssbench;

int
main()
{
    const std::vector<std::size_t> granularities = {1024, 512, 256,
                                                    64,   16,  1};

    core::TableReporter table(
        "Fig 15: SmartSAGE(HW/SW) performance vs coalescing "
        "granularity (normalized to 1024)",
        {"Dataset", "1024", "512", "256", "64", "16", "1"});

    for (auto id : graph::allDatasets()) {
        const auto &wl = workload(id);
        std::vector<std::string> row = {graph::datasetName(id)};
        double base = 0;
        for (std::size_t g : granularities) {
            auto sc = baseConfig(core::DesignPoint::SmartSageHwSw);
            sc.isp.coalesce_targets = g;
            core::GnnSystem system(sc, wl);
            double tput = system.runSamplingOnly(1, 8)
                              .batchesPerSecond();
            if (g == 1024)
                base = tput;
            row.push_back(core::fmt(tput / base, 2));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "paper: performance collapses as granularity shrinks "
                 "(command latency outweighs ISP)\n";
    return 0;
}
