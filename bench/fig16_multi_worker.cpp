/**
 * @file
 * Fig 16: neighbor sampling speedup vs the mmap baseline with 12
 * concurrent workers (the throughput-optimal worker count).
 *
 * Paper reference: HW/SW ~4.4x average (max 5.5x) — less than the
 * single-worker gain because the wimpy embedded cores saturate.
 */

#include <iostream>

#include "common.hh"

using namespace ssbench;

int
main()
{
    const unsigned workers = 12;
    core::TableReporter table(
        "Fig 16: multi-worker (12) sampling speedup vs SSD (mmap)",
        {"Dataset", "SSD (mmap)", "SmartSAGE (SW)",
         "SmartSAGE (HW/SW)"});

    std::vector<double> sw_speedups, hw_speedups;
    for (auto id : graph::allDatasets()) {
        const auto &wl = workload(id);
        auto tput = [&](core::DesignPoint dp) {
            core::GnnSystem system(baseConfig(dp), wl);
            return system.runSamplingOnly(workers, 2 * sampling_batches)
                .batchesPerSecond();
        };
        double mmap = tput(core::DesignPoint::SsdMmap);
        double sw = tput(core::DesignPoint::SmartSageSw);
        double hwsw = tput(core::DesignPoint::SmartSageHwSw);
        sw_speedups.push_back(sw / mmap);
        hw_speedups.push_back(hwsw / mmap);
        table.addRow({graph::datasetName(id), "1.00x",
                      core::fmtX(sw / mmap), core::fmtX(hwsw / mmap)});
    }
    table.print(std::cout);
    std::cout << "average: SW " << core::fmtX(core::mean(sw_speedups))
              << ", HW/SW " << core::fmtX(core::mean(hw_speedups))
              << "  (paper: HW/SW 4.4x avg / 5.5x max)\n";
    return 0;
}
