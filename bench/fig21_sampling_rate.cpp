/**
 * @file
 * Fig 21: sensitivity of SmartSAGE's end-to-end speedup to the
 * sampling rate — 0.5x, 1.0x, and 2.0x of the default (25, 10)
 * fanouts. Larger sampling rates shrink HW/SW's advantage because the
 * returned subgraph approaches the raw transfer size.
 */

#include <iostream>

#include "common.hh"

using namespace ssbench;

int
main()
{
    struct Rate
    {
        const char *label;
        std::vector<unsigned> fanouts;
    };
    const std::vector<Rate> rates = {
        {"0.5x", {13, 5}},
        {"1.0x", {25, 10}},
        {"2.0x", {50, 20}},
    };

    core::TableReporter table(
        "Fig 21: end-to-end speedup vs SSD (mmap) across sampling "
        "rates",
        {"Dataset", "Rate", "SmartSAGE (SW)", "SmartSAGE (HW/SW)"});

    for (auto id : graph::allDatasets()) {
        const auto &wl = workload(id);
        for (const auto &rate : rates) {
            auto tput = [&](core::DesignPoint dp) {
                auto sc = baseConfig(dp);
                sc.fanouts = rate.fanouts;
                sc.pipeline.num_batches = 8;
                core::GnnSystem system(sc, wl);
                return system.runPipeline().throughput();
            };
            double mmap = tput(core::DesignPoint::SsdMmap);
            double sw = tput(core::DesignPoint::SmartSageSw);
            double hwsw = tput(core::DesignPoint::SmartSageHwSw);
            table.addRow({graph::datasetName(id), rate.label,
                          core::fmtX(sw / mmap),
                          core::fmtX(hwsw / mmap)});
        }
    }
    table.print(std::cout);
    std::cout << "paper: HW/SW's speedup shrinks as the sampling rate "
                 "grows (subgraph approaches SW transfer size)\n";
    return 0;
}
