/**
 * @file
 * Fig 18: end-to-end GNN training time breakdown across every design
 * point: SSD(mmap), SmartSAGE(SW), SmartSAGE(HW/SW),
 * SmartSAGE(oracle), PMEM, and the DRAM upper bound.
 *
 * Paper reference: HW/SW 3.5x (max 5.0x) over mmap; ~60% loss vs
 * DRAM; PMEM ~1.2x slower than DRAM; oracle at ~70%/90% of DRAM/PMEM.
 */

#include <iostream>
#include <vector>

#include "common.hh"

using namespace ssbench;

int
main()
{
    const std::vector<core::DesignPoint> designs = {
        core::DesignPoint::SsdMmap,
        core::DesignPoint::SmartSageSw,
        core::DesignPoint::SmartSageHwSw,
        core::DesignPoint::SmartSageOracle,
        core::DesignPoint::Pmem,
        core::DesignPoint::DramOracle,
    };

    core::TableReporter table(
        "Fig 18: end-to-end training latency breakdown (total "
        "normalized to DRAM)",
        {"Dataset", "Design", "Sampling", "FeatLookup", "CPU->GPU",
         "GNN", "Else", "Total vs DRAM"});

    std::vector<double> hwsw_gain, sw_gain, pmem_vs_dram, oracle_vs_dram;
    for (auto id : graph::allDatasets()) {
        const auto &wl = workload(id);

        struct Row
        {
            core::DesignPoint dp;
            pipeline::PipelineResult result;
        };
        std::vector<Row> rows;
        for (auto dp : designs) {
            auto sc = baseConfig(dp);
            sc.pipeline.num_batches = pipeline_batches;
            core::GnnSystem system(sc, wl);
            rows.push_back({dp, system.runPipeline()});
        }
        double dram = rows.back().result.throughput();

        for (const auto &row : rows) {
            auto n = row.result.stages.normalized();
            table.addRow({graph::datasetName(id),
                          core::designName(row.dp),
                          core::fmtPct(n.sampling),
                          core::fmtPct(n.feature),
                          core::fmtPct(n.transfer), core::fmtPct(n.gpu),
                          core::fmtPct(n.other),
                          core::fmtX(dram / row.result.throughput())});
        }

        auto tput = [&](core::DesignPoint dp) {
            for (const auto &row : rows) {
                if (row.dp == dp)
                    return row.result.throughput();
            }
            return 0.0;
        };
        hwsw_gain.push_back(tput(core::DesignPoint::SmartSageHwSw) /
                            tput(core::DesignPoint::SsdMmap));
        sw_gain.push_back(tput(core::DesignPoint::SmartSageSw) /
                          tput(core::DesignPoint::SsdMmap));
        pmem_vs_dram.push_back(dram / tput(core::DesignPoint::Pmem));
        oracle_vs_dram.push_back(
            tput(core::DesignPoint::SmartSageOracle) / dram);
    }
    table.print(std::cout);
    std::cout << "HW/SW speedup over mmap: avg "
              << core::fmtX(core::mean(hwsw_gain))
              << " (paper 3.5x avg / 5.0x max); SW avg "
              << core::fmtX(core::mean(sw_gain))
              << " (paper 2.5x); PMEM slowdown vs DRAM avg "
              << core::fmtX(core::mean(pmem_vs_dram))
              << " (paper 1.2x); oracle at "
              << core::fmtPct(core::mean(oracle_vs_dram))
              << " of DRAM (paper ~70%)\n";
    return 0;
}
