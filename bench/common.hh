/**
 * @file
 * Shared plumbing for the figure/table reproduction harnesses.
 *
 * Every binary in bench/ regenerates one table or figure of the paper:
 * it runs the same workloads through the same design points and prints
 * the rows/series the paper reports. Absolute numbers come from the
 * simulator's calibrated timing model (DESIGN.md Section 4, "Timing
 * model"); the shapes are the reproduction target.
 */

#ifndef SMARTSAGE_BENCH_COMMON_HH
#define SMARTSAGE_BENCH_COMMON_HH

#include <map>
#include <memory>
#include <mutex>

#include "core/report.hh"
#include "core/system.hh"
#include "graph/datasets.hh"

namespace ssbench
{

using namespace smartsage;

/**
 * Workload cache: each dataset's graph is built once per process.
 * Returned references stay valid for the process lifetime; the lookup
 * is mutex-guarded so harnesses may warm workloads from pool threads.
 */
inline core::Workload &
workload(graph::DatasetId id, bool large_scale = true)
{
    static std::mutex mutex;
    static std::map<std::pair<int, bool>,
                    std::unique_ptr<core::Workload>>
        cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto key = std::make_pair(static_cast<int>(id), large_scale);
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache
                 .emplace(key, std::make_unique<core::Workload>(
                                   core::Workload::make(id, large_scale)))
                 .first;
    }
    return *it->second;
}

/** Baseline experiment configuration shared by the harnesses. */
inline core::SystemConfig
baseConfig(core::DesignPoint dp)
{
    core::SystemConfig sc;
    sc.design = dp;
    return sc;
}

/** Paper defaults for sampling-only experiments (Figs 14-17). */
constexpr std::size_t sampling_batches = 16;

/** Paper defaults for end-to-end pipeline experiments (Figs 6/7/18). */
constexpr std::size_t pipeline_batches = 16;

} // namespace ssbench

#endif // SMARTSAGE_BENCH_COMMON_HH
