/**
 * @file
 * Fig 17: SmartSAGE(HW/SW)'s speedup over SmartSAGE(SW) as CPU-side
 * workers scale from 1 to 12 — the gap closes because in-storage
 * sampling time-shares the SSD's embedded cores with the flash
 * management firmware.
 */

#include <iostream>

#include "common.hh"

using namespace ssbench;

int
main()
{
    const std::vector<unsigned> worker_counts = {1, 2, 4, 8, 12};

    core::TableReporter table(
        "Fig 17: HW/SW speedup over SW vs worker count",
        {"Dataset", "1", "2", "4", "8", "12"});

    for (auto id : graph::allDatasets()) {
        const auto &wl = workload(id);
        std::vector<std::string> row = {graph::datasetName(id)};
        double first = 0, last = 0;
        for (unsigned w : worker_counts) {
            auto tput = [&](core::DesignPoint dp) {
                core::GnnSystem system(baseConfig(dp), wl);
                return system.runSamplingOnly(w, sampling_batches)
                    .batchesPerSecond();
            };
            double speedup = tput(core::DesignPoint::SmartSageHwSw) /
                             tput(core::DesignPoint::SmartSageSw);
            if (w == 1)
                first = speedup;
            last = speedup;
            row.push_back(core::fmtX(speedup, 1));
        }
        (void)first;
        (void)last;
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "paper: speedup declines monotonically toward ~1.5-2x "
                 "at 12 workers\n";
    return 0;
}
