/**
 * @file
 * google-benchmark microbenchmarks of the library's hot paths: the
 * functional sampler, Kronecker expansion, the set-associative cache
 * directory, the SSD block-read path, and the SAGE layer math.
 */

#include <benchmark/benchmark.h>

#include "gnn/layers.hh"
#include "gnn/sampler.hh"
#include "graph/kronecker.hh"
#include "graph/powerlaw.hh"
#include "sim/set_assoc.hh"
#include "ssd/ssd_device.hh"

using namespace smartsage;

namespace
{

const graph::CsrGraph &
benchGraph()
{
    static graph::CsrGraph g = [] {
        graph::PowerLawParams p;
        p.num_nodes = 1 << 15;
        p.avg_degree = 60;
        return graph::generatePowerLaw(p);
    }();
    return g;
}

void
BM_SageSampler(benchmark::State &state)
{
    const auto &g = benchGraph();
    gnn::SageSampler sampler({25, 10});
    sim::Rng rng(1);
    std::uint64_t edges = 0;
    for (auto _ : state) {
        auto targets = gnn::selectTargets(
            g, static_cast<std::size_t>(state.range(0)), rng);
        auto sg = sampler.sample(g, targets, rng);
        edges += sg.totalSampledEdges();
        benchmark::DoNotOptimize(sg);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(edges));
}
BENCHMARK(BM_SageSampler)->Arg(128)->Arg(512)->Arg(1024);

void
BM_SaintSampler(benchmark::State &state)
{
    const auto &g = benchGraph();
    gnn::SaintSampler sampler(3);
    sim::Rng rng(2);
    for (auto _ : state) {
        auto targets = gnn::selectTargets(g, 1024, rng);
        auto sg = sampler.sample(g, targets, rng);
        benchmark::DoNotOptimize(sg);
    }
}
BENCHMARK(BM_SaintSampler);

void
BM_KroneckerExpand(benchmark::State &state)
{
    graph::PowerLawParams p;
    p.num_nodes = static_cast<std::uint64_t>(state.range(0));
    p.avg_degree = 20;
    graph::CsrGraph base = graph::generatePowerLaw(p);
    auto seed = graph::KroneckerSeed::defaultSeed();
    for (auto _ : state) {
        auto g = graph::kroneckerExpand(base, seed);
        benchmark::DoNotOptimize(g);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(base.numEdges() * 3));
}
BENCHMARK(BM_KroneckerExpand)->Arg(1 << 12)->Arg(1 << 14);

void
BM_SetAssocLru(benchmark::State &state)
{
    sim::SetAssocLru cache(sim::MiB(16), 64, 16);
    sim::Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.nextBounded(1u << 22)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetAssocLru);

void
BM_SsdReadBlocks(benchmark::State &state)
{
    ssd::SsdConfig cfg;
    ssd::SsdDevice ssd(cfg);
    sim::Rng rng(4);
    sim::Tick t = 0;
    for (auto _ : state) {
        t = ssd.readBlocks(t, rng.nextBounded(1u << 30) & ~4095ull,
                           4096);
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SsdReadBlocks);

void
BM_SageLayerForward(benchmark::State &state)
{
    sim::Rng rng(5);
    unsigned dim = static_cast<unsigned>(state.range(0));
    gnn::SageMeanLayer layer(dim, dim, true, rng);

    gnn::SampledBlock block;
    const std::size_t dsts = 256, fanout = 10;
    block.offsets.push_back(0);
    sim::Rng pick(6);
    for (std::size_t u = 0; u < dsts; ++u) {
        for (std::size_t j = 0; j < fanout; ++j) {
            block.src_index.push_back(static_cast<std::uint32_t>(
                pick.nextBounded(dsts * 4)));
        }
        block.offsets.push_back(
            static_cast<std::uint32_t>(block.src_index.size()));
    }
    gnn::Tensor2D h = gnn::Tensor2D::uniform(dsts * 4, dim, 1.0f, rng);

    for (auto _ : state) {
        gnn::SageContext ctx;
        auto out = layer.forward(h, block, ctx);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(2 * dsts * dim * dim));
}
BENCHMARK(BM_SageLayerForward)->Arg(32)->Arg(128);

} // namespace

BENCHMARK_MAIN();
