/**
 * @file
 * Hot-path microbenchmark: times the three compute hot paths — frontier
 * sampling, GEMM/aggregate kernels, and the multi-worker functional
 * sampling/training pipeline — in both their naive (seed) and optimized
 * forms, plus the storage blocking-adapter overhead (direct service
 * call vs submit-and-drain through the async request layer) and the
 * feature-cache decorator's replay-path cost/benefit (raw store vs an
 * LRU-cached store on a skewed gather stream), the MSHR/coalescing
 * miss path under concurrent duplicate-heavy gathers (legacy
 * forward-everything vs coalesced line fills with piggybacked
 * secondary misses), and emits machine-readable BENCH_hotpath.json so
 * every future PR can be checked against this perf trajectory.
 *
 * Naive forms: SageSampler::sampleBaseline (per-batch hash dedup,
 * virtual visitor dispatch) and KernelMode::Naive (reference loops).
 * Fast forms: sampleInto through a reusable SampleScratch (flat
 * epoch-stamped dedup, statically dispatched no-op visitor) and
 * KernelMode::Tiled, with the pipeline running real worker threads.
 *
 * Usage: perf_hotpath [--quick] [--out <path>] [--workers <n>]
 *   --quick    CI smoke sizes (seconds, looser statistics)
 *   --out      JSON output path (default: BENCH_hotpath.json)
 *   --workers  pipeline worker threads (default: hardware concurrency)
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "gnn/feature_table.hh"
#include "gnn/model.hh"
#include "gnn/sampler.hh"
#include "graph/powerlaw.hh"
#include "host/feature_cache.hh"
#include "host/io_path.hh"
#include "pipeline/producer.hh"
#include "sim/random.hh"
#include "sim/thread_pool.hh"
#include "ssd/ssd_device.hh"

using namespace smartsage;

namespace
{

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One naive-vs-fast measurement. */
struct Pair
{
    double naive = 0; //!< metric for the naive path (per second)
    double fast = 0;  //!< metric for the optimized path (per second)

    double speedup() const { return naive > 0 ? fast / naive : 0.0; }
};

struct BenchConfig
{
    std::uint64_t num_nodes = 1ULL << 19;
    double avg_degree = 16.0;
    std::vector<unsigned> fanouts = {25, 10};
    std::size_t batch_size = 1024;
    std::size_t sampler_batches = 8;
    std::size_t gemm_rows = 16384;
    unsigned dim = 32;
    std::size_t kernel_reps = 4;
    std::size_t pipeline_batches = 10;
    std::size_t storage_gathers = 20000;
    unsigned workers = std::max(1u, std::thread::hardware_concurrency());
};

/** Blocking-adapter overhead on the storage replay path. */
struct AdapterCost
{
    double direct_ops_per_s = 0;  //!< serviceGather called directly
    double adapter_ops_per_s = 0; //!< submit-and-drain blocking call

    /** Fraction of direct-call throughput lost to the adapter. */
    double
    overheadFrac() const
    {
        return direct_ops_per_s > 0
                   ? 1.0 - adapter_ops_per_s / direct_ops_per_s
                   : 0.0;
    }
};

/** Feature-cache decorator cost/benefit on the replay path. */
struct CacheCost
{
    double raw_ops_per_s = 0;    //!< undecorated blocking gathers
    double cached_ops_per_s = 0; //!< through the LRU feature cache
    double hit_frac = 0;         //!< line hit rate the stream reached
};

/** Tiled-GEMM GFLOP/s under each runtime-dispatched microkernel. */
struct DispatchCost
{
    double naive_gflops = 0;    //!< KernelMode::Naive reference loops
    double scalar_gflops = 0;   //!< tiled, scalar-portable microkernel
    double avx2_gflops = 0;     //!< tiled, AVX2+FMA (0 if unsupported)
    double threaded_gflops = 0; //!< tiled, auto flavor, pool workers
    unsigned gemm_threads = 1;  //!< thread count of the threaded run
    bool avx2_supported = false;

    double
    avx2Speedup() const
    {
        return naive_gflops > 0 ? avx2_gflops / naive_gflops : 0.0;
    }
};

/** MSHR + gather-coalescing benefit on concurrent duplicate misses. */
struct MshrCost
{
    double nomshr_ops_per_s = 0; //!< wall throughput, legacy miss path
    double mshr_ops_per_s = 0;   //!< wall throughput, MSHRs on
    double inner_cmds_nomshr = 0; //!< storage commands, legacy path
    double inner_cmds_mshr = 0;   //!< storage commands, MSHRs on
    double piggyback_frac = 0; //!< misses served by an in-flight fill
    double sim_speedup = 0;    //!< simulated makespan ratio (old/new)
};

/**
 * Exposes the protected service entry point so the bench can time the
 * pre-refactor equivalent (direct service-math call, no event-queue
 * machinery) against the blocking submit-and-drain adapter the sweep
 * path now rides.
 */
class RawDirectIoStore : public host::DirectIoEdgeStore
{
  public:
    using host::DirectIoEdgeStore::DirectIoEdgeStore;

    sim::Tick
    rawGather(sim::Tick start, const std::vector<std::uint64_t> &addrs,
              unsigned entry_bytes)
    {
        return serviceGather(start, addrs, entry_bytes);
    }
};

/**
 * Gathers per second through the direct-I/O store: the raw service
 * call vs the blocking adapter, on identical request streams against
 * identical (separate) stores. Tracks what the async refactor costs
 * the classic sweep replay path.
 */
AdapterCost
benchStorageAdapter(const BenchConfig &cfg)
{
    host::HostConfig host;
    host.scratchpad_bytes = sim::MiB(4); // small: a real hit/miss mix
    ssd::SsdConfig ssd_cfg;
    ssd_cfg.page_buffer_bytes = sim::MiB(8);

    // One identical pre-generated gather stream for both paths.
    const std::uint64_t span = sim::MiB(512);
    std::vector<std::vector<std::uint64_t>> gathers(cfg.storage_gathers);
    sim::Rng rng(0x10ad);
    for (auto &addrs : gathers) {
        addrs.resize(12);
        std::uint64_t node_base = rng.nextBounded(span);
        for (auto &a : addrs)
            a = node_base + rng.nextBounded(sim::KiB(64));
    }

    AdapterCost cost;
    {
        ssd::SsdDevice ssd(ssd_cfg);
        RawDirectIoStore store(host, ssd);
        sim::Tick t = 0;
        double t0 = now_s();
        for (const auto &addrs : gathers)
            t = store.rawGather(t, addrs, 8);
        cost.direct_ops_per_s =
            static_cast<double>(gathers.size()) / (now_s() - t0);
    }
    {
        ssd::SsdDevice ssd(ssd_cfg);
        host::DirectIoEdgeStore store(host, ssd);
        sim::Tick t = 0;
        double t0 = now_s();
        for (const auto &addrs : gathers)
            t = store.readGather(t, addrs, 8);
        cost.adapter_ops_per_s =
            static_cast<double>(gathers.size()) / (now_s() - t0);
    }
    return cost;
}

/**
 * Wall-clock gathers per second with and without the feature-cache
 * decorator, on a skewed (70% hot-set) stream where the cache has
 * real reuse: what the decorator costs per request when cold and what
 * the hit bypass buys once warm.
 */
CacheCost
benchFeatureCache(const BenchConfig &cfg)
{
    host::HostConfig host;
    host.scratchpad_bytes = sim::MiB(4);
    ssd::SsdConfig ssd_cfg;
    ssd_cfg.page_buffer_bytes = sim::MiB(8);

    const std::uint64_t span = sim::MiB(512);
    const std::uint64_t hot_span = sim::MiB(16);
    std::vector<std::vector<std::uint64_t>> gathers(cfg.storage_gathers);
    sim::Rng rng(0xfeca);
    for (auto &addrs : gathers) {
        addrs.resize(12);
        bool hot = rng.nextBounded(100) < 70;
        std::uint64_t node_base =
            rng.nextBounded(hot ? hot_span : span);
        for (auto &a : addrs)
            a = node_base + rng.nextBounded(sim::KiB(64));
    }

    CacheCost cost;
    {
        ssd::SsdDevice ssd(ssd_cfg);
        host::DirectIoEdgeStore store(host, ssd);
        sim::Tick t = 0;
        double t0 = now_s();
        for (const auto &addrs : gathers)
            t = store.readGather(t, addrs, 8);
        cost.raw_ops_per_s =
            static_cast<double>(gathers.size()) / (now_s() - t0);
    }
    {
        ssd::SsdDevice ssd(ssd_cfg);
        host::FeatureCacheParams params;
        params.policy = host::FeatureCachePolicy::Lru;
        params.line_bytes = sim::KiB(4);
        params.capacity_bytes = sim::MiB(32);
        host::FeatureCacheStore store(
            std::make_unique<host::DirectIoEdgeStore>(host, ssd),
            params);
        sim::Tick t = 0;
        double t0 = now_s();
        for (const auto &addrs : gathers)
            t = store.readGather(t, addrs, 8);
        cost.cached_ops_per_s =
            static_cast<double>(gathers.size()) / (now_s() - t0);
        cost.hit_frac = store.hitRate();
    }
    return cost;
}

/**
 * The MSHR/coalescing leg: a duplicate-heavy gather stream (entries of
 * one gather straddle the same hot lines, and concurrent gathers miss
 * on the same lines) submitted open-loop through the async port, so
 * misses genuinely overlap. Identical streams with the MSHR path on
 * and off; wall throughput, inner storage commands, and the simulated
 * makespan measure what coalescing and piggybacking buy.
 */
MshrCost
benchMshr(const BenchConfig &cfg)
{
    host::HostConfig host;
    host.scratchpad_bytes = sim::MiB(4);
    ssd::SsdConfig ssd_cfg;
    ssd_cfg.page_buffer_bytes = sim::MiB(8);

    // 80% of gathers land in a hot set barely larger than the cache
    // line count, so concurrent misses collide on the same lines.
    const std::uint64_t span = sim::MiB(512);
    const std::uint64_t hot_span = sim::MiB(4);
    std::vector<std::vector<std::uint64_t>> gathers(cfg.storage_gathers);
    sim::Rng rng(0x3577);
    for (auto &addrs : gathers) {
        addrs.resize(16);
        bool hot = rng.nextBounded(100) < 80;
        std::uint64_t node_base =
            rng.nextBounded(hot ? hot_span : span);
        // Entries cluster within a couple of lines of the base: heavy
        // intra-gather duplication once rounded to 4 KiB lines.
        for (auto &a : addrs)
            a = node_base + rng.nextBounded(sim::KiB(8));
    }

    auto run = [&](bool mshr, double &ops_per_s, double &inner_cmds,
                   double &piggyback_frac) {
        ssd::SsdDevice ssd(ssd_cfg);
        host::FeatureCacheParams params;
        params.policy = host::FeatureCachePolicy::Lru;
        params.line_bytes = sim::KiB(4);
        params.capacity_bytes = sim::MiB(8);
        params.mshr_enabled = mshr;
        host::FeatureCacheStore store(
            std::make_unique<host::DirectIoEdgeStore>(host, ssd),
            params);

        // Open-loop arrivals 500 ns apart: tens of requests overlap in
        // flight, the regime MSHRs exist for.
        sim::EventQueue eq;
        std::size_t completed = 0;
        double t0 = now_s();
        for (std::size_t i = 0; i < gathers.size(); ++i) {
            eq.schedule(sim::ns(500) * i, [&, i] {
                store.submitGather(eq, gathers[i], 8,
                                   [&completed](sim::Tick,
                                                sim::IoStatus) {
                                       ++completed;
                                   });
            });
        }
        sim::Tick makespan = eq.run();
        ops_per_s = static_cast<double>(completed) / (now_s() - t0);
        inner_cmds =
            static_cast<double>(store.ioChannel().submitted());
        const host::FeatureCacheStats &cs = store.stats();
        piggyback_frac =
            cs.misses ? static_cast<double>(cs.mshr_piggybacks) /
                            static_cast<double>(cs.misses)
                      : 0.0;
        return makespan;
    };

    MshrCost cost;
    double unused = 0;
    sim::Tick makespan_nomshr =
        run(false, cost.nomshr_ops_per_s, cost.inner_cmds_nomshr,
            unused);
    sim::Tick makespan_mshr = run(true, cost.mshr_ops_per_s,
                                  cost.inner_cmds_mshr,
                                  cost.piggyback_frac);
    cost.sim_speedup =
        makespan_mshr ? static_cast<double>(makespan_nomshr) /
                            static_cast<double>(makespan_mshr)
                      : 0.0;
    return cost;
}

/** Sampler throughput in sampled edges per second. */
Pair
benchSampler(const graph::CsrGraph &g, const BenchConfig &cfg)
{
    gnn::SageSampler sampler(cfg.fanouts);
    const std::uint64_t seed = 0xbe7c;

    // Identical batches on both paths: per-index RNG forks.
    auto targetsFor = [&](std::size_t i, sim::Rng &rng,
                          gnn::SampleScratch &scratch,
                          std::vector<graph::LocalNodeId> &targets) {
        rng = sim::Rng(seed).fork(i);
        gnn::selectTargetsInto(g, cfg.batch_size, rng, scratch, targets);
    };

    Pair p;
    {
        std::uint64_t edges = 0;
        gnn::SampleScratch scratch;
        std::vector<graph::LocalNodeId> targets;
        sim::Rng rng(0);
        targetsFor(0, rng, scratch, targets); // warmup batch
        edges += sampler.sampleBaseline(g, targets, rng)
                     .totalSampledEdges();
        edges = 0;
        double t0 = now_s();
        for (std::size_t i = 0; i < cfg.sampler_batches; ++i) {
            targetsFor(i, rng, scratch, targets);
            edges += sampler.sampleBaseline(g, targets, rng)
                         .totalSampledEdges();
        }
        p.naive = static_cast<double>(edges) / (now_s() - t0);
    }
    {
        std::uint64_t edges = 0;
        gnn::SampleScratch scratch;
        std::vector<graph::LocalNodeId> targets;
        gnn::Subgraph sg;
        sim::Rng rng(0);
        targetsFor(0, rng, scratch, targets); // warmup batch
        sampler.sampleInto(g, targets, rng, scratch, sg);
        double t0 = now_s();
        for (std::size_t i = 0; i < cfg.sampler_batches; ++i) {
            targetsFor(i, rng, scratch, targets);
            sampler.sampleInto(g, targets, rng, scratch, sg);
            edges += sg.totalSampledEdges();
        }
        p.fast = static_cast<double>(edges) / (now_s() - t0);
    }
    return p;
}

/** GFLOP/s of one GEMM variant under the given kernel mode. */
template <typename F>
double
gemmGflops(F &&call, double flops, std::size_t reps,
           gnn::KernelMode mode)
{
    gnn::ScopedKernelMode guard(mode);
    call(); // warmup
    double t0 = now_s();
    for (std::size_t r = 0; r < reps; ++r)
        call();
    double dt = now_s() - t0;
    return flops * static_cast<double>(reps) / dt / 1e9;
}

/**
 * The dispatch leg: one GEMM shape through every microkernel flavor
 * the runtime can select — the naive reference, the scalar-portable
 * tile, the AVX2+FMA tile (when the host supports it), and the
 * thread-parallel row-block decomposition on top of the best flavor.
 */
DispatchCost
benchKernelDispatch(const BenchConfig &cfg, const gnn::Tensor2D &a,
                    const gnn::Tensor2D &w, double flops)
{
    DispatchCost cost;
    cost.avx2_supported = gnn::cpuSupportsAvx2();
    auto call = [&] { gnn::matmul(a, w); };
    cost.naive_gflops = gemmGflops(call, flops, cfg.kernel_reps,
                                   gnn::KernelMode::Naive);
    {
        gnn::ScopedKernelDispatch guard(gnn::KernelDispatch::Scalar);
        cost.scalar_gflops = gemmGflops(call, flops, cfg.kernel_reps,
                                        gnn::KernelMode::Tiled);
    }
    if (cost.avx2_supported) {
        gnn::ScopedKernelDispatch guard(gnn::KernelDispatch::Avx2);
        cost.avx2_gflops = gemmGflops(call, flops, cfg.kernel_reps,
                                      gnn::KernelMode::Tiled);
    }
    {
        cost.gemm_threads = std::min(cfg.workers, 8u);
        gnn::ScopedKernelDispatch guard(gnn::KernelDispatch::Auto);
        gnn::ScopedGemmThreads threads(cost.gemm_threads);
        cost.threaded_gflops = gemmGflops(call, flops, cfg.kernel_reps,
                                          gnn::KernelMode::Tiled);
    }
    return cost;
}

/** End-to-end functional batch throughput (sample + train), batches/s. */
Pair
benchPipeline(const graph::CsrGraph &g, const BenchConfig &cfg)
{
    gnn::FeatureTable features(g.numNodes(), cfg.dim, 16);
    gnn::SageSampler sampler(cfg.fanouts);

    gnn::ModelConfig mc;
    mc.in_dim = cfg.dim;
    mc.hidden_dim = cfg.dim;
    mc.num_classes = 16;
    mc.depth = static_cast<unsigned>(cfg.fanouts.size());

    pipeline::ParallelSampleConfig psc;
    psc.workers = cfg.workers;
    psc.num_batches = cfg.pipeline_batches;
    psc.batch_size = cfg.batch_size;
    psc.seed = 0xe2e;

    Pair p;
    {
        // Naive: seed-style serial loop — hash-based sampler, naive
        // kernels, one thread, and the allocating forward/backward API
        // (fresh context and gradient tensors per batch, as the seed's
        // trainStep did).
        gnn::ScopedKernelMode guard(gnn::KernelMode::Naive);
        gnn::SageModel model(mc);
        double t0 = 0;
        // One untimed warmup batch (i == 0), then the timed run.
        for (std::size_t i = 0; i <= psc.num_batches; ++i) {
            if (i == 1)
                t0 = now_s();
            sim::Rng rng = sim::Rng(psc.seed).fork(i);
            auto targets = gnn::selectTargets(g, psc.batch_size, rng);
            gnn::Subgraph sg = sampler.sampleBaseline(g, targets, rng);

            std::vector<gnn::SageContext> ctxs;
            gnn::Tensor2D logits = model.forward(sg, features, &ctxs);
            auto labels = features.labels(sg.targets());
            gnn::Tensor2D d_logits;
            gnn::softmaxCrossEntropy(logits, labels, d_logits);
            gnn::Tensor2D d = std::move(d_logits);
            auto &layers = model.mutableLayers();
            for (std::size_t l = layers.size(); l-- > 0;) {
                gnn::SageLayerGrads grads;
                d = layers[l].backward(d, ctxs[l], grads);
                layers[l].applyGrads(grads,
                                     model.config().learning_rate);
            }
        }
        p.naive =
            static_cast<double>(psc.num_batches) / (now_s() - t0);
    }
    {
        // Fast: flat-table sampler on pool workers feeding the tiled
        // kernels through the overlapped pipeline.
        gnn::ScopedKernelMode guard(gnn::KernelMode::Tiled);
        gnn::SageModel model(mc);
        sim::ThreadPool pool(cfg.workers);
        // Untimed warmup batch to populate the scratch/workspaces.
        auto warm = psc;
        warm.num_batches = 1;
        pipeline::runSamplingPipeline(
            g, sampler, warm, &pool,
            [&](std::size_t, pipeline::FunctionalBatch &&batch) {
                model.trainStep(batch.subgraph, features);
            });
        double t0 = now_s();
        pipeline::runSamplingPipeline(
            g, sampler, psc, &pool,
            [&](std::size_t, pipeline::FunctionalBatch &&batch) {
                model.trainStep(batch.subgraph, features);
            });
        p.fast =
            static_cast<double>(psc.num_batches) / (now_s() - t0);
    }
    return p;
}

/** The bench's pass/fail line; the AVX2 bar applies only where the
 *  host can run the AVX2 microkernel at all. */
bool
acceptancePass(const Pair &sampler, const Pair &pipeline,
               const DispatchCost &dispatch)
{
    return sampler.speedup() >= 3.0 && pipeline.speedup() >= 2.0 &&
           (!dispatch.avx2_supported || dispatch.avx2Speedup() >= 2.0);
}

void
writeJson(std::ostream &os, const BenchConfig &cfg, const Pair &sampler,
          const Pair &mm, const Pair &mm_tn, const Pair &mm_nt,
          const Pair &pipeline, const DispatchCost &dispatch,
          const AdapterCost &adapter, const CacheCost &cache,
          const MshrCost &mshr)
{
    auto obj = [&os](const char *name, const Pair &p, const char *unit,
                     bool last = false) {
        os << "    \"" << name << "\": {\"naive\": " << p.naive
           << ", \"fast\": " << p.fast << ", \"speedup\": "
           << p.speedup() << ", \"unit\": \"" << unit << "\"}"
           << (last ? "\n" : ",\n");
    };
    os.precision(6);
    os << "{\n"
       << "  \"bench\": \"perf_hotpath\",\n"
       << "  \"schema_version\": 1,\n"
       << "  \"config\": {\n"
       << "    \"num_nodes\": " << cfg.num_nodes << ",\n"
       << "    \"avg_degree\": " << cfg.avg_degree << ",\n"
       << "    \"batch_size\": " << cfg.batch_size << ",\n"
       << "    \"fanouts\": [" << cfg.fanouts[0];
    for (std::size_t i = 1; i < cfg.fanouts.size(); ++i)
        os << ", " << cfg.fanouts[i];
    os << "],\n"
       << "    \"dim\": " << cfg.dim << ",\n"
       << "    \"workers\": " << cfg.workers << "\n"
       << "  },\n"
       << "  \"results\": {\n";
    obj("sampler_edges_per_s", sampler, "edges/s");
    obj("matmul_gflops", mm, "GFLOP/s");
    obj("matmul_tn_gflops", mm_tn, "GFLOP/s");
    obj("matmul_nt_gflops", mm_nt, "GFLOP/s");
    obj("pipeline_batches_per_s", pipeline, "batches/s");
    os << "    \"kernel_dispatch\": {\"naive_gflops\": "
       << dispatch.naive_gflops << ", \"scalar_gflops\": "
       << dispatch.scalar_gflops << ", \"avx2_gflops\": "
       << dispatch.avx2_gflops << ", \"threaded_gflops\": "
       << dispatch.threaded_gflops << ", \"gemm_threads\": "
       << dispatch.gemm_threads << ", \"avx2_supported\": "
       << (dispatch.avx2_supported ? "true" : "false")
       << ", \"avx2_speedup\": " << dispatch.avx2Speedup()
       << ", \"unit\": \"GFLOP/s\"},\n";
    os << "    \"storage_adapter\": {\"direct_ops_per_s\": "
       << adapter.direct_ops_per_s << ", \"adapter_ops_per_s\": "
       << adapter.adapter_ops_per_s << ", \"overhead_frac\": "
       << adapter.overheadFrac() << ", \"unit\": \"gathers/s\"},\n";
    os << "    \"feature_cache\": {\"raw_ops_per_s\": "
       << cache.raw_ops_per_s << ", \"cached_ops_per_s\": "
       << cache.cached_ops_per_s << ", \"hit_frac\": "
       << cache.hit_frac << ", \"unit\": \"gathers/s\"},\n";
    os << "    \"feature_cache_mshr\": {\"nomshr_ops_per_s\": "
       << mshr.nomshr_ops_per_s << ", \"mshr_ops_per_s\": "
       << mshr.mshr_ops_per_s << ", \"inner_cmds_nomshr\": "
       << mshr.inner_cmds_nomshr << ", \"inner_cmds_mshr\": "
       << mshr.inner_cmds_mshr << ", \"piggyback_frac\": "
       << mshr.piggyback_frac << ", \"sim_speedup\": "
       << mshr.sim_speedup << ", \"unit\": \"gathers/s\"}\n";
    os << "  },\n"
       << "  \"acceptance\": {\n"
       << "    \"sampler_speedup_target\": 3.0,\n"
       << "    \"sampler_speedup\": " << sampler.speedup() << ",\n"
       << "    \"pipeline_speedup_target\": 2.0,\n"
       << "    \"pipeline_speedup\": " << pipeline.speedup() << ",\n"
       << "    \"avx2_speedup_target\": 2.0,\n"
       << "    \"avx2_speedup\": " << dispatch.avx2Speedup() << ",\n"
       << "    \"pass\": "
       << (acceptancePass(sampler, pipeline, dispatch) ? "true"
                                                       : "false")
       << "\n  }\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    BenchConfig cfg;
    std::string out_path = "BENCH_hotpath.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            cfg.num_nodes = 1ULL << 16;
            cfg.sampler_batches = 4;
            cfg.gemm_rows = 4096;
            cfg.kernel_reps = 2;
            cfg.pipeline_batches = 4;
            cfg.storage_gathers = 4000;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--workers" && i + 1 < argc) {
            int n = std::atoi(argv[++i]);
            if (n < 1) {
                std::cerr << "perf_hotpath: --workers needs a count "
                             ">= 1\n";
                return 2;
            }
            cfg.workers = static_cast<unsigned>(n);
        } else {
            std::cerr << "usage: perf_hotpath [--quick] [--out <path>] "
                         "[--workers <n>]\n";
            return 2;
        }
    }

    std::cout << "perf_hotpath: building power-law graph ("
              << cfg.num_nodes << " nodes, avg degree "
              << cfg.avg_degree << ")...\n";
    graph::PowerLawParams params;
    params.num_nodes = cfg.num_nodes;
    params.avg_degree = cfg.avg_degree;
    params.seed = 42;
    graph::CsrGraph g = graph::generatePowerLaw(params);

    std::cout << "perf_hotpath: sampler (" << cfg.sampler_batches
              << " batches x " << cfg.batch_size << " targets)...\n";
    Pair sampler = benchSampler(g, cfg);

    std::cout << "perf_hotpath: GEMM kernels (" << cfg.gemm_rows
              << " rows)...\n";
    const std::size_t m = cfg.gemm_rows, d = 64;
    sim::Rng krng(7);
    gnn::Tensor2D a =
        gnn::Tensor2D::uniform(m, d, 1.0f, krng);
    gnn::Tensor2D w = gnn::Tensor2D::uniform(d, d, 1.0f, krng);
    gnn::Tensor2D dz = gnn::Tensor2D::uniform(m, d, 1.0f, krng);
    const double flops = 2.0 * static_cast<double>(m) * d * d;

    Pair mm, mm_tn, mm_nt;
    mm.naive = gemmGflops([&] { gnn::matmul(a, w); }, flops,
                          cfg.kernel_reps, gnn::KernelMode::Naive);
    mm.fast = gemmGflops([&] { gnn::matmul(a, w); }, flops,
                         cfg.kernel_reps, gnn::KernelMode::Tiled);
    mm_tn.naive = gemmGflops([&] { gnn::matmulTN(a, dz); }, flops,
                             cfg.kernel_reps, gnn::KernelMode::Naive);
    mm_tn.fast = gemmGflops([&] { gnn::matmulTN(a, dz); }, flops,
                            cfg.kernel_reps, gnn::KernelMode::Tiled);
    mm_nt.naive = gemmGflops([&] { gnn::matmulNT(dz, w); }, flops,
                             cfg.kernel_reps, gnn::KernelMode::Naive);
    mm_nt.fast = gemmGflops([&] { gnn::matmulNT(dz, w); }, flops,
                            cfg.kernel_reps, gnn::KernelMode::Tiled);

    std::cout << "perf_hotpath: kernel dispatch flavors ("
              << gnn::kernelDispatchName(gnn::resolvedKernelDispatch())
              << " resolved)...\n";
    DispatchCost dispatch = benchKernelDispatch(cfg, a, w, flops);

    std::cout << "perf_hotpath: end-to-end pipeline ("
              << cfg.pipeline_batches << " batches, " << cfg.workers
              << " workers)...\n";
    Pair pipeline = benchPipeline(g, cfg);

    std::cout << "perf_hotpath: storage blocking adapter ("
              << cfg.storage_gathers << " gathers)...\n";
    AdapterCost adapter = benchStorageAdapter(cfg);

    std::cout << "perf_hotpath: feature-cache decorator ("
              << cfg.storage_gathers << " gathers)...\n";
    CacheCost cache = benchFeatureCache(cfg);

    std::cout << "perf_hotpath: MSHR/coalescing miss path ("
              << cfg.storage_gathers << " concurrent gathers)...\n";
    MshrCost mshr = benchMshr(cfg);

    auto report = [](const char *name, const Pair &p, const char *unit) {
        std::cout << "  " << name << ": naive " << p.naive << " " << unit
                  << ", fast " << p.fast << " " << unit << "  ("
                  << p.speedup() << "x)\n";
    };
    std::cout.precision(4);
    report("sampler   ", sampler, "edges/s");
    report("matmul    ", mm, "GFLOP/s");
    report("matmulTN  ", mm_tn, "GFLOP/s");
    report("matmulNT  ", mm_nt, "GFLOP/s");
    report("pipeline  ", pipeline, "batches/s");
    std::cout << "  dispatch  : naive " << dispatch.naive_gflops
              << ", scalar " << dispatch.scalar_gflops << ", avx2 "
              << dispatch.avx2_gflops << ", threaded(x"
              << dispatch.gemm_threads << ") "
              << dispatch.threaded_gflops << " GFLOP/s  (avx2 "
              << dispatch.avx2Speedup() << "x vs naive)\n";
    std::cout << "  storage   : direct " << adapter.direct_ops_per_s
              << " gathers/s, adapter " << adapter.adapter_ops_per_s
              << " gathers/s  (overhead "
              << adapter.overheadFrac() * 100.0 << "%)\n";
    std::cout << "  cache     : raw " << cache.raw_ops_per_s
              << " gathers/s, cached " << cache.cached_ops_per_s
              << " gathers/s  (hit rate " << cache.hit_frac * 100.0
              << "%)\n";
    std::cout << "  mshr      : " << mshr.inner_cmds_nomshr
              << " -> " << mshr.inner_cmds_mshr
              << " storage cmds, piggyback "
              << mshr.piggyback_frac * 100.0 << "%, sim makespan "
              << mshr.sim_speedup << "x\n";

    std::ofstream json(out_path);
    if (!json) {
        std::cerr << "perf_hotpath: cannot open " << out_path << "\n";
        return 1;
    }
    writeJson(json, cfg, sampler, mm, mm_tn, mm_nt, pipeline, dispatch,
              adapter, cache, mshr);
    std::cout << "perf_hotpath: wrote " << out_path << "\n";

    const bool pass = acceptancePass(sampler, pipeline, dispatch);
    std::cout << "perf_hotpath: acceptance "
              << (pass ? "PASS" : "FAIL") << " (sampler "
              << sampler.speedup() << "x >= 3x, pipeline "
              << pipeline.speedup() << "x >= 2x, avx2 "
              << dispatch.avx2Speedup() << "x >= 2x where supported)\n";
    return pass ? 0 : 1;
}
