/**
 * @file
 * Fig 20: robustness to the sampling algorithm — repeat the end-to-end
 * comparison with GraphSAINT random-walk sampling instead of
 * GraphSAGE fanout sampling.
 *
 * Paper reference: ~8.2x average end-to-end speedup for
 * SmartSAGE(HW/SW) over the mmap baseline under GraphSAINT.
 */

#include <iostream>

#include "common.hh"

using namespace ssbench;

int
main()
{
    core::TableReporter table(
        "Fig 20: GraphSAINT sampling — speedup vs SSD (mmap)",
        {"Dataset", "SSD (mmap)", "SmartSAGE (SW)",
         "SmartSAGE (HW/SW)"});

    std::vector<double> hw_speedups;
    for (auto id : graph::allDatasets()) {
        const auto &wl = workload(id);
        auto tput = [&](core::DesignPoint dp) {
            auto sc = baseConfig(dp);
            sc.use_saint = true;
            sc.saint_walk_length = 4;
            sc.pipeline.num_batches = pipeline_batches;
            core::GnnSystem system(sc, wl);
            return system.runPipeline().throughput();
        };
        double mmap = tput(core::DesignPoint::SsdMmap);
        double sw = tput(core::DesignPoint::SmartSageSw);
        double hwsw = tput(core::DesignPoint::SmartSageHwSw);
        hw_speedups.push_back(hwsw / mmap);
        table.addRow({graph::datasetName(id), "1.00x",
                      core::fmtX(sw / mmap), core::fmtX(hwsw / mmap)});
    }
    table.print(std::cout);
    std::cout << "average HW/SW speedup "
              << core::fmtX(core::mean(hw_speedups))
              << " (paper: 8.2x avg)\n";
    return 0;
}
