/**
 * @file
 * Fig 5: LLC miss rate and DRAM bandwidth utilization during the
 * neighbor sampling stage under in-memory processing.
 *
 * Paper reference: average 62% LLC miss rate; average 21% of the
 * 125 GB/s DRAM peak consumed.
 */

#include <iostream>

#include "common.hh"
#include "gnn/sampler.hh"
#include "pipeline/profiler.hh"

using namespace ssbench;

int
main()
{
    graph::EdgeLayout layout;
    const unsigned workers = 12;

    core::TableReporter table(
        "Fig 5: neighbor sampling memory behaviour (in-memory "
        "processing)",
        {"Dataset", "LLC miss rate", "DRAM BW util (" +
                                         std::to_string(workers) +
                                         " workers)"});

    std::vector<double> miss_rates, bw_utils;
    for (auto id : graph::allDatasets()) {
        const auto &wl = workload(id);
        // The paper's 16 MiB LLC sits against hundreds of GBs of graph;
        // scale the modeled LLC to the same ratio of the sim-scale
        // edge file (0.5%), with a floor of one reasonable cache.
        host::HostConfig host;
        host.llc_bytes = std::max<std::uint64_t>(
            sim::KiB(64),
            static_cast<std::uint64_t>(0.005 *
                                       wl.edgeListBytes(layout)));
        pipeline::SamplingMemoryProfiler prof(host, layout);
        gnn::SageSampler sampler({25, 10});
        sim::Rng rng(1);
        for (int b = 0; b < 6; ++b) {
            auto targets = gnn::selectTargets(wl.graph, 1024, rng);
            sampler.sample(wl.graph, targets, rng, &prof);
        }
        double miss = prof.llcMissRate();
        double bw = prof.dramBwUtilization(workers);
        miss_rates.push_back(miss);
        bw_utils.push_back(bw);
        table.addRow({graph::datasetName(id), core::fmtPct(miss),
                      core::fmtPct(bw)});
    }
    table.addRow({"average", core::fmtPct(core::mean(miss_rates)),
                  core::fmtPct(core::mean(bw_utils))});
    table.print(std::cout);
    std::cout << "paper: avg LLC miss 62%, avg DRAM BW util 21%\n";
    return 0;
}
