/**
 * @file
 * Fig 14: single-worker neighbor sampling speedup of SmartSAGE(SW) and
 * SmartSAGE(HW/SW) over the baseline mmap SSD.
 *
 * Paper reference: SW ~1.5x; HW/SW ~10.1x average (max 12.6x).
 */

#include <iostream>

#include "common.hh"

using namespace ssbench;

int
main()
{
    core::TableReporter table(
        "Fig 14: single-worker sampling speedup vs SSD (mmap)",
        {"Dataset", "SSD (mmap)", "SmartSAGE (SW)",
         "SmartSAGE (HW/SW)", "batch ms (mmap/SW/HWSW)"});

    std::vector<double> sw_speedups, hw_speedups;
    for (auto id : graph::allDatasets()) {
        const auto &wl = workload(id);
        auto batch_us = [&](core::DesignPoint dp) {
            core::GnnSystem system(baseConfig(dp), wl);
            return system.runSamplingOnly(1, sampling_batches)
                .avg_batch_us;
        };
        double mmap = batch_us(core::DesignPoint::SsdMmap);
        double sw = batch_us(core::DesignPoint::SmartSageSw);
        double hwsw = batch_us(core::DesignPoint::SmartSageHwSw);
        sw_speedups.push_back(mmap / sw);
        hw_speedups.push_back(mmap / hwsw);
        table.addRow({graph::datasetName(id), "1.00x",
                      core::fmtX(mmap / sw), core::fmtX(mmap / hwsw),
                      core::fmt(mmap / 1000, 0) + " / " +
                          core::fmt(sw / 1000, 0) + " / " +
                          core::fmt(hwsw / 1000, 1)});
    }
    table.print(std::cout);
    std::cout << "average: SW " << core::fmtX(core::mean(sw_speedups))
              << ", HW/SW " << core::fmtX(core::mean(hw_speedups))
              << "  (paper: SW 1.5x, HW/SW 10.1x avg / 12.6x max)\n";
    return 0;
}
