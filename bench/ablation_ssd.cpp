/**
 * @file
 * Design-choice ablations beyond the paper's figures (DESIGN.md §6):
 *   1. SSD DRAM page-buffer size sweep — intra-batch reuse the ISP
 *      engine gets from the controller buffer.
 *   2. Flash channel-count sweep — the internal-bandwidth headroom
 *      that in-storage sampling exploits.
 *   3. Pipeline work-queue slack — worker count sweep for the mmap
 *      baseline (producer/consumer mismatch).
 */

#include <iostream>

#include "common.hh"

using namespace ssbench;

int
main()
{
    auto &wl = workload(graph::DatasetId::Reddit);

    // --- 1. page buffer sweep (HW/SW) ---
    {
        core::TableReporter t(
            "Ablation: SSD page-buffer size (SmartSAGE HW/SW, Reddit)",
            {"buffer fraction of edge file", "batches/s"});
        for (double frac : {0.02, 0.15, 0.4, 0.8, 1.5}) {
            auto sc = baseConfig(core::DesignPoint::SmartSageHwSw);
            sc.ssd_buffer_fraction = frac;
            core::GnnSystem system(sc, wl);
            t.addRow({core::fmtPct(frac),
                      core::fmt(system.runSamplingOnly(4, 8)
                                    .batchesPerSecond(),
                                2)});
        }
        t.print(std::cout);
    }

    // --- 2. flash channel sweep (HW/SW) ---
    {
        core::TableReporter t(
            "Ablation: flash channels (SmartSAGE HW/SW, Reddit)",
            {"channels", "batches/s"});
        for (unsigned ch : {2u, 4u, 8u, 16u, 32u}) {
            auto sc = baseConfig(core::DesignPoint::SmartSageHwSw);
            sc.ssd.flash.channels = ch;
            core::GnnSystem system(sc, wl);
            t.addRow({std::to_string(ch),
                      core::fmt(system.runSamplingOnly(4, 8)
                                    .batchesPerSecond(),
                                2)});
        }
        t.print(std::cout);
    }

    // --- 3. worker sweep for the mmap baseline ---
    {
        core::TableReporter t(
            "Ablation: producer workers (SSD mmap, Reddit)",
            {"workers", "batches/s", "GPU idle"});
        for (unsigned w : {1u, 2u, 4u, 8u, 12u, 16u}) {
            auto sc = baseConfig(core::DesignPoint::SsdMmap);
            sc.pipeline.workers = w;
            sc.pipeline.num_batches = 2 * w;
            core::GnnSystem system(sc, wl);
            auto r = system.runPipeline();
            t.addRow({std::to_string(w), core::fmt(r.throughput(), 2),
                      core::fmtPct(r.gpu_idle_frac)});
        }
        t.print(std::cout);
    }
    return 0;
}
