/**
 * @file
 * Design-choice ablations beyond the paper's figures (DESIGN.md §6),
 * expressed as declarative scenarios on core::ExperimentRunner:
 *   1. SSD DRAM page-buffer size sweep — intra-batch reuse the ISP
 *      engine gets from the controller buffer ("page-buffer" family).
 *   2. Flash geometry sweep — the internal-bandwidth headroom that
 *      in-storage sampling exploits ("ssd-geometry" family).
 *   3. Producer worker sweep — producer/consumer mismatch across
 *      design points ("worker-scaling" family).
 */

#include <iostream>

#include "common.hh"
#include "core/experiment.hh"
#include "core/scenario.hh"
#include "sim/logging.hh"

using namespace ssbench;

int
main()
{
    core::ExperimentRunner runner;
    for (const char *family :
         {"page-buffer", "ssd-geometry", "worker-scaling"}) {
        const core::Scenario *scenario = core::findScenario(family);
        SS_ASSERT(scenario, "missing built-in scenario ", family);
        core::ExperimentRunner::table(runner.run(*scenario))
            .print(std::cout);
    }
    return 0;
}
