/**
 * @file
 * Fig 19: FPGA-based CSD vs SSD(mmap) and SmartSAGE(SW) — latency
 * breakdown of the two-step P2P design at the training operating point
 * (12 concurrent workers). The SSD->FPGA hop dominates and the design
 * fails to beat even the software-only SmartSAGE.
 */

#include <iostream>
#include <memory>

#include "common.hh"
#include "pipeline/producer.hh"

using namespace ssbench;

int
main()
{
    const unsigned workers = 12;
    core::TableReporter table(
        "Fig 19: FPGA-based CSD sampling (12 workers, latency "
        "normalized to SSD (mmap))",
        {"Dataset", "Design", "SSD->FPGA", "Sampling(FPGA)",
         "FPGA->CPU", "Latency vs mmap"});

    for (auto id : graph::allDatasets()) {
        const auto &wl = workload(id);
        auto run = [&](core::DesignPoint dp,
                       std::unique_ptr<core::GnnSystem> &holder) {
            holder =
                std::make_unique<core::GnnSystem>(baseConfig(dp), wl);
            // Inverse throughput = effective per-batch latency.
            return 1.0 / holder->runSamplingOnly(workers, 16)
                             .batchesPerSecond();
        };

        std::unique_ptr<core::GnnSystem> h1, h2, h3;
        double mmap = run(core::DesignPoint::SsdMmap, h1);
        double sw = run(core::DesignPoint::SmartSageSw, h2);
        double fpga = run(core::DesignPoint::FpgaCsd, h3);

        auto *producer =
            dynamic_cast<pipeline::FpgaProducer *>(&h3->producer());
        const auto &acc = producer->accumulated();
        double total =
            static_cast<double>(acc.ssd_to_fpga + acc.sampling +
                                acc.fpga_to_cpu);

        table.addRow({graph::datasetName(id), "SSD (mmap)", "-", "-",
                      "-", "1.00x"});
        table.addRow({graph::datasetName(id), "SmartSAGE (SW)", "-",
                      "-", "-", core::fmtX(sw / mmap)});
        table.addRow({graph::datasetName(id), "FPGA-CSD",
                      core::fmtPct(acc.ssd_to_fpga / total),
                      core::fmtPct(acc.sampling / total),
                      core::fmtPct(acc.fpga_to_cpu / total),
                      core::fmtX(fpga / mmap)});
    }
    table.print(std::cout);
    std::cout << "paper: SSD->FPGA movement dominates; FPGA-CSD gives "
                 "no advantage even over SmartSAGE(SW)\n";
    return 0;
}
