/**
 * @file
 * Fig 6: end-to-end GNN training time broken into stages, plus total
 * latency normalized to the in-memory (DRAM) system, for DRAM vs the
 * baseline mmap SSD.
 *
 * Paper reference: SSD(mmap) averages 9.8x (max 19.6x) slower.
 */

#include <algorithm>
#include <iostream>

#include "common.hh"

using namespace ssbench;

int
main()
{
    core::TableReporter table(
        "Fig 6: latency breakdown + normalized latency, DRAM vs "
        "SSD (mmap)",
        {"Dataset", "Design", "Sampling", "FeatLookup", "CPU->GPU",
         "GNN", "Else", "Latency (vs DRAM)"});

    std::vector<double> slowdowns;
    for (auto id : graph::allDatasets()) {
        const auto &wl = workload(id);
        double dram_tput = 0;
        for (auto dp :
             {core::DesignPoint::DramOracle, core::DesignPoint::SsdMmap}) {
            auto sc = baseConfig(dp);
            sc.pipeline.num_batches = pipeline_batches;
            core::GnnSystem system(sc, wl);
            auto r = system.runPipeline();
            if (dp == core::DesignPoint::DramOracle)
                dram_tput = r.throughput();
            double slowdown = dram_tput / r.throughput();
            if (dp == core::DesignPoint::SsdMmap)
                slowdowns.push_back(slowdown);
            auto n = r.stages.normalized();
            table.addRow({graph::datasetName(id), core::designName(dp),
                          core::fmtPct(n.sampling),
                          core::fmtPct(n.feature),
                          core::fmtPct(n.transfer), core::fmtPct(n.gpu),
                          core::fmtPct(n.other), core::fmtX(slowdown)});
        }
    }
    table.print(std::cout);
    std::cout << "SSD(mmap) slowdown vs DRAM: avg "
              << core::fmtX(core::mean(slowdowns)) << ", max "
              << core::fmtX(*std::max_element(slowdowns.begin(),
                                              slowdowns.end()))
              << "  (paper: avg 9.8x, max 19.6x)\n";
    return 0;
}
