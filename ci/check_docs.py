#!/usr/bin/env python3
"""Documentation gate: lightweight markdown lint plus a dead
relative-link check over the repo's human-facing docs.

Checked files: README.md, DESIGN.md, and every *.md under docs/
(defaults; pass explicit paths to override). The checks are
dependency-free and deterministic:

  * dead relative link -> FAIL: a [text](target) whose target is a
    repo-relative path (not http(s)/mailto/#anchor) must exist on
    disk, resolved against the referencing file's directory. Anchors
    and "title" suffixes are stripped before the existence check.
  * empty link target  -> FAIL: [text]() renders as a broken link.
  * unbalanced code fence -> FAIL: an odd number of ``` fence lines
    swallows the rest of the document when rendered.
  * heading jump       -> warn only: a heading level that skips more
    than one step (e.g. # straight to ###) usually means a section
    was pasted from elsewhere; reported but not gating.

Fenced code blocks are excluded from link scanning so shell snippets
like `tar [options](...)` never false-positive.

Usage:
  python3 ci/check_docs.py [--root <repo>] [files...]
"""

import argparse
import glob
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]*)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s")
FENCE_RE = re.compile(r"^\s*(```|~~~)")

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def default_files(root):
    files = []
    for name in ("README.md", "DESIGN.md"):
        path = os.path.join(root, name)
        if os.path.exists(path):
            files.append(path)
    files.extend(sorted(glob.glob(
        os.path.join(root, "docs", "**", "*.md"), recursive=True)))
    return files


def check_file(path, errors, warnings):
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    in_fence = False
    fence_lines = 0
    prev_level = 0
    for lineno, line in enumerate(lines, 1):
        if FENCE_RE.match(line):
            fence_lines += 1
            in_fence = not in_fence
            continue
        if in_fence:
            continue

        heading = HEADING_RE.match(line)
        if heading:
            level = len(heading.group(1))
            if prev_level and level > prev_level + 1:
                warnings.append(
                    f"{path}:{lineno}: heading jumps from level "
                    f"{prev_level} to {level}")
            prev_level = level

        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if not target:
                errors.append(f"{path}:{lineno}: empty link target")
                continue
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            # Repo-relative file link: strip any #anchor suffix and
            # resolve against the referencing file's directory.
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), file_part))
            if not os.path.exists(resolved):
                errors.append(
                    f"{path}:{lineno}: dead relative link "
                    f"'{target}' (resolved: {resolved})")

    if fence_lines % 2 != 0:
        errors.append(f"{path}: unbalanced code fence "
                      f"({fence_lines} fence lines)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("files", nargs="*",
                        help="markdown files (default: README.md, "
                             "DESIGN.md, docs/**/*.md)")
    args = parser.parse_args()

    files = args.files or default_files(args.root)
    if not files:
        sys.exit("check_docs: no markdown files found")

    errors, warnings = [], []
    for path in files:
        if not os.path.exists(path):
            errors.append(f"{path}: file not found")
            continue
        check_file(path, errors, warnings)

    for w in warnings:
        print(f"warning: {w}")
    for e in errors:
        print(f"error: {e}")
    print(f"check_docs: {len(files)} files, {len(errors)} errors, "
          f"{len(warnings)} warnings")
    if errors:
        sys.exit(1)


if __name__ == "__main__":
    main()
