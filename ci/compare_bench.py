#!/usr/bin/env python3
"""Bench-regression gate: diff fresh BENCH_*.json artifacts against the
previous main-branch run.

The simulator is deterministic, so any value drift between two builds
is a real behavioral change; the gate distinguishes three outcomes per
compared file:

  * schema drift  -> FAIL: bench id or schema_version changed, a family
    or a cell disappeared, or a cell lost a metric the baseline had.
  * smoke-metric regression -> FAIL: a gated metric moved in the bad
    direction by more than --threshold (relative). Which metrics gate,
    and which direction counts as a regression, is declared in ONE
    table below (GATED_METRICS): "higher" metrics (throughput, goodput,
    SLO attainment) must not drop, "lower" metrics (latency
    percentiles, shed fraction) must not rise.
  * informational drift -> reported but not gating (counters,
    occupancy fractions, metrics added by new features).

Cells are matched on their identity axes (dataset, design, fanouts,
batch, mix, workers, knobs, serving axes) so reordering families or
appending new cells never trips the gate. A summary table is appended
to --summary (e.g. $GITHUB_STEP_SUMMARY) and echoed to stdout.

Usage:
  python3 ci/compare_bench.py --baseline <dir> --current <dir> \
      --file BENCH_designspace.json --file BENCH_serving.json \
      [--threshold 0.20] [--summary path]
"""

import argparse
import json
import os
import sys

# The one declarative table of gated metrics: metric name -> the
# direction that is GOOD ("higher" must not drop, "lower" must not
# rise). Every metric absent from this table is informational:
# counters and occupancy fractions move legitimately whenever a
# feature (e.g. a new cache policy) changes traffic.
#
# queue_wait_us is deliberately absent: it is a diagnostic of the
# admission queue, not a smoke headline, and its definition may be
# corrected (as in the only-queued-requests fix) without the serving
# product itself regressing.
GATED_METRICS = {
    # Throughput-like: the product of the sweep harnesses.
    "batches_per_s": "higher",
    "achieved_qps": "higher",
    # Recovery / multi-tenant headline metrics: goodput and SLO
    # attainment dropping, or the shed fraction rising, means more
    # offered requests went unanswered (or answered late) at the same
    # configuration.
    "goodput_qps": "higher",
    "slo_attainment": "higher",
    "shed_frac": "lower",
    # Checkpoint/restart headlines (recovery-space): modeled restart
    # cost, batches lost to a crash, and the checkpoint write tax on
    # the training makespan must not grow at the same configuration.
    "recovery_time_us": "lower",
    "lost_work_batches": "lower",
    "ckpt_overhead_frac": "lower",
    # Scale-out headline (scaling family): speedup over the one-node
    # cell per added node. Falling efficiency at the same configuration
    # means the partitioned backend got worse at turning nodes into
    # throughput.
    "scaling_efficiency": "higher",
    # Cache effectiveness headlines (cache-policy family): the demand
    # hit fraction and, on hoard-enabled cells, the useful fraction of
    # issued prefetch lines must not drop at the same configuration.
    "cache_hit_frac": "higher",
    "prefetch_hit_frac": "higher",
    # Latency-like: serving-mode percentile headlines.
    "avg_sample_ms": "lower",
    "p50_us": "lower",
    "p95_us": "lower",
    "p99_us": "lower",
    "max_us": "lower",
    "mean_us": "lower",
}

# Baseline values this close to zero are noise-dominated; skip the
# relative comparison rather than divide by nearly nothing.
EPSILON = 1e-9


def cell_key(cell):
    """Identity of a cell: every field except measurements."""
    axes = {
        k: v
        for k, v in cell.items()
        if k not in ("metrics", "notes")
    }
    return json.dumps(axes, sort_keys=True)


def load(path):
    with open(path) as f:
        return json.load(f)


class FileReport:
    def __init__(self, name):
        self.name = name
        self.failures = []  # gating
        self.notes = []     # informational
        self.cells_compared = 0
        self.worst = 0.0    # worst gated relative drift

    @property
    def status(self):
        return "FAIL" if self.failures else "ok"


def compare_file(name, base_doc, cur_doc, threshold, report):
    if base_doc.get("bench") != cur_doc.get("bench"):
        report.failures.append(
            f"bench id changed: {base_doc.get('bench')!r} -> "
            f"{cur_doc.get('bench')!r}")
    if base_doc.get("schema_version") != cur_doc.get("schema_version"):
        report.failures.append(
            f"schema_version changed: {base_doc.get('schema_version')} "
            f"-> {cur_doc.get('schema_version')}")

    base_families = base_doc.get("results", {})
    cur_families = cur_doc.get("results", {})
    for family, base_run in base_families.items():
        cur_run = cur_families.get(family)
        if cur_run is None:
            report.failures.append(f"family '{family}' disappeared")
            continue
        cur_cells = {cell_key(c): c for c in cur_run.get("cells", [])}
        for base_cell in base_run.get("cells", []):
            key = cell_key(base_cell)
            cur_cell = cur_cells.get(key)
            if cur_cell is None:
                label = "{}/{}".format(
                    base_cell.get("dataset", "?"),
                    base_cell.get("design", "?"))
                report.failures.append(
                    f"{family}: cell {label} disappeared "
                    f"(axes: {key})")
                continue
            report.cells_compared += 1
            compare_metrics(family, base_cell, cur_cell, threshold,
                            report)


def compare_metrics(family, base_cell, cur_cell, threshold, report):
    base_metrics = base_cell.get("metrics", {})
    cur_metrics = cur_cell.get("metrics", {})
    label = "{}: {}/{}".format(
        family, base_cell.get("dataset", "?"),
        base_cell.get("design", "?"))
    for extra in ("arrival_qps", "queue_depth"):
        if extra in base_cell:
            label += f"/{extra}={base_cell[extra]}"
    if base_cell.get("knobs"):
        label += "/" + ",".join(
            f"{k}={v}" for k, v in sorted(base_cell["knobs"].items()))

    for metric, base_value in base_metrics.items():
        if metric not in cur_metrics:
            report.failures.append(
                f"{label}: metric '{metric}' disappeared")
            continue
        cur_value = cur_metrics[metric]
        if abs(base_value) < EPSILON:
            continue
        rel = (cur_value - base_value) / abs(base_value)
        direction = GATED_METRICS.get(metric)
        if direction == "higher":
            bad = -rel
        elif direction == "lower":
            bad = rel
        else:
            if abs(rel) > threshold:
                report.notes.append(
                    f"{label}: {metric} moved {rel:+.1%} "
                    f"({base_value:g} -> {cur_value:g}) [not gated]")
            continue
        if bad > report.worst:
            report.worst = bad
        if bad > threshold:
            report.failures.append(
                f"{label}: {metric} regressed {bad:.1%} "
                f"({base_value:g} -> {cur_value:g})")


def render_summary(reports, threshold):
    lines = ["## Bench regression gate", ""]
    lines.append(
        f"Threshold: {threshold:.0%} on smoke metrics "
        f"({', '.join(sorted(GATED_METRICS))})")
    lines.append("")
    lines.append("| artifact | cells | worst drift | status |")
    lines.append("|---|---|---|---|")
    for r in reports:
        lines.append(
            f"| `{r.name}` | {r.cells_compared} | {r.worst:.1%} "
            f"| {r.status} |")
    lines.append("")
    for r in reports:
        for f in r.failures:
            lines.append(f"- **FAIL** `{r.name}`: {f}")
        for n in r.notes[:20]:
            lines.append(f"- note `{r.name}`: {n}")
        if len(r.notes) > 20:
            lines.append(
                f"- note `{r.name}`: ... {len(r.notes) - 20} more "
                "informational drifts")
    return "\n".join(lines) + "\n"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="directory with the previous artifacts")
    parser.add_argument("--current", required=True,
                        help="directory with the fresh artifacts")
    parser.add_argument("--file", action="append", default=[],
                        dest="files",
                        help="artifact file name to compare (repeat)")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative regression threshold "
                             "(default 0.20)")
    parser.add_argument("--summary", default=os.environ.get(
                            "GITHUB_STEP_SUMMARY"),
                        help="markdown summary sink (appended)")
    args = parser.parse_args()
    if not args.files:
        args.files = ["BENCH_designspace.json", "BENCH_serving.json"]

    reports = []
    failed = False
    for name in args.files:
        report = FileReport(name)
        reports.append(report)
        base_path = os.path.join(args.baseline, name)
        cur_path = os.path.join(args.current, name)
        if not os.path.exists(base_path):
            report.notes.append("no baseline artifact (new file?)")
            continue
        if not os.path.exists(cur_path):
            report.failures.append("fresh artifact missing")
            failed = True
            continue
        compare_file(name, load(base_path), load(cur_path),
                     args.threshold, report)
        failed = failed or bool(report.failures)

    summary = render_summary(reports, args.threshold)
    print(summary)
    if args.summary:
        with open(args.summary, "a") as f:
            f.write(summary)

    if failed:
        sys.exit("bench regression gate failed (see summary above)")


if __name__ == "__main__":
    main()
