/** @file Feature-cache unit tests (ctest label `cache`): replacement
 *  policy goldens on scripted access traces (LRU/CLOCK eviction order,
 *  LFU-lite frequency ordering, degree-pin set construction), the
 *  decorator's hit-bypass timing, and capacity-zero passthrough
 *  byte-identity against the raw store. */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "graph/csr.hh"
#include "graph/layout.hh"
#include "host/feature_cache.hh"
#include "host/io_path.hh"
#include "sim/random.hh"

using namespace smartsage;
using namespace smartsage::host;

namespace
{

/** A policy instance with @p lines capacity at 1-byte lines. */
std::unique_ptr<CacheReplacementPolicy>
makePolicy(FeatureCachePolicy policy, std::uint64_t lines)
{
    FeatureCacheParams params;
    params.policy = policy;
    params.line_bytes = 1;
    params.capacity_bytes = lines;
    return makeCacheReplacementPolicy(params);
}

} // namespace

TEST(CachePolicyGolden, LruEvictsLeastRecentlyTouched)
{
    auto lru = makePolicy(FeatureCachePolicy::Lru, 3);

    // Misses fill in order; capacity 3 holds {A=1, B=2, C=3}.
    for (std::uint64_t line : {1, 2, 3}) {
        EXPECT_FALSE(lru->access(line));
        EXPECT_FALSE(lru->fill(line)); // no victim while filling up
    }
    EXPECT_EQ(lru->size(), 3u);

    // Touch A: recency order is now A, C, B (MRU first).
    EXPECT_TRUE(lru->access(1));

    // Filling D evicts the LRU line B — not the first-filled A.
    EXPECT_FALSE(lru->access(4));
    EXPECT_TRUE(lru->fill(4));
    EXPECT_FALSE(lru->contains(2));
    EXPECT_TRUE(lru->contains(1));
    EXPECT_TRUE(lru->contains(3));
    EXPECT_TRUE(lru->contains(4));

    // Next victim is C (untouched since fill).
    EXPECT_TRUE(lru->fill(5));
    EXPECT_FALSE(lru->contains(3));

    lru->reset();
    EXPECT_EQ(lru->size(), 0u);
    EXPECT_FALSE(lru->access(1));
}

TEST(CachePolicyGolden, ClockGivesReferencedLinesASecondChance)
{
    auto clock = makePolicy(FeatureCachePolicy::Clock, 3);

    for (std::uint64_t line : {1, 2, 3})
        EXPECT_FALSE(clock->fill(line));

    // Reference A; the sweep must clear A's bit, pass it over, and
    // evict the unreferenced B instead.
    EXPECT_TRUE(clock->access(1));
    EXPECT_TRUE(clock->fill(4));
    EXPECT_FALSE(clock->contains(2));
    EXPECT_TRUE(clock->contains(1));
    EXPECT_TRUE(clock->contains(3));
    EXPECT_TRUE(clock->contains(4));

    // Reference C and D; the next sweep clears them from the hand
    // onward and comes back around to evict A (bit spent above).
    EXPECT_TRUE(clock->access(3));
    EXPECT_TRUE(clock->access(4));
    EXPECT_TRUE(clock->fill(5));
    EXPECT_FALSE(clock->contains(1));
    EXPECT_TRUE(clock->contains(3));
    EXPECT_TRUE(clock->contains(4));
    EXPECT_TRUE(clock->contains(5));
}

TEST(CachePolicyGolden, LfuLiteEvictsColdestWithFifoTiebreak)
{
    auto lfu = makePolicy(FeatureCachePolicy::LfuLite, 2);

    EXPECT_FALSE(lfu->fill(1)); // A: freq 1
    EXPECT_FALSE(lfu->fill(2)); // B: freq 1
    EXPECT_TRUE(lfu->access(1)); // A: freq 2

    // C's fill evicts B: lowest frequency loses.
    EXPECT_TRUE(lfu->fill(3));
    EXPECT_FALSE(lfu->contains(2));
    EXPECT_TRUE(lfu->contains(1));

    // Tie at freq 2: the earlier-filled A loses (FIFO tiebreak).
    EXPECT_TRUE(lfu->access(3));
    EXPECT_TRUE(lfu->fill(4));
    EXPECT_FALSE(lfu->contains(1));
    EXPECT_TRUE(lfu->contains(3));
    EXPECT_TRUE(lfu->contains(4));
}

TEST(CachePolicyGolden, DegreePinPinsHottestNodesAndNeverFills)
{
    // Degrees per node: 0 -> 3, 1 -> 1, 2 -> 5, 3 -> 2 (11 edges).
    graph::CsrGraph g({0, 3, 4, 9, 11},
                      {1, 2, 3, 0, 0, 1, 3, 3, 3, 0, 2});
    graph::EdgeLayout layout; // 8 B entries at base 0

    // 16 B lines = 2 entries per line. Node 2's row spans entries
    // [4, 9) -> bytes [32, 72) -> lines 2, 3, 4; node 0 spans lines
    // 0, 1; node 3 (degree 2) starts at entry 9 -> lines 4 (already
    // taken), 5.
    auto lines = degreePinnedLines(g, layout, 16, 5);
    EXPECT_EQ(lines, (std::vector<std::uint64_t>{2, 3, 4, 0, 1}));

    // One more line reaches into node 3's row without re-pinning the
    // shared line 4.
    auto wider = degreePinnedLines(g, layout, 16, 6);
    EXPECT_EQ(wider, (std::vector<std::uint64_t>{2, 3, 4, 0, 1, 5}));

    FeatureCacheParams params;
    params.policy = FeatureCachePolicy::DegreePin;
    params.line_bytes = 16;
    params.capacity_bytes = 5 * 16;
    params.pinned_lines = lines;
    auto pin = makeCacheReplacementPolicy(params);
    EXPECT_TRUE(pin->access(2));
    EXPECT_FALSE(pin->access(5));
    EXPECT_FALSE(pin->fill(5)); // static set: misses stay misses
    EXPECT_FALSE(pin->contains(5));
    EXPECT_EQ(pin->size(), 5u);
}

TEST(FeatureCacheStore, HitsBypassTheHostIoChannel)
{
    HostConfig host;
    FeatureCacheParams params;
    params.policy = FeatureCachePolicy::Lru;
    params.line_bytes = sim::KiB(4);
    params.capacity_bytes = sim::MiB(1);
    params.hit = sim::ns(150);
    FeatureCacheStore store(std::make_unique<DramEdgeStore>(host),
                            params);

    std::vector<std::uint64_t> addrs{0, 64, 4096 + 128};

    // Cold gather: the miss flows through the inner store's channel
    // and fills lines 0 and 1 on completion.
    sim::Tick cold = store.readGather(0, addrs, 8);
    EXPECT_GT(cold, 0u);
    EXPECT_EQ(store.ioChannel().submitted(), 1u);
    EXPECT_EQ(store.stats().misses, 3u); // line touches, not requests
    EXPECT_EQ(store.residentLines(), 2u);

    // Warm gather: completes at exactly hit_ns past arrival and never
    // enters the channel.
    sim::Tick warm = store.readGather(cold, addrs, 8);
    EXPECT_EQ(warm, cold + sim::ns(150));
    EXPECT_EQ(store.ioChannel().submitted(), 1u);
    EXPECT_EQ(store.stats().hits, 3u);

    store.reset();
    EXPECT_EQ(store.stats().hits + store.stats().misses, 0u);
    EXPECT_EQ(store.residentLines(), 0u);
    EXPECT_EQ(store.ioChannel().submitted(), 0u);
}

TEST(FeatureCacheStore, CapacityZeroIsTickIdenticalToTheRawStore)
{
    // A zero-capacity cache can never hit, so every request forwards
    // unchanged: the decorated tick stream must be byte-identical to
    // the raw store's on an identical pseudo-random gather stream.
    HostConfig host;
    host.scratchpad_bytes = sim::MiB(1); // small: real hit/miss mix
    ssd::SsdConfig ssd_cfg;

    ssd::SsdDevice raw_ssd(ssd_cfg);
    DirectIoEdgeStore raw(host, raw_ssd);

    ssd::SsdDevice wrapped_ssd(ssd_cfg);
    FeatureCacheParams params;
    params.capacity_bytes = 0;
    FeatureCacheStore wrapped(
        std::make_unique<DirectIoEdgeStore>(host, wrapped_ssd), params);

    sim::Rng rng(0xcafe);
    sim::Tick t_raw = 0, t_wrapped = 0;
    for (int i = 0; i < 200; ++i) {
        std::vector<std::uint64_t> addrs(8);
        std::uint64_t base = rng.nextBounded(sim::MiB(64));
        for (auto &a : addrs)
            a = base + rng.nextBounded(sim::KiB(32));
        t_raw = raw.readGather(t_raw, addrs, 8);
        t_wrapped = wrapped.readGather(t_wrapped, addrs, 8);
        ASSERT_EQ(t_raw, t_wrapped) << "gather " << i;
    }
    EXPECT_EQ(wrapped.stats().hits, 0u);
    EXPECT_EQ(wrapped.residentLines(), 0u);
}
