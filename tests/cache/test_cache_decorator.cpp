/** @file Feature-cache decorator integration (ctest label `cache`):
 *  the cache composes over every servable backend through the knob
 *  system, async submissions and the blocking adapters agree tick for
 *  tick, capacity-zero configs build no decorator at all, and the
 *  cache-policy scenario family is bit-reproducible at any runner
 *  worker count. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/backend.hh"
#include "core/experiment.hh"
#include "core/scenario.hh"
#include "core/serving.hh"
#include "core/system.hh"
#include "host/feature_cache.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

using namespace smartsage;
using namespace smartsage::core;

namespace
{

const Workload &
smallWorkload()
{
    static Workload wl = Workload::make(graph::DatasetId::Amazon, false);
    return wl;
}

SystemConfig
cachedConfig(const std::string &backend, double policy,
             double capacity_fraction)
{
    SystemConfig sc;
    sc.backend = backend;
    sc.fanouts = {6, 3};
    sc.pipeline.batch_size = 64;
    sc.backend_knobs["cache.policy"] = policy;
    sc.backend_knobs["cache.capacity_fraction"] = capacity_fraction;
    return sc;
}

/** A deterministic gather request stream over the edge-list span. */
std::vector<std::vector<std::uint64_t>>
gatherStream(const GnnSystem &system, std::size_t count)
{
    const graph::CsrGraph &g = system.workload().graph;
    const graph::EdgeLayout &layout = system.config().layout;
    sim::Rng rng(0x5eed);
    std::vector<std::vector<std::uint64_t>> stream(count);
    for (auto &addrs : stream) {
        addrs.resize(6);
        for (auto &a : addrs)
            a = layout.addrOf(rng.nextBounded(g.numEdges()));
    }
    return stream;
}

} // namespace

TEST(CacheDecorator, EveryServableBackendGainsTheCache)
{
    for (const std::string &id : servableBackendIds()) {
        GnnSystem system(cachedConfig(id, /*lru*/ 0, 0.25),
                         smallWorkload());
        const host::FeatureCacheStore *cache = system.featureCache();
        ASSERT_NE(cache, nullptr) << id;
        EXPECT_GT(cache->params().capacityLines(), 0u) << id;

        auto r = system.runSamplingOnly(2, 3);
        EXPECT_EQ(r.batches, 3u) << id;
        EXPECT_GT(cache->stats().hits + cache->stats().misses, 0u)
            << id;
    }
}

TEST(CacheDecorator, CapacityZeroBuildsNoDecorator)
{
    for (const std::string &id : servableBackendIds()) {
        GnnSystem plain(cachedConfig(id, 0, 0.0), smallWorkload());
        EXPECT_EQ(plain.featureCache(), nullptr) << id;
    }
}

TEST(CacheDecorator, AsyncAndBlockingPathsAgreePerBackend)
{
    // Two identically configured systems per backend: one driven
    // through the blocking adapters, one through raw async
    // submissions (one request in flight, so no queueing). The cache
    // decorates both, and the completion ticks must agree exactly.
    for (const std::string &id : servableBackendIds()) {
        GnnSystem blocking_sys(cachedConfig(id, /*clock*/ 1, 0.2),
                               smallWorkload());
        GnnSystem async_sys(cachedConfig(id, /*clock*/ 1, 0.2),
                            smallWorkload());
        host::EdgeStore *blocking = blocking_sys.edgeStore();
        host::EdgeStore *async = async_sys.edgeStore();
        ASSERT_NE(blocking, nullptr) << id;

        auto stream = gatherStream(blocking_sys, 64);
        sim::EventQueue eq;
        sim::Tick t_blocking = 0, t_async = 0;
        for (std::size_t i = 0; i < stream.size(); ++i) {
            t_blocking = blocking->readGather(t_blocking, stream[i], 8);

            sim::Tick finish = 0;
            eq.schedule(t_async, [&, i] {
                async->submitGather(eq, stream[i], 8,
                                    [&finish](sim::Tick f, sim::IoStatus) {
                                        finish = f;
                                    });
            });
            eq.run();
            t_async = finish;
            ASSERT_EQ(t_blocking, t_async) << id << " gather " << i;
        }
    }
}

TEST(CacheDecorator, ServingRunsThroughTheCache)
{
    // The serving harness submits through edgeStore(): with a cache in
    // front, warm requests hit and the channel carries only misses.
    GnnSystem system(cachedConfig("ssd-mmap", /*lru*/ 0, 0.5),
                     smallWorkload());
    ServingConfig sc;
    sc.arrival_qps = 20000;
    sc.num_requests = 256;
    ServingResult r = runServingLoad(system, sc);
    EXPECT_EQ(r.requests, 256u);

    const host::FeatureCacheStore *cache = system.featureCache();
    ASSERT_NE(cache, nullptr);
    EXPECT_GT(cache->stats().hits, 0u);
    EXPECT_LT(cache->ioChannel().submitted(), 256u);
}

TEST(CacheDecorator, PrefetchCellsReportUsefulHitsWorkerInvariantly)
{
    // Hoard-prefetch cells must (a) surface a nonzero
    // prefetch_hit_frac — the sampler announces each batch's gather
    // list before demanding it, so announced lines get demanded — and
    // (b) stay bit-identical across runner worker counts.
    const Scenario *family = findScenario("cache-policy-throughput");
    ASSERT_NE(family, nullptr);
    Scenario s = smokeVariant(*family);
    s.backends = {"ssd-mmap"};
    s.overrides = {{{"cache.policy", 0},
                    {"cache.capacity_fraction", 0.4},
                    {"cache.prefetch.enabled", 1}}};

    auto renderAt = [&](unsigned workers) {
        RunnerOptions options;
        options.workers = workers;
        ExperimentRunner runner(options);
        std::vector<ScenarioRun> runs{runner.run(s)};
        std::ostringstream json;
        writeDesignSpaceJson(json, runs, "cache_policy");
        return json.str();
    };
    std::string one = renderAt(1);
    EXPECT_EQ(one, renderAt(3));

    // The metric is real, not a zero placeholder: announced batch
    // lines are demanded by the very batch that announced them.
    const std::string key = "\"prefetch_hit_frac\": ";
    std::string::size_type pos = one.find(key);
    ASSERT_NE(pos, std::string::npos);
    EXPECT_GT(std::stod(one.substr(pos + key.size())), 0.0);
}

TEST(CacheDecorator, CachePolicyFamilyIsWorkerCountInvariant)
{
    // The cache-policy artifact must be a pure function of the
    // scenario, not of runner scheduling: identical JSON at any
    // --workers count.
    const Scenario *family = findScenario("cache-policy-throughput");
    ASSERT_NE(family, nullptr);
    Scenario s = smokeVariant(*family);
    s.backends = {"ssd-mmap", "tiered-hybrid"};
    s.overrides = {{},
                   {{"cache.policy", 0},
                    {"cache.capacity_fraction", 0.25}},
                   {{"cache.policy", 3},
                    {"cache.capacity_fraction", 0.25}}};

    auto renderAt = [&](unsigned workers) {
        RunnerOptions options;
        options.workers = workers;
        ExperimentRunner runner(options);
        std::vector<ScenarioRun> runs{runner.run(s)};
        std::ostringstream json;
        writeDesignSpaceJson(json, runs, "cache_policy");
        return json.str();
    };
    std::string one = renderAt(1);
    std::string three = renderAt(3);
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(one, three);
}
