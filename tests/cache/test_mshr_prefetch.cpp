/** @file MSHR / coalescing / hoard-prefetch tests (ctest label
 *  `cache`): secondary-miss piggybacking on an in-flight fill
 *  (tick-golden against the legacy duplicate-read path), intra-gather
 *  line dedup, MSHR-full stall-and-retry, prefetch-then-demand
 *  upgrade through the MSHR, coalesced failed-fill accounting under
 *  fault injection, the mshr.enabled=0 legacy forwarding shape, and
 *  the no-in-flight-state guarantee of residentLineIds. */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "host/feature_cache.hh"
#include "host/io_path.hh"
#include "sim/event_queue.hh"
#include "ssd/ssd_device.hh"

using namespace smartsage;
using namespace smartsage::host;

namespace
{

/** An inner store that records every gather's address vector, so the
 *  tests can pin exactly what traffic the decorator forwards. */
class ProbeEdgeStore : public DramEdgeStore
{
  public:
    using DramEdgeStore::DramEdgeStore;

    void
    submitGather(sim::EventQueue &eq,
                 const std::vector<std::uint64_t> &addrs,
                 unsigned entry_bytes, sim::IoCompletion done,
                 const sim::DispatchTag &tag = {}) override
    {
        forwarded.push_back(addrs);
        DramEdgeStore::submitGather(eq, addrs, entry_bytes,
                                    std::move(done), tag);
    }

    std::vector<std::vector<std::uint64_t>> forwarded;
};

/** LRU cache over a fresh direct-I/O store on its own SSD. */
struct CachedDirectIo
{
    explicit CachedDirectIo(FeatureCacheParams params,
                            HostConfig host = {})
        : ssd(ssd::SsdConfig{}),
          store(std::make_unique<DirectIoEdgeStore>(host, ssd), params)
    {
    }

    ssd::SsdDevice ssd;
    FeatureCacheStore store;
};

FeatureCacheParams
lruParams()
{
    FeatureCacheParams params;
    params.policy = FeatureCachePolicy::Lru;
    params.line_bytes = sim::KiB(4);
    params.capacity_bytes = sim::MiB(1);
    return params;
}

} // namespace

TEST(Mshr, SecondaryMissPiggybacksOnTheInFlightFill)
{
    // Two requests miss on the same line while the first fill is in
    // flight. With MSHRs the second registers as a waiter: one storage
    // command, both completions at the single fill's finish tick. The
    // legacy path issues a duplicate read and finishes later.
    std::vector<std::uint64_t> addrs{0, 64};
    auto run = [&](bool mshr, std::uint64_t &submitted,
                   sim::Tick &finish_a, sim::Tick &finish_b) {
        FeatureCacheParams params = lruParams();
        params.mshr_enabled = mshr;
        CachedDirectIo c(params);
        sim::EventQueue eq;
        eq.schedule(0, [&] {
            c.store.submitGather(eq, addrs, 8,
                                 [&](sim::Tick t, sim::IoStatus s) {
                                     EXPECT_EQ(s, sim::IoStatus::Ok);
                                     finish_a = t;
                                 });
        });
        // 100 ns later: far before a 4 KiB direct-I/O read completes.
        eq.schedule(sim::ns(100), [&] {
            c.store.submitGather(eq, addrs, 8,
                                 [&](sim::Tick t, sim::IoStatus s) {
                                     EXPECT_EQ(s, sim::IoStatus::Ok);
                                     finish_b = t;
                                 });
        });
        eq.run();
        submitted = c.store.ioChannel().submitted();
        if (mshr) {
            EXPECT_EQ(c.store.stats().mshr_piggybacks, 1u);
            EXPECT_EQ(c.store.stats().mshr_stalls, 0u);
        }
    };

    std::uint64_t submitted_mshr = 0, submitted_legacy = 0;
    sim::Tick a_mshr = 0, b_mshr = 0, a_legacy = 0, b_legacy = 0;
    run(true, submitted_mshr, a_mshr, b_mshr);
    run(false, submitted_legacy, a_legacy, b_legacy);

    // One storage command versus the legacy duplicate read.
    EXPECT_EQ(submitted_mshr, 1u);
    EXPECT_EQ(submitted_legacy, 2u);
    // Tick-golden piggyback: the waiter completes exactly when the one
    // fill lands — the same tick as the primary miss.
    EXPECT_EQ(b_mshr, a_mshr);
    EXPECT_GT(a_mshr, sim::ns(100)); // a real storage fill, not a hit
    // Both completions land; the legacy pair ran as two commands.
    EXPECT_GT(a_legacy, 0u);
    EXPECT_GT(b_legacy, 0u);
}

TEST(Mshr, IntraGatherDuplicateLinesIssueOnce)
{
    // Eight entries inside one 4 KiB line: the coalesced path issues a
    // single one-line fill; the legacy path forwards all eight
    // addresses to storage.
    std::vector<std::uint64_t> addrs;
    for (std::uint64_t i = 0; i < 8; ++i)
        addrs.push_back(i * 256);

    auto run = [&](bool mshr, sim::Tick &finish) {
        FeatureCacheParams params = lruParams();
        params.mshr_enabled = mshr;
        CachedDirectIo c(params);
        finish = c.store.readGather(0, addrs, 8);
        EXPECT_EQ(c.store.ioChannel().submitted(), 1u);
        EXPECT_EQ(c.store.stats().misses, 8u); // per touch, as before
        EXPECT_EQ(c.store.residentLines(), 1u);
        if (mshr)
            EXPECT_EQ(c.store.stats().gather_dedup, 7u);
    };

    sim::Tick finish_mshr = 0, finish_legacy = 0;
    run(true, finish_mshr);
    run(false, finish_legacy);
    // The one-line fill is never slower than the eight-entry
    // forwarded gather (the direct-I/O store coalesces blocks, so the
    // two can tie; the dedup counter above is the behavioral pin).
    EXPECT_LE(finish_mshr, finish_legacy);
}

TEST(Mshr, FullTableParksTheRequestAndRetriesInFifoOrder)
{
    // One MSHR entry: the second concurrent miss (a different line)
    // cannot allocate, parks with the stall accounted, and issues its
    // fill only after the first completes — strictly later.
    FeatureCacheParams params = lruParams();
    params.mshr_entries = 1;
    CachedDirectIo c(params);

    std::vector<std::uint64_t> line0{0};
    std::vector<std::uint64_t> line1{sim::KiB(8)};
    sim::EventQueue eq;
    sim::Tick finish_a = 0, finish_b = 0;
    eq.schedule(0, [&] {
        c.store.submitGather(eq, line0, 8,
                             [&](sim::Tick t, sim::IoStatus s) {
                                 EXPECT_EQ(s, sim::IoStatus::Ok);
                                 finish_a = t;
                             });
    });
    eq.schedule(sim::ns(100), [&] {
        c.store.submitGather(eq, line1, 8,
                             [&](sim::Tick t, sim::IoStatus s) {
                                 EXPECT_EQ(s, sim::IoStatus::Ok);
                                 finish_b = t;
                             });
    });
    eq.run();

    EXPECT_EQ(c.store.stats().mshr_stalls, 1u);
    EXPECT_EQ(c.store.ioChannel().submitted(), 2u);
    EXPECT_GT(finish_a, 0u);
    EXPECT_GT(finish_b, finish_a); // parked fill ran after the first
    EXPECT_EQ(c.store.residentLines(), 2u);
}

TEST(Prefetch, DemandUpgradesAnInFlightPrefetchThroughTheMshr)
{
    FeatureCacheParams params = lruParams();
    params.prefetch_enabled = true;
    CachedDirectIo c(params);

    std::vector<std::uint64_t> addrs{0, 64};
    sim::EventQueue eq;
    sim::Tick demand_finish = 0;
    eq.schedule(0,
                [&] { c.store.announceGather(eq, addrs, 8); });
    // Demand arrives while the hoard fill is in flight: it attaches as
    // a waiter (one storage command total) and the line installs as
    // demanded, not hoarded.
    eq.schedule(sim::ns(100), [&] {
        c.store.submitGather(eq, addrs, 8,
                             [&](sim::Tick t, sim::IoStatus s) {
                                 EXPECT_EQ(s, sim::IoStatus::Ok);
                                 demand_finish = t;
                             });
    });
    eq.run();

    const FeatureCacheStats &cs = c.store.stats();
    EXPECT_EQ(c.store.ioChannel().submitted(), 1u);
    EXPECT_EQ(cs.prefetch_issued, 1u);
    EXPECT_EQ(cs.prefetch_useful, 1u);
    EXPECT_EQ(cs.mshr_piggybacks, 1u);
    EXPECT_GT(demand_finish, 0u);
    EXPECT_EQ(c.store.residentLines(), 1u);

    // A later touch is a plain hit; the upgrade was counted once.
    sim::Tick warm = c.store.readGather(demand_finish, addrs, 8);
    EXPECT_EQ(warm, demand_finish + params.hit);
    EXPECT_EQ(c.store.stats().prefetch_useful, 1u);
}

TEST(Prefetch, HoardedLineCountsUsefulOnFirstDemandHit)
{
    FeatureCacheParams params = lruParams();
    params.prefetch_enabled = true;
    CachedDirectIo c(params);

    std::vector<std::uint64_t> addrs{0};
    sim::EventQueue eq;
    eq.schedule(0,
                [&] { c.store.announceGather(eq, addrs, 8); });
    eq.run(); // hoard fill completes; the line is resident

    EXPECT_EQ(c.store.stats().prefetch_issued, 1u);
    EXPECT_EQ(c.store.stats().prefetch_useful, 0u);
    EXPECT_EQ(c.store.residentLines(), 1u);
    // An announcement perturbs no demand counters.
    EXPECT_EQ(c.store.stats().hits + c.store.stats().misses, 0u);

    // First demand touch: a DRAM-tier hit, and the hoard's credit.
    sim::Tick warm = c.store.readGather(sim::ms(1), addrs, 8);
    EXPECT_EQ(warm, sim::ms(1) + params.hit);
    EXPECT_EQ(c.store.stats().prefetch_useful, 1u);
    EXPECT_DOUBLE_EQ(c.store.stats().prefetchHitRate(), 1.0);

    // Second touch: plain hit, no double credit.
    c.store.readGather(sim::ms(2), addrs, 8);
    EXPECT_EQ(c.store.stats().prefetch_useful, 1u);
}

TEST(Prefetch, BudgetAndFullTableShedLinesInsteadOfParking)
{
    FeatureCacheParams params = lruParams();
    params.prefetch_enabled = true;
    params.prefetch_max_lines = 2;
    CachedDirectIo c(params);

    // Four distinct lines announced with a budget of two.
    std::vector<std::uint64_t> addrs{0, sim::KiB(8), sim::KiB(16),
                                     sim::KiB(24)};
    sim::EventQueue eq;
    eq.schedule(0,
                [&] { c.store.announceGather(eq, addrs, 8); });
    eq.run();

    EXPECT_EQ(c.store.stats().prefetch_issued, 2u);
    EXPECT_EQ(c.store.stats().prefetch_dropped, 2u);
    EXPECT_EQ(c.store.stats().mshr_stalls, 0u); // shed, never parked
    EXPECT_EQ(c.store.residentLines(), 2u);
}

TEST(FaultLabels, CoalescedFailedFillCountsOnceAndErrorsEveryWaiter)
{
    // Every storage attempt fails: three requests coalesce onto one
    // line's fill, the line counts ONE failed fill, and all three
    // waiters see the error status. Nothing installs.
    HostConfig host;
    host.fault.read_error_rate = 1.0;
    host.retry.max_attempts = 1;

    FeatureCacheParams params = lruParams();
    CachedDirectIo c(params, host);

    std::vector<std::uint64_t> addrs{0};
    sim::EventQueue eq;
    int errors = 0;
    for (int i = 0; i < 3; ++i) {
        eq.schedule(sim::ns(100) * i, [&] {
            c.store.submitGather(eq, addrs, 8,
                                 [&](sim::Tick, sim::IoStatus s) {
                                     EXPECT_NE(s, sim::IoStatus::Ok);
                                     ++errors;
                                 });
        });
    }
    eq.run();

    const FeatureCacheStats &cs = c.store.stats();
    EXPECT_EQ(errors, 3);
    EXPECT_EQ(cs.failed_fills, 1u); // once per line, not per waiter
    EXPECT_EQ(cs.mshr_piggybacks, 2u);
    EXPECT_EQ(cs.prefetch_failed, 0u);
    EXPECT_EQ(c.store.residentLines(), 0u); // no garbage installed
}

TEST(FaultLabels, FailedPrefetchShedsSilently)
{
    HostConfig host;
    host.fault.read_error_rate = 1.0;
    host.retry.max_attempts = 1;

    FeatureCacheParams params = lruParams();
    params.prefetch_enabled = true;
    CachedDirectIo c(params, host);

    std::vector<std::uint64_t> addrs{0};
    sim::EventQueue eq;
    eq.schedule(0,
                [&] { c.store.announceGather(eq, addrs, 8); });
    eq.run();

    const FeatureCacheStats &cs = c.store.stats();
    EXPECT_EQ(cs.prefetch_failed, 1u);
    EXPECT_EQ(cs.failed_fills, 0u); // no demand request to blame
    EXPECT_EQ(c.store.residentLines(), 0u);
}

TEST(Mshr, DisabledReproducesTheLegacyForwardingShape)
{
    // cache.mshr.enabled = 0 must restore the pre-MSHR decorator
    // exactly: the whole gather forwards unchanged to the inner store
    // (no line-granular rewrite), and concurrent same-line misses each
    // issue their own read.
    HostConfig host;
    std::vector<std::uint64_t> addrs{0, 64, 4096 + 128};

    FeatureCacheParams params = lruParams();
    params.mshr_enabled = false;
    FeatureCacheStore legacy(std::make_unique<ProbeEdgeStore>(host),
                             params);
    auto &probe =
        static_cast<ProbeEdgeStore &>(legacy.inner());
    legacy.readGather(0, addrs, 8);
    ASSERT_EQ(probe.forwarded.size(), 1u);
    EXPECT_EQ(probe.forwarded[0], addrs); // verbatim, not line-based

    // The MSHR path instead rewrites the miss into line-base fills.
    FeatureCacheStore coalesced(std::make_unique<ProbeEdgeStore>(host),
                                lruParams());
    auto &probe2 =
        static_cast<ProbeEdgeStore &>(coalesced.inner());
    coalesced.readGather(0, addrs, 8);
    ASSERT_EQ(probe2.forwarded.size(), 1u);
    EXPECT_EQ(probe2.forwarded[0],
              (std::vector<std::uint64_t>{0, sim::KiB(4)}));
}

TEST(Checkpoint, ResidentLineIdsNeverLeakInFlightState)
{
    FeatureCacheParams params = lruParams();
    params.prefetch_enabled = true;
    CachedDirectIo c(params);

    std::vector<std::uint64_t> demand{0};
    std::vector<std::uint64_t> hoard{sim::KiB(8)};
    sim::EventQueue eq;
    eq.schedule(0, [&] {
        c.store.announceGather(eq, hoard, 8);
        c.store.submitGather(eq, demand, 8, {});
    });
    // Probe while both fills are in flight: the warm set must be
    // empty — in-flight-demand and in-flight-prefetch are MSHR state,
    // not residency, so a checkpoint cannot resurrect them as lines.
    eq.schedule(sim::ns(200), [&] {
        EXPECT_TRUE(c.store.residentLineIds().empty());
        EXPECT_EQ(c.store.residentLines(), 0u);
    });
    eq.run();

    // After completion both lines are resident and checkpointable.
    EXPECT_EQ(c.store.residentLineIds().size(), 2u);
}
