/** @file Partitioned scale-out backend (ctest label `scaling`): the
 *  edge-cut partition map, network-channel timing, remote/local block
 *  routing, and the system-level contracts the "scaling" sweep family
 *  depends on — more nodes never slow sampling down, and the produced
 *  subgraphs are functionally identical to the single-host dram
 *  backend. */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/backend.hh"
#include "core/scenario.hh"
#include "core/system.hh"
#include "gnn/sampler.hh"
#include "host/partitioned_store.hh"
#include "sim/net.hh"
#include "sim/random.hh"

using namespace smartsage;
using namespace smartsage::core;

namespace
{

const Workload &
smallWorkload()
{
    static Workload wl =
        Workload::make(graph::DatasetId::Amazon, false);
    return wl;
}

SystemConfig
smallConfig(const std::string &backend)
{
    SystemConfig sc;
    sc.backend = backend;
    sc.fanouts = {6, 3};
    sc.pipeline.batch_size = 64;
    sc.pipeline.num_batches = 4;
    sc.pipeline.workers = 2;
    return sc;
}

/** A store cut over the small workload's graph. */
std::unique_ptr<host::PartitionedEdgeStore>
makeStore(unsigned nodes, host::PartitionStrategy strategy,
          const sim::NetConfig &net = {})
{
    host::HostConfig hc;
    hc.scratchpad_bytes = sim::KiB(64);
    ssd::SsdConfig ssd;
    host::PartitionedParams params;
    params.nodes = nodes;
    params.strategy = strategy;
    return std::make_unique<host::PartitionedEdgeStore>(
        hc, ssd, net, params, smallWorkload().graph,
        graph::EdgeLayout{});
}

/** Addresses of every neighbor entry of the first @p n graph nodes. */
std::vector<std::uint64_t>
gatherAddrs(std::uint64_t n)
{
    const graph::CsrGraph &g = smallWorkload().graph;
    graph::EdgeLayout layout;
    std::vector<std::uint64_t> addrs;
    for (sim::NodeId u = 0; u < n; ++u)
        for (std::uint64_t e = g.edgeOffset(u);
             e < g.edgeOffset(u) + g.degree(u); ++e)
            addrs.push_back(layout.addrOf(e));
    return addrs;
}

} // namespace

TEST(PartitionMap, BothStrategiesBalanceEdgesAcrossNodes)
{
    const graph::CsrGraph &g = smallWorkload().graph;
    for (auto strategy : {host::PartitionStrategy::Hash,
                          host::PartitionStrategy::Degree}) {
        auto store = makeStore(4, strategy);
        std::vector<std::uint64_t> edges(4, 0);
        for (sim::NodeId u = 0; u < g.numNodes(); ++u) {
            unsigned p = store->partitionOfNode(u);
            ASSERT_LT(p, 4u);
            edges[p] += g.degree(u);
        }
        // Every partition holds a real share of the edge list: at
        // least half and at most double the perfectly even cut.
        const double even = double(g.numEdges()) / 4.0;
        for (unsigned p = 0; p < 4; ++p) {
            EXPECT_GT(double(edges[p]), 0.5 * even)
                << "strategy " << int(strategy) << " part " << p;
            EXPECT_LT(double(edges[p]), 2.0 * even)
                << "strategy " << int(strategy) << " part " << p;
        }
    }
}

TEST(PartitionMap, DegreeCutAssignsContiguousNodeRanges)
{
    auto store = makeStore(4, host::PartitionStrategy::Degree);
    const graph::CsrGraph &g = smallWorkload().graph;
    unsigned last = 0;
    for (sim::NodeId u = 0; u < g.numNodes(); ++u) {
        unsigned p = store->partitionOfNode(u);
        EXPECT_GE(p, last) << "node " << u;
        last = p;
    }
    EXPECT_EQ(last, 3u);
}

TEST(PartitionedStore, SingleNodeKeepsEveryBlockLocal)
{
    auto store = makeStore(1, host::PartitionStrategy::Hash);
    store->readGather(0, gatherAddrs(400), 8);
    EXPECT_GT(store->localBlocks(), 0u);
    EXPECT_EQ(store->remoteBlocks(), 0u);
    EXPECT_EQ(store->netTransfers(), 0u);
}

TEST(PartitionedStore, HashCutShipsMostBlocksOverTheNetwork)
{
    // A 4-way hash cut owns ~1/4 of the blocks locally; the rest pay
    // a network round trip and show up on the links. Block ownership
    // follows the block's first edge, so a wide gather (many blocks)
    // is needed before the ~3:1 remote:local ratio shows through the
    // per-block variance.
    auto store = makeStore(4, host::PartitionStrategy::Hash);
    store->readGather(0, gatherAddrs(4000), 8);
    EXPECT_GT(store->remoteBlocks(), store->localBlocks());
    EXPECT_GT(store->netTransfers(), 0u);
    EXPECT_GT(store->netBytes(), 0u);
}

TEST(PartitionedStore, GatherTimingIsDeterministic)
{
    auto addrs = gatherAddrs(400);
    auto a = makeStore(4, host::PartitionStrategy::Hash);
    auto b = makeStore(4, host::PartitionStrategy::Hash);
    const sim::Tick cold = a->readGather(0, addrs, 8);
    EXPECT_EQ(cold, b->readGather(0, addrs, 8));
    EXPECT_EQ(a->remoteBlocks(), b->remoteBlocks());
    EXPECT_EQ(a->netBytes(), b->netBytes());

    // Perturb the store's service stations (busy-until lanes, caches),
    // then reset(): a replay must reproduce the cold-state tick.
    a->readGather(0, addrs, 8);
    a->reset();
    EXPECT_EQ(a->readGather(0, addrs, 8), cold);
}

TEST(PartitionedStore, FasterLinksNeverSlowGathers)
{
    auto addrs = gatherAddrs(400);
    sim::NetConfig slow, fast;
    slow.bandwidth_gbps = 10.0;
    fast.bandwidth_gbps = 100.0;
    auto a = makeStore(4, host::PartitionStrategy::Hash, slow);
    auto b = makeStore(4, host::PartitionStrategy::Hash, fast);
    EXPECT_LE(b->readGather(0, addrs, 8), a->readGather(0, addrs, 8));
}

TEST(NetworkChannel, TransferPaysLatencyPlusSerialization)
{
    sim::NetConfig nc;
    nc.bandwidth_gbps = 8.0; // 1 byte per ns: easy arithmetic
    nc.latency = sim::us(2);
    nc.queue_depth = 4;
    sim::NetworkChannel link(nc);
    // 4000 B at 1 B/ns = 4000 ns serialization + 2 us latency.
    EXPECT_EQ(link.serviceTransfer(0, 4000),
              sim::us(2) + sim::Tick(4000));
    EXPECT_EQ(link.transfers(), 1u);
    EXPECT_EQ(link.bytesMoved(), 4000u);
}

TEST(NetworkChannel, LanesOverlapUntilQueueDepthIsExhausted)
{
    sim::NetConfig nc;
    nc.bandwidth_gbps = 8.0;
    nc.latency = 0;
    nc.queue_depth = 2;
    sim::NetworkChannel link(nc);
    sim::Tick t1 = link.serviceTransfer(0, 1000);
    sim::Tick t2 = link.serviceTransfer(0, 1000);
    sim::Tick t3 = link.serviceTransfer(0, 1000);
    EXPECT_EQ(t1, t2); // two lanes carry two transfers in parallel
    EXPECT_GT(t3, t2); // the third queues behind a busy lane

    link.reset();
    EXPECT_EQ(link.transfers(), 0u);
    EXPECT_EQ(link.serviceTransfer(0, 1000), t1);
}

TEST(NetworkChannel, KnobsRoundTripAndRejectUnknownKeys)
{
    sim::NetConfig nc;
    EXPECT_TRUE(sim::applyKnob(nc, "bandwidth_gbps", 100.0));
    EXPECT_DOUBLE_EQ(nc.bandwidth_gbps, 100.0);
    EXPECT_TRUE(sim::applyKnob(nc, "latency_us", 5));
    EXPECT_EQ(nc.latency, sim::us(5));
    EXPECT_TRUE(sim::applyKnob(nc, "queue_depth", 8));
    EXPECT_EQ(nc.queue_depth, 8u);
    EXPECT_FALSE(sim::applyKnob(nc, "no_such_knob", 1));
}

TEST(ScalingBackend, RegisteredButExcludedFromDefaultGrids)
{
    const StorageBackend *b =
        BackendRegistry::instance().find("partitioned");
    ASSERT_NE(b, nullptr);
    EXPECT_FALSE(b->caps().in_default_grids);

    const Scenario *s = findScenario("scaling");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->artifact, "scaling");
    EXPECT_EQ(s->resolvedBackends(),
              std::vector<std::string>{"partitioned"});
}

TEST(ScalingBackend, MoreNodesNeverSlowDownSampling)
{
    // The scaling family's core claim, at test scale: with each node's
    // flash array constrained to one channel x one die, the cluster's
    // aggregate die count is the contended resource, so going from one
    // node to four cannot make the sampling makespan worse.
    auto makespan = [&](double nodes) {
        SystemConfig sc = smallConfig("partitioned");
        sc.ssd.flash.channels = 1;
        sc.ssd.flash.dies_per_channel = 1;
        sc.ssd.page_buffer_ways = 1;
        sc.scratchpad_fraction = 0.02;
        sc.backend_knobs["part.nodes"] = nodes;
        sc.backend_knobs["net.bandwidth_gbps"] = 100.0;
        GnnSystem system(sc, smallWorkload());
        return system.runSamplingOnly(4, 6).makespan;
    };
    sim::Tick one = makespan(1);
    sim::Tick four = makespan(4);
    EXPECT_GT(one, 0u);
    EXPECT_LE(four, one);
}

TEST(ScalingBackend, SubgraphsIdenticalToSingleHostDram)
{
    // Storage placement changes timing only: for the same RNG stream
    // the partitioned producer must emit the same functional subgraph
    // as the single-host dram backend.
    auto subgraph_for = [&](const std::string &backend) {
        SystemConfig sc = smallConfig(backend);
        if (backend == "partitioned")
            sc.backend_knobs["part.nodes"] = 4;
        GnnSystem system(sc, smallWorkload());
        sim::Rng rng(99);
        auto targets =
            gnn::selectTargets(smallWorkload().graph, 64, rng);
        auto job = system.producer().startBatch(targets, rng);
        while (!job->done())
            job->step(0);
        return job->takeSubgraph();
    };
    gnn::Subgraph a = subgraph_for("dram");
    gnn::Subgraph b = subgraph_for("partitioned");
    EXPECT_EQ(a.frontiers, b.frontiers);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (std::size_t h = 0; h < a.blocks.size(); ++h)
        EXPECT_EQ(a.blocks[h].src_index, b.blocks[h].src_index);
}

TEST(ScalingBackend, MisspelledKnobInClaimedNamespaceIsFatal)
{
    SystemConfig sc = smallConfig("partitioned");
    sc.backend_knobs["part.node"] = 4; // sic: missing 's'
    EXPECT_DEATH({ GnnSystem system(sc, smallWorkload()); },
                 "unknown 'part\\.' knob");
}
