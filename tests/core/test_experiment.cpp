/** @file Tests for the scenario grid, config knobs, and the
 *  ExperimentRunner: expansion, worker-count determinism, golden
 *  equivalence against direct GnnSystem runs, and JSON schema. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "core/experiment.hh"
#include "core/scenario.hh"
#include "core/system.hh"

using namespace smartsage;
using namespace smartsage::core;

namespace
{

/** A tiny two-axis scenario over the in-memory Amazon workload. */
Scenario
tinyScenario(ExperimentKind kind)
{
    Scenario s;
    s.family = "tiny";
    s.title = "tiny test scenario";
    s.kind = kind;
    s.datasets = {graph::DatasetId::Amazon};
    s.large_scale = false;
    s.designs = {DesignPoint::DramOracle, DesignPoint::SmartSageHwSw};
    s.fanout_grid = {{6, 3}};
    s.batch_sizes = {32, 64};
    s.worker_grid = {2};
    s.num_batches = 3;
    return s;
}

std::string
render(const ScenarioRun &run)
{
    std::ostringstream os;
    ExperimentRunner::table(run).print(os);
    return os.str();
}

} // namespace

TEST(Knobs, SubsystemDispatchMutatesTheRightField)
{
    SystemConfig sc;
    EXPECT_TRUE(applyKnob(sc, {"ssd.flash.channels", 16}));
    EXPECT_EQ(sc.ssd.flash.channels, 16u);
    EXPECT_TRUE(applyKnob(sc, {"ssd.page_buffer_ways", 8}));
    EXPECT_EQ(sc.ssd.page_buffer_ways, 8u);
    EXPECT_TRUE(applyKnob(sc, {"isp.coalesce_targets", 64}));
    EXPECT_EQ(sc.isp.coalesce_targets, 64u);
    EXPECT_TRUE(applyKnob(sc, {"fpga.queue_depth", 32}));
    EXPECT_EQ(sc.fpga.queue_depth, 32u);
    EXPECT_TRUE(applyKnob(sc, {"host.page_fault_cost_us", 14}));
    EXPECT_EQ(sc.host.page_fault_cost, sim::us(14));
    EXPECT_TRUE(applyKnob(sc, {"ssd_buffer_fraction", 0.5}));
    EXPECT_DOUBLE_EQ(sc.ssd_buffer_fraction, 0.5);
    EXPECT_TRUE(applyKnob(sc, {"use_saint", 1}));
    EXPECT_TRUE(sc.use_saint);
}

TEST(Knobs, UnknownKeysAreRejected)
{
    SystemConfig sc;
    EXPECT_FALSE(applyKnob(sc, {"ssd.flash.bogus", 1}));
    EXPECT_FALSE(applyKnob(sc, {"isp.bogus", 1}));
    EXPECT_FALSE(applyKnob(sc, {"host.bogus", 1}));
    EXPECT_FALSE(applyKnob(sc, {"bogus", 1}));
}

TEST(Knobs, LabelRendersCompactly)
{
    EXPECT_EQ(KnobSetting({"ssd.flash.channels", 16}).label(),
              "ssd.flash.channels=16");
    EXPECT_EQ(KnobSetting({"ssd_buffer_fraction", 0.4}).label(),
              "ssd_buffer_fraction=0.4");
}

TEST(Scenario, GridExpansionCoversEveryAxisCombination)
{
    Scenario s = tinyScenario(ExperimentKind::SamplingOnly);
    s.overrides = {{}, {{"ssd.flash.channels", 4}}};
    s.worker_grid = {1, 2};
    EXPECT_EQ(s.gridSize(), 2u * 2u * 2u * 2u);

    auto cells = expandScenario(s);
    ASSERT_EQ(cells.size(), s.gridSize());
    std::set<std::string> labels;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(cells[i].index, i);
        EXPECT_EQ(cells[i].family, "tiny");
        labels.insert(cells[i].label());
    }
    // Every cell is a distinct grid point.
    EXPECT_EQ(labels.size(), cells.size());
}

TEST(Scenario, CellConfigsResolveKnobsAndSeeds)
{
    Scenario s = tinyScenario(ExperimentKind::SamplingOnly);
    s.designs = {DesignPoint::SmartSageHwSw};
    s.batch_sizes = {64};
    s.overrides = {{}, {{"ssd.flash.channels", 4}}};
    auto cells = expandScenario(s);
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[0].config.ssd.flash.channels, 8u); // default
    EXPECT_EQ(cells[1].config.ssd.flash.channels, 4u); // overridden
    // Per-cell RNG forks: independent, deterministic streams.
    EXPECT_NE(cells[0].config.pipeline.seed,
              cells[1].config.pipeline.seed);
    auto again = expandScenario(s);
    EXPECT_EQ(cells[0].config.pipeline.seed,
              again[0].config.pipeline.seed);
}

TEST(Scenario, BatchMixPropagatesToPipelineConfig)
{
    Scenario s = tinyScenario(ExperimentKind::Pipeline);
    s.designs = {DesignPoint::DramOracle};
    s.batch_sizes = {64};
    s.batch_mixes = {{16, 48}};
    auto cells = expandScenario(s);
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].config.pipeline.batch_mix,
              (std::vector<std::size_t>{16, 48}));
}

TEST(Scenario, BuiltinFamiliesExpandAndAreFindable)
{
    ASSERT_FALSE(builtinScenarios().empty());
    std::set<std::string> families;
    for (const auto &s : builtinScenarios()) {
        families.insert(s.family);
        EXPECT_GT(s.gridSize(), 0u) << s.family;
        EXPECT_EQ(expandScenario(s).size(), s.gridSize()) << s.family;
        EXPECT_EQ(findScenario(s.family), &s);
    }
    EXPECT_EQ(families.size(), builtinScenarios().size());
    // The families the roadmap calls out by name.
    EXPECT_NE(findScenario("design-space"), nullptr);
    EXPECT_NE(findScenario("fanout-sweep"), nullptr);
    EXPECT_NE(findScenario("ssd-geometry"), nullptr);
    EXPECT_NE(findScenario("tenant-mix"), nullptr);
    EXPECT_EQ(findScenario("no-such-family"), nullptr);
}

TEST(Scenario, SmokeVariantPreservesGridShape)
{
    const Scenario *full = findScenario("design-space");
    ASSERT_NE(full, nullptr);
    Scenario smoke = smokeVariant(*full);
    EXPECT_EQ(smoke.gridSize(), full->gridSize());
    EXPECT_FALSE(smoke.large_scale);
    EXPECT_LE(smoke.num_batches, 4u);
}

TEST(Runner, SamplingResultsIdenticalAtAnyWorkerCount)
{
    Scenario s = tinyScenario(ExperimentKind::SamplingOnly);
    ExperimentRunner serial(RunnerOptions{1, false, false});
    ExperimentRunner parallel(RunnerOptions{4, false, false});
    ScenarioRun a = serial.run(s);
    ScenarioRun b = parallel.run(s);
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        ASSERT_EQ(a.cells[i].metrics.size(), b.cells[i].metrics.size());
        for (std::size_t m = 0; m < a.cells[i].metrics.size(); ++m) {
            EXPECT_EQ(a.cells[i].metrics[m].name,
                      b.cells[i].metrics[m].name);
            // Simulated time: bit-exact, not approximately equal.
            EXPECT_EQ(a.cells[i].metrics[m].value,
                      b.cells[i].metrics[m].value);
        }
        EXPECT_EQ(a.cells[i].notes, b.cells[i].notes);
    }
    EXPECT_EQ(render(a), render(b));
}

TEST(Runner, PipelineResultsIdenticalAtAnyWorkerCount)
{
    Scenario s = tinyScenario(ExperimentKind::Pipeline);
    s.batch_mixes = {{}, {16, 64}};
    ExperimentRunner serial(RunnerOptions{1, false, false});
    ExperimentRunner parallel(RunnerOptions{3, false, false});
    ScenarioRun a = serial.run(s);
    ScenarioRun b = parallel.run(s);
    EXPECT_EQ(render(a), render(b));
    // The JSON artifact carries the same contract, byte for byte.
    std::ostringstream ja, jb;
    writeDesignSpaceJson(ja, {a});
    writeDesignSpaceJson(jb, {b});
    EXPECT_EQ(ja.str(), jb.str());
}

TEST(Runner, GoldenCellMatchesDirectSystemRun)
{
    // The runner must report exactly what a hand-wired GnnSystem
    // produces for the same resolved config — the design_space example
    // output is this equivalence, table-wide.
    Scenario s = tinyScenario(ExperimentKind::Pipeline);
    ExperimentRunner runner;
    ScenarioRun run = runner.run(s);
    ASSERT_EQ(run.cells.size(), s.gridSize());

    for (const auto &cell : run.cells) {
        GnnSystem system(cell.cell.config,
                         runner.workload(cell.cell.dataset, false));
        auto direct = system.runPipeline();
        EXPECT_EQ(cell.metric("batches_per_s"), direct.throughput())
            << cell.cell.label();
        EXPECT_EQ(cell.metric("gpu_idle_frac"), direct.gpu_idle_frac)
            << cell.cell.label();
    }
}

TEST(Runner, GoldenSamplingCellMatchesDirectSystemRun)
{
    Scenario s = tinyScenario(ExperimentKind::SamplingOnly);
    s.batch_sizes = {32};
    ExperimentRunner runner;
    ScenarioRun run = runner.run(s);
    for (const auto &cell : run.cells) {
        GnnSystem system(cell.cell.config,
                         runner.workload(cell.cell.dataset, false));
        auto direct = system.runSamplingOnly(cell.cell.sim_workers,
                                             cell.cell.num_batches);
        EXPECT_EQ(cell.metric("batches_per_s"),
                  direct.batchesPerSecond())
            << cell.cell.label();
    }
}

TEST(Runner, TableShowsVaryingAxesAndMetrics)
{
    Scenario s = tinyScenario(ExperimentKind::SamplingOnly);
    ExperimentRunner runner;
    std::string out = render(runner.run(s));
    EXPECT_NE(out.find("design"), std::string::npos);
    EXPECT_NE(out.find("batch"), std::string::npos);
    EXPECT_NE(out.find("batches_per_s"), std::string::npos);
    EXPECT_NE(out.find("SmartSAGE (HW/SW)"), std::string::npos);
    // Non-varying axes stay out of the table.
    EXPECT_EQ(out.find("fanouts"), std::string::npos);
    EXPECT_EQ(out.find("mix"), std::string::npos);
}

TEST(Runner, CollectStatsCapturesComponentCounters)
{
    Scenario s = tinyScenario(ExperimentKind::SamplingOnly);
    s.designs = {DesignPoint::SmartSageHwSw};
    s.batch_sizes = {32};
    ExperimentRunner runner(RunnerOptions{1, false, true});
    ScenarioRun run = runner.run(s);
    ASSERT_EQ(run.cells.size(), 1u);
    EXPECT_NE(run.cells[0].stats.find("ssd.flash.pages_read"),
              std::string::npos);
}

TEST(Json, DesignSpaceArtifactHasRequiredSchema)
{
    Scenario s = tinyScenario(ExperimentKind::SamplingOnly);
    s.overrides = {{{"ssd.flash.channels", 4}}};
    ExperimentRunner runner;
    auto runs = runner.runAll({s});
    std::ostringstream os;
    writeDesignSpaceJson(os, runs);
    std::string json = os.str();
    for (const char *key :
         {"\"bench\": \"design_space\"", "\"schema_version\": 1",
          "\"config\"", "\"results\"", "\"tiny\"", "\"cells\"",
          "\"batches_per_s\"", "\"ssd.flash.channels\": 4"})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    // Balanced braces: cheap structural sanity without a parser.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(JsonDeath, ExpansionRejectsUnknownKnob)
{
    Scenario s = tinyScenario(ExperimentKind::SamplingOnly);
    s.overrides = {{{"ssd.flash.bogus_knob", 1}}};
    EXPECT_DEATH(expandScenario(s), "unknown config knob");
}
