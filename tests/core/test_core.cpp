/** @file Tests for design points, the system builder, and reporting. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hh"
#include "core/system.hh"
#include "host/io_path.hh"

using namespace smartsage;
using namespace smartsage::core;

namespace
{

/** Shared small workload: building graphs is the expensive part. */
const Workload &
smallWorkload()
{
    static Workload wl = [] {
        Workload w = Workload::make(graph::DatasetId::Amazon, false);
        return w;
    }();
    return wl;
}

SystemConfig
smallConfig(DesignPoint dp)
{
    SystemConfig sc;
    sc.design = dp;
    sc.fanouts = {6, 3};
    sc.pipeline.batch_size = 64;
    sc.pipeline.num_batches = 4;
    sc.pipeline.workers = 2;
    return sc;
}

} // namespace

TEST(DesignPoint, NamesMatchPaperLabels)
{
    EXPECT_EQ(designName(DesignPoint::SsdMmap), "SSD (mmap)");
    EXPECT_EQ(designName(DesignPoint::SmartSageHwSw),
              "SmartSAGE (HW/SW)");
    EXPECT_EQ(allDesignPoints().size(), 7u);
}

TEST(System, EveryDesignPointConstructsAndSamples)
{
    for (auto dp : allDesignPoints()) {
        GnnSystem system(smallConfig(dp), smallWorkload());
        auto r = system.runSamplingOnly(2, 3);
        EXPECT_EQ(r.batches, 3u) << designName(dp);
        EXPECT_GT(r.makespan, 0u) << designName(dp);
        EXPECT_GT(r.avg_batch_us, 0.0) << designName(dp);
    }
}

TEST(System, EdgeStoreTypesMatchDesign)
{
    GnnSystem dram(smallConfig(DesignPoint::DramOracle),
                   smallWorkload());
    EXPECT_NE(dynamic_cast<host::DramEdgeStore *>(dram.edgeStore()),
              nullptr);
    EXPECT_EQ(dram.ssd(), nullptr);

    GnnSystem mm(smallConfig(DesignPoint::SsdMmap), smallWorkload());
    EXPECT_NE(dynamic_cast<host::MmapEdgeStore *>(mm.edgeStore()),
              nullptr);
    EXPECT_NE(mm.ssd(), nullptr);

    GnnSystem hwsw(smallConfig(DesignPoint::SmartSageHwSw),
                   smallWorkload());
    EXPECT_EQ(hwsw.edgeStore(), nullptr);
    EXPECT_NE(hwsw.ssd(), nullptr);
}

TEST(System, CacheBudgetsScaleWithDataset)
{
    SystemConfig sc = smallConfig(DesignPoint::SsdMmap);
    GnnSystem system(sc, smallWorkload());
    std::uint64_t edge_bytes =
        smallWorkload().edgeListBytes(sc.layout);
    auto cache = system.config().host.page_cache_bytes;
    EXPECT_NEAR(static_cast<double>(cache),
                sc.page_cache_fraction * edge_bytes,
                0.05 * edge_bytes + (1 << 20));
}

TEST(System, SaintSamplerSelectable)
{
    SystemConfig sc = smallConfig(DesignPoint::DramOracle);
    sc.use_saint = true;
    sc.saint_walk_length = 3;
    EXPECT_EQ(sc.depth(), 3u);
    GnnSystem system(sc, smallWorkload());
    auto r = system.runSamplingOnly(1, 2);
    EXPECT_EQ(r.batches, 2u);
}

TEST(System, PipelineRunsForIspDesign)
{
    GnnSystem system(smallConfig(DesignPoint::SmartSageHwSw),
                     smallWorkload());
    auto r = system.runPipeline();
    EXPECT_EQ(r.batches, 4u);
    EXPECT_GT(r.throughput(), 0.0);
}

TEST(System, OracleFasterOrEqualToHwSw)
{
    auto run = [&](DesignPoint dp) {
        GnnSystem system(smallConfig(dp), smallWorkload());
        return system.runSamplingOnly(4, 8).makespan;
    };
    EXPECT_LE(run(DesignPoint::SmartSageOracle),
              run(DesignPoint::SmartSageHwSw));
}

TEST(Report, TableRendersAllCells)
{
    TableReporter t("Fig X", {"a", "bb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("Fig X"), std::string::npos);
    EXPECT_NE(out.find("333"), std::string::npos);
    EXPECT_NE(out.find("bb"), std::string::npos);
}

TEST(Report, Formatters)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmtX(2.5, 1), "2.5x");
    EXPECT_EQ(fmtPct(0.123, 1), "12.3%");
}

TEST(Report, GeomeanAndMean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 3.0}), 2.0);
}

TEST(ReportDeath, RowWidthMismatchPanics)
{
    TableReporter t("t", {"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(ReportDeath, GeomeanRejectsNonPositive)
{
    EXPECT_DEATH(geomean({1.0, 0.0}), "positive");
}
