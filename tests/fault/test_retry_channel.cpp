/** @file StorageChannel recovery goldens: exponential backoff with
 *  zero jitter is tick-exact, deadlines convert retries into timeouts,
 *  exhausted budgets abandon with TransientError, a retrying request
 *  holds its queue slot, and the blocking adapters die loudly on a
 *  failed request (there is nowhere to report one). Label `fault`. */

#include <gtest/gtest.h>

#include <vector>

#include "host/io_path.hh"
#include "sim/event_queue.hh"
#include "sim/io.hh"

using namespace smartsage;
using namespace smartsage::sim;

namespace
{

/**
 * Scripted fallible service: attempt i returns script[i - 1] after a
 * fixed service time, recording each attempt's start tick.
 */
struct ScriptedService
{
    std::vector<IoStatus> script;
    Tick service_time = us(10);
    std::vector<Tick> starts;

    StorageChannel::FallibleService
    make()
    {
        return [this](Tick start, unsigned attempt) {
            starts.push_back(start);
            IoStatus status = attempt <= script.size()
                                  ? script[attempt - 1]
                                  : IoStatus::Ok;
            return IoOutcome{start + service_time, status};
        };
    }
};

/** Zero-jitter policy so backoff goldens are tick-exact. */
RetryPolicy
exactPolicy(unsigned attempts, Tick base = us(100), Tick cap = ms(10))
{
    RetryPolicy p;
    p.max_attempts = attempts;
    p.backoff_base = base;
    p.backoff_cap = cap;
    p.jitter = 0.0;
    return p;
}

} // namespace

TEST(RetryChannel, FallibleDefaultsMatchPlainSubmit)
{
    // An always-Ok fallible submission under the default policy must
    // reproduce the plain submit() event pattern exactly — this is the
    // channel-level half of the fault-free byte-identity guarantee.
    EventQueue eq;
    StorageChannel plain("plain", 2), fallible("fallible", 2);
    Tick t_plain = 0, t_fallible = 0;
    eq.schedule(50, [&] {
        plain.submit(
            eq, [](Tick start) { return start + us(10); },
            [&](Tick f, IoStatus s) {
                t_plain = f;
                EXPECT_EQ(s, IoStatus::Ok);
            });
        fallible.submitFallible(
            eq,
            [](Tick start, unsigned) {
                return IoOutcome{start + us(10), IoStatus::Ok};
            },
            [&](Tick f, IoStatus s) {
                t_fallible = f;
                EXPECT_EQ(s, IoStatus::Ok);
            });
    });
    eq.run();
    EXPECT_EQ(t_plain, 50 + us(10));
    EXPECT_EQ(t_fallible, t_plain);
    EXPECT_EQ(fallible.retries(), 0u);
    EXPECT_EQ(fallible.timeouts(), 0u);
    EXPECT_EQ(fallible.abandoned(), 0u);
}

TEST(RetryChannel, ExponentialBackoffGoldenWithZeroJitter)
{
    EventQueue eq;
    StorageChannel ch("ch", 4);
    ch.setRetryPolicy(exactPolicy(3));
    ScriptedService svc{{IoStatus::TransientError,
                         IoStatus::TransientError, IoStatus::Ok}};

    Tick finish = 0;
    IoStatus status = IoStatus::TransientError;
    eq.schedule(0, [&] {
        ch.submitFallible(eq, svc.make(), [&](Tick f, IoStatus s) {
            finish = f;
            status = s;
        });
    });
    eq.run();

    // Attempt 1 at 0, attempt 2 after base backoff, attempt 3 after
    // the doubled backoff: 0, 10+100, 120+200 (all microseconds).
    ASSERT_EQ(svc.starts.size(), 3u);
    EXPECT_EQ(svc.starts[0], us(0));
    EXPECT_EQ(svc.starts[1], us(110));
    EXPECT_EQ(svc.starts[2], us(320));
    EXPECT_EQ(finish, us(330));
    EXPECT_EQ(status, IoStatus::Ok);
    EXPECT_EQ(ch.retries(), 2u);
    EXPECT_EQ(ch.abandoned(), 0u);
}

TEST(RetryChannel, BackoffSaturatesAtTheCap)
{
    EventQueue eq;
    StorageChannel ch("ch", 4);
    ch.setRetryPolicy(exactPolicy(3, us(100), us(150)));
    ScriptedService svc{{IoStatus::TransientError,
                         IoStatus::TransientError, IoStatus::Ok}};
    eq.schedule(0, [&] { ch.submitFallible(eq, svc.make(), {}); });
    eq.run();
    // The doubled backoff (200 us) clips to the 150 us cap.
    ASSERT_EQ(svc.starts.size(), 3u);
    EXPECT_EQ(svc.starts[1], us(110));
    EXPECT_EQ(svc.starts[2], us(120) + us(150));
}

TEST(RetryChannel, ExhaustedBudgetAbandonsWithTransientError)
{
    EventQueue eq;
    StorageChannel ch("ch", 4);
    ch.setRetryPolicy(exactPolicy(2));
    ScriptedService svc{{IoStatus::TransientError,
                         IoStatus::TransientError}};
    Tick finish = 0;
    IoStatus status = IoStatus::Ok;
    eq.schedule(0, [&] {
        ch.submitFallible(eq, svc.make(), [&](Tick f, IoStatus s) {
            finish = f;
            status = s;
        });
    });
    eq.run();
    EXPECT_EQ(finish, us(120)); // second attempt's finish tick
    EXPECT_EQ(status, IoStatus::TransientError);
    EXPECT_EQ(ch.retries(), 1u);
    EXPECT_EQ(ch.abandoned(), 1u);
    EXPECT_EQ(ch.timeouts(), 0u);
    EXPECT_TRUE(ch.idle());
}

TEST(RetryChannel, DeadlinePassedAtCompletionTimesOut)
{
    EventQueue eq;
    StorageChannel ch("ch", 4);
    RetryPolicy p = exactPolicy(3);
    p.timeout = us(5); // service takes 10 us: Ok arrives too late
    ch.setRetryPolicy(p);
    ScriptedService svc{{IoStatus::Ok}};
    IoStatus status = IoStatus::Ok;
    eq.schedule(0, [&] {
        ch.submitFallible(eq, svc.make(),
                          [&](Tick, IoStatus s) { status = s; });
    });
    eq.run();
    EXPECT_EQ(status, IoStatus::Timeout);
    EXPECT_EQ(ch.timeouts(), 1u);
}

TEST(RetryChannel, BackoffOvershootingTheDeadlineTimesOut)
{
    EventQueue eq;
    StorageChannel ch("ch", 4);
    RetryPolicy p = exactPolicy(3);
    p.timeout = us(50); // attempt 2 would start at 110 us
    ch.setRetryPolicy(p);
    ScriptedService svc{{IoStatus::TransientError}};
    IoStatus status = IoStatus::Ok;
    Tick finish = 0;
    eq.schedule(0, [&] {
        ch.submitFallible(eq, svc.make(), [&](Tick f, IoStatus s) {
            finish = f;
            status = s;
        });
    });
    eq.run();
    // No second attempt is made and no retry is counted: the budget
    // was there but the deadline was not.
    EXPECT_EQ(svc.starts.size(), 1u);
    EXPECT_EQ(status, IoStatus::Timeout);
    EXPECT_EQ(finish, us(10));
    EXPECT_EQ(ch.retries(), 0u);
    EXPECT_EQ(ch.timeouts(), 1u);
}

TEST(RetryChannel, DeadlinePassedWhileQueuedSkipsTheServiceAttempt)
{
    // A depth-1 channel busy until 100 us; the queued request's 5 us
    // deadline passes while it waits, so dispatch must time it out
    // without burning a service attempt.
    EventQueue eq;
    StorageChannel ch("ch", 1);
    RetryPolicy p = exactPolicy(3);
    p.timeout = us(5);
    ch.setRetryPolicy(p);
    ScriptedService starved{{IoStatus::Ok}};
    IoStatus status = IoStatus::Ok;
    eq.schedule(0, [&] {
        ch.submit(eq, [](Tick start) { return start + us(100); }, {});
        ch.submitFallible(eq, starved.make(),
                          [&](Tick, IoStatus s) { status = s; });
    });
    eq.run();
    EXPECT_TRUE(starved.starts.empty());
    EXPECT_EQ(status, IoStatus::Timeout);
    EXPECT_EQ(ch.timeouts(), 1u);
}

TEST(RetryChannel, RetryingRequestHoldsItsQueueSlot)
{
    // Depth 1: while the first request backs off and retries, the
    // second must wait — a retrying command still occupies its queue
    // entry, exactly like a real SQ slot.
    EventQueue eq;
    StorageChannel ch("ch", 1);
    ch.setRetryPolicy(exactPolicy(3));
    ScriptedService flaky{{IoStatus::TransientError, IoStatus::Ok}};
    Tick first = 0, second = 0;
    eq.schedule(0, [&] {
        ch.submitFallible(eq, flaky.make(),
                          [&](Tick f, IoStatus) { first = f; });
        ch.submitFallible(
            eq,
            [](Tick start, unsigned) {
                return IoOutcome{start + us(10), IoStatus::Ok};
            },
            [&](Tick f, IoStatus) { second = f; });
    });
    eq.run();
    EXPECT_EQ(first, us(120)); // fail at 10, retry at 110, done 120
    EXPECT_EQ(second, us(130)); // dispatched only after the retrier
    EXPECT_EQ(ch.queuedCount(), 1u);
}

TEST(RetryChannel, JitterReplaysAfterReset)
{
    // Jittered backoff draws come from a per-request fork keyed by
    // submission index, so reset() (which rewinds the index) replays
    // the exact same schedule — the property worker-count invariance
    // of the fault-space artifact rests on.
    auto runOnce = [](StorageChannel &ch) {
        EventQueue eq;
        std::vector<Tick> finishes;
        eq.schedule(0, [&] {
            for (int i = 0; i < 8; ++i) {
                ch.submitFallible(
                    eq,
                    [](Tick start, unsigned attempt) {
                        return IoOutcome{start + us(10),
                                         attempt < 3
                                             ? IoStatus::TransientError
                                             : IoStatus::Ok};
                    },
                    [&](Tick f, IoStatus) { finishes.push_back(f); });
            }
        });
        eq.run();
        return finishes;
    };

    StorageChannel ch("ch", 8);
    RetryPolicy p = exactPolicy(4);
    p.jitter = 0.5;
    ch.setRetryPolicy(p);
    std::vector<Tick> first = runOnce(ch);
    ch.reset();
    std::vector<Tick> replay = runOnce(ch);
    ASSERT_EQ(first.size(), 8u);
    EXPECT_EQ(first, replay);

    // And the jitter actually varies across requests: identical
    // scripts must not all land on the same finish tick.
    bool all_equal = true;
    for (const Tick f : first)
        all_equal = all_equal && f == first[0];
    EXPECT_FALSE(all_equal);
}

TEST(BlockingAdapter, DiesOnAFailedRequest)
{
    EventQueue eq;
    StorageChannel ch("ch", 2);
    ch.setRetryPolicy(exactPolicy(1));
    EXPECT_DEATH(
        drainOne(
            eq, 0,
            [&](EventQueue &q, IoCompletion done) {
                ch.submitFallible(
                    q,
                    [](Tick start, unsigned) {
                        return IoOutcome{start + us(10),
                                         IoStatus::TransientError};
                    },
                    std::move(done));
            },
            "test-io", 7),
        "blocking read on 'test-io'.*request 7");
}

TEST(BlockingAdapter, EdgeStoreBlockingReadsNameTheComponent)
{
    // Satellite of the silent-failure fix: the classic blocking calls
    // must surface a non-Ok completion fatally, naming the store, not
    // return a tick as if the data were valid.
    host::HostConfig config;
    config.fault.read_error_rate = 1.0;
    config.retry.max_attempts = 1;
    host::DramEdgeStore store(config);
    EXPECT_DEATH(store.read(0, 0, 8), "DRAM");
    const std::vector<std::uint64_t> addrs{0, 64, 128};
    EXPECT_DEATH(store.readGather(0, addrs, 8), "DRAM");
}
